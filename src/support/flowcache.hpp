// Content-addressed on-disk cache for flow results (and any other blob the
// pipeline wants to memoize).
//
// The hottest path in this repository is re-running the full
// synthesize -> pack -> place -> route -> trace flow for a design that has
// not changed — grid searches, repeated bench runs and the Table VI case
// study (three variants differing in one module) all recompute flows whose
// inputs are bit-identical to a previous run. Because the whole pipeline is
// deterministic under its seed (DESIGN.md §9), a flow result is a pure
// function of its inputs, so it can be cached under a digest of those
// inputs and replayed byte-identically.
//
// This layer is content-agnostic: it stores opaque string payloads under
// 64-bit keys with a self-describing envelope
//
//   hcp-flowcache <schema> <key> <payload-bytes> <payload-fnv1a>\n
//   <payload bytes>
//
// and detects every malformed shape — truncation, bit flips, blanked files,
// version skew, key mismatch, trailing garbage — by checking the envelope
// before handing the payload back. A corrupt entry is *never* returned: it
// is counted (flowcache_corrupt), logged with its path, and treated as a
// miss so the caller recomputes (and the subsequent store() self-heals the
// entry). Serialization of the actual FlowResult lives in the owning layers
// (ir/hls/rtl/fpga/trace `serialize.hpp`, composed by core/flow_serialize).
//
// Telemetry: load() counts flowcache_miss / flowcache_corrupt /
// flowcache_load_error, store() counts flowcache_write on success and
// flowcache_store_error on a degraded failure. The *hit* counter is bumped
// by the caller after the payload also parsed back into a live struct, so a
// hit always means "a usable result came out of the cache".
//
// Failure contract (DESIGN.md §14): the cache is an accelerator, never a
// correctness dependency. No cache I/O failure — full disk, read-only
// directory, unreadable entry, injected flowcache.* fault — may abort a
// flow that would succeed without the cache; every such failure degrades to
// a recompute, counted and logged once.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace hcp::support::flowcache {

/// Bump when the cache envelope or any cached serialization format changes
/// incompatibly. The version participates in both the envelope header and
/// the flow digest, so a version bump invalidates every old entry.
inline constexpr std::uint32_t kSchemaVersion = 1;

/// Streaming FNV-1a (64 bit). Deterministic across platforms and runs —
/// exactly what a content-addressed key needs (no pointer values, no
/// iteration-order dependence; callers feed canonical byte sequences).
class Fnv1a {
 public:
  Fnv1a& bytes(std::string_view data) {
    for (const char c : data) {
      hash_ ^= static_cast<unsigned char>(c);
      hash_ *= 1099511628211ULL;
    }
    return *this;
  }
  Fnv1a& u64(std::uint64_t v);
  Fnv1a& i64(std::int64_t v) { return u64(static_cast<std::uint64_t>(v)); }
  /// Hashes the IEEE-754 bit pattern (distinguishes -0.0 from 0.0 — the
  /// serializers print them differently, so the key must too).
  Fnv1a& f64(double v);
  /// Length-prefixed so ("ab","c") and ("a","bc") digest differently.
  Fnv1a& str(std::string_view s) { return u64(s.size()).bytes(s); }

  std::uint64_t digest() const { return hash_; }
  /// 16-char lower-case hex of digest(); used as the cache file stem.
  std::string hex() const;

 private:
  std::uint64_t hash_ = 14695981039346656037ULL;
};

/// One cache directory. Each entry is a single file `<dir>/<key>.flow`
/// written atomically (temp file + rename), so concurrent writers — pool
/// tasks in one process or several processes sharing HCP_CACHE — can only
/// ever observe whole entries.
class FlowCache {
 public:
  /// Creates `dir` (and parents) if needed. Throws hcp::Error when the
  /// directory cannot be created or is not writable.
  explicit FlowCache(std::string dir);

  const std::string& dir() const { return dir_; }
  std::string entryPath(const std::string& key) const;

  /// Returns the validated payload for `key`, or nullopt on miss, on a
  /// corrupt entry (flowcache_corrupt) *or* on an unreadable one
  /// (flowcache_load_error) — each counted and the first logged with its
  /// path; the caller cannot tell the difference and simply recomputes.
  std::optional<std::string> load(const std::string& key) const;

  /// Atomically stores `payload` under `key` (temp file + rename),
  /// replacing any existing entry. Never throws on I/O failure: per the
  /// degrade contract (DESIGN.md §14) a failed open/write/rename is
  /// counted (flowcache_store_error), logged once, its temp file removed,
  /// and false returned — the flow that produced the payload still
  /// succeeds. Returns true when the entry landed (flowcache_write).
  bool store(const std::string& key, const std::string& payload) const;

 private:
  std::string dir_;
};

/// True once any cache store/load I/O failure has degraded the cache in
/// this process. One-shot gauge, never cleared by later successes: a
/// one-shot run shrugs a degraded cache off, but a daemon that never
/// restarts would otherwise silently serve cold forever — hcp_serve puts
/// this in its periodic status line, and the first transition bumps the
/// flowcache_degraded report counter so operators can see it.
bool degraded();

namespace detail {
/// Clears the degraded latch (tests only — the gauge is process-lifetime).
void resetDegraded();
}  // namespace detail

/// Process-wide cache consulted by core::runFlow. Null when caching is off
/// (the default). Not thread-safe against concurrent setGlobalDir(): arm the
/// cache at startup (CLI flag / env parsing), before any flow runs.
FlowCache* global();

/// Arms the global cache at `dir` ("" disarms it).
void setGlobalDir(const std::string& dir);

/// Current global cache directory ("" = off).
std::string globalDir();

/// Resolves the cache directory: `--cache DIR` / `--cache=DIR` on the
/// command line, else the HCP_CACHE environment variable. Arms the global
/// cache when a directory is found and returns it ("" = caching off). A
/// `--cache` with no value or an empty `--cache=` is a usage error (exit 2),
/// mirroring --report/--trace.
std::string initCacheFromArgs(int argc, char** argv);

/// RAII global-cache override for tests.
class ScopedCacheDir {
 public:
  explicit ScopedCacheDir(const std::string& dir) : prev_(globalDir()) {
    setGlobalDir(dir);
  }
  ~ScopedCacheDir() { setGlobalDir(prev_); }
  ScopedCacheDir(const ScopedCacheDir&) = delete;
  ScopedCacheDir& operator=(const ScopedCacheDir&) = delete;

 private:
  std::string prev_;
};

}  // namespace hcp::support::flowcache
