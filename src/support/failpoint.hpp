// Named-failpoint fault injection for the persistence surface.
//
// Every file-I/O boundary in the repository (flow-cache store/load, run
// report, trace timeline, CSV tables, model/predictor save) asks a named
// failpoint whether it should fail *before* doing the real work. Disarmed —
// the default — that question is one relaxed atomic load and a branch, so
// production runs pay nothing. Armed via the HCP_FAILPOINTS environment
// variable or the --failpoints flag, the named sites fail deterministically,
// which is what the failure-path tests and the CI fault-injection job need:
// ENOSPC mid-store, rename failure, unreadable cache entries — on demand, at
// any thread count, with no root privileges or full disks required.
//
// Spec grammar (comma-separated entries):
//
//   HCP_FAILPOINTS=site            fail every hit of `site`
//   HCP_FAILPOINTS=site:N          fail the first N hits, then pass
//   HCP_FAILPOINTS=site:0.25       fail each hit with probability 0.25
//                                  (deterministic per-site PRNG sequence)
//   HCP_FAILPOINTS=a:1,b.rename    entries combine; first match wins
//
// Sites are dotted paths ("flowcache.store.write"); a configured entry
// matches a query when it equals the query or is a dot-prefix of it, so
// `flowcache.store` arms every boundary inside the store (open, write,
// rename) while `flowcache.store.rename` arms only the rename.
//
// The framework only *answers* shouldFail(); the site decides what failure
// means (CheckedFileWriter throws hcp::IoError with the path and an injected
// ENOSPC, FlowCache::load treats the entry as unreadable, ...). See
// DESIGN.md §14 for the site list and the degrade-vs-abort contract.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace hcp::support::failpoint {

namespace detail {
extern std::atomic<std::uint32_t> gNumArmed;
bool shouldFailSlow(std::string_view site);
}  // namespace detail

/// True when at least one failpoint entry is configured.
inline bool armed() {
  return detail::gNumArmed.load(std::memory_order_relaxed) != 0;
}

/// True when the failpoint `site` should fail this hit. The disarmed path is
/// one relaxed load; the armed path takes a mutex (failpoints are a test /
/// CI facility, not a hot path). Thread-safe: a `site:N` entry fires exactly
/// N times process-wide no matter how many threads race on it.
inline bool shouldFail(std::string_view site) {
  return armed() && detail::shouldFailSlow(site);
}

/// Replaces the configuration with `spec` (see grammar above; "" disarms
/// everything). Throws hcp::Error on a malformed entry. Counts reset.
void configure(const std::string& spec);

/// Disarms and forgets every entry (tests).
void clear();

/// How many times the configured entry named exactly `site` has fired.
/// 0 when the entry does not exist.
std::uint64_t firedCount(std::string_view site);

/// Configured entry names, in spec order (tests / diagnostics).
std::vector<std::string> sites();

/// Resolves the spec: `--failpoints SPEC` / `--failpoints=SPEC` on the
/// command line, else the HCP_FAILPOINTS environment variable; configures
/// when one is found and returns it ("" = disarmed). A malformed spec or a
/// `--failpoints` with no value is a usage error: message to stderr, exit 2
/// — mirroring --report/--trace/--cache.
std::string initFromArgs(int argc, char** argv);

/// RAII spec override for tests: configures on construction, restores the
/// previous spec on destruction.
class ScopedFailpoints {
 public:
  explicit ScopedFailpoints(const std::string& spec);
  ~ScopedFailpoints();
  ScopedFailpoints(const ScopedFailpoints&) = delete;
  ScopedFailpoints& operator=(const ScopedFailpoints&) = delete;

 private:
  std::string prev_;
};

}  // namespace hcp::support::failpoint
