// Error handling for the hcp libraries.
//
// Internal invariants and user-facing precondition violations both surface as
// hcp::Error (derived from std::runtime_error) so callers can catch one type.
// The HCP_CHECK macro is used for preconditions that remain active in release
// builds; failures carry the failing expression and source location.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace hcp {

/// Exception type thrown by all hcp libraries on precondition or invariant
/// violation. Carries a human-readable message including source location.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A file the user explicitly asked for (model save, --report, --trace, CSV
/// results, --bench-out) could not be written: open, write, flush, close or
/// rename-into-place failed. Carries the offending path in the message and
/// separately. Distinct from Error so the CLIs can map it to its own exit
/// code (5) — "your artifact was not produced" is a different failure from
/// "the flow itself broke". See DESIGN.md §14.
class IoError : public Error {
 public:
  IoError(const std::string& what, std::string path)
      : Error(what), path_(std::move(path)) {}

  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

namespace detail {
[[noreturn]] inline void checkFailed(const char* expr, const char* file,
                                     int line, const std::string& msg) {
  std::ostringstream os;
  os << "HCP_CHECK failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace hcp

/// Precondition check active in all build types. Throws hcp::Error on failure.
#define HCP_CHECK(expr)                                              \
  do {                                                               \
    if (!(expr)) ::hcp::detail::checkFailed(#expr, __FILE__, __LINE__, ""); \
  } while (0)

/// Like HCP_CHECK but with a streamed message: HCP_CHECK_MSG(x > 0, "x=" << x).
#define HCP_CHECK_MSG(expr, msg)                                     \
  do {                                                               \
    if (!(expr)) {                                                   \
      std::ostringstream hcp_check_os_;                              \
      hcp_check_os_ << msg;                                          \
      ::hcp::detail::checkFailed(#expr, __FILE__, __LINE__,          \
                                 hcp_check_os_.str());               \
    }                                                                \
  } while (0)
