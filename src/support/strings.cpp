#include "support/strings.hpp"

#include <cctype>

namespace hcp {

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    std::size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

std::string join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

bool startsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string toLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

}  // namespace hcp
