// Trace-event timelines: where the aggregate spans of support/telemetry say
// *how much* time a stage took, this sink says *when and on which thread* —
// the per-run timeline a Perfetto / chrome://tracing flame view needs.
//
// Every span begin/end (see HCP_SPAN) is additionally recorded here as a
// timestamped event when tracing is enabled. Events carry the recording
// thread's stable id, the pool task index in flight (-1 outside a task) and
// the span's task-local path. Each thread writes into its own bounded
// buffer with no locking on the hot path; once a buffer is full, further
// events on that thread are dropped and counted (drop-newest: the retained
// prefix stays a well-formed timeline). `writeChromeTrace` exports
// everything as Chrome trace-event JSON ("B"/"E" duration events inside a
// {"traceEvents": [...], "otherData": {...}} object), which both
// chrome://tracing and https://ui.perfetto.dev load directly.
//
// Tracing is a *diagnostic* channel: timestamps and thread assignment vary
// run to run, so trace files are not expected to be byte-identical across
// runs or thread counts — unlike run reports, which are. Enabling tracing
// never perturbs flow results: spans observe, they do not steer.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>

namespace hcp::support::tracing {

/// Default per-thread event capacity (begin + end are separate events).
inline constexpr std::size_t kDefaultBufferCapacity = 1 << 16;

/// True when trace collection is on. One relaxed atomic load.
bool enabled();

/// Turns trace collection on/off process-wide. Enabling records the trace
/// epoch (timestamps in the export are relative to it).
void setEnabled(bool on);

/// Caps each thread's event buffer (applies to buffers created after the
/// call; intended for tests and for HCP_TRACE_BUFFER_EVENTS).
void setBufferCapacity(std::size_t events);

/// Records a span begin/end event on the calling thread's buffer. Called by
/// the telemetry span machinery; `path` is the task-local span path and
/// `taskIndex` the pool task in flight (-1 outside a task).
void recordBegin(std::string_view path, std::int64_t taskIndex);
void recordEnd(std::string_view path, std::int64_t taskIndex);

/// Records a *complete* event ("X" phase): a span whose begin and end are
/// known at record time, with an optional correlation id exported as
/// `args.request`. This is how hcp_serve emits per-request span trees —
/// queue wait and serialization phases only exist in hindsight, once the
/// request is answered, and the correlation id is what lets a Perfetto
/// query stitch one request's phases back together across the timeline.
/// `startNs` is an absolute steady-clock timestamp (same clock as the
/// begin/end events); `durNs` the span length.
void recordComplete(std::string_view path, std::uint64_t startNs,
                    std::uint64_t durNs, std::string_view correlation);

/// Total events dropped because a thread buffer was full.
std::uint64_t droppedEvents();

/// Drops all recorded events and the drop counter (tests). Buffers of live
/// threads are kept registered.
void reset();

/// Metadata embedded in the exported trace ("otherData" section).
struct TraceMeta {
  std::string tool;     ///< binary name, e.g. "hcp_cli"
  std::string command;  ///< subcommand, may be empty
};

/// Writes every thread's recorded events as Chrome trace-event JSON.
void writeChromeTrace(std::ostream& os, const TraceMeta& meta);

/// As above, to `path`. Throws hcp::Error if the file cannot be written.
void writeChromeTraceToFile(const std::string& path, const TraceMeta& meta);

/// Arms incremental flushing: autoFlush() will rewrite `path` (atomically,
/// via CheckedFileWriter) with everything recorded so far. Long-running
/// daemons call autoFlush() at quiescent points so a killed process leaves
/// a usable — merely stale — trace file instead of an absent one.
void configureAutoFlush(std::string path, TraceMeta meta);

/// Rewrites the configured auto-flush file. No-op (returns true) when
/// configureAutoFlush has not run or tracing is off. Returns false instead
/// of throwing on I/O failure — a failed periodic flush must not take the
/// caller down; the final at-exit write still fails loudly. Must be called
/// while recording threads are quiescent (between pool batches), the same
/// contract as writeChromeTrace.
bool autoFlush();

/// Applies HCP_TRACE_BUFFER_EVENTS (exit 2 when malformed) and enables
/// tracing plus telemetry collection — spans must be live for events to
/// exist. Called by initTraceFromArgs once a destination is known; exposed
/// for drivers that parse `--trace` themselves (hcp_cli).
void arm();

/// Resolves the trace destination: `--trace <path>` / `--trace=<path>` on
/// the command line, else the HCP_TRACE environment variable. When a path
/// is found, calls arm(). Returns the path ("" = tracing off). A trailing
/// `--trace` with no value or an empty `--trace=` is a usage error: message
/// to stderr, exit code 2.
std::string initTraceFromArgs(int argc, char** argv);

}  // namespace hcp::support::tracing
