#include "support/telemetry.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <mutex>
#include <ostream>

#include "support/error.hpp"

namespace hcp::support::telemetry {

namespace {

const char* const kCounterNames[kNumCounters] = {
    "flows_run",
    "hls_functions_synthesized",
    "placer_moves_proposed",
    "placer_moves_accepted",
    "placer_moves_rejected",
    "router_iterations",
    "router_ripups",
    "router_overflow_tiles",
    "sta_arrival_propagations",
    "trace_cells_traced",
    "dataset_samples_extracted",
    "gbrt_boosting_rounds",
    "cv_folds_evaluated",
};

/// Global registry: totals flushed out of thread frames. Guarded by a
/// mutex — it is touched only at snapshot/reset time, never on hot paths.
struct Registry {
  std::mutex mu;
  std::array<std::uint64_t, kNumCounters> counters{};
  std::map<std::string, detail::SpanStat> spans;
};

Registry& registry() {
  static Registry r;
  return r;
}

thread_local detail::Frame tlRootFrame;
thread_local detail::Frame* tlFrame = nullptr;

/// Merges `from`'s counters and spans into (counters, spans), prefixing
/// span paths with `prefix` (the receiver's active span path).
void mergeFrameInto(std::array<std::uint64_t, kNumCounters>& counters,
                    std::map<std::string, detail::SpanStat>& spans,
                    const detail::Frame& from, const std::string& prefix,
                    std::uint32_t depthShift) {
  for (std::size_t i = 0; i < kNumCounters; ++i)
    counters[i] += from.counters[i];
  for (const auto& [path, stat] : from.spans) {
    const std::string key = prefix.empty() ? path : prefix + "/" + path;
    detail::SpanStat& dst = spans[key];
    dst.count += stat.count;
    dst.wallNs += stat.wallNs;
    dst.depth = stat.depth + depthShift;
  }
}

std::chrono::steady_clock::time_point& reportStartTime() {
  static std::chrono::steady_clock::time_point t;
  return t;
}

bool& reportStartValid() {
  static bool valid = false;
  return valid;
}

void jsonEscape(std::ostream& os, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) os << ' ';
        else os << c;
    }
  }
}

}  // namespace

std::string_view counterName(Counter c) {
  const auto i = static_cast<std::size_t>(c);
  HCP_CHECK(i < kNumCounters);
  return kCounterNames[i];
}

namespace detail {

std::atomic<bool> gEnabled{false};

Frame& currentFrame() { return tlFrame != nullptr ? *tlFrame : tlRootFrame; }

std::size_t spanEnter(std::string_view name) {
  Frame& f = currentFrame();
  const std::size_t prevLen = f.path.size();
  if (!f.path.empty()) f.path += '/';
  f.path += name;
  ++f.depth;
  return prevLen;
}

void spanExit(std::size_t prevPathLen, std::uint64_t elapsedNs) {
  Frame& f = currentFrame();
  HCP_CHECK(f.depth > 0 && prevPathLen <= f.path.size());
  SpanStat& stat = f.spans[f.path];
  ++stat.count;
  stat.wallNs += elapsedNs;
  stat.depth = f.depth - 1;
  f.path.resize(prevPathLen);
  --f.depth;
}

void countSlow(Counter c, std::uint64_t delta) {
  currentFrame().counters[static_cast<std::size_t>(c)] += delta;
}

std::uint64_t nowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

TaskCapture::TaskCapture(Frame& slot) : prev_(tlFrame) { tlFrame = &slot; }

TaskCapture::~TaskCapture() { tlFrame = prev_; }

void mergeIntoCurrent(const Frame& delta) {
  Frame& f = currentFrame();
  mergeFrameInto(f.counters, f.spans, delta, f.path, f.depth);
}

}  // namespace detail

void setEnabled(bool on) {
  detail::gEnabled.store(on, std::memory_order_relaxed);
}

const Snapshot::SpanEntry* Snapshot::span(std::string_view path) const {
  for (const SpanEntry& e : spans)
    if (e.path == path) return &e;
  return nullptr;
}

Snapshot snapshot() {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lk(reg.mu);
  detail::Frame& f = detail::currentFrame();
  // Flush the caller's frame; keep its open-span path/depth so spans that
  // straddle the snapshot still close correctly.
  mergeFrameInto(reg.counters, reg.spans, f, "", 0);
  f.counters.fill(0);
  f.spans.clear();

  Snapshot snap;
  snap.counters = reg.counters;
  snap.spans.reserve(reg.spans.size());
  for (const auto& [path, stat] : reg.spans)
    snap.spans.push_back({path, stat.depth, stat.count, stat.wallNs});
  return snap;
}

void reset() {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lk(reg.mu);
  reg.counters.fill(0);
  reg.spans.clear();
  detail::Frame& f = detail::currentFrame();
  f.counters.fill(0);
  f.spans.clear();
}

void writeReport(std::ostream& os, const RunReport& meta,
                 const Snapshot& snap) {
  os << "{\n";
  os << "  \"tool\": \"";
  jsonEscape(os, meta.tool);
  os << "\",\n  \"command\": \"";
  jsonEscape(os, meta.command);
  os << "\",\n  \"designs\": [";
  for (std::size_t i = 0; i < meta.designs.size(); ++i) {
    os << (i == 0 ? "" : ", ") << '"';
    jsonEscape(os, meta.designs[i]);
    os << '"';
  }
  os << "],\n";
  os << "  \"seed\": " << meta.seed << ",\n";
  os << "  \"threads\": " << meta.threads << ",\n";
  os << "  \"total_wall_ms\": " << meta.totalWallMs << ",\n";
  os << "  \"spans\": [\n";
  for (std::size_t i = 0; i < snap.spans.size(); ++i) {
    const auto& e = snap.spans[i];
    os << "    {\"path\": \"";
    jsonEscape(os, e.path);
    os << "\", \"depth\": " << e.depth << ", \"count\": " << e.count
       << ", \"wall_ms\": " << static_cast<double>(e.wallNs) / 1e6 << "}"
       << (i + 1 < snap.spans.size() ? "," : "") << "\n";
  }
  os << "  ],\n";
  os << "  \"counters\": {\n";
  for (std::size_t i = 0; i < kNumCounters; ++i) {
    os << "    \"" << kCounterNames[i] << "\": " << snap.counters[i]
       << (i + 1 < kNumCounters ? "," : "") << "\n";
  }
  os << "  }\n}\n";
}

void writeReportToFile(const std::string& path, RunReport meta) {
  if (meta.totalWallMs == 0.0 && reportStartValid()) {
    meta.totalWallMs =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - reportStartTime())
            .count();
  }
  const Snapshot snap = snapshot();
  std::ofstream os(path);
  HCP_CHECK_MSG(os.good(), "cannot open report file " << path);
  writeReport(os, meta, snap);
  HCP_CHECK_MSG(os.good(), "report write failed: " << path);
}

std::string initReportFromArgs(int argc, char** argv) {
  std::string path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--report") == 0 && i + 1 < argc)
      path = argv[i + 1];
    else if (std::strncmp(argv[i], "--report=", 9) == 0)
      path = argv[i] + 9;
  }
  if (path.empty()) {
    if (const char* env = std::getenv("HCP_REPORT")) path = env;
  }
  if (!path.empty()) {
    setEnabled(true);
    reportStartTime() = std::chrono::steady_clock::now();
    reportStartValid() = true;
  }
  return path;
}

}  // namespace hcp::support::telemetry
