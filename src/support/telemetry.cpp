#include "support/telemetry.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <mutex>
#include <ostream>

#include "support/error.hpp"
#include "support/json.hpp"
#include "support/textio.hpp"
#include "support/tracing.hpp"

namespace hcp::support::telemetry {

namespace {

const char* const kCounterNames[kNumCounters] = {
    "flows_run",
    "hls_functions_synthesized",
    "placer_moves_proposed",
    "placer_moves_accepted",
    "placer_moves_rejected",
    "placer_box_rescans",
    "router_iterations",
    "router_ripups",
    "router_overflow_tiles",
    "router_dirty_tiles",
    "sta_arrival_propagations",
    "trace_cells_traced",
    "dataset_samples_extracted",
    "gbrt_boosting_rounds",
    "cv_folds_evaluated",
    "flowcache_hit",
    "flowcache_miss",
    "flowcache_write",
    "flowcache_corrupt",
    "flowcache_store_error",
    "flowcache_load_error",
    "flowcache_degraded",
    "failpoints_fired",
    "serve_requests",
    "serve_batches",
    "serve_errors",
    "serve_rejected",
    "serve_cache_hits",
    "metrics_writes",
    "metrics_write_error",
    "trace_flush_error",
    "serve_map_requests",
    "shard_writes",
    "shard_reads",
};

const char* const kHistogramNames[kNumHistograms] = {
    "placer_accepted_move_delta",
    "router_overflow_tiles_per_iter",
    "sta_slack_ns",
    "net_fanout",
    "dataset_label_pct",
    "cv_fold_mae",
    "cv_fold_medae",
    "serve_batch_size",
    "serve_queue_depth",
    "serve_request_latency_ms",
    "serve_queue_wait_ms",
    "serve_exec_ms",
    "serve_serialize_ms",
};

/// Global registry: totals flushed out of thread frames. Guarded by a
/// mutex — it is touched only at snapshot/reset time, never on hot paths.
struct Registry {
  std::mutex mu;
  std::array<std::uint64_t, kNumCounters> counters{};
  std::array<HistStat, kNumHistograms> histograms{};
  std::map<std::string, detail::SpanStat> spans;
};

Registry& registry() {
  static Registry r;
  return r;
}

thread_local detail::Frame tlRootFrame;
thread_local detail::Frame* tlFrame = nullptr;

/// Merges `from`'s counters and spans into (counters, spans), prefixing
/// span paths with `prefix` (the receiver's active span path).
void mergeFrameInto(std::array<std::uint64_t, kNumCounters>& counters,
                    std::map<std::string, detail::SpanStat>& spans,
                    const detail::Frame& from, const std::string& prefix,
                    std::uint32_t depthShift) {
  for (std::size_t i = 0; i < kNumCounters; ++i)
    counters[i] += from.counters[i];
  for (const auto& [path, stat] : from.spans) {
    const std::string key = prefix.empty() ? path : prefix + "/" + path;
    detail::SpanStat& dst = spans[key];
    dst.count += stat.count;
    dst.wallNs += stat.wallNs;
    dst.depth = stat.depth + depthShift;
  }
}

std::chrono::steady_clock::time_point& reportStartTime() {
  static std::chrono::steady_clock::time_point t;
  return t;
}

bool& reportStartValid() {
  static bool valid = false;
  return valid;
}

// Lossless string escaping (control characters become \u00XX) lives in
// support/json so the serve protocol can share it.
void jsonEscape(std::ostream& os, std::string_view s) {
  json::writeEscaped(os, s);
}

/// Prints a double with enough digits to round-trip exactly: histogram
/// sums/extrema must compare equal across runs, not just look equal.
void jsonNumber(std::ostream& os, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  os << buf;
}

}  // namespace

std::string_view counterName(Counter c) {
  const auto i = static_cast<std::size_t>(c);
  HCP_CHECK(i < kNumCounters);
  return kCounterNames[i];
}

std::string_view histogramName(Histogram h) {
  const auto i = static_cast<std::size_t>(h);
  HCP_CHECK(i < kNumHistograms);
  return kHistogramNames[i];
}

std::size_t HistStat::bucketIndex(double v) {
  constexpr std::size_t kZeroBucket = kBuckets / 2;  // 32
  if (v == 0.0 || std::isnan(v)) return kZeroBucket;
  const double mag = std::abs(v);
  int e;
  if (std::isinf(mag)) {
    e = kMaxExp;
  } else {
    e = std::ilogb(mag);  // floor(log2(mag)) for finite non-zero values
    e = std::clamp(e, kMinExp, kMaxExp);
  }
  const auto slot = static_cast<std::size_t>(e - kMinExp);  // 0..31
  return v > 0.0 ? kZeroBucket + 1 + slot : kZeroBucket - 1 - slot;
}

void HistStat::add(double v) {
  if (std::isnan(v)) return;
  if (count == 0) {
    min = max = v;
  } else {
    min = std::min(min, v);
    max = std::max(max, v);
  }
  ++count;
  sum += v;
  ++buckets[bucketIndex(v)];
}

void HistStat::merge(const HistStat& other) {
  if (other.count == 0) return;
  if (count == 0) {
    min = other.min;
    max = other.max;
  } else {
    min = std::min(min, other.min);
    max = std::max(max, other.max);
  }
  count += other.count;
  sum += other.sum;
  for (std::size_t i = 0; i < kBuckets; ++i) buckets[i] += other.buckets[i];
}

double HistStat::percentile(double q) const {
  if (count == 0) return 0.0;
  constexpr std::size_t kZeroBucket = kBuckets / 2;
  const auto target = static_cast<std::uint64_t>(
      std::max(1.0, std::ceil(q * static_cast<double>(count))));
  std::uint64_t cum = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    cum += buckets[b];
    if (cum < target) continue;
    double edge;
    if (b == kZeroBucket) {
      edge = 0.0;
    } else if (b > kZeroBucket) {
      const int e = kMinExp + static_cast<int>(b - kZeroBucket - 1);
      edge = std::ldexp(1.0, e + 1);  // upper edge of [2^e, 2^(e+1))
    } else {
      const int e = kMinExp + static_cast<int>(kZeroBucket - 1 - b);
      edge = -std::ldexp(1.0, e);  // upper edge of [-2^(e+1), -2^e)
    }
    return std::clamp(edge, min, max);
  }
  return max;
}

namespace detail {

std::atomic<bool> gEnabled{false};

Frame& currentFrame() { return tlFrame != nullptr ? *tlFrame : tlRootFrame; }

std::size_t spanEnter(std::string_view name) {
  Frame& f = currentFrame();
  const std::size_t prevLen = f.path.size();
  if (!f.path.empty()) f.path += '/';
  f.path += name;
  ++f.depth;
  if (tracing::enabled()) tracing::recordBegin(f.path, f.taskIndex);
  return prevLen;
}

void spanExit(std::size_t prevPathLen, std::uint64_t elapsedNs) {
  Frame& f = currentFrame();
  HCP_CHECK(f.depth > 0 && prevPathLen <= f.path.size());
  SpanStat& stat = f.spans[f.path];
  ++stat.count;
  stat.wallNs += elapsedNs;
  stat.depth = f.depth - 1;
  if (tracing::enabled()) tracing::recordEnd(f.path, f.taskIndex);
  f.path.resize(prevPathLen);
  --f.depth;
}

void countSlow(Counter c, std::uint64_t delta) {
  currentFrame().counters[static_cast<std::size_t>(c)] += delta;
}

void observeSlow(Histogram h, double value) {
  Frame& f = currentFrame();
  if (f.hist == nullptr)
    f.hist = std::make_unique<std::array<HistStat, kNumHistograms>>();
  (*f.hist)[static_cast<std::size_t>(h)].add(value);
}

std::uint64_t nowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

TaskCapture::TaskCapture(Frame& slot) : prev_(tlFrame) { tlFrame = &slot; }

TaskCapture::~TaskCapture() { tlFrame = prev_; }

void mergeIntoCurrent(const Frame& delta) {
  Frame& f = currentFrame();
  if (delta.hist != nullptr) {
    if (f.hist == nullptr)
      f.hist = std::make_unique<std::array<HistStat, kNumHistograms>>();
    for (std::size_t i = 0; i < kNumHistograms; ++i)
      (*f.hist)[i].merge((*delta.hist)[i]);
  }
  mergeFrameInto(f.counters, f.spans, delta, f.path, f.depth);
}

}  // namespace detail

void setEnabled(bool on) {
  detail::gEnabled.store(on, std::memory_order_relaxed);
}

const Snapshot::SpanEntry* Snapshot::span(std::string_view path) const {
  for (const SpanEntry& e : spans)
    if (e.path == path) return &e;
  return nullptr;
}

Snapshot snapshot() {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lk(reg.mu);
  detail::Frame& f = detail::currentFrame();
  // Flush the caller's frame; keep its open-span path/depth so spans that
  // straddle the snapshot still close correctly.
  mergeFrameInto(reg.counters, reg.spans, f, "", 0);
  if (f.hist != nullptr) {
    for (std::size_t i = 0; i < kNumHistograms; ++i)
      reg.histograms[i].merge((*f.hist)[i]);
    f.hist.reset();
  }
  f.counters.fill(0);
  f.spans.clear();

  Snapshot snap;
  snap.counters = reg.counters;
  snap.histograms = reg.histograms;
  snap.spans.reserve(reg.spans.size());
  for (const auto& [path, stat] : reg.spans)
    snap.spans.push_back({path, stat.depth, stat.count, stat.wallNs});
  return snap;
}

void reset() {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lk(reg.mu);
  reg.counters.fill(0);
  reg.histograms.fill({});
  reg.spans.clear();
  detail::Frame& f = detail::currentFrame();
  f.counters.fill(0);
  f.hist.reset();
  f.spans.clear();
}

void writeReport(std::ostream& os, const RunReport& meta,
                 const Snapshot& snap) {
  os << "{\n";
  os << "  \"schema_version\": " << kReportSchemaVersion << ",\n";
  os << "  \"tool\": \"";
  jsonEscape(os, meta.tool);
  os << "\",\n  \"command\": \"";
  jsonEscape(os, meta.command);
  os << "\",\n  \"designs\": [";
  for (std::size_t i = 0; i < meta.designs.size(); ++i) {
    os << (i == 0 ? "" : ", ") << '"';
    jsonEscape(os, meta.designs[i]);
    os << '"';
  }
  os << "],\n";
  os << "  \"seed\": " << meta.seed << ",\n";
  os << "  \"threads\": " << meta.threads << ",\n";
  os << "  \"total_wall_ms\": " << meta.totalWallMs << ",\n";
  os << "  \"spans\": [\n";
  for (std::size_t i = 0; i < snap.spans.size(); ++i) {
    const auto& e = snap.spans[i];
    os << "    {\"path\": \"";
    jsonEscape(os, e.path);
    os << "\", \"depth\": " << e.depth << ", \"count\": " << e.count
       << ", \"wall_ms\": " << static_cast<double>(e.wallNs) / 1e6 << "}"
       << (i + 1 < snap.spans.size() ? "," : "") << "\n";
  }
  os << "  ],\n";
  os << "  \"counters\": {\n";
  for (std::size_t i = 0; i < kNumCounters; ++i) {
    os << "    \"" << kCounterNames[i] << "\": " << snap.counters[i]
       << (i + 1 < kNumCounters ? "," : "") << "\n";
  }
  os << "  },\n";
  os << "  \"histograms\": {\n";
  for (std::size_t i = 0; i < kNumHistograms; ++i) {
    const HistStat& h = snap.histograms[i];
    os << "    \"" << kHistogramNames[i] << "\": {\"count\": " << h.count
       << ", \"sum\": ";
    jsonNumber(os, h.sum);
    os << ", \"min\": ";
    jsonNumber(os, h.count ? h.min : 0.0);
    os << ", \"max\": ";
    jsonNumber(os, h.count ? h.max : 0.0);
    os << ", \"p50\": ";
    jsonNumber(os, h.percentile(0.50));
    os << ", \"p90\": ";
    jsonNumber(os, h.percentile(0.90));
    os << ", \"p99\": ";
    jsonNumber(os, h.percentile(0.99));
    os << "}" << (i + 1 < kNumHistograms ? "," : "") << "\n";
  }
  os << "  }\n}\n";
}

void writeReportToFile(const std::string& path, RunReport meta) {
  if (meta.totalWallMs == 0.0 && reportStartValid()) {
    meta.totalWallMs =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - reportStartTime())
            .count();
  }
  const Snapshot snap = snapshot();
  // The report is a user-requested artifact: all I/O verified, written
  // atomically, failures raise hcp::IoError (exit code 5 in the CLIs).
  txt::CheckedFileWriter writer(path, "report");
  writeReport(writer.stream(), meta, snap);
  writer.commit();
}

namespace detail {

std::string flagValueOrDie(int argc, char** argv, std::string_view flag) {
  const std::string bare = "--" + std::string(flag);
  const std::string eq = bare + "=";
  std::string path;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (bare == a) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s expects a value (a file path)\n",
                     bare.c_str());
        std::exit(2);
      }
      path = argv[++i];
    } else if (std::strncmp(a, eq.c_str(), eq.size()) == 0) {
      path = a + eq.size();
    } else {
      continue;
    }
    if (path.empty()) {
      std::fprintf(stderr, "%s expects a non-empty value\n", bare.c_str());
      std::exit(2);
    }
  }
  return path;
}

}  // namespace detail

std::string initReportFromArgs(int argc, char** argv) {
  std::string path = detail::flagValueOrDie(argc, argv, "report");
  if (path.empty()) {
    if (const char* env = std::getenv("HCP_REPORT")) path = env;
  }
  if (!path.empty()) {
    setEnabled(true);
    reportStartTime() = std::chrono::steady_clock::now();
    reportStartValid() = true;
  }
  return path;
}

}  // namespace hcp::support::telemetry
