#include "support/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "support/error.hpp"

namespace hcp::support::json {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value run() {
    skipWs();
    Value v = parseValue(0);
    skipWs();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return v;
  }

 private:
  static constexpr std::size_t kMaxDepth = 64;

  [[noreturn]] void fail(const std::string& what) const {
    throw hcp::Error("JSON parse error at byte " + std::to_string(pos_) +
                     ": " + what);
  }

  bool atEnd() const { return pos_ >= text_.size(); }

  char peek() const {
    if (atEnd()) fail("unexpected end of input");
    return text_[pos_];
  }

  char next() {
    const char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    if (next() != c) {
      --pos_;
      fail(std::string("expected '") + c + "'");
    }
  }

  void skipWs() {
    while (!atEnd()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') ++pos_;
      else break;
    }
  }

  Value parseValue(std::size_t depth) {
    if (depth > kMaxDepth) fail("nesting too deep");
    switch (peek()) {
      case '{': return parseObject(depth);
      case '[': return parseArray(depth);
      case '"': return parseString();
      case 't': case 'f': return parseBool();
      case 'n': return parseNull();
      default: return parseNumber();
    }
  }

  void expectWord(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) fail("invalid literal");
    pos_ += word.size();
  }

  Value parseNull() {
    expectWord("null");
    return {};
  }

  Value parseBool() {
    Value v;
    v.kind = Value::Kind::Bool;
    if (peek() == 't') {
      expectWord("true");
      v.boolean = true;
    } else {
      expectWord("false");
      v.boolean = false;
    }
    return v;
  }

  Value parseNumber() {
    const std::size_t start = pos_;
    if (!atEnd() && text_[pos_] == '-') ++pos_;
    // Integer part: a single 0, or [1-9][0-9]*. Leading zeros are invalid.
    if (atEnd() || !std::isdigit(static_cast<unsigned char>(text_[pos_])))
      fail("invalid number");
    if (text_[pos_] == '0') {
      ++pos_;
    } else {
      while (!atEnd() && std::isdigit(static_cast<unsigned char>(text_[pos_])))
        ++pos_;
    }
    if (!atEnd() && text_[pos_] == '.') {
      ++pos_;
      if (atEnd() || !std::isdigit(static_cast<unsigned char>(text_[pos_])))
        fail("digit expected after decimal point");
      while (!atEnd() && std::isdigit(static_cast<unsigned char>(text_[pos_])))
        ++pos_;
    }
    if (!atEnd() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (!atEnd() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      if (atEnd() || !std::isdigit(static_cast<unsigned char>(text_[pos_])))
        fail("digit expected in exponent");
      while (!atEnd() && std::isdigit(static_cast<unsigned char>(text_[pos_])))
        ++pos_;
    }
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || !std::isfinite(d))
      fail("number out of range");
    Value v;
    v.kind = Value::Kind::Number;
    v.number = d;
    return v;
  }

  unsigned parseHex4() {
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = next();
      code <<= 4;
      if (c >= '0' && c <= '9') code |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') code |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') code |= static_cast<unsigned>(c - 'A' + 10);
      else fail("invalid \\u escape");
    }
    return code;
  }

  void appendUtf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  Value parseString() {
    Value v;
    v.kind = Value::Kind::String;
    v.str = parseRawString();
    return v;
  }

  std::string parseRawString() {
    expect('"');
    std::string out;
    for (;;) {
      const char c = next();
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20)
        fail("unescaped control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      const char e = next();
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned cp = parseHex4();
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            if (next() != '\\' || next() != 'u') fail("unpaired surrogate");
            const unsigned lo = parseHex4();
            if (lo < 0xDC00 || lo > 0xDFFF) fail("invalid low surrogate");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            fail("unpaired surrogate");
          }
          appendUtf8(out, cp);
          break;
        }
        default: fail("invalid escape character");
      }
    }
  }

  Value parseArray(std::size_t depth) {
    Value v;
    v.kind = Value::Kind::Array;
    expect('[');
    skipWs();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.array.push_back(parseValue(depth + 1));
      skipWs();
      const char c = next();
      if (c == ']') return v;
      if (c != ',') {
        --pos_;
        fail("expected ',' or ']'");
      }
      skipWs();
    }
  }

  Value parseObject(std::size_t depth) {
    Value v;
    v.kind = Value::Kind::Object;
    expect('{');
    skipWs();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skipWs();
      std::string key = parseRawString();
      skipWs();
      expect(':');
      skipWs();
      v.object.emplace_back(std::move(key), parseValue(depth + 1));
      skipWs();
      const char c = next();
      if (c == '}') return v;
      if (c != ',') {
        --pos_;
        fail("expected ',' or '}'");
      }
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

const Value* Value::find(std::string_view key) const {
  if (!isObject()) return nullptr;
  for (const auto& [k, v] : object)
    if (k == key) return &v;
  return nullptr;
}

double Value::asNumber() const {
  HCP_CHECK_MSG(isNumber(), "JSON value is not a number");
  return number;
}

const std::string& Value::asString() const {
  HCP_CHECK_MSG(isString(), "JSON value is not a string");
  return str;
}

bool Value::asBool() const {
  HCP_CHECK_MSG(isBool(), "JSON value is not a bool");
  return boolean;
}

Value parse(std::string_view text) { return Parser(text).run(); }

Value parseFile(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  HCP_CHECK_MSG(is.good(), "cannot open JSON file " << path);
  std::ostringstream buf;
  buf << is.rdbuf();
  HCP_CHECK_MSG(!is.bad(), "read failed: " << path);
  return parse(buf.str());
}

void writeEscaped(std::ostream& os, std::string_view s) {
  static const char* const kHex = "0123456789abcdef";
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      case '\r': os << "\\r"; break;
      case '\b': os << "\\b"; break;
      case '\f': os << "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          const auto u = static_cast<unsigned char>(c);
          os << "\\u00" << kHex[(u >> 4) & 0xF] << kHex[u & 0xF];
        } else {
          os << c;
        }
    }
  }
}

std::string escape(std::string_view s) {
  std::ostringstream os;
  writeEscaped(os, s);
  return std::move(os).str();
}

}  // namespace hcp::support::json
