#include "support/parallel.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <limits>
#include <mutex>
#include <thread>

#include "support/env.hpp"
#include "support/telemetry.hpp"

namespace hcp::support {

namespace {

// Hard cap on pool workers; the limit also bounds oversubscription when a
// test requests more threads than the machine has cores.
constexpr std::size_t kMaxWorkers = 63;

std::atomic<std::size_t>& globalLimit() {
  static std::atomic<std::size_t> limit{detail::threadLimitFromEnv()};
  return limit;
}

thread_local std::size_t tlLimitOverride = 0;  // 0 = no override
thread_local int tlParallelDepth = 0;

/// Persistent worker pool executing one batch of indexed tasks at a time.
/// The submitting thread participates, so a batch at concurrency c uses the
/// caller plus c-1 workers. Workers are spawned lazily up to the requested
/// concurrency and kept for the process lifetime.
class ThreadPool {
 public:
  static ThreadPool& instance() {
    static ThreadPool pool;
    return pool;
  }

  void run(std::size_t numTasks, std::size_t concurrency,
           const std::function<void(std::size_t)>& task) {
    // One batch at a time; a second top-level caller queues behind the
    // first. (Nested calls never reach here — they run inline.)
    std::lock_guard<std::mutex> runLock(runMu_);
    ensureWorkers(concurrency - 1);
    {
      std::lock_guard<std::mutex> lk(mu_);
      task_ = &task;
      numTasks_ = numTasks;
      nextTask_.store(0, std::memory_order_relaxed);
      remaining_.store(numTasks, std::memory_order_relaxed);
      activeWorkers_ = std::min(workers_.size(), concurrency - 1);
      errorIdx_ = numTasks;
      error_ = nullptr;
      ++generation_;
    }
    cv_.notify_all();

    ++tlParallelDepth;
    workOn(&task, numTasks);
    --tlParallelDepth;

    std::exception_ptr error;
    {
      std::unique_lock<std::mutex> lk(mu_);
      // Wait until every task ran AND every woken worker has left workOn.
      // The second condition is load-bearing: a worker that finished the
      // final task can still be between its remaining_ decrement and its
      // next nextTask_ fetch; tearing the batch down (or starting the next
      // one, which resets nextTask_) while it lingers would hand it a
      // dangling task pointer.
      doneCv_.wait(lk, [&] {
        return remaining_.load(std::memory_order_acquire) == 0 &&
               busyWorkers_ == 0;
      });
      task_ = nullptr;
      error = error_;
    }
    if (error) std::rethrow_exception(error);
  }

 private:
  ThreadPool() = default;

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      shutdown_ = true;
    }
    cv_.notify_all();
    for (std::thread& t : workers_) t.join();
  }

  void ensureWorkers(std::size_t want) {
    want = std::min(want, kMaxWorkers);
    std::lock_guard<std::mutex> lk(mu_);
    while (workers_.size() < want) {
      const std::size_t idx = workers_.size();
      workers_.emplace_back([this, idx] { workerLoop(idx); });
    }
  }

  void workerLoop(std::size_t idx) {
    std::uint64_t seenGeneration = 0;
    for (;;) {
      const std::function<void(std::size_t)>* task = nullptr;
      std::size_t numTasks = 0;
      {
        std::unique_lock<std::mutex> lk(mu_);
        cv_.wait(lk, [&] {
          return shutdown_ || (generation_ != seenGeneration &&
                               task_ != nullptr && idx < activeWorkers_);
        });
        if (shutdown_) return;
        seenGeneration = generation_;
        task = task_;
        numTasks = numTasks_;
        ++busyWorkers_;
      }
      ++tlParallelDepth;
      workOn(task, numTasks);
      --tlParallelDepth;
      {
        std::lock_guard<std::mutex> lk(mu_);
        if (--busyWorkers_ == 0) doneCv_.notify_all();
      }
    }
  }

  void workOn(const std::function<void(std::size_t)>* task,
              std::size_t numTasks) {
    for (;;) {
      const std::size_t i =
          nextTask_.fetch_add(1, std::memory_order_relaxed);
      if (i >= numTasks) return;
      try {
        (*task)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lk(mu_);
        if (i < errorIdx_) {
          errorIdx_ = i;
          error_ = std::current_exception();
        }
      }
      if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> lk(mu_);
        doneCv_.notify_all();
      }
    }
  }

  std::mutex runMu_;  ///< serializes top-level batches

  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable doneCv_;
  std::vector<std::thread> workers_;
  bool shutdown_ = false;

  // Current batch (guarded by mu_ except the atomics).
  const std::function<void(std::size_t)>* task_ = nullptr;
  std::size_t numTasks_ = 0;
  std::size_t activeWorkers_ = 0;
  std::size_t busyWorkers_ = 0;  ///< workers currently inside workOn
  std::uint64_t generation_ = 0;
  std::atomic<std::size_t> nextTask_{0};
  std::atomic<std::size_t> remaining_{0};
  std::size_t errorIdx_ = 0;
  std::exception_ptr error_;
};

}  // namespace

std::size_t threadLimit() {
  return tlLimitOverride != 0 ? tlLimitOverride
                              : globalLimit().load(std::memory_order_relaxed);
}

void setThreadLimit(std::size_t n) {
  HCP_CHECK(n >= 1);
  globalLimit().store(std::min(n, kMaxWorkers + 1),
                      std::memory_order_relaxed);
}

ScopedThreadLimit::ScopedThreadLimit(std::size_t n) : prev_(tlLimitOverride) {
  HCP_CHECK(n >= 1);
  tlLimitOverride = std::min(n, kMaxWorkers + 1);
}

ScopedThreadLimit::~ScopedThreadLimit() { tlLimitOverride = prev_; }

namespace detail {

std::size_t threadLimitFromEnv() {
  // Values above the worker cap clamp (asking for more threads than the
  // pool will ever spawn is harmless); anything that is not a positive
  // integer exits 2 — HCP_THREADS=4abc silently running with 4 threads and
  // HCP_THREADS=garbage silently using every core were the bugs here.
  // Unset or empty (CI's serial/parallel matrix exports HCP_THREADS="")
  // falls back to hardware concurrency via the 0 sentinel.
  const std::uint64_t v = env::u64OrDie(
      "HCP_THREADS", 1, std::numeric_limits<std::uint64_t>::max(), 0);
  if (v >= 1) return std::min<std::size_t>(v, kMaxWorkers + 1);
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : std::min<std::size_t>(hw, kMaxWorkers + 1);
}

bool inParallelRegion() { return tlParallelDepth > 0; }

bool wantTaskCapture() {
  return telemetry::enabled() && !inParallelRegion();
}

std::size_t effectiveConcurrency(std::size_t numTasks) {
  if (numTasks <= 1 || inParallelRegion()) return 1;
  return std::max<std::size_t>(1, std::min(threadLimit(), numTasks));
}

namespace {

/// Runs task(0..numTasks) on the calling thread, inside a parallel region.
void runSerial(std::size_t numTasks,
               const std::function<void(std::size_t)>& task) {
  ++tlParallelDepth;
  try {
    for (std::size_t i = 0; i < numTasks; ++i) task(i);
  } catch (...) {
    --tlParallelDepth;
    throw;
  }
  --tlParallelDepth;
}

}  // namespace

void runTasks(std::size_t numTasks, std::size_t concurrency,
              const std::function<void(std::size_t)>& task) {
  if (numTasks == 0) return;
  if (!wantTaskCapture() || numTasks == 1) {
    if (concurrency <= 1 || numTasks == 1) {
      runSerial(numTasks, task);
    } else {
      ThreadPool::instance().run(numTasks, concurrency, task);
    }
    return;
  }
  // Telemetry on: give every task its own delta frame and merge the deltas
  // back into the submitting thread's frame in task-index order, so the
  // recorded spans/counters/histograms are independent of which worker ran
  // what. The serial path takes the same per-task detour: floating-point
  // sums come out of the exact same partials merged in the exact same
  // order, hence bit-identical at any thread count. Spans recorded inside a
  // task are prefixed with the submitter's currently-open span path at
  // merge time.
  std::vector<telemetry::detail::Frame> deltas(numTasks);
  const std::function<void(std::size_t)> captured = [&](std::size_t i) {
    deltas[i].taskIndex = static_cast<std::int64_t>(i);
    telemetry::detail::TaskCapture capture(deltas[i]);
    task(i);
  };
  try {
    if (concurrency <= 1) {
      runSerial(numTasks, captured);
    } else {
      ThreadPool::instance().run(numTasks, concurrency, captured);
    }
  } catch (...) {
    for (const auto& d : deltas) telemetry::detail::mergeIntoCurrent(d);
    throw;
  }
  for (const auto& d : deltas) telemetry::detail::mergeIntoCurrent(d);
}

}  // namespace detail

}  // namespace hcp::support
