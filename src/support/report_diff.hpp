// Report diffing: the regression gate behind `hcp_cli compare-reports`.
//
// Compares two telemetry run reports (support/telemetry.hpp, schema
// version 2) span by span, counter by counter and histogram by histogram,
// prints the deltas, and decides whether NEW regressed relative to BASE:
//
//   - wall time: with maxWallRegressPct >= 0, total_wall_ms may grow by at
//     most that percentage (spans are printed but not individually gated —
//     per-span wall noise would make the gate flap);
//   - counters: with requireCountersEqual, every counter total and every
//     histogram observation count must match exactly. The pipeline is
//     deterministic at fixed seed, so any drift is a real behaviour change
//     — the cheap-to-check shadow of a functional diff.
//
// Exit codes are part of the contract (CI keys off them):
//   0 = no regression, 1 = regression, 4 = malformed input or unsupported
//   schema_version. Distinct from hcp_cli's 2 (usage) and 3 (internal).
#pragma once

#include <iosfwd>
#include <string>

namespace hcp::support::report_diff {

inline constexpr int kExitOk = 0;
inline constexpr int kExitRegression = 1;
inline constexpr int kExitBadInput = 4;

struct Options {
  double maxWallRegressPct = -1.0;  ///< < 0 disables the wall-time gate
  bool requireCountersEqual = false;
  std::string benchOutPath;  ///< write a machine-readable summary here ("" = off)
};

/// Compares the two report files, printing a human-readable delta table to
/// `out`. Returns one of the kExit* codes above; never throws on bad input
/// files (that is what kExitBadInput reports).
int compareReportFiles(const std::string& basePath,
                       const std::string& newPath, const Options& options,
                       std::ostream& out);

}  // namespace hcp::support::report_diff
