// ASCII table and CSV rendering used by the bench harnesses that regenerate
// the paper's tables. Cells are strings; formatting helpers produce fixed
// precision so tables are diffable across runs.
#pragma once

#include <string>
#include <vector>

namespace hcp {

/// Accumulates rows and renders them as an aligned ASCII table or CSV.
class Table {
 public:
  explicit Table(std::string title = "");

  /// Sets the header row. Must be called before addRow.
  void setHeader(std::vector<std::string> header);

  /// Appends a data row; must have the same arity as the header.
  void addRow(std::vector<std::string> row);

  /// Renders an aligned, boxed ASCII table (with title if non-empty).
  std::string toAscii() const;

  /// Renders RFC-4180-ish CSV (quotes cells containing comma/quote/newline).
  std::string toCsv() const;

  /// Writes toCsv() to `path`, throwing hcp::Error on I/O failure.
  void writeCsv(const std::string& path) const;

  std::size_t rowCount() const { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (default 2 decimals).
std::string fmt(double v, int precision = 2);

/// Formats a double in scientific notation with 2 decimals (e.g. 1.08e+06),
/// matching the paper's latency rows.
std::string fmtSci(double v);

}  // namespace hcp
