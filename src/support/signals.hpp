// Process signal disposition shared by every hcp binary.
#pragma once

#include <signal.h>

#include <csignal>

namespace hcp::support {

/// Ignores SIGPIPE process-wide. Without this, `hcp_cli ... | head` (or a
/// serve client that disconnects mid-response) kills the process with a
/// signal before any error path runs; with it, the failed write surfaces as
/// an EPIPE stream error that the callers map onto hcp::IoError and the
/// artifact-write exit code (5). Call once at binary startup, before any
/// output is produced.
inline void ignoreSigpipe() { std::signal(SIGPIPE, SIG_IGN); }

namespace detail {
inline volatile std::sig_atomic_t gTerminationRequested = 0;
inline void terminationHandler(int) { gTerminationRequested = 1; }
}  // namespace detail

/// True once SIGTERM/SIGINT arrived after installTerminationHandler().
/// Blocking reads/accepts observe it via the EINTR their syscall returns.
inline bool terminationRequested() {
  return detail::gTerminationRequested != 0;
}

/// Routes SIGTERM and SIGINT through a flag instead of the default
/// process kill, *without* SA_RESTART — the signal must interrupt the
/// blocking read()/accept() a daemon sits in so its loop can observe
/// terminationRequested(), drain, and run the normal at-exit artifact
/// writes (report, trace, metrics snapshot). A killed daemon then differs
/// from a clean one only in how its input ended.
inline void installTerminationHandler() {
  struct sigaction sa {};
  sa.sa_handler = detail::terminationHandler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // no SA_RESTART: blocked syscalls must return EINTR
  sigaction(SIGTERM, &sa, nullptr);
  sigaction(SIGINT, &sa, nullptr);
}

}  // namespace hcp::support
