// Process signal disposition shared by every hcp binary.
#pragma once

#include <csignal>

namespace hcp::support {

/// Ignores SIGPIPE process-wide. Without this, `hcp_cli ... | head` (or a
/// serve client that disconnects mid-response) kills the process with a
/// signal before any error path runs; with it, the failed write surfaces as
/// an EPIPE stream error that the callers map onto hcp::IoError and the
/// artifact-write exit code (5). Call once at binary startup, before any
/// output is produced.
inline void ignoreSigpipe() { std::signal(SIGPIPE, SIG_IGN); }

}  // namespace hcp::support
