#include "support/stats.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"

namespace hcp {

double mean(std::span<const double> v) {
  if (v.empty()) return 0.0;
  double s = 0.0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

double stddev(std::span<const double> v) {
  if (v.size() < 2) return 0.0;
  const double m = mean(v);
  double s = 0.0;
  for (double x : v) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(v.size()));
}

double median(std::span<const double> v) {
  if (v.empty()) return 0.0;
  std::vector<double> c(v.begin(), v.end());
  const std::size_t mid = c.size() / 2;
  std::nth_element(c.begin(), c.begin() + static_cast<std::ptrdiff_t>(mid),
                   c.end());
  double hi = c[mid];
  if (c.size() % 2 == 1) return hi;
  double lo = *std::max_element(
      c.begin(), c.begin() + static_cast<std::ptrdiff_t>(mid));
  return 0.5 * (lo + hi);
}

double percentile(std::span<const double> v, double p) {
  HCP_CHECK(!v.empty());
  HCP_CHECK(p >= 0.0 && p <= 100.0);
  std::vector<double> c(v.begin(), v.end());
  std::sort(c.begin(), c.end());
  if (c.size() == 1) return c[0];
  const double rank = p / 100.0 * static_cast<double>(c.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, c.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return c[lo] + frac * (c[hi] - c[lo]);
}

double minOf(std::span<const double> v) {
  HCP_CHECK(!v.empty());
  return *std::min_element(v.begin(), v.end());
}

double maxOf(std::span<const double> v) {
  HCP_CHECK(!v.empty());
  return *std::max_element(v.begin(), v.end());
}

Summary summarize(std::span<const double> v) {
  Summary s;
  s.count = v.size();
  if (v.empty()) return s;
  s.min = minOf(v);
  s.max = maxOf(v);
  s.mean = mean(v);
  s.median = median(v);
  s.stddev = stddev(v);
  return s;
}

std::vector<std::size_t> histogram(std::span<const double> v, double lo,
                                   double hi, std::size_t bins) {
  HCP_CHECK(bins > 0);
  HCP_CHECK(hi > lo);
  std::vector<std::size_t> h(bins, 0);
  const double width = (hi - lo) / static_cast<double>(bins);
  for (double x : v) {
    double idx = (x - lo) / width;
    std::size_t b = 0;
    if (idx >= static_cast<double>(bins)) {
      b = bins - 1;
    } else if (idx > 0.0) {
      b = static_cast<std::size_t>(idx);
    }
    ++h[b];
  }
  return h;
}

double pearson(std::span<const double> a, std::span<const double> b) {
  HCP_CHECK(a.size() == b.size());
  if (a.size() < 2) return 0.0;
  const double ma = mean(a);
  const double mb = mean(b);
  double cov = 0.0, va = 0.0, vb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    cov += (a[i] - ma) * (b[i] - mb);
    va += (a[i] - ma) * (a[i] - ma);
    vb += (b[i] - mb) * (b[i] - mb);
  }
  if (va == 0.0 || vb == 0.0) return 0.0;
  return cov / std::sqrt(va * vb);
}

}  // namespace hcp
