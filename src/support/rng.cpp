#include "support/rng.hpp"

#include <cmath>

namespace hcp {

namespace {
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& lane : s_) lane = splitmix64(sm);
  // All-zero state is invalid for xoshiro; splitmix64 cannot produce four
  // zero outputs in a row, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::uniformInt(std::uint64_t bound) {
  HCP_CHECK(bound > 0);
  // Lemire's multiply-shift rejection method.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  std::uint64_t l = static_cast<std::uint64_t>(m);
  if (l < bound) {
    std::uint64_t t = -bound % bound;
    while (l < t) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniformRange(std::int64_t lo, std::int64_t hi) {
  HCP_CHECK(lo <= hi);
  std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next());  // full 64-bit range
  return lo + static_cast<std::int64_t>(uniformInt(span));
}

double Rng::uniformReal() {
  // 53 high bits → uniform in [0,1) with full double precision.
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniformReal(double lo, double hi) {
  return lo + (hi - lo) * uniformReal();
}

double Rng::normal() {
  if (hasCachedNormal_) {
    hasCachedNormal_ = false;
    return cachedNormal_;
  }
  double u1 = 0.0;
  do {
    u1 = uniformReal();
  } while (u1 <= 0.0);
  const double u2 = uniformReal();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cachedNormal_ = r * std::sin(theta);
  hasCachedNormal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniformReal() < p;
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> p(n);
  for (std::size_t i = 0; i < n; ++i) p[i] = i;
  shuffle(p);
  return p;
}

Rng Rng::fork() { return Rng(next()); }

}  // namespace hcp
