// Shared primitives of the line-oriented text serializers (ir/hls/rtl/fpga/
// trace `serialize.hpp`, ml/serialize.cpp's older sibling). The format goals
// are the ones the flow cache needs:
//
//   - *exact* round trips: doubles are printed with 17 significant digits
//     (writers call `preparePrecision` once per document), so
//     save -> load -> save reproduces the original file byte for byte and
//     loaded values are bit-identical to the saved ones;
//   - robust strings: length-prefixed raw bytes (`5 hello`), so names with
//     spaces or any other byte survive unquoted;
//   - loud failures: every read checks the stream and throws hcp::Error on
//     truncation or token mismatch — a corrupt document can never parse into
//     a half-filled struct silently.
#pragma once

#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

#include "support/error.hpp"
#include "support/failpoint.hpp"

namespace hcp::support::txt {

/// Fail-safe file writer used by every artifact-producing site (model save,
/// run report, trace timeline, CSV tables, flow-cache entries). The contract
/// the bare `std::ofstream` writers violated:
///
///   - *atomic*: bytes go to `<path>.tmp.<pid>.<ticket>`; only commit()
///     renames into place, so a crash, an exception or ENOSPC mid-write can
///     never leave a truncated file under the final name. The destructor
///     removes the temp file when commit() was not reached.
///   - *verified*: open, write, flush, close and rename are all checked;
///     any failure throws hcp::IoError naming the destination path and the
///     errno reason. A short write on a full disk raises at commit() instead
///     of surfacing as a corrupt artifact at load time.
///   - *injectable*: each boundary consults a named failpoint
///     (`<site>.open`, `<site>.write`, `<site>.rename` — see
///     support/failpoint.hpp), so tests and CI can exercise every failure
///     path deterministically.
///
/// Failure policy is the caller's: artifact writers let the IoError
/// propagate (exit code 5), the flow cache catches it and degrades to
/// recompute (DESIGN.md §14).
class CheckedFileWriter {
 public:
  CheckedFileWriter(std::string path, std::string site)
      : path_(std::move(path)), site_(std::move(site)) {
    static std::atomic<std::uint64_t> ticket{0};
    std::ostringstream tmpName;
    tmpName << path_ << ".tmp." << static_cast<unsigned long>(::getpid())
            << "." << ticket.fetch_add(1, std::memory_order_relaxed);
    tmp_ = tmpName.str();
    if (failpoint::shouldFail(site_ + ".open"))
      fail("cannot open", EACCES, true);
    errno = 0;
    os_.open(tmp_, std::ios::binary | std::ios::trunc);
    if (!os_.good()) fail("cannot open", errno, false);
  }

  ~CheckedFileWriter() {
    if (committed_) return;
    os_.close();
    std::error_code ec;
    std::filesystem::remove(tmp_, ec);  // best effort; never throws
  }

  CheckedFileWriter(const CheckedFileWriter&) = delete;
  CheckedFileWriter& operator=(const CheckedFileWriter&) = delete;

  /// The buffered stream. Callers need not check it between writes —
  /// commit() observes any sticky error bit.
  std::ostream& stream() { return os_; }
  const std::string& path() const { return path_; }

  /// Flush + close + rename into place, verifying each step. Throws
  /// hcp::IoError (and removes the temp file) on any failure, including a
  /// failure that happened during earlier buffered writes.
  void commit() {
    if (failpoint::shouldFail(site_ + ".write"))
      os_.setstate(std::ios::badbit);  // as if a buffer flush hit ENOSPC
    errno = 0;
    os_.flush();
    if (!os_.good()) fail("write failed for", errno != 0 ? errno : ENOSPC,
                          true);
    os_.close();
    if (os_.fail()) fail("close failed for", errno != 0 ? errno : ENOSPC,
                         true);
    std::error_code ec;
    if (failpoint::shouldFail(site_ + ".rename"))
      ec = std::make_error_code(std::errc::no_space_on_device);
    else
      std::filesystem::rename(tmp_, path_, ec);
    if (ec) {
      std::error_code ignored;
      std::filesystem::remove(tmp_, ignored);
      throw IoError("cannot move " + tmp_ + " into place at " + path_ +
                        ": " + ec.message(),
                    path_);
    }
    committed_ = true;
  }

 private:
  [[noreturn]] void fail(const char* verb, int err, bool removeTmp) {
    if (removeTmp) {
      os_.close();
      std::error_code ec;
      std::filesystem::remove(tmp_, ec);
    }
    committed_ = true;  // nothing left to clean up in the destructor
    std::ostringstream msg;
    msg << verb << ' ' << path_ << ": "
        << (err != 0 ? std::strerror(err) : "stream error");
    throw IoError(msg.str(), path_);
  }

  std::string path_, site_, tmp_;
  std::ofstream os_;
  bool committed_ = false;
};

/// Sets the float formatting contract of a serialized document. Call at the
/// top of every public write entry point.
inline void preparePrecision(std::ostream& os) { os.precision(17); }

/// Reads one whitespace-delimited token and requires it to equal `token`.
inline void expect(std::istream& is, const char* token) {
  std::string got;
  HCP_CHECK_MSG(static_cast<bool>(is >> got) && got == token,
                "serialized document: expected '" << token << "', got '"
                                                  << got << "'");
}

/// Checked `>>` for arithmetic values.
template <typename T>
T read(std::istream& is, const char* what) {
  T v{};
  HCP_CHECK_MSG(static_cast<bool>(is >> v),
                "serialized document: truncated while reading " << what);
  return v;
}

/// Bools as 0/1 (operator>> would also accept them, but keep writes explicit).
inline void writeBool(std::ostream& os, bool b) { os << (b ? 1 : 0); }

inline bool readBool(std::istream& is, const char* what) {
  const int v = read<int>(is, what);
  HCP_CHECK_MSG(v == 0 || v == 1, what << ": bool must be 0 or 1, got " << v);
  return v != 0;
}

/// Length-prefixed string: `<size> <raw bytes>`. The single separator after
/// the size is consumed exactly, so the bytes may contain anything.
inline void writeStr(std::ostream& os, const std::string& s) {
  os << s.size() << ' ' << s;
}

inline std::string readStr(std::istream& is, const char* what) {
  const auto n = read<std::size_t>(is, what);
  HCP_CHECK_MSG(is.get() == ' ',
                what << ": malformed string (missing separator)");
  std::string s(n, '\0');
  is.read(s.data(), static_cast<std::streamsize>(n));
  HCP_CHECK_MSG(static_cast<std::size_t>(is.gcount()) == n,
                what << ": truncated string (wanted " << n << " bytes)");
  return s;
}

/// `<n> v0 v1 ...` vectors of arithmetic values.
template <typename T>
void writeVec(std::ostream& os, const std::vector<T>& v) {
  os << v.size();
  for (const T& x : v) os << ' ' << x;
}

template <typename T>
std::vector<T> readVec(std::istream& is, const char* what) {
  const auto n = read<std::size_t>(is, what);
  std::vector<T> v;
  v.reserve(n);
  for (std::size_t i = 0; i < n; ++i) v.push_back(read<T>(is, what));
  return v;
}

/// Requires that nothing but whitespace remains — the no-trailing-garbage
/// check every top-level reader runs before declaring success.
inline void expectEnd(std::istream& is, const char* what) {
  is >> std::ws;
  std::string extra;
  HCP_CHECK_MSG(!(is >> extra),
                what << ": trailing garbage '" << extra << "' after document");
}

}  // namespace hcp::support::txt
