// Shared primitives of the line-oriented text serializers (ir/hls/rtl/fpga/
// trace `serialize.hpp`, ml/serialize.cpp's older sibling). The format goals
// are the ones the flow cache needs:
//
//   - *exact* round trips: doubles are printed with 17 significant digits
//     (writers call `preparePrecision` once per document), so
//     save -> load -> save reproduces the original file byte for byte and
//     loaded values are bit-identical to the saved ones;
//   - robust strings: length-prefixed raw bytes (`5 hello`), so names with
//     spaces or any other byte survive unquoted;
//   - loud failures: every read checks the stream and throws hcp::Error on
//     truncation or token mismatch — a corrupt document can never parse into
//     a half-filled struct silently.
#pragma once

#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "support/error.hpp"

namespace hcp::support::txt {

/// Sets the float formatting contract of a serialized document. Call at the
/// top of every public write entry point.
inline void preparePrecision(std::ostream& os) { os.precision(17); }

/// Reads one whitespace-delimited token and requires it to equal `token`.
inline void expect(std::istream& is, const char* token) {
  std::string got;
  HCP_CHECK_MSG(static_cast<bool>(is >> got) && got == token,
                "serialized document: expected '" << token << "', got '"
                                                  << got << "'");
}

/// Checked `>>` for arithmetic values.
template <typename T>
T read(std::istream& is, const char* what) {
  T v{};
  HCP_CHECK_MSG(static_cast<bool>(is >> v),
                "serialized document: truncated while reading " << what);
  return v;
}

/// Bools as 0/1 (operator>> would also accept them, but keep writes explicit).
inline void writeBool(std::ostream& os, bool b) { os << (b ? 1 : 0); }

inline bool readBool(std::istream& is, const char* what) {
  const int v = read<int>(is, what);
  HCP_CHECK_MSG(v == 0 || v == 1, what << ": bool must be 0 or 1, got " << v);
  return v != 0;
}

/// Length-prefixed string: `<size> <raw bytes>`. The single separator after
/// the size is consumed exactly, so the bytes may contain anything.
inline void writeStr(std::ostream& os, const std::string& s) {
  os << s.size() << ' ' << s;
}

inline std::string readStr(std::istream& is, const char* what) {
  const auto n = read<std::size_t>(is, what);
  HCP_CHECK_MSG(is.get() == ' ',
                what << ": malformed string (missing separator)");
  std::string s(n, '\0');
  is.read(s.data(), static_cast<std::streamsize>(n));
  HCP_CHECK_MSG(static_cast<std::size_t>(is.gcount()) == n,
                what << ": truncated string (wanted " << n << " bytes)");
  return s;
}

/// `<n> v0 v1 ...` vectors of arithmetic values.
template <typename T>
void writeVec(std::ostream& os, const std::vector<T>& v) {
  os << v.size();
  for (const T& x : v) os << ' ' << x;
}

template <typename T>
std::vector<T> readVec(std::istream& is, const char* what) {
  const auto n = read<std::size_t>(is, what);
  std::vector<T> v;
  v.reserve(n);
  for (std::size_t i = 0; i < n; ++i) v.push_back(read<T>(is, what));
  return v;
}

/// Requires that nothing but whitespace remains — the no-trailing-garbage
/// check every top-level reader runs before declaring success.
inline void expectEnd(std::istream& is, const char* what) {
  is >> std::ws;
  std::string extra;
  HCP_CHECK_MSG(!(is >> extra),
                what << ": trailing garbage '" << extra << "' after document");
}

}  // namespace hcp::support::txt
