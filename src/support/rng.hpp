// Deterministic random number generation.
//
// Every stochastic stage in the repository (placer moves, router tie-breaks,
// ML weight init, dataset splits) takes an explicit seed and owns its own Rng
// instance; there is no global RNG state. The generator is xoshiro256**
// seeded via splitmix64, which is fast, high-quality and reproducible across
// platforms (unlike std::mt19937 + std::uniform_* whose distributions are
// implementation-defined — we implement our own distribution mappings).
#pragma once

#include <cstdint>
#include <vector>

#include "support/error.hpp"

namespace hcp {

/// xoshiro256** PRNG with explicit seeding and portable distributions.
class Rng {
 public:
  /// Seeds the four 64-bit lanes from `seed` via splitmix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit value.
  std::uint64_t next();

  /// Uniform integer in [0, bound). `bound` must be > 0. Uses rejection
  /// sampling (Lemire) so the result is exactly uniform.
  std::uint64_t uniformInt(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniformRange(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniformReal();

  /// Uniform double in [lo, hi).
  double uniformReal(double lo, double hi);

  /// Standard normal via Box-Muller (cached second variate).
  double normal();

  /// Normal with given mean and standard deviation.
  double normal(double mean, double stddev);

  /// True with probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(uniformInt(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// A random permutation of [0, n).
  std::vector<std::size_t> permutation(std::size_t n);

  /// Derives an independent child generator; used to give each pipeline stage
  /// its own stream from one master seed.
  Rng fork();

 private:
  std::uint64_t s_[4];
  bool hasCachedNormal_ = false;
  double cachedNormal_ = 0.0;
};

}  // namespace hcp
