#include "support/tracing.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <limits>
#include <mutex>
#include <ostream>
#include <vector>

#include "support/env.hpp"
#include "support/error.hpp"
#include "support/telemetry.hpp"
#include "support/textio.hpp"

namespace hcp::support::tracing {

namespace {

std::uint64_t steadyNowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

enum class Phase : std::uint8_t { Begin, End, Complete };

struct Event {
  std::uint64_t tsNs = 0;
  std::uint64_t durNs = 0;  ///< Complete events only
  std::int64_t task = -1;
  std::string path;
  std::string corr;  ///< correlation id (args.request); "" = none
  Phase phase = Phase::Begin;
};

/// One thread's bounded event log. Appended to only by the owning thread;
/// read at export time, when recording threads are quiescent (pool workers
/// idle between batches, main thread doing the export).
struct ThreadBuffer {
  std::uint32_t tid = 0;
  std::size_t capacity = kDefaultBufferCapacity;
  std::vector<Event> events;
  std::atomic<std::uint64_t> dropped{0};
};

struct TraceRegistry {
  std::mutex mu;
  std::vector<ThreadBuffer*> buffers;  ///< owned, kept for process lifetime
  std::size_t capacity = kDefaultBufferCapacity;
  std::uint64_t epochNs = 0;
  std::string autoFlushPath;  ///< "" = incremental flushing off
  TraceMeta autoFlushMeta;
};

TraceRegistry& registry() {
  static TraceRegistry r;
  return r;
}

std::atomic<bool> gTraceEnabled{false};

thread_local ThreadBuffer* tlBuffer = nullptr;

ThreadBuffer& threadBuffer() {
  if (tlBuffer == nullptr) {
    TraceRegistry& reg = registry();
    std::lock_guard<std::mutex> lk(reg.mu);
    auto* buf = new ThreadBuffer;  // never freed: events must survive thread exit
    buf->tid = static_cast<std::uint32_t>(reg.buffers.size());
    buf->capacity = reg.capacity;
    buf->events.reserve(std::min<std::size_t>(buf->capacity, 1024));
    reg.buffers.push_back(buf);
    tlBuffer = buf;
  }
  return *tlBuffer;
}

void record(std::string_view path, std::int64_t taskIndex, Phase phase) {
  ThreadBuffer& buf = threadBuffer();
  if (buf.events.size() >= buf.capacity) {
    buf.dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Event e;
  e.tsNs = steadyNowNs();
  e.task = taskIndex;
  e.path.assign(path.data(), path.size());
  e.phase = phase;
  buf.events.push_back(std::move(e));
}

void jsonEscape(std::ostream& os, std::string_view s) {
  static const char* const kHex = "0123456789abcdef";
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      case '\r': os << "\\r"; break;
      case '\b': os << "\\b"; break;
      case '\f': os << "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          const auto u = static_cast<unsigned char>(c);
          os << "\\u00" << kHex[(u >> 4) & 0xF] << kHex[u & 0xF];
        } else {
          os << c;
        }
    }
  }
}

}  // namespace

bool enabled() { return gTraceEnabled.load(std::memory_order_relaxed); }

void setEnabled(bool on) {
  if (on) {
    TraceRegistry& reg = registry();
    std::lock_guard<std::mutex> lk(reg.mu);
    if (reg.epochNs == 0) reg.epochNs = steadyNowNs();
  }
  gTraceEnabled.store(on, std::memory_order_relaxed);
}

void setBufferCapacity(std::size_t events) {
  TraceRegistry& reg = registry();
  std::lock_guard<std::mutex> lk(reg.mu);
  reg.capacity = events;
}

void recordBegin(std::string_view path, std::int64_t taskIndex) {
  record(path, taskIndex, Phase::Begin);
}

void recordEnd(std::string_view path, std::int64_t taskIndex) {
  record(path, taskIndex, Phase::End);
}

void recordComplete(std::string_view path, std::uint64_t startNs,
                    std::uint64_t durNs, std::string_view correlation) {
  ThreadBuffer& buf = threadBuffer();
  if (buf.events.size() >= buf.capacity) {
    buf.dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Event e;
  e.tsNs = startNs;
  e.durNs = durNs;
  e.task = -1;
  e.path.assign(path.data(), path.size());
  e.corr.assign(correlation.data(), correlation.size());
  e.phase = Phase::Complete;
  buf.events.push_back(std::move(e));
}

std::uint64_t droppedEvents() {
  TraceRegistry& reg = registry();
  std::lock_guard<std::mutex> lk(reg.mu);
  std::uint64_t total = 0;
  for (const ThreadBuffer* b : reg.buffers)
    total += b->dropped.load(std::memory_order_relaxed);
  return total;
}

void reset() {
  TraceRegistry& reg = registry();
  std::lock_guard<std::mutex> lk(reg.mu);
  for (ThreadBuffer* b : reg.buffers) {
    b->events.clear();
    b->capacity = reg.capacity;
    b->dropped.store(0, std::memory_order_relaxed);
  }
  reg.epochNs = steadyNowNs();
}

void writeChromeTrace(std::ostream& os, const TraceMeta& meta) {
  TraceRegistry& reg = registry();
  std::lock_guard<std::mutex> lk(reg.mu);

  const auto relUs = [&](std::uint64_t tsNs) {
    return tsNs >= reg.epochNs
               ? static_cast<double>(tsNs - reg.epochNs) / 1e3
               : 0.0;
  };

  std::uint64_t dropped = 0;
  os << "{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [\n";
  os << "    {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, "
        "\"tid\": 0, \"args\": {\"name\": \"";
  jsonEscape(os, meta.tool);
  os << "\"}}";
  for (const ThreadBuffer* buf : reg.buffers) {
    os << ",\n    {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, "
       << "\"tid\": " << buf->tid << ", \"args\": {\"name\": \""
       << (buf->tid == 0 ? "main" : "worker ");
    if (buf->tid != 0) os << buf->tid;
    os << "\"}}";
    dropped += buf->dropped.load(std::memory_order_relaxed);
    for (const Event& e : buf->events) {
      char ts[32];
      std::snprintf(ts, sizeof ts, "%.3f", relUs(e.tsNs));
      const char ph = e.phase == Phase::Begin
                          ? 'B'
                          : e.phase == Phase::End ? 'E' : 'X';
      os << ",\n    {\"name\": \"";
      jsonEscape(os, e.path);
      os << "\", \"cat\": \"span\", \"ph\": \"" << ph
         << "\", \"pid\": 1, \"tid\": " << buf->tid << ", \"ts\": " << ts;
      if (e.phase == Phase::Complete) {
        char dur[32];
        std::snprintf(dur, sizeof dur, "%.3f",
                      static_cast<double>(e.durNs) / 1e3);
        os << ", \"dur\": " << dur;
      }
      os << ", \"args\": {\"task\": " << e.task;
      if (!e.corr.empty()) {
        os << ", \"request\": \"";
        jsonEscape(os, e.corr);
        os << '"';
      }
      os << "}}";
    }
  }
  os << "\n  ],\n  \"otherData\": {\"tool\": \"";
  jsonEscape(os, meta.tool);
  os << "\", \"command\": \"";
  jsonEscape(os, meta.command);
  os << "\", \"schema_version\": " << telemetry::kReportSchemaVersion
     << ", \"dropped_events\": " << dropped << "}\n}\n";
}

void writeChromeTraceToFile(const std::string& path, const TraceMeta& meta) {
  // User-requested artifact: verified, atomic, IoError on failure (exit 5).
  txt::CheckedFileWriter writer(path, "trace");
  writeChromeTrace(writer.stream(), meta);
  writer.commit();
}

void configureAutoFlush(std::string path, TraceMeta meta) {
  TraceRegistry& reg = registry();
  std::lock_guard<std::mutex> lk(reg.mu);
  reg.autoFlushPath = std::move(path);
  reg.autoFlushMeta = std::move(meta);
}

bool autoFlush() {
  std::string path;
  TraceMeta meta;
  {
    TraceRegistry& reg = registry();
    std::lock_guard<std::mutex> lk(reg.mu);
    if (reg.autoFlushPath.empty()) return true;
    path = reg.autoFlushPath;
    meta = reg.autoFlushMeta;
  }
  if (!enabled()) return true;
  try {
    writeChromeTraceToFile(path, meta);
  } catch (const hcp::Error&) {
    telemetry::count(telemetry::Counter::TraceFlushError);
    return false;
  }
  return true;
}

void arm() {
  // 0 = unset/empty (keep the default capacity); anything malformed exits 2.
  const std::uint64_t cap = env::u64OrDie(
      "HCP_TRACE_BUFFER_EVENTS", 2,
      std::numeric_limits<std::uint64_t>::max(), 0);
  if (cap != 0) setBufferCapacity(static_cast<std::size_t>(cap));
  telemetry::setEnabled(true);  // spans must be live for events to exist
  setEnabled(true);
}

std::string initTraceFromArgs(int argc, char** argv) {
  std::string path = telemetry::detail::flagValueOrDie(argc, argv, "trace");
  if (path.empty()) {
    if (const char* env = std::getenv("HCP_TRACE")) path = env;
  }
  if (!path.empty()) arm();
  return path;
}

}  // namespace hcp::support::tracing
