#include "support/table.hpp"

#include <iomanip>
#include <sstream>

#include "support/error.hpp"
#include "support/textio.hpp"

namespace hcp {

Table::Table(std::string title) : title_(std::move(title)) {}

void Table::setHeader(std::vector<std::string> header) {
  HCP_CHECK(rows_.empty());
  header_ = std::move(header);
}

void Table::addRow(std::vector<std::string> row) {
  HCP_CHECK_MSG(row.size() == header_.size(),
                "row arity " << row.size() << " != header " << header_.size());
  rows_.push_back(std::move(row));
}

std::string Table::toAscii() const {
  std::vector<std::size_t> width(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c)
    width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto renderRow = [&](const std::vector<std::string>& row) {
    std::ostringstream os;
    os << "|";
    for (std::size_t c = 0; c < row.size(); ++c)
      os << " " << std::left << std::setw(static_cast<int>(width[c]))
         << row[c] << " |";
    os << "\n";
    return os.str();
  };
  auto rule = [&]() {
    std::ostringstream os;
    os << "+";
    for (std::size_t w : width) os << std::string(w + 2, '-') << "+";
    os << "\n";
    return os.str();
  };

  std::ostringstream os;
  if (!title_.empty()) os << title_ << "\n";
  os << rule() << renderRow(header_) << rule();
  for (const auto& row : rows_) os << renderRow(row);
  os << rule();
  return os.str();
}

namespace {
std::string csvEscape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char ch : s) {
    if (ch == '"') out += "\"\"";
    else out += ch;
  }
  out += "\"";
  return out;
}
}  // namespace

std::string Table::toCsv() const {
  std::ostringstream os;
  for (std::size_t c = 0; c < header_.size(); ++c)
    os << (c ? "," : "") << csvEscape(header_[c]);
  os << "\n";
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c)
      os << (c ? "," : "") << csvEscape(row[c]);
    os << "\n";
  }
  return os.str();
}

void Table::writeCsv(const std::string& path) const {
  // CSV results are a user-requested artifact: verified and atomic, so an
  // ENOSPC mid-write raises hcp::IoError (exit 5) instead of leaving a
  // truncated table that only fails in whatever consumes it.
  support::txt::CheckedFileWriter writer(path, "csv");
  writer.stream() << toCsv();
  writer.commit();
}

std::string fmt(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string fmtSci(double v) {
  std::ostringstream os;
  os << std::scientific << std::setprecision(2) << v;
  return os.str();
}

}  // namespace hcp
