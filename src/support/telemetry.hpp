// Flow-wide telemetry: scoped spans, monotone counters, JSON run reports.
//
// The paper's pitch is that prediction is cheap *relative to the full PAR
// flow* (Table III times each stage); this facility makes that measurable on
// every run instead of inside one hand-timed bench. Three pieces:
//
//   - `HCP_SPAN("place")` opens a scoped wall-clock span. Spans nest; a
//     span's key is its path from the outermost open span, e.g.
//     "flow/place". Identical paths aggregate (count + total wall time).
//   - `count(Counter::PlacerMovesAccepted, n)` bumps a named monotone
//     counter. Counters only ever add, so totals are order-independent.
//   - `observe(Histogram::StaSlackNs, v)` records one observation into a
//     fixed log-bucketed histogram (count/sum/min/max + quantile estimates).
//   - `writeReport(...)` emits a RunReport JSON document with per-span wall
//     times, counter totals, histogram summaries, thread count, seed and
//     design names.
//
// The sibling module support/tracing.hpp additionally records every span
// begin/end as a timeline event when `--trace FILE` / HCP_TRACE is set;
// see that header for the export format.
//
// Zero-cost when disabled: collection is off by default, every entry point
// checks one relaxed atomic flag inline and does nothing else. Enabling
// telemetry observes the pipeline but never perturbs it — no RNG draws, no
// reordering — so flow outputs are bit-identical with telemetry on or off.
//
// Threading: each thread accumulates into a thread-local frame. The
// parallel layer (support/parallel.cpp) gives every pool task its own
// delta frame and merges completed deltas back into the submitting thread's
// frame in task-index order, so the registry contents after a parallel
// region are independent of scheduling — the same guarantee at any thread
// count, including 1. Span paths recorded inside a task are prefixed with
// the submitter's active span path at merge time, exactly as if the task
// body had run inline.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace hcp::support::telemetry {

/// Version stamped into every run report as "schema_version". Bump when the
/// report shape changes incompatibly; compare-reports refuses to diff files
/// whose versions it does not understand.
inline constexpr std::uint32_t kReportSchemaVersion = 2;

/// Monotone counters. Extend freely; every counter is reported.
enum class Counter : std::size_t {
  FlowsRun,
  HlsFunctionsSynthesized,
  PlacerMovesProposed,
  PlacerMovesAccepted,
  PlacerMovesRejected,
  PlacerBoxRescans,     ///< incremental net boxes rebuilt after edge shrink
  RouterIterations,
  RouterRipUps,
  RouterOverflowTiles,
  RouterDirtyTiles,     ///< tiles scanned by the dirty-tile overflow sweep
  StaArrivalPropagations,
  TraceCellsTraced,
  DatasetSamplesExtracted,
  GbrtBoostingRounds,
  CvFoldsEvaluated,
  FlowCacheHit,         ///< cache entry found, validated and deserialized
  FlowCacheMiss,        ///< no entry on disk for the flow's key
  FlowCacheWrite,       ///< entry written after a recompute
  FlowCacheCorrupt,     ///< malformed/truncated/skewed entry (fell back)
  FlowCacheStoreError,  ///< store failed (open/write/rename); degraded
  FlowCacheLoadError,   ///< entry exists but could not be read; degraded
  FlowCacheDegraded,    ///< 0/1 gauge: any cache I/O failure this process
  FailpointsFired,      ///< injected faults (support/failpoint) that fired
  ServeRequests,        ///< requests admitted by the hcp_serve batch loop
  ServeBatches,         ///< thread-pool batch dispatches in hcp_serve
  ServeErrors,          ///< ok:false responses written by hcp_serve
  ServeRejected,        ///< admission rejections (queue full / oversized)
  ServeCacheHits,       ///< flow requests answered from the flow cache
  MetricsWrites,        ///< periodic metrics snapshots written successfully
  MetricsWriteError,    ///< metrics snapshot writes that failed; degraded
  TraceFlushError,      ///< incremental trace flushes that failed; degraded
  ServeMapRequests,     ///< predict_map requests admitted by hcp_serve
  ShardWrites,          ///< dataset shards written (ml/shards)
  ShardReads,           ///< dataset shards read and fully validated
  kCount,
};

inline constexpr std::size_t kNumCounters =
    static_cast<std::size_t>(Counter::kCount);

/// Stable snake_case name used as the JSON key.
std::string_view counterName(Counter c);

/// Distribution metrics. Where a counter answers "how many", a histogram
/// answers "how are they spread" — the paper's own framing of congestion as
/// a distribution over CLBs (Fig. 5) applied to the pipeline's internals.
enum class Histogram : std::size_t {
  PlacerAcceptedMoveDelta,    ///< cost delta of each accepted annealer move
  RouterOverflowTilesPerIter, ///< overflowed tiles after each rip-up round
  StaSlackNs,                 ///< WNS of each timing analysis
  NetFanout,                  ///< sink count of each generated RTL net
  DatasetLabelPct,            ///< average-congestion label of each sample
  CvFoldMae,                  ///< per-fold mean absolute error
  CvFoldMedae,                ///< per-fold median absolute error
  ServeBatchSize,             ///< work items per hcp_serve batch dispatch
  ServeQueueDepth,            ///< pending requests at each hcp_serve flush
  ServeRequestLatencyMs,      ///< admission-to-serialized latency per request
  ServeQueueWaitMs,           ///< admission-to-execution wait per request
  ServeExecMs,                ///< batch-execution window per request
  ServeSerializeMs,           ///< response serialization time per request
  kCount,
};

inline constexpr std::size_t kNumHistograms =
    static_cast<std::size_t>(Histogram::kCount);

/// Stable snake_case name used as the JSON key.
std::string_view histogramName(Histogram h);

/// Fixed signed-log-bucketed histogram. 65 buckets: 32 negative-magnitude
/// buckets, one zero bucket, 32 positive-magnitude buckets; magnitude bucket
/// b covers |v| in [2^e, 2^(e+1)) for exponents e in [-16, 15], values
/// outside that range clamp into the edge buckets. Everything here merges by
/// plain addition of per-bucket counts (and of partial sums in a fixed
/// order), so merged results are independent of merge *grouping* as long as
/// the merge *order* is fixed — which the task-index-ordered frame merge
/// guarantees.
struct HistStat {
  static constexpr std::size_t kBuckets = 65;
  static constexpr int kMinExp = -16;
  static constexpr int kMaxExp = 15;

  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  ///< meaningful only when count > 0
  double max = 0.0;  ///< meaningful only when count > 0
  std::array<std::uint64_t, kBuckets> buckets{};

  /// Bucket index for `v` (see class comment). NaN maps to the zero bucket.
  static std::size_t bucketIndex(double v);

  void add(double v);
  void merge(const HistStat& other);

  /// Bucket-resolution estimate of the q-quantile (q in (0, 1]): the upper
  /// edge of the bucket where the cumulative count crosses ceil(q * count),
  /// clamped to [min, max]. 0 when empty. Exact for min/max, ±1 octave for
  /// interior quantiles — deterministic and cheap, which is what a
  /// regression gate needs.
  double percentile(double q) const;
};

namespace detail {

extern std::atomic<bool> gEnabled;

/// Aggregated statistics of one span path.
struct SpanStat {
  std::uint64_t count = 0;   ///< completed spans with this path
  std::uint64_t wallNs = 0;  ///< summed wall time
  std::uint32_t depth = 0;   ///< nesting depth (0 = outermost)
};

/// Per-thread (or per-task) accumulation buffer. Histogram storage is
/// allocated on first observe() so the many short-lived task frames that
/// never record a distribution stay cheap.
struct Frame {
  std::array<std::uint64_t, kNumCounters> counters{};
  std::map<std::string, SpanStat> spans;
  std::unique_ptr<std::array<HistStat, kNumHistograms>> hist;
  std::string path;           ///< '/'-joined names of the open spans
  std::uint32_t depth = 0;    ///< number of open spans
  std::int64_t taskIndex = -1;  ///< pool task index, -1 outside a task
};

Frame& currentFrame();

/// Opens a span on the current frame; returns the previous path length
/// (needed to close it).
std::size_t spanEnter(std::string_view name);
/// Closes the innermost span, recording `elapsedNs` under its full path.
void spanExit(std::size_t prevPathLen, std::uint64_t elapsedNs);

void countSlow(Counter c, std::uint64_t delta);
void observeSlow(Histogram h, double value);
std::uint64_t nowNs();

/// Redirects the calling thread's frame to `slot` for the capture's
/// lifetime. Used by the parallel layer to give each task its own delta.
class TaskCapture {
 public:
  explicit TaskCapture(Frame& slot);
  ~TaskCapture();
  TaskCapture(const TaskCapture&) = delete;
  TaskCapture& operator=(const TaskCapture&) = delete;

 private:
  Frame* prev_;
};

/// Merges a completed task delta into the calling thread's current frame,
/// prefixing span paths with the frame's active span path.
void mergeIntoCurrent(const Frame& delta);

}  // namespace detail

/// True when collection is on. One relaxed atomic load; safe to call from
/// any thread at any time.
inline bool enabled() {
  return detail::gEnabled.load(std::memory_order_relaxed);
}

/// Turns collection on/off process-wide. Existing data is kept.
void setEnabled(bool on);

/// Adds `delta` to a counter. No-op (one branch) when disabled.
inline void count(Counter c, std::uint64_t delta = 1) {
  if (enabled() && delta != 0) detail::countSlow(c, delta);
}

/// Records one observation into a histogram. No-op (one branch) when
/// disabled. NaN observations are dropped.
inline void observe(Histogram h, double value) {
  if (enabled()) detail::observeSlow(h, value);
}

/// RAII wall-clock span. Construct via HCP_SPAN; does nothing when
/// telemetry is disabled at construction time.
class ScopedSpan {
 public:
  explicit ScopedSpan(std::string_view name) {
    if (!enabled()) return;
    active_ = true;
    prevPathLen_ = detail::spanEnter(name);
    startNs_ = detail::nowNs();
  }
  ~ScopedSpan() {
    if (active_) detail::spanExit(prevPathLen_, detail::nowNs() - startNs_);
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  bool active_ = false;
  std::size_t prevPathLen_ = 0;
  std::uint64_t startNs_ = 0;
};

/// Point-in-time totals: the global registry plus the calling thread's
/// frame (which is flushed into the registry by the call).
struct Snapshot {
  std::array<std::uint64_t, kNumCounters> counters{};
  std::array<HistStat, kNumHistograms> histograms{};
  struct SpanEntry {
    std::string path;
    std::uint32_t depth = 0;
    std::uint64_t count = 0;
    std::uint64_t wallNs = 0;
  };
  std::vector<SpanEntry> spans;  ///< sorted by path

  std::uint64_t counter(Counter c) const {
    return counters[static_cast<std::size_t>(c)];
  }
  const HistStat& histogram(Histogram h) const {
    return histograms[static_cast<std::size_t>(h)];
  }
  /// The entry for `path`, or nullptr.
  const SpanEntry* span(std::string_view path) const;
};

/// Flushes the calling thread's frame into the registry and returns the
/// accumulated totals. Totals are monotone across snapshots until reset().
Snapshot snapshot();

/// Clears the registry and the calling thread's frame (tests).
void reset();

/// Run metadata recorded alongside the measurements.
struct RunReport {
  std::string tool;                   ///< binary name, e.g. "hcp_cli"
  std::string command;                ///< subcommand, may be empty
  std::vector<std::string> designs;   ///< design names this run touched
  std::uint64_t seed = 0;
  std::size_t threads = 1;
  double totalWallMs = 0.0;           ///< 0 = fill from initReportFromArgs
};

/// Writes the report JSON (meta + `snap`) to `os`.
void writeReport(std::ostream& os, const RunReport& meta,
                 const Snapshot& snap);

/// Snapshots and writes to `path`. Throws hcp::Error if the file cannot be
/// written. If meta.totalWallMs is 0 and initReportFromArgs ran, the elapsed
/// time since that call is filled in.
void writeReportToFile(const std::string& path, RunReport meta);

/// Resolves the report destination: `--report <path>` / `--report=<path>`
/// on the command line, else the HCP_REPORT environment variable. Enables
/// collection and records the start time when a path is found. Returns the
/// path ("" = reporting off). Unrelated arguments are ignored, but a
/// trailing `--report` with no value or an empty `--report=` is a usage
/// error: a message goes to stderr and the process exits with code 2.
std::string initReportFromArgs(int argc, char** argv);

namespace detail {
/// Shared flag-value extraction for initReportFromArgs / initTraceFromArgs:
/// returns the value of `--<flag> V` / `--<flag>=V` (last occurrence wins),
/// "" when absent. Exits with a usage error (code 2) when the flag is
/// present with no value.
std::string flagValueOrDie(int argc, char** argv, std::string_view flag);
}  // namespace detail

}  // namespace hcp::support::telemetry

#define HCP_TELEMETRY_CONCAT2(a, b) a##b
#define HCP_TELEMETRY_CONCAT(a, b) HCP_TELEMETRY_CONCAT2(a, b)

/// Opens a wall-clock span covering the rest of the enclosing scope.
#define HCP_SPAN(name)                               \
  ::hcp::support::telemetry::ScopedSpan HCP_TELEMETRY_CONCAT( \
      hcpSpan_, __LINE__)(name)
