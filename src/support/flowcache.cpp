#include "support/flowcache.hpp"

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>

#include "support/error.hpp"
#include "support/telemetry.hpp"

namespace hcp::support::flowcache {

namespace fs = std::filesystem;
namespace telemetry = hcp::support::telemetry;

Fnv1a& Fnv1a::u64(std::uint64_t v) {
  char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  return bytes(std::string_view(b, 8));
}

Fnv1a& Fnv1a::f64(double v) {
  static_assert(sizeof(double) == sizeof(std::uint64_t));
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return u64(bits);
}

std::string Fnv1a::hex() const {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(hash_));
  return std::string(buf, 16);
}

FlowCache::FlowCache(std::string dir) : dir_(std::move(dir)) {
  HCP_CHECK_MSG(!dir_.empty(), "flow cache directory must be non-empty");
  std::error_code ec;
  fs::create_directories(dir_, ec);
  HCP_CHECK_MSG(!ec && fs::is_directory(dir_),
                "cannot create flow cache directory " << dir_ << ": "
                                                      << ec.message());
}

std::string FlowCache::entryPath(const std::string& key) const {
  return dir_ + "/" + key + ".flow";
}

namespace {

/// Reads the whole file; nullopt when it does not exist / cannot be opened.
std::optional<std::string> slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is.good()) return std::nullopt;
  std::ostringstream os;
  os << is.rdbuf();
  if (is.bad()) return std::nullopt;
  return std::move(os).str();
}

void corrupt(const std::string& path, const char* why) {
  telemetry::count(telemetry::Counter::FlowCacheCorrupt);
  std::fprintf(stderr, "[flowcache] corrupt entry %s: %s (will recompute)\n",
               path.c_str(), why);
}

}  // namespace

std::optional<std::string> FlowCache::load(const std::string& key) const {
  const std::string path = entryPath(key);
  auto raw = slurp(path);
  if (!raw) {
    telemetry::count(telemetry::Counter::FlowCacheMiss);
    return std::nullopt;
  }
  // Envelope: "hcp-flowcache <schema> <key> <bytes> <fnv>\n<payload>".
  const std::size_t nl = raw->find('\n');
  if (nl == std::string::npos) {
    corrupt(path, "missing envelope header line");
    return std::nullopt;
  }
  std::istringstream header(raw->substr(0, nl));
  std::string magic, storedKey, payloadHash;
  std::uint32_t version = 0;
  std::uint64_t payloadBytes = 0;
  if (!(header >> magic >> version >> storedKey >> payloadBytes >>
        payloadHash) ||
      magic != "hcp-flowcache") {
    corrupt(path, "malformed envelope header");
    return std::nullopt;
  }
  std::string trailing;
  if (header >> trailing) {
    corrupt(path, "trailing tokens in envelope header");
    return std::nullopt;
  }
  if (version != kSchemaVersion) {
    corrupt(path, "schema version skew");
    return std::nullopt;
  }
  if (storedKey != key) {
    corrupt(path, "key mismatch (entry stored under a different digest)");
    return std::nullopt;
  }
  std::string payload = raw->substr(nl + 1);
  if (payload.size() != payloadBytes) {
    corrupt(path, payload.size() < payloadBytes
                      ? "truncated payload"
                      : "trailing garbage after payload");
    return std::nullopt;
  }
  if (Fnv1a().bytes(payload).hex() != payloadHash) {
    corrupt(path, "payload hash mismatch (bit rot or concurrent tampering)");
    return std::nullopt;
  }
  return payload;
}

void FlowCache::store(const std::string& key,
                      const std::string& payload) const {
  const std::string path = entryPath(key);
  // Unique-enough temp name: pid + a process-local ticket. Concurrent pool
  // tasks and concurrent processes each write their own temp file; the final
  // rename is atomic, so readers only ever see whole entries.
  static std::atomic<std::uint64_t> ticket{0};
  std::ostringstream tmpName;
  tmpName << path << ".tmp." << static_cast<unsigned long>(::getpid()) << "."
          << ticket.fetch_add(1, std::memory_order_relaxed);
  const std::string tmp = tmpName.str();
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    HCP_CHECK_MSG(os.good(), "cannot open flow cache temp file " << tmp);
    os << "hcp-flowcache " << kSchemaVersion << ' ' << key << ' '
       << payload.size() << ' ' << Fnv1a().bytes(payload).hex() << '\n'
       << payload;
    os.flush();
    HCP_CHECK_MSG(os.good(), "flow cache write failed for " << tmp);
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    fs::remove(tmp, ec);
    HCP_CHECK_MSG(false, "cannot move flow cache entry into place at "
                             << path << ": " << ec.message());
  }
  telemetry::count(telemetry::Counter::FlowCacheWrite);
}

namespace {
std::unique_ptr<FlowCache>& globalSlot() {
  static std::unique_ptr<FlowCache> cache;
  return cache;
}
}  // namespace

FlowCache* global() { return globalSlot().get(); }

void setGlobalDir(const std::string& dir) {
  if (dir.empty()) {
    globalSlot().reset();
  } else if (globalSlot() == nullptr || globalSlot()->dir() != dir) {
    globalSlot() = std::make_unique<FlowCache>(dir);
  }
}

std::string globalDir() {
  return globalSlot() == nullptr ? std::string() : globalSlot()->dir();
}

std::string initCacheFromArgs(int argc, char** argv) {
  std::string dir = telemetry::detail::flagValueOrDie(argc, argv, "cache");
  if (dir.empty()) {
    if (const char* env = std::getenv("HCP_CACHE")) dir = env;
  }
  if (!dir.empty()) setGlobalDir(dir);
  return dir;
}

}  // namespace hcp::support::flowcache
