#include "support/flowcache.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>

#include "support/error.hpp"
#include "support/failpoint.hpp"
#include "support/telemetry.hpp"
#include "support/textio.hpp"

namespace hcp::support::flowcache {

namespace fs = std::filesystem;
namespace telemetry = hcp::support::telemetry;

Fnv1a& Fnv1a::u64(std::uint64_t v) {
  char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  return bytes(std::string_view(b, 8));
}

Fnv1a& Fnv1a::f64(double v) {
  static_assert(sizeof(double) == sizeof(std::uint64_t));
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return u64(bits);
}

std::string Fnv1a::hex() const {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(hash_));
  return std::string(buf, 16);
}

FlowCache::FlowCache(std::string dir) : dir_(std::move(dir)) {
  HCP_CHECK_MSG(!dir_.empty(), "flow cache directory must be non-empty");
  std::error_code ec;
  fs::create_directories(dir_, ec);
  HCP_CHECK_MSG(!ec && fs::is_directory(dir_),
                "cannot create flow cache directory " << dir_ << ": "
                                                      << ec.message());
}

std::string FlowCache::entryPath(const std::string& key) const {
  return dir_ + "/" + key + ".flow";
}

namespace {

/// Reads the whole file; nullopt when it does not exist / cannot be opened.
std::optional<std::string> slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is.good()) return std::nullopt;
  std::ostringstream os;
  os << is.rdbuf();
  if (is.bad()) return std::nullopt;
  return std::move(os).str();
}

void corrupt(const std::string& path, const char* why) {
  telemetry::count(telemetry::Counter::FlowCacheCorrupt);
  std::fprintf(stderr, "[flowcache] corrupt entry %s: %s (will recompute)\n",
               path.c_str(), why);
}

std::atomic<bool> gDegraded{false};

/// Degrade-gracefully reporting (DESIGN.md §14): count every failure, log
/// only the first of each kind so a systemically broken cache (full disk,
/// bad mount) does not flood stderr across hundreds of flows. The first
/// failure of either kind also latches the process-wide degraded gauge.
void ioFailure(telemetry::Counter counter, std::atomic<bool>& loggedOnce,
               const char* action, const std::string& detail) {
  telemetry::count(counter);
  if (!gDegraded.exchange(true, std::memory_order_relaxed))
    telemetry::count(telemetry::Counter::FlowCacheDegraded);
  if (!loggedOnce.exchange(true, std::memory_order_relaxed)) {
    std::fprintf(stderr,
                 "[flowcache] %s failed: %s (degrading to recompute; "
                 "further %s failures will not be logged)\n",
                 action, detail.c_str(), action);
  }
}

std::atomic<bool> gStoreErrorLogged{false};
std::atomic<bool> gLoadErrorLogged{false};

}  // namespace

bool degraded() { return gDegraded.load(std::memory_order_relaxed); }

namespace detail {
void resetDegraded() { gDegraded.store(false, std::memory_order_relaxed); }
}  // namespace detail

std::optional<std::string> FlowCache::load(const std::string& key) const {
  const std::string path = entryPath(key);
  if (failpoint::shouldFail("flowcache.load")) {
    ioFailure(telemetry::Counter::FlowCacheLoadError, gLoadErrorLogged,
              "load", path + ": injected read failure");
    return std::nullopt;
  }
  auto raw = slurp(path);
  if (!raw) {
    // Distinguish "no entry" (the normal cold miss) from "entry exists but
    // cannot be read" (permissions, I/O error): the latter degrades too,
    // but under its own counter so operators can see a sick cache disk.
    std::error_code ec;
    if (fs::exists(path, ec) && !ec) {
      ioFailure(telemetry::Counter::FlowCacheLoadError, gLoadErrorLogged,
                "load", path + ": cannot read entry");
    } else {
      telemetry::count(telemetry::Counter::FlowCacheMiss);
    }
    return std::nullopt;
  }
  // Envelope: "hcp-flowcache <schema> <key> <bytes> <fnv>\n<payload>".
  const std::size_t nl = raw->find('\n');
  if (nl == std::string::npos) {
    corrupt(path, "missing envelope header line");
    return std::nullopt;
  }
  std::istringstream header(raw->substr(0, nl));
  std::string magic, storedKey, payloadHash;
  std::uint32_t version = 0;
  std::uint64_t payloadBytes = 0;
  if (!(header >> magic >> version >> storedKey >> payloadBytes >>
        payloadHash) ||
      magic != "hcp-flowcache") {
    corrupt(path, "malformed envelope header");
    return std::nullopt;
  }
  std::string trailing;
  if (header >> trailing) {
    corrupt(path, "trailing tokens in envelope header");
    return std::nullopt;
  }
  if (version != kSchemaVersion) {
    corrupt(path, "schema version skew");
    return std::nullopt;
  }
  if (storedKey != key) {
    corrupt(path, "key mismatch (entry stored under a different digest)");
    return std::nullopt;
  }
  std::string payload = raw->substr(nl + 1);
  if (payload.size() != payloadBytes) {
    corrupt(path, payload.size() < payloadBytes
                      ? "truncated payload"
                      : "trailing garbage after payload");
    return std::nullopt;
  }
  if (Fnv1a().bytes(payload).hex() != payloadHash) {
    corrupt(path, "payload hash mismatch (bit rot or concurrent tampering)");
    return std::nullopt;
  }
  return payload;
}

bool FlowCache::store(const std::string& key,
                      const std::string& payload) const {
  // CheckedFileWriter gives the atomicity (unique temp file + rename, so
  // concurrent pool tasks and concurrent processes only ever expose whole
  // entries) and the verification. The cache is an accelerator, never a
  // correctness dependency: any failure — ENOSPC, read-only directory,
  // rename across a broken mount, or an injected flowcache.store.* fault —
  // is absorbed here per the degrade contract (DESIGN.md §14). The temp
  // file is removed on every failure path (writer destructor / commit).
  try {
    txt::CheckedFileWriter writer(entryPath(key), "flowcache.store");
    writer.stream() << "hcp-flowcache " << kSchemaVersion << ' ' << key << ' '
                    << payload.size() << ' ' << Fnv1a().bytes(payload).hex()
                    << '\n'
                    << payload;
    writer.commit();
  } catch (const hcp::Error& e) {
    ioFailure(telemetry::Counter::FlowCacheStoreError, gStoreErrorLogged,
              "store", e.what());
    return false;
  }
  telemetry::count(telemetry::Counter::FlowCacheWrite);
  return true;
}

namespace {
std::unique_ptr<FlowCache>& globalSlot() {
  static std::unique_ptr<FlowCache> cache;
  return cache;
}
}  // namespace

FlowCache* global() { return globalSlot().get(); }

void setGlobalDir(const std::string& dir) {
  if (dir.empty()) {
    globalSlot().reset();
  } else if (globalSlot() == nullptr || globalSlot()->dir() != dir) {
    globalSlot() = std::make_unique<FlowCache>(dir);
  }
}

std::string globalDir() {
  return globalSlot() == nullptr ? std::string() : globalSlot()->dir();
}

std::string initCacheFromArgs(int argc, char** argv) {
  std::string dir = telemetry::detail::flagValueOrDie(argc, argv, "cache");
  if (dir.empty()) {
    if (const char* env = std::getenv("HCP_CACHE")) dir = env;
  }
  if (!dir.empty()) setGlobalDir(dir);
  return dir;
}

}  // namespace hcp::support::flowcache
