// Strict JSON parser (RFC 8259 subset of behaviour: *no* extensions).
//
// Exists for two consumers: the compare-reports regression gate, which must
// refuse to "diff" garbage, and the tests, which validate that every run
// report and trace file the pipeline emits is well-formed JSON — not merely
// brace-balanced. Strictness is the point: no trailing commas, no comments,
// no NaN/Infinity literals, no unescaped control characters, no trailing
// garbage after the top-level value. \uXXXX escapes decode to UTF-8
// (surrogate pairs included). Numbers parse to double.
//
// Parse errors throw hcp::Error with a byte offset in the message.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace hcp::support::json {

/// A parsed JSON value. Object members keep their source order (run reports
/// are written in a fixed order; diffs should read in it too).
struct Value {
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<Value> array;
  std::vector<std::pair<std::string, Value>> object;

  bool isNull() const { return kind == Kind::Null; }
  bool isBool() const { return kind == Kind::Bool; }
  bool isNumber() const { return kind == Kind::Number; }
  bool isString() const { return kind == Kind::String; }
  bool isArray() const { return kind == Kind::Array; }
  bool isObject() const { return kind == Kind::Object; }

  /// Member lookup (objects only): the value for `key`, or nullptr.
  const Value* find(std::string_view key) const;

  /// Checked accessors; throw hcp::Error when the kind does not match.
  double asNumber() const;
  const std::string& asString() const;
  bool asBool() const;
};

/// Parses exactly one JSON document from `text`. Throws hcp::Error on any
/// syntax violation, including trailing non-whitespace.
Value parse(std::string_view text);

/// Reads and parses `path`. Throws hcp::Error when the file cannot be read
/// or does not contain valid JSON.
Value parseFile(const std::string& path);

/// Writes `s` escaped for inclusion inside a JSON string literal (the
/// surrounding quotes are the caller's). Lossless: control characters become
/// \u00XX escapes, so any byte sequence round-trips through parse().
void writeEscaped(std::ostream& os, std::string_view s);

/// writeEscaped into a fresh string.
std::string escape(std::string_view s);

}  // namespace hcp::support::json
