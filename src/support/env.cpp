#include "support/env.hpp"

#include <cstdio>
#include <cstdlib>
#include <limits>

namespace hcp::support::env {

std::optional<std::uint64_t> parseU64(std::string_view text) {
  if (text.empty()) return std::nullopt;
  std::uint64_t value = 0;
  constexpr std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();
  for (const char c : text) {
    if (c < '0' || c > '9') return std::nullopt;
    const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (value > (kMax - digit) / 10) return std::nullopt;  // would overflow
    value = value * 10 + digit;
  }
  return value;
}

std::uint64_t u64OrDie(const char* var, std::uint64_t minValue,
                       std::uint64_t maxValue, std::uint64_t fallback) {
  const char* raw = std::getenv(var);
  if (raw == nullptr || *raw == '\0') return fallback;
  const std::optional<std::uint64_t> value = parseU64(raw);
  if (!value || *value < minValue || *value > maxValue) {
    std::fprintf(stderr,
                 "hcp: %s expects an integer in [%llu, %llu], got '%s'\n",
                 var, static_cast<unsigned long long>(minValue),
                 static_cast<unsigned long long>(maxValue), raw);
    std::exit(2);
  }
  return *value;
}

}  // namespace hcp::support::env
