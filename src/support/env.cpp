#include "support/env.hpp"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <string>

namespace hcp::support::env {

std::optional<std::uint64_t> parseU64(std::string_view text) {
  if (text.empty()) return std::nullopt;
  std::uint64_t value = 0;
  constexpr std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();
  for (const char c : text) {
    if (c < '0' || c > '9') return std::nullopt;
    const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (value > (kMax - digit) / 10) return std::nullopt;  // would overflow
    value = value * 10 + digit;
  }
  return value;
}

std::optional<double> parseF64(std::string_view text) {
  // Shape check first: strtod accepts far more than a decimal literal
  // (hex floats, "inf", "nan", leading whitespace), so the grammar is
  // enforced by hand and strtod only does the digits-to-double conversion.
  std::size_t i = 0;
  if (i < text.size() && text[i] == '-') ++i;
  std::size_t mantissaDigits = 0;
  while (i < text.size() && text[i] >= '0' && text[i] <= '9') {
    ++i;
    ++mantissaDigits;
  }
  if (i < text.size() && text[i] == '.') {
    ++i;
    while (i < text.size() && text[i] >= '0' && text[i] <= '9') {
      ++i;
      ++mantissaDigits;
    }
  }
  if (mantissaDigits == 0) return std::nullopt;
  if (i < text.size() && (text[i] == 'e' || text[i] == 'E')) {
    ++i;
    if (i < text.size() && (text[i] == '+' || text[i] == '-')) ++i;
    std::size_t expDigits = 0;
    while (i < text.size() && text[i] >= '0' && text[i] <= '9') {
      ++i;
      ++expDigits;
    }
    if (expDigits == 0) return std::nullopt;
  }
  if (i != text.size()) return std::nullopt;

  const std::string token(text);
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(token.c_str(), &end);
  if (end != token.c_str() + token.size()) return std::nullopt;
  if (errno == ERANGE && (value == HUGE_VAL || value == -HUGE_VAL))
    return std::nullopt;  // overflow; gradual underflow is fine
  return value;
}

std::uint64_t u64OrDie(const char* var, std::uint64_t minValue,
                       std::uint64_t maxValue, std::uint64_t fallback) {
  const char* raw = std::getenv(var);
  if (raw == nullptr || *raw == '\0') return fallback;
  const std::optional<std::uint64_t> value = parseU64(raw);
  if (!value || *value < minValue || *value > maxValue) {
    std::fprintf(stderr,
                 "hcp: %s expects an integer in [%llu, %llu], got '%s'\n",
                 var, static_cast<unsigned long long>(minValue),
                 static_cast<unsigned long long>(maxValue), raw);
    std::exit(2);
  }
  return *value;
}

}  // namespace hcp::support::env
