#include "support/report_diff.hpp"

#include <cmath>
#include <cstdio>
#include <memory>
#include <ostream>
#include <set>
#include <string_view>
#include <utility>
#include <vector>

#include "support/error.hpp"
#include "support/json.hpp"
#include "support/telemetry.hpp"
#include "support/textio.hpp"

namespace hcp::support::report_diff {

namespace {

using json::Value;

/// Loaded + schema-checked report. Construction throws hcp::Error with a
/// caller-facing message on any malformation.
struct Report {
  Value root;
  const Value* spans = nullptr;
  const Value* counters = nullptr;
  const Value* histograms = nullptr;

  explicit Report(const std::string& path) : root(json::parseFile(path)) {
    HCP_CHECK_MSG(root.isObject(), path << ": not a JSON object");
    const Value* version = root.find("schema_version");
    HCP_CHECK_MSG(version != nullptr && version->isNumber(),
                  path << ": missing schema_version (pre-versioning report?)");
    HCP_CHECK_MSG(
        version->asNumber() == telemetry::kReportSchemaVersion,
        path << ": unsupported schema_version " << version->asNumber()
             << " (this build understands "
             << telemetry::kReportSchemaVersion << ")");
    spans = root.find("spans");
    counters = root.find("counters");
    histograms = root.find("histograms");
    HCP_CHECK_MSG(spans != nullptr && spans->isArray(),
                  path << ": missing spans array");
    HCP_CHECK_MSG(counters != nullptr && counters->isObject(),
                  path << ": missing counters object");
    HCP_CHECK_MSG(histograms != nullptr && histograms->isObject(),
                  path << ": missing histograms object");
  }

  double wallMs() const {
    const Value* v = root.find("total_wall_ms");
    HCP_CHECK_MSG(v != nullptr && v->isNumber(), "missing total_wall_ms");
    return v->asNumber();
  }

  /// wall_ms of the span with `path`, or -1 when absent.
  double spanWallMs(const std::string& spanPath) const {
    for (const Value& e : spans->array) {
      const Value* p = e.find("path");
      if (p != nullptr && p->isString() && p->asString() == spanPath) {
        const Value* w = e.find("wall_ms");
        return w != nullptr && w->isNumber() ? w->asNumber() : -1.0;
      }
    }
    return -1.0;
  }
};

double pctChange(double base, double now) {
  if (base == 0.0) return now == 0.0 ? 0.0 : 100.0;
  return (now - base) / base * 100.0;
}

std::string fmtPct(double pct) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%+.1f%%", pct);
  return buf;
}

void jsonEscapeMin(std::ostream& os, const std::string& s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    if (static_cast<unsigned char>(c) < 0x20) {
      os << ' ';
      continue;
    }
    os << c;
  }
}

}  // namespace

int compareReportFiles(const std::string& basePath,
                       const std::string& newPath, const Options& options,
                       std::ostream& out) {
  std::unique_ptr<Report> baseHolder, newHolder;
  try {
    baseHolder = std::make_unique<Report>(basePath);
    newHolder = std::make_unique<Report>(newPath);
  } catch (const hcp::Error& e) {
    out << "compare-reports: bad input: " << e.what() << "\n";
    return kExitBadInput;
  }
  const Report& base = *baseHolder;
  const Report& fresh = *newHolder;

  std::vector<std::string> regressions;
  bool countersEqual = true;
  bool histogramCountsEqual = true;

  double baseWall = 0.0, newWall = 0.0;
  try {
    baseWall = base.wallMs();
    newWall = fresh.wallMs();
  } catch (const hcp::Error& e) {
    out << "compare-reports: bad input: " << e.what() << "\n";
    return kExitBadInput;
  }

  const double wallPct = pctChange(baseWall, newWall);
  out << "wall    total_wall_ms: " << baseWall << " -> " << newWall << "  ("
      << fmtPct(wallPct) << ")";
  if (options.maxWallRegressPct >= 0.0) {
    out << "  [limit " << fmtPct(options.maxWallRegressPct) << "]";
    if (wallPct > options.maxWallRegressPct)
      regressions.push_back("total_wall_ms grew " + fmtPct(wallPct) +
                            " (limit " + fmtPct(options.maxWallRegressPct) +
                            ")");
  }
  out << "\n";

  // Spans: informational wall-time deltas over the union of paths, in base
  // order then new-only.
  std::vector<std::string> spanPaths;
  std::set<std::string> seen;
  for (const Report* r : {&base, &fresh}) {
    for (const Value& e : r->spans->array) {
      const Value* p = e.find("path");
      if (p != nullptr && p->isString() && seen.insert(p->asString()).second)
        spanPaths.push_back(p->asString());
    }
  }
  for (const std::string& path : spanPaths) {
    const double b = base.spanWallMs(path);
    const double n = fresh.spanWallMs(path);
    out << "span    " << path << ": ";
    if (b < 0.0) out << "(absent)";
    else out << b;
    out << " -> ";
    if (n < 0.0) out << "(absent)";
    else out << n;
    if (b >= 0.0 && n >= 0.0) out << " ms  (" << fmtPct(pctChange(b, n)) << ")";
    out << "\n";
  }

  // Counters: exact integer comparison over the union of names.
  std::vector<std::string> counterNames;
  seen.clear();
  for (const Report* r : {&base, &fresh})
    for (const auto& [name, v] : r->counters->object)
      if (seen.insert(name).second) counterNames.push_back(name);
  for (const std::string& name : counterNames) {
    const Value* b = base.counters->find(name);
    const Value* n = fresh.counters->find(name);
    const bool equal = b != nullptr && n != nullptr && b->isNumber() &&
                       n->isNumber() && b->asNumber() == n->asNumber();
    out << "counter " << name << ": ";
    if (b != nullptr && b->isNumber()) out << b->asNumber();
    else out << "(absent)";
    out << " -> ";
    if (n != nullptr && n->isNumber()) out << n->asNumber();
    else out << "(absent)";
    if (!equal) {
      countersEqual = false;
      out << "  ** CHANGED";
    }
    out << "\n";
  }

  // Histograms: distribution summaries. Counts gate (deterministic); the
  // shape fields are printed so a human can see *how* a stage shifted.
  std::vector<std::string> histNames;
  seen.clear();
  for (const Report* r : {&base, &fresh})
    for (const auto& [name, v] : r->histograms->object)
      if (seen.insert(name).second) histNames.push_back(name);
  for (const std::string& name : histNames) {
    const Value* b = base.histograms->find(name);
    const Value* n = fresh.histograms->find(name);
    out << "hist    " << name << ":";
    bool changed = false;
    for (const char* field : {"count", "sum", "min", "max", "p50", "p90",
                              "p99"}) {
      const Value* bf = b != nullptr ? b->find(field) : nullptr;
      const Value* nf = n != nullptr ? n->find(field) : nullptr;
      const double bv = bf != nullptr && bf->isNumber() ? bf->asNumber()
                                                        : std::nan("");
      const double nv = nf != nullptr && nf->isNumber() ? nf->asNumber()
                                                        : std::nan("");
      const bool fieldEqual = bv == nv;  // NaN != NaN: absent counts as change
      if (!fieldEqual) changed = true;
      if (std::string_view(field) == "count" && !fieldEqual)
        histogramCountsEqual = false;
      out << " " << field << " " << bv << "->" << nv;
    }
    if (changed) out << "  ** CHANGED";
    out << "\n";
  }

  if (options.requireCountersEqual) {
    if (!countersEqual)
      regressions.push_back("counter totals differ (see ** CHANGED lines)");
    if (!histogramCountsEqual)
      regressions.push_back(
          "histogram observation counts differ (see ** CHANGED lines)");
  }

  for (const std::string& r : regressions) out << "REGRESSION: " << r << "\n";
  const bool ok = regressions.empty();
  out << (ok ? "compare-reports: OK" : "compare-reports: FAILED") << " ("
      << counterNames.size() << " counters, " << histNames.size()
      << " histograms, " << spanPaths.size() << " spans)\n";

  if (!options.benchOutPath.empty()) {
    // --bench-out is a user-requested artifact: verified and atomic, with
    // an unchecked-write failure raising hcp::IoError rather than handing
    // CI a truncated JSON summary that parses as a mystery later.
    txt::CheckedFileWriter writer(options.benchOutPath, "benchout");
    std::ostream& bench = writer.stream();
    bench << "{\n  \"schema_version\": " << telemetry::kReportSchemaVersion
          << ",\n  \"base\": \"";
    jsonEscapeMin(bench, basePath);
    bench << "\",\n  \"new\": \"";
    jsonEscapeMin(bench, newPath);
    bench << "\",\n  \"total_wall_ms\": {\"base\": " << baseWall
          << ", \"new\": " << newWall << ", \"delta_pct\": " << wallPct
          << "},\n  \"counters_equal\": "
          << (countersEqual ? "true" : "false")
          << ",\n  \"histogram_counts_equal\": "
          << (histogramCountsEqual ? "true" : "false")
          << ",\n  \"spans_compared\": " << spanPaths.size()
          << ",\n  \"histograms\": {";
    // Percentile summaries per histogram, base -> new, so a CI artifact
    // carries the distribution shift, not just the equal/changed verdict.
    // Absent sides render as null (a new histogram has no base percentile).
    for (std::size_t h = 0; h < histNames.size(); ++h) {
      const std::string& name = histNames[h];
      const Value* b = base.histograms->find(name);
      const Value* n = fresh.histograms->find(name);
      bench << (h == 0 ? "" : ", ") << "\n    \"";
      jsonEscapeMin(bench, name);
      bench << "\": {";
      bool first = true;
      for (const char* field : {"p50", "p90", "p99"}) {
        for (const auto& [side, rep] :
             {std::pair<const char*, const Value*>{"base", b},
              std::pair<const char*, const Value*>{"new", n}}) {
          const Value* f = rep != nullptr ? rep->find(field) : nullptr;
          bench << (first ? "" : ", ") << '"' << field << '_' << side
                << "\": ";
          if (f != nullptr && f->isNumber()) bench << f->asNumber();
          else bench << "null";
          first = false;
        }
      }
      bench << '}';
    }
    bench << (histNames.empty() ? "" : "\n  ") << "},\n  \"regressions\": [";
    for (std::size_t i = 0; i < regressions.size(); ++i) {
      bench << (i == 0 ? "" : ", ") << '"';
      jsonEscapeMin(bench, regressions[i]);
      bench << '"';
    }
    bench << "],\n  \"ok\": " << (ok ? "true" : "false") << "\n}\n";
    writer.commit();
  }

  return ok ? kExitOk : kExitRegression;
}

}  // namespace hcp::support::report_diff
