// Live metrics exposition: one telemetry Snapshot plus a handful of
// daemon-level gauges rendered as (a) a single-line JSON object and (b)
// Prometheus text exposition format.
//
// The JSON body doubles as the payload of hcp_serve's `metrics` protocol
// op and (wrapped in braces with a trailing newline) as the `--metrics-out`
// snapshot file. It is a *deterministic* rendering: map-ordered keys,
// %.17g doubles, no timestamps beyond what the caller puts in the gauges —
// so under hcp_serve's logical tick clock the whole scrape is byte-
// identical at any thread count (the contract DESIGN.md §17 documents and
// CI enforces).
//
// The Prometheus form follows the text exposition format rules
// (https://prometheus.io/docs/instrumenting/exposition_formats/): metric
// names match [a-zA-Z_:][a-zA-Z0-9_:]*, counters are suffixed `_total`,
// HELP text escapes backslash and newline, label values additionally
// escape double quotes. Histograms export as summaries — {quantile="..."}
// sample lines from the deterministic 65-bucket HistStat percentiles plus
// `_sum`, `_count`, `_min` and `_max`.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>

#include "support/telemetry.hpp"

namespace hcp::support::metrics {

/// Daemon-level gauges that live outside the telemetry registry. All
/// values come from the serving thread's clock/stat bookkeeping, so they
/// inherit its determinism under a logical tick clock.
struct Gauges {
  std::string tool;                    ///< e.g. "hcp_serve"
  double uptimeMs = 0.0;               ///< monotonic since daemon start
  std::uint64_t requestsInFlight = 0;  ///< queued work items right now
  std::uint64_t served = 0;            ///< response lines written so far
  std::uint64_t queuePeak = 0;         ///< max pending work at any flush
  double qps = 0.0;                    ///< served / uptime (lifetime)
  double cacheHitRate = 0.0;           ///< cache hits / served, 0 when idle
  bool model = false;                  ///< predictor loaded
  bool flowcacheDegraded = false;      ///< flow-cache I/O failure latched
};

/// The members of the metrics JSON object *without* surrounding braces:
/// `"tool":"...","uptime_ms":...,"counters":{...},"histograms":{...}`.
/// hcp_serve prepends `"ok":true,"op":"metrics",` for the protocol op and
/// `{` + appends `}` for the snapshot file.
std::string jsonBody(const Gauges& g, const telemetry::Snapshot& snap);

/// Prometheus text exposition of the same data.
void writePrometheus(std::ostream& os, const Gauges& g,
                     const telemetry::Snapshot& snap);

/// True when `name` is a valid Prometheus metric name.
bool validMetricName(std::string_view name);

/// HELP-text escaping: backslash and newline.
std::string escapeHelp(std::string_view s);

/// Label-value escaping: backslash, newline and double quote.
std::string escapeLabelValue(std::string_view s);

/// The sibling path the Prometheus snapshot is written to: a trailing
/// ".json" is replaced by ".prom", otherwise ".prom" is appended.
std::string promPathFor(const std::string& jsonPath);

}  // namespace hcp::support::metrics
