// Strict parsing for numeric HCP_* environment variables.
//
// Every env-driven knob used to roll its own strtol with no endptr or range
// check, so HCP_THREADS=4abc silently ran with 4 threads and
// HCP_THREADS=garbage silently fell back to hardware concurrency — the
// worst kind of misconfiguration, because the run *looks* healthy. The
// contract here matches the flag parsers (hcp_cli's parseUint): the whole
// token must be digits, it must fit the stated range, and anything else is
// a usage error that fails loudly with exit code 2 before any work runs.
//
// An *unset or empty* variable is not an error: it means "use the default"
// (CI exports HCP_THREADS="" in its serial/parallel matrix to mean exactly
// that).
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

namespace hcp::support::env {

/// Strict full-token decimal parse: every character must be a digit and the
/// value must fit in uint64. Rejects "", "4abc", "-1", "+1", " 1" and
/// overflow. No locale, no base prefixes.
std::optional<std::uint64_t> parseU64(std::string_view text);

/// Strict full-token decimal floating-point parse: an optional leading '-',
/// a digit sequence with at most one '.', and an optional e/E exponent with
/// its own optional sign. Rejects "", trailing garbage ("1.5x"), hex floats
/// ("0x.8p1"), "nan"/"inf" spellings, a bare "." and values that overflow
/// to infinity — the same fail-loudly contract as parseU64, for the flag
/// parsers that used to accept whatever strtod truncated.
std::optional<double> parseF64(std::string_view text);

/// Reads the integral environment variable `var`. Unset or empty returns
/// `fallback`. A value that does not parse completely or lies outside
/// [minValue, maxValue] prints a message naming the variable to stderr and
/// exits with code 2 — the same contract as a malformed command-line flag.
std::uint64_t u64OrDie(const char* var, std::uint64_t minValue,
                       std::uint64_t maxValue, std::uint64_t fallback);

}  // namespace hcp::support::env
