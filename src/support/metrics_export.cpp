#include "support/metrics_export.hpp"

#include <cstdio>
#include <ostream>

#include "support/json.hpp"

namespace hcp::support::metrics {

namespace {

void appendDouble(std::string& s, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  s += buf;
}

std::string fmtDouble(double v) {
  std::string s;
  appendDouble(s, v);
  return s;
}

/// The quantiles exposed for every histogram, shared by both formats so a
/// JSON scrape and a Prometheus scrape always tell the same story.
constexpr struct {
  const char* jsonKey;
  const char* promQuantile;
  double q;
} kQuantiles[] = {
    {"p50", "0.5", 0.50},
    {"p90", "0.9", 0.90},
    {"p99", "0.99", 0.99},
};

}  // namespace

bool validMetricName(std::string_view name) {
  if (name.empty()) return false;
  for (std::size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    const bool alpha =
        (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
        c == ':';
    if (!(alpha || (i > 0 && c >= '0' && c <= '9'))) return false;
  }
  return true;
}

std::string escapeHelp(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '\\') out += "\\\\";
    else if (c == '\n') out += "\\n";
    else out += c;
  }
  return out;
}

std::string escapeLabelValue(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '\\') out += "\\\\";
    else if (c == '\n') out += "\\n";
    else if (c == '"') out += "\\\"";
    else out += c;
  }
  return out;
}

std::string promPathFor(const std::string& jsonPath) {
  constexpr std::string_view kJson = ".json";
  if (jsonPath.size() > kJson.size() &&
      jsonPath.compare(jsonPath.size() - kJson.size(), kJson.size(), kJson) ==
          0)
    return jsonPath.substr(0, jsonPath.size() - kJson.size()) + ".prom";
  return jsonPath + ".prom";
}

std::string jsonBody(const Gauges& g, const telemetry::Snapshot& snap) {
  std::string b = "\"tool\":\"";
  b += json::escape(g.tool);
  b += "\",\"uptime_ms\":";
  appendDouble(b, g.uptimeMs);
  b += ",\"requests_in_flight\":";
  b += std::to_string(g.requestsInFlight);
  b += ",\"served\":";
  b += std::to_string(g.served);
  b += ",\"queue_peak\":";
  b += std::to_string(g.queuePeak);
  b += ",\"qps\":";
  appendDouble(b, g.qps);
  b += ",\"cache_hit_rate\":";
  appendDouble(b, g.cacheHitRate);
  b += ",\"model\":";
  b += g.model ? "true" : "false";
  b += ",\"flowcache_degraded\":";
  b += g.flowcacheDegraded ? "true" : "false";

  b += ",\"counters\":{";
  for (std::size_t i = 0; i < telemetry::kNumCounters; ++i) {
    if (i != 0) b += ',';
    b += '"';
    b += telemetry::counterName(static_cast<telemetry::Counter>(i));
    b += "\":";
    b += std::to_string(snap.counters[i]);
  }
  b += "},\"histograms\":{";
  for (std::size_t i = 0; i < telemetry::kNumHistograms; ++i) {
    const telemetry::HistStat& h = snap.histograms[i];
    if (i != 0) b += ',';
    b += '"';
    b += telemetry::histogramName(static_cast<telemetry::Histogram>(i));
    b += "\":{\"count\":";
    b += std::to_string(h.count);
    b += ",\"sum\":";
    appendDouble(b, h.sum);
    b += ",\"min\":";
    appendDouble(b, h.count ? h.min : 0.0);
    b += ",\"max\":";
    appendDouble(b, h.count ? h.max : 0.0);
    for (const auto& q : kQuantiles) {
      b += ",\"";
      b += q.jsonKey;
      b += "\":";
      appendDouble(b, h.percentile(q.q));
    }
    b += '}';
  }
  b += '}';
  return b;
}

void writePrometheus(std::ostream& os, const Gauges& g,
                     const telemetry::Snapshot& snap) {
  const std::string tool = escapeLabelValue(g.tool);
  os << "# HELP hcp_uptime_ms "
     << escapeHelp("Milliseconds since the daemon started.") << "\n"
     << "# TYPE hcp_uptime_ms gauge\n"
     << "hcp_uptime_ms{tool=\"" << tool << "\"} " << fmtDouble(g.uptimeMs)
     << "\n";
  os << "# TYPE hcp_requests_in_flight gauge\n"
     << "hcp_requests_in_flight " << g.requestsInFlight << "\n";
  os << "# TYPE hcp_served gauge\nhcp_served " << g.served << "\n";
  os << "# TYPE hcp_queue_peak gauge\nhcp_queue_peak " << g.queuePeak << "\n";
  os << "# TYPE hcp_qps gauge\nhcp_qps " << fmtDouble(g.qps) << "\n";
  os << "# TYPE hcp_cache_hit_rate gauge\nhcp_cache_hit_rate "
     << fmtDouble(g.cacheHitRate) << "\n";
  os << "# TYPE hcp_model_loaded gauge\nhcp_model_loaded "
     << (g.model ? 1 : 0) << "\n";
  os << "# TYPE hcp_flowcache_degraded gauge\nhcp_flowcache_degraded "
     << (g.flowcacheDegraded ? 1 : 0) << "\n";

  for (std::size_t i = 0; i < telemetry::kNumCounters; ++i) {
    const std::string_view name =
        telemetry::counterName(static_cast<telemetry::Counter>(i));
    os << "# TYPE hcp_" << name << "_total counter\n"
       << "hcp_" << name << "_total " << snap.counters[i] << "\n";
  }

  for (std::size_t i = 0; i < telemetry::kNumHistograms; ++i) {
    const std::string_view name =
        telemetry::histogramName(static_cast<telemetry::Histogram>(i));
    const telemetry::HistStat& h = snap.histograms[i];
    os << "# TYPE hcp_" << name << " summary\n";
    for (const auto& q : kQuantiles)
      os << "hcp_" << name << "{quantile=\"" << q.promQuantile << "\"} "
         << fmtDouble(h.percentile(q.q)) << "\n";
    os << "hcp_" << name << "_sum " << fmtDouble(h.sum) << "\n";
    os << "hcp_" << name << "_count " << h.count << "\n";
    os << "# TYPE hcp_" << name << "_min gauge\n"
       << "hcp_" << name << "_min " << fmtDouble(h.count ? h.min : 0.0)
       << "\n";
    os << "# TYPE hcp_" << name << "_max gauge\n"
       << "hcp_" << name << "_max " << fmtDouble(h.count ? h.max : 0.0)
       << "\n";
  }
}

}  // namespace hcp::support::metrics
