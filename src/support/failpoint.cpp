#include "support/failpoint.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <optional>

#include "support/env.hpp"
#include "support/error.hpp"
#include "support/telemetry.hpp"

namespace hcp::support::failpoint {

namespace {

/// One spec entry. `remaining` counts down for `site:N` entries;
/// `probability < 0` means "not a probabilistic entry".
struct Entry {
  std::string site;
  std::uint64_t remaining = 0;  ///< meaningful when counted
  bool counted = false;         ///< true for site:N entries
  double probability = -1.0;    ///< in [0,1] for site:P entries
  std::uint64_t rngState = 0;   ///< per-entry deterministic PRNG
  std::uint64_t fired = 0;
};

struct Config {
  std::mutex mu;
  std::vector<Entry> entries;
  std::string spec;
};

Config& config() {
  static Config c;
  return c;
}

/// FNV-1a of the site name: a stable per-entry PRNG seed, so a
/// probabilistic entry fires on the same hit sequence in every run.
std::uint64_t seedFor(std::string_view site) {
  std::uint64_t h = 14695981039346656037ULL;
  for (const char c : site) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h | 1;  // never zero
}

/// xorshift64*: tiny, deterministic, good enough for fire/pass decisions.
double nextUniform(std::uint64_t& state) {
  state ^= state >> 12;
  state ^= state << 25;
  state ^= state >> 27;
  const std::uint64_t bits = state * 2685821657736338717ULL;
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

/// `entry` matches `query` when equal or a dot-prefix ("a.b" matches
/// "a.b.c" but not "a.bc").
bool matches(const std::string& entry, std::string_view query) {
  if (query.size() < entry.size()) return false;
  if (query.compare(0, entry.size(), entry) != 0) return false;
  return query.size() == entry.size() || query[entry.size()] == '.';
}

Entry parseEntry(const std::string& text) {
  Entry e;
  const std::size_t colon = text.find(':');
  e.site = text.substr(0, colon == std::string::npos ? text.size() : colon);
  HCP_CHECK_MSG(!e.site.empty(),
                "failpoint spec: empty site name in entry '" << text << "'");
  HCP_CHECK_MSG(e.site.find_first_of(" \t:") == std::string::npos,
                "failpoint spec: malformed site name '" << e.site << "'");
  if (colon == std::string::npos) return e;  // fire every hit

  const std::string arg = text.substr(colon + 1);
  HCP_CHECK_MSG(!arg.empty(), "failpoint spec: entry '"
                                  << text << "' has ':' but no count/prob");
  if (arg.find_first_of(".eE") == std::string::npos) {
    // All-digit argument: a hit count. env::parseU64 rejects signs,
    // whitespace and overflow (the old strtoull path accepted "+3", " 3"
    // and silently clamped huge counts).
    const std::optional<std::uint64_t> n = env::parseU64(arg);
    HCP_CHECK_MSG(n.has_value(),
                  "failpoint spec: '" << arg << "' is not a count (entry '"
                                      << text << "')");
    e.counted = true;
    e.remaining = *n;
  } else {
    // Argument with '.'/'e': a firing probability. env::parseF64 rejects
    // trailing garbage, hex floats ("0x.8p1"), "nan"/"inf" and overflow —
    // strtod accepted all of those.
    const std::optional<double> p = env::parseF64(arg);
    HCP_CHECK_MSG(p.has_value() && *p >= 0.0 && *p <= 1.0,
                  "failpoint spec: '" << arg
                                      << "' is not a probability in [0,1] "
                                         "(entry '"
                                      << text << "')");
    e.probability = *p;
    e.rngState = seedFor(e.site);
  }
  return e;
}

}  // namespace

namespace detail {

std::atomic<std::uint32_t> gNumArmed{0};

bool shouldFailSlow(std::string_view site) {
  Config& c = config();
  std::lock_guard<std::mutex> lk(c.mu);
  for (Entry& e : c.entries) {
    if (!matches(e.site, site)) continue;
    bool fire;
    if (e.probability >= 0.0) {
      fire = nextUniform(e.rngState) < e.probability;
    } else if (e.counted) {
      fire = e.remaining > 0;
      if (fire) --e.remaining;
    } else {
      fire = true;
    }
    if (fire) {
      ++e.fired;
      telemetry::count(telemetry::Counter::FailpointsFired);
    }
    return fire;  // first matching entry decides
  }
  return false;
}

}  // namespace detail

void configure(const std::string& spec) {
  std::vector<Entry> entries;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string text = spec.substr(pos, comma - pos);
    if (!text.empty()) entries.push_back(parseEntry(text));
    pos = comma + 1;
  }
  Config& c = config();
  std::lock_guard<std::mutex> lk(c.mu);
  c.entries = std::move(entries);
  c.spec = spec;
  detail::gNumArmed.store(static_cast<std::uint32_t>(c.entries.size()),
                          std::memory_order_relaxed);
}

void clear() { configure(""); }

std::uint64_t firedCount(std::string_view site) {
  Config& c = config();
  std::lock_guard<std::mutex> lk(c.mu);
  for (const Entry& e : c.entries)
    if (e.site == site) return e.fired;
  return 0;
}

std::vector<std::string> sites() {
  Config& c = config();
  std::lock_guard<std::mutex> lk(c.mu);
  std::vector<std::string> names;
  names.reserve(c.entries.size());
  for (const Entry& e : c.entries) names.push_back(e.site);
  return names;
}

std::string initFromArgs(int argc, char** argv) {
  std::string spec =
      telemetry::detail::flagValueOrDie(argc, argv, "failpoints");
  if (spec.empty()) {
    if (const char* env = std::getenv("HCP_FAILPOINTS")) spec = env;
  }
  if (!spec.empty()) {
    try {
      configure(spec);
    } catch (const hcp::Error& e) {
      std::fprintf(stderr, "%s\n", e.what());
      std::exit(2);
    }
  }
  return spec;
}

namespace {
std::string currentSpec() {
  Config& c = config();
  std::lock_guard<std::mutex> lk(c.mu);
  return c.spec;
}
}  // namespace

ScopedFailpoints::ScopedFailpoints(const std::string& spec)
    : prev_(currentSpec()) {
  configure(spec);
}

ScopedFailpoints::~ScopedFailpoints() { configure(prev_); }

}  // namespace hcp::support::failpoint
