// Deterministic parallel execution primitives.
//
// A lazily-initialized global thread pool backs `parallelFor` and
// `parallelMap`. Determinism is by construction, not by luck:
//   - results are merged by index, so output ordering never depends on
//     execution order;
//   - each task owns its state (callers pass per-task seeds where needed);
//   - when several tasks throw, the exception of the *lowest* task index is
//     rethrown — exactly the one a serial run would have surfaced first.
// Consequently `HCP_THREADS=1` (or `ScopedThreadLimit(1)`) and an N-thread
// run produce bit-identical results for any side-effect-free body.
//
// Thread count resolution, in precedence order:
//   1. `ScopedThreadLimit` (thread-local, RAII — benches and tests)
//   2. `setThreadLimit()` (process-wide — the benches' `--threads N` flag)
//   3. `HCP_THREADS` environment variable (read once, at first use)
//   4. `std::thread::hardware_concurrency()`
// A limit of 1 takes the serial inline path and never touches the pool.
//
// Nested parallelism is safe: a `parallelFor` issued from inside a worker
// task runs inline on that worker, so an outer parallel grid search can call
// code whose inner loops are themselves parallelized.
#pragma once

#include <algorithm>
#include <cstddef>
#include <functional>
#include <type_traits>
#include <vector>

#include "support/error.hpp"

namespace hcp::support {

/// Effective thread limit for the calling thread (override > global).
std::size_t threadLimit();

/// Sets the process-wide thread limit (>= 1). Call before heavy work; the
/// pool grows on demand, so raising the limit later is also fine.
void setThreadLimit(std::size_t n);

/// RAII thread-local limit override; `ScopedThreadLimit(1)` forces the
/// serial path for the current thread until the scope exits.
class ScopedThreadLimit {
 public:
  explicit ScopedThreadLimit(std::size_t n);
  ~ScopedThreadLimit();
  ScopedThreadLimit(const ScopedThreadLimit&) = delete;
  ScopedThreadLimit& operator=(const ScopedThreadLimit&) = delete;

 private:
  std::size_t prev_;
};

namespace detail {

/// Resolves the HCP_THREADS environment variable (strict parse: a value
/// that is not a positive integer prints a message and exits 2; unset or
/// empty falls back to hardware concurrency). Called once, lazily, to seed
/// the global limit; exposed so the exit-2 contract stays regression-tested.
std::size_t threadLimitFromEnv();

/// True while the calling thread is executing a parallel task (nested
/// parallel calls then run inline).
bool inParallelRegion();

/// True when a top-level region must give each task its own telemetry
/// delta frame even on the serial path. Keeping the per-task partials and
/// their fixed merge order identical at every thread count is what makes
/// floating-point aggregates (histogram sums) bit-identical between
/// `--threads 1` and `--threads N`, not merely close.
bool wantTaskCapture();

/// Concurrency that a region of `numTasks` tasks may use right now.
std::size_t effectiveConcurrency(std::size_t numTasks);

/// Runs task(i) for i in [0, numTasks) on the pool plus the calling thread,
/// blocks until every task finished, and rethrows the exception of the
/// lowest failing task index, if any.
void runTasks(std::size_t numTasks, std::size_t concurrency,
              const std::function<void(std::size_t)>& task);

}  // namespace detail

/// Calls fn(i) for every i in [begin, end), chunked by `grainSize`.
/// Deterministic: identical observable results at any thread count as long
/// as fn(i) only touches state owned by index i.
template <typename Fn>
void parallelFor(std::size_t begin, std::size_t end, std::size_t grainSize,
                 Fn&& fn) {
  if (end <= begin) return;
  if (grainSize == 0) grainSize = 1;
  const std::size_t n = end - begin;
  const std::size_t numChunks = (n + grainSize - 1) / grainSize;
  const std::size_t threads = detail::effectiveConcurrency(numChunks);
  // A single-chunk region accumulates left-to-right at any thread count, so
  // it can always run inline. A multi-chunk region at one thread still goes
  // through runTasks when telemetry wants per-task frames, so the chunked
  // merge is identical to what an N-thread run produces.
  if (numChunks <= 1 || (threads <= 1 && !detail::wantTaskCapture())) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  detail::runTasks(numChunks, threads, [&](std::size_t chunk) {
    const std::size_t lo = begin + chunk * grainSize;
    const std::size_t hi = std::min(end, lo + grainSize);
    for (std::size_t i = lo; i < hi; ++i) fn(i);
  });
}

/// Returns {fn(0), fn(1), ..., fn(n-1)} in index order.
template <typename Fn>
auto parallelMapIndex(std::size_t n, Fn&& fn, std::size_t grainSize = 1)
    -> std::vector<std::decay_t<decltype(fn(std::size_t{0}))>> {
  using R = std::decay_t<decltype(fn(std::size_t{0}))>;
  static_assert(std::is_default_constructible_v<R>,
                "parallelMapIndex result type must be default-constructible");
  std::vector<R> out(n);
  parallelFor(0, n, grainSize, [&](std::size_t i) { out[i] = fn(i); });
  return out;
}

/// Maps fn over `items`, preserving order.
template <typename T, typename Fn>
auto parallelMap(const std::vector<T>& items, Fn&& fn,
                 std::size_t grainSize = 1)
    -> std::vector<std::decay_t<decltype(fn(items.front()))>> {
  return parallelMapIndex(
      items.size(), [&](std::size_t i) { return fn(items[i]); }, grainSize);
}

}  // namespace hcp::support
