// String helpers used across the libraries (naming RTL cells, parsing
// directive specs in examples, report formatting).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace hcp {

/// Splits on a single-character delimiter; empty fields preserved.
std::vector<std::string> split(std::string_view s, char delim);

/// Strips ASCII whitespace from both ends.
std::string trim(std::string_view s);

/// Joins with a separator.
std::string join(const std::vector<std::string>& parts,
                 std::string_view sep);

/// True if `s` starts with `prefix`.
bool startsWith(std::string_view s, std::string_view prefix);

/// Lower-cases ASCII.
std::string toLower(std::string_view s);

}  // namespace hcp
