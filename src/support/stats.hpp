// Small statistics helpers shared by the congestion-map analysis, the
// dataset filter and the ML metrics.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace hcp {

/// Arithmetic mean; 0 for an empty span.
double mean(std::span<const double> v);

/// Population standard deviation; 0 for spans of size < 2.
double stddev(std::span<const double> v);

/// Median (average of the two middle elements for even sizes).
/// Does not modify the input. 0 for an empty span.
double median(std::span<const double> v);

/// Linear-interpolated percentile, p in [0, 100].
double percentile(std::span<const double> v, double p);

double minOf(std::span<const double> v);
double maxOf(std::span<const double> v);

/// Summary bundle used by the benchmark-property tables (Table III).
struct Summary {
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double median = 0.0;
  double stddev = 0.0;
  std::size_t count = 0;
};

Summary summarize(std::span<const double> v);

/// Fixed-width histogram over [lo, hi) with `bins` buckets; values outside
/// the range are clamped into the first/last bucket.
std::vector<std::size_t> histogram(std::span<const double> v, double lo,
                                   double hi, std::size_t bins);

/// Pearson correlation coefficient; 0 if either side has zero variance.
double pearson(std::span<const double> a, std::span<const double> b);

}  // namespace hcp
