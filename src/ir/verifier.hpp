// Structural IR verifier. Run after construction and after every transform
// (inline/unroll/partition) to catch malformed IR early; all downstream
// stages (scheduler, binder, RTL generation) assume a verified function.
#pragma once

#include <string>
#include <vector>

#include "ir/module.hpp"

namespace hcp::ir {

/// Returns a list of human-readable violations (empty = valid).
/// Checked invariants:
///  - operands reference earlier ops (def-before-use; Phi may reference later)
///  - operand bitsUsed <= producer bitwidth and > 0
///  - opcode payloads present (Const value width fits, Load/Store array
///    valid, Read/WritePort port valid and direction-correct)
///  - loop forest well-formed (parents precede children, trip counts >= 1)
///  - ops reference valid loop regions
///  - value-producing opcodes have nonzero bitwidth; void opcodes have zero
std::vector<std::string> verify(const Function& fn);

/// Verifies every function plus module-level invariants (top set, all Call
/// ops resolve to existing functions, no recursive call cycles).
std::vector<std::string> verify(const Module& mod);

/// Throws hcp::Error with the first violation if any.
void verifyOrThrow(const Function& fn);
void verifyOrThrow(const Module& mod);

}  // namespace hcp::ir
