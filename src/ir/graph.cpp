#include "ir/graph.hpp"

#include <algorithm>
#include <map>
#include <set>

namespace hcp::ir {

DependencyGraph DependencyGraph::build(const Function& fn) {
  DependencyGraph g;
  g.fn_ = &fn;
  g.opToNode_.resize(fn.numOps(), kInvalidNode);

  for (OpId id = 0; id < fn.numOps(); ++id) {
    Node n;
    n.kind = NodeKind::Operation;
    n.op = id;
    n.members = {id};
    g.nodes_.push_back(std::move(n));
    g.opToNode_[id] = static_cast<NodeId>(g.nodes_.size() - 1);
  }
  std::vector<NodeId> portNode(fn.numPorts(), kInvalidNode);
  for (PortId p = 0; p < fn.numPorts(); ++p) {
    Node n;
    n.kind = NodeKind::Port;
    n.port = p;
    g.nodes_.push_back(std::move(n));
    portNode[p] = static_cast<NodeId>(g.nodes_.size() - 1);
  }
  g.preds_.resize(g.nodes_.size());
  g.succs_.resize(g.nodes_.size());

  for (OpId id = 0; id < fn.numOps(); ++id) {
    const Op& op = fn.op(id);
    for (const Operand& use : op.operands) {
      g.addEdge(g.opToNode_[use.producer], g.opToNode_[id],
                static_cast<double>(use.bitsUsed));
    }
    if (op.opcode == Opcode::ReadPort) {
      g.addEdge(portNode[op.port], g.opToNode_[id],
                static_cast<double>(fn.portInfo(op.port).bitwidth));
    } else if (op.opcode == Opcode::WritePort) {
      g.addEdge(g.opToNode_[id], portNode[op.port],
                static_cast<double>(fn.portInfo(op.port).bitwidth));
    }
  }
  return g;
}

void DependencyGraph::addEdge(NodeId from, NodeId to, double wires) {
  // Accumulate parallel edges so each neighbour appears once.
  auto accumulate = [wires](std::vector<Neighbor>& list, NodeId other) {
    for (Neighbor& n : list) {
      if (n.node == other) {
        n.wires += wires;
        return;
      }
    }
    list.push_back(Neighbor{other, wires});
  };
  accumulate(succs_[from], to);
  accumulate(preds_[to], from);
}

NodeId DependencyGraph::mergeOps(std::span<const OpId> ops) {
  HCP_CHECK(ops.size() >= 2);
  std::set<NodeId> group;
  for (OpId op : ops) group.insert(nodeOf(op));
  HCP_CHECK_MSG(group.size() >= 2, "mergeOps: ops already share a node");

  Node merged;
  merged.kind = NodeKind::Merged;
  merged.op = *std::min_element(ops.begin(), ops.end());
  for (NodeId n : group) {
    HCP_CHECK(nodes_[n].kind != NodeKind::Port);
    for (OpId m : nodes_[n].members) merged.members.push_back(m);
  }
  std::sort(merged.members.begin(), merged.members.end());
  nodes_.push_back(std::move(merged));
  const NodeId mid = static_cast<NodeId>(nodes_.size() - 1);
  preds_.emplace_back();
  succs_.emplace_back();

  // Collect external edges of the group; intra-group edges vanish.
  std::map<NodeId, double> in, out;
  for (NodeId n : group) {
    for (const Neighbor& p : preds_[n])
      if (!group.count(p.node)) in[p.node] += p.wires;
    for (const Neighbor& s : succs_[n])
      if (!group.count(s.node)) out[s.node] += s.wires;
  }
  // Detach the old nodes from their neighbours.
  auto detach = [&](std::vector<Neighbor>& list) {
    std::erase_if(list, [&](const Neighbor& n) { return group.count(n.node) > 0; });
  };
  for (const auto& [nbr, w] : in) {
    (void)w;
    detach(succs_[nbr]);
  }
  for (const auto& [nbr, w] : out) {
    (void)w;
    detach(preds_[nbr]);
  }
  for (const auto& [nbr, w] : in) addEdge(nbr, mid, w);
  for (const auto& [nbr, w] : out) addEdge(mid, nbr, w);

  for (NodeId n : group) {
    nodes_[n].alive = false;
    preds_[n].clear();
    succs_[n].clear();
  }
  for (OpId m : nodes_[mid].members) opToNode_[m] = mid;
  return mid;
}

NodeId DependencyGraph::nodeOf(OpId op) const {
  HCP_CHECK(op < opToNode_.size());
  return opToNode_[op];
}

std::size_t DependencyGraph::numAliveNodes() const {
  return static_cast<std::size_t>(
      std::count_if(nodes_.begin(), nodes_.end(),
                    [](const Node& n) { return n.alive; }));
}

double DependencyGraph::fanIn(NodeId id) const {
  double total = 0.0;
  for (const Neighbor& n : preds(id)) total += n.wires;
  return total;
}

double DependencyGraph::fanOut(NodeId id) const {
  double total = 0.0;
  for (const Neighbor& n : succs(id)) total += n.wires;
  return total;
}

namespace {
std::vector<NodeId> twoHop(
    NodeId id, const DependencyGraph& g,
    std::span<const Neighbor> (DependencyGraph::*dir)(NodeId) const) {
  std::set<NodeId> seen;
  for (const Neighbor& one : (g.*dir)(id)) {
    seen.insert(one.node);
    for (const Neighbor& two : (g.*dir)(one.node)) seen.insert(two.node);
  }
  seen.erase(id);
  return {seen.begin(), seen.end()};
}
}  // namespace

std::vector<NodeId> DependencyGraph::twoHopPreds(NodeId id) const {
  return twoHop(id, *this, &DependencyGraph::preds);
}

std::vector<NodeId> DependencyGraph::twoHopSuccs(NodeId id) const {
  return twoHop(id, *this, &DependencyGraph::succs);
}

}  // namespace hcp::ir
