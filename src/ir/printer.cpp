#include "ir/printer.hpp"

#include <sstream>

namespace hcp::ir {

namespace {

void printFunctionInto(const Function& fn, const PrintOptions& options,
                       std::ostringstream& os) {
  os << "func " << fn.name() << " {\n";
  for (PortId p = 0; p < fn.numPorts(); ++p) {
    const PortInfo& port = fn.portInfo(p);
    os << "  port "
       << (port.direction == PortDirection::In ? "in" : "out") << " "
       << port.name << " :" << port.bitwidth << "\n";
  }
  for (ArrayId a = 0; a < fn.numArrays(); ++a) {
    const ArrayInfo& arr = fn.array(a);
    os << "  array " << arr.name << "[" << arr.words << "] :" << arr.bitwidth
       << " banks=" << arr.banks << "\n";
  }
  for (LoopId l = 1; l < fn.numLoops(); ++l) {
    const LoopInfo& loop = fn.loop(l);
    os << "  loop " << l << " \"" << loop.name << "\" parent=" << loop.parent
       << " trip=" << loop.tripCount;
    if (loop.unrollFactor > 1) os << " unroll=" << loop.unrollFactor;
    if (loop.pipelined) os << " pipelined ii=" << loop.initiationInterval;
    os << "\n";
  }
  for (OpId id = 0; id < fn.numOps(); ++id) {
    const Op& op = fn.op(id);
    os << "  %" << id << " = " << opcodeName(op.opcode);
    switch (op.opcode) {
      case Opcode::Const:
        os << " " << op.constValue;
        break;
      case Opcode::ReadPort:
      case Opcode::WritePort:
        os << " " << fn.portInfo(op.port).name;
        break;
      case Opcode::Load:
      case Opcode::Store:
        os << " " << fn.array(op.array).name;
        break;
      case Opcode::Call:
        os << " @" << op.name;
        break;
      default:
        break;
    }
    for (std::size_t i = 0; i < op.operands.size(); ++i) {
      os << (i == 0 && op.opcode != Opcode::Const ? " " : ", ") << "%"
         << op.operands[i].producer;
      if (op.operands[i].bitsUsed !=
          fn.op(op.operands[i].producer).bitwidth)
        os << "[" << op.operands[i].bitsUsed << "b]";
    }
    if (op.bitwidth > 0) os << " :" << op.bitwidth;
    if (options.loopBodies && op.loop != kRootRegion)
      os << " loop=" << op.loop;
    if (options.sourceLines && op.sourceLine > 0)
      os << " line=" << op.sourceLine;
    if (options.unrollOrigins &&
        (op.originOp != id || op.replicaIndex != 0))
      os << " origin=%" << op.originOp << " replica=" << op.replicaIndex;
    if (!op.name.empty() && op.opcode != Opcode::Call)
      os << "  ; " << op.name;
    os << "\n";
  }
  os << "}\n";
}

}  // namespace

std::string print(const Function& fn, const PrintOptions& options) {
  std::ostringstream os;
  printFunctionInto(fn, options, os);
  return os.str();
}

std::string print(const Module& mod, const PrintOptions& options) {
  std::ostringstream os;
  os << "module " << mod.name();
  if (mod.hasTop()) os << " top=" << mod.top().name();
  os << "\n";
  for (std::uint32_t f = 0; f < mod.numFunctions(); ++f) {
    printFunctionInto(mod.function(f), options, os);
  }
  return os.str();
}

}  // namespace hcp::ir
