// Dependency graph over the operations of one function (paper §III-A2).
//
// Nodes are IR operations plus one "port" node per function I/O port (so
// operators connected to the same port are linked, as the paper prescribes).
// Edge weights carry the number of wires of each connection (the bits the
// consumer actually uses). Resource sharing is modelled by merging all the
// operations bound to one RTL module into a single combined node (Fig 4):
// originals are retired and their edges are redirected, with parallel edges
// accumulated.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

#include "ir/function.hpp"

namespace hcp::ir {

using NodeId = std::uint32_t;
inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();

/// Directed weighted neighbour reference.
struct Neighbor {
  NodeId node = kInvalidNode;
  double wires = 0.0;  ///< total wire count of the connection
};

class DependencyGraph {
 public:
  enum class NodeKind : std::uint8_t { Operation, Port, Merged };

  struct Node {
    NodeKind kind = NodeKind::Operation;
    OpId op = kInvalidOp;          ///< representative op (Operation/Merged)
    PortId port = kInvalidIndex;   ///< for Port nodes
    std::vector<OpId> members;     ///< all ops fused into a Merged node
    bool alive = true;
  };

  /// Builds the graph for `fn`: one node per op, one node per port, edges
  /// weighted by Operand::bitsUsed; ReadPort/WritePort ops are linked to
  /// their port node with the port's bitwidth as weight.
  static DependencyGraph build(const Function& fn);

  /// Merges the nodes of `ops` (≥2 ops sharing one RTL module) into one
  /// combined node; returns its id. Edges among the group vanish; external
  /// edges are redirected and parallel edges accumulate their wire counts.
  NodeId mergeOps(std::span<const OpId> ops);

  /// Node currently representing `op` (follows merges).
  NodeId nodeOf(OpId op) const;

  const Node& node(NodeId id) const {
    HCP_CHECK(id < nodes_.size());
    return nodes_[id];
  }
  std::size_t numNodes() const { return nodes_.size(); }
  std::size_t numAliveNodes() const;

  std::span<const Neighbor> preds(NodeId id) const {
    HCP_CHECK(id < nodes_.size());
    return preds_[id];
  }
  std::span<const Neighbor> succs(NodeId id) const {
    HCP_CHECK(id < nodes_.size());
    return succs_[id];
  }

  /// Fan-in / fan-out: total wires over incoming / outgoing edges.
  double fanIn(NodeId id) const;
  double fanOut(NodeId id) const;

  /// Distinct nodes reachable within two hops backwards/forwards,
  /// excluding `id` itself. Used for the paper's two-hop feature variants.
  std::vector<NodeId> twoHopPreds(NodeId id) const;
  std::vector<NodeId> twoHopSuccs(NodeId id) const;

  const Function& function() const { return *fn_; }

  /// Text serialization (ir/serialize.hpp; flow-cache format). `read`
  /// rebinds the graph to `fn`, which must be the same function the graph
  /// was built from (the flow-cache reader passes the freshly deserialized
  /// module's function). Defined in ir/serialize.cpp.
  void write(std::ostream& os) const;
  static DependencyGraph read(std::istream& is, const Function& fn);

 private:
  void addEdge(NodeId from, NodeId to, double wires);

  const Function* fn_ = nullptr;
  std::vector<Node> nodes_;
  std::vector<std::vector<Neighbor>> preds_;
  std::vector<std::vector<Neighbor>> succs_;
  std::vector<NodeId> opToNode_;  ///< current node of each op (post-merge)
};

}  // namespace hcp::ir
