// Fluent construction API for IR functions. The six Rosetta-like design
// generators in src/apps are written against this interface, so it favours
// terseness: binary helpers infer result widths, a loop stack tracks the
// innermost region, and a current source line provides provenance.
#pragma once

#include <string>
#include <vector>

#include "ir/function.hpp"

namespace hcp::ir {

class Builder {
 public:
  explicit Builder(Function& fn) : fn_(fn) {}

  /// Sets the source line attached to subsequently created ops.
  Builder& atLine(std::int32_t line) {
    line_ = line;
    return *this;
  }
  std::int32_t currentLine() const { return line_; }

  // --- structure -------------------------------------------------------
  /// Opens a loop region nested in the current one.
  LoopId beginLoop(const std::string& name, std::uint64_t tripCount);
  /// Closes the innermost loop.
  void endLoop();
  LoopId currentLoop() const {
    return loopStack_.empty() ? kRootRegion : loopStack_.back();
  }

  PortId inPort(const std::string& name, std::uint16_t width);
  PortId outPort(const std::string& name, std::uint16_t width);
  ArrayId array(const std::string& name, std::uint64_t words,
                std::uint16_t width);

  // --- leaf ops ----------------------------------------------------------
  OpId constant(std::int64_t value, std::uint16_t width);
  OpId readPort(PortId port);

  // --- generic -------------------------------------------------------------
  /// Creates an op with explicit operands; bitsUsed defaults to the full
  /// producer width (clamped per-operand via `use`).
  OpId make(Opcode opcode, std::uint16_t width, std::vector<OpId> operands,
            const std::string& name = "");

  /// Creates an op whose operand list carries explicit wire counts.
  OpId makeWithBits(Opcode opcode, std::uint16_t width,
                    std::vector<Operand> operands,
                    const std::string& name = "");

  // --- binary/unary conveniences (result width = max operand width unless
  // the opcode dictates otherwise, e.g. comparisons are 1 bit) ---------------
  OpId add(OpId a, OpId b) { return binary(Opcode::Add, a, b); }
  OpId sub(OpId a, OpId b) { return binary(Opcode::Sub, a, b); }
  OpId mul(OpId a, OpId b) { return binaryWide(Opcode::Mul, a, b); }
  OpId div(OpId a, OpId b) { return binary(Opcode::Div, a, b); }
  OpId rem(OpId a, OpId b) { return binary(Opcode::Rem, a, b); }
  OpId fadd(OpId a, OpId b) { return binary(Opcode::FAdd, a, b); }
  OpId fsub(OpId a, OpId b) { return binary(Opcode::FSub, a, b); }
  OpId fmul(OpId a, OpId b) { return binary(Opcode::FMul, a, b); }
  OpId fdiv(OpId a, OpId b) { return binary(Opcode::FDiv, a, b); }
  OpId and_(OpId a, OpId b) { return binary(Opcode::And, a, b); }
  OpId or_(OpId a, OpId b) { return binary(Opcode::Or, a, b); }
  OpId xor_(OpId a, OpId b) { return binary(Opcode::Xor, a, b); }
  OpId shl(OpId a, OpId b) { return binary(Opcode::Shl, a, b); }
  OpId lshr(OpId a, OpId b) { return binary(Opcode::LShr, a, b); }
  OpId min(OpId a, OpId b) { return binary(Opcode::Min, a, b); }
  OpId max(OpId a, OpId b) { return binary(Opcode::Max, a, b); }
  OpId absdiff(OpId a, OpId b) { return binary(Opcode::AbsDiff, a, b); }
  OpId icmpLt(OpId a, OpId b) { return cmp(Opcode::ICmpLt, a, b); }
  OpId icmpGt(OpId a, OpId b) { return cmp(Opcode::ICmpGt, a, b); }
  OpId icmpEq(OpId a, OpId b) { return cmp(Opcode::ICmpEq, a, b); }
  OpId icmpGe(OpId a, OpId b) { return cmp(Opcode::ICmpGe, a, b); }
  OpId select(OpId cond, OpId t, OpId f);
  OpId neg(OpId a) { return unary(Opcode::Neg, a); }
  OpId not_(OpId a) { return unary(Opcode::Not, a); }
  OpId popcount(OpId a);
  OpId trunc(OpId a, std::uint16_t width);
  OpId zext(OpId a, std::uint16_t width);
  OpId sext(OpId a, std::uint16_t width);
  OpId concat(OpId hi, OpId lo);
  /// Extracts `width` bits starting at `offset` from a's result.
  OpId extract(OpId a, std::uint16_t offset, std::uint16_t width);
  /// Fused multiply-add: a*b + c.
  OpId muladd(OpId a, OpId b, OpId c);
  OpId mac(OpId acc, OpId a, OpId b);

  // --- memory / io -----------------------------------------------------
  OpId load(ArrayId arr, OpId index);
  OpId store(ArrayId arr, OpId index, OpId value);
  OpId writePort(PortId port, OpId value);
  OpId ret();
  OpId call(const std::string& callee, std::vector<OpId> args,
            std::uint16_t resultWidth);

  Function& function() { return fn_; }

 private:
  OpId binary(Opcode opcode, OpId a, OpId b);
  OpId binaryWide(Opcode opcode, OpId a, OpId b);  // width = sum (mul-like)
  OpId cmp(Opcode opcode, OpId a, OpId b);
  OpId unary(Opcode opcode, OpId a);
  Operand fullUse(OpId id) const;

  Function& fn_;
  std::vector<LoopId> loopStack_;
  std::int32_t line_ = 0;
};

}  // namespace hcp::ir
