// Textual IR dump — the debugging surface of the compiler half of this
// repository. The format is line-oriented and stable, so tests can assert
// on it and humans can diff two transform pipelines.
//
//   func face_detect {
//     port in pixel :16
//     array window[256] :16 banks=256
//     loop 1 "fill" parent=0 trip=256 unroll=8 pipelined ii=1
//     %3 = sub %1, %2 :16 loop=1 line=111
//     ...
//   }
#pragma once

#include <string>

#include "ir/module.hpp"

namespace hcp::ir {

struct PrintOptions {
  bool sourceLines = true;   ///< append line=N provenance
  bool loopBodies = true;    ///< annotate ops with loop=N
  bool unrollOrigins = false;///< append origin=N/replica=N for unroll copies
};

/// Renders one function.
std::string print(const Function& fn, const PrintOptions& options = {});

/// Renders a whole module (top marked).
std::string print(const Module& mod, const PrintOptions& options = {});

}  // namespace hcp::ir
