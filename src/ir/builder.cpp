#include "ir/builder.hpp"

#include <algorithm>

namespace hcp::ir {

LoopId Builder::beginLoop(const std::string& name, std::uint64_t tripCount) {
  HCP_CHECK(tripCount >= 1);
  LoopInfo info;
  info.name = name;
  info.parent = currentLoop();
  info.tripCount = tripCount;
  info.sourceLine = line_;
  const LoopId id = fn_.addLoop(info);
  loopStack_.push_back(id);
  return id;
}

void Builder::endLoop() {
  HCP_CHECK_MSG(!loopStack_.empty(), "endLoop without beginLoop");
  loopStack_.pop_back();
}

PortId Builder::inPort(const std::string& name, std::uint16_t width) {
  return fn_.addPort({name, PortDirection::In, width});
}

PortId Builder::outPort(const std::string& name, std::uint16_t width) {
  return fn_.addPort({name, PortDirection::Out, width});
}

ArrayId Builder::array(const std::string& name, std::uint64_t words,
                       std::uint16_t width) {
  ArrayInfo info;
  info.name = name;
  info.words = words;
  info.bitwidth = width;
  info.sourceLine = line_;
  return fn_.addArray(info);
}

OpId Builder::constant(std::int64_t value, std::uint16_t width) {
  Op op;
  op.opcode = Opcode::Const;
  op.bitwidth = width;
  op.constValue = value;
  op.loop = currentLoop();
  op.sourceLine = line_;
  return fn_.addOp(std::move(op));
}

OpId Builder::readPort(PortId port) {
  HCP_CHECK(port < fn_.numPorts());
  HCP_CHECK(fn_.portInfo(port).direction == PortDirection::In);
  Op op;
  op.opcode = Opcode::ReadPort;
  op.bitwidth = fn_.portInfo(port).bitwidth;
  op.port = port;
  op.loop = currentLoop();
  op.sourceLine = line_;
  return fn_.addOp(std::move(op));
}

Operand Builder::fullUse(OpId id) const {
  return Operand{id, fn_.op(id).bitwidth};
}

OpId Builder::make(Opcode opcode, std::uint16_t width,
                   std::vector<OpId> operands, const std::string& name) {
  std::vector<Operand> ops;
  ops.reserve(operands.size());
  for (OpId o : operands) ops.push_back(fullUse(o));
  return makeWithBits(opcode, width, std::move(ops), name);
}

OpId Builder::makeWithBits(Opcode opcode, std::uint16_t width,
                           std::vector<Operand> operands,
                           const std::string& name) {
  Op op;
  op.opcode = opcode;
  op.bitwidth = width;
  op.operands = std::move(operands);
  op.loop = currentLoop();
  op.sourceLine = line_;
  op.name = name;
  return fn_.addOp(std::move(op));
}

OpId Builder::binary(Opcode opcode, OpId a, OpId b) {
  const std::uint16_t w =
      std::max(fn_.op(a).bitwidth, fn_.op(b).bitwidth);
  return make(opcode, w, {a, b});
}

OpId Builder::binaryWide(Opcode opcode, OpId a, OpId b) {
  const std::uint16_t w = static_cast<std::uint16_t>(
      std::min<int>(64, fn_.op(a).bitwidth + fn_.op(b).bitwidth));
  return make(opcode, w, {a, b});
}

OpId Builder::cmp(Opcode opcode, OpId a, OpId b) {
  return make(opcode, 1, {a, b});
}

OpId Builder::unary(Opcode opcode, OpId a) {
  return make(opcode, fn_.op(a).bitwidth, {a});
}

OpId Builder::select(OpId cond, OpId t, OpId f) {
  const std::uint16_t w =
      std::max(fn_.op(t).bitwidth, fn_.op(f).bitwidth);
  return make(Opcode::Select, w, {cond, t, f});
}

OpId Builder::popcount(OpId a) {
  // ceil(log2(width+1)) result bits.
  std::uint16_t w = 1;
  while ((1u << w) <= fn_.op(a).bitwidth) ++w;
  return make(Opcode::PopCount, w, {a});
}

OpId Builder::trunc(OpId a, std::uint16_t width) {
  HCP_CHECK(width <= fn_.op(a).bitwidth);
  return makeWithBits(Opcode::Trunc, width, {Operand{a, width}});
}

OpId Builder::zext(OpId a, std::uint16_t width) {
  HCP_CHECK(width >= fn_.op(a).bitwidth);
  return make(Opcode::ZExt, width, {a});
}

OpId Builder::sext(OpId a, std::uint16_t width) {
  HCP_CHECK(width >= fn_.op(a).bitwidth);
  return make(Opcode::SExt, width, {a});
}

OpId Builder::concat(OpId hi, OpId lo) {
  const auto w = static_cast<std::uint16_t>(fn_.op(hi).bitwidth +
                                            fn_.op(lo).bitwidth);
  return make(Opcode::Concat, w, {hi, lo});
}

OpId Builder::extract(OpId a, std::uint16_t offset, std::uint16_t width) {
  HCP_CHECK(offset + width <= fn_.op(a).bitwidth);
  return makeWithBits(Opcode::Extract, width, {Operand{a, width}});
}

OpId Builder::muladd(OpId a, OpId b, OpId c) {
  const std::uint16_t w = static_cast<std::uint16_t>(std::min<int>(
      64, std::max<int>(fn_.op(a).bitwidth + fn_.op(b).bitwidth,
                        fn_.op(c).bitwidth) + 1));
  return make(Opcode::MulAdd, w, {a, b, c});
}

OpId Builder::mac(OpId acc, OpId a, OpId b) {
  return make(Opcode::Mac, fn_.op(acc).bitwidth, {acc, a, b});
}

OpId Builder::load(ArrayId arr, OpId index) {
  HCP_CHECK(arr < fn_.numArrays());
  Op op;
  op.opcode = Opcode::Load;
  op.bitwidth = fn_.array(arr).bitwidth;
  op.array = arr;
  op.operands = {fullUse(index)};
  op.loop = currentLoop();
  op.sourceLine = line_;
  return fn_.addOp(std::move(op));
}

OpId Builder::store(ArrayId arr, OpId index, OpId value) {
  HCP_CHECK(arr < fn_.numArrays());
  Op op;
  op.opcode = Opcode::Store;
  op.bitwidth = 0;
  op.array = arr;
  op.operands = {fullUse(index),
                 Operand{value, std::min(fn_.op(value).bitwidth,
                                         fn_.array(arr).bitwidth)}};
  op.loop = currentLoop();
  op.sourceLine = line_;
  return fn_.addOp(std::move(op));
}

OpId Builder::writePort(PortId port, OpId value) {
  HCP_CHECK(port < fn_.numPorts());
  HCP_CHECK(fn_.portInfo(port).direction == PortDirection::Out);
  Op op;
  op.opcode = Opcode::WritePort;
  op.bitwidth = 0;
  op.port = port;
  op.operands = {Operand{value, std::min(fn_.op(value).bitwidth,
                                         fn_.portInfo(port).bitwidth)}};
  op.loop = currentLoop();
  op.sourceLine = line_;
  return fn_.addOp(std::move(op));
}

OpId Builder::ret() {
  Op op;
  op.opcode = Opcode::Ret;
  op.bitwidth = 0;
  op.loop = currentLoop();
  op.sourceLine = line_;
  return fn_.addOp(std::move(op));
}

OpId Builder::call(const std::string& callee, std::vector<OpId> args,
                   std::uint16_t resultWidth) {
  OpId id = make(Opcode::Call, resultWidth, std::move(args), callee);
  return id;
}

}  // namespace hcp::ir
