// Front-end optimization passes. The paper operates on the IR *after* the
// HLS front-end compiler has run code optimizations such as bitwidth
// reduction, because those directly shape the generated RTL (§III). These
// passes model that stage: constant folding, dead-code elimination and
// demand-driven bitwidth reduction.
#pragma once

#include <cstdint>

#include "ir/function.hpp"

namespace hcp::ir {

struct PassStats {
  std::size_t opsFolded = 0;    ///< ops turned into constants
  std::size_t opsRemoved = 0;   ///< ops deleted by DCE
  std::uint64_t bitsSaved = 0;  ///< total result-width reduction
};

/// Folds integer ops whose operands are all constants into Const ops.
PassStats constantFold(Function& fn);

/// Removes ops that have no users and no side effects. Rebuilds the op list
/// (ids are compacted); loop/array/port tables are preserved.
PassStats deadCodeElim(Function& fn);

/// Demand-driven width reduction: narrows producers whose consumers use
/// fewer bits, restricted to opcodes where low bits are independent of the
/// dropped high bits (add/sub/mul/bitwise/select/...). Also tightens Const
/// widths to the bits their value needs. Runs to a fixpoint.
PassStats bitwidthReduce(Function& fn);

/// constantFold + bitwidthReduce + deadCodeElim, in the order the HLS
/// front-end applies them. Returns accumulated stats.
PassStats runFrontendPasses(Function& fn);

}  // namespace hcp::ir
