// IR function: a list of operations in def-before-use order, organized into
// (possibly nested) loop regions, plus arrays (on-chip memories) and I/O
// ports. This mirrors the information the paper consumes from the Vivado HLS
// front-end IR: operations with bitwidths, dependency edges carrying wire
// counts, loop structure (for unrolling provenance / marginal-sample
// filtering) and source-line provenance for mapping congestion back to code.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "ir/opcode.hpp"
#include "support/error.hpp"

namespace hcp::ir {

using OpId = std::uint32_t;
using LoopId = std::uint32_t;
using ArrayId = std::uint32_t;
using PortId = std::uint32_t;

inline constexpr OpId kInvalidOp = std::numeric_limits<OpId>::max();
inline constexpr LoopId kRootRegion = 0;  // function body, not a real loop
inline constexpr std::uint32_t kInvalidIndex =
    std::numeric_limits<std::uint32_t>::max();

/// A use of another op's result. `bitsUsed` is the number of wires this
/// connection actually carries — the paper's dependency-graph edge weight
/// (a consumer may take only 8 of a producer's 32 bits).
struct Operand {
  OpId producer = kInvalidOp;
  std::uint16_t bitsUsed = 0;
};

/// One IR operation.
struct Op {
  Opcode opcode = Opcode::Passthrough;
  std::uint16_t bitwidth = 0;  ///< result width in bits (0 for void ops)
  LoopId loop = kRootRegion;   ///< innermost enclosing loop region
  std::int32_t sourceLine = 0; ///< provenance into the (virtual) source file
  std::vector<Operand> operands;

  // Opcode-specific payloads (kInvalidIndex when unused).
  std::int64_t constValue = 0;             ///< Const
  ArrayId array = kInvalidIndex;           ///< Load / Store / Alloca
  PortId port = kInvalidIndex;             ///< ReadPort / WritePort
  std::uint32_t callee = kInvalidIndex;    ///< Call: function index in Module

  /// Unroll provenance: the pre-unroll op this one was replicated from, and
  /// the replica index. Ops that were never replicated point at themselves
  /// with replica 0. Used by the marginal-sample filter (paper §III-C1).
  OpId originOp = kInvalidOp;
  std::uint32_t replicaIndex = 0;

  std::string name;  ///< optional debug name; RTL cells derive names from it
};

/// A loop region. Loops form a forest rooted at kRootRegion; `parent` of a
/// top-level loop is kRootRegion. Ops store their innermost loop id.
struct LoopInfo {
  std::string name;
  LoopId parent = kRootRegion;
  std::uint64_t tripCount = 1;
  std::uint32_t unrollFactor = 1;  ///< directive state (applied by transforms)
  bool pipelined = false;
  std::uint32_t initiationInterval = 1;
  std::int32_t sourceLine = 0;
};

/// An on-chip array (BRAM/LUTRAM memory). `banks` reflects array partitioning
/// (complete partitioning → banks == words, registers instead of BRAM).
struct ArrayInfo {
  std::string name;
  std::uint64_t words = 0;
  std::uint16_t bitwidth = 0;
  std::uint32_t banks = 1;
  std::int32_t sourceLine = 0;
};

enum class PortDirection : std::uint8_t { In, Out };

/// A function I/O port. The paper adds "port" nodes to the dependency graph
/// so operators sharing an I/O connection are linked.
struct PortInfo {
  std::string name;
  PortDirection direction = PortDirection::In;
  std::uint16_t bitwidth = 0;
};

/// An IR function.
class Function {
 public:
  explicit Function(std::string name) : name_(std::move(name)) {
    // Region 0 is the implicit function body.
    loops_.push_back(LoopInfo{.name = "<body>", .parent = kRootRegion,
                              .tripCount = 1});
  }

  const std::string& name() const { return name_; }

  // --- ops -----------------------------------------------------------------
  OpId addOp(Op op) {
    ops_.push_back(std::move(op));
    const OpId id = static_cast<OpId>(ops_.size() - 1);
    if (ops_.back().originOp == kInvalidOp) ops_.back().originOp = id;
    return id;
  }
  const Op& op(OpId id) const {
    HCP_CHECK_MSG(id < ops_.size(), "bad OpId " << id << " in " << name_);
    return ops_[id];
  }
  Op& op(OpId id) {
    HCP_CHECK_MSG(id < ops_.size(), "bad OpId " << id << " in " << name_);
    return ops_[id];
  }
  std::size_t numOps() const { return ops_.size(); }
  const std::vector<Op>& ops() const { return ops_; }
  std::vector<Op>& ops() { return ops_; }

  // --- loops ---------------------------------------------------------------
  LoopId addLoop(LoopInfo info) {
    loops_.push_back(std::move(info));
    return static_cast<LoopId>(loops_.size() - 1);
  }
  const LoopInfo& loop(LoopId id) const {
    HCP_CHECK(id < loops_.size());
    return loops_[id];
  }
  LoopInfo& loop(LoopId id) {
    HCP_CHECK(id < loops_.size());
    return loops_[id];
  }
  std::size_t numLoops() const { return loops_.size(); }

  // --- arrays --------------------------------------------------------------
  ArrayId addArray(ArrayInfo info) {
    arrays_.push_back(std::move(info));
    return static_cast<ArrayId>(arrays_.size() - 1);
  }
  const ArrayInfo& array(ArrayId id) const {
    HCP_CHECK(id < arrays_.size());
    return arrays_[id];
  }
  ArrayInfo& array(ArrayId id) {
    HCP_CHECK(id < arrays_.size());
    return arrays_[id];
  }
  std::size_t numArrays() const { return arrays_.size(); }

  // --- ports ---------------------------------------------------------------
  PortId addPort(PortInfo info) {
    ports_.push_back(std::move(info));
    return static_cast<PortId>(ports_.size() - 1);
  }
  const PortInfo& portInfo(PortId id) const {
    HCP_CHECK(id < ports_.size());
    return ports_[id];
  }
  std::size_t numPorts() const { return ports_.size(); }

  /// True if the op is (transitively) inside loop `l`.
  bool inLoop(OpId opId, LoopId l) const;

  /// Total trip count product of all loops enclosing `opId` (how many times
  /// the op executes per function invocation).
  std::uint64_t iterationProduct(OpId opId) const;

 private:
  std::string name_;
  std::vector<Op> ops_;
  std::vector<LoopInfo> loops_;
  std::vector<ArrayInfo> arrays_;
  std::vector<PortInfo> ports_;
};

}  // namespace hcp::ir
