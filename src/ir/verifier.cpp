#include "ir/verifier.hpp"

#include <sstream>

namespace hcp::ir {

namespace {
void check(std::vector<std::string>& out, bool ok, const std::string& msg) {
  if (!ok) out.push_back(msg);
}

std::string opRef(const Function& fn, OpId id) {
  std::ostringstream os;
  os << fn.name() << ":%" << id << "(" << opcodeName(fn.op(id).opcode) << ")";
  return os.str();
}
}  // namespace

std::vector<std::string> verify(const Function& fn) {
  std::vector<std::string> out;

  // Loop forest.
  for (LoopId l = 1; l < fn.numLoops(); ++l) {
    const LoopInfo& info = fn.loop(l);
    check(out, info.parent < l,
          "loop " + info.name + ": parent must precede child");
    check(out, info.tripCount >= 1, "loop " + info.name + ": tripCount < 1");
    check(out, info.initiationInterval >= 1,
          "loop " + info.name + ": II < 1");
  }

  bool sawRet = false;
  for (OpId id = 0; id < fn.numOps(); ++id) {
    const Op& op = fn.op(id);
    const std::string ref = opRef(fn, id);

    check(out, op.loop < fn.numLoops(), ref + ": bad loop id");

    for (const Operand& use : op.operands) {
      if (use.producer >= fn.numOps()) {
        out.push_back(ref + ": operand out of range");
        continue;
      }
      if (op.opcode != Opcode::Phi) {
        check(out, use.producer < id, ref + ": use before def");
      }
      const Op& prod = fn.op(use.producer);
      check(out, use.bitsUsed > 0, ref + ": zero-width operand");
      check(out, use.bitsUsed <= prod.bitwidth,
            ref + ": operand uses more bits than producer has");
      check(out, prod.bitwidth > 0,
            ref + ": operand reads a void-valued op");
    }

    // Width discipline.
    const bool isVoid = op.opcode == Opcode::Store ||
                        op.opcode == Opcode::WritePort ||
                        op.opcode == Opcode::Ret || op.opcode == Opcode::Br ||
                        op.opcode == Opcode::Switch;
    if (isVoid) {
      check(out, op.bitwidth == 0, ref + ": void op with nonzero width");
    } else {
      check(out, op.bitwidth > 0, ref + ": value op with zero width");
      check(out, op.bitwidth <= 1024, ref + ": width > 1024");
    }

    // Payloads.
    switch (op.opcode) {
      case Opcode::Load:
        check(out, op.array < fn.numArrays(), ref + ": bad array");
        check(out, op.operands.size() == 1, ref + ": load needs 1 operand");
        break;
      case Opcode::Store:
        check(out, op.array < fn.numArrays(), ref + ": bad array");
        check(out, op.operands.size() == 2, ref + ": store needs 2 operands");
        break;
      case Opcode::ReadPort:
        check(out, op.port < fn.numPorts(), ref + ": bad port");
        if (op.port < fn.numPorts())
          check(out,
                fn.portInfo(op.port).direction == PortDirection::In,
                ref + ": reads an output port");
        break;
      case Opcode::WritePort:
        check(out, op.port < fn.numPorts(), ref + ": bad port");
        if (op.port < fn.numPorts())
          check(out,
                fn.portInfo(op.port).direction == PortDirection::Out,
                ref + ": writes an input port");
        break;
      case Opcode::Const:
        check(out, op.operands.empty(), ref + ": const with operands");
        break;
      case Opcode::Call:
        check(out, !op.name.empty(), ref + ": call without callee name");
        break;
      case Opcode::Ret:
        sawRet = true;
        break;
      default:
        break;
    }

    check(out, op.originOp < fn.numOps() || op.originOp == id,
          ref + ": bad unroll origin");
  }

  check(out, sawRet, fn.name() + ": missing ret");
  return out;
}

std::vector<std::string> verify(const Module& mod) {
  std::vector<std::string> out;
  check(out, mod.hasTop(), mod.name() + ": no top function");
  for (std::uint32_t f = 0; f < mod.numFunctions(); ++f) {
    auto fnErrors = verify(mod.function(f));
    out.insert(out.end(), fnErrors.begin(), fnErrors.end());
    for (OpId id = 0; id < mod.function(f).numOps(); ++id) {
      const Op& op = mod.function(f).op(id);
      if (op.opcode == Opcode::Call) {
        check(out, mod.findFunction(op.name) != kInvalidIndex,
              mod.function(f).name() + ": call to unknown " + op.name);
      }
    }
  }
  // Recursion check: DFS over the call graph.
  const std::size_t n = mod.numFunctions();
  std::vector<int> state(n, 0);  // 0=unvisited 1=in-stack 2=done
  std::vector<std::vector<std::uint32_t>> callees(n);
  for (std::uint32_t f = 0; f < n; ++f) {
    for (OpId id = 0; id < mod.function(f).numOps(); ++id) {
      const Op& op = mod.function(f).op(id);
      if (op.opcode == Opcode::Call) {
        auto idx = mod.findFunction(op.name);
        if (idx != kInvalidIndex) callees[f].push_back(idx);
      }
    }
  }
  // Iterative DFS to avoid deep recursion on long call chains.
  for (std::uint32_t root = 0; root < n; ++root) {
    if (state[root] != 0) continue;
    std::vector<std::pair<std::uint32_t, std::size_t>> stack{{root, 0}};
    state[root] = 1;
    while (!stack.empty()) {
      auto& [f, next] = stack.back();
      if (next < callees[f].size()) {
        std::uint32_t c = callees[f][next++];
        if (state[c] == 1) {
          out.push_back("recursive call cycle through " +
                        mod.function(c).name());
        } else if (state[c] == 0) {
          state[c] = 1;
          stack.emplace_back(c, 0);
        }
      } else {
        state[f] = 2;
        stack.pop_back();
      }
    }
  }
  return out;
}

void verifyOrThrow(const Function& fn) {
  auto errors = verify(fn);
  HCP_CHECK_MSG(errors.empty(), errors.front()
                                    << (errors.size() > 1
                                            ? " (+" +
                                                  std::to_string(
                                                      errors.size() - 1) +
                                                  " more)"
                                            : ""));
}

void verifyOrThrow(const Module& mod) {
  auto errors = verify(mod);
  HCP_CHECK_MSG(errors.empty(), errors.front()
                                    << (errors.size() > 1
                                            ? " (+" +
                                                  std::to_string(
                                                      errors.size() - 1) +
                                                  " more)"
                                            : ""));
}

}  // namespace hcp::ir
