// IR module: a set of functions with a designated top. Calls reference
// functions by index; resolveCalls() links Call ops to their callees after
// all functions exist.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ir/function.hpp"

namespace hcp::ir {

class Module {
 public:
  explicit Module(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  /// Adds a function; name must be unique. Returns its index.
  std::uint32_t addFunction(std::unique_ptr<Function> fn);

  Function& function(std::uint32_t idx) {
    HCP_CHECK(idx < functions_.size());
    return *functions_[idx];
  }
  const Function& function(std::uint32_t idx) const {
    HCP_CHECK(idx < functions_.size());
    return *functions_[idx];
  }
  std::size_t numFunctions() const { return functions_.size(); }

  /// Index of a function by name, or kInvalidIndex.
  std::uint32_t findFunction(const std::string& name) const;

  void setTop(const std::string& name);
  std::uint32_t topIndex() const { return top_; }
  Function& top() { return function(top_); }
  const Function& top() const { return function(top_); }
  bool hasTop() const { return top_ != kInvalidIndex; }

 private:
  std::string name_;
  std::vector<std::unique_ptr<Function>> functions_;
  std::map<std::string, std::uint32_t> byName_;
  std::uint32_t top_ = kInvalidIndex;
};

}  // namespace hcp::ir
