// Text serialization of IR containers (flow-cache format).
//
// Unlike ir/printer.hpp — a human-facing dump that omits payload fields the
// reader can infer — this format is *complete*: every field of every Op,
// LoopInfo, ArrayInfo and PortInfo round-trips exactly, so a deserialized
// module is indistinguishable from the original to every downstream stage
// (scheduling replay, feature extraction, provenance lookups). Doubles use
// 17 significant digits; save -> load -> save is byte-identical.
#pragma once

#include <istream>
#include <memory>
#include <ostream>

#include "ir/module.hpp"

namespace hcp::ir {

void writeModule(std::ostream& os, const Module& mod);

/// Reads a module written by writeModule. Throws hcp::Error on malformed or
/// truncated input. Does not require the stream to end afterwards (modules
/// embed into larger documents).
std::unique_ptr<Module> readModule(std::istream& is);

}  // namespace hcp::ir
