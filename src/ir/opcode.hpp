// Opcode set of the HLS intermediate representation.
//
// The paper extracts an "operator type" feature category: a one-hot encoding
// of the op kind plus, for each kind, the count of that kind among one-hop
// neighbours (Table II). The registry therefore needs a fixed, enumerable
// opcode universe; ours has exactly 53 kinds (asserted in tests), chosen to
// cover the LLVM-like IR Vivado HLS derives its IR from plus the HLS-level
// pseudo-ops (ports, muxes) the paper's dependency graph adds.
#pragma once

#include <cstdint>
#include <string_view>

namespace hcp::ir {

enum class Opcode : std::uint8_t {
  // Integer arithmetic.
  Add, Sub, Mul, Div, Rem, Neg,
  // Fixed/floating arithmetic (mapped to DSP-heavy operators).
  FAdd, FSub, FMul, FDiv, FSqrt,
  // Bitwise logic and shifts.
  And, Or, Xor, Not, Shl, LShr, AShr,
  // Comparisons.
  ICmpEq, ICmpNe, ICmpLt, ICmpLe, ICmpGt, ICmpGe, FCmp,
  // Selection.
  Select, Mux,
  // Memory.
  Load, Store, Alloca,
  // Width casts.
  Trunc, ZExt, SExt, BitCast,
  // Control / structure.
  Phi, Call, Ret, Br, Switch,
  // Bit manipulation.
  Concat, Extract, PopCount, AbsDiff,
  // Fused DSP patterns.
  MulAdd, Mac, Dot,
  // Constants and I/O.
  Const, ReadPort, WritePort, Port,
  // Misc.
  Min, Max, Passthrough,
};

/// Number of distinct opcodes; the feature registry depends on this value
/// (operator-type category = 2*kNumOpcodes + 1 features).
inline constexpr std::size_t kNumOpcodes = 53;

/// Stable lower-case mnemonic, e.g. "add", "fmul", "readport".
std::string_view opcodeName(Opcode op);

/// True for ops whose removal changes observable behaviour (stores, port
/// writes, returns, calls, branches); DCE must keep them.
bool hasSideEffects(Opcode op);

/// True for ops that become datapath functional units in RTL (arith, logic,
/// cmp, select, fused DSP). False for structural ops (const, phi, br, port).
bool isFunctionalUnit(Opcode op);

/// True for ops eligible for resource sharing across control steps
/// (multi-cycle / expensive units: mul, div, fp ops, fused DSP).
bool isSharable(Opcode op);

/// True for commutative binary ops.
bool isCommutative(Opcode op);

/// True for memory ops referencing an ArrayInfo.
bool isMemoryOp(Opcode op);

/// Opcode from index (bounds-checked) — used by the feature registry to
/// enumerate the one-hot encoding deterministically.
Opcode opcodeFromIndex(std::size_t idx);

}  // namespace hcp::ir
