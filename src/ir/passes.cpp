#include "ir/passes.hpp"

#include <algorithm>
#include <optional>
#include <vector>

namespace hcp::ir {

namespace {

/// Two's-complement truncation of `v` to `width` bits, sign-extended back
/// into int64 so folded constants stay canonical.
std::int64_t truncToWidth(std::int64_t v, std::uint16_t width) {
  if (width >= 64) return v;
  const std::uint64_t mask = (std::uint64_t{1} << width) - 1;
  std::uint64_t u = static_cast<std::uint64_t>(v) & mask;
  // Sign-extend.
  if (width > 0 && (u >> (width - 1)) & 1) u |= ~mask;
  return static_cast<std::int64_t>(u);
}

std::optional<std::int64_t> evalOp(const Function& fn, const Op& op) {
  auto cval = [&](std::size_t i) {
    return fn.op(op.operands[i].producer).constValue;
  };
  auto allConst = [&] {
    return std::all_of(op.operands.begin(), op.operands.end(),
                       [&](const Operand& o) {
                         return fn.op(o.producer).opcode == Opcode::Const;
                       });
  };
  if (op.operands.empty() || !allConst()) return std::nullopt;

  switch (op.opcode) {
    case Opcode::Add: return cval(0) + cval(1);
    case Opcode::Sub: return cval(0) - cval(1);
    case Opcode::Mul: return cval(0) * cval(1);
    case Opcode::Div:
      if (cval(1) == 0) return std::nullopt;
      return cval(0) / cval(1);
    case Opcode::Rem:
      if (cval(1) == 0) return std::nullopt;
      return cval(0) % cval(1);
    case Opcode::Neg: return -cval(0);
    case Opcode::And: return cval(0) & cval(1);
    case Opcode::Or: return cval(0) | cval(1);
    case Opcode::Xor: return cval(0) ^ cval(1);
    case Opcode::Not: return ~cval(0);
    case Opcode::Shl:
      if (cval(1) < 0 || cval(1) >= 64) return std::nullopt;
      return static_cast<std::int64_t>(
          static_cast<std::uint64_t>(cval(0)) << cval(1));
    case Opcode::LShr:
      if (cval(1) < 0 || cval(1) >= 64) return std::nullopt;
      return static_cast<std::int64_t>(
          static_cast<std::uint64_t>(cval(0)) >> cval(1));
    case Opcode::AShr:
      if (cval(1) < 0 || cval(1) >= 64) return std::nullopt;
      return cval(0) >> cval(1);
    case Opcode::ICmpEq: return cval(0) == cval(1) ? 1 : 0;
    case Opcode::ICmpNe: return cval(0) != cval(1) ? 1 : 0;
    case Opcode::ICmpLt: return cval(0) < cval(1) ? 1 : 0;
    case Opcode::ICmpLe: return cval(0) <= cval(1) ? 1 : 0;
    case Opcode::ICmpGt: return cval(0) > cval(1) ? 1 : 0;
    case Opcode::ICmpGe: return cval(0) >= cval(1) ? 1 : 0;
    case Opcode::Min: return std::min(cval(0), cval(1));
    case Opcode::Max: return std::max(cval(0), cval(1));
    case Opcode::Select: return cval(0) != 0 ? cval(1) : cval(2);
    case Opcode::ZExt:
    case Opcode::SExt:
    case Opcode::Trunc:
    case Opcode::Passthrough:
      return cval(0);
    default:
      return std::nullopt;
  }
}

/// True when keeping only the low result bits of `op` needs only the low
/// operand bits (two's-complement locality), making demand narrowing sound.
bool lowBitsLocal(Opcode op) {
  switch (op) {
    case Opcode::Add:
    case Opcode::Sub:
    case Opcode::Mul:
    case Opcode::Neg:
    case Opcode::And:
    case Opcode::Or:
    case Opcode::Xor:
    case Opcode::Not:
    case Opcode::Select:
    case Opcode::Mux:
    case Opcode::Passthrough:
    case Opcode::Const:
    case Opcode::ZExt:
    case Opcode::SExt:
    case Opcode::Trunc:
      return true;
    default:
      return false;
  }
}

std::uint16_t bitsForValue(std::int64_t v) {
  // Minimum two's-complement width representing v.
  if (v == 0 || v == -1) return 1;
  std::uint64_t u = v < 0 ? ~static_cast<std::uint64_t>(v)
                          : static_cast<std::uint64_t>(v);
  std::uint16_t bits = 0;
  while (u) {
    ++bits;
    u >>= 1;
  }
  return static_cast<std::uint16_t>(bits + 1);  // +1 sign bit
}

}  // namespace

PassStats constantFold(Function& fn) {
  PassStats stats;
  for (OpId id = 0; id < fn.numOps(); ++id) {
    Op& op = fn.op(id);
    if (op.opcode == Opcode::Const || hasSideEffects(op.opcode)) continue;
    if (auto v = evalOp(fn, op)) {
      op.opcode = Opcode::Const;
      op.constValue = truncToWidth(*v, op.bitwidth);
      op.operands.clear();
      ++stats.opsFolded;
    }
  }
  return stats;
}

PassStats deadCodeElim(Function& fn) {
  PassStats stats;
  const std::size_t n = fn.numOps();
  std::vector<bool> live(n, false);
  // Seed with side-effecting ops, then sweep backwards (operands precede
  // users, so one reverse pass reaches a fixpoint).
  for (OpId id = 0; id < n; ++id)
    if (hasSideEffects(fn.op(id).opcode)) live[id] = true;
  for (OpId id = static_cast<OpId>(n); id-- > 0;) {
    if (!live[id]) continue;
    for (const Operand& use : fn.op(id).operands) live[use.producer] = true;
  }

  std::vector<OpId> remap(n, kInvalidOp);
  std::vector<Op> kept;
  kept.reserve(n);
  for (OpId id = 0; id < n; ++id) {
    if (!live[id]) {
      ++stats.opsRemoved;
      continue;
    }
    remap[id] = static_cast<OpId>(kept.size());
    kept.push_back(std::move(fn.op(id)));
  }
  for (Op& op : kept) {
    for (Operand& use : op.operands) use.producer = remap[use.producer];
    // An op's unroll origin may itself have been removed; fall back to self.
    op.originOp = (op.originOp < n && remap[op.originOp] != kInvalidOp)
                      ? remap[op.originOp]
                      : kInvalidOp;
  }
  fn.ops() = std::move(kept);
  for (OpId id = 0; id < fn.numOps(); ++id)
    if (fn.op(id).originOp == kInvalidOp) fn.op(id).originOp = id;
  return stats;
}

PassStats bitwidthReduce(Function& fn) {
  PassStats stats;
  bool changed = true;
  int iterations = 0;
  while (changed && iterations++ < 16) {
    changed = false;
    const std::size_t n = fn.numOps();
    // Demand: max bits any consumer actually uses of each producer.
    std::vector<std::uint16_t> demand(n, 0);
    std::vector<bool> demandedByOpaque(n, false);
    for (OpId id = 0; id < n; ++id) {
      const Op& op = fn.op(id);
      const bool opaque = !lowBitsLocal(op.opcode);
      for (const Operand& use : op.operands) {
        demand[use.producer] = std::max(demand[use.producer], use.bitsUsed);
        if (opaque) demandedByOpaque[use.producer] = true;
      }
    }
    for (OpId id = 0; id < n; ++id) {
      Op& op = fn.op(id);
      if (op.bitwidth == 0) continue;
      std::uint16_t target = op.bitwidth;
      // Value-based tightening for constants.
      if (op.opcode == Opcode::Const)
        target = std::min(target, bitsForValue(op.constValue));
      // Demand-based tightening: only when every consumer path is sound and
      // the op itself produces locality-preserving low bits.
      if (demand[id] > 0 && !demandedByOpaque[id] &&
          lowBitsLocal(op.opcode))
        target = std::min(target, std::max<std::uint16_t>(demand[id], 1));
      if (target < op.bitwidth) {
        stats.bitsSaved += op.bitwidth - target;
        op.bitwidth = target;
        changed = true;
      }
    }
    // Clamp operand uses to (possibly reduced) producer widths.
    for (OpId id = 0; id < n; ++id) {
      for (Operand& use : fn.op(id).operands) {
        const std::uint16_t w = fn.op(use.producer).bitwidth;
        if (use.bitsUsed > w) {
          use.bitsUsed = w;
          changed = true;
        }
      }
    }
  }
  return stats;
}

PassStats runFrontendPasses(Function& fn) {
  PassStats total;
  const PassStats f = constantFold(fn);
  const PassStats b = bitwidthReduce(fn);
  const PassStats d = deadCodeElim(fn);
  total.opsFolded = f.opsFolded;
  total.bitsSaved = b.bitsSaved;
  total.opsRemoved = d.opsRemoved;
  return total;
}

}  // namespace hcp::ir
