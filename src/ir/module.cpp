#include "ir/module.hpp"

namespace hcp::ir {

std::uint32_t Module::addFunction(std::unique_ptr<Function> fn) {
  HCP_CHECK(fn != nullptr);
  HCP_CHECK_MSG(byName_.find(fn->name()) == byName_.end(),
                "duplicate function " << fn->name());
  const auto idx = static_cast<std::uint32_t>(functions_.size());
  byName_.emplace(fn->name(), idx);
  functions_.push_back(std::move(fn));
  return idx;
}

std::uint32_t Module::findFunction(const std::string& name) const {
  auto it = byName_.find(name);
  return it == byName_.end() ? kInvalidIndex : it->second;
}

void Module::setTop(const std::string& name) {
  const auto idx = findFunction(name);
  HCP_CHECK_MSG(idx != kInvalidIndex, "no such function " << name);
  top_ = idx;
}

}  // namespace hcp::ir
