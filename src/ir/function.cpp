#include "ir/function.hpp"

namespace hcp::ir {

bool Function::inLoop(OpId opId, LoopId l) const {
  LoopId cur = op(opId).loop;
  while (true) {
    if (cur == l) return true;
    if (cur == kRootRegion) return l == kRootRegion;
    cur = loop(cur).parent;
  }
}

std::uint64_t Function::iterationProduct(OpId opId) const {
  std::uint64_t product = 1;
  LoopId cur = op(opId).loop;
  while (cur != kRootRegion) {
    product *= loop(cur).tripCount;
    cur = loop(cur).parent;
  }
  return product;
}

}  // namespace hcp::ir
