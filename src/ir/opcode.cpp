#include "ir/opcode.hpp"

#include <array>

#include "support/error.hpp"

namespace hcp::ir {

namespace {
constexpr std::array<std::string_view, kNumOpcodes> kNames = {
    "add",      "sub",      "mul",      "div",      "rem",      "neg",
    "fadd",     "fsub",     "fmul",     "fdiv",     "fsqrt",
    "and",      "or",       "xor",      "not",      "shl",      "lshr",
    "ashr",
    "icmp_eq",  "icmp_ne",  "icmp_lt",  "icmp_le",  "icmp_gt",  "icmp_ge",
    "fcmp",
    "select",   "mux",
    "load",     "store",    "alloca",
    "trunc",    "zext",     "sext",     "bitcast",
    "phi",      "call",     "ret",      "br",       "switch",
    "concat",   "extract",  "popcount", "absdiff",
    "muladd",   "mac",      "dot",
    "const",    "readport", "writeport", "port",
    "min",      "max",      "passthrough",
};
}  // namespace

std::string_view opcodeName(Opcode op) {
  const auto idx = static_cast<std::size_t>(op);
  HCP_CHECK(idx < kNumOpcodes);
  return kNames[idx];
}

bool hasSideEffects(Opcode op) {
  switch (op) {
    case Opcode::Store:
    case Opcode::WritePort:
    case Opcode::Ret:
    case Opcode::Br:
    case Opcode::Switch:
    case Opcode::Call:
      return true;
    default:
      return false;
  }
}

bool isFunctionalUnit(Opcode op) {
  switch (op) {
    case Opcode::Const:
    case Opcode::Phi:
    case Opcode::Br:
    case Opcode::Switch:
    case Opcode::Ret:
    case Opcode::Port:
    case Opcode::ReadPort:
    case Opcode::WritePort:
    case Opcode::Alloca:
    case Opcode::BitCast:
    case Opcode::Passthrough:
    // Width casts and bit extraction are pure wiring on an FPGA — no LUTs,
    // no cell; their consumers connect straight to the producer.
    case Opcode::Trunc:
    case Opcode::ZExt:
    case Opcode::SExt:
    case Opcode::Extract:
    // A call's hardware is the callee module instance, not an operator.
    case Opcode::Call:
      return false;
    default:
      return true;
  }
}

bool isSharable(Opcode op) {
  switch (op) {
    case Opcode::Mul:
    case Opcode::Div:
    case Opcode::Rem:
    case Opcode::FAdd:
    case Opcode::FSub:
    case Opcode::FMul:
    case Opcode::FDiv:
    case Opcode::FSqrt:
    case Opcode::MulAdd:
    case Opcode::Mac:
    case Opcode::Dot:
      return true;
    default:
      return false;
  }
}

bool isCommutative(Opcode op) {
  switch (op) {
    case Opcode::Add:
    case Opcode::Mul:
    case Opcode::And:
    case Opcode::Or:
    case Opcode::Xor:
    case Opcode::FAdd:
    case Opcode::FMul:
    case Opcode::ICmpEq:
    case Opcode::ICmpNe:
    case Opcode::Min:
    case Opcode::Max:
      return true;
    default:
      return false;
  }
}

bool isMemoryOp(Opcode op) {
  return op == Opcode::Load || op == Opcode::Store || op == Opcode::Alloca;
}

Opcode opcodeFromIndex(std::size_t idx) {
  HCP_CHECK(idx < kNumOpcodes);
  return static_cast<Opcode>(idx);
}

}  // namespace hcp::ir
