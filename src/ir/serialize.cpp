#include "ir/serialize.hpp"

#include "ir/graph.hpp"
#include "support/textio.hpp"

namespace hcp::ir {

namespace txt = support::txt;

namespace {

void writeOp(std::ostream& os, const Op& op) {
  os << static_cast<unsigned>(op.opcode) << ' ' << op.bitwidth << ' '
     << op.loop << ' ' << op.sourceLine << ' ' << op.operands.size();
  for (const Operand& o : op.operands)
    os << ' ' << o.producer << ' ' << o.bitsUsed;
  os << ' ' << op.constValue << ' ' << op.array << ' ' << op.port << ' '
     << op.callee << ' ' << op.originOp << ' ' << op.replicaIndex << ' ';
  txt::writeStr(os, op.name);
  os << '\n';
}

Op readOp(std::istream& is) {
  Op op;
  const auto opcode = txt::read<unsigned>(is, "op opcode");
  HCP_CHECK_MSG(opcode < kNumOpcodes, "op opcode out of range: " << opcode);
  op.opcode = static_cast<Opcode>(opcode);
  op.bitwidth = txt::read<std::uint16_t>(is, "op bitwidth");
  op.loop = txt::read<LoopId>(is, "op loop");
  op.sourceLine = txt::read<std::int32_t>(is, "op sourceLine");
  const auto numOperands = txt::read<std::size_t>(is, "op operand count");
  op.operands.reserve(numOperands);
  for (std::size_t i = 0; i < numOperands; ++i) {
    Operand o;
    o.producer = txt::read<OpId>(is, "operand producer");
    o.bitsUsed = txt::read<std::uint16_t>(is, "operand bitsUsed");
    op.operands.push_back(o);
  }
  op.constValue = txt::read<std::int64_t>(is, "op constValue");
  op.array = txt::read<ArrayId>(is, "op array");
  op.port = txt::read<PortId>(is, "op port");
  op.callee = txt::read<std::uint32_t>(is, "op callee");
  op.originOp = txt::read<OpId>(is, "op originOp");
  op.replicaIndex = txt::read<std::uint32_t>(is, "op replicaIndex");
  op.name = txt::readStr(is, "op name");
  return op;
}

void writeFunction(std::ostream& os, const Function& fn) {
  os << "function ";
  txt::writeStr(os, fn.name());
  os << "\nloops " << fn.numLoops() << '\n';
  for (LoopId l = 0; l < fn.numLoops(); ++l) {
    const LoopInfo& info = fn.loop(l);
    txt::writeStr(os, info.name);
    os << ' ' << info.parent << ' ' << info.tripCount << ' '
       << info.unrollFactor << ' ';
    txt::writeBool(os, info.pipelined);
    os << ' ' << info.initiationInterval << ' ' << info.sourceLine << '\n';
  }
  os << "arrays " << fn.numArrays() << '\n';
  for (ArrayId a = 0; a < fn.numArrays(); ++a) {
    const ArrayInfo& info = fn.array(a);
    txt::writeStr(os, info.name);
    os << ' ' << info.words << ' ' << info.bitwidth << ' ' << info.banks
       << ' ' << info.sourceLine << '\n';
  }
  os << "ports " << fn.numPorts() << '\n';
  for (PortId p = 0; p < fn.numPorts(); ++p) {
    const PortInfo& info = fn.portInfo(p);
    txt::writeStr(os, info.name);
    os << ' ' << static_cast<unsigned>(info.direction) << ' '
       << info.bitwidth << '\n';
  }
  os << "ops " << fn.numOps() << '\n';
  for (const Op& op : fn.ops()) writeOp(os, op);
}

std::unique_ptr<Function> readFunction(std::istream& is) {
  txt::expect(is, "function");
  auto fn = std::make_unique<Function>(txt::readStr(is, "function name"));
  txt::expect(is, "loops");
  const auto numLoops = txt::read<std::size_t>(is, "loop count");
  HCP_CHECK_MSG(numLoops >= 1, "function must have the implicit body loop");
  for (LoopId l = 0; l < numLoops; ++l) {
    LoopInfo info;
    info.name = txt::readStr(is, "loop name");
    info.parent = txt::read<LoopId>(is, "loop parent");
    info.tripCount = txt::read<std::uint64_t>(is, "loop tripCount");
    info.unrollFactor = txt::read<std::uint32_t>(is, "loop unrollFactor");
    info.pipelined = txt::readBool(is, "loop pipelined");
    info.initiationInterval =
        txt::read<std::uint32_t>(is, "loop initiationInterval");
    info.sourceLine = txt::read<std::int32_t>(is, "loop sourceLine");
    // The Function constructor already created region 0 (the body);
    // overwrite it in place so the stored fields win exactly.
    if (l == 0)
      fn->loop(0) = std::move(info);
    else
      fn->addLoop(std::move(info));
  }
  txt::expect(is, "arrays");
  const auto numArrays = txt::read<std::size_t>(is, "array count");
  for (std::size_t a = 0; a < numArrays; ++a) {
    ArrayInfo info;
    info.name = txt::readStr(is, "array name");
    info.words = txt::read<std::uint64_t>(is, "array words");
    info.bitwidth = txt::read<std::uint16_t>(is, "array bitwidth");
    info.banks = txt::read<std::uint32_t>(is, "array banks");
    info.sourceLine = txt::read<std::int32_t>(is, "array sourceLine");
    fn->addArray(std::move(info));
  }
  txt::expect(is, "ports");
  const auto numPorts = txt::read<std::size_t>(is, "port count");
  for (std::size_t p = 0; p < numPorts; ++p) {
    PortInfo info;
    info.name = txt::readStr(is, "port name");
    const auto dir = txt::read<unsigned>(is, "port direction");
    HCP_CHECK_MSG(dir <= 1, "port direction out of range: " << dir);
    info.direction = static_cast<PortDirection>(dir);
    info.bitwidth = txt::read<std::uint16_t>(is, "port bitwidth");
    fn->addPort(std::move(info));
  }
  txt::expect(is, "ops");
  const auto numOps = txt::read<std::size_t>(is, "op count");
  // Bypass addOp (which rewrites an unset originOp) and assign the vector
  // directly, preserving every stored byte.
  std::vector<Op> ops;
  ops.reserve(numOps);
  for (std::size_t i = 0; i < numOps; ++i) ops.push_back(readOp(is));
  fn->ops() = std::move(ops);
  return fn;
}

}  // namespace

void writeModule(std::ostream& os, const Module& mod) {
  txt::preparePrecision(os);
  os << "module ";
  txt::writeStr(os, mod.name());
  os << "\ntop ";
  txt::writeStr(os, mod.hasTop() ? mod.top().name() : std::string());
  os << "\nfunctions " << mod.numFunctions() << '\n';
  for (std::uint32_t i = 0; i < mod.numFunctions(); ++i)
    writeFunction(os, mod.function(i));
}

std::unique_ptr<Module> readModule(std::istream& is) {
  txt::expect(is, "module");
  auto mod = std::make_unique<Module>(txt::readStr(is, "module name"));
  txt::expect(is, "top");
  const std::string top = txt::readStr(is, "top name");
  txt::expect(is, "functions");
  const auto numFunctions = txt::read<std::size_t>(is, "function count");
  for (std::size_t i = 0; i < numFunctions; ++i)
    mod->addFunction(readFunction(is));
  if (!top.empty()) mod->setTop(top);
  return mod;
}

// --- DependencyGraph (declared in ir/graph.hpp) -----------------------------

namespace {

void writeNeighbors(std::ostream& os,
                    const std::vector<std::vector<Neighbor>>& adj) {
  for (const auto& list : adj) {
    os << list.size();
    for (const Neighbor& n : list) os << ' ' << n.node << ' ' << n.wires;
    os << '\n';
  }
}

std::vector<std::vector<Neighbor>> readNeighbors(std::istream& is,
                                                 std::size_t numNodes) {
  std::vector<std::vector<Neighbor>> adj(numNodes);
  for (auto& list : adj) {
    const auto n = txt::read<std::size_t>(is, "neighbor count");
    list.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      Neighbor nb;
      nb.node = txt::read<NodeId>(is, "neighbor node");
      nb.wires = txt::read<double>(is, "neighbor wires");
      list.push_back(nb);
    }
  }
  return adj;
}

}  // namespace

void DependencyGraph::write(std::ostream& os) const {
  txt::preparePrecision(os);
  os << "graph " << nodes_.size() << '\n';
  for (const Node& n : nodes_) {
    os << static_cast<unsigned>(n.kind) << ' ' << n.op << ' ' << n.port
       << ' ';
    txt::writeBool(os, n.alive);
    os << ' ';
    txt::writeVec(os, n.members);
    os << '\n';
  }
  os << "preds\n";
  writeNeighbors(os, preds_);
  os << "succs\n";
  writeNeighbors(os, succs_);
  os << "opmap ";
  txt::writeVec(os, opToNode_);
  os << '\n';
}

DependencyGraph DependencyGraph::read(std::istream& is, const Function& fn) {
  DependencyGraph g;
  g.fn_ = &fn;
  txt::expect(is, "graph");
  const auto numNodes = txt::read<std::size_t>(is, "graph node count");
  g.nodes_.reserve(numNodes);
  for (std::size_t i = 0; i < numNodes; ++i) {
    Node n;
    const auto kind = txt::read<unsigned>(is, "node kind");
    HCP_CHECK_MSG(kind <= 2, "graph node kind out of range: " << kind);
    n.kind = static_cast<NodeKind>(kind);
    n.op = txt::read<OpId>(is, "node op");
    n.port = txt::read<PortId>(is, "node port");
    n.alive = txt::readBool(is, "node alive");
    n.members = txt::readVec<OpId>(is, "node members");
    g.nodes_.push_back(std::move(n));
  }
  txt::expect(is, "preds");
  g.preds_ = readNeighbors(is, numNodes);
  txt::expect(is, "succs");
  g.succs_ = readNeighbors(is, numNodes);
  txt::expect(is, "opmap");
  g.opToNode_ = txt::readVec<NodeId>(is, "opmap");
  HCP_CHECK_MSG(g.opToNode_.size() == fn.numOps(),
                "graph op map does not match its function ("
                    << g.opToNode_.size() << " vs " << fn.numOps()
                    << " ops)");
  return g;
}

}  // namespace hcp::ir
