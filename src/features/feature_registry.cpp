#include "features/feature_registry.hpp"

#include <algorithm>

#include "ir/opcode.hpp"
#include "support/error.hpp"

namespace hcp::features {

std::string_view categoryName(Category c) {
  switch (c) {
    case Category::Bitwidth: return "Bitwidth";
    case Category::Interconnection: return "Interconnection";
    case Category::Resource: return "Resource";
    case Category::Timing: return "Timing";
    case Category::ResourcePerDt: return "#Resource/dTcs";
    case Category::OperatorType: return "Operator Type";
    case Category::GlobalInfo: return "Global Information";
  }
  return "?";
}

namespace {
constexpr std::array<const char*, 4> kResTypes = {"lut", "ff", "dsp", "bram"};
}

const FeatureRegistry& FeatureRegistry::instance() {
  static const FeatureRegistry registry;
  return registry;
}

FeatureRegistry::FeatureRegistry() {
  auto add = [&](std::string name, Category c) {
    features_.push_back(FeatureInfo{std::move(name), c});
  };

  // --- bitwidth (1) --------------------------------------------------------
  add("bitwidth", Category::Bitwidth);

  // --- interconnection (9 x {1hop, 2hop} = 18) -----------------------------
  for (const char* scope : {"1hop", "2hop"}) {
    const std::string s = std::string(".") + scope;
    add("fan_in" + s, Category::Interconnection);
    add("fan_out" + s, Category::Interconnection);
    add("fan_sum" + s, Category::Interconnection);
    add("num_preds" + s, Category::Interconnection);
    add("num_succs" + s, Category::Interconnection);
    add("num_neighbors" + s, Category::Interconnection);
    add("max_wires" + s, Category::Interconnection);
    add("max_wires_pct_fan_in" + s, Category::Interconnection);
    add("max_wires_pct_fan_out" + s, Category::Interconnection);
  }

  // --- resource (4 types x (14 + 11) = 100) --------------------------------
  for (const char* t : kResTypes) {
    const std::string p = std::string("res.") + t + ".";
    // Self (3).
    add(p + "usage", Category::Resource);
    add(p + "util_device", Category::Resource);
    add(p + "util_function", Category::Resource);
    // One-hop neighbour totals (9).
    for (const char* m : {"usage", "util_device", "util_function"}) {
      add(p + std::string(m) + ".preds.1hop", Category::Resource);
      add(p + std::string(m) + ".succs.1hop", Category::Resource);
      add(p + std::string(m) + ".sum.1hop", Category::Resource);
    }
    // One-hop max + share (2).
    add(p + "max_neighbor.1hop", Category::Resource);
    add(p + "max_neighbor_pct.1hop", Category::Resource);
    // Two-hop totals (9) + max/share (2).
    for (const char* m : {"usage", "util_device", "util_function"}) {
      add(p + std::string(m) + ".preds.2hop", Category::Resource);
      add(p + std::string(m) + ".succs.2hop", Category::Resource);
      add(p + std::string(m) + ".sum.2hop", Category::Resource);
    }
    add(p + "max_neighbor.2hop", Category::Resource);
    add(p + "max_neighbor_pct.2hop", Category::Resource);
  }

  // --- timing (2) ----------------------------------------------------------
  add("delay_ns", Category::Timing);
  add("latency_cycles", Category::Timing);

  // --- #Resource/dTcs (4 types x (6 + 6) = 48) -----------------------------
  for (const char* t : kResTypes) {
    const std::string p = std::string("res_dt.") + t + ".";
    for (const char* scope : {"1hop", "2hop"}) {
      const std::string s = std::string(".") + scope;
      add(p + "usage.preds" + s, Category::ResourcePerDt);
      add(p + "usage.succs" + s, Category::ResourcePerDt);
      add(p + "util_device.preds" + s, Category::ResourcePerDt);
      add(p + "util_device.succs" + s, Category::ResourcePerDt);
      add(p + "util_function.preds" + s, Category::ResourcePerDt);
      add(p + "util_function.succs" + s, Category::ResourcePerDt);
    }
  }

  // --- operator type (53 one-hot + 53 neighbour counts + 1 = 107) ----------
  for (std::size_t i = 0; i < ir::kNumOpcodes; ++i)
    add("op.is." + std::string(ir::opcodeName(ir::opcodeFromIndex(i))),
        Category::OperatorType);
  for (std::size_t i = 0; i < ir::kNumOpcodes; ++i)
    add("op.nbr_count." +
            std::string(ir::opcodeName(ir::opcodeFromIndex(i))),
        Category::OperatorType);
  add("op.nbr_distinct_kinds", Category::OperatorType);

  // --- global information (26) ---------------------------------------------
  for (const char* t : kResTypes)
    add(std::string("global.ftop.") + t, Category::GlobalInfo);
  for (const char* t : kResTypes)
    add(std::string("global.fop.") + t, Category::GlobalInfo);
  for (const char* t : kResTypes)
    add(std::string("global.fop_pct_ftop.") + t, Category::GlobalInfo);
  for (const char* fn : {"ftop", "fop"}) {
    add(std::string("global.") + fn + ".target_clock_ns",
        Category::GlobalInfo);
    add(std::string("global.") + fn + ".estimated_clock_ns",
        Category::GlobalInfo);
    add(std::string("global.") + fn + ".clock_uncertainty_ns",
        Category::GlobalInfo);
  }
  add("global.mem.words", Category::GlobalInfo);
  add("global.mem.banks", Category::GlobalInfo);
  add("global.mem.bits", Category::GlobalInfo);
  add("global.mem.primitives", Category::GlobalInfo);
  add("global.mux.count", Category::GlobalInfo);
  add("global.mux.lut", Category::GlobalInfo);
  add("global.mux.total_inputs", Category::GlobalInfo);
  add("global.mux.avg_width", Category::GlobalInfo);

  HCP_CHECK_MSG(features_.size() == kNumFeatures,
                "feature registry has " << features_.size()
                                        << " features, expected "
                                        << kNumFeatures);
}

std::array<std::size_t, kNumCategories> FeatureRegistry::categoryCounts()
    const {
  std::array<std::size_t, kNumCategories> counts{};
  for (const FeatureInfo& f : features_)
    ++counts[static_cast<std::size_t>(f.category)];
  return counts;
}

std::size_t FeatureRegistry::indexOf(const std::string& name) const {
  auto it = std::find_if(features_.begin(), features_.end(),
                         [&](const FeatureInfo& f) { return f.name == name; });
  HCP_CHECK_MSG(it != features_.end(), "no feature named " << name);
  return static_cast<std::size_t>(it - features_.begin());
}

}  // namespace hcp::features
