// Per-tile grid features for congestion-*map* prediction (Painting-on-
// Placement / LHNN style, PAPERS.md): where extractor.hpp describes one IR
// operation, this module describes one device tile. The channels are
// everything a placement (no routing!) reveals about where wiring pressure
// will land:
//
//   pin_density    bit-weighted cluster pins scattered onto their tiles
//   net_crossings  number of placed nets whose bounding box covers the tile
//   rudy_v/rudy_h  RUDY-style probabilistic channel demand (net width
//                  smeared over its bounding box, split V/H by box aspect)
//   cap_v/cap_h    channel capacity (tracks), per tile — hard-column boosts
//                  included, so the model can learn demand *relative* to
//                  supply
//   region_dist    distance in tiles to the nearest placer-region boundary
//                  (PlacerConfig::regionSize grid) — congestion piles up at
//                  region seams where the spreading penalty stops helping
//
// Layout is structure-of-arrays: one flat row-major vector per channel, all
// of size width*height. The net-dependent channels are extracted in
// parallel over tile rows through the PR-1 pool; every row owns its output
// slice, so results are bit-identical at any thread count.
//
// Empty-map contract: a 0-tile geometry yields empty channel vectors; a
// packing with zero nets yields all-zero crossing/RUDY channels; both are
// valid inputs, not errors (exercised by tests/fuzz_pipeline_test.cpp).
#pragma once

#include <cstdint>
#include <vector>

#include "fpga/device.hpp"
#include "fpga/packer.hpp"
#include "fpga/placer.hpp"

namespace hcp::features {

struct GridFeatureConfig {
  /// Placer spreading-region edge length; region_dist is measured against
  /// this grid. 0 is treated as 1 (every tile is its own region, dist 0).
  std::uint32_t regionSize = 6;
};

/// The tile grid to extract over. Decoupled from fpga::Device (which
/// enforces a minimum 8x8 fabric) so degenerate grids — 1x1, even 0x0 — are
/// testable; forDevice() is the production path.
struct GridGeometry {
  std::uint32_t width = 0;
  std::uint32_t height = 0;
  double vTracks = 1.0;  ///< uniform channel capacity fallback
  double hTracks = 1.0;
  /// Optional per-tile capacities (row-major, width*height); empty = uniform.
  std::vector<double> vTracksAt;
  std::vector<double> hTracksAt;

  static GridGeometry forDevice(const fpga::Device& device);

  std::size_t numTiles() const {
    return static_cast<std::size_t>(width) * height;
  }
  double vCapAt(std::size_t tile) const {
    return vTracksAt.empty() ? vTracks : vTracksAt[tile];
  }
  double hCapAt(std::size_t tile) const {
    return hTracksAt.empty() ? hTracks : hTracksAt[tile];
  }
};

/// Structure-of-arrays per-tile feature channels (see file comment).
struct GridFeatures {
  static constexpr std::size_t kNumChannels = 7;

  std::uint32_t width = 0;
  std::uint32_t height = 0;
  std::vector<double> pinDensity;
  std::vector<double> netCrossings;
  std::vector<double> rudyV;
  std::vector<double> rudyH;
  std::vector<double> capV;
  std::vector<double> capH;
  std::vector<double> regionDist;

  std::size_t numTiles() const {
    return static_cast<std::size_t>(width) * height;
  }
  /// Channels in a fixed order (the map-model input contract).
  std::vector<const std::vector<double>*> channels() const {
    return {&pinDensity, &netCrossings, &rudyV, &rudyH,
            &capV,       &capH,         &regionDist};
  }
};

/// Extracts all channels for `packing` placed by `placement` on `geometry`.
/// Every cluster's tile must lie inside the grid (HCP_CHECK). Deterministic
/// and bit-identical at any thread count.
GridFeatures extractGridFeatures(const fpga::Packing& packing,
                                 const fpga::Placement& placement,
                                 const GridGeometry& geometry,
                                 const GridFeatureConfig& config = {});

/// Production overload: geometry from the device's fabric and track counts.
GridFeatures extractGridFeatures(const fpga::Packing& packing,
                                 const fpga::Placement& placement,
                                 const fpga::Device& device,
                                 const GridFeatureConfig& config = {});

}  // namespace hcp::features
