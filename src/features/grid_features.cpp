#include "features/grid_features.hpp"

#include <algorithm>
#include <cstddef>

#include "support/error.hpp"
#include "support/parallel.hpp"
#include "support/telemetry.hpp"

namespace hcp::features {

namespace {

/// Per-net placed bounding box plus its bit width, precomputed serially so
/// the parallel per-row sweep only reads.
struct NetBox {
  std::uint32_t x0 = 0, x1 = 0, y0 = 0, y1 = 0;
  double width = 1.0;
};

std::vector<NetBox> netBoxes(const fpga::Packing& packing,
                             const fpga::Placement& placement) {
  std::vector<NetBox> boxes;
  boxes.reserve(packing.nets.size());
  for (const fpga::ClusterNet& net : packing.nets) {
    const fpga::TileXY d = placement.tileOfCluster[net.driver];
    NetBox box;
    box.x0 = box.x1 = d.x;
    box.y0 = box.y1 = d.y;
    box.width = static_cast<double>(net.width);
    for (const fpga::ClusterId sink : net.sinks) {
      const fpga::TileXY t = placement.tileOfCluster[sink];
      box.x0 = std::min(box.x0, t.x);
      box.x1 = std::max(box.x1, t.x);
      box.y0 = std::min(box.y0, t.y);
      box.y1 = std::max(box.y1, t.y);
    }
    boxes.push_back(box);
  }
  return boxes;
}

}  // namespace

GridGeometry GridGeometry::forDevice(const fpga::Device& device) {
  GridGeometry g;
  g.width = device.width();
  g.height = device.height();
  g.vTracks = device.vTracks();
  g.hTracks = device.hTracks();
  g.vTracksAt.resize(g.numTiles());
  g.hTracksAt.resize(g.numTiles());
  for (std::uint32_t y = 0; y < g.height; ++y) {
    for (std::uint32_t x = 0; x < g.width; ++x) {
      const std::size_t i = static_cast<std::size_t>(y) * g.width + x;
      g.vTracksAt[i] = device.vTracksAt(x, y);
      g.hTracksAt[i] = device.hTracksAt(x, y);
    }
  }
  return g;
}

GridFeatures extractGridFeatures(const fpga::Packing& packing,
                                 const fpga::Placement& placement,
                                 const GridGeometry& geometry,
                                 const GridFeatureConfig& config) {
  HCP_SPAN("grid_features");
  GridFeatures out;
  out.width = geometry.width;
  out.height = geometry.height;
  const std::size_t tiles = geometry.numTiles();
  if (tiles == 0) return out;  // empty-map contract: all channels empty

  out.pinDensity.assign(tiles, 0.0);
  out.netCrossings.assign(tiles, 0.0);
  out.rudyV.assign(tiles, 0.0);
  out.rudyH.assign(tiles, 0.0);
  out.capV.assign(tiles, 0.0);
  out.capH.assign(tiles, 0.0);
  out.regionDist.assign(tiles, 0.0);

  // Serial prep: validate tiles and scatter bit-weighted pins. O(pins) —
  // cheap next to the per-row net sweep below.
  HCP_CHECK_MSG(placement.tileOfCluster.size() >= packing.clusters.size(),
                "placement does not cover the packing ("
                    << placement.tileOfCluster.size() << " tiles for "
                    << packing.clusters.size() << " clusters)");
  auto tileIndex = [&](fpga::ClusterId c) {
    const fpga::TileXY t = placement.tileOfCluster[c];
    HCP_CHECK_MSG(t.x < geometry.width && t.y < geometry.height,
                  "cluster " << c << " placed at (" << t.x << "," << t.y
                             << ") outside the " << geometry.width << "x"
                             << geometry.height << " grid");
    return static_cast<std::size_t>(t.y) * geometry.width + t.x;
  };
  for (const fpga::ClusterNet& net : packing.nets) {
    const double w = static_cast<double>(net.width);
    out.pinDensity[tileIndex(net.driver)] += w;
    for (const fpga::ClusterId sink : net.sinks)
      out.pinDensity[tileIndex(sink)] += w;
  }

  const std::vector<NetBox> boxes = netBoxes(packing, placement);
  const std::uint32_t regionSize = std::max(1u, config.regionSize);

  // Parallel per-row sweep: each row owns its slice of every channel, so
  // the merge is trivially bit-identical at any thread count.
  support::parallelFor(0, geometry.height, 4, [&](std::size_t y) {
    const std::size_t row = y * geometry.width;
    for (std::uint32_t x = 0; x < geometry.width; ++x) {
      const std::size_t i = row + x;
      out.capV[i] = geometry.vCapAt(i);
      out.capH[i] = geometry.hCapAt(i);
      // Distance to the nearest region boundary in either axis. Tiles on a
      // seam (offset 0) score 0; single-tile regions make every tile a seam.
      const std::uint32_t rx = x % regionSize;
      const std::uint32_t ry = static_cast<std::uint32_t>(y) % regionSize;
      const std::uint32_t dx = std::min(rx, regionSize - 1 - rx);
      const std::uint32_t dy = std::min(ry, regionSize - 1 - ry);
      out.regionDist[i] = static_cast<double>(std::min(dx, dy));
    }
    for (const NetBox& box : boxes) {
      if (y < box.y0 || y > box.y1) continue;
      // RUDY (Spindler/Johannes): wire demand of a net is spread uniformly
      // over its bounding box; the horizontal share per tile is
      // w*(dx+1)/area = w/(dy+1) and symmetrically for vertical.
      const double spanX = static_cast<double>(box.x1 - box.x0 + 1);
      const double spanY = static_cast<double>(box.y1 - box.y0 + 1);
      const double h = box.width / spanY;
      const double v = box.width / spanX;
      for (std::uint32_t x = box.x0; x <= box.x1; ++x) {
        const std::size_t i = row + x;
        out.netCrossings[i] += 1.0;
        out.rudyH[i] += h;
        out.rudyV[i] += v;
      }
    }
  });
  return out;
}

GridFeatures extractGridFeatures(const fpga::Packing& packing,
                                 const fpga::Placement& placement,
                                 const fpga::Device& device,
                                 const GridFeatureConfig& config) {
  return extractGridFeatures(packing, placement,
                             GridGeometry::forDevice(device), config);
}

}  // namespace hcp::features
