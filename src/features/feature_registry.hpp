// Registry of the paper's 302 features in 7 categories (Table II).
//
// The decomposition (asserted to total exactly 302 in tests):
//   bitwidth                              1
//   interconnection          9 x 2 scopes = 18
//   resource      (4 types) x (14 + 11)  = 100
//   timing                                2
//   #Resource/dTcs (4 types) x (6 + 6)   = 48
//   operator type        53 + 53 + 1     = 107
//   global information                    26
//
// The registry fixes the order of the feature vector; the extractor fills
// values in exactly this order, and the importance analysis (Table V) maps
// GBRT split counts back onto categories through it.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace hcp::features {

enum class Category : std::uint8_t {
  Bitwidth,
  Interconnection,
  Resource,
  Timing,
  ResourcePerDt,  ///< the paper's #Resource / dTcs
  OperatorType,
  GlobalInfo,
};

inline constexpr std::size_t kNumCategories = 7;
inline constexpr std::size_t kNumFeatures = 302;

std::string_view categoryName(Category c);

struct FeatureInfo {
  std::string name;
  Category category = Category::Bitwidth;
};

/// Immutable singleton-style registry.
class FeatureRegistry {
 public:
  static const FeatureRegistry& instance();

  std::size_t size() const { return features_.size(); }
  const FeatureInfo& info(std::size_t idx) const { return features_[idx]; }
  const std::vector<FeatureInfo>& all() const { return features_; }

  /// Number of features in each category.
  std::array<std::size_t, kNumCategories> categoryCounts() const;

  /// Index of a feature by exact name; throws if absent.
  std::size_t indexOf(const std::string& name) const;

 private:
  FeatureRegistry();
  std::vector<FeatureInfo> features_;
};

}  // namespace hcp::features
