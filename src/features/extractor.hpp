// Feature extraction (paper §III-B): computes the 302-dimensional feature
// vector of an IR operation from HLS-time information only — the dependency
// graph (with shared ops merged), the schedule (control steps -> dTcs), the
// binding (per-op resource shares) and the function/global reports. Nothing
// here looks at placement or routing; that is the whole point of the method.
#pragma once

#include <cstdint>
#include <vector>

#include "features/feature_registry.hpp"
#include "hls/design.hpp"

namespace hcp::features {

/// Device resource totals used for the utilization-ratio features. Kept as a
/// plain struct so this library does not depend on the physical model.
struct DeviceCaps {
  double lut = 53200.0;   // XC7Z020 budgets
  double ff = 106400.0;
  double dsp = 220.0;
  double bram = 280.0;
};

class FeatureExtractor {
 public:
  FeatureExtractor(const hls::SynthesizedDesign& design, DeviceCaps caps);

  /// The feature vector of op `op` in function `functionIndex`, ordered per
  /// FeatureRegistry.
  std::vector<double> extract(std::uint32_t functionIndex,
                              ir::OpId op) const;

  /// Materializes every per-function context up front. extract() warms these
  /// caches lazily, which is not thread-safe; call prepare() once before
  /// sharing one extractor across concurrent extract() calls.
  void prepare() const;

  /// Per-op resource share (unit + binding muxes split over sharers, plus
  /// bank-access muxes for loads). Exposed for tests.
  hls::Resource opResource(std::uint32_t functionIndex, ir::OpId op) const;

 private:
  struct FunctionCtx {
    std::vector<hls::Resource> opRes;    ///< per op
    std::vector<hls::Resource> nodeRes;  ///< per graph node (members summed)
    std::vector<std::uint32_t> nodeCstep;///< min start step over members
  };

  const FunctionCtx& ctx(std::uint32_t functionIndex) const;

  const hls::SynthesizedDesign& design_;
  DeviceCaps caps_;
  mutable std::vector<FunctionCtx> ctx_;
  mutable std::vector<bool> ctxReady_;
};

}  // namespace hcp::features
