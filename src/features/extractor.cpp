#include "features/extractor.hpp"

#include <algorithm>
#include <cmath>
#include <set>

namespace hcp::features {

using hls::Resource;
using ir::DependencyGraph;
using ir::NodeId;
using ir::Opcode;
using ir::OpId;

namespace {

double resOf(const Resource& r, std::size_t type) {
  switch (type) {
    case 0: return r.lut;
    case 1: return r.ff;
    case 2: return r.dsp;
    case 3: return r.bram;
  }
  return 0.0;
}

double safeDiv(double a, double b) { return b != 0.0 ? a / b : 0.0; }

}  // namespace

FeatureExtractor::FeatureExtractor(const hls::SynthesizedDesign& design,
                                   DeviceCaps caps)
    : design_(design), caps_(caps),
      ctx_(design.module->numFunctions()),
      ctxReady_(design.module->numFunctions(), false) {}

const FeatureExtractor::FunctionCtx& FeatureExtractor::ctx(
    std::uint32_t f) const {
  HCP_CHECK(f < ctx_.size());
  if (ctxReady_[f]) return ctx_[f];

  const ir::Function& fn = design_.module->function(f);
  const hls::SynthesizedFunction& syn = design_.functions[f];
  FunctionCtx& c = ctx_[f];

  // Per-op resource share.
  c.opRes.assign(fn.numOps(), Resource{});
  for (const hls::FuInstance& fu : syn.binding.fus) {
    const Resource share =
        (fu.unitRes + fu.muxRes) * (1.0 / static_cast<double>(fu.ops.size()));
    for (OpId op : fu.ops) c.opRes[op] = share;
  }
  for (OpId op = 0; op < fn.numOps(); ++op) {
    const ir::Op& o = fn.op(op);
    if (o.opcode == Opcode::Load && o.array != ir::kInvalidIndex &&
        fn.array(o.array).banks > 1) {
      c.opRes[op] += design_.library
                         .muxSpec(std::max<std::uint32_t>(2,
                                                          fn.array(o.array)
                                                              .banks),
                                  fn.array(o.array).bitwidth)
                         .res;
    }
  }

  // Per-node aggregates.
  const DependencyGraph& g = syn.graph;
  c.nodeRes.assign(g.numNodes(), Resource{});
  c.nodeCstep.assign(g.numNodes(), 0);
  for (NodeId n = 0; n < g.numNodes(); ++n) {
    const auto& node = g.node(n);
    if (node.kind == DependencyGraph::NodeKind::Port) continue;
    std::uint32_t minStep = ~0u;
    for (OpId m : node.members) {
      c.nodeRes[n] += c.opRes[m];
      minStep = std::min(minStep, syn.schedule.ops[m].startStep);
    }
    c.nodeCstep[n] = minStep == ~0u ? 0 : minStep;
  }

  ctxReady_[f] = true;
  return c;
}

void FeatureExtractor::prepare() const {
  for (std::uint32_t f = 0; f < ctx_.size(); ++f) ctx(f);
}

hls::Resource FeatureExtractor::opResource(std::uint32_t functionIndex,
                                           ir::OpId op) const {
  const FunctionCtx& c = ctx(functionIndex);
  HCP_CHECK(op < c.opRes.size());
  return c.opRes[op];
}

std::vector<double> FeatureExtractor::extract(std::uint32_t f,
                                              ir::OpId op) const {
  const ir::Function& fn = design_.module->function(f);
  const hls::SynthesizedFunction& syn = design_.functions[f];
  const FunctionCtx& c = ctx(f);
  const DependencyGraph& g = syn.graph;
  const NodeId v = g.nodeOf(op);

  std::vector<double> x;
  x.reserve(kNumFeatures);

  // Neighbour sets.
  std::vector<NodeId> preds1, succs1;
  for (const auto& n : g.preds(v)) preds1.push_back(n.node);
  for (const auto& n : g.succs(v)) succs1.push_back(n.node);
  const std::vector<NodeId> preds2 = g.twoHopPreds(v);
  const std::vector<NodeId> succs2 = g.twoHopSuccs(v);

  // --- bitwidth -------------------------------------------------------
  x.push_back(fn.op(op).bitwidth);

  // --- interconnection -------------------------------------------------
  {
    const double fanIn = g.fanIn(v);
    const double fanOut = g.fanOut(v);
    double maxWire = 0.0;
    for (const auto& n : g.preds(v)) maxWire = std::max(maxWire, n.wires);
    for (const auto& n : g.succs(v)) maxWire = std::max(maxWire, n.wires);

    x.push_back(fanIn);
    x.push_back(fanOut);
    x.push_back(fanIn + fanOut);
    x.push_back(static_cast<double>(preds1.size()));
    x.push_back(static_cast<double>(succs1.size()));
    x.push_back(static_cast<double>(preds1.size() + succs1.size()));
    x.push_back(maxWire);
    x.push_back(safeDiv(maxWire, fanIn));
    x.push_back(safeDiv(maxWire, fanOut));

    // Two-hop cone variants: total wires feeding/leaving the 2-level cone.
    double fanIn2 = fanIn, fanOut2 = fanOut, maxWire2 = maxWire;
    for (NodeId p : preds1) {
      fanIn2 += g.fanIn(p);
      for (const auto& e : g.preds(p)) maxWire2 = std::max(maxWire2, e.wires);
    }
    for (NodeId s : succs1) {
      fanOut2 += g.fanOut(s);
      for (const auto& e : g.succs(s)) maxWire2 = std::max(maxWire2, e.wires);
    }
    x.push_back(fanIn2);
    x.push_back(fanOut2);
    x.push_back(fanIn2 + fanOut2);
    x.push_back(static_cast<double>(preds2.size()));
    x.push_back(static_cast<double>(succs2.size()));
    x.push_back(static_cast<double>(preds2.size() + succs2.size()));
    x.push_back(maxWire2);
    x.push_back(safeDiv(maxWire2, fanIn2));
    x.push_back(safeDiv(maxWire2, fanOut2));
  }

  // --- resource ---------------------------------------------------------
  const Resource fnTotal = syn.report.totalRes;
  const double devCap[4] = {caps_.lut, caps_.ff, caps_.dsp, caps_.bram};
  for (std::size_t t = 0; t < 4; ++t) {
    const double self = resOf(c.opRes[op], t);
    const double fnT = resOf(fnTotal, t);
    x.push_back(self);
    x.push_back(safeDiv(self, devCap[t]));
    x.push_back(safeDiv(self, fnT));

    auto sumOver = [&](const std::vector<NodeId>& nodes) {
      double s = 0.0;
      for (NodeId n : nodes) s += resOf(c.nodeRes[n], t);
      return s;
    };
    auto maxOver = [&](const std::vector<NodeId>& a,
                       const std::vector<NodeId>& b) {
      double m = 0.0;
      for (NodeId n : a) m = std::max(m, resOf(c.nodeRes[n], t));
      for (NodeId n : b) m = std::max(m, resOf(c.nodeRes[n], t));
      return m;
    };

    const double p1 = sumOver(preds1), s1 = sumOver(succs1);
    x.push_back(p1);
    x.push_back(s1);
    x.push_back(p1 + s1);
    x.push_back(safeDiv(p1, devCap[t]));
    x.push_back(safeDiv(s1, devCap[t]));
    x.push_back(safeDiv(p1 + s1, devCap[t]));
    x.push_back(safeDiv(p1, fnT));
    x.push_back(safeDiv(s1, fnT));
    x.push_back(safeDiv(p1 + s1, fnT));
    const double m1 = maxOver(preds1, succs1);
    x.push_back(m1);
    x.push_back(safeDiv(m1, p1 + s1));

    const double p2 = sumOver(preds2), s2 = sumOver(succs2);
    x.push_back(p2);
    x.push_back(s2);
    x.push_back(p2 + s2);
    x.push_back(safeDiv(p2, devCap[t]));
    x.push_back(safeDiv(s2, devCap[t]));
    x.push_back(safeDiv(p2 + s2, devCap[t]));
    x.push_back(safeDiv(p2, fnT));
    x.push_back(safeDiv(s2, fnT));
    x.push_back(safeDiv(p2 + s2, fnT));
    const double m2 = maxOver(preds2, succs2);
    x.push_back(m2);
    x.push_back(safeDiv(m2, p2 + s2));
  }

  // --- timing -------------------------------------------------------------
  x.push_back(syn.schedule.ops[op].delayNs);
  x.push_back(syn.schedule.ops[op].latency);

  // --- #Resource/dTcs -------------------------------------------------------
  auto deltaT = [&](NodeId n) -> double {
    if (g.node(n).kind == DependencyGraph::NodeKind::Port) return 1.0;
    const double d = std::fabs(static_cast<double>(c.nodeCstep[n]) -
                               static_cast<double>(c.nodeCstep[v]));
    return std::max(1.0, d);
  };
  for (std::size_t t = 0; t < 4; ++t) {
    const double fnT = resOf(fnTotal, t);
    auto sumDt = [&](const std::vector<NodeId>& nodes, double denom) {
      double s = 0.0;
      for (NodeId n : nodes) s += resOf(c.nodeRes[n], t) / deltaT(n) / denom;
      return s;
    };
    // 1-hop then 2-hop, each: usage preds/succs, utilDev preds/succs,
    // utilFn preds/succs.
    const std::pair<const std::vector<NodeId>*, const std::vector<NodeId>*>
        scopes[2] = {{&preds1, &succs1}, {&preds2, &succs2}};
    for (const auto& [ps, ss] : scopes) {
      x.push_back(sumDt(*ps, 1.0));
      x.push_back(sumDt(*ss, 1.0));
      x.push_back(devCap[t] != 0 ? sumDt(*ps, devCap[t]) : 0.0);
      x.push_back(devCap[t] != 0 ? sumDt(*ss, devCap[t]) : 0.0);
      x.push_back(fnT != 0 ? sumDt(*ps, fnT) : 0.0);
      x.push_back(fnT != 0 ? sumDt(*ss, fnT) : 0.0);
    }
  }

  // --- operator type ---------------------------------------------------
  const auto selfKind = static_cast<std::size_t>(fn.op(op).opcode);
  for (std::size_t i = 0; i < ir::kNumOpcodes; ++i)
    x.push_back(i == selfKind ? 1.0 : 0.0);
  std::array<double, ir::kNumOpcodes> nbrCounts{};
  auto kindOfNode = [&](NodeId n) -> std::size_t {
    const auto& node = g.node(n);
    if (node.kind == DependencyGraph::NodeKind::Port)
      return static_cast<std::size_t>(Opcode::Port);
    return static_cast<std::size_t>(fn.op(node.op).opcode);
  };
  std::set<std::size_t> distinctKinds;
  for (NodeId n : preds1) {
    ++nbrCounts[kindOfNode(n)];
    distinctKinds.insert(kindOfNode(n));
  }
  for (NodeId n : succs1) {
    ++nbrCounts[kindOfNode(n)];
    distinctKinds.insert(kindOfNode(n));
  }
  for (double count : nbrCounts) x.push_back(count);
  x.push_back(static_cast<double>(distinctKinds.size()));

  // --- global information -----------------------------------------------
  const hls::FunctionReport& topReport =
      design_.functions[design_.module->topIndex()].report;
  const hls::FunctionReport& fopReport = syn.report;
  for (std::size_t t = 0; t < 4; ++t)
    x.push_back(resOf(topReport.totalRes, t));
  for (std::size_t t = 0; t < 4; ++t)
    x.push_back(resOf(fopReport.totalRes, t));
  for (std::size_t t = 0; t < 4; ++t)
    x.push_back(safeDiv(resOf(fopReport.totalRes, t),
                        resOf(topReport.totalRes, t)));
  for (const hls::FunctionReport* rep : {&topReport, &fopReport}) {
    x.push_back(rep->targetClockNs);
    x.push_back(rep->estimatedClockNs);
    x.push_back(rep->clockUncertaintyNs);
  }
  x.push_back(static_cast<double>(fopReport.memory.words));
  x.push_back(static_cast<double>(fopReport.memory.banks));
  x.push_back(static_cast<double>(fopReport.memory.bits));
  x.push_back(static_cast<double>(fopReport.memory.primitives));
  x.push_back(static_cast<double>(fopReport.mux.count));
  x.push_back(fopReport.mux.res.lut);
  x.push_back(static_cast<double>(fopReport.mux.totalInputs));
  x.push_back(fopReport.mux.avgWidth);

  HCP_CHECK_MSG(x.size() == kNumFeatures,
                "extractor produced " << x.size() << " features");
  return x;
}

}  // namespace hcp::features
