// Minimal std::iostream plumbing over a POSIX file descriptor, so the serve
// loop is written once against istream/ostream and works unchanged whether
// the transport is stdin/stdout or an accepted Unix-socket connection.
#pragma once

#include <unistd.h>

#include <cerrno>
#include <cstddef>
#include <istream>
#include <ostream>
#include <streambuf>

#include "support/signals.hpp"

namespace hcp::serve {

/// Buffered streambuf over a file descriptor the caller owns. EINTR-safe —
/// except when the EINTR was a SIGTERM/SIGINT routed through
/// installTerminationHandler(), in which case a blocked read reports eof so
/// the serve loop can drain and run its at-exit artifact writes. Short
/// writes are retried until the buffer drains. Any hard I/O error surfaces
/// as the stream's failbit — exactly what Server::serve checks.
class FdStreamBuf final : public std::streambuf {
 public:
  explicit FdStreamBuf(int fd) : fd_(fd) {
    setg(inBuf_, inBuf_, inBuf_);
    setp(outBuf_, outBuf_ + sizeof outBuf_);
  }
  ~FdStreamBuf() override { sync(); }
  FdStreamBuf(const FdStreamBuf&) = delete;
  FdStreamBuf& operator=(const FdStreamBuf&) = delete;

 protected:
  int_type underflow() override {
    if (gptr() < egptr()) return traits_type::to_int_type(*gptr());
    ssize_t n;
    do {
      n = ::read(fd_, inBuf_, sizeof inBuf_);
    } while (n < 0 && errno == EINTR && !support::terminationRequested());
    if (n <= 0) return traits_type::eof();
    setg(inBuf_, inBuf_, inBuf_ + n);
    return traits_type::to_int_type(*gptr());
  }

  int_type overflow(int_type ch) override {
    if (sync() != 0) return traits_type::eof();
    if (!traits_type::eq_int_type(ch, traits_type::eof())) {
      *pptr() = traits_type::to_char_type(ch);
      pbump(1);
    }
    return traits_type::not_eof(ch);
  }

  int sync() override {
    const char* p = pbase();
    while (p < pptr()) {
      const ssize_t n = ::write(fd_, p, static_cast<std::size_t>(pptr() - p));
      if (n < 0) {
        if (errno == EINTR) continue;
        setp(outBuf_, outBuf_ + sizeof outBuf_);
        return -1;
      }
      p += n;
    }
    setp(outBuf_, outBuf_ + sizeof outBuf_);
    return 0;
  }

 private:
  int fd_;
  char inBuf_[8192];
  char outBuf_[8192];
};

/// istream + ostream pair over one fd (a connected socket).
class FdStream {
 public:
  explicit FdStream(int fd) : buf_(fd), in(&buf_), out(&buf_) {}

  FdStreamBuf buf_;
  std::istream in;
  std::ostream out;
};

}  // namespace hcp::serve
