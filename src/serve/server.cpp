#include "serve/server.hpp"

#include <algorithm>
#include <cstdio>
#include <istream>
#include <ostream>
#include <sstream>
#include <unordered_map>

#include "apps/registry.hpp"
#include "core/flow.hpp"
#include "core/flow_serialize.hpp"
#include "core/map_predictor.hpp"
#include "core/predictor.hpp"
#include "ml/mapnet.hpp"
#include "hls/design.hpp"
#include "support/error.hpp"
#include "support/failpoint.hpp"
#include "support/flowcache.hpp"
#include "support/json.hpp"
#include "support/metrics_export.hpp"
#include "support/parallel.hpp"
#include "support/telemetry.hpp"
#include "support/textio.hpp"
#include "support/tracing.hpp"

namespace hcp::serve {

namespace tel = support::telemetry;
namespace json = support::json;
namespace tracing = support::tracing;
namespace metrics = support::metrics;

namespace {

constexpr std::size_t kNoWork = static_cast<std::size_t>(-1);

/// %.17g — same round-trip-exact convention as the run report, so response
/// bytes are comparable across runs and thread counts.
void appendDouble(std::string& s, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  s += buf;
}

void appendU64(std::string& s, std::uint64_t v) {
  s += std::to_string(v);
}

std::string flowBody(const core::FlowResult& result, const std::string& key,
                     bool cached) {
  std::string b = "\"ok\":true,\"op\":\"flow\",\"design\":\"";
  b += json::escape(result.name);
  b += "\",\"key\":\"";
  b += key;  // 16-char hex (or "" when the cache is off); never needs escaping
  b += "\",\"cached\":";
  b += cached ? "true" : "false";
  b += ",\"wns_ns\":";
  appendDouble(b, result.wnsNs);
  b += ",\"fmax_mhz\":";
  appendDouble(b, result.maxFrequencyMhz);
  b += ",\"latency_cycles\":";
  appendU64(b, result.latencyCycles);
  b += ",\"max_v_congestion\":";
  appendDouble(b, result.maxVCongestion);
  b += ",\"max_h_congestion\":";
  appendDouble(b, result.maxHCongestion);
  b += ",\"congested_tiles\":";
  appendU64(b, result.congestedTiles);
  b += '}';
  return b;
}

}  // namespace

Server::Server(ServerConfig config)
    : config_(std::move(config)), device_(fpga::Device::xc7z020like()) {
  if (config_.maxBatch == 0) config_.maxBatch = 1;
  if (config_.metricsInterval == 0) config_.metricsInterval = 1;
  // A daemon is always observable: the metrics op and the periodic snapshot
  // read live telemetry histograms, which only fill while collection is on.
  tel::setEnabled(true);
  startNs_ = nowNs();
  if (!config_.modelPath.empty())
    predictor_ = std::make_unique<core::CongestionPredictor>(
        core::CongestionPredictor::load(config_.modelPath));
  if (!config_.mapModelPath.empty())
    mapModel_ = std::make_unique<ml::MapNet>(
        ml::loadMapModelFromFile(config_.mapModelPath));
}

Server::~Server() = default;

bool Server::serve(std::istream& in, std::ostream& out) {
  std::string line;
  while (!shutdown_ && std::getline(in, line)) {
    if (line.empty()) {
      if (!flushPending(out)) return false;
      continue;
    }
    admit(line);
  }
  if (!flushPending(out)) return false;
  out.flush();
  return !out.fail();
}

void Server::admit(std::string_view line) {
  Pending p;
  p.ctx.admitNs = nowNs();
  ++seq_;
  if (line.size() > config_.maxLineBytes) {
    ++stats_.rejected;
    tel::count(tel::Counter::ServeRejected);
    p.ctx.rid = "#" + std::to_string(seq_);
    p.body = errorBody("request line exceeds " +
                       std::to_string(config_.maxLineBytes) + " bytes");
    p.isError = true;
    pending_.push_back(std::move(p));
    return;
  }

  ParseOutcome parsed = parseRequest(line);
  p.request = std::move(parsed.request);
  p.ctx.rid = p.request.id.empty() ? "#" + std::to_string(seq_)
                                   : p.request.id;
  if (!parsed.ok) {
    ++stats_.admitted;
    tel::count(tel::Counter::ServeRequests);
    p.body = errorBody(parsed.error);
    p.isError = true;
    pending_.push_back(std::move(p));
    return;
  }

  switch (p.request.op) {
    case Op::Status:
      ++stats_.admitted;
      tel::count(tel::Counter::ServeRequests);
      p.body = statusBody();
      break;
    case Op::Metrics:
      ++stats_.admitted;
      tel::count(tel::Counter::ServeRequests);
      p.body = metricsBody();
      break;
    case Op::Shutdown:
      ++stats_.admitted;
      tel::count(tel::Counter::ServeRequests);
      p.body = "\"ok\":true,\"op\":\"shutdown\"}";
      shutdown_ = true;
      break;
    case Op::Predict:
    case Op::Flow:
    case Op::PredictMap:
      if (pendingWork_ >= config_.queueDepth) {
        ++stats_.rejected;
        tel::count(tel::Counter::ServeRejected);
        p.body = errorBody("queue full (depth " +
                           std::to_string(config_.queueDepth) + ")");
        p.isError = true;
      } else {
        ++stats_.admitted;
        tel::count(tel::Counter::ServeRequests);
        if (p.request.op == Op::PredictMap)
          tel::count(tel::Counter::ServeMapRequests);
        ++pendingWork_;
      }
      break;
  }
  pending_.push_back(std::move(p));
}

bool Server::flushPending(std::ostream& out) {
  if (pending_.empty()) return !out.fail();
  tel::observe(tel::Histogram::ServeQueueDepth,
               static_cast<double>(pendingWork_));
  stats_.queuePeak = std::max(stats_.queuePeak, pendingWork_);

  // Dedupe: requests naming identical work share one computation and one
  // byte-identical body. This is also what makes serial and parallel flushes
  // indistinguishable — without it, the second of two equal flow requests
  // would report cached:true serially (the first one's store landed) but
  // cached:false in a concurrent batch.
  std::vector<const Request*> work;
  std::unordered_map<std::string, std::size_t> indexByKey;
  std::vector<std::size_t> slot(pending_.size(), kNoWork);
  for (std::size_t i = 0; i < pending_.size(); ++i) {
    if (!pending_[i].needsWork()) continue;
    const auto [it, fresh] =
        indexByKey.emplace(workKey(pending_[i].request), work.size());
    if (fresh) work.push_back(&pending_[i].request);
    slot[i] = it->second;
  }

  // Per-batch execution windows, stamped on the serving thread around the
  // pool dispatch. Every request deduped into a batch shares its window —
  // the most honest per-request attribution available without letting pool
  // workers touch the (possibly logical) server clock.
  struct Window {
    std::uint64_t startNs = 0;
    std::uint64_t endNs = 0;
  };
  std::vector<Window> windows((work.size() + config_.maxBatch - 1) /
                              config_.maxBatch);
  std::vector<WorkResult> results(work.size());
  for (std::size_t base = 0; base < work.size(); base += config_.maxBatch) {
    const std::size_t n = std::min(config_.maxBatch, work.size() - base);
    Window& w = windows[base / config_.maxBatch];
    w.startNs = nowNs();
    {
      HCP_SPAN("serve_batch");
      tel::count(tel::Counter::ServeBatches);
      tel::observe(tel::Histogram::ServeBatchSize, static_cast<double>(n));
      ++stats_.batches;
      auto chunk = support::parallelMapIndex(
          n, [&](std::size_t i) { return executeWork(*work[base + i]); });
      for (std::size_t i = 0; i < n; ++i)
        results[base + i] = std::move(chunk[i]);
    }
    w.endNs = nowNs();
    maybeStatusLine();
  }

  for (std::size_t i = 0; i < pending_.size(); ++i) {
    Pending& p = pending_[i];
    const std::string* body = &p.body;
    bool isError = p.isError;
    bool fromCache = false;
    if (slot[i] != kNoWork) {
      const WorkResult& r = results[slot[i]];
      body = &r.body;
      isError = r.isError;
      fromCache = r.fromCache;
      const Window& w = windows[slot[i] / config_.maxBatch];
      p.ctx.execStartNs = w.startNs;
      p.ctx.execEndNs = w.endNs;
    }
    if (isError) {
      ++stats_.errors;
      tel::count(tel::Counter::ServeErrors);
    }
    if (fromCache) {
      ++stats_.cacheHits;
      tel::count(tel::Counter::ServeCacheHits);
    }
    p.ctx.serializeStartNs = nowNs();
    out << responsePrefix(p.request) << *body << '\n';
    p.ctx.serializeEndNs = nowNs();
    finishRequest(p.ctx);
    ++stats_.served;
    if (out.fail()) break;
  }
  pending_.clear();
  pendingWork_ = 0;
  out.flush();

  // The flush window just closed: workers are idle, so this is a quiescent
  // point — safe for both the metrics snapshot and the trace auto-flush.
  ++windows_;
  if (windows_ % config_.metricsInterval == 0) {
    writeMetricsNow();
    tracing::autoFlush();
  }
  return !out.fail();
}

Server::WorkResult Server::executeWork(const Request& r) const {
  HCP_SPAN("serve_request");
  WorkResult out;
  out.isError = true;
  try {
    if (support::failpoint::shouldFail("serve.request"))
      throw Error("injected serve.request failure");
    if (r.op == Op::Predict) return executePredict(r);
    if (r.op == Op::PredictMap) return executePredictMap(r);
    return executeFlow(r);
  } catch (const Error& e) {
    out.body = errorBody(e.what());
  } catch (const std::exception& e) {
    out.body = errorBody(std::string("internal error: ") + e.what());
  }
  return out;
}

Server::WorkResult Server::executePredict(const Request& r) const {
  if (!predictor_)
    throw Error("no model loaded (start hcp_serve with --model FILE)");
  auto app = apps::makeDesign(r.design, r.directives);
  const auto design =
      hls::synthesize(std::move(app.module), app.directives, {});
  const auto hotspots = predictor_->findHotspots(design, {}, r.topK);

  WorkResult out;
  std::string& b = out.body;
  b = "\"ok\":true,\"op\":\"predict\",\"design\":\"";
  b += json::escape(r.design);
  b += "\",\"hotspots\":[";
  for (std::size_t i = 0; i < hotspots.size(); ++i) {
    const auto& h = hotspots[i];
    if (i != 0) b += ',';
    b += "{\"function\":\"";
    b += json::escape(h.functionName);
    b += "\",\"line\":";
    b += std::to_string(h.sourceLine);
    b += ",\"ops\":";
    appendU64(b, h.numOps);
    b += ",\"mean\":";
    appendDouble(b, h.meanPredicted);
    b += ",\"max\":";
    appendDouble(b, h.maxPredicted);
    b += '}';
  }
  b += "]}";
  return out;
}

Server::WorkResult Server::executeFlow(const Request& r) const {
  WorkResult out;
  if (!r.cacheKey.empty()) {
    // Flow-by-key answers straight from the cache, never computes: a key
    // carries no design inputs to recompute from.
    support::flowcache::FlowCache* cache = support::flowcache::global();
    if (cache == nullptr)
      throw Error("flow-by-key needs a flow cache (--cache DIR / HCP_CACHE)");
    std::optional<std::string> payload = cache->load(r.cacheKey);
    if (!payload)
      throw Error("key '" + r.cacheKey + "' is not in the flow cache");
    std::istringstream is(*payload);
    const core::FlowResult result = core::readFlowResult(is);
    tel::count(tel::Counter::FlowCacheHit);
    out.body = flowBody(result, r.cacheKey, true);
    out.fromCache = true;
    return out;
  }

  core::FlowConfig cfg;
  cfg.seed = r.seed;
  core::CachedFlow flow = core::runFlowCached(
      apps::makeDesign(r.design, r.directives), device_, cfg);
  out.fromCache = flow.fromCache;
  out.body = flowBody(flow.result, flow.cacheKey, flow.fromCache);
  return out;
}

Server::WorkResult Server::executePredictMap(const Request& r) const {
  if (!mapModel_)
    throw Error("no map model loaded (start hcp_serve with --map-model FILE)");
  core::FlowConfig cfg;
  cfg.seed = r.seed;
  const ml::GridSample grid = core::placeAndExtract(
      apps::makeDesign(r.design, r.directives), device_, cfg);
  const ml::MapPrediction map = mapModel_->predict(grid);

  WorkResult out;
  std::string& b = out.body;
  b = "\"ok\":true,\"op\":\"predict_map\",\"design\":\"";
  b += json::escape(r.design);
  b += "\",\"topology\":\"";
  b += topologyName(mapModel_->config().topology);
  b += "\",\"width\":";
  appendU64(b, map.width);
  b += ",\"height\":";
  appendU64(b, map.height);
  b += ",\"max_v_util\":";
  appendDouble(b, map.maxVUtil());
  b += ",\"max_h_util\":";
  appendDouble(b, map.maxHUtil());
  b += ",\"tiles_over_100\":";
  appendU64(b, map.tilesOver(100.0));
  b += ",\"v_util\":[";
  for (std::size_t i = 0; i < map.vUtil.size(); ++i) {
    if (i != 0) b += ',';
    appendDouble(b, map.vUtil[i]);
  }
  b += "],\"h_util\":[";
  for (std::size_t i = 0; i < map.hUtil.size(); ++i) {
    if (i != 0) b += ',';
    appendDouble(b, map.hUtil[i]);
  }
  b += "]}";
  return out;
}

std::string Server::statusBody() const {
  std::string b = "\"ok\":true,\"op\":\"status\",\"model\":";
  b += predictor_ ? "true" : "false";
  b += ",\"map_model\":";
  b += mapModel_ ? "true" : "false";
  b += ",\"uptime_ms\":";
  appendDouble(b, uptimeMs());
  b += ",\"requests_in_flight\":";
  appendU64(b, pendingWork_);
  b += ",\"admitted\":";
  appendU64(b, stats_.admitted);
  b += ",\"served\":";
  appendU64(b, stats_.served);
  b += ",\"errors\":";
  appendU64(b, stats_.errors);
  b += ",\"rejected\":";
  appendU64(b, stats_.rejected);
  b += ",\"batches\":";
  appendU64(b, stats_.batches);
  b += ",\"cache_hits\":";
  appendU64(b, stats_.cacheHits);
  b += ",\"queue_peak\":";
  appendU64(b, stats_.queuePeak);
  b += ",\"flowcache_degraded\":";
  b += support::flowcache::degraded() ? "true" : "false";
  b += '}';
  return b;
}

std::uint64_t Server::nowNs() {
  if (config_.tickNs != 0) {
    clockNs_ += config_.tickNs;
    lastNowNs_ = clockNs_;
  } else {
    lastNowNs_ = tel::detail::nowNs();
  }
  return lastNowNs_;
}

double Server::uptimeMs() const {
  if (lastNowNs_ <= startNs_) return 0.0;
  return static_cast<double>(lastNowNs_ - startNs_) / 1e6;
}

metrics::Gauges Server::gauges() const {
  metrics::Gauges g;
  g.tool = "hcp_serve";
  g.uptimeMs = uptimeMs();
  g.requestsInFlight = pendingWork_;
  g.served = stats_.served;
  g.queuePeak = stats_.queuePeak;
  if (g.uptimeMs > 0.0)
    g.qps = static_cast<double>(stats_.served) * 1000.0 / g.uptimeMs;
  if (stats_.served != 0)
    g.cacheHitRate = static_cast<double>(stats_.cacheHits) /
                     static_cast<double>(stats_.served);
  g.model = predictor_ != nullptr;
  g.flowcacheDegraded = support::flowcache::degraded();
  return g;
}

std::string Server::metricsBody() const {
  return "\"ok\":true,\"op\":\"metrics\"," +
         metrics::jsonBody(gauges(), tel::snapshot()) + "}";
}

void Server::writeMetricsNow() {
  if (config_.metricsOutPath.empty()) return;
  const metrics::Gauges g = gauges();
  const tel::Snapshot snap = tel::snapshot();
  try {
    {
      support::txt::CheckedFileWriter w(config_.metricsOutPath, "metrics");
      w.stream() << '{' << metrics::jsonBody(g, snap) << "}\n";
      w.commit();
    }
    {
      support::txt::CheckedFileWriter w(
          metrics::promPathFor(config_.metricsOutPath), "metrics");
      metrics::writePrometheus(w.stream(), g, snap);
      w.commit();
    }
    tel::count(tel::Counter::MetricsWrites);
  } catch (const Error& e) {
    // Degrade: the daemon keeps serving; the failure is visible in the
    // metrics_write_error counter (and once on stderr).
    tel::count(tel::Counter::MetricsWriteError);
    if (!metricsErrorLogged_) {
      metricsErrorLogged_ = true;
      std::fprintf(stderr, "[hcp_serve] metrics snapshot failed: %s\n",
                   e.what());
    }
  }
}

void Server::maybeStatusLine() {
  if (config_.statusEveryBatches == 0) return;
  if (stats_.batches % config_.statusEveryBatches != 0) return;
  std::fprintf(stderr,
               "[hcp_serve] batches=%llu served=%llu errors=%llu "
               "rejected=%llu cache_hits=%llu flowcache_degraded=%d\n",
               static_cast<unsigned long long>(stats_.batches),
               static_cast<unsigned long long>(stats_.served),
               static_cast<unsigned long long>(stats_.errors),
               static_cast<unsigned long long>(stats_.rejected),
               static_cast<unsigned long long>(stats_.cacheHits),
               support::flowcache::degraded() ? 1 : 0);
}

}  // namespace hcp::serve
