// The hcp_serve wire protocol: line-delimited JSON over stdin/stdout or a
// Unix socket.
//
// Requests are one strict-JSON object per line (RFC 8259, parsed by
// support/json — no trailing commas, no comments, no garbage):
//
//   {"id":"r1","op":"predict","design":"spam_filter","top_k":5}
//   {"id":"r2","op":"flow","design":"face_detection","seed":7}
//   {"id":"r3","op":"flow","key":"8d2fe64a0c1b9e77"}
//   {"id":"r4","op":"predict_map","design":"spam_filter"}
//   {"op":"status"}
//   {"op":"metrics"}
//   {"op":"shutdown"}
//
// A *blank line* is a flush marker: every pending request is answered, in
// request order, one JSON object per line. EOF and "shutdown" flush too.
//
// Fields:
//   op         required: "predict" | "flow" | "predict_map" | "status" |
//              "metrics" | "shutdown"
//   id         optional string, echoed verbatim in the response
//   design     bundled design name (predict, flow, predict_map)
//   key        16-hex flow-cache key (flow only; exclusive with design) —
//              answers straight from the cache, never computes
//   seed       optional non-negative integer, default 42 (flow, predict_map)
//   top_k      optional positive integer, default 10 (predict)
//   directives optional bool, default true (predict, flow, predict_map)
//
// predict_map requires the daemon to have been started with --map-model;
// without one, every predict_map request is answered with ok:false. The
// response carries the full per-tile grid: "v_util"/"h_util" arrays of
// width*height doubles (row-major, %.17g — byte-identical across runs).
//
// Unknown members and wrong types are rejected per-request with an
// {"ok":false,"error":...} response — a malformed request can never take
// the daemon down, and never blocks the requests queued behind it.
//
// Responses open with the echoed id (when one was given) and an "ok" flag;
// everything after is op-specific. Doubles print with 17 significant
// digits, so responses are byte-identical across runs and thread counts.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace hcp::serve {

enum class Op { Predict, Flow, PredictMap, Status, Metrics, Shutdown };

std::string_view opName(Op op);

struct Request {
  Op op = Op::Predict;
  std::string id;        ///< echoed verbatim; empty = absent
  std::string design;    ///< bundled design name (predict / flow / map)
  std::string cacheKey;  ///< 16-hex flow-cache key (flow-by-key)
  std::uint64_t seed = 42;
  std::uint64_t topK = 10;
  bool directives = true;
};

/// parseRequest result: on failure `error` is non-empty and `request.id`
/// still carries the id when the line was valid JSON with a string id — so
/// even a rejected request gets its response correlated.
struct ParseOutcome {
  bool ok = false;
  Request request;
  std::string error;
};

/// Parses and validates one request line. Never throws: every violation
/// (bad JSON, unknown op, missing/extra/mistyped fields) comes back as a
/// client-safe error message.
ParseOutcome parseRequest(std::string_view line);

/// Canonical identity of the *work* a request names — every field except
/// the id. Requests with equal work keys are answered from one computation
/// per batch and share a byte-identical response body.
std::string workKey(const Request& r);

/// `{"id":"<escaped>",` when the request carries an id, else `{`.
std::string responsePrefix(const Request& r);

/// The body of an error response: `"ok":false,"error":"<escaped>"}`.
std::string errorBody(std::string_view message);

/// A complete error response line (no trailing newline).
std::string errorResponse(const Request& r, std::string_view message);

}  // namespace hcp::serve
