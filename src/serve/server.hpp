// The hcp_serve batch loop: admission, bounded queueing, deduped parallel
// execution, in-order response writing.
//
// Lifecycle: construct once (the predictor model loads here, paid a single
// time per daemon), then serve(in, out) until EOF or a shutdown request.
// Admission is serial and cheap — parse, validate, queue. A blank line (or
// EOF / shutdown) flushes: pending work is deduplicated by its canonical
// work key, executed through the deterministic thread pool in maxBatch-sized
// chunks, and answered strictly in request order. Because the pool merges
// telemetry frames in task-index order and every response body is a pure
// function of the request, the byte stream out — and the run report — are
// identical at any thread count.
//
// Failure contract: nothing a client sends, and no failure while serving a
// single request (unknown design, cache miss on a keyed flow, injected
// serve.* fault, any hcp::Error or std::exception from the flow) can take
// the daemon down. Each such failure becomes one {"ok":false,...} response
// and the loop keeps going. Only I/O failure on the response stream itself
// ends serve() — there is no one left to answer.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "fpga/device.hpp"
#include "serve/protocol.hpp"
#include "serve/request_context.hpp"
#include "support/metrics_export.hpp"

namespace hcp::core {
class CongestionPredictor;
}
namespace hcp::ml {
class MapNet;
}

namespace hcp::serve {

struct ServerConfig {
  std::string modelPath;  ///< predictor to preload ("" = flow/status only)
  std::string mapModelPath;  ///< map model ("" = predict_map unavailable)
  std::size_t maxBatch = 8;        ///< work items per pool dispatch
  std::size_t queueDepth = 64;     ///< pending work items between flushes
  std::size_t maxLineBytes = 1 << 20;  ///< request line size limit
  std::uint64_t statusEveryBatches = 0;  ///< stderr status cadence (0 = off)
  /// Logical clock step. 0 (production default) = real steady clock. When
  /// non-zero, every serving-thread clock read returns the previous read
  /// plus tickNs: since only the serving thread reads this clock and its
  /// read sequence depends only on the request stream, all latency
  /// histograms — and therefore the metrics op and snapshot — are
  /// byte-identical at any thread count.
  std::uint64_t tickNs = 0;
  std::string metricsOutPath;  ///< periodic JSON/Prometheus snapshot ("" = off)
  std::uint64_t metricsInterval = 1;  ///< snapshot cadence, in flush windows
};

/// Monotone since construction; mirrored by the serve_* report counters and
/// the `status` op.
struct ServerStats {
  std::uint64_t admitted = 0;   ///< requests accepted into the queue
  std::uint64_t served = 0;     ///< response lines written
  std::uint64_t errors = 0;     ///< ok:false responses among `served`
  std::uint64_t rejected = 0;   ///< queue-full / oversized-line rejections
  std::uint64_t batches = 0;    ///< pool dispatches
  std::uint64_t cacheHits = 0;  ///< flow responses replayed from the cache
  std::size_t queuePeak = 0;    ///< max pending work items at a flush
};

class Server {
 public:
  /// Loads the model named by `config.modelPath` (throws hcp::Error if it
  /// cannot be loaded — a daemon that cannot answer must not start).
  explicit Server(ServerConfig config);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Runs the admission/flush loop until EOF or shutdown. Returns true on a
  /// clean exit; false when the response stream failed mid-serve.
  bool serve(std::istream& in, std::ostream& out);

  const ServerStats& stats() const { return stats_; }
  bool hasModel() const { return predictor_ != nullptr; }
  bool hasMapModel() const { return mapModel_ != nullptr; }
  /// True once a shutdown request was served — the Unix-socket accept loop
  /// uses this to tell "client hung up, accept the next one" from "daemon
  /// was asked to stop".
  bool shutdownRequested() const { return shutdown_; }

  /// Writes the metrics snapshot (JSON + Prometheus sibling) now, regardless
  /// of cadence. No-op when metricsOutPath is empty. The at-exit call.
  void writeMetricsNow();

 private:
  struct Pending {
    Request request;
    RequestContext ctx;
    std::string body;   ///< resolved response body; "" = needs execution
    bool isError = false;
    bool needsWork() const { return body.empty(); }
  };

  struct WorkResult {
    std::string body;
    bool fromCache = false;
    bool isError = false;
  };

  void admit(std::string_view line);
  bool flushPending(std::ostream& out);
  WorkResult executeWork(const Request& r) const;
  WorkResult executePredict(const Request& r) const;
  WorkResult executeFlow(const Request& r) const;
  WorkResult executePredictMap(const Request& r) const;
  std::string statusBody() const;
  std::string metricsBody() const;
  support::metrics::Gauges gauges() const;
  void maybeStatusLine();
  /// Serving-thread clock: real steady clock, or the logical tick clock
  /// when config_.tickNs != 0. Must never be called from a pool worker —
  /// that would make the read sequence depend on the thread count.
  std::uint64_t nowNs();
  double uptimeMs() const;

  ServerConfig config_;
  fpga::Device device_;
  std::unique_ptr<core::CongestionPredictor> predictor_;
  std::unique_ptr<ml::MapNet> mapModel_;
  std::vector<Pending> pending_;
  std::size_t pendingWork_ = 0;  ///< queue occupancy (needsWork items)
  bool shutdown_ = false;
  ServerStats stats_;
  std::uint64_t clockNs_ = 0;   ///< last tick-clock reading (tick mode)
  std::uint64_t startNs_ = 0;   ///< clock at construction (uptime origin)
  std::uint64_t lastNowNs_ = 0;  ///< last serving-thread clock reading
  std::uint64_t windows_ = 0;   ///< completed flush windows (snapshot cadence)
  std::uint64_t seq_ = 0;       ///< admission ordinal (ids for id-less reqs)
  bool metricsErrorLogged_ = false;  ///< log the first write failure only
};

}  // namespace hcp::serve
