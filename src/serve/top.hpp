// The hcp_top client side: scrape a running hcp_serve daemon's `metrics`
// op over its Unix socket, parse the JSON payload, and render a terminal
// dashboard (QPS, queue depth, cache hit rate, latency percentiles).
//
// Split from tools/hcp_top.cpp so tests can drive the full
// scrape → parse → render path against an in-process daemon.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace hcp::serve::top {

/// One histogram from the metrics payload, percentiles included.
struct HistRow {
  std::string name;
  std::uint64_t count = 0;
  double sum = 0.0, min = 0.0, max = 0.0;
  double p50 = 0.0, p90 = 0.0, p99 = 0.0;
};

/// A parsed metrics scrape: the daemon gauges plus every counter and
/// histogram, in the payload's (deterministic) order.
struct Scrape {
  std::string tool;
  double uptimeMs = 0.0;
  std::uint64_t requestsInFlight = 0;
  std::uint64_t served = 0;
  std::uint64_t queuePeak = 0;
  double qps = 0.0;
  double cacheHitRate = 0.0;
  bool model = false;
  bool flowcacheDegraded = false;
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<HistRow> histograms;
};

/// Connects to the daemon's Unix socket, sends `{"op":"metrics"}` plus a
/// flush line, and returns the raw response line. Throws hcp::Error when
/// the socket cannot be reached or the daemon hangs up without answering.
std::string scrapeOnce(const std::string& socketPath);

/// Parses a metrics response line. Throws hcp::Error on malformed JSON,
/// an {"ok":false,...} response, or missing fields.
Scrape parseMetricsResponse(std::string_view line);

/// Renders the dashboard: a gauge summary block followed by a table of
/// non-empty histograms (count, p50/p90/p99, max).
std::string renderDashboard(const Scrape& s);

}  // namespace hcp::serve::top
