#include "serve/protocol.hpp"

#include <cmath>
#include <sstream>

#include "support/error.hpp"
#include "support/json.hpp"

namespace hcp::serve {

namespace json = support::json;

std::string_view opName(Op op) {
  switch (op) {
    case Op::Predict: return "predict";
    case Op::Flow: return "flow";
    case Op::PredictMap: return "predict_map";
    case Op::Status: return "status";
    case Op::Metrics: return "metrics";
    case Op::Shutdown: return "shutdown";
  }
  return "?";
}

namespace {

/// A JSON number that is a non-negative integer (protocol counts and
/// seeds); anything else — fractions, negatives, values beyond 2^53 where
/// doubles stop being exact — is a protocol error.
bool asU64(const json::Value& v, std::uint64_t& out) {
  if (!v.isNumber()) return false;
  const double d = v.number;
  if (!(d >= 0) || d != std::floor(d) || d > 9007199254740992.0) return false;
  out = static_cast<std::uint64_t>(d);
  return true;
}

bool isHexKey(const std::string& s) {
  if (s.size() != 16) return false;
  for (const char c : s)
    if (!((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'))) return false;
  return true;
}

ParseOutcome failWith(ParseOutcome outcome, std::string message) {
  outcome.ok = false;
  outcome.error = std::move(message);
  return outcome;
}

}  // namespace

ParseOutcome parseRequest(std::string_view line) {
  ParseOutcome outcome;
  json::Value root;
  try {
    root = json::parse(line);
  } catch (const Error& e) {
    return failWith(std::move(outcome), e.what());
  }
  if (!root.isObject())
    return failWith(std::move(outcome), "request must be a JSON object");

  // Pull the id first so every later rejection can still echo it.
  if (const json::Value* id = root.find("id")) {
    if (!id->isString())
      return failWith(std::move(outcome), "'id' must be a string");
    outcome.request.id = id->str;
  }

  const json::Value* op = root.find("op");
  if (op == nullptr)
    return failWith(std::move(outcome), "missing required field 'op'");
  if (!op->isString())
    return failWith(std::move(outcome), "'op' must be a string");
  Request& req = outcome.request;
  if (op->str == "predict") req.op = Op::Predict;
  else if (op->str == "flow") req.op = Op::Flow;
  else if (op->str == "predict_map") req.op = Op::PredictMap;
  else if (op->str == "status") req.op = Op::Status;
  else if (op->str == "metrics") req.op = Op::Metrics;
  else if (op->str == "shutdown") req.op = Op::Shutdown;
  else
    return failWith(std::move(outcome),
                    "unknown op '" + op->str +
                        "' (valid: predict, flow, predict_map, status, "
                        "metrics, shutdown)");

  const bool isWork = req.op == Op::Predict || req.op == Op::Flow ||
                      req.op == Op::PredictMap;
  for (const auto& [name, value] : root.object) {
    if (name == "id" || name == "op") continue;
    if (name == "design" && isWork) {
      if (!value.isString())
        return failWith(std::move(outcome), "'design' must be a string");
      req.design = value.str;
    } else if (name == "key" && req.op == Op::Flow) {
      if (!value.isString() || !isHexKey(value.str))
        return failWith(std::move(outcome),
                        "'key' must be a 16-char lowercase hex string");
      req.cacheKey = value.str;
    } else if (name == "seed" &&
               (req.op == Op::Flow || req.op == Op::PredictMap)) {
      if (!asU64(value, req.seed))
        return failWith(std::move(outcome),
                        "'seed' must be a non-negative integer");
    } else if (name == "top_k" && req.op == Op::Predict) {
      if (!asU64(value, req.topK) || req.topK == 0)
        return failWith(std::move(outcome),
                        "'top_k' must be a positive integer");
    } else if (name == "directives" && isWork) {
      if (!value.isBool())
        return failWith(std::move(outcome), "'directives' must be a bool");
      req.directives = value.boolean;
    } else {
      return failWith(std::move(outcome),
                      "unknown field '" + name + "' for op '" +
                          std::string(opName(req.op)) + "'");
    }
  }

  if (req.op == Op::Predict && req.design.empty())
    return failWith(std::move(outcome), "predict requires 'design'");
  if (req.op == Op::PredictMap && req.design.empty())
    return failWith(std::move(outcome), "predict_map requires 'design'");
  if (req.op == Op::Flow) {
    if (req.design.empty() == req.cacheKey.empty())
      return failWith(std::move(outcome),
                      "flow requires exactly one of 'design' or 'key'");
  }
  outcome.ok = true;
  return outcome;
}

std::string workKey(const Request& r) {
  std::ostringstream os;
  os << opName(r.op) << '|' << r.design << '|' << r.cacheKey << '|' << r.seed
     << '|' << r.topK << '|' << (r.directives ? 1 : 0);
  return std::move(os).str();
}

std::string responsePrefix(const Request& r) {
  if (r.id.empty()) return "{";
  return "{\"id\":\"" + json::escape(r.id) + "\",";
}

std::string errorBody(std::string_view message) {
  return "\"ok\":false,\"error\":\"" + json::escape(message) + "\"}";
}

std::string errorResponse(const Request& r, std::string_view message) {
  return responsePrefix(r) + errorBody(message);
}

}  // namespace hcp::serve
