// Request-scoped trace handles for hcp_serve.
//
// A RequestContext is created at admission and rides on the Pending entry
// through queueing, batch assembly, execution and response serialization.
// Every timestamp in it is taken on the *serving thread* — never on a pool
// worker — so under a logical tick clock (ServerConfig::tickNs) the stamp
// sequence depends only on the request stream, not the thread count. That
// single rule is what makes the latency histograms, the `metrics` op and
// the periodic snapshot byte-identical at --threads 1/2/4 (DESIGN.md §17).
//
// finishRequest() turns the stamps into:
//   - histogram observations: serve_request_latency_ms, serve_queue_wait_ms,
//     serve_exec_ms, serve_serialize_ms;
//   - a span tree of Chrome "X" complete events in the tracing ring —
//     serve/request plus serve/request/{queue_wait,batch_exec,serialize} —
//     all correlated by the request id via args.request.
//
// Phase semantics:
//   queue_wait  admission → batch-execution start; for requests resolved at
//               admission (status/metrics/errors) admission → serialize
//               start, i.e. the time spent queued behind work.
//   batch_exec  the request's batch's pool window (same for every request
//               deduped into that batch) — absent for admission-resolved
//               requests.
//   serialize   writing the response line.
#pragma once

#include <cstdint>
#include <string>

namespace hcp::serve {

struct RequestContext {
  std::string rid;  ///< correlation id: client id, or "#<seq>" when absent
  std::uint64_t admitNs = 0;
  std::uint64_t execStartNs = 0;      ///< 0 = resolved at admission
  std::uint64_t execEndNs = 0;
  std::uint64_t serializeStartNs = 0;
  std::uint64_t serializeEndNs = 0;
};

/// Observes the per-phase latency histograms and emits the request's span
/// tree into the tracing ring. Called once per request, on the serving
/// thread, right after its response line is written.
void finishRequest(const RequestContext& ctx);

}  // namespace hcp::serve
