#include "serve/request_context.hpp"

#include "support/telemetry.hpp"
#include "support/tracing.hpp"

namespace hcp::serve {

namespace tel = support::telemetry;
namespace tracing = support::tracing;

namespace {

double spanMs(std::uint64_t beginNs, std::uint64_t endNs) {
  if (endNs <= beginNs) return 0.0;
  return static_cast<double>(endNs - beginNs) / 1e6;
}

void emit(std::string_view path, std::uint64_t beginNs, std::uint64_t endNs,
          const std::string& rid) {
  tracing::recordComplete(path, beginNs, endNs > beginNs ? endNs - beginNs : 0,
                          rid);
}

}  // namespace

void finishRequest(const RequestContext& ctx) {
  const bool executed = ctx.execStartNs != 0;
  const std::uint64_t waitEndNs =
      executed ? ctx.execStartNs : ctx.serializeStartNs;

  tel::observe(tel::Histogram::ServeRequestLatencyMs,
               spanMs(ctx.admitNs, ctx.serializeEndNs));
  tel::observe(tel::Histogram::ServeQueueWaitMs,
               spanMs(ctx.admitNs, waitEndNs));
  tel::observe(tel::Histogram::ServeExecMs,
               executed ? spanMs(ctx.execStartNs, ctx.execEndNs) : 0.0);
  tel::observe(tel::Histogram::ServeSerializeMs,
               spanMs(ctx.serializeStartNs, ctx.serializeEndNs));

  if (!tracing::enabled()) return;
  emit("serve/request", ctx.admitNs, ctx.serializeEndNs, ctx.rid);
  emit("serve/request/queue_wait", ctx.admitNs, waitEndNs, ctx.rid);
  if (executed)
    emit("serve/request/batch_exec", ctx.execStartNs, ctx.execEndNs, ctx.rid);
  emit("serve/request/serialize", ctx.serializeStartNs, ctx.serializeEndNs,
       ctx.rid);
}

}  // namespace hcp::serve
