#include "serve/top.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#include <sstream>

#include "serve/fdio.hpp"
#include "support/error.hpp"
#include "support/json.hpp"
#include "support/table.hpp"

namespace hcp::serve::top {

namespace json = support::json;

std::string scrapeOnce(const std::string& socketPath) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0)
    throw Error("socket() failed: " + std::string(std::strerror(errno)));
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socketPath.size() >= sizeof addr.sun_path) {
    ::close(fd);
    throw Error("socket path too long: " + socketPath);
  }
  std::memcpy(addr.sun_path, socketPath.c_str(), socketPath.size() + 1);
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr);
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    const int err = errno;
    ::close(fd);
    throw Error("cannot connect to " + socketPath + ": " +
                std::strerror(err) + " (is hcp_serve --socket running?)");
  }

  FdStream stream(fd);
  // The trailing blank line is the protocol's flush marker — without it the
  // daemon would sit on the request waiting for more.
  stream.out << "{\"op\":\"metrics\"}\n\n";
  stream.out.flush();
  std::string line;
  const bool got = static_cast<bool>(std::getline(stream.in, line));
  ::close(fd);
  if (!got || line.empty())
    throw Error("daemon at " + socketPath + " hung up without answering");
  return line;
}

namespace {

double numberField(const json::Value& obj, const char* key) {
  const json::Value* v = obj.find(key);
  if (v == nullptr || !v->isNumber())
    throw Error(std::string("metrics response: missing numeric field '") +
                key + "'");
  return v->number;
}

std::uint64_t u64Field(const json::Value& obj, const char* key) {
  return static_cast<std::uint64_t>(numberField(obj, key));
}

bool boolField(const json::Value& obj, const char* key) {
  const json::Value* v = obj.find(key);
  if (v == nullptr || !v->isBool())
    throw Error(std::string("metrics response: missing bool field '") + key +
                "'");
  return v->boolean;
}

}  // namespace

Scrape parseMetricsResponse(std::string_view line) {
  const json::Value root = json::parse(line);
  if (!root.isObject())
    throw Error("metrics response is not a JSON object");
  const json::Value* ok = root.find("ok");
  if (ok == nullptr || !ok->isBool() || !ok->boolean) {
    const json::Value* err = root.find("error");
    throw Error("daemon refused the metrics request" +
                (err != nullptr && err->isString() ? ": " + err->str : ""));
  }

  Scrape s;
  const json::Value* tool = root.find("tool");
  if (tool != nullptr && tool->isString()) s.tool = tool->str;
  s.uptimeMs = numberField(root, "uptime_ms");
  s.requestsInFlight = u64Field(root, "requests_in_flight");
  s.served = u64Field(root, "served");
  s.queuePeak = u64Field(root, "queue_peak");
  s.qps = numberField(root, "qps");
  s.cacheHitRate = numberField(root, "cache_hit_rate");
  s.model = boolField(root, "model");
  s.flowcacheDegraded = boolField(root, "flowcache_degraded");

  const json::Value* counters = root.find("counters");
  if (counters == nullptr || !counters->isObject())
    throw Error("metrics response: missing 'counters' object");
  for (const auto& [name, value] : counters->object) {
    if (!value.isNumber())
      throw Error("metrics response: counter '" + name + "' is not a number");
    s.counters.emplace_back(name, static_cast<std::uint64_t>(value.number));
  }

  const json::Value* hists = root.find("histograms");
  if (hists == nullptr || !hists->isObject())
    throw Error("metrics response: missing 'histograms' object");
  for (const auto& [name, value] : hists->object) {
    if (!value.isObject())
      throw Error("metrics response: histogram '" + name +
                  "' is not an object");
    HistRow row;
    row.name = name;
    row.count = u64Field(value, "count");
    row.sum = numberField(value, "sum");
    row.min = numberField(value, "min");
    row.max = numberField(value, "max");
    row.p50 = numberField(value, "p50");
    row.p90 = numberField(value, "p90");
    row.p99 = numberField(value, "p99");
    s.histograms.push_back(std::move(row));
  }
  return s;
}

std::string renderDashboard(const Scrape& s) {
  std::ostringstream os;
  os << (s.tool.empty() ? "hcp_serve" : s.tool)
     << "  up " << fmt(s.uptimeMs / 1000.0, 1) << "s"
     << "  qps " << fmt(s.qps, 1)
     << "  served " << s.served
     << "  in-flight " << s.requestsInFlight
     << "  queue-peak " << s.queuePeak
     << "  cache-hit " << fmt(s.cacheHitRate * 100.0, 1) << "%"
     << "  model " << (s.model ? "yes" : "no");
  if (s.flowcacheDegraded) os << "  [flowcache DEGRADED]";
  os << "\n";

  Table t;
  t.setHeader({"histogram", "count", "p50", "p90", "p99", "max"});
  for (const HistRow& h : s.histograms) {
    if (h.count == 0) continue;
    t.addRow({h.name, std::to_string(h.count), fmt(h.p50, 3), fmt(h.p90, 3),
              fmt(h.p99, 3), fmt(h.max, 3)});
  }
  if (t.rowCount() == 0)
    os << "(no histogram observations yet)\n";
  else
    os << t.toAscii();
  return std::move(os).str();
}

}  // namespace hcp::serve::top
