// The remaining three Rosetta applications, evaluated by the paper "in an
// integrated function": BNN (binarized neural network, xnor + popcount
// layers), 3D Rendering (triangle rasterization with edge functions) and
// Optical Flow (windowed gradient / tensor computation with floating-point
// arithmetic).
#pragma once

#include <cstdint>

#include "apps/app_design.hpp"

namespace hcp::apps {

struct BnnConfig {
  std::uint32_t neurons = 128;     ///< output-layer loop trip count
  std::uint32_t wordsPerNeuron = 8;///< weight words per neuron (fully unrolled)
  std::uint32_t wordBits = 32;
  std::uint32_t unroll = 16;       ///< neuron-loop unroll
  bool withDirectives = true;
};

struct RenderingConfig {
  std::uint64_t triangles = 512;
  std::uint32_t tileSize = 4;      ///< fully-unrolled tileSize^2 pixel tests
  std::uint32_t unroll = 1;        ///< pipelined; DSP-bound, so no unroll
  bool withDirectives = true;
};

struct OpticalFlowConfig {
  std::uint64_t pixels = 1024;
  std::uint32_t windowTaps = 5;    ///< gradient taps per direction
  std::uint32_t unroll = 2;        ///< FP tensor math is DSP-hungry
  bool withDirectives = true;
};

AppDesign bnn(const BnnConfig& config = {});
AppDesign rendering3d(const RenderingConfig& config = {});
AppDesign opticalFlow(const OpticalFlowConfig& config = {});

/// The paper's combined design: BNN + 3D Rendering + Optical Flow under one
/// top function.
AppDesign visionCombined(const BnnConfig& bnnCfg = {},
                         const RenderingConfig& renderCfg = {},
                         const OpticalFlowConfig& flowCfg = {});

}  // namespace hcp::apps
