// Common shape of a benchmark design: an IR module plus the HLS directive
// set its authors tuned (the Rosetta suite ships optimized designs; the
// paper evaluates those directive-laden versions, §IV).
#pragma once

#include <memory>
#include <string>

#include "hls/directives.hpp"
#include "ir/module.hpp"

namespace hcp::apps {

struct AppDesign {
  std::string name;
  std::unique_ptr<ir::Module> module;
  hls::DirectiveSet directives;
};

}  // namespace hcp::apps
