#include "apps/registry.hpp"

#include <algorithm>

#include "apps/digit_spam.hpp"
#include "apps/face_detection.hpp"
#include "apps/vision_suite.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"

namespace hcp::apps {

const std::vector<std::string>& designNames() {
  static const std::vector<std::string> kNames = {
      "face_detection",    "face_detection_noinline",
      "face_detection_replicated",
      "digit_recognition", "spam_filter",
      "digit_spam",        "bnn",
      "rendering_3d",      "optical_flow",
      "vision_combined"};
  return kNames;
}

bool isKnownDesign(const std::string& name) {
  const auto& names = designNames();
  return std::find(names.begin(), names.end(), name) != names.end();
}

AppDesign makeDesign(const std::string& name, bool withDirectives) {
  auto withDir = [&](auto cfg) {
    cfg.withDirectives = withDirectives;
    return cfg;
  };
  if (name == "face_detection")
    return faceDetection(withDir(FaceDetectionConfig{}));
  if (name == "face_detection_noinline") {
    FaceDetectionConfig cfg;
    cfg.inlineClassifiers = false;
    cfg.withDirectives = withDirectives;
    return faceDetection(cfg);
  }
  if (name == "face_detection_replicated") {
    FaceDetectionConfig cfg;
    cfg.inlineClassifiers = false;
    cfg.replicateWindowArray = true;
    cfg.withDirectives = withDirectives;
    return faceDetection(cfg);
  }
  if (name == "digit_recognition")
    return digitRecognition(withDir(DigitRecognitionConfig{}));
  if (name == "spam_filter") return spamFilter(withDir(SpamFilterConfig{}));
  if (name == "digit_spam") return digitSpamCombined();
  if (name == "bnn") return bnn(withDir(BnnConfig{}));
  if (name == "rendering_3d") return rendering3d(withDir(RenderingConfig{}));
  if (name == "optical_flow") return opticalFlow(withDir(OpticalFlowConfig{}));
  if (name == "vision_combined") return visionCombined();
  throw Error("unknown design '" + name + "' (valid: " +
              join(designNames(), ", ") + ")");
}

}  // namespace hcp::apps
