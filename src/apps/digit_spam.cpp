#include "apps/digit_spam.hpp"

#include "ir/builder.hpp"
#include "ir/verifier.hpp"

namespace hcp::apps {

using ir::Builder;
using ir::Function;
using ir::Module;
using ir::OpId;

namespace {

/// KNN digit recognizer body: per training sample, Hamming distance via
/// xor + popcount, then a compare/swap chain maintaining the k nearest.
std::unique_ptr<Function> buildDigitRec(const DigitRecognitionConfig& cfg) {
  auto fn = std::make_unique<Function>("digitrec");
  Builder b(*fn);
  b.atLine(200);
  const ir::PortId testIn = b.inPort("test_digit", cfg.wordBits);
  const ir::PortId labelOut = b.outPort("label", 4);
  const ir::ArrayId training =
      b.array("training_set", cfg.trainingSize, cfg.wordBits);
  const ir::ArrayId knnDist = b.array("knn_dist", cfg.knn, 8);
  const ir::ArrayId knnLabel = b.array("knn_label", cfg.knn, 4);

  const OpId test = b.readPort(testIn);

  b.atLine(210);
  b.beginLoop("distance", cfg.trainingSize);
  {
    const OpId idx = b.constant(1, 16);
    const OpId sample = b.load(training, idx);
    b.atLine(211);
    const OpId diff = b.xor_(test, sample);
    const OpId dist = b.popcount(diff);
    // Compare against the current worst of the k nearest and insert.
    b.atLine(212);
    const OpId worstIdx = b.constant(static_cast<std::int64_t>(cfg.knn) - 1,
                                     4);
    const OpId worst = b.load(knnDist, worstIdx);
    const OpId closer = b.icmpLt(b.zext(dist, 8), worst);
    const OpId newDist = b.select(closer, b.zext(dist, 8), worst);
    b.store(knnDist, worstIdx, newDist);
    const OpId lbl = b.trunc(sample, 4);
    const OpId curLbl = b.load(knnLabel, worstIdx);
    const OpId newLbl = b.select(closer, lbl, curLbl);
    b.store(knnLabel, worstIdx, newLbl);
  }
  b.endLoop();

  // Vote: compare/accumulate over the k nearest labels (small sort network).
  b.atLine(220);
  std::vector<OpId> labels;
  for (std::uint32_t k = 0; k < cfg.knn; ++k) {
    labels.push_back(b.load(knnLabel, b.constant(k, 4)));
  }
  b.atLine(221);
  OpId vote = labels[0];
  for (std::uint32_t k = 1; k < cfg.knn; ++k) {
    const OpId eq = b.icmpEq(labels[k], vote);
    vote = b.select(eq, labels[k], b.min(vote, labels[k]));
  }
  b.writePort(labelOut, vote);
  b.ret();
  return fn;
}

/// SGD spam filter body: dot product over the feature vector, a shift-based
/// sigmoid approximation, then the weight-update sweep.
std::unique_ptr<Function> buildSpam(const SpamFilterConfig& cfg) {
  auto fn = std::make_unique<Function>("spam_filter");
  Builder b(*fn);
  b.atLine(300);
  const ir::PortId featureIn = b.inPort("feature", 16);
  const ir::PortId labelIn = b.inPort("label", 1);
  const ir::PortId flagOut = b.outPort("is_spam", 1);
  const ir::ArrayId weights = b.array("weights", cfg.numFeatures, 16);
  const ir::ArrayId features = b.array("feature_vec", cfg.numFeatures, 16);

  // Stream features in.
  b.atLine(310);
  b.beginLoop("read_features", cfg.numFeatures);
  {
    const OpId f = b.readPort(featureIn);
    b.store(features, b.constant(0, 16), f);
  }
  b.endLoop();

  // Dot product.
  b.atLine(320);
  b.beginLoop("dot", cfg.numFeatures);
  OpId partial;
  {
    const OpId idx = b.constant(2, 16);
    const OpId w = b.load(weights, idx);
    const OpId x = b.load(features, idx);
    const OpId prod = b.mul(b.trunc(w, 9), b.trunc(x, 9));  // 18-bit: 1 DSP
    partial = b.trunc(prod, 18);
  }
  b.endLoop();

  // Sigmoid approximation + decision.
  b.atLine(330);
  const OpId scaled = b.lshr(partial, b.constant(4, 3));
  const OpId biased = b.add(scaled, b.constant(17, 8));
  const OpId spam = b.icmpGt(biased, b.constant(128, 16));

  // SGD update sweep: w += lr * err * x.
  b.atLine(340);
  const OpId label = b.readPort(labelIn);
  const OpId err = b.sub(b.zext(label, 8), b.zext(spam, 8));
  b.beginLoop("update", cfg.numFeatures);
  {
    const OpId idx = b.constant(3, 16);
    const OpId x = b.load(features, idx);
    const OpId grad = b.mul(b.trunc(x, 8), err);
    const OpId lr = b.constant(2, 3);
    const OpId step = b.lshr(grad, lr);
    const OpId w = b.load(weights, idx);
    const OpId updated = b.add(w, b.trunc(step, 16));
    b.store(weights, idx, updated);
  }
  b.endLoop();

  b.atLine(350);
  b.writePort(flagOut, spam);
  b.ret();
  return fn;
}

void addDigitDirectives(AppDesign& design,
                        const DigitRecognitionConfig& cfg) {
  if (!cfg.withDirectives) return;
  design.directives.unroll("digitrec", "distance", cfg.unroll)
      .pipeline("digitrec", "distance", 1)
      .partition("digitrec", "training_set", cfg.unroll)
      .partitionComplete("digitrec", "knn_dist")
      .partitionComplete("digitrec", "knn_label");
}

void addSpamDirectives(AppDesign& design, const SpamFilterConfig& cfg) {
  if (!cfg.withDirectives) return;
  design.directives.unroll("spam_filter", "dot", cfg.unroll)
      .pipeline("spam_filter", "dot", 1)
      .unroll("spam_filter", "update", cfg.unroll)
      .pipeline("spam_filter", "update", 1)
      .pipeline("spam_filter", "read_features", 1)
      .partition("spam_filter", "weights", cfg.partition)
      .partition("spam_filter", "feature_vec", cfg.partition);
}

}  // namespace

AppDesign digitRecognition(const DigitRecognitionConfig& cfg) {
  AppDesign design;
  design.name = "digit_recognition";
  design.module = std::make_unique<Module>("digit_recognition");
  design.module->addFunction(buildDigitRec(cfg));
  design.module->setTop("digitrec");
  ir::verifyOrThrow(*design.module);
  addDigitDirectives(design, cfg);
  return design;
}

AppDesign spamFilter(const SpamFilterConfig& cfg) {
  AppDesign design;
  design.name = "spam_filter";
  design.module = std::make_unique<Module>("spam_filter");
  design.module->addFunction(buildSpam(cfg));
  design.module->setTop("spam_filter");
  ir::verifyOrThrow(*design.module);
  addSpamDirectives(design, cfg);
  return design;
}

AppDesign digitSpamCombined(const DigitRecognitionConfig& digit,
                            const SpamFilterConfig& spam) {
  AppDesign design;
  design.name = "digit_spam";
  design.module = std::make_unique<Module>("digit_spam");
  design.module->addFunction(buildDigitRec(digit));
  design.module->addFunction(buildSpam(spam));

  auto top = std::make_unique<Function>("digit_spam_top");
  {
    Builder b(*top);
    b.atLine(400);
    const ir::PortId digitIn = b.inPort("digit_in", digit.wordBits);
    const ir::PortId featureIn = b.inPort("feature_in", 16);
    const ir::PortId labelIn = b.inPort("label_in", 1);
    const ir::PortId out = b.outPort("combined_out", 8);

    const OpId d = b.readPort(digitIn);
    const OpId f = b.readPort(featureIn);
    const OpId l = b.readPort(labelIn);
    b.atLine(401);
    const OpId digitLabel = b.call("digitrec", {d}, 4);
    b.atLine(402);
    const OpId spamFlag = b.call("spam_filter", {f, l}, 1);
    b.atLine(403);
    const OpId packed = b.concat(b.zext(spamFlag, 4), digitLabel);
    b.writePort(out, packed);
    b.ret();
  }
  design.module->addFunction(std::move(top));
  design.module->setTop("digit_spam_top");
  ir::verifyOrThrow(*design.module);
  addDigitDirectives(design, digit);
  addSpamDirectives(design, spam);
  return design;
}

}  // namespace hcp::apps
