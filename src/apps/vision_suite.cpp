#include "apps/vision_suite.hpp"

#include "ir/builder.hpp"
#include "ir/verifier.hpp"

namespace hcp::apps {

using ir::Builder;
using ir::Function;
using ir::Module;
using ir::OpId;

namespace {

std::unique_ptr<Function> buildBnn(const BnnConfig& cfg) {
  auto fn = std::make_unique<Function>("bnn");
  Builder b(*fn);
  b.atLine(500);
  const ir::PortId actIn = b.inPort("activations", cfg.wordBits);
  const ir::PortId bitsOut = b.outPort("out_bits", 8);
  const ir::ArrayId weightsArr = b.array(
      "bnn_weights",
      static_cast<std::uint64_t>(cfg.neurons) * cfg.wordsPerNeuron,
      cfg.wordBits);

  const OpId act = b.readPort(actIn);

  b.atLine(510);
  b.beginLoop("neurons", cfg.neurons);
  OpId bit;
  {
    // Per-neuron xnor-popcount over the (fully unrolled) weight words.
    std::vector<OpId> pops;
    for (std::uint32_t w = 0; w < cfg.wordsPerNeuron; ++w) {
      b.atLine(511 + static_cast<std::int32_t>(w));
      const OpId idx = b.constant(w, 16);
      const OpId word = b.load(weightsArr, idx);
      const OpId xnor = b.not_(b.xor_(act, word));
      pops.push_back(b.popcount(xnor));
    }
    b.atLine(520);
    std::vector<OpId> sums = pops;
    while (sums.size() > 1) {
      std::vector<OpId> next;
      for (std::size_t i = 0; i + 1 < sums.size(); i += 2)
        next.push_back(b.add(b.zext(sums[i], 10), b.zext(sums[i + 1], 10)));
      if (sums.size() % 2) next.push_back(b.zext(sums.back(), 10));
      sums = std::move(next);
    }
    b.atLine(521);
    const OpId threshold =
        b.constant(static_cast<std::int64_t>(cfg.wordsPerNeuron) *
                       cfg.wordBits / 2,
                   10);
    bit = b.icmpGt(sums[0], threshold);
  }
  b.endLoop();
  b.atLine(530);
  b.writePort(bitsOut, b.zext(bit, 8));
  b.ret();
  return fn;
}

std::unique_ptr<Function> buildRendering(const RenderingConfig& cfg) {
  auto fn = std::make_unique<Function>("rendering");
  Builder b(*fn);
  b.atLine(600);
  const ir::PortId triIn = b.inPort("triangle", 48);  // packed x0y0x1y1x2y2
  const ir::PortId fragOut = b.outPort("fragments", 16);
  const ir::ArrayId zbuf = b.array("z_buffer", 256, 8);

  b.atLine(610);
  b.beginLoop("triangles", cfg.triangles);
  OpId frags;
  {
    const OpId tri = b.readPort(triIn);
    // Unpack vertices.
    const OpId x0 = b.extract(tri, 0, 8), y0 = b.extract(tri, 8, 8);
    const OpId x1 = b.extract(tri, 16, 8), y1 = b.extract(tri, 24, 8);
    const OpId x2 = b.extract(tri, 32, 8), y2 = b.extract(tri, 40, 8);
    b.atLine(611);
    // Edge-function coefficients (dx/dy per edge).
    const OpId a0 = b.sub(y1, y0), b0 = b.sub(x0, x1);
    const OpId a1 = b.sub(y2, y1), b1 = b.sub(x1, x2);
    const OpId a2 = b.sub(y0, y2), b2 = b.sub(x2, x0);
    b.atLine(612);
    // Fully unrolled tileSize^2 coverage tests.
    std::vector<OpId> covered;
    for (std::uint32_t py = 0; py < cfg.tileSize; ++py) {
      for (std::uint32_t px = 0; px < cfg.tileSize; ++px) {
        b.atLine(613 + static_cast<std::int32_t>(py));
        const OpId cx = b.constant(px, 8);
        const OpId cy = b.constant(py, 8);
        const OpId e0 = b.add(b.mul(a0, cx), b.mul(b0, cy));
        const OpId e1 = b.add(b.mul(a1, cx), b.mul(b1, cy));
        const OpId e2 = b.add(b.mul(a2, cx), b.mul(b2, cy));
        const OpId zero = b.constant(0, 16);
        const OpId in0 = b.icmpGe(e0, zero);
        const OpId in1 = b.icmpGe(e1, zero);
        const OpId in2 = b.icmpGe(e2, zero);
        covered.push_back(b.and_(b.and_(in0, in1), in2));
      }
    }
    b.atLine(620);
    std::vector<OpId> counts;
    for (OpId c : covered) counts.push_back(b.zext(c, 16));
    while (counts.size() > 1) {
      std::vector<OpId> next;
      for (std::size_t i = 0; i + 1 < counts.size(); i += 2)
        next.push_back(b.add(counts[i], counts[i + 1]));
      if (counts.size() % 2) next.push_back(counts.back());
      counts = std::move(next);
    }
    frags = counts[0];
    // Depth-test store for the first covered pixel.
    b.atLine(621);
    const OpId zIdx = b.constant(1, 8);
    const OpId depth = b.load(zbuf, zIdx);
    const OpId nearer = b.icmpLt(b.trunc(frags, 8), depth);
    const OpId newZ = b.select(nearer, b.trunc(frags, 8), depth);
    b.store(zbuf, zIdx, newZ);
  }
  b.endLoop();
  b.atLine(630);
  b.writePort(fragOut, frags);
  b.ret();
  return fn;
}

std::unique_ptr<Function> buildOpticalFlow(const OpticalFlowConfig& cfg) {
  auto fn = std::make_unique<Function>("optical_flow");
  Builder b(*fn);
  b.atLine(700);
  const ir::PortId frameIn = b.inPort("frame_px", 16);
  const ir::PortId flowOut = b.outPort("flow", 32);
  const ir::ArrayId lineBuf = b.array("line_buffer", 128, 16);

  b.atLine(710);
  b.beginLoop("pixels", cfg.pixels);
  OpId flow;
  {
    const OpId px = b.readPort(frameIn);
    b.store(lineBuf, b.constant(0, 8), px);
    // Windowed gradients (taps at synthesis-time offsets).
    std::vector<OpId> gx, gy;
    for (std::uint32_t t = 0; t < cfg.windowTaps; ++t) {
      b.atLine(711 + static_cast<std::int32_t>(t));
      const OpId left = b.load(lineBuf, b.constant(t, 8));
      const OpId right = b.load(lineBuf, b.constant(t + 2, 8));
      gx.push_back(b.absdiff(right, left));
      gy.push_back(b.absdiff(b.load(lineBuf, b.constant(t + 1, 8)), px));
    }
    b.atLine(720);
    // Structure-tensor terms in floating point (FP units on 7-series map to
    // DSP + fabric, as in the Rosetta implementation).
    OpId ixx = b.fmul(gx[0], gx[0]);
    OpId iyy = b.fmul(gy[0], gy[0]);
    OpId ixy = b.fmul(gx[0], gy[0]);
    for (std::uint32_t t = 1; t < cfg.windowTaps; ++t) {
      ixx = b.fadd(ixx, b.fmul(gx[t], gx[t]));
      iyy = b.fadd(iyy, b.fmul(gy[t], gy[t]));
      ixy = b.fadd(ixy, b.fmul(gx[t], gy[t]));
    }
    b.atLine(730);
    const OpId det = b.fsub(b.fmul(ixx, iyy), b.fmul(ixy, ixy));
    const OpId trace = b.fadd(ixx, iyy);
    const OpId response = b.fdiv(det, trace);
    flow = b.zext(b.trunc(response, 16), 32);
  }
  b.endLoop();
  b.atLine(740);
  b.writePort(flowOut, flow);
  b.ret();
  return fn;
}

void addBnnDirectives(AppDesign& d, const BnnConfig& cfg) {
  if (!cfg.withDirectives) return;
  d.directives.unroll("bnn", "neurons", cfg.unroll)
      .pipeline("bnn", "neurons", 1)
      .partition("bnn", "bnn_weights", cfg.unroll * cfg.wordsPerNeuron);
}

void addRenderingDirectives(AppDesign& d, const RenderingConfig& cfg) {
  if (!cfg.withDirectives) return;
  d.directives.unroll("rendering", "triangles", cfg.unroll)
      .pipeline("rendering", "triangles", 2)
      .partition("rendering", "z_buffer", 8);
}

void addFlowDirectives(AppDesign& d, const OpticalFlowConfig& cfg) {
  if (!cfg.withDirectives) return;
  d.directives.unroll("optical_flow", "pixels", cfg.unroll)
      .pipeline("optical_flow", "pixels", 2)
      .partition("optical_flow", "line_buffer", 16);
}

}  // namespace

AppDesign bnn(const BnnConfig& cfg) {
  AppDesign d;
  d.name = "bnn";
  d.module = std::make_unique<Module>("bnn");
  d.module->addFunction(buildBnn(cfg));
  d.module->setTop("bnn");
  ir::verifyOrThrow(*d.module);
  addBnnDirectives(d, cfg);
  return d;
}

AppDesign rendering3d(const RenderingConfig& cfg) {
  AppDesign d;
  d.name = "rendering_3d";
  d.module = std::make_unique<Module>("rendering_3d");
  d.module->addFunction(buildRendering(cfg));
  d.module->setTop("rendering");
  ir::verifyOrThrow(*d.module);
  addRenderingDirectives(d, cfg);
  return d;
}

AppDesign opticalFlow(const OpticalFlowConfig& cfg) {
  AppDesign d;
  d.name = "optical_flow";
  d.module = std::make_unique<Module>("optical_flow");
  d.module->addFunction(buildOpticalFlow(cfg));
  d.module->setTop("optical_flow");
  ir::verifyOrThrow(*d.module);
  addFlowDirectives(d, cfg);
  return d;
}

AppDesign visionCombined(const BnnConfig& bnnCfg,
                         const RenderingConfig& renderCfg,
                         const OpticalFlowConfig& flowCfg) {
  AppDesign d;
  d.name = "vision_combined";
  d.module = std::make_unique<Module>("vision_combined");
  d.module->addFunction(buildBnn(bnnCfg));
  d.module->addFunction(buildRendering(renderCfg));
  d.module->addFunction(buildOpticalFlow(flowCfg));

  auto top = std::make_unique<Function>("vision_top");
  {
    Builder b(*top);
    b.atLine(800);
    const ir::PortId actIn = b.inPort("activations", bnnCfg.wordBits);
    const ir::PortId triIn = b.inPort("triangle", 48);
    const ir::PortId frameIn = b.inPort("frame_px", 16);
    const ir::PortId out = b.outPort("vision_out", 32);

    const OpId act = b.readPort(actIn);
    const OpId tri = b.readPort(triIn);
    const OpId frame = b.readPort(frameIn);
    b.atLine(801);
    const OpId bits = b.call("bnn", {act}, 8);
    b.atLine(802);
    const OpId frags = b.call("rendering", {tri}, 16);
    b.atLine(803);
    const OpId flow = b.call("optical_flow", {frame}, 32);
    b.atLine(804);
    const OpId mixed =
        b.add(flow, b.zext(b.add(b.zext(bits, 16), frags), 32));
    b.writePort(out, mixed);
    b.ret();
  }
  d.module->addFunction(std::move(top));
  d.module->setTop("vision_top");
  ir::verifyOrThrow(*d.module);
  addBnnDirectives(d, bnnCfg);
  addRenderingDirectives(d, renderCfg);
  addFlowDirectives(d, flowCfg);
  return d;
}

}  // namespace hcp::apps
