// Face Detection (Rosetta): sliding-window Viola-Jones-style cascade.
//
// Structure mirrors the paper's description: a window loop feeds a cascade
// classifier whose stages each run several weak classifiers over values from
// a shared, completely-partitioned image-window array; the stage results are
// summed and compared (the congestion hotspot of §IV-C). The optimized
// directive set inlines the cascade and every classifier, unrolls the window
// loop and completely partitions the window array — reproducing Table I's
// "with directives" implementation. Config switches reproduce the case-study
// steps: noInline (step 1) and replicateWindowArray (step 2).
#pragma once

#include <cstdint>

#include "apps/app_design.hpp"

namespace hcp::apps {

struct FaceDetectionConfig {
  std::uint32_t stages = 8;           ///< cascade stages
  std::uint32_t weakPerStage = 4;     ///< weak classifiers per stage
  std::uint32_t samplesPerWeak = 4;   ///< window pixels read per weak
  std::uint32_t windowSize = 256;     ///< shared window array words
  std::uint64_t fillTrip = 256;       ///< window-fill loop trip count
  std::uint64_t windowTrip = 1024;    ///< sliding-window loop trip count

  /// Optimized-directive knobs (the Rosetta configuration).
  bool withDirectives = true;         ///< Table I "with/without directives"
  std::uint32_t windowUnroll = 2;     ///< window-loop unroll factor
  std::uint32_t fillUnroll = 8;

  /// Case-study steps (§IV-C / Table VI).
  bool inlineClassifiers = true;      ///< false = "Not Inline" step
  bool replicateWindowArray = false;  ///< true = "Replication" step
  std::uint32_t replicationCopies = 4;
};

/// Builds the design; `module` verifies clean.
AppDesign faceDetection(const FaceDetectionConfig& config = {});

}  // namespace hcp::apps
