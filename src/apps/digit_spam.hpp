// Digit Recognition (KNN over binarized digits, xor + popcount) and Spam
// Filtering (SGD logistic regression, dot products + weight updates), the
// pair the paper evaluates "invoked by the same function" (§IV). Both are
// structured after their Rosetta counterparts and carry the suite's
// directive sets (pipelined, heavily unrolled inner loops over partitioned
// arrays).
#pragma once

#include <cstdint>

#include "apps/app_design.hpp"

namespace hcp::apps {

struct DigitRecognitionConfig {
  std::uint64_t trainingSize = 512;   ///< training-set loop trip count
  std::uint32_t unroll = 32;          ///< distance-loop unroll factor
  std::uint32_t knn = 8;              ///< neighbours tracked by the vote
  std::uint32_t wordBits = 49;        ///< one digit = 7x7 binarized pixels
  bool withDirectives = true;
};

struct SpamFilterConfig {
  std::uint64_t numFeatures = 1024;   ///< feature-vector length
  std::uint32_t unroll = 32;          ///< dot-product / update unroll
  std::uint32_t partition = 32;       ///< weight-array banks
  bool withDirectives = true;
};

/// Individual designs (used by tests and the ablation benches).
AppDesign digitRecognition(const DigitRecognitionConfig& config = {});
AppDesign spamFilter(const SpamFilterConfig& config = {});

/// The paper's combined design: one top invoking both kernels.
AppDesign digitSpamCombined(const DigitRecognitionConfig& digit = {},
                            const SpamFilterConfig& spam = {});

}  // namespace hcp::apps
