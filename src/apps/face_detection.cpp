#include "apps/face_detection.hpp"

#include <algorithm>

#include "ir/builder.hpp"
#include "ir/verifier.hpp"

namespace hcp::apps {

using ir::Builder;
using ir::Function;
using ir::Module;
using ir::OpId;

namespace {

/// Weak classifier: weighted sum of `samples` window values against a
/// threshold. Returns the vote (selected weight or zero).
std::unique_ptr<Function> buildWeak(const FaceDetectionConfig& cfg,
                                    const std::string& name) {
  auto fn = std::make_unique<Function>(name);
  Builder b(*fn);
  b.atLine(10);
  std::vector<ir::PortId> in;
  for (std::uint32_t s = 0; s < cfg.samplesPerWeak; ++s)
    in.push_back(b.inPort("px" + std::to_string(s), 16));
  const ir::PortId out = b.outPort("vote", 16);

  // Haar-feature weights stay narrow so the multipliers map to LUTs, as the
  // fixed-point Rosetta implementation does.
  std::vector<OpId> terms;
  for (std::uint32_t s = 0; s < cfg.samplesPerWeak; ++s) {
    b.atLine(11 + static_cast<std::int32_t>(s));
    const OpId px = b.readPort(in[s]);
    const OpId narrowed = b.trunc(px, 6);
    const OpId weight =
        b.constant(3 + static_cast<std::int64_t>(s) * 2, 4);
    terms.push_back(b.mul(narrowed, weight));  // 10-bit: LUT multiplier
  }
  b.atLine(16);
  while (terms.size() > 1) {
    std::vector<OpId> next;
    for (std::size_t i = 0; i + 1 < terms.size(); i += 2)
      next.push_back(b.add(terms[i], terms[i + 1]));
    if (terms.size() % 2) next.push_back(terms.back());
    terms = std::move(next);
  }
  b.atLine(17);
  const OpId threshold = b.constant(4096, 16);
  const OpId hit = b.icmpGt(terms[0], threshold);
  const OpId passWeight = b.constant(211, 16);
  const OpId zero = b.constant(0, 16);
  const OpId vote = b.select(hit, passWeight, zero);
  b.writePort(out, vote);
  b.ret();
  return fn;
}

/// Stage classifier: `weakPerStage` weak classifiers over rotating subsets
/// of the stage inputs; votes are summed and thresholded.
std::unique_ptr<Function> buildStage(const FaceDetectionConfig& cfg,
                                     std::uint32_t stageInputs,
                                     const std::string& name,
                                     std::uint32_t stageIndex) {
  auto fn = std::make_unique<Function>(name);
  Builder b(*fn);
  b.atLine(30);
  std::vector<ir::PortId> in;
  for (std::uint32_t s = 0; s < stageInputs; ++s)
    in.push_back(b.inPort("w" + std::to_string(s), 16));
  const ir::PortId out = b.outPort("stage_sum", 16);

  std::vector<OpId> inputs;
  for (ir::PortId p : in) inputs.push_back(b.readPort(p));

  std::vector<OpId> votes;
  for (std::uint32_t w = 0; w < cfg.weakPerStage; ++w) {
    b.atLine(32 + static_cast<std::int32_t>(w));
    std::vector<OpId> args;
    for (std::uint32_t s = 0; s < cfg.samplesPerWeak; ++s)
      args.push_back(inputs[(w + s) % inputs.size()]);
    votes.push_back(
        b.call("weak_" + std::to_string(stageIndex), args, 16));
  }
  b.atLine(38);
  while (votes.size() > 1) {
    std::vector<OpId> next;
    for (std::size_t i = 0; i + 1 < votes.size(); i += 2)
      next.push_back(b.add(votes[i], votes[i + 1]));
    if (votes.size() % 2) next.push_back(votes.back());
    votes = std::move(next);
  }
  b.atLine(39);
  const OpId stageThresh = b.constant(300, 16);
  const OpId pass = b.icmpGt(votes[0], stageThresh);
  const OpId sum = b.select(pass, votes[0], b.constant(0, 16));
  b.writePort(out, sum);
  b.ret();
  return fn;
}

/// Cascade part: runs `numStages` stage classifiers over rotating subsets of
/// its inputs, then sums and compares the stage results — the region the
/// paper's model flags as congested in the baseline (§IV-C).
std::unique_ptr<Function> buildCascade(std::uint32_t numStages,
                                       std::uint32_t stageFirst,
                                       std::uint32_t cascadeInputs,
                                       std::uint32_t stageInputs,
                                       const std::string& name) {
  auto fn = std::make_unique<Function>(name);
  Builder b(*fn);
  b.atLine(50);
  std::vector<ir::PortId> in;
  for (std::uint32_t s = 0; s < cascadeInputs; ++s)
    in.push_back(b.inPort("px" + std::to_string(s), 16));
  const ir::PortId out = b.outPort("score", 16);

  std::vector<OpId> inputs;
  for (ir::PortId p : in) inputs.push_back(b.readPort(p));

  std::vector<OpId> stageSums;
  for (std::uint32_t s = 0; s < numStages; ++s) {
    b.atLine(52 + static_cast<std::int32_t>(s));
    std::vector<OpId> args;
    for (std::uint32_t k = 0; k < stageInputs; ++k)
      args.push_back(inputs[(s + k) % inputs.size()]);
    stageSums.push_back(
        b.call("stage_" + std::to_string(stageFirst + s), args, 16));
  }

  // Sum-and-compare of all stage results: the baseline hotspot (line 70).
  b.atLine(70);
  std::vector<OpId> sums = stageSums;
  while (sums.size() > 1) {
    std::vector<OpId> next;
    for (std::size_t i = 0; i + 1 < sums.size(); i += 2)
      next.push_back(b.add(sums[i], sums[i + 1]));
    if (sums.size() % 2) next.push_back(sums.back());
    sums = std::move(next);
  }
  b.atLine(71);
  OpId verdict = sums[0];
  // Per-stage early-exit comparisons all feed the final select chain.
  for (std::uint32_t s = 0; s < numStages; ++s) {
    const OpId thresh =
        b.constant(100 + static_cast<std::int64_t>(s) * 10, 16);
    const OpId ok = b.icmpGt(stageSums[s], thresh);
    verdict = b.select(ok, verdict, b.constant(0, 16));
  }
  b.writePort(out, verdict);
  b.ret();
  return fn;
}

}  // namespace

AppDesign faceDetection(const FaceDetectionConfig& cfg) {
  AppDesign design;
  design.name = "face_detection";
  design.module = std::make_unique<Module>("face_detection");

  const std::uint32_t parts =
      cfg.replicateWindowArray ? std::max(1u, cfg.replicationCopies) : 1;
  const std::uint32_t stagesPerPart = std::max(1u, cfg.stages / parts);
  const std::uint32_t cascadeInputs = 16;
  const std::uint32_t stageInputs = 8;

  // The cascade is a chain of *distinct* stage classifiers (stage_0,
  // stage_1, ...), each called exactly once — matching the Rosetta design,
  // where "Not Inline" keeps per-stage modules without losing parallelism.
  const std::uint32_t totalStages = stagesPerPart * parts;
  for (std::uint32_t s = 0; s < totalStages; ++s) {
    design.module->addFunction(buildWeak(cfg, "weak_" + std::to_string(s)));
    design.module->addFunction(
        buildStage(cfg, stageInputs, "stage_" + std::to_string(s), s));
  }
  for (std::uint32_t p = 0; p < parts; ++p) {
    design.module->addFunction(buildCascade(
        stagesPerPart, p * stagesPerPart, cascadeInputs, stageInputs,
        parts == 1 ? "cascade_classifier"
                   : "cascade_part" + std::to_string(p)));
  }

  // --- top ---------------------------------------------------------------
  auto top = std::make_unique<Function>("face_detect");
  {
    Builder b(*top);
    b.atLine(100);
    const ir::PortId pixelIn = b.inPort("pixel", 16);
    const ir::PortId resultOut = b.outPort("result", 32);

    // One window array per cascade part ("Replication" gives each group of
    // stages its own copy of the shared input data).
    std::vector<ir::ArrayId> windows;
    for (std::uint32_t p = 0; p < parts; ++p) {
      b.atLine(101 + static_cast<std::int32_t>(p));
      windows.push_back(b.array(parts == 1 ? "window"
                                           : "window_rep" +
                                                 std::to_string(p),
                                cfg.windowSize, 16));
    }

    // Window-fill loop: preprocess the incoming pixel and store it into
    // every copy at a (synthesis-time) position.
    b.atLine(110);
    b.beginLoop("fill", cfg.fillTrip);
    {
      const OpId px = b.readPort(pixelIn);
      b.atLine(111);
      const OpId bias = b.constant(128, 16);
      const OpId shifted = b.sub(px, bias);
      const OpId gain = b.constant(3, 4);
      const OpId scaled = b.mul(shifted, gain);
      const OpId clamped = b.trunc(b.max(scaled, b.constant(0, 16)), 16);
      for (std::uint32_t p = 0; p < parts; ++p) {
        const OpId idx = b.constant(
            static_cast<std::int64_t>(p) * 7 % cfg.windowSize, 16);
        b.atLine(112);
        b.store(windows[p], idx, clamped);
      }
    }
    b.endLoop();

    // Sliding-window loop: sample the window array(s) and run the cascade
    // part(s); verdicts accumulate into the result.
    b.atLine(120);
    b.beginLoop("windows", cfg.windowTrip);
    std::vector<OpId> verdicts;
    for (std::uint32_t p = 0; p < parts; ++p) {
      b.atLine(121 + static_cast<std::int32_t>(p));
      std::vector<OpId> samples;
      for (std::uint32_t s = 0; s < cascadeInputs; ++s) {
        const OpId idx = b.constant(
            (static_cast<std::int64_t>(s) * 17 + p * 5) % cfg.windowSize,
            16);
        samples.push_back(b.load(windows[p], idx));
      }
      verdicts.push_back(
          b.call(parts == 1 ? "cascade_classifier"
                            : "cascade_part" + std::to_string(p),
                 samples, 16));
    }
    b.atLine(130);
    OpId score = verdicts[0];
    for (std::uint32_t p = 1; p < parts; ++p)
      score = b.add(score, verdicts[p]);
    const OpId wide = b.zext(score, 32);
    b.endLoop();
    b.atLine(131);
    b.writePort(resultOut, wide);
    b.ret();
  }
  design.module->addFunction(std::move(top));
  design.module->setTop("face_detect");
  ir::verifyOrThrow(*design.module);

  // --- directives ----------------------------------------------------------
  if (cfg.withDirectives) {
    if (cfg.inlineClassifiers) {
      for (std::uint32_t s = 0; s < totalStages; ++s) {
        design.directives.inlineFunction("weak_" + std::to_string(s));
        design.directives.inlineFunction("stage_" + std::to_string(s));
      }
      for (std::uint32_t p = 0; p < parts; ++p)
        design.directives.inlineFunction(
            parts == 1 ? "cascade_classifier"
                       : "cascade_part" + std::to_string(p));
    }
    design.directives.unroll("face_detect", "fill", cfg.fillUnroll)
        .pipeline("face_detect", "fill", 1)
        .unroll("face_detect", "windows", cfg.windowUnroll);
    for (std::uint32_t p = 0; p < parts; ++p) {
      design.directives.partitionComplete(
          "face_detect",
          parts == 1 ? "window" : "window_rep" + std::to_string(p));
    }
  }
  return design;
}

}  // namespace hcp::apps
