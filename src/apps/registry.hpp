// Name registry of the bundled benchmark designs.
//
// hcp_cli, hcp_serve and the benches all need "design name -> AppDesign";
// keeping the mapping here (instead of private to each binary) means the
// serve protocol, the CLI and the docs can never drift apart on what a
// valid design name is.
#pragma once

#include <string>
#include <vector>

#include "apps/app_design.hpp"

namespace hcp::apps {

/// The bundled design names, in listing order (hcp_cli list prints these).
const std::vector<std::string>& designNames();

bool isKnownDesign(const std::string& name);

/// Builds the named bundled design. Throws hcp::Error on an unknown name
/// (the message lists the valid names).
AppDesign makeDesign(const std::string& name, bool withDirectives = true);

}  // namespace hcp::apps
