// Operator pre-characterization library (paper §III-A2: "the values of
// multiple metrics for each operator are obtained from the HLS
// pre-characterization libraries ... resource usage, operation type, bitwidth
// and delay").
//
// Each (opcode, bitwidth) maps to an OperatorSpec: combinational delay,
// pipeline latency in cycles, and LUT/FF/DSP/BRAM cost. The built-in
// xilinx7() instance uses parametric formulas calibrated to the general
// shape of 7-series operators (adders ~w LUTs, multipliers DSP-blocked above
// 10 bits, dividers w-cycle iterative, BRAM accesses 1-cycle) — absolute
// values are approximations, but relative costs drive scheduling, binding,
// packing and therefore congestion exactly as the real library would.
#pragma once

#include <cstdint>

#include "ir/opcode.hpp"

namespace hcp::hls {

/// Resource vector on the four FPGA resource types the paper tracks.
struct Resource {
  double lut = 0.0;
  double ff = 0.0;
  double dsp = 0.0;
  double bram = 0.0;

  Resource& operator+=(const Resource& o) {
    lut += o.lut;
    ff += o.ff;
    dsp += o.dsp;
    bram += o.bram;
    return *this;
  }
  friend Resource operator+(Resource a, const Resource& b) { return a += b; }
  friend Resource operator*(Resource a, double k) {
    a.lut *= k;
    a.ff *= k;
    a.dsp *= k;
    a.bram *= k;
    return a;
  }
  double total() const { return lut + ff + dsp + bram; }
};

/// Characterized implementation of one operator instance.
struct OperatorSpec {
  double delayNs = 0.0;      ///< combinational delay through the operator
  std::uint32_t latency = 0; ///< pipeline latency in clock cycles
  Resource res;
};

/// The characterization library. Query is pure and cheap; no caching needed.
class CharLibrary {
 public:
  /// Library calibrated to a Xilinx 7-series (Zynq XC7Z020 class) device.
  static CharLibrary xilinx7();

  /// Spec for an operator of `opcode` at result width `width` bits.
  OperatorSpec query(ir::Opcode opcode, std::uint16_t width) const;

  /// Cost of a k-input multiplexer of `width` bits (used for binding-induced
  /// muxes and memory-bank selection logic).
  OperatorSpec muxSpec(std::uint32_t inputs, std::uint16_t width) const;

  /// Storage cost of an array of `words` x `width` bits split over `banks`
  /// banks: BRAM when a bank is deep enough, distributed LUTRAM below that,
  /// flip-flop registers for fully partitioned (1-word) banks.
  Resource memorySpec(std::uint64_t words, std::uint16_t width,
                      std::uint32_t banks) const;

  /// Register cost of pipelining a value of `width` bits for one stage.
  Resource registerSpec(std::uint16_t width) const;

 private:
  CharLibrary() = default;
};

}  // namespace hcp::hls
