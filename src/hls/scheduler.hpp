// HLS scheduler: assigns each operation a control step (FSM state), honouring
// data dependencies, operator chaining under the target clock period, and
// resource concurrency limits (DSP blocks, memory ports per array bank).
//
// The paper consumes two things from this stage (§III-A2 "Scheduling and
// Global information"): the control step of every operation — ΔTcs between
// dependent ops is the paper's strongest feature category — and the overall
// function latency (loop-aware, honouring pipeline directives).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "hls/charlib.hpp"
#include "ir/function.hpp"

namespace hcp::hls {

struct ScheduleConstraints {
  double clockPeriodNs = 10.0;      ///< target clock (100 MHz default)
  double clockUncertaintyNs = 1.25; ///< margin subtracted from the budget
  std::uint32_t dspLimit = 220;     ///< concurrent DSP ops per step (device)
  std::uint32_t memPortsPerBank = 2;///< BRAM is true dual-port
  std::uint32_t divLimit = 8;       ///< concurrent iterative dividers
  /// Concurrent calls to the same (non-inlined) callee. Calls beyond this
  /// serialize, letting the binder share callee module instances — the
  /// mechanism by which removing an inline directive shrinks the design.
  std::uint32_t callInstanceLimit = 2;
  /// Fraction of the clock budget available for operator chaining; the rest
  /// is reserved for routing delay (HLS tools keep similar margins).
  double chainingSlackFactor = 0.55;
};

/// Per-op placement in control steps. Multi-cycle ops occupy
/// [startStep, endStep]; combinational ops have endStep == startStep and a
/// chaining offset within the step.
struct OpSchedule {
  std::uint32_t startStep = 0;
  std::uint32_t endStep = 0;
  double startOffsetNs = 0.0;  ///< chaining position within startStep
  double delayNs = 0.0;
  std::uint32_t latency = 0;   ///< 0 = combinational
};

struct Schedule {
  std::vector<OpSchedule> ops;   ///< indexed by OpId
  std::uint32_t numSteps = 0;    ///< static control steps (FSM states)
  std::uint64_t totalLatency = 0;///< cycles, loop trip counts accounted
  double estimatedClockNs = 0.0; ///< longest chained path within any step

  std::int64_t deltaTcs(ir::OpId pred, ir::OpId succ) const {
    return static_cast<std::int64_t>(ops[succ].startStep) -
           static_cast<std::int64_t>(ops[pred].endStep);
  }
};

/// Schedules `fn`. `calleeLatency` supplies the latency (cycles) of each
/// non-inlined callee by name; a Call op occupies that many steps.
Schedule schedule(const ir::Function& fn, const CharLibrary& lib,
                  const ScheduleConstraints& constraints,
                  const std::map<std::string, std::uint64_t>& calleeLatency = {});

}  // namespace hcp::hls
