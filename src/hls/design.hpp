// End-to-end HLS synthesis of a module: directives -> transforms ->
// per-function scheduling, binding, dependency-graph construction (with
// Fig-4 share-node merging) and reporting, in bottom-up call-graph order so
// callers see callee latencies and resources.
//
// The SynthesizedDesign is the hand-off point to RTL generation (src/rtl)
// and to feature extraction (src/features).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "hls/binder.hpp"
#include "hls/charlib.hpp"
#include "hls/directives.hpp"
#include "hls/report.hpp"
#include "hls/scheduler.hpp"
#include "ir/graph.hpp"
#include "ir/module.hpp"

namespace hcp::hls {

/// Synthesis results for one function.
struct SynthesizedFunction {
  std::uint32_t functionIndex = 0;
  Schedule schedule;
  Binding binding;
  ir::DependencyGraph graph;  ///< with shared ops merged (Fig 4)
  FunctionReport report;
};

/// A fully synthesized design. Owns the (transformed) module.
struct SynthesizedDesign {
  std::unique_ptr<ir::Module> module;
  std::vector<SynthesizedFunction> functions;  ///< indexed like the module
  CharLibrary library = CharLibrary::xilinx7();
  ScheduleConstraints constraints;

  const SynthesizedFunction& top() const {
    return functions[module->topIndex()];
  }
  const ir::Function& topFunction() const { return module->top(); }
};

struct SynthesisOptions {
  ScheduleConstraints schedule;
  BindConstraints bind;
  /// Run the front-end passes (const-fold, bitwidth reduction, DCE) before
  /// directives, as Vivado HLS's front-end compiler does (§III).
  bool runFrontendPasses = true;
};

/// Applies `dirs` to `mod` (taking ownership) and synthesizes every function.
SynthesizedDesign synthesize(std::unique_ptr<ir::Module> mod,
                             const DirectiveSet& dirs,
                             const SynthesisOptions& options = {});

/// Computes the report for one already-scheduled/bound function.
FunctionReport buildReport(const ir::Function& fn, const Schedule& sched,
                           const Binding& binding, const CharLibrary& lib,
                           const ScheduleConstraints& constraints,
                           const std::vector<FunctionReport>& calleeReports,
                           const ir::Module& mod);

}  // namespace hcp::hls
