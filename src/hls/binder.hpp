// Functional-unit binding with resource sharing.
//
// Expensive operators (multipliers, dividers, floating-point units) whose
// control-step intervals do not overlap are bound to the same RTL module;
// the unit then needs an input multiplexer per operand port. The paper
// models sharing in the dependency graph by replacing the ops that share one
// RTL module with a single combined node (Fig 4) — mergeIntoGraph() performs
// exactly that rewrite.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "hls/charlib.hpp"
#include "hls/scheduler.hpp"
#include "ir/function.hpp"
#include "ir/graph.hpp"

namespace hcp::hls {

struct BindConstraints {
  /// Maximum ops folded into one shared unit (limits mux growth; mirrors
  /// HLS tools' sharing caps).
  std::uint32_t maxGroupSize = 8;
  /// Sharing is disabled inside pipelined loops (a pipelined datapath needs
  /// its unit every II cycles).
  bool shareInPipelinedLoops = false;
};

/// One RTL functional unit; shared units carry >1 op. Call units represent a
/// callee module instance shared by their call sites.
struct FuInstance {
  ir::Opcode opcode = ir::Opcode::Passthrough;
  std::uint16_t width = 0;
  std::vector<ir::OpId> ops;
  Resource unitRes;       ///< the operator (or callee instance) itself
  Resource muxRes;        ///< input muxes added by sharing
  std::uint32_t muxCount = 0;
  std::uint32_t muxInputs = 0;  ///< inputs per mux (== ops.size() when shared)
  std::string callee;           ///< non-empty for Call units
};

struct Binding {
  std::vector<FuInstance> fus;
  std::vector<std::uint32_t> fuOfOp;  ///< OpId -> index into fus
  std::size_t sharedUnits = 0;        ///< units carrying more than one op
  std::size_t sharedOps = 0;          ///< ops living on shared units
  Resource totalMuxRes;
  std::uint32_t totalMuxCount = 0;
};

/// Binds every functional-unit op of `fn` to an FU instance, sharing
/// sharable ops greedily (left-edge over control-step intervals). Call ops
/// are bound to callee module instances the same way, so serialized calls to
/// one callee share hardware; `calleeRes` supplies each callee's footprint.
Binding bind(const ir::Function& fn, const Schedule& sched,
             const CharLibrary& lib, const BindConstraints& constraints = {},
             const std::map<std::string, Resource>& calleeRes = {});

/// Applies Fig-4 node merging to `graph`: each shared FU's ops collapse into
/// one combined node. Returns the number of merges performed.
std::size_t mergeIntoGraph(ir::DependencyGraph& graph, const Binding& binding);

}  // namespace hcp::hls
