// Directive-driven IR transformations, modelling what Vivado HLS does before
// scheduling: array partitioning, loop unrolling (with replica provenance —
// the marginal-sample filter of §III-C1 needs to know which ops are copies
// of the same pre-unroll op), function inlining, and the case study's
// "Replication" rewrite (§IV-C step 2: replicate a shared input array and
// spread its readers over the copies to cut interconnection pressure).
#pragma once

#include <cstdint>

#include "hls/directives.hpp"
#include "ir/module.hpp"

namespace hcp::hls {

/// Applies array-partition directives to `fn` (sets ArrayInfo::banks).
void applyArrayPartition(ir::Function& fn, const DirectiveSet& dirs);

/// Unrolls loops of `fn` per directives. Nested loops are processed
/// innermost-first. Replicated ops carry originOp/replicaIndex provenance.
void applyUnroll(ir::Function& fn, const DirectiveSet& dirs);

/// Marks pipeline directives on the loop table (consumed by the scheduler).
void applyPipeline(ir::Function& fn, const DirectiveSet& dirs);

/// Unrolls one loop of `fn` by `factor` (clamped to the trip count).
void unrollLoop(ir::Function& fn, ir::LoopId loop, std::uint32_t factor);

/// Inlines every call to directive-marked functions, bottom-up over the call
/// graph, rewriting callers in place. Callee arrays/loops are copied per call
/// site. Calls to unmarked functions remain black-box Call ops.
void applyInline(ir::Module& mod, const DirectiveSet& dirs);

/// Applies all directives to a module in HLS order:
/// partition -> unroll -> pipeline marks -> inline. The module is modified
/// in place and re-verified.
void applyDirectives(ir::Module& mod, const DirectiveSet& dirs);

/// Case-study "Replication": creates `copies` duplicates of `array`, adds a
/// pipelined copy loop filling them from the original, and redistributes the
/// existing Load ops round-robin over the copies. Returns the ids of the new
/// arrays.
std::vector<ir::ArrayId> replicateArray(ir::Function& fn, ir::ArrayId array,
                                        std::uint32_t copies);

}  // namespace hcp::hls
