// Text serialization of HLS results (flow-cache format): a full
// SynthesizedDesign — module, per-function schedule/binding/graph/report,
// schedule constraints — plus a canonical directive dump used by the
// flow-cache key derivation. Doubles use 17 significant digits;
// save -> load -> save is byte-identical and a loaded design feeds feature
// extraction and RTL generation bit-identically to the original.
#pragma once

#include <istream>
#include <ostream>

#include "hls/design.hpp"

namespace hcp::hls {

void writeDesign(std::ostream& os, const SynthesizedDesign& design);

/// Reads a design written by writeDesign. Per-function dependency graphs are
/// rebound to the freshly read module's functions. Throws hcp::Error on
/// malformed input.
SynthesizedDesign readDesign(std::istream& is);

/// Canonical text form of a directive set (map-ordered, complete). Feeds the
/// flow-cache key: two DirectiveSets serialize identically iff they request
/// the same transforms.
void writeDirectives(std::ostream& os, const DirectiveSet& dirs);

/// Scalar blocks shared with core/flow_serialize.
void writeResource(std::ostream& os, const Resource& r);
Resource readResource(std::istream& is);
void writeScheduleConstraints(std::ostream& os,
                              const ScheduleConstraints& c);
ScheduleConstraints readScheduleConstraints(std::istream& is);

}  // namespace hcp::hls
