#include "hls/serialize.hpp"

#include "ir/serialize.hpp"
#include "support/textio.hpp"

namespace hcp::hls {

namespace txt = support::txt;

void writeResource(std::ostream& os, const Resource& r) {
  os << r.lut << ' ' << r.ff << ' ' << r.dsp << ' ' << r.bram;
}

Resource readResource(std::istream& is) {
  Resource r;
  r.lut = txt::read<double>(is, "resource lut");
  r.ff = txt::read<double>(is, "resource ff");
  r.dsp = txt::read<double>(is, "resource dsp");
  r.bram = txt::read<double>(is, "resource bram");
  return r;
}

void writeScheduleConstraints(std::ostream& os,
                              const ScheduleConstraints& c) {
  os << "constraints " << c.clockPeriodNs << ' ' << c.clockUncertaintyNs
     << ' ' << c.dspLimit << ' ' << c.memPortsPerBank << ' ' << c.divLimit
     << ' ' << c.callInstanceLimit << ' ' << c.chainingSlackFactor << '\n';
}

ScheduleConstraints readScheduleConstraints(std::istream& is) {
  txt::expect(is, "constraints");
  ScheduleConstraints c;
  c.clockPeriodNs = txt::read<double>(is, "constraints clockPeriodNs");
  c.clockUncertaintyNs =
      txt::read<double>(is, "constraints clockUncertaintyNs");
  c.dspLimit = txt::read<std::uint32_t>(is, "constraints dspLimit");
  c.memPortsPerBank =
      txt::read<std::uint32_t>(is, "constraints memPortsPerBank");
  c.divLimit = txt::read<std::uint32_t>(is, "constraints divLimit");
  c.callInstanceLimit =
      txt::read<std::uint32_t>(is, "constraints callInstanceLimit");
  c.chainingSlackFactor =
      txt::read<double>(is, "constraints chainingSlackFactor");
  return c;
}

namespace {

void writeSchedule(std::ostream& os, const Schedule& s) {
  os << "schedule " << s.ops.size() << ' ' << s.numSteps << ' '
     << s.totalLatency << ' ' << s.estimatedClockNs << '\n';
  for (const OpSchedule& op : s.ops)
    os << op.startStep << ' ' << op.endStep << ' ' << op.startOffsetNs << ' '
       << op.delayNs << ' ' << op.latency << '\n';
}

Schedule readSchedule(std::istream& is) {
  txt::expect(is, "schedule");
  Schedule s;
  const auto numOps = txt::read<std::size_t>(is, "schedule op count");
  s.numSteps = txt::read<std::uint32_t>(is, "schedule numSteps");
  s.totalLatency = txt::read<std::uint64_t>(is, "schedule totalLatency");
  s.estimatedClockNs = txt::read<double>(is, "schedule estimatedClockNs");
  s.ops.reserve(numOps);
  for (std::size_t i = 0; i < numOps; ++i) {
    OpSchedule op;
    op.startStep = txt::read<std::uint32_t>(is, "opschedule startStep");
    op.endStep = txt::read<std::uint32_t>(is, "opschedule endStep");
    op.startOffsetNs = txt::read<double>(is, "opschedule startOffsetNs");
    op.delayNs = txt::read<double>(is, "opschedule delayNs");
    op.latency = txt::read<std::uint32_t>(is, "opschedule latency");
    s.ops.push_back(op);
  }
  return s;
}

void writeBinding(std::ostream& os, const Binding& b) {
  os << "binding " << b.fus.size() << '\n';
  for (const FuInstance& fu : b.fus) {
    os << static_cast<unsigned>(fu.opcode) << ' ' << fu.width << ' ';
    txt::writeVec(os, fu.ops);
    os << ' ';
    writeResource(os, fu.unitRes);
    os << ' ';
    writeResource(os, fu.muxRes);
    os << ' ' << fu.muxCount << ' ' << fu.muxInputs << ' ';
    txt::writeStr(os, fu.callee);
    os << '\n';
  }
  os << "fuofop ";
  txt::writeVec(os, b.fuOfOp);
  os << '\n'
     << "sharing " << b.sharedUnits << ' ' << b.sharedOps << ' ';
  writeResource(os, b.totalMuxRes);
  os << ' ' << b.totalMuxCount << '\n';
}

Binding readBinding(std::istream& is) {
  txt::expect(is, "binding");
  Binding b;
  const auto numFus = txt::read<std::size_t>(is, "binding fu count");
  b.fus.reserve(numFus);
  for (std::size_t i = 0; i < numFus; ++i) {
    FuInstance fu;
    const auto opcode = txt::read<unsigned>(is, "fu opcode");
    HCP_CHECK_MSG(opcode < ir::kNumOpcodes,
                  "fu opcode out of range: " << opcode);
    fu.opcode = static_cast<ir::Opcode>(opcode);
    fu.width = txt::read<std::uint16_t>(is, "fu width");
    fu.ops = txt::readVec<ir::OpId>(is, "fu ops");
    fu.unitRes = readResource(is);
    fu.muxRes = readResource(is);
    fu.muxCount = txt::read<std::uint32_t>(is, "fu muxCount");
    fu.muxInputs = txt::read<std::uint32_t>(is, "fu muxInputs");
    fu.callee = txt::readStr(is, "fu callee");
    b.fus.push_back(std::move(fu));
  }
  txt::expect(is, "fuofop");
  b.fuOfOp = txt::readVec<std::uint32_t>(is, "fuOfOp");
  txt::expect(is, "sharing");
  b.sharedUnits = txt::read<std::size_t>(is, "binding sharedUnits");
  b.sharedOps = txt::read<std::size_t>(is, "binding sharedOps");
  b.totalMuxRes = readResource(is);
  b.totalMuxCount = txt::read<std::uint32_t>(is, "binding totalMuxCount");
  return b;
}

void writeFunctionReport(std::ostream& os, const FunctionReport& r) {
  os << "report ";
  writeResource(os, r.fuRes);
  os << ' ';
  writeResource(os, r.regRes);
  os << ' ';
  writeResource(os, r.memRes);
  os << ' ';
  writeResource(os, r.muxRes);
  os << ' ';
  writeResource(os, r.calleeRes);
  os << ' ';
  writeResource(os, r.totalRes);
  os << ' ' << r.memory.words << ' ' << r.memory.banks << ' '
     << r.memory.bits << ' ' << r.memory.primitives << ' ' << r.mux.count
     << ' ';
  writeResource(os, r.mux.res);
  os << ' ' << r.mux.totalInputs << ' ' << r.mux.avgWidth << ' '
     << r.latency << ' ' << r.numSteps << ' ' << r.estimatedClockNs << ' '
     << r.targetClockNs << ' ' << r.clockUncertaintyNs << '\n';
}

FunctionReport readFunctionReport(std::istream& is) {
  txt::expect(is, "report");
  FunctionReport r;
  r.fuRes = readResource(is);
  r.regRes = readResource(is);
  r.memRes = readResource(is);
  r.muxRes = readResource(is);
  r.calleeRes = readResource(is);
  r.totalRes = readResource(is);
  r.memory.words = txt::read<std::uint64_t>(is, "report memory words");
  r.memory.banks = txt::read<std::uint64_t>(is, "report memory banks");
  r.memory.bits = txt::read<std::uint64_t>(is, "report memory bits");
  r.memory.primitives =
      txt::read<std::uint64_t>(is, "report memory primitives");
  r.mux.count = txt::read<std::uint32_t>(is, "report mux count");
  r.mux.res = readResource(is);
  r.mux.totalInputs = txt::read<std::uint64_t>(is, "report mux totalInputs");
  r.mux.avgWidth = txt::read<double>(is, "report mux avgWidth");
  r.latency = txt::read<std::uint64_t>(is, "report latency");
  r.numSteps = txt::read<std::uint32_t>(is, "report numSteps");
  r.estimatedClockNs = txt::read<double>(is, "report estimatedClockNs");
  r.targetClockNs = txt::read<double>(is, "report targetClockNs");
  r.clockUncertaintyNs = txt::read<double>(is, "report clockUncertaintyNs");
  return r;
}

}  // namespace

void writeDesign(std::ostream& os, const SynthesizedDesign& design) {
  txt::preparePrecision(os);
  os << "design\n";
  ir::writeModule(os, *design.module);
  writeScheduleConstraints(os, design.constraints);
  os << "functions " << design.functions.size() << '\n';
  for (const SynthesizedFunction& fn : design.functions) {
    os << "synthfn " << fn.functionIndex << '\n';
    writeSchedule(os, fn.schedule);
    writeBinding(os, fn.binding);
    fn.graph.write(os);
    writeFunctionReport(os, fn.report);
  }
}

SynthesizedDesign readDesign(std::istream& is) {
  txt::expect(is, "design");
  SynthesizedDesign design;
  design.module = ir::readModule(is);
  design.constraints = readScheduleConstraints(is);
  txt::expect(is, "functions");
  const auto numFunctions = txt::read<std::size_t>(is, "synthfn count");
  design.functions.reserve(numFunctions);
  for (std::size_t i = 0; i < numFunctions; ++i) {
    SynthesizedFunction fn;
    txt::expect(is, "synthfn");
    fn.functionIndex = txt::read<std::uint32_t>(is, "synthfn index");
    HCP_CHECK_MSG(fn.functionIndex < design.module->numFunctions(),
                  "synthfn index " << fn.functionIndex
                                   << " out of range for module with "
                                   << design.module->numFunctions()
                                   << " functions");
    fn.schedule = readSchedule(is);
    fn.binding = readBinding(is);
    fn.graph = ir::DependencyGraph::read(
        is, design.module->function(fn.functionIndex));
    fn.report = readFunctionReport(is);
    design.functions.push_back(std::move(fn));
  }
  return design;
}

void writeDirectives(std::ostream& os, const DirectiveSet& dirs) {
  os << "directives " << dirs.all().size() << '\n';
  for (const auto& [fnName, fd] : dirs.all()) {
    txt::writeStr(os, fnName);
    os << ' ';
    txt::writeBool(os, fd.inlineFunction);
    os << " loops " << fd.loops.size();
    for (const auto& [loopName, ld] : fd.loops) {
      os << ' ';
      txt::writeStr(os, loopName);
      os << ' ' << ld.unrollFactor << ' ';
      txt::writeBool(os, ld.pipeline);
      os << ' ' << ld.initiationInterval;
    }
    os << " arrays " << fd.arrays.size();
    for (const auto& [arrayName, ad] : fd.arrays) {
      os << ' ';
      txt::writeStr(os, arrayName);
      os << ' ' << ad.partitionFactor << ' ';
      txt::writeBool(os, ad.complete);
    }
    os << '\n';
  }
}

}  // namespace hcp::hls
