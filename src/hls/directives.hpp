// HLS optimization directives (pragmas). The paper's motivating example and
// case study hinge on these: function inlining, loop unrolling/pipelining
// and array partitioning reshape the IR and hence the congestion profile
// (Table I, Table VI).
//
// Directives are addressed symbolically — by function, loop and array name —
// so the same DirectiveSet can be applied to a freshly regenerated design.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

namespace hcp::hls {

struct LoopDirective {
  /// Unroll by this factor (1 = no unroll). If >= trip count, the loop is
  /// fully unrolled and dissolved.
  std::uint32_t unrollFactor = 1;
  bool pipeline = false;
  std::uint32_t initiationInterval = 1;
};

struct ArrayDirective {
  /// Split the array into this many banks (cyclic). `complete` overrides the
  /// factor and gives every word its own register.
  std::uint32_t partitionFactor = 1;
  bool complete = false;
};

struct FunctionDirectives {
  /// Inline every call to this function into its callers.
  bool inlineFunction = false;
  std::map<std::string, LoopDirective> loops;    ///< keyed by loop name
  std::map<std::string, ArrayDirective> arrays;  ///< keyed by array name
};

/// Directives for a whole design, keyed by function name.
class DirectiveSet {
 public:
  FunctionDirectives& forFunction(const std::string& fn) {
    return perFunction_[fn];
  }
  const FunctionDirectives* find(const std::string& fn) const {
    auto it = perFunction_.find(fn);
    return it == perFunction_.end() ? nullptr : &it->second;
  }

  /// Convenience builders.
  DirectiveSet& inlineFunction(const std::string& fn, bool on = true) {
    perFunction_[fn].inlineFunction = on;
    return *this;
  }
  DirectiveSet& unroll(const std::string& fn, const std::string& loop,
                       std::uint32_t factor) {
    perFunction_[fn].loops[loop].unrollFactor = factor;
    return *this;
  }
  DirectiveSet& pipeline(const std::string& fn, const std::string& loop,
                         std::uint32_t ii = 1) {
    auto& d = perFunction_[fn].loops[loop];
    d.pipeline = true;
    d.initiationInterval = ii;
    return *this;
  }
  DirectiveSet& partition(const std::string& fn, const std::string& array,
                          std::uint32_t factor) {
    perFunction_[fn].arrays[array].partitionFactor = factor;
    return *this;
  }
  DirectiveSet& partitionComplete(const std::string& fn,
                                  const std::string& array) {
    perFunction_[fn].arrays[array].complete = true;
    return *this;
  }

  std::optional<LoopDirective> loopDirective(const std::string& fn,
                                             const std::string& loop) const;
  std::optional<ArrayDirective> arrayDirective(const std::string& fn,
                                               const std::string& array) const;
  bool shouldInline(const std::string& fn) const;

  bool empty() const { return perFunction_.empty(); }

  /// Stable (name-ordered) view of every per-function directive block; the
  /// flow-cache key derivation canonicalizes the set through this.
  const std::map<std::string, FunctionDirectives>& all() const {
    return perFunction_;
  }

 private:
  std::map<std::string, FunctionDirectives> perFunction_;
};

}  // namespace hcp::hls
