// Per-function HLS synthesis report: resource estimates, latency, clock
// estimate, multiplexer and memory statistics. This is the "Global
// information" source of the paper's feature set (Table II: resource usage
// of Ftop and Fop, clock targets/estimates, memory words/banks/bits/
// primitives, mux number/resource/inputs/bitwidth).
#pragma once

#include <cstdint>

#include "hls/charlib.hpp"

namespace hcp::hls {

struct MemoryStats {
  std::uint64_t words = 0;
  std::uint64_t banks = 0;
  std::uint64_t bits = 0;        ///< total data bits (Σ words*width)
  std::uint64_t primitives = 0;  ///< paper's words*bits*banks aggregate
};

struct MuxStats {
  std::uint32_t count = 0;
  Resource res;
  std::uint64_t totalInputs = 0;
  double avgWidth = 0.0;
};

struct FunctionReport {
  Resource fuRes;       ///< bound functional units
  Resource regRes;      ///< cross-step value registers
  Resource memRes;      ///< arrays
  Resource muxRes;      ///< binding muxes + memory banking muxes
  Resource calleeRes;   ///< non-inlined callee instances (one per call site)
  Resource totalRes;    ///< sum of the above

  MemoryStats memory;
  MuxStats mux;

  std::uint64_t latency = 0;      ///< cycles
  std::uint32_t numSteps = 0;     ///< static FSM states
  double estimatedClockNs = 0.0;
  double targetClockNs = 0.0;
  double clockUncertaintyNs = 0.0;
};

}  // namespace hcp::hls
