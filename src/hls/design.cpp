#include "hls/design.hpp"

#include <algorithm>
#include <map>

#include "hls/transforms.hpp"
#include "ir/passes.hpp"
#include "ir/verifier.hpp"
#include "support/telemetry.hpp"

namespace hcp::hls {

using ir::Function;
using ir::Module;
using ir::Op;
using ir::Opcode;
using ir::OpId;

namespace {

/// Bottom-up (callees first) order over the acyclic call graph.
std::vector<std::uint32_t> bottomUpOrder(const Module& mod) {
  const std::size_t n = mod.numFunctions();
  std::vector<std::vector<std::uint32_t>> callees(n);
  for (std::uint32_t f = 0; f < n; ++f) {
    for (OpId id = 0; id < mod.function(f).numOps(); ++id) {
      const Op& op = mod.function(f).op(id);
      if (op.opcode == Opcode::Call) {
        auto c = mod.findFunction(op.name);
        HCP_CHECK(c != ir::kInvalidIndex);
        callees[f].push_back(c);
      }
    }
  }
  std::vector<std::uint32_t> order;
  std::vector<int> state(n, 0);
  for (std::uint32_t root = 0; root < n; ++root) {
    if (state[root]) continue;
    std::vector<std::pair<std::uint32_t, std::size_t>> stack{{root, 0}};
    state[root] = 1;
    while (!stack.empty()) {
      auto& [f, next] = stack.back();
      if (next < callees[f].size()) {
        const std::uint32_t c = callees[f][next++];
        HCP_CHECK_MSG(state[c] != 1, "recursion in call graph");
        if (state[c] == 0) {
          state[c] = 1;
          stack.emplace_back(c, 0);
        }
      } else {
        state[f] = 2;
        order.push_back(f);
        stack.pop_back();
      }
    }
  }
  return order;
}

}  // namespace

FunctionReport buildReport(const Function& fn, const Schedule& sched,
                           const Binding& binding, const CharLibrary& lib,
                           const ScheduleConstraints& constraints,
                           const std::vector<FunctionReport>& calleeReports,
                           const Module& mod) {
  (void)calleeReports;  // callee footprints now arrive through the binding
  (void)mod;
  FunctionReport r;
  r.latency = sched.totalLatency;
  r.numSteps = sched.numSteps;
  r.estimatedClockNs = sched.estimatedClockNs;
  r.targetClockNs = constraints.clockPeriodNs;
  r.clockUncertaintyNs = constraints.clockUncertaintyNs;

  for (const FuInstance& fu : binding.fus) {
    // Call units carry a whole callee instance; account them separately.
    if (fu.opcode == Opcode::Call) {
      r.calleeRes += fu.unitRes;
    } else {
      r.fuRes += fu.unitRes;
    }
    r.muxRes += fu.muxRes;
    if (fu.muxCount > 0) {
      r.mux.count += fu.muxCount;
      r.mux.totalInputs +=
          static_cast<std::uint64_t>(fu.muxCount) * fu.muxInputs;
      r.mux.avgWidth += static_cast<double>(fu.width) * fu.muxCount;
    }
  }

  // Cross-step registers: a value consumed after its producing step needs a
  // register of its width (counted once per producer).
  for (OpId id = 0; id < fn.numOps(); ++id) {
    const Op& op = fn.op(id);
    for (const ir::Operand& use : op.operands) {
      if (sched.ops[id].startStep > sched.ops[use.producer].endStep) {
        r.regRes += lib.registerSpec(fn.op(use.producer).bitwidth);
        break;  // one register per producer is enough; shared by consumers
      }
    }
  }

  // Memories + banking muxes. A multi-banked array with more than one
  // accessor needs a bank-select mux per access port.
  for (ir::ArrayId a = 0; a < fn.numArrays(); ++a) {
    const ir::ArrayInfo& info = fn.array(a);
    r.memRes += lib.memorySpec(info.words, info.bitwidth, info.banks);
    r.memory.words += info.words;
    r.memory.banks += info.banks;
    r.memory.bits += info.words * info.bitwidth;
    r.memory.primitives +=
        info.words * info.bitwidth * std::max<std::uint64_t>(1, info.banks);
    if (info.banks > 1) {
      const OperatorSpec bankMux =
          lib.muxSpec(std::max<std::uint32_t>(2, info.banks), info.bitwidth);
      r.muxRes += bankMux.res;
      ++r.mux.count;
      r.mux.totalInputs += info.banks;
      r.mux.avgWidth += info.bitwidth;
    }
  }
  if (r.mux.count > 0) r.mux.avgWidth /= r.mux.count;
  r.mux.res = r.muxRes;

  r.totalRes = r.fuRes + r.regRes + r.memRes + r.muxRes + r.calleeRes;
  return r;
}

SynthesizedDesign synthesize(std::unique_ptr<Module> mod,
                             const DirectiveSet& dirs,
                             const SynthesisOptions& options) {
  HCP_SPAN("hls_synthesize");
  HCP_CHECK(mod != nullptr);
  ir::verifyOrThrow(*mod);
  support::telemetry::count(
      support::telemetry::Counter::HlsFunctionsSynthesized,
      mod->numFunctions());

  if (options.runFrontendPasses) {
    for (std::uint32_t f = 0; f < mod->numFunctions(); ++f)
      ir::runFrontendPasses(mod->function(f));
  }
  applyDirectives(*mod, dirs);

  SynthesizedDesign design;
  design.constraints = options.schedule;
  design.functions.resize(mod->numFunctions());

  std::map<std::string, std::uint64_t> calleeLatency;
  std::map<std::string, Resource> calleeRes;
  std::vector<FunctionReport> reports(mod->numFunctions());

  for (std::uint32_t f : bottomUpOrder(*mod)) {
    Function& fn = mod->function(f);
    SynthesizedFunction& out = design.functions[f];
    out.functionIndex = f;
    out.schedule = schedule(fn, design.library, options.schedule,
                            calleeLatency);
    out.binding = bind(fn, out.schedule, design.library, options.bind,
                       calleeRes);
    out.graph = ir::DependencyGraph::build(fn);
    mergeIntoGraph(out.graph, out.binding);
    out.report = buildReport(fn, out.schedule, out.binding, design.library,
                             options.schedule, reports, *mod);
    reports[f] = out.report;
    calleeLatency[fn.name()] = out.report.latency;
    calleeRes[fn.name()] = out.report.totalRes;
  }

  design.module = std::move(mod);
  return design;
}

}  // namespace hcp::hls
