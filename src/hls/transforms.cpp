#include "hls/transforms.hpp"

#include <algorithm>
#include <map>
#include <vector>

#include "ir/verifier.hpp"

namespace hcp::hls {

using ir::ArrayId;
using ir::Function;
using ir::kInvalidIndex;
using ir::kInvalidOp;
using ir::kRootRegion;
using ir::LoopId;
using ir::LoopInfo;
using ir::Module;
using ir::Op;
using ir::Opcode;
using ir::OpId;
using ir::Operand;
using ir::PortDirection;

void applyArrayPartition(Function& fn, const DirectiveSet& dirs) {
  for (ArrayId a = 0; a < fn.numArrays(); ++a) {
    auto d = dirs.arrayDirective(fn.name(), fn.array(a).name);
    if (!d) continue;
    ir::ArrayInfo& info = fn.array(a);
    if (d->complete) {
      info.banks = static_cast<std::uint32_t>(info.words);
    } else {
      info.banks = std::max<std::uint32_t>(1, d->partitionFactor);
    }
  }
}

void applyPipeline(Function& fn, const DirectiveSet& dirs) {
  for (LoopId l = 1; l < fn.numLoops(); ++l) {
    auto d = dirs.loopDirective(fn.name(), fn.loop(l).name);
    if (!d || !d->pipeline) continue;
    fn.loop(l).pipelined = true;
    fn.loop(l).initiationInterval = std::max<std::uint32_t>(
        1, d->initiationInterval);
  }
}

void unrollLoop(Function& fn, LoopId loop, std::uint32_t factor) {
  HCP_CHECK(loop != kRootRegion && loop < fn.numLoops());
  const std::uint64_t trip = fn.loop(loop).tripCount;
  factor = static_cast<std::uint32_t>(
      std::min<std::uint64_t>(factor, trip));
  if (factor <= 1) return;

  // Ops lexically inside `loop` (including nested regions).
  std::vector<OpId> body;
  const std::size_t numOpsBefore = fn.numOps();
  for (OpId id = 0; id < numOpsBefore; ++id)
    if (fn.inLoop(id, loop)) body.push_back(id);

  // Nested loops rooted under `loop` (excluding it).
  std::vector<LoopId> nested;
  const std::size_t numLoopsBefore = fn.numLoops();
  for (LoopId l = 1; l < numLoopsBefore; ++l) {
    if (l == loop) continue;
    LoopId cur = l;
    while (cur != kRootRegion && cur != loop) cur = fn.loop(cur).parent;
    if (cur == loop) nested.push_back(l);
  }

  for (std::uint32_t rep = 1; rep < factor; ++rep) {
    // Fresh copies of nested loop regions for this replica.
    std::map<LoopId, LoopId> loopRemap;
    loopRemap[loop] = loop;
    for (LoopId l : nested) {
      LoopInfo copy = fn.loop(l);
      auto it = loopRemap.find(copy.parent);
      if (it != loopRemap.end()) copy.parent = it->second;
      copy.name += "_u" + std::to_string(rep);
      loopRemap[l] = fn.addLoop(copy);
    }
    // Clone the body ops with operand remapping.
    std::map<OpId, OpId> opRemap;
    for (OpId id : body) {
      Op clone = fn.op(id);
      clone.loop = loopRemap.at(clone.loop);
      // Induction-derived constants (memory indices, per-iteration offsets)
      // advance with the replica, so unrolled accesses spread over banks the
      // way i, i+1, ... would.
      if (clone.opcode == Opcode::Const) clone.constValue += rep;
      for (Operand& use : clone.operands) {
        auto it = opRemap.find(use.producer);
        if (it != opRemap.end()) use.producer = it->second;
      }
      clone.originOp = fn.op(id).originOp;
      clone.replicaIndex = fn.op(id).replicaIndex + rep * 1000u;
      // Call ops use `name` as the callee reference — never decorate it.
      if (!clone.name.empty() && clone.opcode != Opcode::Call)
        clone.name += "_u" + std::to_string(rep);
      opRemap[id] = fn.addOp(std::move(clone));
    }
  }

  LoopInfo& info = fn.loop(loop);
  info.unrollFactor *= factor;
  info.tripCount = (trip + factor - 1) / factor;
}

void applyUnroll(Function& fn, const DirectiveSet& dirs) {
  // Innermost-first: a loop is processed after all loops nested in it. Loops
  // are appended parent-before-child by the builder, so reverse id order
  // visits children first; replica regions added during unrolling never have
  // their own directives (their names carry the _uN suffix).
  const std::size_t numLoopsBefore = fn.numLoops();
  for (LoopId l = static_cast<LoopId>(numLoopsBefore); l-- > 1;) {
    auto d = dirs.loopDirective(fn.name(), fn.loop(l).name);
    if (!d || d->unrollFactor <= 1) continue;
    unrollLoop(fn, l, d->unrollFactor);
  }
}

namespace {

/// Rebuilds `caller`, splicing in the bodies of inlined callees at each call
/// site. Callees must already be fully processed (bottom-up order).
void inlineCallsInFunction(Function& caller, const Module& mod,
                           const DirectiveSet& dirs) {
  bool hasInlinableCall = false;
  for (OpId id = 0; id < caller.numOps(); ++id) {
    const Op& op = caller.op(id);
    if (op.opcode == Opcode::Call && dirs.shouldInline(op.name)) {
      hasInlinableCall = true;
      break;
    }
  }
  if (!hasInlinableCall) return;

  Function next(caller.name());
  // Copy loop/array/port tables; op splicing appends callee tables later.
  for (LoopId l = 1; l < caller.numLoops(); ++l) next.addLoop(caller.loop(l));
  for (ArrayId a = 0; a < caller.numArrays(); ++a)
    next.addArray(caller.array(a));
  for (ir::PortId p = 0; p < caller.numPorts(); ++p)
    next.addPort(caller.portInfo(p));

  std::vector<OpId> remap(caller.numOps(), kInvalidOp);
  int inlineCount = 0;

  for (OpId id = 0; id < caller.numOps(); ++id) {
    const Op& op = caller.op(id);
    if (op.opcode != Opcode::Call || !dirs.shouldInline(op.name)) {
      Op clone = op;
      for (Operand& use : clone.operands) {
        HCP_CHECK(remap[use.producer] != kInvalidOp);
        use.producer = remap[use.producer];
      }
      clone.originOp = (op.originOp < id && remap[op.originOp] != kInvalidOp)
                           ? remap[op.originOp]
                           : kInvalidOp;
      remap[id] = next.addOp(std::move(clone));
      if (next.op(remap[id]).originOp == kInvalidOp)
        next.op(remap[id]).originOp = remap[id];
      continue;
    }

    // Splice the callee.
    const auto calleeIdx = mod.findFunction(op.name);
    HCP_CHECK_MSG(calleeIdx != kInvalidIndex, "unknown callee " << op.name);
    const Function& callee = mod.function(calleeIdx);
    const std::string tag =
        callee.name() + "_i" + std::to_string(inlineCount++);

    // Map callee in-ports to call arguments, positionally.
    std::vector<Operand> args;
    for (const Operand& use : op.operands) {
      Operand a = use;
      HCP_CHECK(remap[a.producer] != kInvalidOp);
      a.producer = remap[a.producer];
      args.push_back(a);
    }
    std::vector<ir::PortId> inPorts, outPorts;
    for (ir::PortId p = 0; p < callee.numPorts(); ++p) {
      (callee.portInfo(p).direction == PortDirection::In ? inPorts
                                                         : outPorts)
          .push_back(p);
    }
    HCP_CHECK_MSG(args.size() == inPorts.size(),
                  callee.name() << ": call arity " << args.size()
                                << " != in-ports " << inPorts.size());

    // Copy callee loops (fresh per call site), parented at the call's region.
    std::map<LoopId, LoopId> loopRemap;
    loopRemap[kRootRegion] = op.loop;
    for (LoopId l = 1; l < callee.numLoops(); ++l) {
      LoopInfo copy = callee.loop(l);
      copy.parent = loopRemap.at(copy.parent);
      copy.name = tag + "." + copy.name;
      loopRemap[l] = next.addLoop(copy);
    }
    // Copy callee arrays (local arrays are per-instance in HLS).
    std::map<ArrayId, ArrayId> arrayRemap;
    for (ArrayId a = 0; a < callee.numArrays(); ++a) {
      ir::ArrayInfo copy = callee.array(a);
      copy.name = tag + "." + copy.name;
      arrayRemap[a] = next.addArray(copy);
    }

    std::vector<OpId> calleeRemap(callee.numOps(), kInvalidOp);
    OpId returnValue = kInvalidOp;
    for (OpId cid = 0; cid < callee.numOps(); ++cid) {
      const Op& cop = callee.op(cid);
      if (cop.opcode == Opcode::Ret) continue;
      if (cop.opcode == Opcode::ReadPort) {
        // Becomes a passthrough of the corresponding argument.
        const auto argIdx = static_cast<std::size_t>(
            std::find(inPorts.begin(), inPorts.end(), cop.port) -
            inPorts.begin());
        HCP_CHECK(argIdx < args.size());
        Op pass;
        pass.opcode = Opcode::Passthrough;
        pass.bitwidth = cop.bitwidth;
        pass.operands = {args[argIdx]};
        pass.loop = loopRemap.at(cop.loop);
        pass.sourceLine = cop.sourceLine;
        pass.name = tag + ".arg" + std::to_string(argIdx);
        calleeRemap[cid] = next.addOp(std::move(pass));
        continue;
      }
      if (cop.opcode == Opcode::WritePort) {
        // Record the value as the call's return; no op emitted.
        HCP_CHECK(cop.operands.size() == 1);
        OpId v = calleeRemap[cop.operands[0].producer];
        HCP_CHECK(v != kInvalidOp);
        returnValue = v;
        calleeRemap[cid] = v;
        continue;
      }
      Op clone = cop;
      clone.loop = loopRemap.at(cop.loop);
      if (clone.array != kInvalidIndex &&
          (cop.opcode == Opcode::Load || cop.opcode == Opcode::Store ||
           cop.opcode == Opcode::Alloca)) {
        clone.array = arrayRemap.at(cop.array);
      }
      for (Operand& use : clone.operands) {
        HCP_CHECK(calleeRemap[use.producer] != kInvalidOp);
        use.producer = calleeRemap[use.producer];
      }
      clone.originOp = kInvalidOp;  // provenance restarts in the caller
      // Every inlined op carries its origin tag so the resolution advisor
      // can attribute hotspots to the inlined callee.
      clone.name = clone.name.empty() ? tag : tag + "." + clone.name;
      calleeRemap[cid] = next.addOp(std::move(clone));
      if (next.op(calleeRemap[cid]).originOp == kInvalidOp)
        next.op(calleeRemap[cid]).originOp = calleeRemap[cid];
    }

    // Replace the Call with a passthrough of the return value.
    if (op.bitwidth > 0) {
      HCP_CHECK_MSG(returnValue != kInvalidOp,
                    callee.name() << " returns no value but call expects one");
      Op pass;
      pass.opcode = Opcode::Passthrough;
      pass.bitwidth = op.bitwidth;
      pass.operands = {
          Operand{returnValue,
                  std::min(op.bitwidth, next.op(returnValue).bitwidth)}};
      pass.loop = op.loop;
      pass.sourceLine = op.sourceLine;
      pass.name = tag + ".ret";
      remap[id] = next.addOp(std::move(pass));
    } else {
      // Void call: stand in with a 1-bit constant (kept alive by nothing).
      Op c;
      c.opcode = Opcode::Const;
      c.bitwidth = 1;
      c.loop = op.loop;
      c.sourceLine = op.sourceLine;
      remap[id] = next.addOp(std::move(c));
    }
  }

  caller = std::move(next);
}

}  // namespace

void applyInline(Module& mod, const DirectiveSet& dirs) {
  // Bottom-up over the (acyclic) call graph: repeatedly process functions
  // whose inlinable callees contain no further inlinable calls. With no
  // recursion, iterating numFunctions times reaches the fixpoint.
  for (std::size_t pass = 0; pass < mod.numFunctions(); ++pass) {
    bool any = false;
    for (std::uint32_t f = 0; f < mod.numFunctions(); ++f) {
      Function& fn = mod.function(f);
      // Only inline into fn if every inlinable callee is itself "clean"
      // (contains no inlinable calls) — guarantees bottom-up splicing.
      bool ready = false, blocked = false;
      for (OpId id = 0; id < fn.numOps(); ++id) {
        const Op& op = fn.op(id);
        if (op.opcode != Opcode::Call || !dirs.shouldInline(op.name)) continue;
        ready = true;
        const auto ci = mod.findFunction(op.name);
        HCP_CHECK(ci != kInvalidIndex);
        const Function& callee = mod.function(ci);
        for (OpId c = 0; c < callee.numOps(); ++c) {
          const Op& cop = callee.op(c);
          if (cop.opcode == Opcode::Call && dirs.shouldInline(cop.name)) {
            blocked = true;
            break;
          }
        }
        if (blocked) break;
      }
      if (ready && !blocked) {
        inlineCallsInFunction(fn, mod, dirs);
        any = true;
      }
    }
    if (!any) break;
  }
}

void applyDirectives(Module& mod, const DirectiveSet& dirs) {
  for (std::uint32_t f = 0; f < mod.numFunctions(); ++f) {
    Function& fn = mod.function(f);
    applyArrayPartition(fn, dirs);
    applyUnroll(fn, dirs);
    applyPipeline(fn, dirs);
  }
  applyInline(mod, dirs);
  ir::verifyOrThrow(mod);
}

std::vector<ArrayId> replicateArray(Function& fn, ArrayId array,
                                    std::uint32_t copies) {
  HCP_CHECK(array < fn.numArrays());
  HCP_CHECK(copies >= 2);
  const ir::ArrayInfo original = fn.array(array);

  std::vector<ArrayId> replicas;
  for (std::uint32_t c = 0; c < copies; ++c) {
    ir::ArrayInfo info = original;
    info.name = original.name + "_rep" + std::to_string(c);
    replicas.push_back(fn.addArray(info));
  }

  // Redistribute existing loads round-robin over the replicas.
  std::uint32_t next = 0;
  const std::size_t numOpsBefore = fn.numOps();
  for (OpId id = 0; id < numOpsBefore; ++id) {
    Op& op = fn.op(id);
    if (op.opcode == Opcode::Load && op.array == array) {
      op.array = replicas[next % copies];
      ++next;
    }
  }

  // Pipelined copy loop: load the original once per word, store to every
  // replica. (II=1, so the latency cost is ~words cycles, overlapped.)
  ir::LoopInfo loop;
  loop.name = original.name + "_replicate";
  loop.parent = kRootRegion;
  loop.tripCount = std::max<std::uint64_t>(1, original.words);
  loop.pipelined = true;
  loop.initiationInterval = 1;
  const LoopId l = fn.addLoop(loop);

  std::uint16_t idxWidth = 1;
  while ((std::uint64_t{1} << idxWidth) < std::max<std::uint64_t>(
             2, original.words))
    ++idxWidth;

  Op idx;
  idx.opcode = Opcode::Const;  // stands in for the loop induction variable
  idx.bitwidth = idxWidth;
  idx.loop = l;
  idx.name = original.name + "_rep_idx";
  const OpId idxOp = fn.addOp(std::move(idx));
  fn.op(idxOp).originOp = idxOp;

  Op ld;
  ld.opcode = Opcode::Load;
  ld.bitwidth = original.bitwidth;
  ld.array = array;
  ld.operands = {Operand{idxOp, idxWidth}};
  ld.loop = l;
  ld.name = original.name + "_rep_load";
  const OpId ldOp = fn.addOp(std::move(ld));
  fn.op(ldOp).originOp = ldOp;

  for (ArrayId r : replicas) {
    Op st;
    st.opcode = Opcode::Store;
    st.bitwidth = 0;
    st.array = r;
    st.operands = {Operand{idxOp, idxWidth},
                   Operand{ldOp, original.bitwidth}};
    st.loop = l;
    const OpId stOp = fn.addOp(std::move(st));
    fn.op(stOp).originOp = stOp;
  }
  return replicas;
}

}  // namespace hcp::hls
