#include "hls/directives.hpp"

namespace hcp::hls {

std::optional<LoopDirective> DirectiveSet::loopDirective(
    const std::string& fn, const std::string& loop) const {
  const FunctionDirectives* fd = find(fn);
  if (!fd) return std::nullopt;
  auto it = fd->loops.find(loop);
  if (it == fd->loops.end()) return std::nullopt;
  return it->second;
}

std::optional<ArrayDirective> DirectiveSet::arrayDirective(
    const std::string& fn, const std::string& array) const {
  const FunctionDirectives* fd = find(fn);
  if (!fd) return std::nullopt;
  auto it = fd->arrays.find(array);
  if (it == fd->arrays.end()) return std::nullopt;
  return it->second;
}

bool DirectiveSet::shouldInline(const std::string& fn) const {
  const FunctionDirectives* fd = find(fn);
  return fd != nullptr && fd->inlineFunction;
}

}  // namespace hcp::hls
