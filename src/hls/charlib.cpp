#include "hls/charlib.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"

namespace hcp::hls {

using ir::Opcode;

CharLibrary CharLibrary::xilinx7() { return CharLibrary(); }

namespace {
double log2ceil(double x) { return std::ceil(std::log2(std::max(2.0, x))); }
}  // namespace

OperatorSpec CharLibrary::query(Opcode opcode, std::uint16_t width) const {
  const double w = std::max<std::uint16_t>(width, 1);
  OperatorSpec s;
  switch (opcode) {
    case Opcode::Add:
    case Opcode::Sub:
      // Carry-chain adder: one LUT per bit, delay grows with carry length.
      s.delayNs = 0.9 + 0.035 * w;
      s.res.lut = w;
      break;
    case Opcode::Neg:
      s.delayNs = 0.8 + 0.03 * w;
      s.res.lut = w;
      break;
    case Opcode::Min:
    case Opcode::Max:
    case Opcode::AbsDiff:
      // Compare + select.
      s.delayNs = 1.2 + 0.045 * w;
      s.res.lut = 1.8 * w;
      break;
    case Opcode::Mul:
      if (w > 10) {
        // DSP48-mapped; one DSP per 18x18 tile.
        const double tiles = std::ceil(w / 18.0);
        s.res.dsp = tiles * tiles;
        s.delayNs = 2.6 + 0.5 * (tiles - 1);
        s.latency = tiles > 1 ? 3 : 2;
        s.res.ff = 0.6 * w;  // pipeline registers inside the macro wrapper
      } else {
        s.res.lut = 1.1 * w * w / 2.0;
        s.delayNs = 1.5 + 0.09 * w;
      }
      break;
    case Opcode::MulAdd:
    case Opcode::Mac:
      // DSP48 pre-adder/post-adder fused pattern.
      s.res.dsp = std::ceil(w / 18.0);
      s.res.ff = 0.7 * w;
      s.delayNs = 2.9;
      s.latency = 3;
      break;
    case Opcode::Dot:
      s.res.dsp = 2.0 * std::ceil(w / 18.0);
      s.res.ff = 1.2 * w;
      s.delayNs = 3.2;
      s.latency = 4;
      break;
    case Opcode::Div:
    case Opcode::Rem:
      // Iterative radix-2 divider: w cycles, w^2-ish LUT area.
      s.res.lut = 1.4 * w * w / 3.0;
      s.res.ff = 3.0 * w;
      s.delayNs = 2.2;
      s.latency = static_cast<std::uint32_t>(w);
      break;
    case Opcode::FAdd:
    case Opcode::FSub:
      s.res.lut = 6.0 * w;
      s.res.ff = 4.0 * w;
      s.res.dsp = 0.0;
      s.delayNs = 2.8;
      s.latency = 4;
      break;
    case Opcode::FMul:
      s.res.dsp = 2.0;
      s.res.lut = 2.0 * w;
      s.res.ff = 3.0 * w;
      s.delayNs = 2.9;
      s.latency = 4;
      break;
    case Opcode::FDiv:
      s.res.lut = 8.0 * w;
      s.res.ff = 6.0 * w;
      s.delayNs = 3.0;
      s.latency = 12;
      break;
    case Opcode::FSqrt:
      s.res.lut = 7.0 * w;
      s.res.ff = 5.0 * w;
      s.delayNs = 3.0;
      s.latency = 10;
      break;
    case Opcode::And:
    case Opcode::Or:
    case Opcode::Xor:
    case Opcode::Not:
      s.delayNs = 0.45;
      s.res.lut = w / 2.0;
      break;
    case Opcode::Shl:
    case Opcode::LShr:
    case Opcode::AShr:
      // Barrel shifter: log stages of muxes.
      s.delayNs = 0.7 + 0.25 * log2ceil(w);
      s.res.lut = w * log2ceil(w) / 2.0;
      break;
    case Opcode::ICmpEq:
    case Opcode::ICmpNe:
    case Opcode::ICmpLt:
    case Opcode::ICmpLe:
    case Opcode::ICmpGt:
    case Opcode::ICmpGe:
      s.delayNs = 0.9 + 0.03 * w;
      s.res.lut = w / 1.5;
      break;
    case Opcode::FCmp:
      s.delayNs = 1.8;
      s.res.lut = 2.0 * w;
      s.latency = 1;
      break;
    case Opcode::Select:
    case Opcode::Mux:
      s.delayNs = 0.6;
      s.res.lut = w / 2.0;
      break;
    case Opcode::Load:
      // BRAM/LUTRAM read: registered output.
      s.delayNs = 2.1;
      s.latency = 1;
      s.res.lut = 2.0;  // address decode share
      break;
    case Opcode::Store:
      s.delayNs = 1.6;
      s.latency = 1;
      s.res.lut = 2.0;
      break;
    case Opcode::PopCount:
      s.delayNs = 1.0 + 0.2 * log2ceil(w);
      s.res.lut = 0.9 * w;
      break;
    case Opcode::Concat:
    case Opcode::Extract:
    case Opcode::BitCast:
    case Opcode::Trunc:
    case Opcode::ZExt:
    case Opcode::SExt:
    case Opcode::Passthrough:
      // Pure wiring.
      s.delayNs = 0.0;
      break;
    case Opcode::Const:
    case Opcode::Phi:
    case Opcode::Br:
    case Opcode::Switch:
    case Opcode::Ret:
    case Opcode::Port:
    case Opcode::ReadPort:
    case Opcode::WritePort:
    case Opcode::Alloca:
      s.delayNs = 0.0;
      break;
    case Opcode::Call:
      // Black-box submodule; latency/resources accounted by the caller from
      // the callee's report, not from the library.
      s.delayNs = 0.5;
      s.latency = 1;
      break;
  }
  return s;
}

OperatorSpec CharLibrary::muxSpec(std::uint32_t inputs,
                                  std::uint16_t width) const {
  HCP_CHECK(inputs >= 2);
  OperatorSpec s;
  const double stages = log2ceil(static_cast<double>(inputs));
  // One 2:1 mux bit fits half a LUT6; k-input mux needs (k-1) 2:1 stages.
  s.res.lut = static_cast<double>(inputs - 1) * width / 2.0;
  s.delayNs = 0.3 + 0.25 * stages;
  return s;
}

Resource CharLibrary::memorySpec(std::uint64_t words, std::uint16_t width,
                                 std::uint32_t banks) const {
  HCP_CHECK(banks >= 1);
  Resource r;
  const std::uint64_t wordsPerBank = (words + banks - 1) / banks;
  if (wordsPerBank <= 1) {
    // Fully partitioned: plain registers.
    r.ff = static_cast<double>(words) * width;
    r.lut = static_cast<double>(words) * width / 8.0;  // addressing fabric
    return r;
  }
  if (wordsPerBank * width <= 1024) {
    // Shallow banks map to distributed LUTRAM.
    r.lut = static_cast<double>(banks) *
            std::ceil(static_cast<double>(wordsPerBank) * width / 32.0);
    return r;
  }
  // RAMB18-equivalent blocks: 18Kb each (counted in RAMB18 units).
  const double bitsPerBank = static_cast<double>(wordsPerBank) * width;
  r.bram = static_cast<double>(banks) * std::ceil(bitsPerBank / (18.0 * 1024));
  return r;
}

Resource CharLibrary::registerSpec(std::uint16_t width) const {
  Resource r;
  r.ff = width;
  return r;
}

}  // namespace hcp::hls
