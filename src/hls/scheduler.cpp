#include "hls/scheduler.hpp"

#include <algorithm>
#include <array>

#include "support/error.hpp"

namespace hcp::hls {

using ir::Function;
using ir::kRootRegion;
using ir::LoopId;
using ir::Op;
using ir::Opcode;
using ir::OpId;

namespace {

/// Constrained resource classes. MemPort contention is per array, Call
/// contention per callee; DSP and Div are global pools.
enum class ResKind : std::uint8_t { None, Dsp, Div, MemPort, Call };

struct ResClass {
  ResKind kind = ResKind::None;
  std::uint32_t key = 0;    ///< array id / callee id / 0
  std::uint32_t limit = 0;  ///< concurrent ops allowed
};

/// Tracks per-step usage of constrained resources.
class StepResources {
 public:
  bool fits(const ResClass& rc, std::uint32_t step,
            std::uint32_t occupancy) const {
    if (rc.kind == ResKind::None) return true;
    const auto& m = usage_[static_cast<std::size_t>(rc.kind)];
    for (std::uint32_t s = step; s <= step + occupancy; ++s) {
      auto it = m.find({rc.key, s});
      if (it != m.end() && it->second >= rc.limit) return false;
    }
    return true;
  }

  void commit(const ResClass& rc, std::uint32_t step,
              std::uint32_t occupancy) {
    if (rc.kind == ResKind::None) return;
    auto& m = usage_[static_cast<std::size_t>(rc.kind)];
    for (std::uint32_t s = step; s <= step + occupancy; ++s)
      ++m[{rc.key, s}];
  }

 private:
  std::array<std::map<std::pair<std::uint32_t, std::uint32_t>, std::uint32_t>,
             5>
      usage_;
};

}  // namespace

Schedule schedule(const Function& fn, const CharLibrary& lib,
                  const ScheduleConstraints& constraints,
                  const std::map<std::string, std::uint64_t>& calleeLatency) {
  Schedule sched;
  sched.ops.resize(fn.numOps());
  const double budget =
      constraints.clockPeriodNs - constraints.clockUncertaintyNs;
  HCP_CHECK_MSG(budget > 0, "clock uncertainty exceeds the period");
  const double chainBudget =
      budget * std::clamp(constraints.chainingSlackFactor, 0.05, 1.0);

  StepResources steps;
  std::map<std::string, std::uint32_t> calleeKeys;

  auto classify = [&](const Op& op) -> ResClass {
    if (op.opcode == Opcode::Load || op.opcode == Opcode::Store) {
      const std::uint32_t banks =
          (op.array != ir::kInvalidIndex && op.array < fn.numArrays())
              ? std::max(1u, fn.array(op.array).banks)
              : 1u;
      return {ResKind::MemPort, op.array,
              std::max(1u, constraints.memPortsPerBank * banks)};
    }
    if (op.opcode == Opcode::Call) {
      const auto [it, inserted] = calleeKeys.emplace(
          op.name, static_cast<std::uint32_t>(calleeKeys.size()));
      (void)inserted;
      return {ResKind::Call, it->second,
              std::max(1u, constraints.callInstanceLimit)};
    }
    if (op.opcode == Opcode::Div || op.opcode == Opcode::Rem ||
        op.opcode == Opcode::FDiv || op.opcode == Opcode::FSqrt) {
      return {ResKind::Div, 0, std::max(1u, constraints.divLimit)};
    }
    if (lib.query(op.opcode, op.bitwidth).res.dsp > 0) {
      return {ResKind::Dsp, 0, std::max(1u, constraints.dspLimit)};
    }
    return {};
  };

  // Longest chained combinational path seen within each step.
  std::vector<double> stepPathNs;
  auto notePath = [&](std::uint32_t step, double reach) {
    if (stepPathNs.size() <= step) stepPathNs.resize(step + 1, 0.0);
    stepPathNs[step] = std::max(stepPathNs[step], reach);
  };

  for (OpId id = 0; id < fn.numOps(); ++id) {
    const Op& op = fn.op(id);
    OperatorSpec spec = lib.query(op.opcode, op.bitwidth);
    std::uint32_t latency = spec.latency;
    if (op.opcode == Opcode::Call) {
      auto it = calleeLatency.find(op.name);
      // +2 for the registered interface handshake (ap_start/ap_done) — this
      // is the per-call overhead the case study's "Not Inline" step pays.
      if (it != calleeLatency.end())
        latency = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(it->second + 2, 1u << 20));
    }
    // An operator slower than the chaining budget still has to fit; treat it
    // as a registered (1-cycle minimum) unit.
    double delay = spec.delayNs;
    if (delay > chainBudget) {
      latency = std::max<std::uint32_t>(latency, 1);
      delay = chainBudget;
    }

    // Earliest start honouring dependencies + chaining.
    std::uint32_t start = 0;
    double offset = 0.0;
    for (const ir::Operand& use : op.operands) {
      const OpSchedule& p = sched.ops[use.producer];
      if (p.latency > 0) {
        // Registered producer: result available at the step after it ends.
        if (p.endStep + 1 > start) {
          start = p.endStep + 1;
          offset = 0.0;
        }
      } else {
        const double reach = p.startOffsetNs + p.delayNs;
        if (p.startStep > start) {
          start = p.startStep;
          offset = reach;
        } else if (p.startStep == start) {
          offset = std::max(offset, reach);
        }
      }
    }
    // Chaining: if this op's delay does not fit in the remaining budget,
    // push to the next step.
    if (latency == 0 && offset + delay > chainBudget && offset > 0.0) {
      ++start;
      offset = 0.0;
    }
    if (latency > 0 && offset > 0.0) {
      // Multi-cycle units register their inputs; start at the next boundary
      // only if chaining into them would overrun.
      if (offset + 0.5 > chainBudget) ++start;
      offset = 0.0;
    }

    // Resource constraints: slide forward until a slot is free.
    const ResClass rc = classify(op);
    const std::uint32_t occupancy = latency > 0 ? latency - 1 : 0;
    while (!steps.fits(rc, start, occupancy)) {
      ++start;
      offset = 0.0;
    }
    steps.commit(rc, start, occupancy);

    OpSchedule& s = sched.ops[id];
    s.startStep = start;
    s.endStep = start + occupancy;
    s.startOffsetNs = offset;
    s.delayNs = delay;
    s.latency = latency;
    notePath(latency > 0 ? s.endStep : start,
             latency > 0 ? delay : offset + delay);
    sched.numSteps = std::max(sched.numSteps, s.endStep + 1);
  }

  sched.estimatedClockNs = 0.0;
  for (double p : stepPathNs)
    sched.estimatedClockNs = std::max(sched.estimatedClockNs, p);

  // --- loop-aware latency roll-up -----------------------------------------
  // depth(region) = span of steps used by ops directly in the region, plus
  // the effective latency of each child loop (executed once per iteration).
  // eff(loop) = pipelined ? depth + (trip-1)*II : trip * depth.
  const std::size_t numLoops = fn.numLoops();
  std::vector<std::uint64_t> directSpan(numLoops, 0);
  std::vector<std::uint32_t> lo(numLoops, ~0u), hi(numLoops, 0);
  std::vector<bool> hasDirect(numLoops, false);
  for (OpId id = 0; id < fn.numOps(); ++id) {
    const LoopId l = fn.op(id).loop;
    lo[l] = std::min(lo[l], sched.ops[id].startStep);
    hi[l] = std::max(hi[l], sched.ops[id].endStep);
    hasDirect[l] = true;
  }
  for (LoopId l = 0; l < numLoops; ++l)
    if (hasDirect[l]) directSpan[l] = hi[l] - lo[l] + 1;

  std::vector<std::vector<LoopId>> children(numLoops);
  for (LoopId l = 1; l < numLoops; ++l)
    children[fn.loop(l).parent].push_back(l);

  // Loops are stored parent-before-child, so a reverse sweep computes
  // children before parents.
  std::vector<std::uint64_t> eff(numLoops, 0);
  for (LoopId l = static_cast<LoopId>(numLoops); l-- > 0;) {
    std::uint64_t depth = directSpan[l];
    for (LoopId c : children[l]) depth += eff[c];
    depth = std::max<std::uint64_t>(depth, 1);
    const ir::LoopInfo& info = fn.loop(l);
    if (l == kRootRegion) {
      eff[l] = depth;
    } else if (info.pipelined) {
      eff[l] = depth + (info.tripCount - 1) * info.initiationInterval;
    } else {
      eff[l] = info.tripCount * depth;
    }
  }
  sched.totalLatency = eff[kRootRegion];
  return sched;
}

}  // namespace hcp::hls
