#include "hls/binder.hpp"

#include <algorithm>
#include <map>

namespace hcp::hls {

using ir::Function;
using ir::Opcode;
using ir::OpId;

namespace {
bool inPipelinedLoop(const Function& fn, OpId id) {
  ir::LoopId l = fn.op(id).loop;
  while (l != ir::kRootRegion) {
    if (fn.loop(l).pipelined) return true;
    l = fn.loop(l).parent;
  }
  return false;
}

/// Width bucket for sharing compatibility: units are sized to the widest
/// member, so only similar widths share (rounded up to multiples of 8).
std::uint16_t widthBucket(std::uint16_t w) {
  return static_cast<std::uint16_t>(((w + 7) / 8) * 8);
}
}  // namespace

Binding bind(const Function& fn, const Schedule& sched,
             const CharLibrary& lib, const BindConstraints& constraints,
             const std::map<std::string, Resource>& calleeRes) {
  Binding binding;
  binding.fuOfOp.assign(fn.numOps(), ir::kInvalidIndex);

  auto unitResOf = [&](Opcode opcode, std::uint16_t width,
                       const std::string& callee) {
    if (opcode == Opcode::Call) {
      auto it = calleeRes.find(callee);
      return it != calleeRes.end() ? it->second : Resource{};
    }
    return lib.query(opcode, width).res;
  };

  // Partition sharable ops into compatibility classes. Call sites of one
  // callee form their own class keyed by the callee name.
  std::map<std::tuple<Opcode, std::uint16_t, std::string>, std::vector<OpId>>
      classes;
  for (OpId id = 0; id < fn.numOps(); ++id) {
    const ir::Op& op = fn.op(id);
    const bool isCall = op.opcode == Opcode::Call;
    if (!isCall && !ir::isFunctionalUnit(op.opcode)) continue;
    const bool sharable =
        (isCall || ir::isSharable(op.opcode)) &&
        (constraints.shareInPipelinedLoops || !inPipelinedLoop(fn, id));
    if (sharable) {
      classes[{op.opcode, isCall ? 0 : widthBucket(op.bitwidth),
               isCall ? op.name : std::string()}]
          .push_back(id);
    } else {
      FuInstance fu;
      fu.opcode = op.opcode;
      fu.width = op.bitwidth;
      fu.ops = {id};
      if (isCall) fu.callee = op.name;
      fu.unitRes = unitResOf(op.opcode, op.bitwidth, fu.callee);
      binding.fuOfOp[id] = static_cast<std::uint32_t>(binding.fus.size());
      binding.fus.push_back(std::move(fu));
    }
  }

  // Left-edge interval packing per class: sort by start step, place each op
  // on the first unit whose last interval ended before this op starts.
  for (auto& [key, ops] : classes) {
    std::sort(ops.begin(), ops.end(), [&](OpId a, OpId b) {
      return sched.ops[a].startStep < sched.ops[b].startStep ||
             (sched.ops[a].startStep == sched.ops[b].startStep && a < b);
    });
    struct Unit {
      std::vector<OpId> ops;
      std::uint32_t lastEnd = 0;
      std::uint16_t maxWidth = 0;
    };
    std::vector<Unit> units;
    for (OpId id : ops) {
      const auto& s = sched.ops[id];
      Unit* placed = nullptr;
      for (Unit& u : units) {
        if (u.ops.size() < constraints.maxGroupSize &&
            u.lastEnd < s.startStep) {
          placed = &u;
          break;
        }
      }
      if (!placed) {
        units.emplace_back();
        placed = &units.back();
      }
      placed->ops.push_back(id);
      placed->lastEnd = std::max(placed->lastEnd, s.endStep);
      placed->maxWidth = std::max(placed->maxWidth, fn.op(id).bitwidth);
    }
    for (Unit& u : units) {
      FuInstance fu;
      fu.opcode = std::get<0>(key);
      fu.width = u.maxWidth;
      fu.ops = std::move(u.ops);
      fu.callee = std::get<2>(key);
      fu.unitRes = unitResOf(fu.opcode, u.maxWidth, fu.callee);
      if (fu.ops.size() > 1) {
        // One mux per operand port, as many inputs as sharers.
        const std::size_t operandPorts = fn.op(fu.ops.front()).operands.size();
        fu.muxInputs = static_cast<std::uint32_t>(fu.ops.size());
        fu.muxCount = static_cast<std::uint32_t>(std::max<std::size_t>(
            1, operandPorts));
        const OperatorSpec mux = lib.muxSpec(fu.muxInputs, fu.width);
        for (std::uint32_t m = 0; m < fu.muxCount; ++m) fu.muxRes += mux.res;
        ++binding.sharedUnits;
        binding.sharedOps += fu.ops.size();
      }
      binding.totalMuxCount += fu.muxCount;
      binding.totalMuxRes += fu.muxRes;
      const auto fuIdx = static_cast<std::uint32_t>(binding.fus.size());
      for (OpId id : fu.ops) binding.fuOfOp[id] = fuIdx;
      binding.fus.push_back(std::move(fu));
    }
  }
  return binding;
}

std::size_t mergeIntoGraph(ir::DependencyGraph& graph,
                           const Binding& binding) {
  std::size_t merges = 0;
  for (const FuInstance& fu : binding.fus) {
    if (fu.ops.size() < 2) continue;
    graph.mergeOps(fu.ops);
    ++merges;
  }
  return merges;
}

}  // namespace hcp::hls
