#include "fpga/congestion.hpp"

#include <algorithm>
#include <sstream>

namespace hcp::fpga {

double CongestionMap::maxVUtil() const {
  double m = 0.0;
  for (std::uint32_t y = 0; y < height_; ++y)
    for (std::uint32_t x = 0; x < width_; ++x) m = std::max(m, vUtil(x, y));
  return m;
}

double CongestionMap::maxHUtil() const {
  double m = 0.0;
  for (std::uint32_t y = 0; y < height_; ++y)
    for (std::uint32_t x = 0; x < width_; ++x) m = std::max(m, hUtil(x, y));
  return m;
}

double CongestionMap::meanVUtil() const {
  double s = 0.0;
  for (std::uint32_t y = 0; y < height_; ++y)
    for (std::uint32_t x = 0; x < width_; ++x) s += vUtil(x, y);
  return s / static_cast<double>(vDemand_.size());
}

double CongestionMap::meanHUtil() const {
  double s = 0.0;
  for (std::uint32_t y = 0; y < height_; ++y)
    for (std::uint32_t x = 0; x < width_; ++x) s += hUtil(x, y);
  return s / static_cast<double>(hDemand_.size());
}

CongestionMap CongestionMap::smoothed(std::uint32_t radius) const {
  CongestionMap out = *this;
  if (radius == 0) return out;
  auto blur = [&](const std::vector<double>& src, std::vector<double>& dst) {
    for (std::uint32_t y = 0; y < height_; ++y) {
      for (std::uint32_t x = 0; x < width_; ++x) {
        double sum = 0.0;
        std::size_t count = 0;
        const std::uint32_t x0 = x > radius ? x - radius : 0;
        const std::uint32_t y0 = y > radius ? y - radius : 0;
        const std::uint32_t x1 = std::min(width_ - 1, x + radius);
        const std::uint32_t y1 = std::min(height_ - 1, y + radius);
        for (std::uint32_t yy = y0; yy <= y1; ++yy)
          for (std::uint32_t xx = x0; xx <= x1; ++xx) {
            sum += src[idx(xx, yy)];
            ++count;
          }
        dst[idx(x, y)] = sum / static_cast<double>(count);
      }
    }
  };
  std::vector<double> tmp(vDemand_.size());
  blur(vDemand_, tmp);
  out.vDemand_ = tmp;
  blur(hDemand_, tmp);
  out.hDemand_ = tmp;
  if (!vCapTile_.empty()) {
    blur(vCapTile_, tmp);
    out.vCapTile_ = tmp;
    blur(hCapTile_, tmp);
    out.hCapTile_ = tmp;
  }
  return out;
}

std::size_t CongestionMap::tilesOver(double thresholdPercent) const {
  std::size_t count = 0;
  for (std::uint32_t y = 0; y < height_; ++y)
    for (std::uint32_t x = 0; x < width_; ++x)
      if (vUtil(x, y) > thresholdPercent || hUtil(x, y) > thresholdPercent)
        ++count;
  return count;
}

std::string CongestionMap::toAscii(bool vertical) const {
  std::ostringstream os;
  for (std::uint32_t row = 0; row < height_; ++row) {
    const std::uint32_t y = height_ - 1 - row;  // row 0 on top
    for (std::uint32_t x = 0; x < width_; ++x) {
      const double u = vertical ? vUtil(x, y) : hUtil(x, y);
      char c = '.';
      if (u >= 100.0) c = '@';
      else if (u >= 75.0) c = '#';
      else if (u >= 50.0) c = '+';
      else if (u >= 25.0) c = ':';
      os << c;
    }
    os << "\n";
  }
  return os.str();
}

std::string CongestionMap::toCsv() const {
  std::ostringstream os;
  os << "x,y,v_util,h_util\n";
  for (std::uint32_t y = 0; y < height_; ++y)
    for (std::uint32_t x = 0; x < width_; ++x)
      os << x << "," << y << "," << vUtil(x, y) << "," << hUtil(x, y)
         << "\n";
  return os.str();
}

}  // namespace hcp::fpga
