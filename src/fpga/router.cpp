#include "fpga/router.hpp"

#include <algorithm>
#include <cmath>

#include "support/telemetry.hpp"

namespace hcp::fpga {

namespace {

struct Window {
  std::uint32_t x0, y0, x1, y1;
  bool contains(std::uint32_t x, std::uint32_t y) const {
    return x >= x0 && x <= x1 && y >= y0 && y <= y1;
  }
  std::uint32_t w() const { return x1 - x0 + 1; }
  std::uint32_t h() const { return y1 - y0 + 1; }
  std::size_t idx(std::uint32_t x, std::uint32_t y) const {
    return static_cast<std::size_t>(y - y0) * w() + (x - x0);
  }
};

class Router {
 public:
  Router(const Packing& packing, const Placement& placement,
         const Device& device, const RouterConfig& config)
      : packing_(packing), placement_(placement), device_(device),
        config_(config),
        map_(CongestionMap::forDevice(device)),
        vHistory_(device.numTiles(), 0.0),
        hHistory_(device.numTiles(), 0.0),
        tileDirty_(device.numTiles(), 0) {}

  RoutingResult run() {
    routes_.resize(packing_.nets.size());
    double presentFactor = 0.6;

    int iter = 0;
    for (; iter < config_.maxIterations; ++iter) {
      // Decide which nets to (re)route this round.
      work_.clear();
      for (std::size_t n = 0; n < packing_.nets.size(); ++n) {
        if (iter == 0 || routeOverflows(n)) work_.push_back(n);
      }
      if (work_.empty()) break;

      for (std::size_t n : work_) {
        if (!routes_[n].empty()) ++ripUps_;
        ripUp(n);
        routeNet(n, presentFactor);
      }

      // Accumulate history on overflowed segments. Each tile's update is
      // independent, so the dirty-tile sweep produces bit-identical history
      // values and overflow counts to the pre-incremental full-grid scan
      // (kept below as the reference mode, asserted equal by the tests).
      bool anyOverflow = false;
      std::uint64_t overflowTilesThisIter = 0;
      const auto scanTile = [&](std::uint32_t x, std::uint32_t y) {
        const std::size_t i = device_.index(x, y);
        const double vOver = map_.vDemand(x, y) - map_.vCapAt(x, y);
        const double hOver = map_.hDemand(x, y) - map_.hCapAt(x, y);
        if (vOver > 0) {
          vHistory_[i] += config_.historyGain * vOver / map_.vCapAt(x, y);
          anyOverflow = true;
        }
        if (hOver > 0) {
          hHistory_[i] += config_.historyGain * hOver / map_.hCapAt(x, y);
          anyOverflow = true;
        }
        if (vOver > 0 || hOver > 0) ++overflowTilesThisIter;
      };
      // The dirty set is derived here, after routing, from the work set's
      // final routes — not maintained step-by-step inside the A*/rip-up hot
      // loops, which would tax every demand charge. It is exact: a tile can
      // only end the iteration overflowed if it was already overflowed at
      // the last sweep (then every net through it is in this work set, and
      // any net still crossing it puts it on a scanned route; if all left,
      // its demand is gone) or if a work-set net was just routed through it
      // (then it is on that route). Either way the tile lies on a work-set
      // net's current route. When the work set covers most nets (always
      // iteration 0), walking their routes costs more than the grid scan it
      // replaces, so fall back to the full sweep — same result, the
      // scanned superset only adds zero-overflow no-ops.
      bool fullScan = !config_.dirtyTileScan;
      if (config_.dirtyTileScan) {
        std::size_t steps = 0;
        for (std::size_t n : work_) steps += routes_[n].size();
        fullScan = steps >= device_.numTiles();
      }
      if (fullScan) {
        if (config_.dirtyTileScan) dirtyScanned_ += device_.numTiles();
        for (std::uint32_t y = 0; y < device_.height(); ++y)
          for (std::uint32_t x = 0; x < device_.width(); ++x)
            scanTile(x, y);
      } else {
        for (const std::uint32_t t : dirtyTiles_) tileDirty_[t] = 0;
        dirtyTiles_.clear();
        for (std::size_t n : work_)
          for (const RouteStep& s : routes_[n]) markDirty(s.x, s.y);
        dirtyScanned_ += dirtyTiles_.size();
        for (const std::uint32_t t : dirtyTiles_)
          scanTile(t % device_.width(), t / device_.width());
      }
      support::telemetry::observe(
          support::telemetry::Histogram::RouterOverflowTilesPerIter,
          static_cast<double>(overflowTilesThisIter));
      presentFactor *= config_.presentFactorGrowth;
      if (!anyOverflow) {
        ++iter;
        break;
      }
    }

    RoutingResult result{std::move(map_), std::move(routes_), 0.0, 0, iter};
    for (std::size_t n = 0; n < packing_.nets.size(); ++n)
      result.totalWirelength +=
          static_cast<double>(packing_.nets[n].width) *
          static_cast<double>(result.routes[n].size());
    result.overflowTiles = result.map.tilesOver(100.0);
    namespace tm = support::telemetry;
    tm::count(tm::Counter::RouterIterations, static_cast<std::uint64_t>(iter));
    tm::count(tm::Counter::RouterRipUps, ripUps_);
    tm::count(tm::Counter::RouterOverflowTiles, result.overflowTiles);
    tm::count(tm::Counter::RouterDirtyTiles, dirtyScanned_);
    return result;
  }

 private:
  void markDirty(std::uint32_t x, std::uint32_t y) {
    const auto i = static_cast<std::uint32_t>(device_.index(x, y));
    if (!tileDirty_[i]) {
      tileDirty_[i] = 1;
      dirtyTiles_.push_back(i);
    }
  }

  bool routeOverflows(std::size_t n) const {
    for (const RouteStep& s : routes_[n]) {
      if (s.vertical) {
        if (map_.vDemand(s.x, s.y) > map_.vCapAt(s.x, s.y)) return true;
      } else {
        if (map_.hDemand(s.x, s.y) > map_.hCapAt(s.x, s.y)) return true;
      }
    }
    return false;
  }

  void ripUp(std::size_t n) {
    const double w = packing_.nets[n].width;
    for (const RouteStep& s : routes_[n]) {
      if (s.vertical) map_.removeVertical(s.x, s.y, w);
      else map_.removeHorizontal(s.x, s.y, w);
    }
    routes_[n].clear();
  }

  /// Cost of taking one step through (x,y) in the given orientation.
  double stepCost(std::uint32_t x, std::uint32_t y, bool vertical,
                  double width, double presentFactor) const {
    const std::size_t i = device_.index(x, y);
    const double cap = vertical ? map_.vCapAt(x, y) : map_.hCapAt(x, y);
    const double demand =
        (vertical ? map_.vDemand(x, y) : map_.hDemand(x, y)) + width;
    const double hist = vertical ? vHistory_[i] : hHistory_[i];
    double cost = 1.0 + hist;
    if (demand > cap) cost += presentFactor * (demand - cap) / cap;
    return cost;
  }

  void routeNet(std::size_t n, double presentFactor) {
    const ClusterNet& net = packing_.nets[n];
    const TileXY src = placement_.tileOfCluster[net.driver];

    // Sinks ordered by distance from the driver.
    sinks_.clear();
    for (ClusterId s : net.sinks) sinks_.push_back(placement_.tileOfCluster[s]);
    std::sort(sinks_.begin(), sinks_.end(), [&](TileXY a, TileXY b) {
      const auto da = Device::manhattan(src.x, src.y, a.x, a.y);
      const auto db = Device::manhattan(src.x, src.y, b.x, b.y);
      return da < db || (da == db && (a.x != b.x ? a.x < b.x : a.y < b.y));
    });

    // Window: bbox of all terminals plus margin.
    std::uint32_t x0 = src.x, x1 = src.x, y0 = src.y, y1 = src.y;
    for (const TileXY& s : sinks_) {
      x0 = std::min(x0, s.x);
      x1 = std::max(x1, s.x);
      y0 = std::min(y0, s.y);
      y1 = std::max(y1, s.y);
    }
    const auto m = static_cast<std::uint32_t>(config_.bboxMargin);
    Window win{
        x0 > m ? x0 - m : 0, y0 > m ? y0 - m : 0,
        std::min(device_.width() - 1, x1 + m),
        std::min(device_.height() - 1, y1 + m)};

    // Search state is reused across sinks and nets: the arrays only ever
    // grow to the largest window seen, per-sink invalidation is one epoch
    // bump (dist entries from older epochs read as +inf), and the open
    // list keeps its heap storage. This removes the per-sink O(window)
    // allocate+fill churn the original router paid.
    const std::size_t tiles = static_cast<std::size_t>(win.w()) * win.h();
    if (dist_.size() < tiles) {
      dist_.resize(tiles);
      from_.resize(tiles);
      stamp_.resize(tiles, 0);
    }

    // Tree membership per window tile (per-net, so a plain refill).
    inTree_.assign(tiles, false);
    inTree_[win.idx(src.x, src.y)] = true;

    for (const TileXY& sink : sinks_) {
      if (inTree_[win.idx(sink.x, sink.y)]) continue;
      connectSink(n, sink, win, presentFactor);
    }
  }

  /// A* from `sink` to the nearest tree tile; adds the path to the tree and
  /// charges demand.
  void connectSink(std::size_t n, TileXY sink, const Window& win,
                   double presentFactor) {
    const double width = packing_.nets[n].width;
    ++epoch_;
    const auto distAt = [&](std::size_t i) {
      return stamp_[i] == epoch_ ? dist_[i]
                                 : std::numeric_limits<double>::infinity();
    };

    // Min-heap via push_heap/pop_heap on a reused vector — the exact
    // algorithm std::priority_queue runs, so pop order (ties included) is
    // identical; unlike priority_queue the storage survives clear().
    using QE = std::pair<double, std::uint32_t>;  // (cost, window index)
    heap_.clear();
    const auto push = [&](double c, std::uint32_t i) {
      heap_.emplace_back(c, i);
      std::push_heap(heap_.begin(), heap_.end(), std::greater<QE>{});
    };
    const std::size_t start = win.idx(sink.x, sink.y);
    dist_[start] = 0.0;
    stamp_[start] = epoch_;
    push(0.0, static_cast<std::uint32_t>(start));

    std::size_t goal = std::numeric_limits<std::size_t>::max();
    while (!heap_.empty()) {
      std::pop_heap(heap_.begin(), heap_.end(), std::greater<QE>{});
      const auto [d, ui] = heap_.back();
      heap_.pop_back();
      if (d > distAt(ui)) continue;
      if (inTree_[ui]) {
        goal = ui;
        break;
      }
      const std::uint32_t ux = win.x0 + ui % win.w();
      const std::uint32_t uy = win.y0 + ui / win.w();
      struct Dir {
        std::int32_t dx, dy;
        std::int8_t code;
        bool vertical;
      };
      static constexpr Dir dirs[4] = {
          {-1, 0, 0, false}, {1, 0, 1, false}, {0, -1, 2, true},
          {0, 1, 3, true}};
      for (const Dir& dir : dirs) {
        const std::int64_t nx = static_cast<std::int64_t>(ux) + dir.dx;
        const std::int64_t ny = static_cast<std::int64_t>(uy) + dir.dy;
        if (nx < win.x0 || ny < win.y0 || nx > win.x1 || ny > win.y1)
          continue;
        // Charge the channel of the tile being *left* — a step from u to v
        // consumes u's channel segment in that orientation.
        const double c =
            d + stepCost(ux, uy, dir.vertical, width, presentFactor);
        const std::size_t vi =
            win.idx(static_cast<std::uint32_t>(nx),
                    static_cast<std::uint32_t>(ny));
        if (c < distAt(vi)) {
          dist_[vi] = c;
          stamp_[vi] = epoch_;
          from_[vi] = dir.code;
          push(c, static_cast<std::uint32_t>(vi));
        }
      }
    }
    HCP_CHECK_MSG(goal != std::numeric_limits<std::size_t>::max(),
                  "router: sink unreachable (window too small?)");

    // Walk back from the tree hit to the sink, marking tree tiles and
    // charging demand. The path was searched sink->tree, so we retrace using
    // the arrival directions.
    std::size_t cur = goal;
    while (cur != start) {
      inTree_[cur] = true;
      const std::uint32_t cx = win.x0 + cur % win.w();
      const std::uint32_t cy = win.y0 + cur / win.w();
      const std::int8_t code = from_[cur];
      // Invert the step to find the predecessor (closer to the sink).
      std::uint32_t px = cx, py = cy;
      bool vertical = false;
      switch (code) {
        case 0: px = cx + 1; vertical = false; break;  // arrived going west
        case 1: px = cx - 1; vertical = false; break;
        case 2: py = cy + 1; vertical = true; break;
        case 3: py = cy - 1; vertical = true; break;
        default: HCP_CHECK_MSG(false, "router: broken backtrace");
      }
      // The step px/py -> cx/cy consumed the channel at (px, py).
      routes_[n].push_back(RouteStep{px, py, vertical});
      if (vertical) map_.addVertical(px, py, packing_.nets[n].width);
      else map_.addHorizontal(px, py, packing_.nets[n].width);
      cur = win.idx(px, py);
    }
    inTree_[start] = true;
  }

  const Packing& packing_;
  const Placement& placement_;
  const Device& device_;
  const RouterConfig& config_;
  CongestionMap map_;
  std::vector<double> vHistory_, hHistory_;
  std::vector<std::vector<RouteStep>> routes_;
  std::uint64_t ripUps_ = 0;

  // Reused per-iteration / per-net / per-sink scratch (see routeNet).
  std::vector<std::size_t> work_;
  std::vector<TileXY> sinks_;
  std::vector<bool> inTree_;
  std::vector<double> dist_;
  std::vector<std::int8_t> from_;  // 0=W,1=E,2=S,3=N arrival dir
  std::vector<std::uint64_t> stamp_;
  std::uint64_t epoch_ = 0;
  std::vector<std::pair<double, std::uint32_t>> heap_;

  // Dirty-tile set: tiles on the work set's final routes, i.e. the only
  // tiles the overflow/history sweep needs to visit (derived at sweep
  // time — see run()).
  std::vector<std::uint32_t> dirtyTiles_;
  std::vector<std::uint8_t> tileDirty_;
  std::uint64_t dirtyScanned_ = 0;
};

}  // namespace

RoutingResult route(const Packing& packing, const Placement& placement,
                    const Device& device, const RouterConfig& config) {
  HCP_SPAN("route");
  Router router(packing, placement, device, config);
  return router.run();
}

CongestionMap estimateRudy(const Packing& packing,
                           const Placement& placement,
                           const Device& device) {
  CongestionMap map = CongestionMap::forDevice(device);
  for (const ClusterNet& net : packing.nets) {
    const TileXY d = placement.tileOfCluster[net.driver];
    std::uint32_t x0 = d.x, x1 = d.x, y0 = d.y, y1 = d.y;
    for (ClusterId s : net.sinks) {
      const TileXY p = placement.tileOfCluster[s];
      x0 = std::min(x0, p.x);
      x1 = std::max(x1, p.x);
      y0 = std::min(y0, p.y);
      y1 = std::max(y1, p.y);
    }
    const double w = (x1 - x0) + 1.0;
    const double h = (y1 - y0) + 1.0;
    // RUDY: wirelength smeared uniformly over the bbox; horizontal demand
    // proportional to the net's x-span, vertical to its y-span.
    const double hDemandPerTile =
        static_cast<double>(net.width) * (w - 1.0) / (w * h);
    const double vDemandPerTile =
        static_cast<double>(net.width) * (h - 1.0) / (w * h);
    for (std::uint32_t y = y0; y <= y1; ++y) {
      for (std::uint32_t x = x0; x <= x1; ++x) {
        if (hDemandPerTile > 0) map.addHorizontal(x, y, hDemandPerTile);
        if (vDemandPerTile > 0) map.addVertical(x, y, vDemandPerTile);
      }
    }
  }
  return map;
}

}  // namespace hcp::fpga
