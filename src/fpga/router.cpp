#include "fpga/router.hpp"

#include <algorithm>
#include <cmath>
#include <queue>

#include "support/telemetry.hpp"

namespace hcp::fpga {

namespace {

/// Directed channel-segment id: (tile, orientation).
struct SegCost {
  std::vector<double> history;  ///< accumulated overflow history
  explicit SegCost(std::size_t tiles) : history(tiles, 0.0) {}
};

struct Window {
  std::uint32_t x0, y0, x1, y1;
  bool contains(std::uint32_t x, std::uint32_t y) const {
    return x >= x0 && x <= x1 && y >= y0 && y <= y1;
  }
  std::uint32_t w() const { return x1 - x0 + 1; }
  std::uint32_t h() const { return y1 - y0 + 1; }
  std::size_t idx(std::uint32_t x, std::uint32_t y) const {
    return static_cast<std::size_t>(y - y0) * w() + (x - x0);
  }
};

class Router {
 public:
  Router(const Packing& packing, const Placement& placement,
         const Device& device, const RouterConfig& config)
      : packing_(packing), placement_(placement), device_(device),
        config_(config),
        map_(CongestionMap::forDevice(device)),
        vHistory_(device.numTiles(), 0.0),
        hHistory_(device.numTiles(), 0.0) {}

  RoutingResult run() {
    routes_.resize(packing_.nets.size());
    double presentFactor = 0.6;

    int iter = 0;
    for (; iter < config_.maxIterations; ++iter) {
      // Decide which nets to (re)route this round.
      std::vector<std::size_t> work;
      for (std::size_t n = 0; n < packing_.nets.size(); ++n) {
        if (iter == 0 || routeOverflows(n)) work.push_back(n);
      }
      if (work.empty()) break;

      for (std::size_t n : work) {
        if (!routes_[n].empty()) ++ripUps_;
        ripUp(n);
        routeNet(n, presentFactor);
      }

      // Accumulate history on overflowed segments.
      bool anyOverflow = false;
      std::uint64_t overflowTilesThisIter = 0;
      for (std::uint32_t y = 0; y < device_.height(); ++y) {
        for (std::uint32_t x = 0; x < device_.width(); ++x) {
          const std::size_t i = device_.index(x, y);
          const double vOver = map_.vDemand(x, y) - map_.vCapAt(x, y);
          const double hOver = map_.hDemand(x, y) - map_.hCapAt(x, y);
          if (vOver > 0) {
            vHistory_[i] += config_.historyGain * vOver / map_.vCapAt(x, y);
            anyOverflow = true;
          }
          if (hOver > 0) {
            hHistory_[i] += config_.historyGain * hOver / map_.hCapAt(x, y);
            anyOverflow = true;
          }
          if (vOver > 0 || hOver > 0) ++overflowTilesThisIter;
        }
      }
      support::telemetry::observe(
          support::telemetry::Histogram::RouterOverflowTilesPerIter,
          static_cast<double>(overflowTilesThisIter));
      presentFactor *= config_.presentFactorGrowth;
      if (!anyOverflow) {
        ++iter;
        break;
      }
    }

    RoutingResult result{std::move(map_), std::move(routes_), 0.0, 0, iter};
    for (std::size_t n = 0; n < packing_.nets.size(); ++n)
      result.totalWirelength +=
          static_cast<double>(packing_.nets[n].width) *
          static_cast<double>(result.routes[n].size());
    result.overflowTiles = result.map.tilesOver(100.0);
    namespace tm = support::telemetry;
    tm::count(tm::Counter::RouterIterations, static_cast<std::uint64_t>(iter));
    tm::count(tm::Counter::RouterRipUps, ripUps_);
    tm::count(tm::Counter::RouterOverflowTiles, result.overflowTiles);
    return result;
  }

 private:
  bool routeOverflows(std::size_t n) const {
    for (const RouteStep& s : routes_[n]) {
      if (s.vertical) {
        if (map_.vDemand(s.x, s.y) > map_.vCapAt(s.x, s.y)) return true;
      } else {
        if (map_.hDemand(s.x, s.y) > map_.hCapAt(s.x, s.y)) return true;
      }
    }
    return false;
  }

  void ripUp(std::size_t n) {
    const double w = packing_.nets[n].width;
    for (const RouteStep& s : routes_[n]) {
      if (s.vertical) map_.removeVertical(s.x, s.y, w);
      else map_.removeHorizontal(s.x, s.y, w);
    }
    routes_[n].clear();
  }

  /// Cost of taking one step through (x,y) in the given orientation.
  double stepCost(std::uint32_t x, std::uint32_t y, bool vertical,
                  double width, double presentFactor) const {
    const std::size_t i = device_.index(x, y);
    const double cap = vertical ? map_.vCapAt(x, y) : map_.hCapAt(x, y);
    const double demand =
        (vertical ? map_.vDemand(x, y) : map_.hDemand(x, y)) + width;
    const double hist = vertical ? vHistory_[i] : hHistory_[i];
    double cost = 1.0 + hist;
    if (demand > cap) cost += presentFactor * (demand - cap) / cap;
    return cost;
  }

  void routeNet(std::size_t n, double presentFactor) {
    const ClusterNet& net = packing_.nets[n];
    const TileXY src = placement_.tileOfCluster[net.driver];

    // Sinks ordered by distance from the driver.
    std::vector<TileXY> sinks;
    for (ClusterId s : net.sinks) sinks.push_back(placement_.tileOfCluster[s]);
    std::sort(sinks.begin(), sinks.end(), [&](TileXY a, TileXY b) {
      const auto da = Device::manhattan(src.x, src.y, a.x, a.y);
      const auto db = Device::manhattan(src.x, src.y, b.x, b.y);
      return da < db || (da == db && (a.x != b.x ? a.x < b.x : a.y < b.y));
    });

    // Window: bbox of all terminals plus margin.
    std::uint32_t x0 = src.x, x1 = src.x, y0 = src.y, y1 = src.y;
    for (const TileXY& s : sinks) {
      x0 = std::min(x0, s.x);
      x1 = std::max(x1, s.x);
      y0 = std::min(y0, s.y);
      y1 = std::max(y1, s.y);
    }
    const auto m = static_cast<std::uint32_t>(config_.bboxMargin);
    Window win{
        x0 > m ? x0 - m : 0, y0 > m ? y0 - m : 0,
        std::min(device_.width() - 1, x1 + m),
        std::min(device_.height() - 1, y1 + m)};

    // Tree membership per window tile.
    std::vector<bool> inTree(static_cast<std::size_t>(win.w()) * win.h(),
                             false);
    inTree[win.idx(src.x, src.y)] = true;

    for (const TileXY& sink : sinks) {
      if (inTree[win.idx(sink.x, sink.y)]) continue;
      connectSink(n, sink, win, inTree, presentFactor);
    }
  }

  /// A* from `sink` to the nearest tree tile; adds the path to the tree and
  /// charges demand.
  void connectSink(std::size_t n, TileXY sink, const Window& win,
                   std::vector<bool>& inTree, double presentFactor) {
    const double width = packing_.nets[n].width;
    const std::size_t tiles = static_cast<std::size_t>(win.w()) * win.h();
    std::vector<double> dist(tiles, std::numeric_limits<double>::infinity());
    std::vector<std::int8_t> from(tiles, -1);  // 0=W,1=E,2=S,3=N arrival dir

    using QE = std::pair<double, std::uint32_t>;  // (cost, window index)
    std::priority_queue<QE, std::vector<QE>, std::greater<>> open;
    const std::size_t start = win.idx(sink.x, sink.y);
    dist[start] = 0.0;
    open.push({0.0, static_cast<std::uint32_t>(start)});

    std::size_t goal = std::numeric_limits<std::size_t>::max();
    while (!open.empty()) {
      const auto [d, ui] = open.top();
      open.pop();
      if (d > dist[ui]) continue;
      if (inTree[ui]) {
        goal = ui;
        break;
      }
      const std::uint32_t ux = win.x0 + ui % win.w();
      const std::uint32_t uy = win.y0 + ui / win.w();
      struct Dir {
        std::int32_t dx, dy;
        std::int8_t code;
        bool vertical;
      };
      static constexpr Dir dirs[4] = {
          {-1, 0, 0, false}, {1, 0, 1, false}, {0, -1, 2, true},
          {0, 1, 3, true}};
      for (const Dir& dir : dirs) {
        const std::int64_t nx = static_cast<std::int64_t>(ux) + dir.dx;
        const std::int64_t ny = static_cast<std::int64_t>(uy) + dir.dy;
        if (nx < win.x0 || ny < win.y0 || nx > win.x1 || ny > win.y1)
          continue;
        // Charge the channel of the tile being *left* — a step from u to v
        // consumes u's channel segment in that orientation.
        const double c =
            d + stepCost(ux, uy, dir.vertical, width, presentFactor);
        const std::size_t vi =
            win.idx(static_cast<std::uint32_t>(nx),
                    static_cast<std::uint32_t>(ny));
        if (c < dist[vi]) {
          dist[vi] = c;
          from[vi] = dir.code;
          open.push({c, static_cast<std::uint32_t>(vi)});
        }
      }
    }
    HCP_CHECK_MSG(goal != std::numeric_limits<std::size_t>::max(),
                  "router: sink unreachable (window too small?)");

    // Walk back from the tree hit to the sink, marking tree tiles and
    // charging demand. The path was searched sink->tree, so we retrace using
    // the arrival directions.
    std::size_t cur = goal;
    while (cur != start) {
      inTree[cur] = true;
      const std::uint32_t cx = win.x0 + cur % win.w();
      const std::uint32_t cy = win.y0 + cur / win.w();
      const std::int8_t code = from[cur];
      // Invert the step to find the predecessor (closer to the sink).
      std::uint32_t px = cx, py = cy;
      bool vertical = false;
      switch (code) {
        case 0: px = cx + 1; vertical = false; break;  // arrived going west
        case 1: px = cx - 1; vertical = false; break;
        case 2: py = cy + 1; vertical = true; break;
        case 3: py = cy - 1; vertical = true; break;
        default: HCP_CHECK_MSG(false, "router: broken backtrace");
      }
      // The step px/py -> cx/cy consumed the channel at (px, py).
      routes_[n].push_back(RouteStep{px, py, vertical});
      if (vertical) map_.addVertical(px, py, packing_.nets[n].width);
      else map_.addHorizontal(px, py, packing_.nets[n].width);
      cur = win.idx(px, py);
    }
    inTree[start] = true;
  }

  const Packing& packing_;
  const Placement& placement_;
  const Device& device_;
  const RouterConfig& config_;
  CongestionMap map_;
  std::vector<double> vHistory_, hHistory_;
  std::vector<std::vector<RouteStep>> routes_;
  std::uint64_t ripUps_ = 0;
};

}  // namespace

RoutingResult route(const Packing& packing, const Placement& placement,
                    const Device& device, const RouterConfig& config) {
  HCP_SPAN("route");
  Router router(packing, placement, device, config);
  return router.run();
}

CongestionMap estimateRudy(const Packing& packing,
                           const Placement& placement,
                           const Device& device) {
  CongestionMap map = CongestionMap::forDevice(device);
  for (const ClusterNet& net : packing.nets) {
    const TileXY d = placement.tileOfCluster[net.driver];
    std::uint32_t x0 = d.x, x1 = d.x, y0 = d.y, y1 = d.y;
    for (ClusterId s : net.sinks) {
      const TileXY p = placement.tileOfCluster[s];
      x0 = std::min(x0, p.x);
      x1 = std::max(x1, p.x);
      y0 = std::min(y0, p.y);
      y1 = std::max(y1, p.y);
    }
    const double w = (x1 - x0) + 1.0;
    const double h = (y1 - y0) + 1.0;
    // RUDY: wirelength smeared uniformly over the bbox; horizontal demand
    // proportional to the net's x-span, vertical to its y-span.
    const double hDemandPerTile =
        static_cast<double>(net.width) * (w - 1.0) / (w * h);
    const double vDemandPerTile =
        static_cast<double>(net.width) * (h - 1.0) / (w * h);
    for (std::uint32_t y = y0; y <= y1; ++y) {
      for (std::uint32_t x = x0; x <= x1; ++x) {
        if (hDemandPerTile > 0) map.addHorizontal(x, y, hDemandPerTile);
        if (vDemandPerTile > 0) map.addVertical(x, y, vDemandPerTile);
      }
    }
  }
  return map;
}

}  // namespace hcp::fpga
