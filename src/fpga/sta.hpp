// Post-route static timing analysis.
//
// Net delays combine distance (Manhattan, per-tile wire delay) with a
// congestion penalty per overflowed tile the route traverses — routes
// through >100% regions are detoured/slower on real silicon, which is how
// congestion depresses Fmax (the coupling behind the paper's Table I/VI:
// congested implementations lose frequency even when latency improves).
//
// Reported figures mirror the paper's tables: WNS against the target clock
// and the resulting maximum frequency (Fmax = 1000 / (critical + clock
// uncertainty); WNS = target - that total).
#pragma once

#include <cstdint>

#include "fpga/packer.hpp"
#include "fpga/placer.hpp"
#include "fpga/router.hpp"
#include "rtl/netlist.hpp"

namespace hcp::fpga {

struct TimingConfig {
  double targetClockNs = 10.0;
  double clockUncertaintyNs = 1.25;
  double netBaseDelayNs = 0.25;
  double perTileDelayNs = 0.11;
  /// Extra delay per traversed tile at 100% overflow (scales linearly above,
  /// clamped at `maxOverflowFraction` per tile — the router has already
  /// lengthened the route; this models slower/shared wires, not the detour).
  double congestionPenaltyNs = 0.18;
  double maxOverflowFraction = 1.5;
  double setupNs = 0.2;
};

struct TimingReport {
  double criticalPathNs = 0.0;   ///< longest reg-to-reg segment (no margin)
  double wnsNs = 0.0;            ///< target - (critical + uncertainty)
  double maxFrequencyMhz = 0.0;  ///< 1000 / (critical + uncertainty)
  std::size_t combinationalCycleCells = 0;  ///< cells skipped (shared-FU cycles)
  rtl::NetId criticalNet = rtl::kInvalidNet;
};

/// Analyzes `netlist` under the given physical results.
TimingReport analyzeTiming(const rtl::Netlist& netlist,
                           const Packing& packing,
                           const Placement& placement,
                           const RoutingResult& routing,
                           const TimingConfig& config = {});

}  // namespace hcp::fpga
