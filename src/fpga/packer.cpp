#include "fpga/packer.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "support/telemetry.hpp"

namespace hcp::fpga {

using rtl::Cell;
using rtl::CellId;
using rtl::CellType;
using rtl::Netlist;

namespace {

TileType siteOf(const Cell& cell) {
  if (cell.type == CellType::Pad) return TileType::Io;
  if (cell.res.dsp > 0.0) return TileType::Dsp;
  if (cell.res.bram > 0.0) return TileType::Bram;
  return TileType::Clb;
}

/// Number of tile-parts a cell needs on its site class.
std::uint32_t partsNeeded(const Cell& cell, const Device& dev) {
  switch (siteOf(cell)) {
    case TileType::Io:
      return 1;
    case TileType::Dsp: {
      const auto& cfg = dev.tilesOfType(TileType::Dsp);
      HCP_CHECK_MSG(!cfg.empty(), "device has no DSP tiles");
      const double perTile =
          dev.tileCapacity(cfg.front().first, cfg.front().second).dsp;
      return static_cast<std::uint32_t>(
          std::max(1.0, std::ceil(cell.res.dsp / perTile)));
    }
    case TileType::Bram: {
      const auto& cfg = dev.tilesOfType(TileType::Bram);
      HCP_CHECK_MSG(!cfg.empty(), "device has no BRAM tiles");
      const double perTile =
          dev.tileCapacity(cfg.front().first, cfg.front().second).bram;
      return static_cast<std::uint32_t>(
          std::max(1.0, std::ceil(cell.res.bram / perTile)));
    }
    case TileType::Clb: {
      const auto& cfg = dev.tilesOfType(TileType::Clb);
      HCP_CHECK_MSG(!cfg.empty(), "device has no CLB tiles");
      const auto cap =
          dev.tileCapacity(cfg.front().first, cfg.front().second);
      const double tiles = std::max(cell.res.lut / cap.lut,
                                    cell.res.ff / cap.ff);
      return static_cast<std::uint32_t>(std::max(1.0, std::ceil(tiles)));
    }
  }
  return 1;
}

}  // namespace

Packing pack(const Netlist& netlist, const Device& device) {
  HCP_SPAN("pack");
  Packing out;
  out.clustersOfCell.resize(netlist.numCells());

  const auto& clbTiles = device.tilesOfType(TileType::Clb);
  HCP_CHECK(!clbTiles.empty());
  const TileCapacity clbCap =
      device.tileCapacity(clbTiles.front().first, clbTiles.front().second);

  // Cell adjacency (shared nets) for connectivity-driven CLB clustering,
  // plus per-cell pin demand (total bits entering/leaving the cell) for the
  // CLB pin-capacity constraint.
  std::vector<std::map<CellId, double>> adj(netlist.numCells());
  std::vector<double> pinBits(netlist.numCells(), 0.0);
  for (const rtl::Net& net : netlist.nets()) {
    // Charge connectivity driver<->sink; sink<->sink pairs matter less and
    // would blow up on high-fanout nets.
    pinBits[net.driver] += net.width;
    for (CellId s : net.sinks) {
      adj[net.driver][s] += net.width;
      adj[s][net.driver] += net.width;
      pinBits[s] += net.width;
    }
  }
  // A 7-series CLB has on the order of 40 inputs + 16 outputs; clustering
  // beyond that cannot be wired no matter how little logic the cells hold.
  constexpr double kClbPinCap = 112.0;

  auto newCluster = [&](const Cell& cell, CellId id, std::uint32_t part) {
    Cluster c;
    c.site = siteOf(cell);
    c.cells = {id};
    c.part = part;
    const std::uint32_t parts = partsNeeded(cell, device);
    c.lut = cell.res.lut / parts;
    c.ff = cell.res.ff / parts;
    c.dsp = cell.res.dsp / parts;
    c.bram = cell.res.bram / parts;
    out.clusters.push_back(std::move(c));
    const auto cid = static_cast<ClusterId>(out.clusters.size() - 1);
    out.clustersOfCell[id].push_back(cid);
    return cid;
  };

  // Non-CLB cells: one (or several, if split) cluster each.
  std::vector<CellId> clbCells;
  for (CellId id = 0; id < netlist.numCells(); ++id) {
    const Cell& cell = netlist.cell(id);
    if (siteOf(cell) == TileType::Clb) {
      clbCells.push_back(id);
      continue;
    }
    const std::uint32_t parts = partsNeeded(cell, device);
    for (std::uint32_t p = 0; p < parts; ++p) newCluster(cell, id, p);
  }

  // CLB clustering: big cells split first, then greedy absorption.
  std::vector<bool> packed(netlist.numCells(), false);
  // Process in descending area so large seeds form cluster cores.
  std::sort(clbCells.begin(), clbCells.end(), [&](CellId a, CellId b) {
    const auto& ra = netlist.cell(a).res;
    const auto& rb = netlist.cell(b).res;
    const double aa = ra.lut + ra.ff, bb = rb.lut + rb.ff;
    return aa > bb || (aa == bb && a < b);
  });

  for (CellId seed : clbCells) {
    if (packed[seed]) continue;
    const Cell& seedCell = netlist.cell(seed);
    const std::uint32_t parts = partsNeeded(seedCell, device);
    if (parts > 1) {
      // Oversized cell: dedicated part-clusters, nothing else absorbed.
      for (std::uint32_t p = 0; p < parts; ++p) newCluster(seedCell, seed, p);
      packed[seed] = true;
      continue;
    }
    const ClusterId cid = newCluster(seedCell, seed, 0);
    packed[seed] = true;
    Cluster& cluster = out.clusters[cid];
    double clusterPins = pinBits[seed];

    // Absorb most-connected unpacked CLB neighbours while logic capacity
    // and pin capacity allow. Absorbing a neighbour internalizes (roughly)
    // twice the connection weight between it and the cluster.
    std::map<CellId, double> gain;
    for (const auto& [nbr, w] : adj[seed]) gain[nbr] += w;
    while (true) {
      CellId best = rtl::kInvalidCell;
      double bestGain = 0.0;
      for (const auto& [cand, g] : gain) {
        if (packed[cand]) continue;
        const Cell& cc = netlist.cell(cand);
        if (siteOf(cc) != TileType::Clb) continue;
        if (cluster.lut + cc.res.lut > clbCap.lut ||
            cluster.ff + cc.res.ff > clbCap.ff)
          continue;
        if (clusterPins + pinBits[cand] - 2.0 * g > kClbPinCap) continue;
        if (g > bestGain || (g == bestGain && cand < best)) {
          best = cand;
          bestGain = g;
        }
      }
      if (best == rtl::kInvalidCell) break;
      const Cell& cc = netlist.cell(best);
      cluster.cells.push_back(best);
      cluster.lut += cc.res.lut;
      cluster.ff += cc.res.ff;
      clusterPins += pinBits[best] - 2.0 * bestGain;
      out.clustersOfCell[best].push_back(cid);
      packed[best] = true;
      for (const auto& [nbr, w] : adj[best]) gain[nbr] += w;
    }
  }

  // Capacity check per site class.
  std::array<std::size_t, 4> demand{0, 0, 0, 0};
  for (const Cluster& c : out.clusters)
    ++demand[static_cast<std::size_t>(c.site)];
  for (std::size_t t = 0; t < 4; ++t) {
    const auto have =
        device.tilesOfType(static_cast<TileType>(t)).size();
    HCP_CHECK_MSG(demand[t] <= have,
                  "design needs " << demand[t] << " tiles of class " << t
                                  << " but device has " << have);
  }

  // Project nets onto clusters. For split cells, connect to part 0.
  for (rtl::NetId n = 0; n < netlist.numNets(); ++n) {
    const rtl::Net& net = netlist.net(n);
    const ClusterId driver = out.clustersOfCell[net.driver].front();
    std::set<ClusterId> sinks;
    for (CellId s : net.sinks) {
      const ClusterId sc = out.clustersOfCell[s].front();
      if (sc != driver) sinks.insert(sc);
    }
    if (sinks.empty()) continue;  // fully absorbed
    ClusterNet cn;
    cn.source = n;
    cn.width = net.width;
    cn.driver = driver;
    cn.sinks.assign(sinks.begin(), sinks.end());
    out.nets.push_back(std::move(cn));
  }
  // Chain split-cell parts so placement keeps them together.
  for (CellId id = 0; id < netlist.numCells(); ++id) {
    const auto& parts = out.clustersOfCell[id];
    for (std::size_t p = 1; p < parts.size(); ++p) {
      ClusterNet cn;
      cn.source = rtl::kInvalidNet;
      cn.width = std::max<std::uint16_t>(8, netlist.cell(id).width);
      cn.driver = parts[p - 1];
      cn.sinks = {parts[p]};
      out.nets.push_back(std::move(cn));
    }
  }
  return out;
}

}  // namespace hcp::fpga
