// Simulated-annealing placement (VPR-style).
//
// Each cluster is assigned to one tile of its site class; the annealer
// minimizes total bit-weighted half-perimeter wirelength (HPWL) with
// swap/relocate moves inside a shrinking range window. Deterministic for a
// given seed. The placement is what turns IR structure into *spatial*
// congestion: replicas of an unrolled loop spread over the fabric (Fig 5's
// centre-vs-margin label divergence comes from exactly this).
#pragma once

#include <cstdint>
#include <vector>

#include "fpga/packer.hpp"
#include "support/rng.hpp"

namespace hcp::fpga {

struct PlacerConfig {
  std::uint64_t seed = 1;
  /// Moves attempted per temperature = effort * numClusters.
  double effort = 20.0;
  double coolingRate = 0.92;
  /// Anneal stops when temperature falls below this fraction of the initial.
  double stopFraction = 1e-4;

  // Congestion-driven spreading: the device is divided into regionSize^2
  // regions; a region whose total cluster pin-bits exceed its routing
  // supply (supplyFraction of the channel capacity crossing it) is
  // penalized quadratically. This keeps small designs from collapsing into
  // an unroutable dense blob, as commercial congestion-aware placers do.
  std::uint32_t regionSize = 6;
  double supplyFraction = 0.55;
  double densityWeight = 3.0;  ///< 0 disables spreading (pure-HPWL ablation)
};

struct TileXY {
  std::uint32_t x = 0;
  std::uint32_t y = 0;
};

struct Placement {
  std::vector<TileXY> tileOfCluster;
  double cost = 0.0;   ///< final bit-weighted HPWL
  std::uint64_t movesAccepted = 0;
  std::uint64_t movesTried = 0;
};

/// Places `packing` on `device`.
Placement place(const Packing& packing, const Device& device,
                const PlacerConfig& config = {});

/// Bit-weighted HPWL of the whole packing under a placement (for tests and
/// ablations; the placer tracks it incrementally).
double totalWirelength(const Packing& packing, const Placement& placement);

}  // namespace hcp::fpga
