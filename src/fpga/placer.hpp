// Simulated-annealing placement (VPR-style).
//
// Each cluster is assigned to one tile of its site class; the annealer
// minimizes total bit-weighted half-perimeter wirelength (HPWL) with
// swap/relocate moves inside a shrinking range window. Deterministic for a
// given seed. The placement is what turns IR structure into *spatial*
// congestion: replicas of an unrolled loop spread over the fabric (Fig 5's
// centre-vs-margin label divergence comes from exactly this).
//
// The per-move cost kernel is incremental, following VPR's update_bb: each
// net carries its bounding box plus the number of pins sitting on each of
// the four bounding edges, so moving a pin updates the box in O(1) — a full
// O(fanout) rescan happens only when the last pin leaves an edge and the
// box may shrink (counted as placer_box_rescans). Hot-path state is laid
// out as flat arrays (CSR cluster->net adjacency with per-net pin
// multiplicities; separate coordinate / edge-count / weight arrays) for
// cache locality. The pre-incremental kernel is retained as
// CostUpdate::kReference: both paths draw the same RNG stream and sum cost
// deltas in the same order, so they produce bit-identical placements —
// asserted by the equivalence tests and measured by bench/placer_hotpath
// (BENCH_placer.json). See DESIGN.md §15.
#pragma once

#include <cstdint>
#include <vector>

#include "fpga/packer.hpp"
#include "support/rng.hpp"

namespace hcp::fpga {

struct PlacerConfig {
  std::uint64_t seed = 1;
  /// Moves attempted per temperature = effort * numClusters.
  double effort = 20.0;
  double coolingRate = 0.92;
  /// Anneal stops when temperature falls below this fraction of the initial.
  double stopFraction = 1e-4;

  // Congestion-driven spreading: the device is divided into regionSize^2
  // regions; a region whose total cluster pin-bits exceed its routing
  // supply (supplyFraction of the channel capacity crossing it) is
  // penalized quadratically. This keeps small designs from collapsing into
  // an unroutable dense blob, as commercial congestion-aware placers do.
  std::uint32_t regionSize = 6;
  double supplyFraction = 0.55;
  double densityWeight = 3.0;  ///< 0 disables spreading (pure-HPWL ablation)

  /// Cost-update kernel. kIncremental (default) is the O(1) edge-count
  /// bounding-box path; kReference is the pre-incremental per-net full
  /// rescan, kept for the equivalence tests and the placer_hotpath bench.
  /// Both yield bit-identical placements for the same seed.
  enum class CostUpdate : std::uint8_t { kIncremental, kReference };
  CostUpdate costUpdate = CostUpdate::kIncremental;
};

struct TileXY {
  std::uint32_t x = 0;
  std::uint32_t y = 0;
};

struct Placement {
  std::vector<TileXY> tileOfCluster;
  double cost = 0.0;   ///< final bit-weighted HPWL
  std::uint64_t movesAccepted = 0;
  std::uint64_t movesTried = 0;
};

/// Places `packing` on `device`.
Placement place(const Packing& packing, const Device& device,
                const PlacerConfig& config = {});

/// Bit-weighted HPWL of the whole packing under a placement (for tests and
/// ablations; the placer tracks it incrementally). Shares the per-net
/// bounding-box kernel with the annealer, so there is exactly one HPWL
/// implementation to keep correct.
double totalWirelength(const Packing& packing, const Placement& placement);

}  // namespace hcp::fpga
