// Place-and-route orchestration: pack -> place -> route -> STA. This is the
// "RTL implementation flow" of the paper's Fig 2/3 — the expensive step the
// trained model lets designers skip. One call yields everything the
// back-tracing stage needs: cell locations, the per-tile congestion map and
// the timing report.
#pragma once

#include "fpga/packer.hpp"
#include "fpga/placer.hpp"
#include "fpga/router.hpp"
#include "fpga/sta.hpp"
#include "rtl/netlist.hpp"

namespace hcp::fpga {

struct ParConfig {
  PlacerConfig placer;
  RouterConfig router;
  TimingConfig timing;
};

struct Implementation {
  Packing packing;
  Placement placement;
  RoutingResult routing;
  TimingReport timing;

  /// Tile a cell landed on (its first cluster's tile).
  TileXY tileOfCell(rtl::CellId cell) const {
    return placement.tileOfCluster[packing.clustersOfCell[cell].front()];
  }
};

/// Runs the full physical flow on `netlist` for `device`.
Implementation implement(const rtl::Netlist& netlist, const Device& device,
                         const ParConfig& config = {});

}  // namespace hcp::fpga
