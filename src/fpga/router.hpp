// PathFinder-style negotiated global router.
//
// Nets are routed on the tile grid: each horizontal/vertical step through a
// tile consumes that tile's H/V channel capacity, weighted by the net's bit
// width. Multi-terminal nets grow a Steiner-ish tree (each sink connects to
// the nearest point of the partial tree via A*). Congestion is negotiated
// over several iterations: overflowing nets are ripped up and rerouted with
// rising present-congestion penalties and accumulated history costs, so
// demand spreads around hotspots exactly as a real router detours — which is
// what makes over-100% regions slow (captured later by the STA penalty).
//
// Alongside the negotiated router there is a RUDY-style probabilistic
// estimator (net demand smeared over its bounding box, split V/H by aspect
// ratio), used as the fast baseline in the ablation bench.
//
// Hot-path structure: the per-sink A* state (dist/backtrace/open list) is
// epoch-stamped and reused across sinks and nets instead of being
// reallocated per sink, and the per-iteration overflow/history sweep visits
// only the dirty tiles touched by that iteration's rip-up/reroute work
// (every tile that can be overflowed is dirty by construction — see
// DESIGN.md §15). Both are bit-identical to the straightforward forms; the
// full-grid sweep is retained behind RouterConfig::dirtyTileScan=false for
// the equivalence tests and bench/placer_hotpath.
#pragma once

#include <cstdint>

#include "fpga/congestion.hpp"
#include "fpga/packer.hpp"
#include "fpga/placer.hpp"

namespace hcp::fpga {

struct RouterConfig {
  int maxIterations = 6;
  double historyGain = 0.35;  ///< history cost added per overflowed unit
  double presentFactorGrowth = 1.7;
  int bboxMargin = 7;         ///< A* window beyond the net bounding box
  /// Overflow/history sweep per PathFinder iteration: dirty-tile set
  /// (default) or the pre-incremental full-grid scan. Bit-identical
  /// results either way (test-asserted); the flag exists for the
  /// equivalence tests and the placer_hotpath bench.
  bool dirtyTileScan = true;
};

/// Per-net routed tree, as a list of directed unit steps.
struct RouteStep {
  std::uint32_t x = 0, y = 0;  ///< tile whose channel is consumed
  bool vertical = false;
};

struct RoutingResult {
  CongestionMap map;
  std::vector<std::vector<RouteStep>> routes;  ///< per packing net
  double totalWirelength = 0.0;  ///< bit-weighted routed length
  std::size_t overflowTiles = 0; ///< tiles over 100% after the last iteration
  int iterationsRun = 0;
};

/// Routes all packing nets under `placement`.
RoutingResult route(const Packing& packing, const Placement& placement,
                    const Device& device, const RouterConfig& config = {});

/// RUDY-style probabilistic congestion estimate (no actual routing).
CongestionMap estimateRudy(const Packing& packing,
                           const Placement& placement, const Device& device);

}  // namespace hcp::fpga
