#include "fpga/placer.hpp"

#include <algorithm>
#include <cmath>

#include "support/telemetry.hpp"

namespace hcp::fpga {

namespace {

struct NetBox {
  std::uint32_t x0 = 0, x1 = 0, y0 = 0, y1 = 0;
  double weight = 1.0;

  double hpwl() const {
    return weight * ((x1 - x0) + (y1 - y0));
  }
};

class Annealer {
 public:
  Annealer(const Packing& packing, const Device& device,
           const PlacerConfig& config)
      : packing_(packing), device_(device), config_(config),
        rng_(config.seed) {}

  Placement run() {
    seedInitial();
    buildIndex();
    buildRegions();
    double cost = fullCost();

    const std::size_t n = packing_.clusters.size();
    const auto movesPerT = static_cast<std::uint64_t>(
        std::max(64.0, config_.effort * static_cast<double>(n)));

    // Initial temperature: std-dev of random-move deltas (classic VPR rule).
    double t = initialTemperature(cost);
    const double tStop = std::max(1e-9, t * config_.stopFraction);
    double range = 1.0;  // window as fraction of device span

    Placement result;
    while (t > tStop) {
      std::uint64_t accepted = 0;
      for (std::uint64_t m = 0; m < movesPerT; ++m) {
        ++result.movesTried;
        const double delta = tryMove(range);
        if (delta == kRejected) continue;
        if (delta <= 0.0 || rng_.uniformReal() < std::exp(-delta / t)) {
          commitMove();
          cost += delta;
          ++accepted;
          ++result.movesAccepted;
          support::telemetry::observe(
              support::telemetry::Histogram::PlacerAcceptedMoveDelta, delta);
        } else {
          revertMove();
        }
      }
      // Adapt the window toward a 44% acceptance target (VPR heuristic).
      const double rate =
          static_cast<double>(accepted) / static_cast<double>(movesPerT);
      range = std::clamp(range * (rate > 0.44 ? 1.15 : 0.9), 0.02, 1.0);
      t *= config_.coolingRate;
    }
    result.tileOfCluster = tileOf_;
    result.cost = fullCost();
    return result;
  }

 private:
  static constexpr double kRejected =
      std::numeric_limits<double>::infinity();

  // --- congestion-driven spreading ---------------------------------------
  std::uint32_t regionOf(TileXY t) const {
    const std::uint32_t rs = std::max(1u, config_.regionSize);
    const std::uint32_t rw = (device_.width() + rs - 1) / rs;
    return (t.y / rs) * rw + (t.x / rs);
  }

  void buildRegions() {
    const std::uint32_t rs = std::max(1u, config_.regionSize);
    const std::uint32_t rw = (device_.width() + rs - 1) / rs;
    const std::uint32_t rh = (device_.height() + rs - 1) / rs;
    regionPins_.assign(static_cast<std::size_t>(rw) * rh, 0.0);
    regionSupply_.assign(regionPins_.size(), 0.0);
    for (std::uint32_t y = 0; y < device_.height(); ++y)
      for (std::uint32_t x = 0; x < device_.width(); ++x)
        regionSupply_[regionOf({x, y})] +=
            config_.supplyFraction *
            (device_.vTracksAt(x, y) + device_.hTracksAt(x, y)) / 2.0;
    clusterPins_.assign(packing_.clusters.size(), 0.0);
    for (const ClusterNet& net : packing_.nets) {
      clusterPins_[net.driver] += net.width;
      for (ClusterId s : net.sinks) clusterPins_[s] += net.width;
    }
    for (ClusterId c = 0; c < packing_.clusters.size(); ++c)
      regionPins_[regionOf(tileOf_[c])] += clusterPins_[c];
  }

  double regionPenalty(std::size_t region) const {
    const double over = regionPins_[region] - regionSupply_[region];
    if (over <= 0.0) return 0.0;
    return config_.densityWeight * over * over / regionSupply_[region];
  }

  /// Penalty delta of moving `pins` from region a to region b.
  double densityDelta(std::size_t a, std::size_t b, double pins) const {
    if (a == b || pins == 0.0 || config_.densityWeight <= 0.0) return 0.0;
    const double before = regionPenalty(a) + regionPenalty(b);
    const double overA = regionPins_[a] - pins - regionSupply_[a];
    const double overB = regionPins_[b] + pins - regionSupply_[b];
    double after = 0.0;
    if (overA > 0) after += config_.densityWeight * overA * overA /
                            regionSupply_[a];
    if (overB > 0) after += config_.densityWeight * overB * overB /
                            regionSupply_[b];
    return after - before;
  }

  void seedInitial() {
    tileOf_.resize(packing_.clusters.size());
    occupant_.assign(device_.numTiles(), kNone);
    // Shuffle tiles per class, assign clusters in order.
    for (std::size_t t = 0; t < 4; ++t) {
      auto tiles = device_.tilesOfType(static_cast<TileType>(t));
      rng_.shuffle(tiles);
      std::size_t next = 0;
      for (ClusterId c = 0; c < packing_.clusters.size(); ++c) {
        if (static_cast<std::size_t>(packing_.clusters[c].site) != t)
          continue;
        HCP_CHECK(next < tiles.size());
        const auto [x, y] = tiles[next++];
        tileOf_[c] = {x, y};
        occupant_[device_.index(x, y)] = c;
      }
    }
  }

  void buildIndex() {
    netsOfCluster_.resize(packing_.clusters.size());
    boxes_.resize(packing_.nets.size());
    for (std::size_t n = 0; n < packing_.nets.size(); ++n) {
      const ClusterNet& net = packing_.nets[n];
      netsOfCluster_[net.driver].push_back(static_cast<std::uint32_t>(n));
      for (ClusterId s : net.sinks)
        netsOfCluster_[s].push_back(static_cast<std::uint32_t>(n));
      // VPR-style q factor: HPWL underestimates the routed length of
      // high-fanout nets, so weight them up to keep them compact.
      const double q =
          1.0 + 0.35 * std::sqrt(static_cast<double>(net.sinks.size()) - 1.0 +
                                 1e-9);
      boxes_[n].weight = net.width * q;
      recomputeBox(n);
    }
  }

  void recomputeBox(std::size_t n) {
    const ClusterNet& net = packing_.nets[n];
    NetBox& b = boxes_[n];
    const TileXY d = tileOf_[net.driver];
    b.x0 = b.x1 = d.x;
    b.y0 = b.y1 = d.y;
    for (ClusterId s : net.sinks) {
      const TileXY p = tileOf_[s];
      b.x0 = std::min(b.x0, p.x);
      b.x1 = std::max(b.x1, p.x);
      b.y0 = std::min(b.y0, p.y);
      b.y1 = std::max(b.y1, p.y);
    }
  }

  double fullCost() const {
    double c = 0.0;
    for (const NetBox& b : boxes_) c += b.hpwl();
    return c;
  }

  double initialTemperature(double cost) {
    // Sample random moves; T0 = 20 * stddev of deltas (accept-most regime).
    std::vector<double> deltas;
    for (int i = 0; i < 128; ++i) {
      const double d = tryMove(1.0);
      if (d != kRejected) {
        deltas.push_back(d);
        revertMove();
      }
    }
    if (deltas.empty()) return std::max(1.0, cost * 0.05);
    double m = 0.0;
    for (double d : deltas) m += d;
    m /= static_cast<double>(deltas.size());
    double v = 0.0;
    for (double d : deltas) v += (d - m) * (d - m);
    v = std::sqrt(v / static_cast<double>(deltas.size()));
    return std::max(1.0, 20.0 * v);
  }

  /// Proposes a move; returns the cost delta or kRejected. State is staged in
  /// moved_ / movedTo_ until commit/revert.
  double tryMove(double range) {
    const auto n = packing_.clusters.size();
    const ClusterId a = static_cast<ClusterId>(rng_.uniformInt(n));
    const TileType site = packing_.clusters[a].site;
    const auto& tiles = device_.tilesOfType(site);
    if (tiles.size() < 2) return kRejected;

    // Pick a target tile within the range window around a's position.
    const TileXY pa = tileOf_[a];
    const auto span = static_cast<std::int64_t>(std::max(
        2.0, range * std::max(device_.width(), device_.height())));
    const auto& [tx, ty] = tiles[rng_.uniformInt(tiles.size())];
    if (std::llabs(static_cast<std::int64_t>(tx) - pa.x) > span ||
        std::llabs(static_cast<std::int64_t>(ty) - pa.y) > span)
      return kRejected;
    if (tx == pa.x && ty == pa.y) return kRejected;

    const ClusterId b = occupant_[device_.index(tx, ty)];

    // Stage.
    moveA_ = a;
    moveB_ = b;
    fromA_ = pa;
    toA_ = {tx, ty};

    // Affected nets: union of a's and b's nets.
    touched_.clear();
    for (std::uint32_t net : netsOfCluster_[a]) touched_.push_back(net);
    if (b != kNone)
      for (std::uint32_t net : netsOfCluster_[b]) touched_.push_back(net);
    std::sort(touched_.begin(), touched_.end());
    touched_.erase(std::unique(touched_.begin(), touched_.end()),
                   touched_.end());

    double before = 0.0;
    savedBoxes_.clear();
    for (std::uint32_t net : touched_) {
      before += boxes_[net].hpwl();
      savedBoxes_.push_back(boxes_[net]);
    }

    // Apply tentatively.
    applyPositions(toA_, fromA_);
    double after = 0.0;
    for (std::uint32_t net : touched_) {
      recomputeBox(net);
      after += boxes_[net].hpwl();
    }
    staged_ = true;

    // Density term: cluster a moves fromA->toA; b (if any) the reverse.
    const std::size_t ra = regionOf(fromA_);
    const std::size_t rb = regionOf(toA_);
    double density = densityDelta(ra, rb, clusterPins_[moveA_]);
    if (moveB_ != kNone) density += densityDelta(rb, ra, clusterPins_[moveB_]);
    stagedDensity_ = density;
    return after - before + density;
  }

  void applyPositions(TileXY aPos, TileXY bPos) {
    occupant_[device_.index(fromA_.x, fromA_.y)] = moveB_;
    occupant_[device_.index(toA_.x, toA_.y)] = moveA_;
    tileOf_[moveA_] = aPos;
    if (moveB_ != kNone) tileOf_[moveB_] = bPos;
  }

  void commitMove() {
    const std::size_t ra = regionOf(fromA_);
    const std::size_t rb = regionOf(toA_);
    if (ra != rb) {
      regionPins_[ra] -= clusterPins_[moveA_];
      regionPins_[rb] += clusterPins_[moveA_];
      if (moveB_ != kNone) {
        regionPins_[rb] -= clusterPins_[moveB_];
        regionPins_[ra] += clusterPins_[moveB_];
      }
    }
    staged_ = false;
  }

  void revertMove() {
    if (!staged_) return;
    occupant_[device_.index(fromA_.x, fromA_.y)] = moveA_;
    occupant_[device_.index(toA_.x, toA_.y)] = moveB_;
    tileOf_[moveA_] = fromA_;
    if (moveB_ != kNone) tileOf_[moveB_] = toA_;
    for (std::size_t i = 0; i < touched_.size(); ++i)
      boxes_[touched_[i]] = savedBoxes_[i];
    staged_ = false;
  }

  static constexpr ClusterId kNone =
      std::numeric_limits<ClusterId>::max();

  const Packing& packing_;
  const Device& device_;
  const PlacerConfig& config_;
  hcp::Rng rng_;

  std::vector<TileXY> tileOf_;
  std::vector<ClusterId> occupant_;
  std::vector<std::vector<std::uint32_t>> netsOfCluster_;
  std::vector<NetBox> boxes_;

  std::vector<double> regionPins_, regionSupply_, clusterPins_;

  // Staged move state.
  bool staged_ = false;
  double stagedDensity_ = 0.0;
  ClusterId moveA_ = kNone, moveB_ = kNone;
  TileXY fromA_, toA_;
  std::vector<std::uint32_t> touched_;
  std::vector<NetBox> savedBoxes_;
};

}  // namespace

Placement place(const Packing& packing, const Device& device,
                const PlacerConfig& config) {
  HCP_SPAN("place");
  Annealer annealer(packing, device, config);
  Placement result = annealer.run();
  namespace tm = support::telemetry;
  tm::count(tm::Counter::PlacerMovesProposed, result.movesTried);
  tm::count(tm::Counter::PlacerMovesAccepted, result.movesAccepted);
  tm::count(tm::Counter::PlacerMovesRejected,
            result.movesTried - result.movesAccepted);
  return result;
}

double totalWirelength(const Packing& packing, const Placement& placement) {
  double total = 0.0;
  for (const ClusterNet& net : packing.nets) {
    const TileXY d = placement.tileOfCluster[net.driver];
    std::uint32_t x0 = d.x, x1 = d.x, y0 = d.y, y1 = d.y;
    for (ClusterId s : net.sinks) {
      const TileXY p = placement.tileOfCluster[s];
      x0 = std::min(x0, p.x);
      x1 = std::max(x1, p.x);
      y0 = std::min(y0, p.y);
      y1 = std::max(y1, p.y);
    }
    total += static_cast<double>(net.width) * ((x1 - x0) + (y1 - y0));
  }
  return total;
}

}  // namespace hcp::fpga
