#include "fpga/placer.hpp"

#include <algorithm>
#include <cmath>

#include "support/telemetry.hpp"

namespace hcp::fpga {

namespace {

/// Axis-aligned bounds of one net's pins under a placement. This is THE
/// bounding-box kernel: the annealer's reference recompute, the incremental
/// path's shrink rescans and totalWirelength() all go through it, so there
/// is a single implementation to keep correct.
struct NetBounds {
  std::uint32_t x0 = 0, x1 = 0, y0 = 0, y1 = 0;
};

NetBounds netBounds(const ClusterNet& net, const std::vector<TileXY>& tileOf) {
  const TileXY d = tileOf[net.driver];
  NetBounds b{d.x, d.x, d.y, d.y};
  for (ClusterId s : net.sinks) {
    const TileXY p = tileOf[s];
    b.x0 = std::min(b.x0, p.x);
    b.x1 = std::max(b.x1, p.x);
    b.y0 = std::min(b.y0, p.y);
    b.y1 = std::max(b.y1, p.y);
  }
  return b;
}

class Annealer {
 public:
  Annealer(const Packing& packing, const Device& device,
           const PlacerConfig& config)
      : packing_(packing), device_(device), config_(config),
        rng_(config.seed),
        incremental_(config.costUpdate ==
                     PlacerConfig::CostUpdate::kIncremental) {}

  Placement run() {
    seedInitial();
    buildIndex();
    buildRegions();
    double cost = fullCost();

    const std::size_t n = packing_.clusters.size();
    const auto movesPerT = static_cast<std::uint64_t>(
        std::max(64.0, config_.effort * static_cast<double>(n)));

    // Initial temperature: std-dev of random-move deltas (classic VPR rule).
    double t = initialTemperature(cost);
    const double tStop = std::max(1e-9, t * config_.stopFraction);
    double range = 1.0;  // window as fraction of device span

    Placement result;
    while (t > tStop) {
      // One compiled sweep per cost-update mode: the hot loop carries no
      // runtime mode branches, and neither mode's code pollutes the
      // other's instruction stream.
      const std::uint64_t accepted =
          incremental_ ? sweep<true>(t, range, movesPerT, result, cost)
                       : sweep<false>(t, range, movesPerT, result, cost);
#ifndef NDEBUG
      // Debug-build drift check: the running cost minus the accumulated
      // density deltas is pure HPWL and must agree with a from-scratch
      // recount at every temperature step, so a future hot-path edit that
      // corrupts the box updates fails loudly here instead of silently
      // degrading QoR. (The density deltas themselves cannot be checked
      // against densityPenaltyTotal(): the bit-identity-pinned swap delta
      // is not an exact difference of the quadratic penalty — see
      // densityRunning_.) Tolerance covers benign FP accumulation over
      // millions of exact per-move deltas.
      {
        const double hpwl = fullCost();
        const double running = cost - densityRunning_;
        HCP_CHECK_MSG(
            std::abs(running - hpwl) <= 1e-6 * std::max(1.0, std::abs(hpwl)),
            "placer incremental cost drift: running hpwl=" << running
                << " recomputed=" << hpwl << " at T=" << t);
        // The density *bookkeeping* is guarded separately: region pin
        // loads must match a from-scratch recount of committed positions.
        std::vector<double> pins(regionPins_.size(), 0.0);
        for (ClusterId c = 0; c < packing_.clusters.size(); ++c)
          pins[regionOf(tileOf_[c])] += clusterPins_[c];
        for (std::size_t r = 0; r < pins.size(); ++r)
          HCP_CHECK_MSG(
              std::abs(regionPins_[r] - pins[r]) <=
                  1e-6 * std::max(1.0, std::abs(pins[r])),
              "placer region pin drift: region " << r << " tracked="
                  << regionPins_[r] << " recomputed=" << pins[r]);
      }
#endif
      // Adapt the window toward a 44% acceptance target (VPR heuristic).
      const double rate =
          static_cast<double>(accepted) / static_cast<double>(movesPerT);
      range = std::clamp(range * (rate > 0.44 ? 1.15 : 0.9), 0.02, 1.0);
      t *= config_.coolingRate;
    }
    result.tileOfCluster = tileOf_;
    // One final from-scratch recount, NOT the running cost: Placement::cost
    // is defined as pure bit-weighted HPWL, while the running value also
    // carries density-penalty deltas. A single O(nets) pass here also keeps
    // the serialized cost bit-identical to the pre-incremental placer.
    result.cost = fullCost();
    return result;
  }

  std::uint64_t boxRescans() const { return boxRescans_; }

 private:
  static constexpr double kRejected =
      std::numeric_limits<double>::infinity();

  /// exp(-x) < 2^-53 for every x above this (exp(-37) ≈ 8.5e-17, safely
  /// under 2^-53 ≈ 1.11e-16), which is what the accept-test shortcut in
  /// run() relies on.
  static constexpr double kExpUnderflow = 37.0;

  // --- congestion-driven spreading ---------------------------------------
  std::uint32_t regionOf(TileXY t) const {
    const std::uint32_t rs = std::max(1u, config_.regionSize);
    const std::uint32_t rw = (device_.width() + rs - 1) / rs;
    return (t.y / rs) * rw + (t.x / rs);
  }

  /// Table-driven regionOf for the per-move path: two loads from
  /// coordinate-indexed tables that together total a few hundred bytes (so
  /// they live in L1), instead of two integer divisions or a lookup in a
  /// tile-indexed table that is device-sized and misses to L2.
  std::uint32_t regionOfFast(TileXY t) const {
    return yRegionRow_[t.y] + xRegionCol_[t.x];
  }

  void buildRegions() {
    const std::uint32_t rs = std::max(1u, config_.regionSize);
    const std::uint32_t rw = (device_.width() + rs - 1) / rs;
    const std::uint32_t rh = (device_.height() + rs - 1) / rs;
    regionPins_.assign(static_cast<std::size_t>(rw) * rh, 0.0);
    regionSupply_.assign(regionPins_.size(), 0.0);
    xRegionCol_.resize(device_.width());
    for (std::uint32_t x = 0; x < device_.width(); ++x)
      xRegionCol_[x] = x / rs;
    yRegionRow_.resize(device_.height());
    for (std::uint32_t y = 0; y < device_.height(); ++y)
      yRegionRow_[y] = (y / rs) * rw;
    for (std::uint32_t y = 0; y < device_.height(); ++y)
      for (std::uint32_t x = 0; x < device_.width(); ++x) {
        regionSupply_[regionOf({x, y})] +=
            config_.supplyFraction *
            (device_.vTracksAt(x, y) + device_.hTracksAt(x, y)) / 2.0;
      }
    clusterPins_.assign(packing_.clusters.size(), 0.0);
    for (const ClusterNet& net : packing_.nets) {
      clusterPins_[net.driver] += net.width;
      for (ClusterId s : net.sinks) clusterPins_[s] += net.width;
    }
    for (ClusterId c = 0; c < packing_.clusters.size(); ++c)
      regionPins_[regionOf(tileOf_[c])] += clusterPins_[c];
    regionPenaltyCache_.resize(regionPins_.size());
    for (std::size_t r = 0; r < regionPins_.size(); ++r)
      regionPenaltyCache_[r] = regionPenalty(r);
  }

  double regionPenalty(std::size_t region) const {
    const double over = regionPins_[region] - regionSupply_[region];
    if (over <= 0.0) return 0.0;
    return config_.densityWeight * over * over / regionSupply_[region];
  }

  double densityPenaltyTotal() const {
    double total = 0.0;
    for (std::size_t r = 0; r < regionPins_.size(); ++r)
      total += regionPenalty(r);
    return total;
  }

  /// Penalty delta of moving `pins` from region a to region b.
  double densityDelta(std::size_t a, std::size_t b, double pins) const {
    if (a == b || pins == 0.0 || config_.densityWeight <= 0.0) return 0.0;
    const double before = regionPenalty(a) + regionPenalty(b);
    const double overA = regionPins_[a] - pins - regionSupply_[a];
    const double overB = regionPins_[b] + pins - regionSupply_[b];
    double after = 0.0;
    if (overA > 0) after += config_.densityWeight * overA * overA /
                            regionSupply_[a];
    if (overB > 0) after += config_.densityWeight * overB * overB /
                            regionSupply_[b];
    return after - before;
  }

  /// densityDelta with the pre-move penalties read from the commit-time
  /// cache instead of recomputed — drops up to two FP divisions from every
  /// evaluated move. The cached doubles are bitwise equal to what
  /// regionPenalty() returns (same pure function of the same state), so
  /// the delta, and with it the accept decision, is unchanged.
  double densityDeltaFast(std::size_t a, std::size_t b, double pins) const {
    if (a == b || pins == 0.0 || config_.densityWeight <= 0.0) return 0.0;
    const double before = regionPenaltyCache_[a] + regionPenaltyCache_[b];
    const double overA = regionPins_[a] - pins - regionSupply_[a];
    const double overB = regionPins_[b] + pins - regionSupply_[b];
    double after = 0.0;
    if (overA > 0) after += config_.densityWeight * overA * overA /
                            regionSupply_[a];
    if (overB > 0) after += config_.densityWeight * overB * overB /
                            regionSupply_[b];
    return after - before;
  }

  void seedInitial() {
    tileOf_.resize(packing_.clusters.size());
    occupant_.assign(device_.numTiles(), kNone);
    // Shuffle tiles per class, assign clusters in order.
    for (std::size_t t = 0; t < 4; ++t) {
      auto tiles = device_.tilesOfType(static_cast<TileType>(t));
      rng_.shuffle(tiles);
      std::size_t next = 0;
      for (ClusterId c = 0; c < packing_.clusters.size(); ++c) {
        if (static_cast<std::size_t>(packing_.clusters[c].site) != t)
          continue;
        HCP_CHECK(next < tiles.size());
        const auto [x, y] = tiles[next++];
        tileOf_[c] = {x, y};
        occupant_[device_.index(x, y)] = c;
      }
    }
  }

  // --- hot-path net state: one cache line per net ------------------------
  // Everything a move evaluation needs about a touched net lives in a
  // single 64-byte NetRec, so each touched net costs exactly one random
  // cache-line fetch (prefetched up front), with no secondary gathers.
  //
  // The update kernel is hybrid. Most nets here are tiny (median fanout
  // 2), and for a 2-pin net the moved pin sits on a bounding edge almost
  // every move, so the VPR edge-count update would flag a shrink rescan
  // nearly always — paying the bookkeeping AND the rescan. Nets at or
  // below kInlinePins therefore skip edge counts entirely: their pin
  // clusters and positions are cached *inside* the record, and the box is
  // recomputed in-register with the staged move overlaid (a pin of the
  // moving cluster reads the staged coordinate, everything else the cached
  // one). Larger nets store box + per-edge pin counts instead and take the
  // O(1)-update/rare-rescan path, which is where edge counts actually win:
  // that is what turns the per-move cost from O(max fanout) into O(touched
  // nets).
  //
  // Because evaluation never reads tileOf_ (except in the rare large-net
  // shrink rescan, which overlays the staged move the same way), a
  // proposed move applies NO state writes until it is accepted: tileOf_,
  // occupant_ and the records are updated in commitMove only, and a
  // rejected move — the common case — has nothing to revert.

  /// Four bounding coordinates of one net, packed so a box is one 16-byte
  /// load on the delta path.
  struct BoxCoords {
    std::uint32_t x0 = 0, x1 = 0, y0 = 0, y1 = 0;
  };

  /// How many of the net's pins sit on each bounding edge. A pin at a box
  /// corner counts on both edges; a one-tile-wide axis counts every pin on
  /// both its lo and hi edge. Signed so the transiently-stale state between
  /// a flagged shrink and its rescan can go negative without UB.
  struct EdgeCounts {
    std::int32_t onX0 = 0, onX1 = 0, onY0 = 0, onY1 = 0;
  };

  /// Fanout threshold at or below which a net caches its pins inline in
  /// its NetRec (the direct-recompute kernel); above it the record holds
  /// box + edge counts instead. Bounded by the 64-byte record; correctness
  /// does not depend on the value.
  static constexpr std::uint32_t kInlinePins = 5;

  struct alignas(64) NetRec {
    double hpwl = 0.0;    ///< running weight*HPWL (== weight * box span)
    double weight = 1.0;  ///< bit width times the VPR q factor
    /// Pin count for inline (small) nets; 0 selects the edge-count layout.
    std::uint32_t inlineCount = 0;
    union U {
      struct Small {
        std::uint32_t cluster[kInlinePins];
        std::uint16_t px[kInlinePins], py[kInlinePins];
      } small;
      struct Large {
        BoxCoords box;
        EdgeCounts edges;
        std::uint32_t pinStart, pinEnd;  ///< range in netPinCluster_
      } large;
      U() : large{} {}
    } u;
  };
  static_assert(sizeof(NetRec) == 64, "NetRec must stay one cache line");

  /// The pre-PR per-net state, kept verbatim for CostUpdate::kReference:
  /// one fat array-of-structs record per net (box + embedded weight),
  /// saved and restored whole on every move. The reference mode runs the
  /// complete pre-incremental hot path — this layout included — so
  /// bench/placer_hotpath compares the tentpole change (kernel AND flat
  /// layouts) against what the code actually did before it, not against a
  /// half-upgraded hybrid.
  struct RefNetBox {
    std::uint32_t x0 = 0, x1 = 0, y0 = 0, y1 = 0;
    double weight = 1.0;
    double hpwl() const { return weight * ((x1 - x0) + (y1 - y0)); }
  };

  bool referenceMode() const {
    return config_.costUpdate == PlacerConfig::CostUpdate::kReference;
  }

  /// device_.index without the bounds check, for the incremental move path
  /// only: every coordinate there comes from tilesOfType or tileOf_, both
  /// in-range by construction. The reference path keeps the checked pre-PR
  /// accessor.
  std::size_t rawIndex(std::uint32_t x, std::uint32_t y) const {
    return static_cast<std::size_t>(y) * device_.width() + x;
  }

  double fullCost() const {
    double c = 0.0;
    if (referenceMode()) {
      for (const RefNetBox& b : refBoxes_) c += b.hpwl();
    } else {
      // NetRec::hpwl is maintained as exactly weight * (current box span),
      // so summing the cached values in the same ascending order is
      // bit-identical to a from-scratch recount.
      for (const NetRec& rec : netRec_) c += rec.hpwl;
    }
    return c;
  }

  /// VPR-style q factor: HPWL underestimates the routed length of
  /// high-fanout nets, so weight them up to keep them compact.
  static double netWeight(const ClusterNet& net) {
    const double q =
        1.0 + 0.35 * std::sqrt(static_cast<double>(net.sinks.size()) - 1.0 +
                               1e-9);
    return net.width * q;
  }

  void buildIndex() {
    const std::size_t numClusters = packing_.clusters.size();
    const std::size_t numNets = packing_.nets.size();

    if (referenceMode()) {
      // Build ONLY the pre-PR structures and stop: a reference Annealer
      // that also carried the incremental arrays (CSR adjacency, flat pin
      // lists, SoA nets, scratch) would spread its working set across
      // them, and bench/placer_hotpath's baseline timing would stop
      // matching the placer this mode stands in for.
      refNetsOfCluster_.resize(numClusters);
      refBoxes_.resize(numNets);
      for (std::size_t n = 0; n < numNets; ++n) {
        const ClusterNet& net = packing_.nets[n];
        // Pre-PR adjacency: per-cluster net lists with duplicate entries
        // (a driver that also sinks the net appears twice); the per-move
        // sort+unique pays for the duplication, as it originally did.
        refNetsOfCluster_[net.driver].push_back(
            static_cast<std::uint32_t>(n));
        for (ClusterId s : net.sinks)
          refNetsOfCluster_[s].push_back(static_cast<std::uint32_t>(n));
        refBoxes_[n].weight = netWeight(net);
        recomputeBoxReference(n);
      }
      return;
    }

    // Inline pin positions are stored as 16-bit coordinates.
    HCP_CHECK(device_.width() <= 0xffff && device_.height() <= 0xffff);
    netRec_.resize(numNets);
    siteOf_.resize(numClusters);
    for (std::size_t c = 0; c < numClusters; ++c)
      siteOf_[c] = static_cast<std::uint8_t>(packing_.clusters[c].site);

    // CSR cluster->net adjacency, deduplicated with per-net pin
    // multiplicities: a cluster appearing as driver plus k sink entries of
    // one net occupies a single (net, 1+k) slot, so a move updates that
    // net's edge counts once with the right pin count instead of walking
    // the net's pin list.
    constexpr std::size_t kNoNet = std::numeric_limits<std::size_t>::max();
    std::vector<std::size_t> lastNet(numClusters, kNoNet);
    std::vector<std::uint32_t> degree(numClusters, 0);
    const auto forEachPin = [&](std::size_t n, auto&& f) {
      const ClusterNet& net = packing_.nets[n];
      f(net.driver);
      for (ClusterId s : net.sinks) f(s);
    };
    for (std::size_t n = 0; n < numNets; ++n)
      forEachPin(n, [&](ClusterId c) {
        if (lastNet[c] != n) {
          lastNet[c] = n;
          ++degree[c];
        }
      });
    adjStart_.assign(numClusters + 1, 0);
    for (std::size_t c = 0; c < numClusters; ++c)
      adjStart_[c + 1] = adjStart_[c] + degree[c];
    adjNet_.resize(adjStart_[numClusters]);
    adjPins_.resize(adjStart_[numClusters]);
    std::fill(lastNet.begin(), lastNet.end(), kNoNet);
    std::vector<std::uint32_t> fill(numClusters, 0);
    std::vector<std::uint32_t> lastSlot(numClusters, 0);
    for (std::size_t n = 0; n < numNets; ++n)
      forEachPin(n, [&](ClusterId c) {
        if (lastNet[c] != n) {
          lastNet[c] = n;
          const std::uint32_t slot = adjStart_[c] + fill[c]++;
          adjNet_[slot] = static_cast<std::uint32_t>(n);
          adjPins_[slot] = 1;
          lastSlot[c] = slot;
        } else {
          ++adjPins_[lastSlot[c]];
        }
      });

    // Flat net->pin CSR (duplicates kept: a driver that is also a sink
    // appears twice, which min/max and the edge tally both tolerate). The
    // hot-path recompute walks this instead of chasing each net's driver
    // field and sinks vector across the heap.
    netPinStart_.assign(numNets + 1, 0);
    for (std::size_t n = 0; n < numNets; ++n)
      netPinStart_[n + 1] =
          netPinStart_[n] +
          static_cast<std::uint32_t>(1 + packing_.nets[n].sinks.size());
    netPinCluster_.resize(netPinStart_[numNets]);
    {
      std::uint32_t slot = 0;
      for (std::size_t n = 0; n < numNets; ++n)
        forEachPin(n, [&](ClusterId c) { netPinCluster_[slot++] = c; });
    }


    for (std::size_t n = 0; n < numNets; ++n) {
      NetRec& rec = netRec_[n];
      rec.weight = netWeight(packing_.nets[n]);
      const std::uint32_t s = netPinStart_[n];
      const std::uint32_t e = netPinStart_[n + 1];
      BoxCoords b;
      if (e - s <= kInlinePins) {
        rec.inlineCount = e - s;
        auto& P = rec.u.small;
        for (std::uint32_t i = s; i < e; ++i) {
          const ClusterId c = netPinCluster_[i];
          const TileXY p = tileOf_[c];
          P.cluster[i - s] = c;
          P.px[i - s] = static_cast<std::uint16_t>(p.x);
          P.py[i - s] = static_cast<std::uint16_t>(p.y);
        }
        b = computeBoxFlat(s, e);
      } else {
        rec.inlineCount = 0;
        auto& L = rec.u.large;
        L.pinStart = s;
        L.pinEnd = e;
        rescanExact(s, e, L.box, L.edges);
        b = L.box;
      }
      rec.hpwl = rec.weight * ((b.x1 - b.x0) + (b.y1 - b.y0));
    }

    // Staging scratch, sized once for the widest possible touched set (two
    // clusters' rows) so the move loop writes by index instead of paying a
    // grow-check per push.
    std::uint32_t maxDeg = 0;
    for (std::size_t c = 0; c < numClusters; ++c)
      maxDeg = std::max(maxDeg, adjStart_[c + 1] - adjStart_[c]);
    touchedNet_.resize(2 * static_cast<std::size_t>(maxDeg));
    newBoxes_.resize(touchedNet_.size());
    newEdges_.resize(touchedNet_.size());
    newHpwl_.resize(touchedNet_.size());
  }

  /// Direct box recompute over the flat pin array and the *committed*
  /// positions in tileOf_ — initialization only.
  BoxCoords computeBoxFlat(std::uint32_t s, std::uint32_t e) const {
    const TileXY p0 = tileOf_[netPinCluster_[s]];
    BoxCoords b{p0.x, p0.x, p0.y, p0.y};
    for (std::uint32_t i = s + 1; i < e; ++i) {
      const TileXY p = tileOf_[netPinCluster_[i]];
      b.x0 = std::min(b.x0, p.x);
      b.x1 = std::max(b.x1, p.x);
      b.y0 = std::min(b.y0, p.y);
      b.y1 = std::max(b.y1, p.y);
    }
    return b;
  }

  /// Box of an inline (small) net with the currently staged move overlaid:
  /// pins of the moving clusters read the staged coordinates, everything
  /// else the positions cached in the record. Runs entirely out of the
  /// record's cache line and registers.
  BoxCoords inlineBoxStaged(const NetRec::U::Small& P,
                            std::uint32_t cnt) const {
    BoxCoords b{std::numeric_limits<std::uint32_t>::max(), 0,
                std::numeric_limits<std::uint32_t>::max(), 0};
    for (std::uint32_t i = 0; i < cnt; ++i) {
      std::uint32_t x = P.px[i];
      std::uint32_t y = P.py[i];
      const std::uint32_t c = P.cluster[i];
      // moveB_ is kNone when the target tile is empty; no cluster id ever
      // equals kNone, so the compare is safe unconditionally.
      if (c == moveA_) {
        x = toA_.x;
        y = toA_.y;
      } else if (c == moveB_) {
        x = fromA_.x;
        y = fromA_.y;
      }
      b.x0 = std::min(b.x0, x);
      b.x1 = std::max(b.x1, x);
      b.y0 = std::min(b.y0, y);
      b.y1 = std::max(b.y1, y);
    }
    return b;
  }

  /// Position of cluster `c` with the staged move overlaid onto the
  /// committed tileOf_ state.
  TileXY stagedPosOf(ClusterId c) const {
    if (c == moveA_) return toA_;
    if (c == moveB_) return fromA_;
    return tileOf_[c];
  }

  /// Full O(fanout) rebuild of a net's box and edge counts from committed
  /// positions — initialization of edge-counted (large) nets.
  void rescanExact(std::uint32_t s, std::uint32_t e, BoxCoords& bOut,
                   EdgeCounts& eOut) const {
    const BoxCoords b = computeBoxFlat(s, e);
    EdgeCounts ec;
    for (std::uint32_t i = s; i < e; ++i) {
      const TileXY p = tileOf_[netPinCluster_[i]];
      ec.onX0 += p.x == b.x0;
      ec.onX1 += p.x == b.x1;
      ec.onY0 += p.y == b.y0;
      ec.onY1 += p.y == b.y1;
    }
    bOut = b;
    eOut = ec;
  }

  /// Same rebuild under the staged move — the large-net shrink rescan.
  /// Rare (the placer_box_rescans counter tracks how rare), so the per-pin
  /// overlay compares cost nothing in the aggregate.
  void rescanStaged(std::uint32_t s, std::uint32_t e, BoxCoords& bOut,
                    EdgeCounts& eOut) const {
    const TileXY p0 = stagedPosOf(netPinCluster_[s]);
    BoxCoords b{p0.x, p0.x, p0.y, p0.y};
    for (std::uint32_t i = s + 1; i < e; ++i) {
      const TileXY p = stagedPosOf(netPinCluster_[i]);
      b.x0 = std::min(b.x0, p.x);
      b.x1 = std::max(b.x1, p.x);
      b.y0 = std::min(b.y0, p.y);
      b.y1 = std::max(b.y1, p.y);
    }
    EdgeCounts ec;
    for (std::uint32_t i = s; i < e; ++i) {
      const TileXY p = stagedPosOf(netPinCluster_[i]);
      ec.onX0 += p.x == b.x0;
      ec.onX1 += p.x == b.x1;
      ec.onY0 += p.y == b.y0;
      ec.onY1 += p.y == b.y1;
    }
    bOut = b;
    eOut = ec;
  }

  /// The pre-PR per-move recompute, verbatim: walk the net's driver field
  /// and sinks vector (no flat pin array), write the AoS box. No edge-count
  /// tally — the old code had none — so placer_hotpath's reference timings
  /// are not burdened with work the old code never did.
  void recomputeBoxReference(std::size_t n) {
    const NetBounds b = netBounds(packing_.nets[n], tileOf_);
    RefNetBox& rb = refBoxes_[n];
    rb.x0 = b.x0;
    rb.x1 = b.x1;
    rb.y0 = b.y0;
    rb.y1 = b.y1;
  }

  /// O(1) single-axis pin move (VPR update_bb): `k` pins of the net leave
  /// `oldc` for `newc`. Returns true when an edge lost its last pin and the
  /// box may shrink — the caller must rescan. Counts can be transiently
  /// wrong once a rescan is flagged; the rescan rebuilds them exactly.
  static bool moveAxis(std::uint32_t& lo, std::uint32_t& hi,
                       std::int32_t& nlo, std::int32_t& nhi,
                       std::uint32_t oldc, std::uint32_t newc,
                       std::int32_t k) {
    if (oldc == newc) return false;
    if (oldc == hi) nhi -= k;
    if (oldc == lo) nlo -= k;
    if (newc > hi) {
      hi = newc;
      nhi = k;
    } else if (newc == hi) {
      nhi += k;
    }
    if (newc < lo) {
      lo = newc;
      nlo = k;
    } else if (newc == lo) {
      nlo += k;
    }
    return nhi <= 0 || nlo <= 0;
  }

  /// Moves `k` pins of a net from `from` to `to` in O(1) on the given
  /// box/edge state; returns whether the box needs a shrink rescan.
  static bool movePins(BoxCoords& b, EdgeCounts& e, TileXY from, TileXY to,
                       std::int32_t k) {
    bool rescan = moveAxis(b.x0, b.x1, e.onX0, e.onX1, from.x, to.x, k);
    rescan |= moveAxis(b.y0, b.y1, e.onY0, e.onY1, from.y, to.y, k);
    return rescan;
  }

  double initialTemperature(double cost) {
    // Sample random moves; T0 = 20 * stddev of deltas (accept-most regime).
    std::vector<double> deltas;
    const std::int64_t span = moveSpan(1.0);
    for (int i = 0; i < 128; ++i) {
      const double d = incremental_ ? tryMove<true>(1.0, span)
                                    : tryMove<false>(1.0, span);
      if (d != kRejected) {
        deltas.push_back(d);
        if (incremental_) {
          revertMove<true>();
        } else {
          revertMove<false>();
        }
      }
    }
    if (deltas.empty()) return std::max(1.0, cost * 0.05);
    double m = 0.0;
    for (double d : deltas) m += d;
    m /= static_cast<double>(deltas.size());
    double v = 0.0;
    for (double d : deltas) v += (d - m) * (d - m);
    v = std::sqrt(v / static_cast<double>(deltas.size()));
    return std::max(1.0, 20.0 * v);
  }

  /// Pre-incremental touched-set construction, kept verbatim under the
  /// reference cost path: concat the (duplicate-bearing) per-cluster net
  /// lists, sort, unique.
  void collectTouchedReference(ClusterId a, ClusterId b) {
    touched_.clear();
    for (std::uint32_t net : refNetsOfCluster_[a]) touched_.push_back(net);
    if (b != kNone)
      for (std::uint32_t net : refNetsOfCluster_[b]) touched_.push_back(net);
    std::sort(touched_.begin(), touched_.end());
    touched_.erase(std::unique(touched_.begin(), touched_.end()),
                   touched_.end());
  }

  /// The per-move span of the target window, a pure function of `range`.
  std::int64_t moveSpan(double range) const {
    return static_cast<std::int64_t>(std::max(
        2.0, range * std::max(device_.width(), device_.height())));
  }

  /// One temperature step's worth of moves, compiled separately per
  /// cost-update mode. Returns the number of accepted moves.
  template <bool kInc>
  std::uint64_t sweep(double t, double range, std::uint64_t movesPerT,
                      Placement& result, double& cost) {
    // `range` is fixed for the whole sweep, so the incremental path hoists
    // the window-span computation out of the per-move loop; the reference
    // path recomputes it per move, as the pre-PR code did. Same value
    // either way.
    const std::int64_t span = moveSpan(range);
    std::uint64_t accepted = 0;
    for (std::uint64_t m = 0; m < movesPerT; ++m) {
      ++result.movesTried;
      const double delta = tryMove<kInc>(range, span);
      if (delta == kRejected) continue;
      bool accept = delta <= 0.0;
      if (!accept) {
        const double u = rng_.uniformReal();
        if (kInc && delta > kExpUnderflow * t) {
          // exp(-x) for x > 37 is below 2^-53, the smallest nonzero
          // value uniformReal can return, so u < exp(-delta/t) reduces
          // exactly to u == 0 — the libm call is skipped for hopeless
          // uphill moves without changing any decision or RNG draw.
          // (Reference mode keeps the pre-PR exp call unconditionally.)
          accept = u == 0.0;
        } else {
          accept = u < std::exp(-delta / t);
        }
      }
      if (accept) {
        commitMove<kInc>();
        cost += delta;
#ifndef NDEBUG
        densityRunning_ += lastDensityDelta_;
#endif
        ++accepted;
        ++result.movesAccepted;
        support::telemetry::observe(
            support::telemetry::Histogram::PlacerAcceptedMoveDelta, delta);
      } else {
        revertMove<kInc>();
      }
    }
    return accepted;
  }

  /// Proposes a move; returns the cost delta or kRejected. State is staged in
  /// moved_ / movedTo_ until commit/revert. `span` must equal
  /// moveSpan(range) (recomputed internally by the reference mode).
  template <bool kInc>
  double tryMove(double range, std::int64_t span) {
    const auto n = packing_.clusters.size();
    const ClusterId a = static_cast<ClusterId>(rng_.uniformInt(n));
    TileType site;
    if constexpr (kInc) {
      site = static_cast<TileType>(siteOf_[a]);
    } else {
      site = packing_.clusters[a].site;
    }
    const auto& tiles = device_.tilesOfType(site);
    if (tiles.size() < 2) return kRejected;

    // Pick a target tile within the range window around a's position.
    const TileXY pa = tileOf_[a];
    if constexpr (!kInc) span = moveSpan(range);
    const auto& [tx, ty] = tiles[rng_.uniformInt(tiles.size())];
    if (std::llabs(static_cast<std::int64_t>(tx) - pa.x) > span ||
        std::llabs(static_cast<std::int64_t>(ty) - pa.y) > span)
      return kRejected;
    if (tx == pa.x && ty == pa.y) return kRejected;

    const ClusterId b =
        occupant_[kInc ? rawIndex(tx, ty) : device_.index(tx, ty)];

    // Stage.
    moveA_ = a;
    moveB_ = b;
    fromA_ = pa;
    toA_ = {tx, ty};

    // Evaluate the move. The incremental path writes nothing: positions
    // stay committed, the staged move is overlaid per pin, and the new
    // boxes land in scratch (newBoxes_/newEdges_) — a rejected move, the
    // common case, has nothing to undo at all, and only an accept pays the
    // publication at commit. Small-net boxes are recomputed in-register
    // from the pins cached inline in their NetRec; large-net boxes update
    // in O(1) from the per-edge pin counts, and only a large box whose
    // bounding edge lost its last pin pays a rescan. Both kernels produce
    // identical integer boxes and sum `after` over the same ascending net
    // order, so the returned delta — and with it the RNG stream and the
    // final placement — is bit-identical between them.
    double before = 0.0;
    double after = 0.0;
    if constexpr (kInc) {
      // One fused pass: linearly merge the two sorted CSR adjacency rows —
      // the same set and order the pre-incremental concat+sort+unique
      // produced — and evaluate each touched net as it is discovered, so
      // its NetRec line is visited exactly once per move. The prefetch
      // pre-pass gets the randomly-scattered record lines in flight
      // together instead of paying each miss serially inside the merge.
      // No state is written here: positions stay committed, the staged
      // move is overlaid per pin, and new boxes land in scratch.
      constexpr std::uint32_t kEndNet =
          std::numeric_limits<std::uint32_t>::max();
      std::uint32_t ia = adjStart_[a];
      const std::uint32_t ea = adjStart_[a + 1];
      std::uint32_t ib = 0, eb = 0;
      if (b != kNone) {
        ib = adjStart_[b];
        eb = adjStart_[b + 1];
      }
      for (std::uint32_t i = ia; i < ea; ++i)
        __builtin_prefetch(&netRec_[adjNet_[i]]);
      for (std::uint32_t i = ib; i < eb; ++i)
        __builtin_prefetch(&netRec_[adjNet_[i]]);
      std::size_t count = 0;
      const auto evalNet = [&](std::uint32_t net, std::uint32_t pinsA,
                               std::uint32_t pinsB) {
        const NetRec& rec = netRec_[net];
        before += rec.hpwl;
        BoxCoords nb;
        if (const std::uint32_t cnt = rec.inlineCount; cnt != 0) {
          // Small net: box recomputed in-register from the inline pins —
          // the record's own line is the only memory touched.
          nb = inlineBoxStaged(rec.u.small, cnt);
        } else {
          nb = rec.u.large.box;
          EdgeCounts ne = rec.u.large.edges;
          bool rescan = false;
          if (pinsA > 0)
            rescan = movePins(nb, ne, fromA_, toA_,
                              static_cast<std::int32_t>(pinsA));
          // Once a rescan is pending the counts are stale; skip straight
          // to the rebuild, which overlays the staged move itself.
          if (pinsB > 0 && !rescan)
            rescan = movePins(nb, ne, toA_, fromA_,
                              static_cast<std::int32_t>(pinsB));
          if (rescan) {
            rescanStaged(rec.u.large.pinStart, rec.u.large.pinEnd, nb, ne);
            ++boxRescans_;
          }
          newEdges_[count] = ne;
          newBoxes_[count] = nb;
        }
        touchedNet_[count] = net;
        const double h = rec.weight * ((nb.x1 - nb.x0) + (nb.y1 - nb.y0));
        newHpwl_[count] = h;
        after += h;
        ++count;
      };
      if (b == kNone) {
        // Empty tile: a's row alone, in the same ascending order the merge
        // would produce — no merge compares to pay.
        for (std::uint32_t i = ia; i < ea; ++i)
          evalNet(adjNet_[i], adjPins_[i], 0);
      } else {
        while (ia < ea || ib < eb) {
          const std::uint32_t na = ia < ea ? adjNet_[ia] : kEndNet;
          const std::uint32_t nbId = ib < eb ? adjNet_[ib] : kEndNet;
          if (na < nbId) {
            evalNet(na, adjPins_[ia++], 0);
          } else if (nbId < na) {
            evalNet(nbId, 0, adjPins_[ib++]);
          } else {
            const std::uint32_t pa2 = adjPins_[ia++];
            evalNet(na, pa2, adjPins_[ib++]);
          }
        }
      }
      touchedCount_ = count;
    } else {
      collectTouchedReference(a, b);
      refSavedBoxes_.clear();
      for (std::uint32_t net : touched_) {
        before += refBoxes_[net].hpwl();
        refSavedBoxes_.push_back(refBoxes_[net]);
      }
      applyPositions<kInc>(toA_, fromA_);
      for (std::uint32_t net : touched_) {
        recomputeBoxReference(net);
        after += refBoxes_[net].hpwl();
      }
    }
    staged_ = true;

    // Density term: cluster a moves fromA->toA; b (if any) the reverse.
    // (Reference mode keeps the pre-PR division-based region lookup; the
    // table lookup returns the same region id.)
    double density;
    if constexpr (kInc) {
      const std::size_t ra = regionOfFast(fromA_);
      const std::size_t rb = regionOfFast(toA_);
      density = densityDeltaFast(ra, rb, clusterPins_[moveA_]);
      if (moveB_ != kNone)
        density += densityDeltaFast(rb, ra, clusterPins_[moveB_]);
    } else {
      const std::size_t ra = regionOf(fromA_);
      const std::size_t rb = regionOf(toA_);
      density = densityDelta(ra, rb, clusterPins_[moveA_]);
      if (moveB_ != kNone)
        density += densityDelta(rb, ra, clusterPins_[moveB_]);
    }
#ifndef NDEBUG
    lastDensityDelta_ = density;
#endif
    return after - before + density;
  }

  template <bool kInc>
  void applyPositions(TileXY aPos, TileXY bPos) {
    if constexpr (kInc) {
      occupant_[rawIndex(fromA_.x, fromA_.y)] = moveB_;
      occupant_[rawIndex(toA_.x, toA_.y)] = moveA_;
    } else {
      occupant_[device_.index(fromA_.x, fromA_.y)] = moveB_;
      occupant_[device_.index(toA_.x, toA_.y)] = moveA_;
    }
    tileOf_[moveA_] = aPos;
    if (moveB_ != kNone) tileOf_[moveB_] = bPos;
  }

  // Density bookkeeping mutates regionPins_ only here, on commit: tryMove
  // computes its density delta purely from the *current* regionPins_, so a
  // staged-but-unaccepted move has nothing to undo — revertMove can leave
  // regionPins_ untouched and only restore positions and boxes.
  template <bool kInc>
  void commitMove() {
    // Only an accepted move publishes any state at all in incremental
    // mode: positions (deferred from evaluation), the staged boxes, and
    // the inline pin caches. The reference path mutated boxes in place
    // during evaluation, as pre-PR, so it has nothing to publish here.
    if constexpr (kInc) {
      applyPositions<kInc>(toA_, fromA_);
      for (std::size_t i = 0; i < touchedCount_; ++i) {
        const std::uint32_t net = touchedNet_[i];
        NetRec& rec = netRec_[net];
        rec.hpwl = newHpwl_[i];
        if (const std::uint32_t cnt = rec.inlineCount; cnt != 0) {
          // Re-point the moved clusters' inline pin copies (same overlay
          // rule the evaluation applied).
          auto& P = rec.u.small;
          for (std::uint32_t j = 0; j < cnt; ++j) {
            if (P.cluster[j] == moveA_) {
              P.px[j] = static_cast<std::uint16_t>(toA_.x);
              P.py[j] = static_cast<std::uint16_t>(toA_.y);
            } else if (P.cluster[j] == moveB_) {
              P.px[j] = static_cast<std::uint16_t>(fromA_.x);
              P.py[j] = static_cast<std::uint16_t>(fromA_.y);
            }
          }
        } else {
          rec.u.large.box = newBoxes_[i];
          rec.u.large.edges = newEdges_[i];
        }
      }
    }
    const std::size_t ra = kInc ? regionOfFast(fromA_) : regionOf(fromA_);
    const std::size_t rb = kInc ? regionOfFast(toA_) : regionOf(toA_);
    if (ra != rb) {
      regionPins_[ra] -= clusterPins_[moveA_];
      regionPins_[rb] += clusterPins_[moveA_];
      if (moveB_ != kNone) {
        regionPins_[rb] -= clusterPins_[moveB_];
        regionPins_[ra] += clusterPins_[moveB_];
      }
      if constexpr (kInc) {
        regionPenaltyCache_[ra] = regionPenalty(ra);
        regionPenaltyCache_[rb] = regionPenalty(rb);
      }
    }
    staged_ = false;
  }

  template <bool kInc>
  void revertMove() {
    if (!staged_) return;
    if constexpr (kInc) {
      // Evaluation wrote nothing — positions stayed committed and the new
      // boxes live in scratch — so rejecting the move is free.
      staged_ = false;
      return;
    }
    occupant_[device_.index(fromA_.x, fromA_.y)] = moveA_;
    occupant_[device_.index(toA_.x, toA_.y)] = moveB_;
    tileOf_[moveA_] = fromA_;
    if (moveB_ != kNone) tileOf_[moveB_] = toA_;
    // Reference mode rescinds its in-place box writes, as the pre-PR code
    // did.
    for (std::size_t i = 0; i < touched_.size(); ++i)
      refBoxes_[touched_[i]] = refSavedBoxes_[i];
    staged_ = false;
  }

  static constexpr ClusterId kNone =
      std::numeric_limits<ClusterId>::max();

  const Packing& packing_;
  const Device& device_;
  const PlacerConfig& config_;
  hcp::Rng rng_;
  const bool incremental_;

  std::vector<TileXY> tileOf_;
  std::vector<ClusterId> occupant_;
  // Cluster site types as a flat byte array: the move generator reads one
  // L1-resident byte instead of chasing into the (much larger) cluster
  // records. Incremental mode only; reference keeps the pre-PR access.
  std::vector<std::uint8_t> siteOf_;

  // Net state: one 64-byte record per net (see the comment block above
  // BoxCoords).
  std::vector<NetRec> netRec_;

  // CSR cluster->net adjacency: cluster c's nets are
  // adjNet_[adjStart_[c] .. adjStart_[c+1]), ascending, with c's pin count
  // in that net in the parallel adjPins_ slot.
  std::vector<std::uint32_t> adjStart_, adjNet_, adjPins_;

  // Flat net->pin CSR (with duplicates), consumed at build time and by the
  // rare large-net shrink rescans.
  std::vector<std::uint32_t> netPinStart_;
  std::vector<ClusterId> netPinCluster_;

  std::vector<double> regionPins_, regionSupply_, clusterPins_;
  // regionOfFast tables (x/rs and (y/rs)*regionsPerRow) and the cached
  // per-region penalty values, refreshed for the two affected regions on
  // commit. Each cached value is bitwise what regionPenalty() would return,
  // so reading it in densityDeltaFast preserves bit-identity.
  std::vector<std::uint32_t> xRegionCol_, yRegionRow_;
  std::vector<double> regionPenaltyCache_;

#ifndef NDEBUG
  // Debug-only drift-check bookkeeping: the density component of each
  // accepted delta, accumulated alongside the running cost so the check in
  // run() can subtract it and compare the HPWL part against an exact
  // recount. Needed because the pre-PR (bit-identity-pinned) swap delta
  // sums two independent single-cluster density deltas — for the quadratic
  // penalty that is NOT an exact difference of densityPenaltyTotal(), so
  // the running density legitimately diverges from a recount.
  double densityRunning_ = 0.0;
  double lastDensityDelta_ = 0.0;
#endif

  // Staged move state.
  bool staged_ = false;
  ClusterId moveA_ = kNone, moveB_ = kNone;
  TileXY fromA_, toA_;
  std::vector<std::uint32_t> touched_;     // reference path
  std::vector<std::uint32_t> touchedNet_;  // incremental path, pre-sized
  std::size_t touchedCount_ = 0;           // live prefix of touchedNet_
  std::vector<BoxCoords> newBoxes_;        // staged boxes, touched order
  std::vector<EdgeCounts> newEdges_;       // staged counts, large nets only
  std::vector<double> newHpwl_;            // staged per-net HPWL values

  // Reference-mode state (pre-PR layout; empty in incremental mode).
  std::vector<std::vector<std::uint32_t>> refNetsOfCluster_;
  std::vector<RefNetBox> refBoxes_;
  std::vector<RefNetBox> refSavedBoxes_;

  std::uint64_t boxRescans_ = 0;
};

}  // namespace

Placement place(const Packing& packing, const Device& device,
                const PlacerConfig& config) {
  HCP_SPAN("place");
  Annealer annealer(packing, device, config);
  Placement result = annealer.run();
  namespace tm = support::telemetry;
  tm::count(tm::Counter::PlacerMovesProposed, result.movesTried);
  tm::count(tm::Counter::PlacerMovesAccepted, result.movesAccepted);
  tm::count(tm::Counter::PlacerMovesRejected,
            result.movesTried - result.movesAccepted);
  tm::count(tm::Counter::PlacerBoxRescans, annealer.boxRescans());
  return result;
}

double totalWirelength(const Packing& packing, const Placement& placement) {
  double total = 0.0;
  for (const ClusterNet& net : packing.nets) {
    const NetBounds b = netBounds(net, placement.tileOfCluster);
    total += static_cast<double>(net.width) * ((b.x1 - b.x0) + (b.y1 - b.y0));
  }
  return total;
}

}  // namespace hcp::fpga
