// Per-tile routing congestion map: the label the paper predicts.
//
// Vertical and horizontal routing demand are tracked separately per tile;
// utilization percentage = demand / channel capacity * 100. Values above
// 100% mean the router would have to divert routes around the region
// (paper §II). This is the exact quantity back-traced onto IR operations to
// form the training labels.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "fpga/device.hpp"

namespace hcp::fpga {

class CongestionMap {
 public:
  /// Empty map (0x0); useful as a default before routing runs.
  CongestionMap() : width_(0), height_(0), vCap_(1.0), hCap_(1.0) {}

  CongestionMap(std::uint32_t width, std::uint32_t height, double vCapacity,
                double hCapacity)
      : width_(width), height_(height), vCap_(vCapacity), hCap_(hCapacity),
        vDemand_(static_cast<std::size_t>(width) * height, 0.0),
        hDemand_(static_cast<std::size_t>(width) * height, 0.0) {}

  /// Builds a map with the device's per-tile capacities (column boosts).
  static CongestionMap forDevice(const Device& device) {
    CongestionMap map(device.width(), device.height(), device.vTracks(),
                      device.hTracks());
    map.vCapTile_.resize(map.vDemand_.size());
    map.hCapTile_.resize(map.hDemand_.size());
    for (std::uint32_t y = 0; y < map.height_; ++y) {
      for (std::uint32_t x = 0; x < map.width_; ++x) {
        map.vCapTile_[map.idx(x, y)] = device.vTracksAt(x, y);
        map.hCapTile_[map.idx(x, y)] = device.hTracksAt(x, y);
      }
    }
    return map;
  }

  std::uint32_t width() const { return width_; }
  std::uint32_t height() const { return height_; }

  void addVertical(std::uint32_t x, std::uint32_t y, double bits) {
    vDemand_[idx(x, y)] += bits;
  }
  void addHorizontal(std::uint32_t x, std::uint32_t y, double bits) {
    hDemand_[idx(x, y)] += bits;
  }
  void removeVertical(std::uint32_t x, std::uint32_t y, double bits) {
    vDemand_[idx(x, y)] -= bits;
  }
  void removeHorizontal(std::uint32_t x, std::uint32_t y, double bits) {
    hDemand_[idx(x, y)] -= bits;
  }

  double vDemand(std::uint32_t x, std::uint32_t y) const {
    return vDemand_[idx(x, y)];
  }
  double hDemand(std::uint32_t x, std::uint32_t y) const {
    return hDemand_[idx(x, y)];
  }

  /// Capacity of one tile (per-tile map when present, else the scalar).
  double vCapAt(std::uint32_t x, std::uint32_t y) const {
    return vCapTile_.empty() ? vCap_ : vCapTile_[idx(x, y)];
  }
  double hCapAt(std::uint32_t x, std::uint32_t y) const {
    return hCapTile_.empty() ? hCap_ : hCapTile_[idx(x, y)];
  }

  /// Utilization in percent (can exceed 100).
  double vUtil(std::uint32_t x, std::uint32_t y) const {
    return 100.0 * vDemand_[idx(x, y)] / vCapAt(x, y);
  }
  double hUtil(std::uint32_t x, std::uint32_t y) const {
    return 100.0 * hDemand_[idx(x, y)] / hCapAt(x, y);
  }
  double avgUtil(std::uint32_t x, std::uint32_t y) const {
    return 0.5 * (vUtil(x, y) + hUtil(x, y));
  }

  double vCapacity() const { return vCap_; }
  double hCapacity() const { return hCap_; }

  double maxVUtil() const;
  double maxHUtil() const;
  double meanVUtil() const;
  double meanHUtil() const;

  /// Number of tiles whose vertical OR horizontal utilization exceeds
  /// `thresholdPercent` (the paper's "#Congested CLBs (>100%)").
  std::size_t tilesOver(double thresholdPercent) const;

  /// Box-blurred copy (window (2r+1)^2, demand and per-tile capacity both
  /// averaged). Vivado's congestion report is a windowed estimate over
  /// regions of tiles, not a single-tile count; back-tracing labels from the
  /// smoothed map matches that granularity.
  CongestionMap smoothed(std::uint32_t radius) const;

  /// ASCII heat map ('.' <25%, ':' <50%, '+' <75%, '#' <100%, '@' >=100%),
  /// one row per device row, for the Fig 1 / Fig 6 bench output.
  std::string toAscii(bool vertical) const;

  /// CSV with columns x,y,v_util,h_util.
  std::string toCsv() const;

  /// Text serialization (fpga/serialize.hpp; flow-cache format). Defined in
  /// fpga/serialize.cpp.
  void write(std::ostream& os) const;
  static CongestionMap read(std::istream& is);

 private:
  std::size_t idx(std::uint32_t x, std::uint32_t y) const {
    HCP_CHECK(x < width_ && y < height_);
    return static_cast<std::size_t>(y) * width_ + x;
  }

  std::uint32_t width_, height_;
  double vCap_, hCap_;
  std::vector<double> vDemand_, hDemand_;
  std::vector<double> vCapTile_, hCapTile_;  ///< empty = uniform capacity
};

}  // namespace hcp::fpga
