#include "fpga/device.hpp"

#include <algorithm>
#include <array>
#include <cmath>

namespace hcp::fpga {

Device::Device(Config config) : config_(std::move(config)) {
  HCP_CHECK(config_.width >= 8 && config_.height >= 8);
  types_.resize(numTiles(), TileType::Clb);

  auto isDspCol = [&](std::uint32_t x) {
    return std::find(config_.dspColumns.begin(), config_.dspColumns.end(),
                     x) != config_.dspColumns.end();
  };
  auto isBramCol = [&](std::uint32_t x) {
    return std::find(config_.bramColumns.begin(), config_.bramColumns.end(),
                     x) != config_.bramColumns.end();
  };

  for (std::uint32_t y = 0; y < config_.height; ++y) {
    for (std::uint32_t x = 0; x < config_.width; ++x) {
      TileType t = TileType::Clb;
      if (x == 0 || y == 0 || x == config_.width - 1 ||
          y == config_.height - 1) {
        t = TileType::Io;
      } else if (isDspCol(x)) {
        t = TileType::Dsp;
      } else if (isBramCol(x)) {
        t = TileType::Bram;
      }
      types_[index(x, y)] = t;
      byType_[static_cast<std::size_t>(t)].emplace_back(x, y);
      const TileCapacity cap = tileCapacity(x, y);
      totalLut_ += cap.lut;
      totalFf_ += cap.ff;
      totalDsp_ += cap.dsp;
      totalBram_ += cap.bram;
    }
  }

  // Channel-capacity boost in and next to hard-block columns (column
  // breakout interconnect).
  boost_.assign(numTiles(), 1.0);
  auto isHardCol = [&](std::uint32_t x) {
    return isDspCol(x) || isBramCol(x);
  };
  for (std::uint32_t y = 0; y < config_.height; ++y) {
    for (std::uint32_t x = 0; x < config_.width; ++x) {
      const bool near = isHardCol(x) || (x > 0 && isHardCol(x - 1)) ||
                        (x + 1 < config_.width && isHardCol(x + 1));
      if (near) boost_[index(x, y)] = 1.6;
    }
  }
}

TileCapacity Device::tileCapacity(std::uint32_t x, std::uint32_t y) const {
  TileCapacity cap;
  switch (types_[index(x, y)]) {
    case TileType::Clb:
      cap.lut = config_.lutPerClb;
      cap.ff = config_.ffPerClb;
      break;
    case TileType::Dsp:
      cap.dsp = config_.dspPerTile;
      cap.ff = config_.ffPerClb / 4.0;  // DSP tiles carry some registers
      break;
    case TileType::Bram:
      cap.bram = config_.bramPerTile;
      break;
    case TileType::Io:
      break;
  }
  return cap;
}

Device Device::xc7z020like() {
  Config c;
  c.name = "xc7z020-like";
  // 88x82 interior ~= 6.6k CLB tiles after removing DSP/BRAM columns and the
  // I/O ring, matching the 53,200-LUT budget at 8 LUTs per CLB.
  c.width = 90;
  c.height = 84;
  // Three DSP columns (246 DSP48 slices) and four BRAM columns (328 RAMB18)
  // at one unit per tile — slightly above the real part's 220/280, keeping
  // one-unit cells one tile wide.
  c.dspColumns = {18, 45, 72};
  c.bramColumns = {9, 30, 58, 80};
  c.dspPerTile = 1.0;
  c.bramPerTile = 1.0;
  // Channel capacities in signal bits per tile per direction, calibrated so
  // a device-filling design sits around 60-75% average utilization (the
  // paper's Table III regime). 7-series interconnect is asymmetric; designs
  // saturate horizontal routing first, hence the lower H capacity.
  c.vTracks = 52.0;
  c.hTracks = 42.0;
  return Device(std::move(c));
}

double Device::centreRadius(std::uint32_t x, std::uint32_t y) const {
  const double cx = (config_.width - 1) / 2.0;
  const double cy = (config_.height - 1) / 2.0;
  const double dx = (static_cast<double>(x) - cx) / cx;
  const double dy = (static_cast<double>(y) - cy) / cy;
  return std::min(1.0, std::sqrt((dx * dx + dy * dy) / 2.0));
}

}  // namespace hcp::fpga
