#include "fpga/serialize.hpp"

#include "support/textio.hpp"

namespace hcp::fpga {

namespace txt = support::txt;

// --- CongestionMap (declared in fpga/congestion.hpp) ------------------------

void CongestionMap::write(std::ostream& os) const {
  txt::preparePrecision(os);
  os << "congestion " << width_ << ' ' << height_ << ' ' << vCap_ << ' '
     << hCap_ << '\n';
  os << "vdemand ";
  txt::writeVec(os, vDemand_);
  os << "\nhdemand ";
  txt::writeVec(os, hDemand_);
  os << "\nvcaptile ";
  txt::writeVec(os, vCapTile_);
  os << "\nhcaptile ";
  txt::writeVec(os, hCapTile_);
  os << '\n';
}

CongestionMap CongestionMap::read(std::istream& is) {
  txt::expect(is, "congestion");
  const auto width = txt::read<std::uint32_t>(is, "congestion width");
  const auto height = txt::read<std::uint32_t>(is, "congestion height");
  const auto vCap = txt::read<double>(is, "congestion vCap");
  const auto hCap = txt::read<double>(is, "congestion hCap");
  CongestionMap map(width, height, vCap, hCap);
  const std::size_t tiles = static_cast<std::size_t>(width) * height;
  txt::expect(is, "vdemand");
  map.vDemand_ = txt::readVec<double>(is, "congestion vDemand");
  txt::expect(is, "hdemand");
  map.hDemand_ = txt::readVec<double>(is, "congestion hDemand");
  txt::expect(is, "vcaptile");
  map.vCapTile_ = txt::readVec<double>(is, "congestion vCapTile");
  txt::expect(is, "hcaptile");
  map.hCapTile_ = txt::readVec<double>(is, "congestion hCapTile");
  HCP_CHECK_MSG(map.vDemand_.size() == tiles &&
                    map.hDemand_.size() == tiles &&
                    (map.vCapTile_.empty() || map.vCapTile_.size() == tiles) &&
                    (map.hCapTile_.empty() || map.hCapTile_.size() == tiles),
                "congestion map dimensions do not match its vectors");
  return map;
}

// --- Implementation ---------------------------------------------------------

void writeImplementation(std::ostream& os, const Implementation& impl) {
  txt::preparePrecision(os);
  os << "impl\nclusters " << impl.packing.clusters.size() << '\n';
  for (const Cluster& c : impl.packing.clusters) {
    os << static_cast<unsigned>(c.site) << ' ';
    txt::writeVec(os, c.cells);
    os << ' ' << c.lut << ' ' << c.ff << ' ' << c.dsp << ' ' << c.bram << ' '
       << c.part << '\n';
  }
  os << "clusternets " << impl.packing.nets.size() << '\n';
  for (const ClusterNet& n : impl.packing.nets) {
    os << n.source << ' ' << n.width << ' ' << n.driver << ' ';
    txt::writeVec(os, n.sinks);
    os << '\n';
  }
  os << "clustersofcell " << impl.packing.clustersOfCell.size() << '\n';
  for (const auto& clusters : impl.packing.clustersOfCell) {
    txt::writeVec(os, clusters);
    os << '\n';
  }
  os << "placement " << impl.placement.tileOfCluster.size() << '\n';
  for (const TileXY& t : impl.placement.tileOfCluster)
    os << t.x << ' ' << t.y << '\n';
  os << "placestats " << impl.placement.cost << ' '
     << impl.placement.movesAccepted << ' ' << impl.placement.movesTried
     << '\n';
  impl.routing.map.write(os);
  os << "routes " << impl.routing.routes.size() << '\n';
  for (const auto& route : impl.routing.routes) {
    os << route.size();
    for (const RouteStep& s : route) {
      os << ' ' << s.x << ' ' << s.y << ' ';
      txt::writeBool(os, s.vertical);
    }
    os << '\n';
  }
  os << "routestats " << impl.routing.totalWirelength << ' '
     << impl.routing.overflowTiles << ' ' << impl.routing.iterationsRun
     << '\n';
  os << "timing " << impl.timing.criticalPathNs << ' ' << impl.timing.wnsNs
     << ' ' << impl.timing.maxFrequencyMhz << ' '
     << impl.timing.combinationalCycleCells << ' '
     << impl.timing.criticalNet << '\n';
}

Implementation readImplementation(std::istream& is) {
  txt::expect(is, "impl");
  Implementation impl;
  txt::expect(is, "clusters");
  const auto numClusters = txt::read<std::size_t>(is, "cluster count");
  impl.packing.clusters.reserve(numClusters);
  for (std::size_t i = 0; i < numClusters; ++i) {
    Cluster c;
    const auto site = txt::read<unsigned>(is, "cluster site");
    HCP_CHECK_MSG(site <= static_cast<unsigned>(TileType::Io),
                  "cluster site out of range: " << site);
    c.site = static_cast<TileType>(site);
    c.cells = txt::readVec<rtl::CellId>(is, "cluster cells");
    c.lut = txt::read<double>(is, "cluster lut");
    c.ff = txt::read<double>(is, "cluster ff");
    c.dsp = txt::read<double>(is, "cluster dsp");
    c.bram = txt::read<double>(is, "cluster bram");
    c.part = txt::read<std::uint32_t>(is, "cluster part");
    impl.packing.clusters.push_back(std::move(c));
  }
  txt::expect(is, "clusternets");
  const auto numNets = txt::read<std::size_t>(is, "cluster net count");
  impl.packing.nets.reserve(numNets);
  for (std::size_t i = 0; i < numNets; ++i) {
    ClusterNet n;
    n.source = txt::read<rtl::NetId>(is, "cluster net source");
    n.width = txt::read<std::uint16_t>(is, "cluster net width");
    n.driver = txt::read<ClusterId>(is, "cluster net driver");
    n.sinks = txt::readVec<ClusterId>(is, "cluster net sinks");
    impl.packing.nets.push_back(std::move(n));
  }
  txt::expect(is, "clustersofcell");
  const auto numCells = txt::read<std::size_t>(is, "clustersOfCell count");
  impl.packing.clustersOfCell.reserve(numCells);
  for (std::size_t i = 0; i < numCells; ++i)
    impl.packing.clustersOfCell.push_back(
        txt::readVec<ClusterId>(is, "clustersOfCell"));
  txt::expect(is, "placement");
  const auto numPlaced = txt::read<std::size_t>(is, "placement count");
  HCP_CHECK_MSG(numPlaced == numClusters,
                "placement covers " << numPlaced << " clusters, packing has "
                                    << numClusters);
  impl.placement.tileOfCluster.reserve(numPlaced);
  for (std::size_t i = 0; i < numPlaced; ++i) {
    TileXY t;
    t.x = txt::read<std::uint32_t>(is, "placement x");
    t.y = txt::read<std::uint32_t>(is, "placement y");
    impl.placement.tileOfCluster.push_back(t);
  }
  txt::expect(is, "placestats");
  impl.placement.cost = txt::read<double>(is, "placement cost");
  impl.placement.movesAccepted =
      txt::read<std::uint64_t>(is, "placement movesAccepted");
  impl.placement.movesTried =
      txt::read<std::uint64_t>(is, "placement movesTried");
  impl.routing.map = CongestionMap::read(is);
  txt::expect(is, "routes");
  const auto numRoutes = txt::read<std::size_t>(is, "route count");
  impl.routing.routes.reserve(numRoutes);
  for (std::size_t i = 0; i < numRoutes; ++i) {
    const auto numSteps = txt::read<std::size_t>(is, "route step count");
    std::vector<RouteStep> route;
    route.reserve(numSteps);
    for (std::size_t s = 0; s < numSteps; ++s) {
      RouteStep step;
      step.x = txt::read<std::uint32_t>(is, "route step x");
      step.y = txt::read<std::uint32_t>(is, "route step y");
      step.vertical = txt::readBool(is, "route step vertical");
      route.push_back(step);
    }
    impl.routing.routes.push_back(std::move(route));
  }
  txt::expect(is, "routestats");
  impl.routing.totalWirelength =
      txt::read<double>(is, "routing totalWirelength");
  impl.routing.overflowTiles =
      txt::read<std::size_t>(is, "routing overflowTiles");
  impl.routing.iterationsRun = txt::read<int>(is, "routing iterationsRun");
  txt::expect(is, "timing");
  impl.timing.criticalPathNs = txt::read<double>(is, "timing criticalPathNs");
  impl.timing.wnsNs = txt::read<double>(is, "timing wnsNs");
  impl.timing.maxFrequencyMhz =
      txt::read<double>(is, "timing maxFrequencyMhz");
  impl.timing.combinationalCycleCells =
      txt::read<std::size_t>(is, "timing combinationalCycleCells");
  impl.timing.criticalNet = txt::read<rtl::NetId>(is, "timing criticalNet");
  return impl;
}

// --- Key inputs -------------------------------------------------------------

void writeDeviceFingerprint(std::ostream& os, const Device& device) {
  txt::preparePrecision(os);
  const Device::Config& c = device.config();
  os << "device ";
  txt::writeStr(os, c.name);
  os << ' ' << c.width << ' ' << c.height << " dsp ";
  txt::writeVec(os, c.dspColumns);
  os << " bram ";
  txt::writeVec(os, c.bramColumns);
  os << ' ' << c.lutPerClb << ' ' << c.ffPerClb << ' ' << c.dspPerTile << ' '
     << c.bramPerTile << ' ' << c.vTracks << ' ' << c.hTracks << '\n';
}

void writeParConfig(std::ostream& os, const ParConfig& config) {
  txt::preparePrecision(os);
  os << "parconfig " << config.placer.seed << ' ' << config.placer.effort
     << ' ' << config.placer.coolingRate << ' ' << config.placer.stopFraction
     << ' ' << config.placer.regionSize << ' '
     << config.placer.supplyFraction << ' ' << config.placer.densityWeight
     << ' ' << config.router.maxIterations << ' '
     << config.router.historyGain << ' '
     << config.router.presentFactorGrowth << ' ' << config.router.bboxMargin
     << ' ' << config.timing.targetClockNs << ' '
     << config.timing.clockUncertaintyNs << ' '
     << config.timing.netBaseDelayNs << ' ' << config.timing.perTileDelayNs
     << ' ' << config.timing.congestionPenaltyNs << ' '
     << config.timing.maxOverflowFraction << ' ' << config.timing.setupNs
     << '\n';
}

}  // namespace hcp::fpga
