// Island-style FPGA device model.
//
// A rectangular grid of tiles: CLB tiles (LUT/FF capacity), DSP and BRAM
// columns at fixed x positions (as on real 7-series parts), and an I/O ring
// on the border for pads. Each tile also has a vertical and a horizontal
// routing-channel capacity in "wire-bits": the router charges one unit per
// signal bit routed through the tile in that direction, and congestion
// percentage is demand/capacity*100 — the same per-tile V/H metric Vivado's
// congestion report exposes and the paper back-traces (Fig 1, Fig 5).
//
// The xc7z020like() instance approximates a Zynq XC7Z020: ~6.6k CLBs
// (53,200 LUTs / 8), 220 DSP48 slices, 280 RAMB18 blocks. Horizontal channel
// capacity is set below vertical, reflecting 7-series interconnect where
// designs typically saturate horizontal routing first (the paper's Table III
// shows horizontal congestion consistently above vertical).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "support/error.hpp"

namespace hcp::fpga {

enum class TileType : std::uint8_t { Clb, Dsp, Bram, Io };

struct TileCapacity {
  double lut = 0.0;
  double ff = 0.0;
  double dsp = 0.0;
  double bram = 0.0;
};

class Device {
 public:
  struct Config {
    std::string name = "generic";
    std::uint32_t width = 0;   ///< tiles in x
    std::uint32_t height = 0;  ///< tiles in y
    std::vector<std::uint32_t> dspColumns;
    std::vector<std::uint32_t> bramColumns;
    double lutPerClb = 8.0;    ///< 7-series CLB = 2 slices x 4 LUT6
    double ffPerClb = 16.0;
    double dspPerTile = 1.0;   ///< DSP48 slices per DSP tile
    double bramPerTile = 1.0;  ///< RAMB18 per BRAM tile
    double vTracks = 28.0;     ///< vertical routing capacity per tile (bits)
    double hTracks = 20.0;     ///< horizontal routing capacity per tile
  };

  explicit Device(Config config);

  /// Approximation of the Zynq XC7Z020 (the paper's target device).
  static Device xc7z020like();

  const std::string& name() const { return config_.name; }
  /// The construction parameters — everything that shapes placement/routing.
  /// The flow-cache key fingerprints the device through this.
  const Config& config() const { return config_; }
  std::uint32_t width() const { return config_.width; }
  std::uint32_t height() const { return config_.height; }
  std::size_t numTiles() const {
    return static_cast<std::size_t>(config_.width) * config_.height;
  }

  TileType tileType(std::uint32_t x, std::uint32_t y) const {
    return types_[index(x, y)];
  }
  TileCapacity tileCapacity(std::uint32_t x, std::uint32_t y) const;

  double vTracks() const { return config_.vTracks; }
  double hTracks() const { return config_.hTracks; }

  /// Per-tile channel capacities. Tiles in or adjacent to DSP/BRAM columns
  /// get a boost, matching the richer interconnect real devices provide to
  /// ease column breakout.
  double vTracksAt(std::uint32_t x, std::uint32_t y) const {
    return config_.vTracks * boost_[index(x, y)];
  }
  double hTracksAt(std::uint32_t x, std::uint32_t y) const {
    return config_.hTracks * boost_[index(x, y)];
  }

  std::size_t index(std::uint32_t x, std::uint32_t y) const {
    HCP_CHECK_MSG(x < config_.width && y < config_.height,
                  "tile (" << x << "," << y << ") out of range");
    return static_cast<std::size_t>(y) * config_.width + x;
  }

  /// All tiles of a given type (precomputed; placement seeds from these).
  const std::vector<std::pair<std::uint32_t, std::uint32_t>>& tilesOfType(
      TileType t) const {
    return byType_[static_cast<std::size_t>(t)];
  }

  /// Device-level totals (used for utilization-ratio features).
  double totalLut() const { return totalLut_; }
  double totalFf() const { return totalFf_; }
  double totalDsp() const { return totalDsp_; }
  double totalBram() const { return totalBram_; }

  /// Euclidean-free distance helpers.
  static std::uint32_t manhattan(std::uint32_t x0, std::uint32_t y0,
                                 std::uint32_t x1, std::uint32_t y1) {
    return (x0 > x1 ? x0 - x1 : x1 - x0) + (y0 > y1 ? y0 - y1 : y1 - y0);
  }

  /// Normalized distance of a tile from the device centre in [0, 1]
  /// (1 = corner). The paper's Fig 5 shows congestion concentrating in the
  /// centre; the marginal-sample filter keys off this radius.
  double centreRadius(std::uint32_t x, std::uint32_t y) const;

 private:
  Config config_;
  std::vector<TileType> types_;
  std::vector<double> boost_;  ///< per-tile channel-capacity multiplier
  std::array<std::vector<std::pair<std::uint32_t, std::uint32_t>>, 4> byType_;
  double totalLut_ = 0.0, totalFf_ = 0.0, totalDsp_ = 0.0, totalBram_ = 0.0;
};

}  // namespace hcp::fpga
