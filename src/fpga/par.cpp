#include "fpga/par.hpp"

namespace hcp::fpga {

Implementation implement(const rtl::Netlist& netlist, const Device& device,
                         const ParConfig& config) {
  Implementation impl;
  impl.packing = pack(netlist, device);
  impl.placement = place(impl.packing, device, config.placer);
  impl.routing = route(impl.packing, impl.placement, device, config.router);
  impl.timing = analyzeTiming(netlist, impl.packing, impl.placement,
                              impl.routing, config.timing);
  return impl;
}

}  // namespace hcp::fpga
