// Packing: clusters netlist cells into tile-sized units.
//
// CLB-bound cells (LUT/FF logic) are clustered greedily by connectivity —
// the classic VPR-style approach: seed a cluster with the unpacked cell most
// connected to already-packed logic, then absorb its most-connected
// neighbours until the CLB capacity is hit. DSP and BRAM cells get their own
// tile class; pads go to the I/O ring. Cells wider than one tile are split
// into multiple chained parts so big operators occupy several adjacent-ish
// tiles, as on a real device.
//
// The output also projects nets onto clusters (intra-cluster connections are
// absorbed), which is what the placer and router operate on.
#pragma once

#include <cstdint>
#include <vector>

#include "fpga/device.hpp"
#include "rtl/netlist.hpp"

namespace hcp::fpga {

using ClusterId = std::uint32_t;

struct Cluster {
  TileType site = TileType::Clb;
  std::vector<rtl::CellId> cells;  ///< member cells (part-cells repeat)
  double lut = 0.0, ff = 0.0, dsp = 0.0, bram = 0.0;
  /// For split cells: which part of the cell this cluster holds (0-based).
  std::uint32_t part = 0;
};

struct ClusterNet {
  rtl::NetId source = rtl::kInvalidNet;  ///< originating netlist net
  std::uint16_t width = 1;
  ClusterId driver = 0;
  std::vector<ClusterId> sinks;  ///< deduplicated, driver excluded
};

struct Packing {
  std::vector<Cluster> clusters;
  std::vector<ClusterNet> nets;
  /// Clusters holding each cell (usually one; several for split cells).
  std::vector<std::vector<ClusterId>> clustersOfCell;
};

/// Packs `netlist` for `device`. Throws hcp::Error if the design cannot fit
/// (more clusters of a class than tiles of that class).
Packing pack(const rtl::Netlist& netlist, const Device& device);

}  // namespace hcp::fpga
