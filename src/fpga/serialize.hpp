// Text serialization of physical-implementation results (flow-cache
// format): packing, placement, routing (congestion map + per-net routed
// trees) and the timing report, plus the device fingerprint that
// participates in the flow-cache key. Doubles use 17 significant digits;
// save -> load -> save is byte-identical.
#pragma once

#include <istream>
#include <ostream>

#include "fpga/par.hpp"

namespace hcp::fpga {

void writeImplementation(std::ostream& os, const Implementation& impl);

/// Reads what writeImplementation wrote. Throws hcp::Error on malformed
/// input.
Implementation readImplementation(std::istream& is);

/// Canonical text fingerprint of a device: every Config field. Two devices
/// fingerprint identically iff pack/place/route behave identically on them.
void writeDeviceFingerprint(std::ostream& os, const Device& device);

/// Scalar config blocks (flow-cache key inputs).
void writeParConfig(std::ostream& os, const ParConfig& config);

}  // namespace hcp::fpga
