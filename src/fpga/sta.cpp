#include "fpga/sta.hpp"

#include <algorithm>
#include <queue>

#include "support/telemetry.hpp"

namespace hcp::fpga {

using rtl::Cell;
using rtl::CellId;
using rtl::Netlist;

TimingReport analyzeTiming(const Netlist& netlist, const Packing& packing,
                           const Placement& placement,
                           const RoutingResult& routing,
                           const TimingConfig& config) {
  HCP_SPAN("sta");
  TimingReport report;
  const std::size_t numCells = netlist.numCells();

  // Location of each cell = tile of its first cluster.
  auto tileOf = [&](CellId c) -> TileXY {
    return placement.tileOfCluster[packing.clustersOfCell[c].front()];
  };

  // Per packing-net congestion penalty: summed overflow along its route.
  std::vector<double> netPenalty(packing.nets.size(), 0.0);
  for (std::size_t n = 0; n < packing.nets.size(); ++n) {
    double pen = 0.0;
    for (const RouteStep& s : routing.routes[n]) {
      const double util = s.vertical ? routing.map.vUtil(s.x, s.y)
                                     : routing.map.hUtil(s.x, s.y);
      if (util > 100.0)
        pen += config.congestionPenaltyNs *
               std::min(config.maxOverflowFraction, (util - 100.0) / 100.0);
    }
    netPenalty[n] = pen;
  }
  // Map netlist nets to their packing-net penalty (absorbed nets get 0).
  std::vector<double> penaltyOfNet(netlist.numNets(), 0.0);
  for (std::size_t n = 0; n < packing.nets.size(); ++n)
    if (packing.nets[n].source != rtl::kInvalidNet)
      penaltyOfNet[packing.nets[n].source] = netPenalty[n];

  auto netDelayTo = [&](const rtl::Net& net, rtl::NetId id,
                        CellId sink) -> double {
    const TileXY a = tileOf(net.driver);
    const TileXY b = tileOf(sink);
    return config.netBaseDelayNs +
           config.perTileDelayNs * Device::manhattan(a.x, a.y, b.x, b.y) +
           penaltyOfNet[id];
  };

  // Combinational propagation graph: edges driver -> sink for sinks that
  // continue combinational paths. Sequential cells and pads are endpoints.
  auto isEndpoint = [&](const Cell& c) {
    return c.sequential || c.type == rtl::CellType::Pad ||
           c.type == rtl::CellType::MemoryBank ||
           c.type == rtl::CellType::Register;
  };

  std::vector<std::uint32_t> inDegree(numCells, 0);
  for (const rtl::Net& net : netlist.nets()) {
    for (CellId s : net.sinks)
      if (!isEndpoint(netlist.cell(s))) ++inDegree[s];
  }
  // Nets by driver for propagation.
  std::vector<std::vector<rtl::NetId>> netsOfDriver(numCells);
  for (rtl::NetId n = 0; n < netlist.numNets(); ++n)
    netsOfDriver[netlist.net(n).driver].push_back(n);

  // Output arrival times. Endpoints launch at their clk-to-q / access delay.
  std::vector<double> arrival(numCells, 0.0);
  std::vector<bool> resolved(numCells, false);
  std::queue<CellId> ready;
  for (CellId c = 0; c < numCells; ++c) {
    if (isEndpoint(netlist.cell(c)) || inDegree[c] == 0) {
      arrival[c] = netlist.cell(c).delayNs;
      resolved[c] = true;
      ready.push(c);
    }
  }

  std::size_t processed = 0;
  std::uint64_t propagations = 0;
  std::vector<std::uint32_t> remaining = inDegree;
  while (!ready.empty()) {
    const CellId u = ready.front();
    ready.pop();
    ++processed;
    for (rtl::NetId nid : netsOfDriver[u]) {
      const rtl::Net& net = netlist.net(nid);
      for (CellId s : net.sinks) {
        const Cell& sc = netlist.cell(s);
        if (isEndpoint(sc)) continue;  // handled as endpoints below
        const double inArrival = arrival[u] + netDelayTo(net, nid, s);
        arrival[s] = std::max(arrival[s], inArrival + sc.delayNs);
        ++propagations;
        if (--remaining[s] == 0) {
          resolved[s] = true;
          ready.push(s);
        }
      }
    }
  }
  support::telemetry::count(
      support::telemetry::Counter::StaArrivalPropagations, propagations);

  // Cells stuck in combinational cycles (cross-coupled shared FUs): their
  // ops execute in different control steps, so treat them as registered —
  // launch at their own delay and count them.
  for (CellId c = 0; c < numCells; ++c) {
    if (!resolved[c]) {
      arrival[c] = netlist.cell(c).delayNs;
      ++report.combinationalCycleCells;
    }
  }

  // Critical segment: longest (arrival at driver + net delay + setup) over
  // every net sink.
  for (rtl::NetId nid = 0; nid < netlist.numNets(); ++nid) {
    const rtl::Net& net = netlist.net(nid);
    for (CellId s : net.sinks) {
      const double path =
          arrival[net.driver] + netDelayTo(net, nid, s) + config.setupNs;
      if (path > report.criticalPathNs) {
        report.criticalPathNs = path;
        report.criticalNet = nid;
      }
    }
  }

  const double effective =
      report.criticalPathNs + config.clockUncertaintyNs;
  report.wnsNs = config.targetClockNs - effective;
  report.maxFrequencyMhz = effective > 0 ? 1000.0 / effective : 0.0;
  support::telemetry::observe(support::telemetry::Histogram::StaSlackNs,
                              report.wnsNs);
  return report;
}

}  // namespace hcp::fpga
