// Back-tracing (paper §III-A1, Fig 3): connects post-PAR physical metrics
// back to HLS IR operations.
//
// Forward chain: IR op -> RTL cell(s) (via the generator's provenance) ->
// cluster -> tile -> per-tile V/H congestion. Back-tracing inverts it: every
// (module instance, IR op) that owns placed cells becomes one dataset sample
// whose labels are the congestion percentages of the CLBs its cells landed
// in (averaged when an op spans several cells). The sample also records the
// source line and the normalized distance from the device centre — the
// latter drives the marginal-operation filter (§III-C1).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fpga/par.hpp"
#include "rtl/generator.hpp"

namespace hcp::trace {

struct Sample {
  std::uint32_t functionIndex = 0;
  rtl::InstanceId instance = 0;
  ir::OpId op = ir::kInvalidOp;
  ir::OpId originOp = ir::kInvalidOp;  ///< unroll-replica group key
  std::int32_t sourceLine = 0;

  // Labels (%).
  double vCongestion = 0.0;
  double hCongestion = 0.0;
  double avgCongestion = 0.0;

  double centreRadius = 0.0;  ///< 0 = device centre, 1 = corner
  std::size_t numCells = 0;
  bool marginal = false;      ///< set by filterMarginal
};

struct BackTraceResult {
  std::vector<Sample> samples;
  std::size_t cellsTraced = 0;
  std::size_t cellsWithoutOps = 0;  ///< pads/banks not tied to a single op
};

/// Labels every (instance, op) with the congestion of its cells' tiles.
BackTraceResult backTrace(const rtl::GeneratedRtl& rtl,
                          const fpga::Implementation& impl,
                          const fpga::Device& device,
                          const ir::Module& module);

/// Human-readable Fig-3 style chain for one cell:
/// tile(x,y) V/H% -> cell -> nets -> instance -> IR op -> source line.
std::string describeCell(const rtl::GeneratedRtl& rtl,
                         const fpga::Implementation& impl,
                         const ir::Module& module, rtl::CellId cell);

struct FilterConfig {
  /// Replica groups smaller than this are never filtered.
  std::size_t minGroupSize = 4;
  /// A replica is marginal if its average label is below this fraction of
  /// its group's median...
  double labelFraction = 0.65;
  /// ...and it sits beyond this centre radius (outer ring of the device).
  double minRadius = 0.55;
};

struct FilterStats {
  std::size_t total = 0;
  std::size_t marginal = 0;
  double fraction() const {
    return total ? static_cast<double>(marginal) / total : 0.0;
  }
};

/// Marks marginal unroll replicas (paper §III-C1: replicas of the same
/// pre-unroll op placed at the device margin with labels far below the rest
/// of their group — ~3.4% of ops in the paper's benchmarks).
FilterStats filterMarginal(std::vector<Sample>& samples,
                           const FilterConfig& config = {});

}  // namespace hcp::trace
