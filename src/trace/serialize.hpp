// Text serialization of back-tracing results (flow-cache format). Doubles
// use 17 significant digits; save -> load -> save is byte-identical.
#pragma once

#include <istream>
#include <ostream>

#include "trace/backtrace.hpp"

namespace hcp::trace {

void writeBackTrace(std::ostream& os, const BackTraceResult& traced);

/// Reads what writeBackTrace wrote. Throws hcp::Error on malformed input.
BackTraceResult readBackTrace(std::istream& is);

}  // namespace hcp::trace
