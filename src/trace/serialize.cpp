#include "trace/serialize.hpp"

#include "support/textio.hpp"

namespace hcp::trace {

namespace txt = support::txt;

void writeBackTrace(std::ostream& os, const BackTraceResult& traced) {
  txt::preparePrecision(os);
  os << "trace " << traced.samples.size() << ' ' << traced.cellsTraced << ' '
     << traced.cellsWithoutOps << '\n';
  for (const Sample& s : traced.samples) {
    os << s.functionIndex << ' ' << s.instance << ' ' << s.op << ' '
       << s.originOp << ' ' << s.sourceLine << ' ' << s.vCongestion << ' '
       << s.hCongestion << ' ' << s.avgCongestion << ' ' << s.centreRadius
       << ' ' << s.numCells << ' ';
    txt::writeBool(os, s.marginal);
    os << '\n';
  }
}

BackTraceResult readBackTrace(std::istream& is) {
  txt::expect(is, "trace");
  BackTraceResult traced;
  const auto numSamples = txt::read<std::size_t>(is, "trace sample count");
  traced.cellsTraced = txt::read<std::size_t>(is, "trace cellsTraced");
  traced.cellsWithoutOps =
      txt::read<std::size_t>(is, "trace cellsWithoutOps");
  traced.samples.reserve(numSamples);
  for (std::size_t i = 0; i < numSamples; ++i) {
    Sample s;
    s.functionIndex = txt::read<std::uint32_t>(is, "sample functionIndex");
    s.instance = txt::read<rtl::InstanceId>(is, "sample instance");
    s.op = txt::read<ir::OpId>(is, "sample op");
    s.originOp = txt::read<ir::OpId>(is, "sample originOp");
    s.sourceLine = txt::read<std::int32_t>(is, "sample sourceLine");
    s.vCongestion = txt::read<double>(is, "sample vCongestion");
    s.hCongestion = txt::read<double>(is, "sample hCongestion");
    s.avgCongestion = txt::read<double>(is, "sample avgCongestion");
    s.centreRadius = txt::read<double>(is, "sample centreRadius");
    s.numCells = txt::read<std::size_t>(is, "sample numCells");
    s.marginal = txt::readBool(is, "sample marginal");
    traced.samples.push_back(s);
  }
  return traced;
}

}  // namespace hcp::trace
