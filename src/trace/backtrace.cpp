#include "trace/backtrace.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "support/stats.hpp"
#include "support/telemetry.hpp"

namespace hcp::trace {

using fpga::Implementation;
using fpga::TileXY;
using rtl::CellId;
using rtl::GeneratedRtl;

BackTraceResult backTrace(const GeneratedRtl& rtl, const Implementation& impl,
                          const fpga::Device& device,
                          const ir::Module& module) {
  HCP_SPAN("backtrace");
  BackTraceResult result;

  // Labels come from the regionally-smoothed map: Vivado's congestion
  // report is a windowed estimate, and the learning target should be the
  // congestion of the op's neighbourhood, not single-tile routing noise.
  const fpga::CongestionMap smoothMap = impl.routing.map.smoothed(2);

  // Group provenance records by (instance, op).
  struct Acc {
    double v = 0.0, h = 0.0, radius = 0.0;
    std::size_t cells = 0;
  };
  std::map<std::uint64_t, Acc> acc;
  for (const auto& [key, cell] : rtl.provenance.opCells) {
    const TileXY tile = impl.tileOfCell(cell);
    Acc& a = acc[key];
    a.v += smoothMap.vUtil(tile.x, tile.y);
    a.h += smoothMap.hUtil(tile.x, tile.y);
    a.radius += device.centreRadius(tile.x, tile.y);
    ++a.cells;
    ++result.cellsTraced;
  }

  for (const auto& [key, a] : acc) {
    const auto instance = static_cast<rtl::InstanceId>(key >> 32);
    const auto op = static_cast<ir::OpId>(key & 0xffffffffu);
    Sample s;
    s.instance = instance;
    s.functionIndex = rtl.netlist.instance(instance).functionIndex;
    s.op = op;
    s.vCongestion = a.v / static_cast<double>(a.cells);
    s.hCongestion = a.h / static_cast<double>(a.cells);
    s.avgCongestion = 0.5 * (s.vCongestion + s.hCongestion);
    s.centreRadius = a.radius / static_cast<double>(a.cells);
    s.numCells = a.cells;
    result.samples.push_back(s);
  }

  // Fill per-sample IR metadata (unroll origin + source line).
  for (Sample& s : result.samples) {
    const ir::Function& fn = module.function(s.functionIndex);
    s.originOp = fn.op(s.op).originOp;
    s.sourceLine = fn.op(s.op).sourceLine;
  }
  result.cellsWithoutOps = rtl.netlist.numCells() -
                           std::min(rtl.netlist.numCells(),
                                    result.cellsTraced);
  support::telemetry::count(support::telemetry::Counter::TraceCellsTraced,
                            result.cellsTraced);
  return result;
}

std::string describeCell(const GeneratedRtl& rtl, const Implementation& impl,
                         const ir::Module& module, CellId cell) {
  const rtl::Cell& c = rtl.netlist.cell(cell);
  const TileXY tile = impl.tileOfCell(cell);
  std::ostringstream os;
  os << "tile(" << tile.x << "," << tile.y << ") "
     << "V=" << impl.routing.map.vUtil(tile.x, tile.y) << "% "
     << "H=" << impl.routing.map.hUtil(tile.x, tile.y) << "%"
     << " <- cell '" << c.name << "'";
  // Nets touching this cell (first few).
  std::size_t listed = 0;
  for (rtl::NetId n = 0; n < rtl.netlist.numNets() && listed < 3; ++n) {
    const rtl::Net& net = rtl.netlist.net(n);
    const bool touches =
        net.driver == cell ||
        std::find(net.sinks.begin(), net.sinks.end(), cell) !=
            net.sinks.end();
    if (touches) {
      os << (listed == 0 ? " <- nets [" : ", ") << net.name;
      ++listed;
    }
  }
  if (listed) os << "]";
  const rtl::Instance& inst = rtl.netlist.instance(c.instance);
  os << " <- instance '" << inst.name << "' ("
     << module.function(inst.functionIndex).name() << ")";
  if (!c.ops.empty()) {
    const ir::Function& fn = module.function(inst.functionIndex);
    os << " <- IR op %" << c.ops.front() << " ("
       << ir::opcodeName(fn.op(c.ops.front()).opcode) << ")"
       << " <- source line " << fn.op(c.ops.front()).sourceLine;
  }
  return os.str();
}

FilterStats filterMarginal(std::vector<Sample>& samples,
                           const FilterConfig& config) {
  FilterStats stats;
  stats.total = samples.size();

  // Group replicas: same function, same instance, same origin op.
  std::map<std::tuple<std::uint32_t, rtl::InstanceId, ir::OpId>,
           std::vector<std::size_t>>
      groups;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    if (samples[i].originOp == ir::kInvalidOp) continue;
    groups[{samples[i].functionIndex, samples[i].instance,
            samples[i].originOp}]
        .push_back(i);
  }

  for (const auto& [key, members] : groups) {
    if (members.size() < config.minGroupSize) continue;
    std::vector<double> labels;
    labels.reserve(members.size());
    for (std::size_t i : members) labels.push_back(samples[i].avgCongestion);
    const double med = hcp::median(labels);
    if (med <= 0.0) continue;
    for (std::size_t i : members) {
      Sample& s = samples[i];
      if (s.avgCongestion < config.labelFraction * med &&
          s.centreRadius >= config.minRadius) {
        s.marginal = true;
        ++stats.marginal;
      }
    }
  }
  return stats;
}

}  // namespace hcp::trace
