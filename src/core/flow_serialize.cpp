#include "core/flow_serialize.hpp"

#include <sstream>

#include "fpga/serialize.hpp"
#include "hls/serialize.hpp"
#include "ir/serialize.hpp"
#include "rtl/serialize.hpp"
#include "support/flowcache.hpp"
#include "support/textio.hpp"
#include "trace/serialize.hpp"

namespace hcp::core {

namespace txt = support::txt;

void writeFlowResult(std::ostream& os, const FlowResult& result) {
  txt::preparePrecision(os);
  os << "hcp-flowresult " << support::flowcache::kSchemaVersion << '\n';
  os << "name ";
  txt::writeStr(os, result.name);
  os << '\n';
  hls::writeDesign(os, result.design);
  rtl::writeGeneratedRtl(os, result.rtl);
  fpga::writeImplementation(os, result.impl);
  trace::writeBackTrace(os, result.traced);
  os << "headline " << result.wnsNs << ' ' << result.maxFrequencyMhz << ' '
     << result.latencyCycles << ' ' << result.maxVCongestion << ' '
     << result.maxHCongestion << ' ' << result.congestedTiles << '\n';
  os << "end\n";
}

FlowResult readFlowResult(std::istream& is) {
  txt::expect(is, "hcp-flowresult");
  const auto version = txt::read<std::uint32_t>(is, "flow-result version");
  HCP_CHECK_MSG(version == support::flowcache::kSchemaVersion,
                "flow-result schema " << version << ", expected "
                                      << support::flowcache::kSchemaVersion);
  FlowResult result;
  txt::expect(is, "name");
  result.name = txt::readStr(is, "flow-result name");
  result.design = hls::readDesign(is);
  result.rtl = rtl::readGeneratedRtl(is);
  result.impl = fpga::readImplementation(is);
  result.traced = trace::readBackTrace(is);
  txt::expect(is, "headline");
  result.wnsNs = txt::read<double>(is, "headline wnsNs");
  result.maxFrequencyMhz = txt::read<double>(is, "headline maxFrequencyMhz");
  result.latencyCycles =
      txt::read<std::uint64_t>(is, "headline latencyCycles");
  result.maxVCongestion = txt::read<double>(is, "headline maxVCongestion");
  result.maxHCongestion = txt::read<double>(is, "headline maxHCongestion");
  result.congestedTiles =
      txt::read<std::size_t>(is, "headline congestedTiles");
  txt::expect(is, "end");
  txt::expectEnd(is, "flow result");
  return result;
}

std::string flowCacheKey(const apps::AppDesign& app,
                         const fpga::Device& device,
                         const FlowConfig& config) {
  // Canonical text of the structured inputs; hashing the same writers the
  // cache payload uses keeps the key in lockstep with the formats.
  std::ostringstream canon;
  ir::writeModule(canon, *app.module);
  hls::writeDirectives(canon, app.directives);
  hls::writeScheduleConstraints(canon, config.synthesis.schedule);
  fpga::writeParConfig(canon, config.par);
  fpga::writeDeviceFingerprint(canon, device);

  support::flowcache::Fnv1a h;
  h.u64(support::flowcache::kSchemaVersion)
      .str(app.name)
      .str(canon.str())
      .u64(config.synthesis.bind.maxGroupSize)
      .u64(config.synthesis.bind.shareInPipelinedLoops ? 1 : 0)
      .u64(config.synthesis.runFrontendPasses ? 1 : 0)
      .u64(config.seed);
  return h.hex();
}

}  // namespace hcp::core
