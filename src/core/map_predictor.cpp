#include "core/map_predictor.hpp"

#include <utility>

#include "support/error.hpp"
#include "support/telemetry.hpp"

namespace hcp::core {

features::GridFeatureConfig gridConfigFor(const fpga::PlacerConfig& placer) {
  features::GridFeatureConfig grid;
  grid.regionSize = placer.regionSize;
  return grid;
}

ml::GridSample gridSampleFor(const fpga::Packing& packing,
                             const fpga::Placement& placement,
                             const fpga::Device& device,
                             const features::GridFeatureConfig& grid) {
  const features::GridFeatures feats =
      features::extractGridFeatures(packing, placement, device, grid);
  ml::GridSample sample;
  sample.width = feats.width;
  sample.height = feats.height;
  for (const std::vector<double>* channel : feats.channels())
    sample.channels.push_back(*channel);
  return sample;
}

std::vector<ml::MapSample> buildMapSamples(
    std::span<const FlowResult> flows, const fpga::Device& device,
    const features::GridFeatureConfig& grid) {
  HCP_SPAN("build_map_samples");
  std::vector<ml::MapSample> samples;
  samples.reserve(flows.size());
  for (const FlowResult& flow : flows) {
    const fpga::CongestionMap& map = flow.impl.routing.map;
    HCP_CHECK_MSG(map.width() == device.width() &&
                      map.height() == device.height(),
                  flow.name << ": routed map is " << map.width() << "x"
                            << map.height() << ", device is "
                            << device.width() << "x" << device.height());
    ml::MapSample sample;
    sample.grid =
        gridSampleFor(flow.impl.packing, flow.impl.placement, device, grid);
    const std::size_t tiles = sample.grid.numTiles();
    sample.vTarget.resize(tiles);
    sample.hTarget.resize(tiles);
    for (std::uint32_t y = 0; y < map.height(); ++y)
      for (std::uint32_t x = 0; x < map.width(); ++x) {
        const std::size_t i = static_cast<std::size_t>(y) * map.width() + x;
        sample.vTarget[i] = map.vUtil(x, y);
        sample.hTarget[i] = map.hUtil(x, y);
      }
    samples.push_back(std::move(sample));
  }
  return samples;
}

ml::GridSample placeAndExtract(apps::AppDesign&& app,
                               const fpga::Device& device,
                               const FlowConfig& config) {
  HCP_SPAN("place_and_extract");
  hls::SynthesisOptions synth = config.synthesis;
  const hls::SynthesizedDesign design =
      hls::synthesize(std::move(app.module), app.directives, synth);
  const rtl::GeneratedRtl rtl = rtl::generateRtl(design);
  const auto netlistIssues = rtl.netlist.validate();
  HCP_CHECK_MSG(netlistIssues.empty(), app.name << ": "
                                                << netlistIssues.front());
  // Mirror runFlow's parameter derivation exactly: a mismatch here would
  // silently hand the model features from a different placement than the one
  // its training targets were routed on.
  fpga::ParConfig par = config.par;
  par.placer.seed = config.seed;
  const fpga::Packing packing = fpga::pack(rtl.netlist, device);
  const fpga::Placement placement =
      fpga::place(packing, device, par.placer);
  return gridSampleFor(packing, placement, device,
                       gridConfigFor(par.placer));
}

}  // namespace hcp::core
