#include "core/dataset_builder.hpp"

#include "support/parallel.hpp"
#include "support/telemetry.hpp"

namespace hcp::core {

LabeledDataset buildDataset(const FlowResult& flow,
                            const DatasetOptions& options) {
  const FlowResult* one = &flow;
  return buildDataset(std::span<const FlowResult>(one, 1), options);
}

void enrichDataset(LabeledDataset& base, const LabeledDataset& extra) {
  base.vertical.merge(extra.vertical);
  base.horizontal.merge(extra.horizontal);
  base.average.merge(extra.average);
  base.samples.insert(base.samples.end(), extra.samples.begin(),
                      extra.samples.end());
  base.filterStats.total += extra.filterStats.total;
  base.filterStats.marginal += extra.filterStats.marginal;
}

LabeledDataset buildDataset(std::span<const FlowResult> flows,
                            const DatasetOptions& options) {
  HCP_SPAN("build_dataset");
  LabeledDataset out;

  // Stage 1 (serial, cheap): marginal filtering per flow, keeping the
  // surviving samples in flow order.
  struct FlowPart {
    std::size_t flowIdx = 0;
    std::vector<trace::Sample> kept;
  };
  std::vector<FlowPart> parts;
  parts.reserve(flows.size());
  for (std::size_t fi = 0; fi < flows.size(); ++fi) {
    const FlowResult& flow = flows[fi];
    std::vector<trace::Sample> samples = flow.traced.samples;
    if (options.applyMarginalFilter) {
      const auto stats = trace::filterMarginal(samples, options.filter);
      out.filterStats.total += stats.total;
      out.filterStats.marginal += stats.marginal;
    } else {
      out.filterStats.total += samples.size();
    }
    FlowPart part;
    part.flowIdx = fi;
    for (trace::Sample& s : samples)
      if (!s.marginal) part.kept.push_back(std::move(s));
    parts.push_back(std::move(part));
  }

  // Stage 2 (parallel): per-sample feature extraction over a flattened
  // worklist. One extractor per flow, pre-warmed so the shared per-function
  // caches are read-only during the concurrent extract() calls.
  std::vector<features::FeatureExtractor> extractors;
  extractors.reserve(flows.size());
  for (const FlowResult& flow : flows) {
    extractors.emplace_back(flow.design, options.caps);
    extractors.back().prepare();
  }

  struct WorkItem {
    std::size_t flowIdx = 0;
    const trace::Sample* sample = nullptr;
  };
  std::vector<WorkItem> work;
  for (const FlowPart& part : parts)
    for (const trace::Sample& s : part.kept)
      work.push_back({part.flowIdx, &s});

  support::telemetry::count(
      support::telemetry::Counter::DatasetSamplesExtracted, work.size());
  auto features = support::parallelMapIndex(
      work.size(),
      [&](std::size_t k) {
        const WorkItem& item = work[k];
        return extractors[item.flowIdx].extract(item.sample->functionIndex,
                                                item.sample->op);
      },
      /*grainSize=*/16);

  // Stage 3 (serial): ordered merge — identical row order to the serial
  // flow-by-flow, sample-by-sample construction.
  for (std::size_t k = 0; k < work.size(); ++k) {
    const trace::Sample& s = *work[k].sample;
    auto& x = features[k];
    support::telemetry::observe(
        support::telemetry::Histogram::DatasetLabelPct, s.avgCongestion);
    out.vertical.add(x, s.vCongestion);
    out.horizontal.add(x, s.hCongestion);
    out.average.add(std::move(x), s.avgCongestion);
    out.samples.push_back(s);
  }
  return out;
}

}  // namespace hcp::core
