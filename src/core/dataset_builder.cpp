#include "core/dataset_builder.hpp"

namespace hcp::core {

LabeledDataset buildDataset(const FlowResult& flow,
                            const DatasetOptions& options) {
  const FlowResult* one = &flow;
  return buildDataset(std::span<const FlowResult>(one, 1), options);
}

void enrichDataset(LabeledDataset& base, const LabeledDataset& extra) {
  base.vertical.merge(extra.vertical);
  base.horizontal.merge(extra.horizontal);
  base.average.merge(extra.average);
  base.samples.insert(base.samples.end(), extra.samples.begin(),
                      extra.samples.end());
  base.filterStats.total += extra.filterStats.total;
  base.filterStats.marginal += extra.filterStats.marginal;
}

LabeledDataset buildDataset(std::span<const FlowResult> flows,
                            const DatasetOptions& options) {
  LabeledDataset out;
  for (const FlowResult& flow : flows) {
    features::FeatureExtractor extractor(flow.design, options.caps);

    std::vector<trace::Sample> samples = flow.traced.samples;
    if (options.applyMarginalFilter) {
      const auto stats = trace::filterMarginal(samples, options.filter);
      out.filterStats.total += stats.total;
      out.filterStats.marginal += stats.marginal;
    } else {
      out.filterStats.total += samples.size();
    }

    for (const trace::Sample& s : samples) {
      if (s.marginal) continue;
      auto x = extractor.extract(s.functionIndex, s.op);
      out.vertical.add(x, s.vCongestion);
      out.horizontal.add(x, s.hCongestion);
      out.average.add(std::move(x), s.avgCongestion);
      out.samples.push_back(s);
    }
  }
  return out;
}

}  // namespace hcp::core
