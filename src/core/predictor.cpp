#include "core/predictor.hpp"

#include <algorithm>
#include <fstream>
#include <map>

#include "ml/serialize.hpp"
#include "support/telemetry.hpp"
#include "support/textio.hpp"

namespace hcp::core {

std::string_view modelKindName(ModelKind kind) {
  switch (kind) {
    case ModelKind::Linear: return "Linear";
    case ModelKind::Ann: return "ANN";
    case ModelKind::Gbrt: return "GBRT";
  }
  return "?";
}

CongestionPredictor::CongestionPredictor(PredictorOptions options)
    : options_(std::move(options)) {}

std::unique_ptr<ml::Regressor> CongestionPredictor::makeModel() const {
  switch (options_.kind) {
    case ModelKind::Linear:
      return std::make_unique<ml::LassoRegression>(options_.lasso);
    case ModelKind::Ann:
      return std::make_unique<ml::MlpRegressor>(options_.mlp);
    case ModelKind::Gbrt:
      return std::make_unique<ml::Gbrt>(options_.gbrt);
  }
  HCP_CHECK(false);
  return nullptr;
}

void CongestionPredictor::train(const LabeledDataset& data) {
  HCP_SPAN("train");
  HCP_CHECK_MSG(data.vertical.size() > 0, "empty training dataset");
  vertical_ = makeModel();
  horizontal_ = makeModel();
  average_ = makeModel();
  vertical_->fit(data.vertical);
  horizontal_->fit(data.horizontal);
  average_->fit(data.average);
  trained_ = true;
}

void CongestionPredictor::trainFromShards(const ml::shards::ShardSet& set,
                                          bool streaming) {
  HCP_SPAN("train_from_shards");
  HCP_CHECK_MSG(set.totalSamples() > 0,
                "empty shard set: no training samples under " << set.dir());
  vertical_ = makeModel();
  horizontal_ = makeModel();
  average_ = makeModel();
  const auto fitOne = [&](ml::Regressor& model, ml::shards::Label label) {
    const ml::shards::ShardRowSource source(set, label);
    if (streaming) {
      model.fitStreaming(source);
    } else {
      // Cross-check path: materialize the whole set, then take the
      // ordinary in-memory fit. Exists so tests and the bench can prove
      // the streamed model is byte-identical to this one.
      model.fit(ml::materialize(source));
    }
  };
  fitOne(*vertical_, ml::shards::Label::Vertical);
  fitOne(*horizontal_, ml::shards::Label::Horizontal);
  fitOne(*average_, ml::shards::Label::Average);
  trained_ = true;
}

OpPrediction CongestionPredictor::predictOp(
    const features::FeatureExtractor& extractor, std::uint32_t functionIndex,
    ir::OpId op) const {
  HCP_CHECK_MSG(trained_, "predictor not trained");
  const auto x = extractor.extract(functionIndex, op);
  OpPrediction p;
  p.vertical = vertical_->predict(x);
  p.horizontal = horizontal_->predict(x);
  p.average = average_->predict(x);
  return p;
}

std::vector<Hotspot> CongestionPredictor::findHotspots(
    const hls::SynthesizedDesign& design, const features::DeviceCaps& caps,
    std::size_t topK) const {
  HCP_CHECK_MSG(trained_, "predictor not trained");
  features::FeatureExtractor extractor(design, caps);

  struct Acc {
    double sum = 0.0, max = 0.0;
    std::size_t count = 0;
  };
  std::map<std::pair<std::uint32_t, std::int32_t>, Acc> regions;

  for (std::uint32_t f = 0; f < design.module->numFunctions(); ++f) {
    const ir::Function& fn = design.module->function(f);
    for (ir::OpId op = 0; op < fn.numOps(); ++op) {
      if (!ir::isFunctionalUnit(fn.op(op).opcode)) continue;
      const OpPrediction p = predictOp(extractor, f, op);
      Acc& a = regions[{f, fn.op(op).sourceLine}];
      a.sum += p.average;
      a.max = std::max(a.max, p.average);
      ++a.count;
    }
  }

  std::vector<Hotspot> hotspots;
  for (const auto& [key, a] : regions) {
    Hotspot h;
    h.functionIndex = key.first;
    h.functionName = design.module->function(key.first).name();
    h.sourceLine = key.second;
    h.numOps = a.count;
    h.meanPredicted = a.sum / static_cast<double>(a.count);
    h.maxPredicted = a.max;
    hotspots.push_back(std::move(h));
  }
  std::sort(hotspots.begin(), hotspots.end(),
            [](const Hotspot& a, const Hotspot& b) {
              return a.meanPredicted > b.meanPredicted;
            });
  if (hotspots.size() > topK) hotspots.resize(topK);
  return hotspots;
}

std::vector<double> CongestionPredictor::featureImportance() const {
  if (!trained_ || options_.kind != ModelKind::Gbrt) return {};
  return static_cast<const ml::Gbrt&>(*vertical_).featureImportance();
}

void CongestionPredictor::save(const std::string& path) const {
  HCP_CHECK_MSG(trained_, "cannot save an untrained predictor");
  // Same fail-safe contract as ml::saveModelToFile: the in-body os.good()
  // check only sees buffered failures, so commit() re-verifies after the
  // final flush/close — a short write raises hcp::IoError naming `path`
  // and the atomic temp + rename leaves no partial predictor behind.
  support::txt::CheckedFileWriter writer(path, "model");
  std::ostream& os = writer.stream();
  os << "hcp-predictor 1 " << modelKindName(options_.kind) << "\n";
  ml::saveModel(*vertical_, os);
  ml::saveModel(*horizontal_, os);
  ml::saveModel(*average_, os);
  HCP_CHECK_MSG(os.good(), "predictor write failed");
  writer.commit();
}

CongestionPredictor CongestionPredictor::load(const std::string& path) {
  std::ifstream is(path);
  HCP_CHECK_MSG(is.good(), "cannot open " << path);
  std::string magic, kind;
  int version = 0;
  HCP_CHECK_MSG(static_cast<bool>(is >> magic >> version >> kind) &&
                    magic == "hcp-predictor" && version == 1,
                "not a predictor file: " << path);
  PredictorOptions options;
  if (kind == "Linear") options.kind = ModelKind::Linear;
  else if (kind == "ANN") options.kind = ModelKind::Ann;
  else if (kind == "GBRT") options.kind = ModelKind::Gbrt;
  else HCP_CHECK_MSG(false, "unknown predictor kind " << kind);
  CongestionPredictor predictor(options);
  try {
    predictor.vertical_ = ml::loadModel(is);
    predictor.horizontal_ = ml::loadModel(is);
    predictor.average_ = ml::loadModel(is);
  } catch (const Error& e) {
    // Name the file: the per-model readers only see a stream.
    throw Error(std::string(e.what()) + " [predictor file: " + path + "]");
  }
  std::string extra;
  HCP_CHECK_MSG(!(is >> extra),
                "trailing garbage after the three models (first token '"
                    << extra << "') in predictor file: " << path);
  predictor.trained_ = true;
  return predictor;
}

}  // namespace hcp::core
