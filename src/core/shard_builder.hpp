// Shard building: one design's complete flow -> labeled samples -> one
// content-addressed shard file (DESIGN.md §19).
//
// buildShard is the out-of-core counterpart of runFlows + buildDataset: it
// runs ONE design's flow, extracts its labeled samples, writes them to disk
// and drops everything before the next design starts — peak memory is one
// flow plus one design's samples, independent of corpus size. The shard key
// salts in the flow cache key and the dataset options, so a shard is
// re-created (under a new name) whenever any input that could change its
// samples changes, and an up-to-date shard is simply found by name.
#pragma once

#include <string>

#include "core/dataset_builder.hpp"
#include "ml/shards.hpp"

namespace hcp::core {

/// Runs the full flow for `app`, builds its labeled dataset and writes it
/// as one shard in `dir`. Returns the written shard's header info. The
/// flow result is released before returning. Throws hcp::IoError on write
/// failure. A design whose samples are all filtered away still produces a
/// (valid, empty) shard, so downstream tooling can tell "processed, no
/// samples" from "never processed".
ml::shards::ShardInfo buildShard(apps::AppDesign&& app,
                                 const fpga::Device& device,
                                 const FlowConfig& config,
                                 const DatasetOptions& options,
                                 const std::string& dir);

/// Materializes an entire shard set back into the in-memory LabeledDataset
/// shape (three aligned datasets; the per-sample back-trace detail is not
/// stored in shards, so `samples` is empty). This is the bridge for code
/// paths that still want the in-memory representation — training itself
/// should prefer the streaming fit over a ShardRowSource.
LabeledDataset datasetFromShards(const ml::shards::ShardSet& set);

}  // namespace hcp::core
