#include "core/flow.hpp"

#include "support/parallel.hpp"
#include "support/telemetry.hpp"

namespace hcp::core {

FlowResult runFlow(apps::AppDesign&& app, const fpga::Device& device,
                   const FlowConfig& config) {
  HCP_SPAN("flow");
  support::telemetry::count(support::telemetry::Counter::FlowsRun);
  FlowResult result;
  result.name = app.name;

  hls::SynthesisOptions synth = config.synthesis;
  result.design =
      hls::synthesize(std::move(app.module), app.directives, synth);

  result.rtl = rtl::generateRtl(result.design);
  const auto netlistIssues = result.rtl.netlist.validate();
  HCP_CHECK_MSG(netlistIssues.empty(),
                app.name << ": " << netlistIssues.front());

  fpga::ParConfig par = config.par;
  par.placer.seed = config.seed;
  par.timing.targetClockNs = synth.schedule.clockPeriodNs;
  par.timing.clockUncertaintyNs = synth.schedule.clockUncertaintyNs;
  result.impl = fpga::implement(result.rtl.netlist, device, par);

  result.traced =
      trace::backTrace(result.rtl, result.impl, device, *result.design.module);

  result.wnsNs = result.impl.timing.wnsNs;
  result.maxFrequencyMhz = result.impl.timing.maxFrequencyMhz;
  result.latencyCycles = result.design.top().report.latency;
  result.maxVCongestion = result.impl.routing.map.maxVUtil();
  result.maxHCongestion = result.impl.routing.map.maxHUtil();
  result.congestedTiles = result.impl.routing.map.tilesOver(100.0);
  return result;
}

std::vector<FlowResult> runFlows(std::span<apps::AppDesign> apps,
                                 const fpga::Device& device,
                                 const FlowConfig& config) {
  // Flows share only the immutable device model; every stochastic stage
  // derives its stream from config.seed inside its own flow, so concurrent
  // execution cannot perturb the per-design results.
  return support::parallelMapIndex(apps.size(), [&](std::size_t i) {
    return runFlow(std::move(apps[i]), device, config);
  });
}

}  // namespace hcp::core
