#include "core/flow.hpp"

#include <iostream>
#include <optional>
#include <sstream>

#include "core/flow_serialize.hpp"
#include "support/error.hpp"
#include "support/flowcache.hpp"
#include "support/parallel.hpp"
#include "support/telemetry.hpp"

namespace hcp::core {

namespace {

namespace fc = support::flowcache;

/// Cache probe: returns a fully parsed FlowResult on a usable hit. A payload
/// that passed the envelope checks but fails to parse counts as corrupt and
/// falls through to recompute (store() then self-heals the entry).
std::optional<FlowResult> tryCachedFlow(const fc::FlowCache& cache,
                                        const std::string& key) {
  HCP_SPAN("cache_lookup");
  std::optional<std::string> payload = cache.load(key);
  if (!payload) return std::nullopt;
  try {
    std::istringstream is(*payload);
    FlowResult result = readFlowResult(is);
    support::telemetry::count(support::telemetry::Counter::FlowCacheHit);
    return result;
  } catch (const Error& e) {
    support::telemetry::count(support::telemetry::Counter::FlowCacheCorrupt);
    std::cerr << "hcp: flow cache: discarding unparsable entry "
              << cache.entryPath(key) << ": " << e.what() << '\n';
    return std::nullopt;
  }
}

}  // namespace

FlowResult runFlow(apps::AppDesign&& app, const fpga::Device& device,
                   const FlowConfig& config) {
  return runFlowCached(std::move(app), device, config).result;
}

CachedFlow runFlowCached(apps::AppDesign&& app, const fpga::Device& device,
                         const FlowConfig& config) {
  HCP_SPAN("flow");
  support::telemetry::count(support::telemetry::Counter::FlowsRun);

  fc::FlowCache* cache = fc::global();
  CachedFlow out;
  if (cache) {
    out.cacheKey = flowCacheKey(app, device, config);
    if (std::optional<FlowResult> cached = tryCachedFlow(*cache, out.cacheKey)) {
      out.result = *std::move(cached);
      out.fromCache = true;
      return out;
    }
  }

  FlowResult& result = out.result;
  result.name = app.name;

  hls::SynthesisOptions synth = config.synthesis;
  result.design =
      hls::synthesize(std::move(app.module), app.directives, synth);

  result.rtl = rtl::generateRtl(result.design);
  const auto netlistIssues = result.rtl.netlist.validate();
  HCP_CHECK_MSG(netlistIssues.empty(),
                app.name << ": " << netlistIssues.front());

  fpga::ParConfig par = config.par;
  par.placer.seed = config.seed;
  par.timing.targetClockNs = synth.schedule.clockPeriodNs;
  par.timing.clockUncertaintyNs = synth.schedule.clockUncertaintyNs;
  result.impl = fpga::implement(result.rtl.netlist, device, par);

  result.traced =
      trace::backTrace(result.rtl, result.impl, device, *result.design.module);

  result.wnsNs = result.impl.timing.wnsNs;
  result.maxFrequencyMhz = result.impl.timing.maxFrequencyMhz;
  result.latencyCycles = result.design.top().report.latency;
  result.maxVCongestion = result.impl.routing.map.maxVUtil();
  result.maxHCongestion = result.impl.routing.map.maxHUtil();
  result.congestedTiles = result.impl.routing.map.tilesOver(100.0);

  if (cache) {
    HCP_SPAN("cache_store");
    std::ostringstream os;
    writeFlowResult(os, result);
    cache->store(out.cacheKey, os.str());
  }
  return out;
}

std::vector<FlowResult> runFlows(std::span<apps::AppDesign> apps,
                                 const fpga::Device& device,
                                 const FlowConfig& config) {
  // Flows share only the immutable device model; every stochastic stage
  // derives its stream from config.seed inside its own flow, so concurrent
  // execution cannot perturb the per-design results.
  return support::parallelMapIndex(apps.size(), [&](std::size_t i) {
    return runFlow(std::move(apps[i]), device, config);
  });
}

}  // namespace hcp::core
