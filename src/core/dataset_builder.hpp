// Dataset assembly (paper Fig 2, "build dataset"): joins back-traced labels
// with extracted features across one or more implemented designs, with the
// optional marginal-sample filter of §III-C1.
#pragma once

#include <span>

#include "core/flow.hpp"
#include "features/extractor.hpp"
#include "ml/dataset.hpp"

namespace hcp::core {

/// One feature matrix with three aligned label vectors (vertical,
/// horizontal, and their average — the paper's three regression targets).
struct LabeledDataset {
  ml::Dataset vertical;
  ml::Dataset horizontal;
  ml::Dataset average;
  std::vector<trace::Sample> samples;  ///< aligned with the rows
  trace::FilterStats filterStats;
};

struct DatasetOptions {
  bool applyMarginalFilter = true;
  trace::FilterConfig filter;
  features::DeviceCaps caps;
};

/// Builds the dataset of one flow result.
LabeledDataset buildDataset(const FlowResult& flow,
                            const DatasetOptions& options = {});

/// Builds and merges datasets over several flow results (the paper trains on
/// all benchmark combinations together).
LabeledDataset buildDataset(std::span<const FlowResult> flows,
                            const DatasetOptions& options = {});

/// Dataset enrichment (paper §III: "if there are not many available
/// applications ... the target design should go through the complete
/// C-to-FPGA flow for one time to generate congestion metrics which will be
/// used to enrich the dataset and improve the estimation accuracy").
/// Appends `extra`'s rows to `base` in place.
void enrichDataset(LabeledDataset& base, const LabeledDataset& extra);

}  // namespace hcp::core
