// Flow-result serialization and cache-key derivation (the core-side half of
// the flow cache; the content-agnostic store lives in support/flowcache).
//
// writeFlowResult/readFlowResult compose the per-layer serializers
// (ir/hls/rtl/fpga/trace serialize.hpp) into one self-delimiting text
// document. Save -> load -> save is byte-identical, and a loaded result
// feeds feature extraction, dataset building and report printing
// bit-identically to the original.
//
// flowCacheKey digests *every* input runFlow's output depends on: the cache
// schema version, the design name, the complete IR module text, the
// canonical directive dump, all synthesis options, the PAR configuration,
// the master seed and the device fingerprint. Two calls share a key iff
// runFlow would produce byte-identical results for them.
#pragma once

#include <istream>
#include <ostream>
#include <string>

#include "core/flow.hpp"

namespace hcp::core {

void writeFlowResult(std::ostream& os, const FlowResult& result);

/// Reads what writeFlowResult wrote and requires the stream to end there
/// (trailing garbage is malformed input). Throws hcp::Error otherwise.
FlowResult readFlowResult(std::istream& is);

/// 16-char hex digest of all flow inputs (see file comment). Stable across
/// runs, platforms and thread counts.
std::string flowCacheKey(const apps::AppDesign& app,
                         const fpga::Device& device,
                         const FlowConfig& config);

}  // namespace hcp::core
