#include "core/shard_builder.hpp"

#include <utility>

#include "core/flow_serialize.hpp"
#include "features/feature_registry.hpp"
#include "support/error.hpp"
#include "support/flowcache.hpp"
#include "support/telemetry.hpp"

namespace hcp::core {

namespace {

/// Digest of every DatasetOptions field the samples depend on. Folded into
/// the shard salt so a filter-config change re-keys the shard.
std::string optionsDigest(const DatasetOptions& options) {
  return support::flowcache::Fnv1a()
      .u64(options.applyMarginalFilter ? 1 : 0)
      .u64(options.filter.minGroupSize)
      .f64(options.filter.labelFraction)
      .f64(options.filter.minRadius)
      .f64(options.caps.lut)
      .f64(options.caps.ff)
      .f64(options.caps.dsp)
      .f64(options.caps.bram)
      .hex();
}

}  // namespace

ml::shards::ShardInfo buildShard(apps::AppDesign&& app,
                                 const fpga::Device& device,
                                 const FlowConfig& config,
                                 const DatasetOptions& options,
                                 const std::string& dir) {
  HCP_SPAN("build_shard");
  // Everything the samples depend on, captured before the app moves into
  // the flow: the flow cache key already digests the design, device,
  // synthesis options, PAR config and seed.
  const std::string designName = app.name;
  const std::string salt =
      flowCacheKey(app, device, config) + optionsDigest(options);

  ml::shards::ShardMeta meta;
  meta.design = designName;
  meta.device = device.name();
  meta.seed = config.seed;

  std::vector<ml::shards::ShardSample> samples;
  std::size_t numFeatures = features::kNumFeatures;
  {
    // Scope the flow result so it is released before the shard write —
    // buildShard's peak memory is one design's flow, never the corpus.
    const FlowResult flow = runFlow(std::move(app), device, config);
    const LabeledDataset data = buildDataset(flow, options);
    if (data.vertical.size() > 0) numFeatures = data.vertical.numFeatures();
    samples.reserve(data.vertical.size());
    for (std::size_t i = 0; i < data.vertical.size(); ++i) {
      ml::shards::ShardSample s;
      const auto& row = data.vertical.row(i);
      s.features.assign(row.begin(), row.end());
      s.vertical = data.vertical.target(i);
      s.horizontal = data.horizontal.target(i);
      s.average = data.average.target(i);
      samples.push_back(std::move(s));
    }
  }

  const std::string key = ml::shards::shardKey(designName, meta.device,
                                               config.seed, numFeatures, salt);
  ml::shards::ShardInfo info;
  info.key = key;
  info.numFeatures = numFeatures;
  info.numSamples = samples.size();
  info.path = ml::shards::writeShard(dir, key, meta, samples);
  return info;
}

LabeledDataset datasetFromShards(const ml::shards::ShardSet& set) {
  HCP_SPAN("dataset_from_shards");
  LabeledDataset out;
  for (std::size_t i = 0; i < set.numShards(); ++i) {
    const ml::shards::ShardData shard = set.load(i);
    for (const ml::shards::ShardSample& s : shard.samples) {
      out.vertical.add(s.features, s.vertical);
      out.horizontal.add(s.features, s.horizontal);
      out.average.add(s.features, s.average);
    }
  }
  return out;
}

}  // namespace hcp::core
