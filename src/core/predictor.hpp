// CongestionPredictor: the paper's primary contribution as a public API.
//
// Train once on datasets built from implemented designs; then, for any new
// design, predict per-operation vertical/horizontal congestion straight from
// HLS information and rank the congested source-code regions — without
// running the RTL implementation flow (paper Fig 2, prediction phase).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/dataset_builder.hpp"
#include "ml/gbrt.hpp"
#include "ml/linear.hpp"
#include "ml/mlp.hpp"
#include "ml/shards.hpp"

namespace hcp::core {

enum class ModelKind { Linear, Ann, Gbrt };

std::string_view modelKindName(ModelKind kind);

struct PredictorOptions {
  ModelKind kind = ModelKind::Gbrt;
  ml::GbrtConfig gbrt;
  ml::MlpConfig mlp;
  ml::LassoConfig lasso;
};

/// Per-op congestion prediction.
struct OpPrediction {
  double vertical = 0.0;
  double horizontal = 0.0;
  double average = 0.0;
};

/// A source-code region ranked by predicted congestion.
struct Hotspot {
  std::uint32_t functionIndex = 0;
  std::string functionName;
  std::int32_t sourceLine = 0;
  std::size_t numOps = 0;
  double meanPredicted = 0.0;  ///< mean predicted avg congestion of its ops
  double maxPredicted = 0.0;
};

class CongestionPredictor {
 public:
  explicit CongestionPredictor(PredictorOptions options = {});

  /// Trains the three regressors (V, H, avg) on the dataset.
  void train(const LabeledDataset& data);

  /// Trains the three regressors out-of-core from a shard set. With
  /// `streaming` (the default) each model fits via its streaming path over
  /// a ShardRowSource — byte-identical model to train() on the
  /// materialized dataset, with one shard resident at a time. With
  /// `streaming = false` the set is materialized first (a debugging /
  /// cross-check path). Fails loudly on an empty set.
  void trainFromShards(const ml::shards::ShardSet& set, bool streaming = true);

  bool trained() const { return trained_; }

  /// Predicts one op of a synthesized (but not implemented!) design.
  OpPrediction predictOp(const features::FeatureExtractor& extractor,
                         std::uint32_t functionIndex, ir::OpId op) const;

  /// Ranks source regions of a synthesized design by predicted congestion.
  /// Covers the top function and every callee. Regions are (function,
  /// source-line) groups of functional-unit ops.
  std::vector<Hotspot> findHotspots(const hls::SynthesizedDesign& design,
                                    const features::DeviceCaps& caps,
                                    std::size_t topK = 10) const;

  /// The GBRT vertical-congestion model's feature importance (empty for
  /// other model kinds). Used by the Table V bench.
  std::vector<double> featureImportance() const;

  /// Persists the three trained models (train once, reuse across projects
  /// without another place-and-route run).
  void save(const std::string& path) const;
  /// Restores a predictor saved with save(); predictions are bit-identical.
  static CongestionPredictor load(const std::string& path);

  const ml::Regressor& verticalModel() const { return *vertical_; }
  const ml::Regressor& horizontalModel() const { return *horizontal_; }
  const ml::Regressor& averageModel() const { return *average_; }

 private:
  std::unique_ptr<ml::Regressor> makeModel() const;

  PredictorOptions options_;
  std::unique_ptr<ml::Regressor> vertical_, horizontal_, average_;
  bool trained_ = false;
};

}  // namespace hcp::core
