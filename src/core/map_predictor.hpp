// Congestion-map training and prediction glue: converts finished flows into
// ml::MapSample batches (grid features from the placed netlist, targets from
// the routed congestion map) and runs the placement-only partial flow the
// predict path needs — synthesize -> RTL -> pack -> place, seeded exactly
// like core::runFlow, but with routing and STA skipped. That skip is the
// paper's point: the map model answers "where will congestion land" without
// paying for the router.
#pragma once

#include <span>
#include <vector>

#include "apps/app_design.hpp"
#include "core/flow.hpp"
#include "features/grid_features.hpp"
#include "ml/mapnet.hpp"

namespace hcp::core {

/// Grid-feature config matching the placer the flow actually ran (the
/// region_dist channel must use the same region grid the spreader used).
features::GridFeatureConfig gridConfigFor(const fpga::PlacerConfig& placer);

/// Packs one placed implementation's grid features into the model's input
/// layout (channel order = features::GridFeatures::channels()).
ml::GridSample gridSampleFor(const fpga::Packing& packing,
                             const fpga::Placement& placement,
                             const fpga::Device& device,
                             const features::GridFeatureConfig& grid);

/// One training sample per flow: features from impl.packing/placement,
/// per-tile V/H utilization targets from the routed map.
std::vector<ml::MapSample> buildMapSamples(
    std::span<const FlowResult> flows, const fpga::Device& device,
    const features::GridFeatureConfig& grid);

/// The predict-time partial flow. Replicates runFlow's seed derivation
/// (placer seed = config.seed) so the features match what training saw for
/// the same design + config, then stops after placement. Consumes the app.
ml::GridSample placeAndExtract(apps::AppDesign&& app,
                               const fpga::Device& device,
                               const FlowConfig& config = {});

}  // namespace hcp::core
