#include "core/resolver.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

namespace hcp::core {

std::string_view resolutionKindName(ResolutionKind kind) {
  switch (kind) {
    case ResolutionKind::RemoveInline: return "remove-inline";
    case ResolutionKind::ReplicateInputs: return "replicate-inputs";
    case ResolutionKind::PartitionArray: return "partition-array";
  }
  return "?";
}

namespace {

/// Extracts the inlined-callee tag from an op name ("cascade_classifier_i42.
/// mul3" -> "cascade_classifier"). Empty if the op was not inlined.
std::string inlineOrigin(const std::string& name) {
  const auto pos = name.find("_i");
  if (pos == std::string::npos || pos == 0) return "";
  // Require digits after "_i" followed by '.' or end.
  std::size_t p = pos + 2;
  if (p >= name.size() || !std::isdigit(static_cast<unsigned char>(name[p])))
    return "";
  while (p < name.size() && std::isdigit(static_cast<unsigned char>(name[p])))
    ++p;
  if (p != name.size() && name[p] != '.') return "";
  return name.substr(0, pos);
}

}  // namespace

std::vector<ResolutionHint> adviseResolution(
    const hls::SynthesizedDesign& design,
    const std::vector<Hotspot>& hotspots, const ResolverConfig& config) {
  std::vector<ResolutionHint> hints;
  std::set<std::pair<ResolutionKind, std::string>> seen;

  auto emit = [&](ResolutionHint hint) {
    if (seen.insert({hint.kind, hint.target}).second)
      hints.push_back(std::move(hint));
  };

  for (const Hotspot& spot : hotspots) {
    const ir::Function& fn = design.module->function(spot.functionIndex);
    const auto& syn = design.functions[spot.functionIndex];

    for (ir::OpId op = 0; op < fn.numOps(); ++op) {
      const ir::Op& o = fn.op(op);
      if (o.sourceLine != spot.sourceLine) continue;

      // 1) Hotspot dominated by inlined ops -> stop inlining that callee.
      const std::string origin = inlineOrigin(o.name);
      if (!origin.empty() &&
          design.module->findFunction(origin) != ir::kInvalidIndex) {
        ResolutionHint h;
        h.kind = ResolutionKind::RemoveInline;
        h.target = origin;
        h.functionName = spot.functionName;
        h.sourceLine = spot.sourceLine;
        h.severity = spot.meanPredicted;
        std::ostringstream os;
        os << "ops inlined from '" << origin << "' crowd " << spot.functionName
           << ":" << spot.sourceLine
           << "; removing the inline directive keeps them in a separate "
              "module with registered interfaces";
        h.message = os.str();
        emit(std::move(h));
      }

      // 2) Widely shared load results -> replicate the input data.
      if (o.opcode == ir::Opcode::Load) {
        const auto node = syn.graph.nodeOf(op);
        const double fanOut = syn.graph.fanOut(node);
        if (fanOut >= config.sharedFanoutThreshold) {
          ResolutionHint h;
          h.kind = ResolutionKind::ReplicateInputs;
          h.target = fn.array(o.array).name;
          h.functionName = spot.functionName;
          h.sourceLine = spot.sourceLine;
          h.severity = spot.meanPredicted;
          std::ostringstream os;
          os << "load from '" << fn.array(o.array).name << "' fans out "
             << fanOut << " wires to shared consumers; replicate the values "
             << "and send copies to different consumers";
          h.message = os.str();
          emit(std::move(h));
        }
      }
    }

    // 3) Memory-port pressure on under-partitioned arrays.
    std::map<ir::ArrayId, std::size_t> accesses;
    for (ir::OpId op = 0; op < fn.numOps(); ++op) {
      const ir::Op& o = fn.op(op);
      if (o.opcode == ir::Opcode::Load || o.opcode == ir::Opcode::Store)
        ++accesses[o.array];
    }
    for (const auto& [arr, count] : accesses) {
      const ir::ArrayInfo& info = fn.array(arr);
      const double perPort =
          static_cast<double>(count) / (2.0 * std::max(1u, info.banks));
      if (perPort >= config.portPressureThreshold) {
        ResolutionHint h;
        h.kind = ResolutionKind::PartitionArray;
        h.target = info.name;
        h.functionName = spot.functionName;
        h.sourceLine = info.sourceLine;
        h.severity = spot.meanPredicted;
        std::ostringstream os;
        os << "array '" << info.name << "' serves " << count
           << " accesses over " << info.banks
           << " bank(s); partitioning it raises memory bandwidth";
        h.message = os.str();
        emit(std::move(h));
      }
    }
  }

  std::sort(hints.begin(), hints.end(),
            [](const ResolutionHint& a, const ResolutionHint& b) {
              return a.severity > b.severity;
            });
  return hints;
}

}  // namespace hcp::core
