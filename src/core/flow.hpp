// The complete C-to-FPGA flow (paper Fig 2, training-phase left column):
// IR module + directives -> HLS synthesis -> RTL netlist -> pack/place/route
// -> congestion map -> back-traced per-op samples. One call, deterministic
// under its seed.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "apps/app_design.hpp"
#include "fpga/par.hpp"
#include "hls/design.hpp"
#include "rtl/generator.hpp"
#include "trace/backtrace.hpp"

namespace hcp::core {

struct FlowConfig {
  hls::SynthesisOptions synthesis;
  fpga::ParConfig par;
  /// Master seed; placer/router derive their streams from it.
  std::uint64_t seed = 42;
};

struct FlowResult {
  std::string name;
  hls::SynthesizedDesign design;
  rtl::GeneratedRtl rtl;
  fpga::Implementation impl;
  trace::BackTraceResult traced;

  // Headline numbers (Table I / III / VI rows).
  double wnsNs = 0.0;
  double maxFrequencyMhz = 0.0;
  std::uint64_t latencyCycles = 0;
  double maxVCongestion = 0.0;
  double maxHCongestion = 0.0;
  std::size_t congestedTiles = 0;  ///< tiles over 100%
};

/// Runs the full flow for one application design on `device`.
/// Consumes the AppDesign (its module moves into the result).
FlowResult runFlow(apps::AppDesign&& app, const fpga::Device& device,
                   const FlowConfig& config = {});

/// runFlow plus cache observability — what the hcp_serve daemon needs to
/// count serve_cache_hits and answer flow-by-key requests without probing
/// the cache a second time.
struct CachedFlow {
  FlowResult result;
  std::string cacheKey;   ///< "" when the global flow cache is off
  bool fromCache = false; ///< true when result was replayed from the cache
};

/// Identical to runFlow (same counters, same bytes in `result`), with the
/// cache outcome reported alongside.
CachedFlow runFlowCached(apps::AppDesign&& app, const fpga::Device& device,
                         const FlowConfig& config = {});

/// Runs independent designs' synthesize -> RTL -> PAR -> trace pipelines
/// concurrently (one thread-pool task per design) and returns the results in
/// input order. Each flow is internally seeded exactly as a serial
/// runFlow(config) call, so the results are bit-identical to running the
/// designs one by one. Consumes the AppDesigns.
std::vector<FlowResult> runFlows(std::span<apps::AppDesign> apps,
                                 const fpga::Device& device,
                                 const FlowConfig& config = {});

}  // namespace hcp::core
