// Congestion-resolution advisor (paper §III-D, §IV-C): given predicted
// hotspots, inspects the IR around them and proposes source-level fixes —
// the two the case study applies (remove function inlining; replicate
// shared input data) plus array partitioning for memory-port serialization.
#pragma once

#include <string>
#include <vector>

#include "core/predictor.hpp"

namespace hcp::core {

enum class ResolutionKind {
  RemoveInline,     ///< stop inlining a function whose body dominates a hotspot
  ReplicateInputs,  ///< copy a widely-shared array/value per consumer group
  PartitionArray,   ///< split an array whose ports serialize accesses
};

std::string_view resolutionKindName(ResolutionKind kind);

struct ResolutionHint {
  ResolutionKind kind = ResolutionKind::RemoveInline;
  std::string target;        ///< function or array name
  std::string functionName;  ///< where the hotspot lives
  std::int32_t sourceLine = 0;
  double severity = 0.0;     ///< predicted congestion driving the hint
  std::string message;
};

struct ResolverConfig {
  /// Load results fanning out to at least this many wires trigger a
  /// ReplicateInputs hint.
  double sharedFanoutThreshold = 128.0;
  /// Arrays with at least this many accesses per bank port trigger a
  /// PartitionArray hint.
  double portPressureThreshold = 8.0;
};

/// Analyzes the design around the hotspots and emits ranked hints.
std::vector<ResolutionHint> adviseResolution(
    const hls::SynthesizedDesign& design, const std::vector<Hotspot>& hotspots,
    const ResolverConfig& config = {});

}  // namespace hcp::core
