#include "rtl/generator.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "support/telemetry.hpp"

namespace hcp::rtl {

using hls::FuInstance;
using hls::SynthesizedDesign;
using hls::SynthesizedFunction;
using ir::Function;
using ir::kInvalidOp;
using ir::Op;
using ir::Opcode;
using ir::OpId;

namespace {

/// True if a memory op's address operand is a compile-time constant.
bool constIndex(const Function& fn, const Op& op) {
  return !op.operands.empty() &&
         fn.op(op.operands[0].producer).opcode == Opcode::Const;
}

/// Bank a constant-index access resolves to (cyclic partitioning).
std::uint32_t bankOfConstIndex(const Function& fn, const Op& op,
                               std::uint32_t banks) {
  const std::int64_t v = fn.op(op.operands[0].producer).constValue;
  const std::uint64_t u = static_cast<std::uint64_t>(v < 0 ? -v : v);
  return static_cast<std::uint32_t>(u % banks);
}

class Generator {
 public:
  explicit Generator(const SynthesizedDesign& design)
      : design_(design), out_{Netlist(design.module->name()), {}} {}

  GeneratedRtl run() {
    const Function& top = design_.module->top();
    std::vector<CellId> noArgs;
    // Top-level input pads become the "argument drivers" of the top instance.
    const InstanceId topInst = out_.netlist.addInstance(
        Instance{"top", design_.module->topIndex(),
                 std::numeric_limits<InstanceId>::max()});
    std::vector<CellId> padOfPort(top.numPorts(), kInvalidCell);
    for (ir::PortId p = 0; p < top.numPorts(); ++p) {
      Cell pad;
      pad.type = CellType::Pad;
      pad.name = "pad_" + top.portInfo(p).name;
      pad.width = top.portInfo(p).bitwidth;
      pad.instance = topInst;
      padOfPort[p] = out_.netlist.addCell(std::move(pad));
    }
    emitInstance(design_.module->topIndex(), topInst, {}, padOfPort);
    return std::move(out_);
  }

 private:
  /// A (possibly shared) callee module instance at a caller's call unit.
  struct CallInstance {
    InstanceId child = 0;
    CellId returnCell = kInvalidCell;
    CellId provenanceCell = kInvalidCell;  ///< cell back-traced to call ops
    std::vector<CellId> portEntry;  ///< per argument: mux (shared) or reg
  };

  struct InstanceCtx {
    InstanceId id = 0;
    const Function* fn = nullptr;
    const SynthesizedFunction* syn = nullptr;
    std::vector<CellId> producerCell;   ///< resolved value cell per op
    std::vector<CellId> registerCell;   ///< cross-step register per op
    std::vector<CellId> fuCellOfOp;     ///< the FU cell an op executes on
    std::vector<CellId> muxCellOfOp;    ///< shared-FU input mux, if any
    std::vector<std::vector<CellId>> bankCells;  ///< per array
    std::vector<CellId> accessMux;      ///< per load op on multi-bank arrays
    std::vector<CellId> padOfPort;      ///< top only
    std::map<std::uint32_t, CallInstance> callFus;  ///< per call unit
    /// Alias resolution: the cell-owning op each op's value really comes
    /// from (casts/passthroughs chain to their source). Registers and nets
    /// are keyed by the root so paths break correctly across control steps.
    std::vector<ir::OpId> rootOp;
  };

  /// Creates the callee instance of one call unit: interface registers per
  /// in-port (behind a sites:1 mux when the unit is shared), the recursive
  /// instance body, and the handshake with the caller's FSM.
  CallInstance emitCalleeInstance(InstanceCtx& ctx, InstanceId callerInst,
                                  ir::OpId firstSite, std::uint32_t fuIdx,
                                  CellId callerFsm) {
    const hls::FuInstance& fu = ctx.syn->binding.fus[fuIdx];
    const Function& fn = *ctx.fn;
    const ir::Op& op = fn.op(firstSite);
    const auto calleeIdx = design_.module->findFunction(fu.callee);
    HCP_CHECK(calleeIdx != ir::kInvalidIndex);
    const Function& callee = design_.module->function(calleeIdx);

    CallInstance ci;
    ci.child = out_.netlist.addInstance(
        Instance{out_.netlist.instance(callerInst).name + "/" + fu.callee +
                     "_u" + std::to_string(fuIdx),
                 calleeIdx, callerInst});
    const std::string prefix = out_.netlist.instance(ci.child).name + "/";
    const bool shared = fu.ops.size() > 1;

    std::vector<CellId> calleeArgs(callee.numPorts(), kInvalidCell);
    for (ir::PortId p = 0; p < callee.numPorts(); ++p) {
      if (callee.portInfo(p).direction != ir::PortDirection::In) continue;
      const std::uint16_t width = callee.portInfo(p).bitwidth;
      // Interface register (ap_hs-style): localizes the callee's nets.
      Cell reg;
      reg.type = CellType::Register;
      reg.name = prefix + "ifreg_" + callee.portInfo(p).name;
      reg.width = width;
      reg.res = design_.library.registerSpec(width);
      reg.delayNs = 0.4;
      reg.sequential = true;
      reg.instance = ci.child;
      reg.ops = {firstSite};
      reg.sourceLine = op.sourceLine;
      const CellId regCell = out_.netlist.addCell(std::move(reg));
      CellId entry = regCell;
      if (shared) {
        const hls::OperatorSpec spec = design_.library.muxSpec(
            static_cast<std::uint32_t>(fu.ops.size()), width);
        Cell mux;
        mux.type = CellType::Mux;
        mux.name = prefix + "ifmux_" + callee.portInfo(p).name;
        mux.width = width;
        mux.res = spec.res;
        mux.delayNs = spec.delayNs;
        mux.instance = ci.child;
        mux.ops = fu.ops;
        mux.sourceLine = op.sourceLine;
        const CellId muxCell = out_.netlist.addCell(std::move(mux));
        Net feed;
        feed.name = prefix + "ifmux_" + callee.portInfo(p).name + "_q";
        feed.width = width;
        feed.driver = muxCell;
        feed.sinks = {regCell};
        out_.netlist.addNet(std::move(feed));
        entry = muxCell;
      }
      calleeArgs[p] = regCell;
      ci.portEntry.push_back(entry);
      if (ci.provenanceCell == kInvalidCell) ci.provenanceCell = regCell;
    }
    const CellId rawReturn =
        emitInstance(calleeIdx, ci.child, calleeArgs, {}, callerFsm);
    ci.returnCell = rawReturn;
    if (rawReturn != kInvalidCell) {
      // Registered output interface: the return value is launched from a
      // register, so caller paths never chain into the callee's datapath.
      std::uint16_t width = 16;
      for (ir::PortId p = 0; p < callee.numPorts(); ++p)
        if (callee.portInfo(p).direction == ir::PortDirection::Out)
          width = callee.portInfo(p).bitwidth;
      Cell oreg;
      oreg.type = CellType::Register;
      oreg.name = prefix + "ifreg_out";
      oreg.width = width;
      oreg.res = design_.library.registerSpec(width);
      oreg.delayNs = 0.4;
      oreg.sequential = true;
      oreg.instance = ci.child;
      oreg.ops = {firstSite};
      oreg.sourceLine = op.sourceLine;
      const CellId oregCell = out_.netlist.addCell(std::move(oreg));
      Net net;
      net.name = prefix + "ifnet_out";
      net.width = width;
      net.driver = rawReturn;
      net.sinks = {oregCell};
      out_.netlist.addNet(std::move(net));
      ci.returnCell = oregCell;
    }
    if (ci.provenanceCell == kInvalidCell) ci.provenanceCell = ci.returnCell;
    return ci;
  }

  /// Emits one function instance; returns the cell driving its return value
  /// (kInvalidCell if the function writes no out-port).
  CellId emitInstance(std::uint32_t fnIdx, InstanceId instId,
                      const std::vector<CellId>& argCells,
                      const std::vector<CellId>& padOfPort,
                      CellId parentFsm = kInvalidCell) {
    const Function& fn = design_.module->function(fnIdx);
    const SynthesizedFunction& syn = design_.functions[fnIdx];
    InstanceCtx ctx;
    ctx.id = instId;
    ctx.fn = &fn;
    ctx.syn = &syn;
    ctx.producerCell.assign(fn.numOps(), kInvalidCell);
    ctx.registerCell.assign(fn.numOps(), kInvalidCell);
    ctx.fuCellOfOp.assign(fn.numOps(), kInvalidCell);
    ctx.muxCellOfOp.assign(fn.numOps(), kInvalidCell);
    ctx.accessMux.assign(fn.numOps(), kInvalidCell);
    ctx.rootOp.assign(fn.numOps(), kInvalidOp);
    ctx.padOfPort = padOfPort;
    const std::string prefix = out_.netlist.instance(instId).name + "/";

    // FSM controller of this instance. Every datapath cell needs enables and
    // mux selects from it, so a flat (fully inlined) design concentrates one
    // huge control fan-out — a classic routing-congestion source that the
    // case study's "Not Inline" step dissolves into small per-module FSMs.
    const std::size_t firstOwnCell = out_.netlist.numCells();
    CellId fsmCell;
    {
      Cell fsm;
      fsm.type = CellType::Fu;
      fsm.name = prefix + "fsm";
      fsm.width = 8;
      fsm.res.lut = std::min(200.0, 4.0 + 0.5 * syn.schedule.numSteps);
      fsm.res.ff = 6.0 + std::ceil(std::log2(
                             static_cast<double>(syn.schedule.numSteps) + 2));
      fsm.delayNs = 0.9;
      fsm.sequential = true;
      fsm.instance = instId;
      fsmCell = out_.netlist.addCell(std::move(fsm));
    }
    if (parentFsm != kInvalidCell) {
      // ap_start / ap_done handshake with the caller's controller.
      Net start;
      start.name = prefix + "ap_start";
      start.width = 2;
      start.driver = parentFsm;
      start.sinks = {fsmCell};
      out_.netlist.addNet(std::move(start));
      Net done;
      done.name = prefix + "ap_done";
      done.width = 2;
      done.driver = fsmCell;
      done.sinks = {parentFsm};
      out_.netlist.addNet(std::move(done));
    }

    // --- functional units + binding muxes ---------------------------------
    for (std::size_t f = 0; f < syn.binding.fus.size(); ++f) {
      const FuInstance& fu = syn.binding.fus[f];
      // Call units materialize as recursive callee instances, not cells.
      if (fu.opcode == Opcode::Call) continue;
      const hls::OperatorSpec spec =
          design_.library.query(fu.opcode, fu.width);
      Cell cell;
      cell.type = CellType::Fu;
      cell.name = prefix + std::string(ir::opcodeName(fu.opcode)) + "_fu" +
                  std::to_string(f);
      cell.width = fu.width;
      cell.res = fu.unitRes;
      cell.delayNs = spec.delayNs;
      cell.sequential = spec.latency > 0;
      cell.instance = instId;
      cell.ops = fu.ops;
      cell.sourceLine = fn.op(fu.ops.front()).sourceLine;
      const CellId fuCell = out_.netlist.addCell(std::move(cell));
      CellId muxCell = kInvalidCell;
      if (fu.ops.size() > 1) {
        Cell mux;
        mux.type = CellType::Mux;
        mux.name = prefix + "bindmux_fu" + std::to_string(f);
        mux.width = fu.width;
        mux.res = fu.muxRes;
        mux.delayNs =
            design_.library.muxSpec(fu.muxInputs, fu.width).delayNs;
        mux.instance = instId;
        mux.ops = fu.ops;
        mux.sourceLine = fn.op(fu.ops.front()).sourceLine;
        muxCell = out_.netlist.addCell(std::move(mux));
        // Mux feeds the unit.
        Net feed;
        feed.name = prefix + "bindmux" + std::to_string(f) + "_to_fu";
        feed.width = fu.width;
        feed.driver = muxCell;
        feed.sinks = {fuCell};
        out_.netlist.addNet(std::move(feed));
      }
      for (OpId op : fu.ops) {
        ctx.fuCellOfOp[op] = fuCell;
        ctx.muxCellOfOp[op] = muxCell;
        out_.provenance.opCells.emplace_back(Provenance::key(instId, op),
                                             fuCell);
      }
    }

    // --- memory banks ------------------------------------------------------
    ctx.bankCells.resize(fn.numArrays());
    for (ir::ArrayId a = 0; a < fn.numArrays(); ++a) {
      const ir::ArrayInfo& info = fn.array(a);
      const hls::Resource memRes =
          design_.library.memorySpec(info.words, info.bitwidth, info.banks);
      const auto banks = std::max<std::uint32_t>(1, info.banks);
      for (std::uint32_t b = 0; b < banks; ++b) {
        Cell bank;
        bank.type = CellType::MemoryBank;
        bank.name = prefix + info.name + "_bank" + std::to_string(b);
        bank.width = info.bitwidth;
        bank.res = memRes * (1.0 / banks);
        bank.delayNs = 2.1;      // registered BRAM/LUTRAM access
        bank.sequential = true;
        bank.instance = instId;
        bank.sourceLine = info.sourceLine;
        bank.array = a;
        bank.bankIndex = b;
        ctx.bankCells[a].push_back(out_.netlist.addCell(std::move(bank)));
      }
    }

    // --- per-op value cells, aliases, registers, call recursion -----------
    for (OpId id = 0; id < fn.numOps(); ++id) {
      const Op& op = fn.op(id);
      switch (op.opcode) {
        case Opcode::ReadPort:
          if (!ctx.padOfPort.empty()) {
            ctx.producerCell[id] = ctx.padOfPort[op.port];  // top level
          } else {
            HCP_CHECK(op.port < argCells.size());
            ctx.producerCell[id] = argCells[op.port];  // caller's arg driver
          }
          break;
        case Opcode::Call: {
          // Call sites bound to the same unit share one callee instance
          // (serialized by the scheduler); the instance is created at the
          // first site and later sites only wire their arguments into the
          // interface muxes.
          const std::uint32_t fuIdx = syn.binding.fuOfOp[id];
          HCP_CHECK(fuIdx != ir::kInvalidIndex);
          auto state = ctx.callFus.find(fuIdx);
          if (state == ctx.callFus.end()) {
            state = ctx.callFus
                        .emplace(fuIdx, emitCalleeInstance(ctx, instId, id,
                                                           fuIdx, fsmCell))
                        .first;
          }
          const CallInstance& ci = state->second;
          // Wire this site's arguments into the interface entries.
          for (std::size_t a = 0; a < op.operands.size(); ++a) {
            const CellId src = ctx.producerCell[op.operands[a].producer];
            const CellId entry = ci.portEntry[a];
            if (src == kInvalidCell || entry == kInvalidCell ||
                src == entry)
              continue;
            Net net;
            net.name = out_.netlist.instance(ci.child).name + "/arg" +
                       std::to_string(a) + "_site" + std::to_string(id);
            net.width = out_.netlist.cell(entry).width;
            net.driver = src;
            net.sinks = {entry};
            out_.netlist.addNet(std::move(net));
          }
          out_.provenance.opCells.emplace_back(Provenance::key(instId, id),
                                               ci.provenanceCell);
          ctx.producerCell[id] = ci.returnCell;
          break;
        }
        default: {
          if (ctx.fuCellOfOp[id] != kInvalidCell) {
            ctx.producerCell[id] = ctx.fuCellOfOp[id];
          } else if (!op.operands.empty()) {
            // Wiring alias (casts, passthrough, phi, concat-like zero-area).
            ctx.producerCell[id] =
                ctx.producerCell[op.operands[0].producer];
            ctx.rootOp[id] = ctx.rootOp[op.operands[0].producer];
          }
          break;
        }
      }
      if (ctx.rootOp[id] == kInvalidOp) ctx.rootOp[id] = id;

      // Bank-access mux for loads over multi-banked arrays — only when the
      // index is not a compile-time constant. A constant index resolves to
      // one bank at synthesis time and wires directly (this is why complete
      // partitioning turns BRAM into plain registers with no select logic).
      if (op.opcode == Opcode::Load && fn.array(op.array).banks > 1 &&
          !constIndex(fn, op)) {
        const ir::ArrayInfo& info = fn.array(op.array);
        Cell mux;
        mux.type = CellType::Mux;
        mux.name = prefix + info.name + "_amux_op" + std::to_string(id);
        mux.width = info.bitwidth;
        const hls::OperatorSpec amux = design_.library.muxSpec(
            std::max<std::uint32_t>(2, info.banks), info.bitwidth);
        mux.res = amux.res;
        mux.delayNs = amux.delayNs;
        mux.instance = instId;
        mux.ops = {id};
        mux.sourceLine = op.sourceLine;
        ctx.accessMux[id] = out_.netlist.addCell(std::move(mux));
        out_.provenance.opCells.emplace_back(Provenance::key(instId, id),
                                             ctx.accessMux[id]);
      }
    }

    // Cross-step registers (second pass: alias roots are now final). A value
    // consumed — possibly through cast aliases — in a later control step
    // than it is produced needs a holding register; multi-cycle units
    // register their outputs internally.
    for (OpId id = 0; id < fn.numOps(); ++id) {
      const Op& op = fn.op(id);
      if (op.bitwidth == 0 || ctx.producerCell[id] == kInvalidCell ||
          ctx.fuCellOfOp[id] == kInvalidCell ||
          syn.schedule.ops[id].latency > 0)
        continue;
      bool needsReg = false;
      for (OpId c = id + 1; c < fn.numOps() && !needsReg; ++c) {
        for (const ir::Operand& use : fn.op(c).operands) {
          if (ctx.rootOp[use.producer] == id &&
              syn.schedule.ops[c].startStep > syn.schedule.ops[id].endStep) {
            needsReg = true;
            break;
          }
        }
      }
      if (!needsReg) continue;
      Cell reg;
      reg.type = CellType::Register;
      reg.name = prefix + "reg_op" + std::to_string(id);
      reg.width = op.bitwidth;
      reg.res = design_.library.registerSpec(op.bitwidth);
      reg.delayNs = 0.4;  // clk-to-q
      reg.sequential = true;
      reg.instance = instId;
      reg.ops = {id};
      reg.sourceLine = op.sourceLine;
      ctx.registerCell[id] = out_.netlist.addCell(std::move(reg));
      out_.provenance.opCells.emplace_back(Provenance::key(instId, id),
                                           ctx.registerCell[id]);
    }

    emitNets(ctx, prefix);

    // Control distribution: the FSM drives enables/selects of every datapath
    // cell it owns, in bundles of 16 (shared decode per region of logic).
    {
      std::vector<CellId> controlled;
      for (CellId c = static_cast<CellId>(firstOwnCell);
           c < out_.netlist.numCells(); ++c) {
        const Cell& cell = out_.netlist.cell(c);
        if (cell.instance != instId || c == fsmCell) continue;
        if (cell.type == CellType::Pad) continue;
        controlled.push_back(c);
      }
      constexpr std::size_t kBundle = 32;
      for (std::size_t g = 0; g * kBundle < controlled.size(); ++g) {
        Net ctrl;
        ctrl.name = prefix + "ctrl" + std::to_string(g);
        ctrl.width = 2;
        ctrl.driver = fsmCell;
        const std::size_t lo = g * kBundle;
        const std::size_t hi = std::min(controlled.size(), lo + kBundle);
        ctrl.sinks.assign(controlled.begin() + static_cast<std::ptrdiff_t>(lo),
                          controlled.begin() + static_cast<std::ptrdiff_t>(hi));
        out_.netlist.addNet(std::move(ctrl));
      }
    }

    // Return-value cell: driver of the first out-port write.
    for (OpId id = 0; id < fn.numOps(); ++id) {
      const Op& op = fn.op(id);
      if (op.opcode == Opcode::WritePort) {
        const CellId v = ctx.producerCell[op.operands[0].producer];
        if (v != kInvalidCell) return v;
      }
    }
    return kInvalidCell;
  }

  /// Builds the value nets of one instance: for every cell-owning producer,
  /// one net to its same-step consumers (plus its register), and one net from
  /// the register to later-step consumers. Memory data nets are added per
  /// bank and per access mux.
  void emitNets(const InstanceCtx& ctx, const std::string& prefix) {
    const Function& fn = *ctx.fn;
    const auto& sched = ctx.syn->schedule;

    // Gather consumers per producer cell, split by register need.
    struct Sinks {
      std::set<CellId> direct;
      std::set<CellId> viaRegister;
    };
    std::map<CellId, Sinks> byProducer;
    std::map<CellId, std::uint16_t> widthOf;

    for (OpId c = 0; c < fn.numOps(); ++c) {
      const Op& cop = fn.op(c);
      // Target cell receiving this consumer's inputs.
      CellId target = kInvalidCell;
      if (ctx.muxCellOfOp[c] != kInvalidCell) {
        target = ctx.muxCellOfOp[c];
      } else if (ctx.fuCellOfOp[c] != kInvalidCell) {
        target = ctx.fuCellOfOp[c];
      } else if (cop.opcode == Opcode::WritePort && !ctx.padOfPort.empty()) {
        target = ctx.padOfPort[cop.port];
      } else if (cop.opcode == Opcode::Call) {
        // Handled through the callee's ReadPort aliases.
        continue;
      } else {
        continue;  // aliases and void structural ops
      }
      for (const ir::Operand& use : cop.operands) {
        const OpId p = ctx.rootOp[use.producer];
        const CellId src = ctx.producerCell[p];
        if (src == kInvalidCell || src == target) continue;
        const bool later = p < fn.numOps() &&
                           sched.ops[c].startStep > sched.ops[p].endStep &&
                           ctx.registerCell[p] != kInvalidCell;
        auto& sinks = byProducer[src];
        widthOf[src] = std::max(widthOf[src], use.bitsUsed);
        if (later) {
          sinks.viaRegister.insert(ctx.registerCell[p]);
          byProducer[ctx.registerCell[p]].direct.insert(target);
          widthOf[ctx.registerCell[p]] =
              std::max(widthOf[ctx.registerCell[p]], use.bitsUsed);
        } else {
          sinks.direct.insert(target);
        }
      }
    }

    // Memory data paths.
    for (OpId id = 0; id < fn.numOps(); ++id) {
      const Op& op = fn.op(id);
      if (op.opcode == Opcode::Load) {
        const auto& banks = ctx.bankCells[op.array];
        const CellId loadCell = ctx.fuCellOfOp[id];
        if (loadCell == kInvalidCell) continue;
        if (banks.size() == 1) {
          byProducer[banks[0]].direct.insert(loadCell);
          widthOf[banks[0]] =
              std::max(widthOf[banks[0]], fn.array(op.array).bitwidth);
        } else if (constIndex(fn, op)) {
          // Synthesis-time bank resolution: direct wire from one bank.
          const CellId bank = banks[bankOfConstIndex(
              fn, op, static_cast<std::uint32_t>(banks.size()))];
          byProducer[bank].direct.insert(loadCell);
          widthOf[bank] =
              std::max(widthOf[bank], fn.array(op.array).bitwidth);
        } else {
          const CellId mux = ctx.accessMux[id];
          for (CellId bank : banks) {
            byProducer[bank].direct.insert(mux);
            widthOf[bank] =
                std::max(widthOf[bank], fn.array(op.array).bitwidth);
          }
          byProducer[mux].direct.insert(loadCell);
          widthOf[mux] =
              std::max(widthOf[mux], fn.array(op.array).bitwidth);
        }
      } else if (op.opcode == Opcode::Store) {
        const CellId storeCell = ctx.fuCellOfOp[id];
        if (storeCell == kInvalidCell) continue;
        const auto& banks = ctx.bankCells[op.array];
        if (banks.size() > 1 && constIndex(fn, op)) {
          // Constant index: the write targets exactly one bank.
          byProducer[storeCell].direct.insert(banks[bankOfConstIndex(
              fn, op, static_cast<std::uint32_t>(banks.size()))]);
        } else {
          // Variable index: data + enables broadcast to every bank.
          for (CellId bank : banks) byProducer[storeCell].direct.insert(bank);
        }
        widthOf[storeCell] =
            std::max(widthOf[storeCell], fn.array(op.array).bitwidth);
      }
    }

    std::size_t netIdx = 0;
    for (auto& [src, sinks] : byProducer) {
      std::set<CellId> all = sinks.direct;
      for (CellId r : sinks.viaRegister) all.insert(r);
      all.erase(src);
      if (all.empty()) continue;
      Net net;
      net.name = prefix + "net" + std::to_string(netIdx++);
      net.width = std::max<std::uint16_t>(1, widthOf[src]);
      net.driver = src;
      net.sinks.assign(all.begin(), all.end());
      out_.netlist.addNet(std::move(net));
    }
  }

  const SynthesizedDesign& design_;
  GeneratedRtl out_;
};

}  // namespace

GeneratedRtl generateRtl(const SynthesizedDesign& design) {
  HCP_SPAN("rtl_generate");
  Generator gen(design);
  GeneratedRtl out = gen.run();
  namespace tm = hcp::support::telemetry;
  if (tm::enabled()) {
    for (const Net& net : out.netlist.nets())
      tm::observe(tm::Histogram::NetFanout,
                  static_cast<double>(net.sinks.size()));
  }
  return out;
}

}  // namespace hcp::rtl
