// Gate-level-ish netlist: the hand-off between HLS and the physical flow.
//
// Cells are placeable units (functional units, registers, muxes, memory
// banks, I/O pads) carrying their resource footprint and provenance back to
// the IR (function index, module instance, op ids, source line). Nets are
// driver -> sinks connections with a bit width; the router expands them into
// routing demand. The back-tracing flow of the paper (Fig 3: congestion per
// CLB -> cell -> net names -> HDL -> IR operation) walks exactly this
// provenance chain in reverse.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "hls/charlib.hpp"
#include "ir/function.hpp"
#include "support/error.hpp"

namespace hcp::rtl {

using CellId = std::uint32_t;
using NetId = std::uint32_t;
using InstanceId = std::uint32_t;
inline constexpr CellId kInvalidCell = std::numeric_limits<CellId>::max();
inline constexpr NetId kInvalidNet = std::numeric_limits<NetId>::max();

enum class CellType : std::uint8_t {
  Fu,         ///< a bound functional unit (possibly shared by several ops)
  Register,   ///< cross-control-step value register
  Mux,        ///< binding mux or memory bank-access mux
  MemoryBank, ///< one bank of an array (BRAM / LUTRAM / register bank)
  Pad,        ///< top-level I/O pad (pinned to the device edge)
};

/// A module instance in the flattened hierarchy (the top function plus one
/// instance per non-inlined call site, recursively).
struct Instance {
  std::string name;                 ///< hierarchical, e.g. "top/cls_i3"
  std::uint32_t functionIndex = 0;  ///< into the ir::Module
  InstanceId parent = std::numeric_limits<InstanceId>::max();
};

struct Cell {
  CellType type = CellType::Fu;
  std::string name;
  std::uint16_t width = 0;
  hls::Resource res;
  double delayNs = 0.0;     ///< combinational delay through the cell
  bool sequential = false;  ///< registers its output (timing path endpoint)

  // Provenance.
  InstanceId instance = 0;
  std::vector<ir::OpId> ops;    ///< IR ops realized by this cell
  std::int32_t sourceLine = 0;
  ir::ArrayId array = ir::kInvalidIndex;  ///< MemoryBank: source array
  std::uint32_t bankIndex = 0;            ///< MemoryBank: which bank
};

struct Net {
  std::string name;
  std::uint16_t width = 0;
  CellId driver = kInvalidCell;
  std::vector<CellId> sinks;
};

class Netlist {
 public:
  Netlist() = default;
  explicit Netlist(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  InstanceId addInstance(Instance inst) {
    instances_.push_back(std::move(inst));
    return static_cast<InstanceId>(instances_.size() - 1);
  }
  CellId addCell(Cell cell) {
    cells_.push_back(std::move(cell));
    return static_cast<CellId>(cells_.size() - 1);
  }
  NetId addNet(Net net) {
    HCP_CHECK(net.driver != kInvalidCell);
    nets_.push_back(std::move(net));
    return static_cast<NetId>(nets_.size() - 1);
  }

  const Instance& instance(InstanceId id) const {
    HCP_CHECK(id < instances_.size());
    return instances_[id];
  }
  const Cell& cell(CellId id) const {
    HCP_CHECK(id < cells_.size());
    return cells_[id];
  }
  Cell& cell(CellId id) {
    HCP_CHECK(id < cells_.size());
    return cells_[id];
  }
  const Net& net(NetId id) const {
    HCP_CHECK(id < nets_.size());
    return nets_[id];
  }

  std::size_t numInstances() const { return instances_.size(); }
  std::size_t numCells() const { return cells_.size(); }
  std::size_t numNets() const { return nets_.size(); }
  const std::vector<Cell>& cells() const { return cells_; }
  const std::vector<Net>& nets() const { return nets_; }

  /// Total resource footprint over all cells.
  hls::Resource totalResource() const;

  /// Sanity checks: net endpoints valid, no empty nets, instances resolve.
  std::vector<std::string> validate() const;

 private:
  std::string name_;
  std::vector<Instance> instances_;
  std::vector<Cell> cells_;
  std::vector<Net> nets_;
};

}  // namespace hcp::rtl
