// RTL generation: flattens a SynthesizedDesign into a single placeable
// netlist. The hierarchy (top + one instance per non-inlined call site,
// recursively) is preserved in cell provenance so congestion metrics can be
// back-traced to the IR operation and source line that produced each cell.
//
// Emitted cells:
//  - one Fu cell per bound functional unit (shared units carry all their ops)
//  - one Mux cell per shared unit (the binder's operand muxes)
//  - one MemoryBank cell per array bank, plus a bank-access Mux per load of a
//    multi-banked array (reading an arbitrary word needs a banks:1 mux — this
//    is the interconnect hotspot behind the paper's Face Detection case study)
//  - Register cells for values crossing control-step boundaries
//  - Pad cells for top-level ports
//
// Zero-area combinational ops (casts, passthroughs, concat/extract, phi) are
// wiring aliases: their consumers connect straight to the underlying
// producer cell, crossing instance boundaries where a call argument or
// return value is involved.
#pragma once

#include "hls/design.hpp"
#include "rtl/netlist.hpp"

namespace hcp::rtl {

/// Mapping from hardware back to IR, produced alongside the netlist.
/// For every (instance, op) that owns at least one cell, lists those cells.
struct Provenance {
  /// cellsOf[instance][op] -> cells realizing that op (empty if aliased).
  /// Flat map keyed by (instance << 32 | op) to keep it dense-friendly.
  std::vector<std::pair<std::uint64_t, CellId>> opCells;

  static std::uint64_t key(InstanceId inst, ir::OpId op) {
    return (static_cast<std::uint64_t>(inst) << 32) | op;
  }
};

struct GeneratedRtl {
  Netlist netlist;
  Provenance provenance;
};

/// Generates the flattened netlist of `design`'s top function.
GeneratedRtl generateRtl(const hls::SynthesizedDesign& design);

}  // namespace hcp::rtl
