#include "rtl/serialize.hpp"

#include "hls/serialize.hpp"
#include "support/textio.hpp"

namespace hcp::rtl {

namespace txt = support::txt;

void writeGeneratedRtl(std::ostream& os, const GeneratedRtl& rtl) {
  txt::preparePrecision(os);
  const Netlist& nl = rtl.netlist;
  os << "rtl\nnetlist ";
  txt::writeStr(os, nl.name());
  os << "\ninstances " << nl.numInstances() << '\n';
  for (InstanceId i = 0; i < nl.numInstances(); ++i) {
    const Instance& inst = nl.instance(i);
    txt::writeStr(os, inst.name);
    os << ' ' << inst.functionIndex << ' ' << inst.parent << '\n';
  }
  os << "cells " << nl.numCells() << '\n';
  for (const Cell& c : nl.cells()) {
    os << static_cast<unsigned>(c.type) << ' ';
    txt::writeStr(os, c.name);
    os << ' ' << c.width << ' ';
    hls::writeResource(os, c.res);
    os << ' ' << c.delayNs << ' ';
    txt::writeBool(os, c.sequential);
    os << ' ' << c.instance << ' ';
    txt::writeVec(os, c.ops);
    os << ' ' << c.sourceLine << ' ' << c.array << ' ' << c.bankIndex
       << '\n';
  }
  os << "nets " << nl.numNets() << '\n';
  for (const Net& n : nl.nets()) {
    txt::writeStr(os, n.name);
    os << ' ' << n.width << ' ' << n.driver << ' ';
    txt::writeVec(os, n.sinks);
    os << '\n';
  }
  os << "provenance " << rtl.provenance.opCells.size() << '\n';
  for (const auto& [key, cell] : rtl.provenance.opCells)
    os << key << ' ' << cell << '\n';
}

GeneratedRtl readGeneratedRtl(std::istream& is) {
  txt::expect(is, "rtl");
  txt::expect(is, "netlist");
  GeneratedRtl rtl;
  Netlist nl(txt::readStr(is, "netlist name"));
  txt::expect(is, "instances");
  const auto numInstances = txt::read<std::size_t>(is, "instance count");
  for (std::size_t i = 0; i < numInstances; ++i) {
    Instance inst;
    inst.name = txt::readStr(is, "instance name");
    inst.functionIndex = txt::read<std::uint32_t>(is, "instance function");
    inst.parent = txt::read<InstanceId>(is, "instance parent");
    nl.addInstance(std::move(inst));
  }
  txt::expect(is, "cells");
  const auto numCells = txt::read<std::size_t>(is, "cell count");
  for (std::size_t i = 0; i < numCells; ++i) {
    Cell c;
    const auto type = txt::read<unsigned>(is, "cell type");
    HCP_CHECK_MSG(type <= static_cast<unsigned>(CellType::Pad),
                  "cell type out of range: " << type);
    c.type = static_cast<CellType>(type);
    c.name = txt::readStr(is, "cell name");
    c.width = txt::read<std::uint16_t>(is, "cell width");
    c.res = hls::readResource(is);
    c.delayNs = txt::read<double>(is, "cell delayNs");
    c.sequential = txt::readBool(is, "cell sequential");
    c.instance = txt::read<InstanceId>(is, "cell instance");
    c.ops = txt::readVec<ir::OpId>(is, "cell ops");
    c.sourceLine = txt::read<std::int32_t>(is, "cell sourceLine");
    c.array = txt::read<ir::ArrayId>(is, "cell array");
    c.bankIndex = txt::read<std::uint32_t>(is, "cell bankIndex");
    nl.addCell(std::move(c));
  }
  txt::expect(is, "nets");
  const auto numNets = txt::read<std::size_t>(is, "net count");
  for (std::size_t i = 0; i < numNets; ++i) {
    Net n;
    n.name = txt::readStr(is, "net name");
    n.width = txt::read<std::uint16_t>(is, "net width");
    n.driver = txt::read<CellId>(is, "net driver");
    HCP_CHECK_MSG(n.driver < nl.numCells(),
                  "net '" << n.name << "' drives from unknown cell "
                          << n.driver);
    n.sinks = txt::readVec<CellId>(is, "net sinks");
    nl.addNet(std::move(n));
  }
  rtl.netlist = std::move(nl);
  txt::expect(is, "provenance");
  const auto numProv = txt::read<std::size_t>(is, "provenance count");
  rtl.provenance.opCells.reserve(numProv);
  for (std::size_t i = 0; i < numProv; ++i) {
    const auto key = txt::read<std::uint64_t>(is, "provenance key");
    const auto cell = txt::read<CellId>(is, "provenance cell");
    rtl.provenance.opCells.emplace_back(key, cell);
  }
  return rtl;
}

}  // namespace hcp::rtl
