// Text serialization of generated RTL (flow-cache format): the flattened
// netlist (instances, cells, nets) plus the op -> cell provenance map. The
// netlist is rebuilt through its public construction API, so a loaded
// netlist passes validate() exactly like the original. Doubles use 17
// significant digits; save -> load -> save is byte-identical.
#pragma once

#include <istream>
#include <ostream>

#include "rtl/generator.hpp"

namespace hcp::rtl {

void writeGeneratedRtl(std::ostream& os, const GeneratedRtl& rtl);

/// Reads what writeGeneratedRtl wrote. Throws hcp::Error on malformed input.
GeneratedRtl readGeneratedRtl(std::istream& is);

}  // namespace hcp::rtl
