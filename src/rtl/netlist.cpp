#include "rtl/netlist.hpp"

namespace hcp::rtl {

hls::Resource Netlist::totalResource() const {
  hls::Resource total;
  for (const Cell& c : cells_) total += c.res;
  return total;
}

std::vector<std::string> Netlist::validate() const {
  std::vector<std::string> out;
  for (NetId n = 0; n < nets_.size(); ++n) {
    const Net& net = nets_[n];
    if (net.driver >= cells_.size())
      out.push_back("net " + net.name + ": bad driver");
    if (net.sinks.empty()) out.push_back("net " + net.name + ": no sinks");
    for (CellId s : net.sinks) {
      if (s >= cells_.size()) out.push_back("net " + net.name + ": bad sink");
      if (s == net.driver)
        out.push_back("net " + net.name + ": driver is also a sink");
    }
    if (net.width == 0) out.push_back("net " + net.name + ": zero width");
  }
  for (CellId c = 0; c < cells_.size(); ++c) {
    if (cells_[c].instance >= instances_.size())
      out.push_back("cell " + cells_[c].name + ": bad instance");
  }
  return out;
}

}  // namespace hcp::rtl
