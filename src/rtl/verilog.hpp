// Structural Verilog emission: writes the generated netlist as a flat
// module of cell instantiations and wire declarations. The output is not
// meant for simulation (cells are black boxes with behavioural stubs) but
// gives the RTL hand-off a concrete artifact — inspectable, greppable, and
// usable as a golden file in tests.
#pragma once

#include <ostream>
#include <string>

#include "rtl/netlist.hpp"

namespace hcp::rtl {

struct VerilogOptions {
  bool emitCellStubs = true;   ///< append `module` stubs for each cell kind
  bool provenanceComments = true;  ///< per-instance IR-op / line comments
};

/// Writes `netlist` as a single structural Verilog module.
void writeVerilog(const Netlist& netlist, std::ostream& os,
                  const VerilogOptions& options = {});

/// Convenience: renders to a string.
std::string toVerilog(const Netlist& netlist,
                      const VerilogOptions& options = {});

}  // namespace hcp::rtl
