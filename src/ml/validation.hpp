// k-fold cross-validation and grid search (paper §IV-A: "we employ a
// 10-fold cross-validation on the training set and grid search is applied
// to find the best hyperparameters of each model").
//
// Grid search is generic over a config type: supply the candidate configs
// and a factory building a Regressor from one; the winner minimizes mean
// cross-validated MAE.
//
// Both routines parallelize deterministically: crossValidate runs folds
// concurrently, gridSearch runs every (config x fold) pair concurrently.
// Folds are computed up front from the seed, per-task results merge by
// index, and the best config is picked by a strictly-smaller comparison in
// grid order — so any thread count (including HCP_THREADS=1) yields
// bit-identical results. Factories must be safe to call concurrently (the
// stateless lambdas used throughout this repo are).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "ml/metrics.hpp"
#include "ml/model.hpp"
#include "ml/shards.hpp"
#include "support/parallel.hpp"
#include "support/telemetry.hpp"

namespace hcp::ml {

struct CvResult {
  std::vector<double> foldMae;
  std::vector<double> foldMedae;
  double meanMae = 0.0;
  double meanMedae = 0.0;
};

namespace detail {

struct FoldScore {
  double mae = 0.0;
  double medae = 0.0;
};

/// Trains a factory-built model on the fold's train view and scores it on
/// the test view. Views avoid copying the feature matrix per fold.
FoldScore evaluateFold(
    const std::function<std::unique_ptr<Regressor>()>& factory,
    const Dataset& data, const Split& fold);

/// Assembles per-fold scores into a CvResult.
CvResult assemble(const std::vector<FoldScore>& scores);

}  // namespace detail

/// Cross-validates `factory`-built models on `data` with `k` folds.
CvResult crossValidate(
    const std::function<std::unique_ptr<Regressor>()>& factory,
    const Dataset& data, std::size_t k, std::uint64_t seed);

/// Fold of a stable shard sample id (splitmix64 finalizer over id ^ seed):
/// a pure function of the id, so fold membership survives re-sharding,
/// process restarts and corpus growth — unlike the in-memory index
/// permutation of kFoldSplits.
std::size_t foldOfSampleId(std::uint64_t id, std::uint64_t seed,
                           std::size_t k);

/// Out-of-core k-fold CV over a shard set: fold membership comes from
/// foldOfSampleId, each fold trains via the model's streaming fit on a
/// filtered ShardRowSource, and only the test slice's predictions are ever
/// resident. Folds run serially on purpose — peak memory stays that of a
/// single streaming fit. Fails loudly when a fold's train or test
/// partition is empty. Deterministic at any thread count.
CvResult crossValidateStreaming(
    const std::function<std::unique_ptr<Regressor>()>& factory,
    const shards::ShardSet& set, shards::Label label, std::size_t k,
    std::uint64_t seed);

template <typename Config>
struct GridSearchResult {
  Config bestConfig{};
  CvResult bestCv;
  std::vector<std::pair<Config, CvResult>> all;
};

/// Exhaustive grid search over `grid`, scored by mean CV MAE. Every
/// (config, fold) pair is an independent parallel task.
template <typename Config>
GridSearchResult<Config> gridSearch(
    const std::vector<Config>& grid,
    const std::function<std::unique_ptr<Regressor>(const Config&)>& factory,
    const Dataset& data, std::size_t k, std::uint64_t seed) {
  HCP_SPAN("grid_search");
  HCP_CHECK(!grid.empty());
  HCP_CHECK(data.size() >= k);
  const auto folds = kFoldSplits(data.size(), k, seed);

  const std::size_t numPairs = grid.size() * folds.size();
  const auto scores =
      support::parallelMapIndex(numPairs, [&](std::size_t pair) {
        const Config& config = grid[pair / folds.size()];
        const Split& fold = folds[pair % folds.size()];
        return detail::evaluateFold([&] { return factory(config); }, data,
                                    fold);
      });

  GridSearchResult<Config> result;
  bool first = true;
  for (std::size_t c = 0; c < grid.size(); ++c) {
    const auto begin = scores.begin() +
                       static_cast<std::ptrdiff_t>(c * folds.size());
    const CvResult cv = detail::assemble(
        std::vector<detail::FoldScore>(begin, begin + static_cast<std::ptrdiff_t>(folds.size())));
    result.all.emplace_back(grid[c], cv);
    if (first || cv.meanMae < result.bestCv.meanMae) {
      result.bestConfig = grid[c];
      result.bestCv = cv;
      first = false;
    }
  }
  return result;
}

}  // namespace hcp::ml
