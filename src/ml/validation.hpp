// k-fold cross-validation and grid search (paper §IV-A: "we employ a
// 10-fold cross-validation on the training set and grid search is applied
// to find the best hyperparameters of each model").
//
// Grid search is generic over a config type: supply the candidate configs
// and a factory building a Regressor from one; the winner minimizes mean
// cross-validated MAE.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "ml/metrics.hpp"
#include "ml/model.hpp"

namespace hcp::ml {

struct CvResult {
  std::vector<double> foldMae;
  std::vector<double> foldMedae;
  double meanMae = 0.0;
  double meanMedae = 0.0;
};

/// Cross-validates `factory`-built models on `data` with `k` folds.
CvResult crossValidate(
    const std::function<std::unique_ptr<Regressor>()>& factory,
    const Dataset& data, std::size_t k, std::uint64_t seed);

template <typename Config>
struct GridSearchResult {
  Config bestConfig{};
  CvResult bestCv;
  std::vector<std::pair<Config, CvResult>> all;
};

/// Exhaustive grid search over `grid`, scored by mean CV MAE.
template <typename Config>
GridSearchResult<Config> gridSearch(
    const std::vector<Config>& grid,
    const std::function<std::unique_ptr<Regressor>(const Config&)>& factory,
    const Dataset& data, std::size_t k, std::uint64_t seed) {
  HCP_CHECK(!grid.empty());
  GridSearchResult<Config> result;
  bool first = true;
  for (const Config& config : grid) {
    const CvResult cv = crossValidate(
        [&] { return factory(config); }, data, k, seed);
    result.all.emplace_back(config, cv);
    if (first || cv.meanMae < result.bestCv.meanMae) {
      result.bestConfig = config;
      result.bestCv = cv;
      first = false;
    }
  }
  return result;
}

}  // namespace hcp::ml
