#include "ml/linear.hpp"

#include <cmath>

namespace hcp::ml {

namespace {
double softThreshold(double x, double lambda) {
  if (x > lambda) return x - lambda;
  if (x < -lambda) return x + lambda;
  return 0.0;
}
}  // namespace

void LassoRegression::fit(const Dataset& data) {
  const DatasetSource source(data);
  fitFromSource(source);
}

void LassoRegression::fitStreaming(const RowSource& source) {
  fitFromSource(source);
}

// Gram-form cyclic coordinate descent. The former implementation kept the
// full standardized design matrix resident (O(n*d) doubles) to update a
// residual vector per weight change; here the same normal-equation
// quantities are accumulated in one streaming pass —
//
//   G[j][k] = sum_i z_ij * z_ik      (d x d Gram matrix)
//   c[j]    = sum_i z_ij * (y_i - yMean)
//
// after which each descent sweep needs only G and c:
//   rho_j = c[j] - sum_k G[j][k] w_k + G[j][j] w_j
// which equals the former x_j . (residual + x_j w_j) exactly (same
// optimization problem, same update rule, same tolerance loop), while the
// working set is O(d^2) regardless of the sample count.
void LassoRegression::fitFromSource(const RowSource& source) {
  const std::size_t n = source.size();
  HCP_CHECK(n > 0);
  const std::size_t d = source.numFeatures();
  HCP_CHECK(d > 0);

  scaler_.fit(source);

  // Centre the target; intercept absorbs its mean.
  double yMean = 0.0;
  source.forEach([&](std::size_t, const std::vector<double>&, double y) {
    yMean += y;
  });
  yMean /= static_cast<double>(n);

  // One serial pass accumulates Gram + correlation in sample order: the
  // summation order is fixed by the source's canonical order, never by
  // thread count, so the result (and everything downstream) is
  // bit-reproducible.
  std::vector<double> gram(d * d, 0.0);
  std::vector<double> corr(d, 0.0);
  source.forEach([&](std::size_t, const std::vector<double>& row, double y) {
    const auto z = scaler_.transform(row);
    const double yc = y - yMean;
    for (std::size_t j = 0; j < d; ++j) {
      corr[j] += z[j] * yc;
      double* gj = gram.data() + j * d;
      const double zj = z[j];
      for (std::size_t k = j; k < d; ++k) gj[k] += zj * z[k];
    }
  });
  for (std::size_t j = 0; j < d; ++j)  // mirror the upper triangle
    for (std::size_t k = j + 1; k < d; ++k) gram[k * d + j] = gram[j * d + k];

  weights_.assign(d, 0.0);
  intercept_ = yMean;

  // Columns are standardized, so sum(x_j^2) == n for every j.
  const double colNorm = static_cast<double>(n);
  const double lambda = config_.alpha * static_cast<double>(n);

  iterationsRun_ = 0;
  for (int it = 0; it < config_.maxIterations; ++it) {
    double maxChange = 0.0;
    for (std::size_t j = 0; j < d; ++j) {
      const double old = weights_[j];
      const double* gj = gram.data() + j * d;
      double dot = 0.0;
      for (std::size_t k = 0; k < d; ++k) dot += gj[k] * weights_[k];
      const double rho = corr[j] - dot + gj[j] * old;
      const double next = softThreshold(rho, lambda) / colNorm;
      if (next != old) {
        weights_[j] = next;
        maxChange = std::max(maxChange, std::fabs(next - old));
      }
    }
    ++iterationsRun_;
    if (maxChange < config_.tolerance) break;
  }
}

double LassoRegression::predict(const std::vector<double>& row) const {
  HCP_CHECK(scaler_.fitted());
  const auto z = scaler_.transform(row);
  double y = intercept_;
  for (std::size_t j = 0; j < z.size(); ++j) y += weights_[j] * z[j];
  return y;
}

std::size_t LassoRegression::nonZeroWeights() const {
  std::size_t count = 0;
  for (double w : weights_)
    if (w != 0.0) ++count;
  return count;
}

}  // namespace hcp::ml
