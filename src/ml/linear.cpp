#include "ml/linear.hpp"

#include <cmath>

namespace hcp::ml {

namespace {
double softThreshold(double x, double lambda) {
  if (x > lambda) return x - lambda;
  if (x < -lambda) return x + lambda;
  return 0.0;
}
}  // namespace

void LassoRegression::fit(const Dataset& data) {
  HCP_CHECK(data.size() > 0);
  const std::size_t n = data.size();
  const std::size_t d = data.numFeatures();

  scaler_.fit(data);
  // Standardized design matrix, column-major for coordinate descent.
  std::vector<std::vector<double>> cols(d, std::vector<double>(n));
  for (std::size_t i = 0; i < n; ++i) {
    const auto z = scaler_.transform(data.row(i));
    for (std::size_t j = 0; j < d; ++j) cols[j][i] = z[j];
  }
  // Centre the target; intercept absorbs its mean.
  double yMean = 0.0;
  for (std::size_t i = 0; i < n; ++i) yMean += data.target(i);
  yMean /= static_cast<double>(n);

  weights_.assign(d, 0.0);
  intercept_ = yMean;

  std::vector<double> residual(n);
  for (std::size_t i = 0; i < n; ++i) residual[i] = data.target(i) - yMean;

  // Columns are standardized, so sum(x_j^2) == n for every j.
  const double colNorm = static_cast<double>(n);
  const double lambda = config_.alpha * static_cast<double>(n);

  iterationsRun_ = 0;
  for (int it = 0; it < config_.maxIterations; ++it) {
    double maxChange = 0.0;
    for (std::size_t j = 0; j < d; ++j) {
      const double old = weights_[j];
      // rho = x_j . (residual + x_j * w_j)
      double rho = 0.0;
      const auto& xj = cols[j];
      for (std::size_t i = 0; i < n; ++i) rho += xj[i] * residual[i];
      rho += old * colNorm;
      const double next = softThreshold(rho, lambda) / colNorm;
      if (next != old) {
        const double delta = next - old;
        for (std::size_t i = 0; i < n; ++i) residual[i] -= delta * xj[i];
        weights_[j] = next;
        maxChange = std::max(maxChange, std::fabs(delta));
      }
    }
    ++iterationsRun_;
    if (maxChange < config_.tolerance) break;
  }
}

double LassoRegression::predict(const std::vector<double>& row) const {
  HCP_CHECK(scaler_.fitted());
  const auto z = scaler_.transform(row);
  double y = intercept_;
  for (std::size_t j = 0; j < z.size(); ++j) y += weights_[j] * z[j];
  return y;
}

std::size_t LassoRegression::nonZeroWeights() const {
  std::size_t count = 0;
  for (double w : weights_)
    if (w != 0.0) ++count;
  return count;
}

}  // namespace hcp::ml
