#include "ml/gbrt.hpp"

#include <algorithm>
#include <cmath>

#include "support/parallel.hpp"
#include "support/telemetry.hpp"

namespace hcp::ml {

void Gbrt::fit(const Dataset& data) {
  HCP_SPAN("gbrt_fit");
  HCP_CHECK(data.size() >= 4);
  numFeatures_ = data.numFeatures();
  Rng rng(config_.seed);

  binner_.fit(data, config_.numBins);
  std::vector<std::vector<std::uint8_t>> binned(data.size());
  support::parallelFor(0, data.size(), 64, [&](std::size_t i) {
    binned[i] = binner_.binRow(data.row(i));
  });

  // F0 = mean target.
  baseline_ = 0.0;
  for (double y : data.targets()) baseline_ += y;
  baseline_ /= static_cast<double>(data.size());

  std::vector<double> prediction(data.size(), baseline_);
  std::vector<double> residual(data.size());
  trees_.clear();
  trees_.reserve(config_.numEstimators);

  const auto rowsPerStage = static_cast<std::size_t>(std::max(
      2.0, config_.subsample * static_cast<double>(data.size())));
  const auto featsPerStage = static_cast<std::size_t>(std::max(
      1.0, config_.featureFraction * static_cast<double>(numFeatures_)));

  TreeConfig treeConfig;
  treeConfig.maxDepth = config_.maxDepth;
  treeConfig.minSamplesLeaf = config_.minSamplesLeaf;

  std::vector<std::size_t> allRows(data.size());
  for (std::size_t i = 0; i < allRows.size(); ++i) allRows[i] = i;
  std::vector<std::size_t> allFeatures(numFeatures_);
  for (std::size_t f = 0; f < numFeatures_; ++f) allFeatures[f] = f;

  for (std::size_t stage = 0; stage < config_.numEstimators; ++stage) {
    for (std::size_t i = 0; i < data.size(); ++i)
      residual[i] = data.target(i) - prediction[i];

    // Row / feature subsampling for this stage.
    rng.shuffle(allRows);
    std::vector<std::size_t> rows(allRows.begin(),
                                  allRows.begin() +
                                      static_cast<std::ptrdiff_t>(
                                          rowsPerStage));
    rng.shuffle(allFeatures);
    std::vector<std::size_t> features(
        allFeatures.begin(),
        allFeatures.begin() + static_cast<std::ptrdiff_t>(featsPerStage));

    RegressionTree tree;
    tree.fitBinned(binned, residual, std::move(rows), features, binner_,
                   treeConfig);

    // Per-row updates are independent and write disjoint slots.
    support::parallelFor(0, data.size(), 256, [&](std::size_t i) {
      prediction[i] += config_.learningRate * tree.predictBinned(binned[i]);
    });
    trees_.push_back(std::move(tree));
  }
  support::telemetry::count(support::telemetry::Counter::GbrtBoostingRounds,
                            config_.numEstimators);

  trainLoss_ = 0.0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    const double d = data.target(i) - prediction[i];
    trainLoss_ += d * d;
  }
  trainLoss_ /= static_cast<double>(data.size());
}

double Gbrt::predict(const std::vector<double>& row) const {
  double y = baseline_;
  for (const RegressionTree& t : trees_)
    y += config_.learningRate * t.predict(row);
  return y;
}

std::vector<double> Gbrt::featureImportance() const {
  std::vector<double> imp(numFeatures_, 0.0);
  double total = 0.0;
  for (const RegressionTree& t : trees_) {
    const auto& counts = t.splitCounts();
    for (std::size_t f = 0; f < counts.size(); ++f) {
      imp[f] += counts[f];
      total += counts[f];
    }
  }
  if (total > 0)
    for (double& v : imp) v /= total;
  return imp;
}

std::vector<double> Gbrt::featureImportanceByGain() const {
  std::vector<double> imp(numFeatures_, 0.0);
  double total = 0.0;
  for (const RegressionTree& t : trees_) {
    const auto& gains = t.splitGains();
    for (std::size_t f = 0; f < gains.size(); ++f) {
      imp[f] += gains[f];
      total += gains[f];
    }
  }
  if (total > 0)
    for (double& v : imp) v /= total;
  return imp;
}

}  // namespace hcp::ml
