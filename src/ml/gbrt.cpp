#include "ml/gbrt.hpp"

#include <algorithm>
#include <cmath>

#include "support/parallel.hpp"
#include "support/telemetry.hpp"

namespace hcp::ml {

void Gbrt::fit(const Dataset& data) {
  const DatasetSource source(data);
  fitFromSource(source);
}

void Gbrt::fitStreaming(const RowSource& source) { fitFromSource(source); }

void Gbrt::fitFromSource(const RowSource& source) {
  HCP_SPAN("gbrt_fit");
  const std::size_t n = source.size();
  HCP_CHECK(n >= 4);
  numFeatures_ = source.numFeatures();
  Rng rng(config_.seed);

  // Quantile edges stream through feature blocks; the raw doubles of a
  // block are dropped before the next is gathered. One more parallel pass
  // bins every row (a pure per-row transform — safe to run concurrently)
  // and captures the targets, after which the source is not touched again:
  // the boosting stages below run on the resident uint8 matrix exactly as
  // the former in-memory implementation did, byte for byte.
  binner_.fitStreamed(source, config_.numBins);
  std::vector<std::vector<std::uint8_t>> binned(n);
  std::vector<double> targets(n, 0.0);
  source.visitParallel(
      [&](std::size_t i, const std::vector<double>& row, double y) {
        binned[i] = binner_.binRow(row);
        targets[i] = y;
      });

  // F0 = mean target.
  baseline_ = 0.0;
  for (double y : targets) baseline_ += y;
  baseline_ /= static_cast<double>(n);

  std::vector<double> prediction(n, baseline_);
  std::vector<double> residual(n);
  trees_.clear();
  trees_.reserve(config_.numEstimators);

  const auto rowsPerStage = static_cast<std::size_t>(
      std::max(2.0, config_.subsample * static_cast<double>(n)));
  const auto featsPerStage = static_cast<std::size_t>(std::max(
      1.0, config_.featureFraction * static_cast<double>(numFeatures_)));

  TreeConfig treeConfig;
  treeConfig.maxDepth = config_.maxDepth;
  treeConfig.minSamplesLeaf = config_.minSamplesLeaf;

  std::vector<std::size_t> allRows(n);
  for (std::size_t i = 0; i < allRows.size(); ++i) allRows[i] = i;
  std::vector<std::size_t> allFeatures(numFeatures_);
  for (std::size_t f = 0; f < numFeatures_; ++f) allFeatures[f] = f;

  for (std::size_t stage = 0; stage < config_.numEstimators; ++stage) {
    for (std::size_t i = 0; i < n; ++i)
      residual[i] = targets[i] - prediction[i];

    // Row / feature subsampling for this stage.
    rng.shuffle(allRows);
    std::vector<std::size_t> rows(allRows.begin(),
                                  allRows.begin() +
                                      static_cast<std::ptrdiff_t>(
                                          rowsPerStage));
    rng.shuffle(allFeatures);
    std::vector<std::size_t> features(
        allFeatures.begin(),
        allFeatures.begin() + static_cast<std::ptrdiff_t>(featsPerStage));

    RegressionTree tree;
    tree.fitBinned(binned, residual, std::move(rows), features, binner_,
                   treeConfig);

    // Per-row updates are independent and write disjoint slots.
    support::parallelFor(0, n, 256, [&](std::size_t i) {
      prediction[i] += config_.learningRate * tree.predictBinned(binned[i]);
    });
    trees_.push_back(std::move(tree));
  }
  support::telemetry::count(support::telemetry::Counter::GbrtBoostingRounds,
                            config_.numEstimators);

  trainLoss_ = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double d = targets[i] - prediction[i];
    trainLoss_ += d * d;
  }
  trainLoss_ /= static_cast<double>(n);
}

double Gbrt::predict(const std::vector<double>& row) const {
  double y = baseline_;
  for (const RegressionTree& t : trees_)
    y += config_.learningRate * t.predict(row);
  return y;
}

std::vector<double> Gbrt::featureImportance() const {
  std::vector<double> imp(numFeatures_, 0.0);
  double total = 0.0;
  for (const RegressionTree& t : trees_) {
    const auto& counts = t.splitCounts();
    for (std::size_t f = 0; f < counts.size(); ++f) {
      imp[f] += counts[f];
      total += counts[f];
    }
  }
  if (total > 0)
    for (double& v : imp) v /= total;
  return imp;
}

std::vector<double> Gbrt::featureImportanceByGain() const {
  std::vector<double> imp(numFeatures_, 0.0);
  double total = 0.0;
  for (const RegressionTree& t : trees_) {
    const auto& gains = t.splitGains();
    for (std::size_t f = 0; f < gains.size(); ++f) {
      imp[f] += gains[f];
      total += gains[f];
    }
  }
  if (total > 0)
    for (double& v : imp) v /= total;
  return imp;
}

}  // namespace hcp::ml
