#include "ml/shards.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "support/flowcache.hpp"
#include "support/parallel.hpp"
#include "support/telemetry.hpp"
#include "support/textio.hpp"

namespace hcp::ml::shards {

namespace {

namespace fs = std::filesystem;
using support::flowcache::Fnv1a;

constexpr const char* kMagic = "hcp-shard";

double targetOf(Label label, const ShardSample& s) {
  switch (label) {
    case Label::Vertical: return s.vertical;
    case Label::Horizontal: return s.horizontal;
    case Label::Average: return s.average;
  }
  HCP_CHECK(false);
  return 0.0;
}

/// Parses one header line (without the trailing newline). `what` names the
/// file in every failure message.
ShardInfo parseHeader(const std::string& line, const std::string& path) {
  std::istringstream is(line);
  std::string magic, key, hash;
  std::uint32_t version = 0;
  std::size_t numFeatures = 0, numSamples = 0, payloadBytes = 0;
  HCP_CHECK_MSG(static_cast<bool>(is >> magic >> version >> key >>
                                  numFeatures >> numSamples >> payloadBytes >>
                                  hash) &&
                    magic == kMagic,
                "not a shard file (bad header): " << path);
  HCP_CHECK_MSG(version == kSchemaVersion,
                "shard schema version skew: " << path << " has version "
                                              << version << ", expected "
                                              << kSchemaVersion);
  HCP_CHECK_MSG(key.size() == 16 &&
                    key.find_first_not_of("0123456789abcdef") ==
                        std::string::npos,
                "shard header: malformed key '" << key << "' in " << path);
  HCP_CHECK_MSG(hash.size() == 16 &&
                    hash.find_first_not_of("0123456789abcdef") ==
                        std::string::npos,
                "shard header: malformed payload digest in " << path);
  std::string extra;
  HCP_CHECK_MSG(!(is >> extra),
                "shard header: trailing garbage '" << extra << "' in "
                                                   << path);
  HCP_CHECK_MSG(fs::path(path).stem().string() == key,
                "shard key mismatch: header says " << key << " but the file "
                                                   << "is named " << path);
  ShardInfo info;
  info.key = key;
  info.numFeatures = numFeatures;
  info.numSamples = numSamples;
  info.path = path;
  return info;
}

struct HeaderEnvelope {
  ShardInfo info;
  std::size_t payloadBytes = 0;
  std::string payloadHash;
};

HeaderEnvelope readHeaderLine(std::istream& is, const std::string& path) {
  std::string line;
  HCP_CHECK_MSG(static_cast<bool>(std::getline(is, line)),
                "not a shard file (empty or unreadable): " << path);
  HeaderEnvelope env;
  env.info = parseHeader(line, path);
  // Re-scan the two envelope fields parseHeader validated but dropped.
  std::istringstream hs(line);
  std::string magic, key;
  std::uint32_t version = 0;
  std::size_t numFeatures = 0, numSamples = 0;
  hs >> magic >> version >> key >> numFeatures >> numSamples >>
      env.payloadBytes >> env.payloadHash;
  return env;
}

}  // namespace

std::string_view labelName(Label label) {
  switch (label) {
    case Label::Vertical: return "vertical";
    case Label::Horizontal: return "horizontal";
    case Label::Average: return "average";
  }
  return "?";
}

std::string shardKey(const std::string& design, const std::string& device,
                     std::uint64_t seed, std::size_t numFeatures,
                     const std::string& salt) {
  return Fnv1a()
      .u64(kSchemaVersion)
      .str(design)
      .str(device)
      .u64(seed)
      .u64(numFeatures)
      .str(salt)
      .hex();
}

std::uint64_t sampleId(const std::string& key, std::uint64_t ordinal) {
  return Fnv1a().str(key).u64(ordinal).digest();
}

std::string writeShard(const std::string& dir, const std::string& key,
                       const ShardMeta& meta,
                       const std::vector<ShardSample>& samples) {
  const std::size_t numFeatures =
      samples.empty() ? 0 : samples.front().features.size();
  for (const ShardSample& s : samples)
    HCP_CHECK_MSG(s.features.size() == numFeatures,
                  "shard sample has " << s.features.size()
                                      << " features, expected "
                                      << numFeatures);

  std::ostringstream payload;
  support::txt::preparePrecision(payload);
  payload << "design ";
  support::txt::writeStr(payload, meta.design);
  payload << "\ndevice ";
  support::txt::writeStr(payload, meta.device);
  payload << "\nseed " << meta.seed << "\n";
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const ShardSample& s = samples[i];
    payload << "sample " << sampleId(key, i) << ' ' << s.vertical << ' '
            << s.horizontal << ' ' << s.average;
    for (const double f : s.features) payload << ' ' << f;
    payload << "\n";
  }
  const std::string bytes = payload.str();

  std::error_code ec;
  fs::create_directories(dir, ec);
  HCP_CHECK_MSG(!ec, "cannot create shard directory " << dir << ": "
                                                      << ec.message());
  const std::string path = (fs::path(dir) / (key + ".shard")).string();
  support::txt::CheckedFileWriter writer(path, "shard");
  writer.stream() << kMagic << ' ' << kSchemaVersion << ' ' << key << ' '
                  << numFeatures << ' ' << samples.size() << ' '
                  << bytes.size() << ' ' << Fnv1a().bytes(bytes).hex() << "\n"
                  << bytes;
  writer.commit();
  support::telemetry::count(support::telemetry::Counter::ShardWrites);
  return path;
}

ShardData readShard(const std::string& path) {
  if (support::failpoint::shouldFail("shard.read"))
    throw Error("cannot read shard " + path + " (injected shard.read fault)");
  std::ifstream is(path, std::ios::binary);
  HCP_CHECK_MSG(is.good(), "cannot open shard " << path);
  const HeaderEnvelope env = readHeaderLine(is, path);

  std::string bytes(env.payloadBytes, '\0');
  is.read(bytes.data(), static_cast<std::streamsize>(env.payloadBytes));
  HCP_CHECK_MSG(static_cast<std::size_t>(is.gcount()) == env.payloadBytes,
                "truncated shard (payload wanted " << env.payloadBytes
                                                   << " bytes, got "
                                                   << is.gcount() << "): "
                                                   << path);
  HCP_CHECK_MSG(is.get() == std::ifstream::traits_type::eof(),
                "trailing garbage after shard payload: " << path);
  const std::string digest = Fnv1a().bytes(bytes).hex();
  HCP_CHECK_MSG(digest == env.payloadHash,
                "shard payload digest mismatch (header "
                    << env.payloadHash << ", computed " << digest
                    << "): " << path);

  ShardData data;
  data.info = env.info;
  std::istringstream ps(bytes);
  try {
    support::txt::expect(ps, "design");
    data.meta.design = support::txt::readStr(ps, "shard design");
    support::txt::expect(ps, "device");
    data.meta.device = support::txt::readStr(ps, "shard device");
    support::txt::expect(ps, "seed");
    data.meta.seed = support::txt::read<std::uint64_t>(ps, "shard seed");
    data.samples.reserve(env.info.numSamples);
    for (std::size_t i = 0; i < env.info.numSamples; ++i) {
      support::txt::expect(ps, "sample");
      ShardSample s;
      s.id = support::txt::read<std::uint64_t>(ps, "sample id");
      HCP_CHECK_MSG(s.id == sampleId(env.info.key, i),
                    "shard sample " << i << " has id " << s.id
                                    << ", expected canonical id "
                                    << sampleId(env.info.key, i));
      s.vertical = support::txt::read<double>(ps, "sample labels");
      s.horizontal = support::txt::read<double>(ps, "sample labels");
      s.average = support::txt::read<double>(ps, "sample labels");
      s.features.reserve(env.info.numFeatures);
      for (std::size_t f = 0; f < env.info.numFeatures; ++f)
        s.features.push_back(support::txt::read<double>(ps, "sample features"));
      data.samples.push_back(std::move(s));
    }
    support::txt::expectEnd(ps, "shard payload");
  } catch (const Error& e) {
    throw Error(std::string(e.what()) + " [shard file: " + path + "]");
  }
  support::telemetry::count(support::telemetry::Counter::ShardReads);
  return data;
}

ShardSet::ShardSet(std::string dir) : dir_(std::move(dir)) {
  HCP_CHECK_MSG(fs::is_directory(dir_),
                "shard directory does not exist: " << dir_);
  std::vector<std::string> paths;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    if (!entry.is_regular_file()) continue;
    if (entry.path().extension() != ".shard") continue;
    paths.push_back(entry.path().string());
  }
  // Directory iteration order is filesystem-dependent; the sorted file name
  // (= content key) order is the canonical sample order of the set.
  std::sort(paths.begin(), paths.end());

  for (const std::string& path : paths) {
    std::ifstream is(path, std::ios::binary);
    HCP_CHECK_MSG(is.good(), "cannot open shard " << path);
    const HeaderEnvelope env = readHeaderLine(is, path);
    if (env.info.numSamples > 0) {
      if (numFeatures_ == 0) {
        numFeatures_ = env.info.numFeatures;
      } else {
        HCP_CHECK_MSG(env.info.numFeatures == numFeatures_,
                      "shard feature-count mismatch in set: "
                          << path << " has " << env.info.numFeatures
                          << " features, set has " << numFeatures_);
      }
    }
    totalSamples_ += env.info.numSamples;
    infos_.push_back(env.info);
  }
}

ShardData ShardSet::load(std::size_t i) const {
  const ShardInfo& expected = info(i);
  ShardData data = readShard(expected.path);
  // Guards against the file changing between the scan and this load.
  HCP_CHECK_MSG(data.info.key == expected.key &&
                    data.info.numSamples == expected.numSamples &&
                    data.info.numFeatures == expected.numFeatures,
                "shard changed since the set was scanned: " << expected.path);
  return data;
}

ShardRowSource::ShardRowSource(const ShardSet& set, Label label, KeepFn keep)
    : set_(&set), label_(label), keep_(std::move(keep)) {
  if (!keep_) {
    size_ = set_->totalSamples();
    return;
  }
  // Ids are a pure function of (key, ordinal): the filtered size comes from
  // the headers alone, no payload I/O.
  for (std::size_t s = 0; s < set_->numShards(); ++s) {
    const ShardInfo& info = set_->info(s);
    for (std::size_t o = 0; o < info.numSamples; ++o)
      if (keep_(sampleId(info.key, o))) ++size_;
  }
}

void ShardRowSource::forEach(const RowFn& fn) const {
  std::size_t index = 0;
  for (std::size_t s = 0; s < set_->numShards(); ++s) {
    if (set_->info(s).numSamples == 0) continue;
    const ShardData data = set_->load(s);
    for (const ShardSample& sample : data.samples) {
      if (keep_ && !keep_(sample.id)) continue;
      fn(index++, sample.features, targetOf(label_, sample));
    }
  }
}

void ShardRowSource::visitParallel(const RowFn& fn) const {
  std::size_t base = 0;
  for (std::size_t s = 0; s < set_->numShards(); ++s) {
    if (set_->info(s).numSamples == 0) continue;
    const ShardData data = set_->load(s);
    std::vector<std::size_t> kept;
    kept.reserve(data.samples.size());
    for (std::size_t o = 0; o < data.samples.size(); ++o)
      if (!keep_ || keep_(data.samples[o].id)) kept.push_back(o);
    support::parallelFor(0, kept.size(), 64, [&](std::size_t j) {
      const ShardSample& sample = data.samples[kept[j]];
      fn(base + j, sample.features, targetOf(label_, sample));
    });
    base += kept.size();
  }
}

}  // namespace hcp::ml::shards
