// Common regressor interface for the three model families the paper compares
// (Lasso linear regression, ANN, GBRT).
#pragma once

#include <memory>
#include <vector>

#include "ml/dataset.hpp"

namespace hcp::ml {

class Regressor {
 public:
  virtual ~Regressor() = default;

  /// Trains on the dataset (models standardize internally as needed).
  virtual void fit(const Dataset& data) = 0;

  virtual double predict(const std::vector<double>& row) const = 0;

  std::vector<double> predictAll(const Dataset& data) const {
    std::vector<double> out;
    out.reserve(data.size());
    for (std::size_t i = 0; i < data.size(); ++i)
      out.push_back(predict(data.row(i)));
    return out;
  }

  virtual std::string name() const = 0;
};

}  // namespace hcp::ml
