// Common regressor interface for the three model families the paper compares
// (Lasso linear regression, ANN, GBRT).
#pragma once

#include <memory>
#include <vector>

#include "ml/dataset.hpp"
#include "ml/sample_source.hpp"
#include "support/parallel.hpp"

namespace hcp::ml {

class Regressor {
 public:
  virtual ~Regressor() = default;

  /// Trains on the dataset (models standardize internally as needed).
  virtual void fit(const Dataset& data) = 0;

  /// Trains from a streaming RowSource. Lasso and GBRT override this with
  /// bounded-memory paths whose trained state is byte-identical to fit()
  /// on the materialized source (DESIGN.md §19); the default materializes
  /// the source and delegates (models without a native streaming fit).
  virtual void fitStreaming(const RowSource& source) {
    fit(materialize(source));
  }

  virtual double predict(const std::vector<double>& row) const = 0;

  std::vector<double> predictAll(const Dataset& data) const {
    // predict() is const and rows are independent; results land by index,
    // so the output is identical at any thread count.
    return support::parallelMapIndex(
        data.size(), [&](std::size_t i) { return predict(data.row(i)); },
        /*grainSize=*/64);
  }

  virtual std::string name() const = 0;
};

}  // namespace hcp::ml
