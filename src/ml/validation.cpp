#include "ml/validation.hpp"

#include "support/stats.hpp"
#include "support/telemetry.hpp"

namespace hcp::ml {

namespace detail {

FoldScore evaluateFold(
    const std::function<std::unique_ptr<Regressor>()>& factory,
    const Dataset& data, const Split& fold) {
  support::telemetry::count(support::telemetry::Counter::CvFoldsEvaluated);
  // Index views share the base feature matrix: k-fold CV no longer copies
  // the rows k times. `data` and `fold` outlive this call by contract.
  const Dataset train = data.subsetView(fold.train);
  const Dataset test = data.subsetView(fold.test);
  auto model = factory();
  model->fit(train);
  const auto predicted = model->predictAll(test);
  const FoldScore score{meanAbsoluteError(test.targets(), predicted),
                        medianAbsoluteError(test.targets(), predicted)};
  support::telemetry::observe(support::telemetry::Histogram::CvFoldMae,
                              score.mae);
  support::telemetry::observe(support::telemetry::Histogram::CvFoldMedae,
                              score.medae);
  return score;
}

CvResult assemble(const std::vector<FoldScore>& scores) {
  CvResult result;
  result.foldMae.reserve(scores.size());
  result.foldMedae.reserve(scores.size());
  for (const FoldScore& s : scores) {
    result.foldMae.push_back(s.mae);
    result.foldMedae.push_back(s.medae);
  }
  result.meanMae = mean(result.foldMae);
  result.meanMedae = mean(result.foldMedae);
  return result;
}

}  // namespace detail

CvResult crossValidate(
    const std::function<std::unique_ptr<Regressor>()>& factory,
    const Dataset& data, std::size_t k, std::uint64_t seed) {
  HCP_SPAN("cross_validate");
  HCP_CHECK(data.size() >= k);
  const auto folds = kFoldSplits(data.size(), k, seed);
  const auto scores =
      support::parallelMapIndex(folds.size(), [&](std::size_t f) {
        return detail::evaluateFold(factory, data, folds[f]);
      });
  return detail::assemble(scores);
}

}  // namespace hcp::ml
