#include "ml/validation.hpp"

#include "support/stats.hpp"
#include "support/telemetry.hpp"

namespace hcp::ml {

namespace detail {

FoldScore evaluateFold(
    const std::function<std::unique_ptr<Regressor>()>& factory,
    const Dataset& data, const Split& fold) {
  support::telemetry::count(support::telemetry::Counter::CvFoldsEvaluated);
  // Index views share the base feature matrix: k-fold CV no longer copies
  // the rows k times. `data` and `fold` outlive this call by contract.
  const Dataset train = data.subsetView(fold.train);
  const Dataset test = data.subsetView(fold.test);
  auto model = factory();
  model->fit(train);
  const auto predicted = model->predictAll(test);
  const FoldScore score{meanAbsoluteError(test.targets(), predicted),
                        medianAbsoluteError(test.targets(), predicted)};
  support::telemetry::observe(support::telemetry::Histogram::CvFoldMae,
                              score.mae);
  support::telemetry::observe(support::telemetry::Histogram::CvFoldMedae,
                              score.medae);
  return score;
}

CvResult assemble(const std::vector<FoldScore>& scores) {
  CvResult result;
  result.foldMae.reserve(scores.size());
  result.foldMedae.reserve(scores.size());
  for (const FoldScore& s : scores) {
    result.foldMae.push_back(s.mae);
    result.foldMedae.push_back(s.medae);
  }
  result.meanMae = mean(result.foldMae);
  result.meanMedae = mean(result.foldMedae);
  return result;
}

}  // namespace detail

CvResult crossValidate(
    const std::function<std::unique_ptr<Regressor>()>& factory,
    const Dataset& data, std::size_t k, std::uint64_t seed) {
  HCP_SPAN("cross_validate");
  HCP_CHECK(data.size() >= k);
  const auto folds = kFoldSplits(data.size(), k, seed);
  const auto scores =
      support::parallelMapIndex(folds.size(), [&](std::size_t f) {
        return detail::evaluateFold(factory, data, folds[f]);
      });
  return detail::assemble(scores);
}

std::size_t foldOfSampleId(std::uint64_t id, std::uint64_t seed,
                           std::size_t k) {
  HCP_CHECK(k >= 2);
  std::uint64_t x = id ^ (seed + 0x9e3779b97f4a7c15ULL);
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return static_cast<std::size_t>(x % k);
}

CvResult crossValidateStreaming(
    const std::function<std::unique_ptr<Regressor>()>& factory,
    const shards::ShardSet& set, shards::Label label, std::size_t k,
    std::uint64_t seed) {
  HCP_SPAN("cross_validate_streaming");
  HCP_CHECK(k >= 2);
  HCP_CHECK_MSG(set.totalSamples() >= k,
                "cross-validation needs at least k=" << k << " samples, "
                                                     << "shard set has "
                                                     << set.totalSamples());
  std::vector<detail::FoldScore> scores;
  scores.reserve(k);
  for (std::size_t f = 0; f < k; ++f) {
    support::telemetry::count(support::telemetry::Counter::CvFoldsEvaluated);
    const shards::ShardRowSource train(
        set, label,
        [=](std::uint64_t id) { return foldOfSampleId(id, seed, k) != f; });
    const shards::ShardRowSource test(
        set, label,
        [=](std::uint64_t id) { return foldOfSampleId(id, seed, k) == f; });
    HCP_CHECK_MSG(train.size() > 0 && test.size() > 0,
                  "fold " << f << "/" << k << " has an empty "
                          << (train.size() == 0 ? "train" : "test")
                          << " partition (" << set.totalSamples()
                          << " samples; use fewer folds)");
    auto model = factory();
    model->fitStreaming(train);
    std::vector<double> targets(test.size(), 0.0);
    std::vector<double> predicted(test.size(), 0.0);
    test.visitParallel(
        [&](std::size_t i, const std::vector<double>& row, double y) {
          targets[i] = y;
          predicted[i] = model->predict(row);
        });
    const detail::FoldScore score{meanAbsoluteError(targets, predicted),
                                  medianAbsoluteError(targets, predicted)};
    support::telemetry::observe(support::telemetry::Histogram::CvFoldMae,
                                score.mae);
    support::telemetry::observe(support::telemetry::Histogram::CvFoldMedae,
                                score.medae);
    scores.push_back(score);
  }
  return detail::assemble(scores);
}

}  // namespace hcp::ml
