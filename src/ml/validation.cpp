#include "ml/validation.hpp"

#include "support/stats.hpp"

namespace hcp::ml {

CvResult crossValidate(
    const std::function<std::unique_ptr<Regressor>()>& factory,
    const Dataset& data, std::size_t k, std::uint64_t seed) {
  HCP_CHECK(data.size() >= k);
  CvResult result;
  const auto folds = kFoldSplits(data.size(), k, seed);
  for (const Split& fold : folds) {
    const Dataset train = data.subset(fold.train);
    const Dataset test = data.subset(fold.test);
    auto model = factory();
    model->fit(train);
    const auto predicted = model->predictAll(test);
    result.foldMae.push_back(
        meanAbsoluteError(test.targets(), predicted));
    result.foldMedae.push_back(
        medianAbsoluteError(test.targets(), predicted));
  }
  result.meanMae = mean(result.foldMae);
  result.meanMedae = mean(result.foldMedae);
  return result;
}

}  // namespace hcp::ml
