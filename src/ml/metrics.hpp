// Regression metrics. MAE and MedAE are the paper's Table IV metrics:
// MAE = mean(|y - yhat|), MedAE = median(|y - yhat|) — robust to outliers.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace hcp::ml {

double meanAbsoluteError(std::span<const double> actual,
                         std::span<const double> predicted);

double medianAbsoluteError(std::span<const double> actual,
                           std::span<const double> predicted);

double rootMeanSquaredError(std::span<const double> actual,
                            std::span<const double> predicted);

/// Coefficient of determination; 1 is perfect, 0 is the mean predictor.
double r2Score(std::span<const double> actual,
               std::span<const double> predicted);

/// Indices of the ceil(topFraction * n) largest values (at least one when the
/// input is non-empty), with ties broken toward the lower index — fully
/// deterministic, so hotspot sets compare exactly across runs and thread
/// counts. Returned sorted ascending.
std::vector<std::size_t> topFractionIndices(std::span<const double> values,
                                            double topFraction);

/// Hotspot intersection-over-union: both maps are reduced to their
/// top-`topFraction` tiles (default top decile, the congestion-map evaluation
/// protocol) and the two index sets are compared as |A∩B| / |A∪B|. 1 when
/// the predicted hotspot set matches the actual one exactly, 0 when they are
/// disjoint. Empty inputs score 1 (nothing to miss).
double hotspotIoU(std::span<const double> actual,
                  std::span<const double> predicted,
                  double topFraction = 0.1);

}  // namespace hcp::ml
