// Regression metrics. MAE and MedAE are the paper's Table IV metrics:
// MAE = mean(|y - yhat|), MedAE = median(|y - yhat|) — robust to outliers.
#pragma once

#include <span>

namespace hcp::ml {

double meanAbsoluteError(std::span<const double> actual,
                         std::span<const double> predicted);

double medianAbsoluteError(std::span<const double> actual,
                           std::span<const double> predicted);

double rootMeanSquaredError(std::span<const double> actual,
                            std::span<const double> predicted);

/// Coefficient of determination; 1 is perfect, 0 is the mean predictor.
double r2Score(std::span<const double> actual,
               std::span<const double> predicted);

}  // namespace hcp::ml
