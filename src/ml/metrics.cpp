#include "ml/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "support/error.hpp"
#include "support/stats.hpp"

namespace hcp::ml {

namespace {
std::vector<double> absErrors(std::span<const double> a,
                              std::span<const double> p) {
  HCP_CHECK(a.size() == p.size() && !a.empty());
  std::vector<double> e(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) e[i] = std::fabs(a[i] - p[i]);
  return e;
}
}  // namespace

double meanAbsoluteError(std::span<const double> actual,
                         std::span<const double> predicted) {
  return mean(absErrors(actual, predicted));
}

double medianAbsoluteError(std::span<const double> actual,
                           std::span<const double> predicted) {
  return median(absErrors(actual, predicted));
}

double rootMeanSquaredError(std::span<const double> actual,
                            std::span<const double> predicted) {
  HCP_CHECK(actual.size() == predicted.size() && !actual.empty());
  double s = 0.0;
  for (std::size_t i = 0; i < actual.size(); ++i) {
    const double d = actual[i] - predicted[i];
    s += d * d;
  }
  return std::sqrt(s / static_cast<double>(actual.size()));
}

double r2Score(std::span<const double> actual,
               std::span<const double> predicted) {
  HCP_CHECK(actual.size() == predicted.size() && !actual.empty());
  const double m = mean(actual);
  double ssRes = 0.0, ssTot = 0.0;
  for (std::size_t i = 0; i < actual.size(); ++i) {
    ssRes += (actual[i] - predicted[i]) * (actual[i] - predicted[i]);
    ssTot += (actual[i] - m) * (actual[i] - m);
  }
  if (ssTot == 0.0) return ssRes == 0.0 ? 1.0 : 0.0;
  return 1.0 - ssRes / ssTot;
}

std::vector<std::size_t> topFractionIndices(std::span<const double> values,
                                            double topFraction) {
  if (values.empty()) return {};
  HCP_CHECK_MSG(topFraction > 0.0 && topFraction <= 1.0,
                "topFraction must be in (0, 1], got " << topFraction);
  const std::size_t k = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::floor(topFraction * static_cast<double>(values.size()))));
  std::vector<std::size_t> order(values.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  // Strict value ordering with the index as the tie-break: equal values keep
  // their lower index first, so the chosen hotspot set never depends on sort
  // implementation details.
  std::partial_sort(order.begin(), order.begin() + static_cast<std::ptrdiff_t>(k),
                    order.end(), [&](std::size_t a, std::size_t b) {
                      if (values[a] != values[b]) return values[a] > values[b];
                      return a < b;
                    });
  order.resize(k);
  std::sort(order.begin(), order.end());
  return order;
}

double hotspotIoU(std::span<const double> actual,
                  std::span<const double> predicted, double topFraction) {
  HCP_CHECK(actual.size() == predicted.size());
  if (actual.empty()) return 1.0;
  const auto a = topFractionIndices(actual, topFraction);
  const auto p = topFractionIndices(predicted, topFraction);
  std::size_t inter = 0, i = 0, j = 0;
  while (i < a.size() && j < p.size()) {
    if (a[i] == p[j]) { ++inter; ++i; ++j; }
    else if (a[i] < p[j]) ++i;
    else ++j;
  }
  const std::size_t uni = a.size() + p.size() - inter;
  return uni == 0 ? 1.0 : static_cast<double>(inter) / static_cast<double>(uni);
}

}  // namespace hcp::ml
