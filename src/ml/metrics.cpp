#include "ml/metrics.hpp"

#include <cmath>
#include <vector>

#include "support/error.hpp"
#include "support/stats.hpp"

namespace hcp::ml {

namespace {
std::vector<double> absErrors(std::span<const double> a,
                              std::span<const double> p) {
  HCP_CHECK(a.size() == p.size() && !a.empty());
  std::vector<double> e(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) e[i] = std::fabs(a[i] - p[i]);
  return e;
}
}  // namespace

double meanAbsoluteError(std::span<const double> actual,
                         std::span<const double> predicted) {
  return mean(absErrors(actual, predicted));
}

double medianAbsoluteError(std::span<const double> actual,
                           std::span<const double> predicted) {
  return median(absErrors(actual, predicted));
}

double rootMeanSquaredError(std::span<const double> actual,
                            std::span<const double> predicted) {
  HCP_CHECK(actual.size() == predicted.size() && !actual.empty());
  double s = 0.0;
  for (std::size_t i = 0; i < actual.size(); ++i) {
    const double d = actual[i] - predicted[i];
    s += d * d;
  }
  return std::sqrt(s / static_cast<double>(actual.size()));
}

double r2Score(std::span<const double> actual,
               std::span<const double> predicted) {
  HCP_CHECK(actual.size() == predicted.size() && !actual.empty());
  const double m = mean(actual);
  double ssRes = 0.0, ssTot = 0.0;
  for (std::size_t i = 0; i < actual.size(); ++i) {
    ssRes += (actual[i] - predicted[i]) * (actual[i] - predicted[i]);
    ssTot += (actual[i] - m) * (actual[i] - m);
  }
  if (ssTot == 0.0) return ssRes == 0.0 ? 1.0 : 0.0;
  return 1.0 - ssRes / ssTot;
}

}  // namespace hcp::ml
