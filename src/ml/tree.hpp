// CART regression trees over histogram-binned features.
//
// Features are quantile-binned once (Binner); each tree node then finds the
// best split with one O(rows x features) histogram sweep instead of sorting,
// which keeps a 300-tree GBRT over 300+ features fast. Split quality is
// variance reduction (sum^2/count gain). Trees record per-feature split
// counts and gains — the paper's Table V importance measure is "the number
// of times a feature is used as a split point" across the ensemble.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "ml/model.hpp"
#include "support/rng.hpp"

namespace hcp::ml {

/// Quantile binning of a feature matrix.
class Binner {
 public:
  /// Fits up to `numBins` quantile bins per feature.
  void fit(const std::vector<std::vector<double>>& rows,
           std::uint32_t numBins);

  /// Same, reading rows through the dataset (works on subset views too).
  void fit(const Dataset& data, std::uint32_t numBins);

  /// Streaming fit: gathers features in column blocks sized to
  /// `columnBudgetBytes` of resident doubles, one sequential source pass
  /// per block. Per-feature quantile edges depend only on each column's
  /// value multiset, so the edges are bit-identical to fit() on the
  /// materialized source at any block size and thread count.
  void fitStreamed(const RowSource& source, std::uint32_t numBins,
                   std::size_t columnBudgetBytes = std::size_t{64} << 20);

  /// Bin index of a raw value for a feature.
  std::uint8_t binOf(std::size_t feature, double value) const;

  /// Bins a full row.
  std::vector<std::uint8_t> binRow(const std::vector<double>& row) const;

  /// Raw-value threshold "value <= threshold goes left" for a split at the
  /// upper edge of `bin`.
  double threshold(std::size_t feature, std::uint8_t bin) const;

  std::uint32_t numBins() const { return numBins_; }
  bool fitted() const { return !edges_.empty(); }

 private:
  /// Shared fitting core over an (i, f) -> value accessor.
  void fitImpl(std::size_t n, std::size_t d,
               const std::function<double(std::size_t, std::size_t)>& at,
               std::uint32_t numBins);

  std::uint32_t numBins_ = 0;
  /// edges_[f] holds ascending upper edges; bin i = values <= edges_[f][i].
  std::vector<std::vector<double>> edges_;
};

struct TreeConfig {
  int maxDepth = 4;
  std::size_t minSamplesLeaf = 8;
};

class RegressionTree {
 public:
  /// Fits on pre-binned rows (binned[i][f]) restricted to `rows`, searching
  /// splits only among `features`. Targets are the boosting residuals.
  void fitBinned(const std::vector<std::vector<std::uint8_t>>& binned,
                 const std::vector<double>& targets,
                 std::vector<std::size_t> rows,
                 const std::vector<std::size_t>& features,
                 const Binner& binner, const TreeConfig& config);

  double predict(const std::vector<double>& row) const;
  double predictBinned(const std::vector<std::uint8_t>& row) const;

  /// Convenience: bins internally and fits on a whole dataset.
  void fit(const Dataset& data, const TreeConfig& config = {},
           std::uint32_t numBins = 32);

  std::size_t numNodes() const { return nodes_.size(); }
  int depth() const;

  /// Split statistics per feature index (importance inputs).
  const std::vector<std::uint32_t>& splitCounts() const {
    return splitCounts_;
  }
  const std::vector<double>& splitGains() const { return splitGains_; }

  /// Text serialization (used by ml/serialize).
  void write(std::ostream& os) const;
  void read(std::istream& is);

 private:
  struct Node {
    std::int32_t feature = -1;     ///< -1 = leaf
    std::uint8_t bin = 0;          ///< binned comparison: <= goes left
    double threshold = 0.0;        ///< raw-value comparison
    std::int32_t left = -1, right = -1;
    double value = 0.0;            ///< leaf prediction
  };

  std::int32_t build(const std::vector<std::vector<std::uint8_t>>& binned,
                     const std::vector<double>& targets,
                     std::vector<std::size_t>& rows,
                     const std::vector<std::size_t>& features,
                     const Binner& binner, const TreeConfig& config,
                     int depth);

  std::vector<Node> nodes_;
  std::vector<std::uint32_t> splitCounts_;
  std::vector<double> splitGains_;
  Binner ownBinner_;  ///< used only by the convenience fit()
};

}  // namespace hcp::ml
