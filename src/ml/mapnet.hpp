// Congestion-*map* models: predict the full per-tile V/H utilization grid
// from placement-time grid features, instead of one scalar per IR op.
//
// Three fixed topologies, smallest first (PAPERS.md: Painting-on-Placement
// predicts heatmaps with a conv net; LHNN passes messages over the tile
// lattice):
//
//   tilelinear  one shared linear map per tile (1x1 conv, C -> 2 heads) —
//               the baseline every learned variant must beat
//   conv        3x3 conv (C -> H) + ReLU + 3x3 conv (H -> 2): each tile sees
//               its 5x5 neighbourhood of features
//   lattice     1x1 embed (C -> H) + R rounds of von-Neumann message
//               passing (self + neighbour-mean linear maps, ReLU) + 1x1
//               head — LHNN's lattice formulation on our grid
//
// All three are trained with plain SGD (per-sample updates, epoch-shuffled
// by the model's own Rng) on standardized inputs and targets, under the
// repository's determinism contract: the same samples and seed produce
// byte-identical weights at any --threads value. Parallel work (forward
// planes, weight-gradient accumulation) is split so each task owns its
// output slice and every floating-point sum runs in one fixed order.
//
// Serialization mirrors ml/serialize: header `hcp-mapmodel <topology> 1`,
// 17-digit doubles, loud failures (truncation, NaN weights, tensor-shape
// mismatches all throw hcp::Error; loadMapModelFromFile names the file).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "support/rng.hpp"

namespace hcp::ml {

/// One grid of input feature channels (row-major, width*height each). The
/// channel order contract is features::GridFeatures::channels().
struct GridSample {
  std::uint32_t width = 0;
  std::uint32_t height = 0;
  std::vector<std::vector<double>> channels;

  std::size_t numTiles() const {
    return static_cast<std::size_t>(width) * height;
  }
};

/// A training example: features plus the routed ground-truth maps (percent
/// utilization per tile, the fpga::CongestionMap vUtil/hUtil values).
struct MapSample {
  GridSample grid;
  std::vector<double> vTarget;
  std::vector<double> hTarget;
};

/// A predicted (or ground-truth) V/H congestion map artifact. Serialized
/// through the shared text machinery, written via CheckedFileWriter (site
/// "mapout"), so it caches / fault-injects like every other artifact.
struct MapPrediction {
  std::uint32_t width = 0;
  std::uint32_t height = 0;
  std::vector<double> vUtil;  ///< percent, row-major width*height
  std::vector<double> hUtil;

  std::size_t numTiles() const {
    return static_cast<std::size_t>(width) * height;
  }
  double maxVUtil() const;
  double maxHUtil() const;
  /// Tiles whose V or H utilization exceeds `thresholdPercent`.
  std::size_t tilesOver(double thresholdPercent) const;

  /// ASCII heat map, same glyph scale as fpga::CongestionMap::toAscii.
  std::string toAscii(bool vertical) const;
  /// CSV with columns x,y,v_util,h_util (fig1_map_*.csv schema).
  std::string toCsv() const;

  void write(std::ostream& os) const;
  static MapPrediction read(std::istream& is);
};

void saveMapPrediction(const MapPrediction& map, std::ostream& os);
/// Reads one map and rejects trailing garbage.
MapPrediction loadMapPrediction(std::istream& is);
/// Atomic, verified write (failpoint site "mapout"). Throws hcp::IoError.
void saveMapPredictionToFile(const MapPrediction& map,
                             const std::string& path);
/// Throws hcp::Error naming `path` on any parse failure.
MapPrediction loadMapPredictionFromFile(const std::string& path);

struct MapNetConfig {
  enum class Topology : std::uint8_t { kTileLinear, kConv, kLattice };
  Topology topology = Topology::kConv;
  std::size_t hiddenChannels = 8;  ///< conv / lattice hidden width
  std::size_t rounds = 2;          ///< lattice message-passing rounds
  std::size_t epochs = 40;
  double learningRate = 0.05;
  double l2 = 1e-5;
  std::uint64_t seed = 7;
};

std::string_view topologyName(MapNetConfig::Topology t);
/// Throws hcp::Error on an unknown name (valid: tilelinear, conv, lattice).
MapNetConfig::Topology topologyFromName(const std::string& name);

class MapNet {
 public:
  explicit MapNet(MapNetConfig config = {}) : config_(std::move(config)) {}

  /// Trains on `data` (all samples must share the channel count; grid sizes
  /// may differ — the weights are shared across tiles). Deterministic under
  /// config.seed at any thread count.
  void fit(const std::vector<MapSample>& data);

  /// Predicts the V/H maps for one feature grid. Throws hcp::Error when the
  /// sample's channel count does not match the trained model.
  MapPrediction predict(const GridSample& grid) const;

  const MapNetConfig& config() const { return config_; }
  std::size_t inChannels() const { return inChannels_; }
  /// Mean training loss (standardized MSE) over the final epoch.
  double finalLoss() const { return finalLoss_; }
  std::size_t epochsRun() const { return epochsRun_; }

  /// Text serialization (saveMapModel / loadMapModel call these).
  void write(std::ostream& os) const;
  void read(std::istream& is);

 private:
  struct Workspace;
  void initWeights(Rng& rng);
  void forward(const std::vector<std::vector<double>>& x, std::uint32_t w,
               std::uint32_t h, Workspace& ws) const;
  double backwardAndStep(const MapSample& sample,
                         const std::vector<std::vector<double>>& x,
                         const std::vector<double>& tv,
                         const std::vector<double>& th, Workspace& ws);
  void checkShapes() const;

  MapNetConfig config_;
  std::size_t inChannels_ = 0;
  std::vector<double> featMean_, featStd_;           ///< per input channel
  double vMean_ = 0.0, vStd_ = 1.0;                  ///< target scaling
  double hMean_ = 0.0, hStd_ = 1.0;
  // Weight storage by topology (unused tensors stay empty):
  //   tilelinear: w1 [2][C], b1 [2]
  //   conv:       w1 [H][C][9], b1 [H], w2 [2][H][9], b2 [2]
  //   lattice:    w1 [H][C] embed, b1 [H], wSelf/wMsg [R][H][H],
  //               bRound [R][H], w2 [2][H] head, b2 [2]
  std::vector<double> w1_, b1_, w2_, b2_;
  std::vector<double> wSelf_, wMsg_, bRound_;
  std::size_t epochsRun_ = 0;
  double finalLoss_ = 0.0;
};

void saveMapModel(const MapNet& model, std::ostream& os);
MapNet loadMapModel(std::istream& is);
/// Atomic, verified write (failpoint site "mapmodel"). Throws hcp::IoError.
void saveMapModelToFile(const MapNet& model, const std::string& path);
/// Throws hcp::Error naming `path`; rejects trailing garbage.
MapNet loadMapModelFromFile(const std::string& path);

}  // namespace hcp::ml
