// Lasso linear regression (paper §III-C2): least squares with an
// L1-regularization penalty whose strength (alpha) controls weight sparsity.
// Solved by cyclic coordinate descent with soft-thresholding on
// standardized features.
#pragma once

#include <string>

#include "ml/model.hpp"

namespace hcp::ml {

struct LassoConfig {
  double alpha = 0.1;   ///< L1 strength (the paper's tuning parameter)
  int maxIterations = 400;
  double tolerance = 1e-5;
};

class LassoRegression : public Regressor {
 public:
  explicit LassoRegression(LassoConfig config = {}) : config_(config) {}

  void fit(const Dataset& data) override;
  /// Bounded-memory fit: one scaler pass pair plus one Gram-accumulation
  /// pass over the source; working state is O(d^2), independent of the
  /// sample count. fit() routes through the same implementation, so the
  /// streamed and in-memory models are byte-identical.
  void fitStreaming(const RowSource& source) override;
  double predict(const std::vector<double>& row) const override;
  std::string name() const override { return "Linear"; }

  /// Weights in standardized feature space (sparsity inspection).
  const std::vector<double>& weights() const { return weights_; }
  std::size_t nonZeroWeights() const;
  int iterationsRun() const { return iterationsRun_; }

  /// Text serialization (used by ml/serialize).
  void write(std::ostream& os) const;
  void read(std::istream& is);

 private:
  void fitFromSource(const RowSource& source);

  LassoConfig config_;
  StandardScaler scaler_;
  std::vector<double> weights_;
  double intercept_ = 0.0;
  int iterationsRun_ = 0;
};

}  // namespace hcp::ml
