// Gradient Boosted Regression Trees (paper §III-C2): a stage-wise ensemble
// of shallow CART trees fit to least-squares gradients (residuals), with
// shrinkage, row subsampling and per-tree feature subsampling. The paper's
// best model; its split-count feature importance drives Table V.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ml/tree.hpp"

namespace hcp::ml {

struct GbrtConfig {
  std::size_t numEstimators = 300;
  double learningRate = 0.08;
  int maxDepth = 4;
  std::size_t minSamplesLeaf = 8;
  double subsample = 0.8;        ///< row fraction per stage
  double featureFraction = 0.4;  ///< feature fraction per stage
  std::uint32_t numBins = 32;
  std::uint64_t seed = 13;
};

class Gbrt : public Regressor {
 public:
  explicit Gbrt(GbrtConfig config = {}) : config_(config) {}

  void fit(const Dataset& data) override;
  /// Streaming fit: quantile edges come from the feature-block streamed
  /// binner and the raw feature matrix is never materialized — only the
  /// uint8 binned matrix (one byte per value, ~24x smaller than the three
  /// resident double datasets of the in-memory build) plus the targets stay
  /// in memory for the boosting stages. fit() routes through the same
  /// implementation, so streamed and in-memory models are byte-identical.
  void fitStreaming(const RowSource& source) override;
  double predict(const std::vector<double>& row) const override;
  std::string name() const override { return "GBRT"; }

  /// Normalized per-feature importance: fraction of ensemble splits using
  /// each feature (the paper's measure). Sums to 1 (or is all-zero if the
  /// ensemble never split).
  std::vector<double> featureImportance() const;

  /// Gain-weighted variant for comparison.
  std::vector<double> featureImportanceByGain() const;

  std::size_t numTrees() const { return trees_.size(); }
  double trainLoss() const { return trainLoss_; }

  /// Text serialization (used by ml/serialize).
  void write(std::ostream& os) const;
  void read(std::istream& is);

 private:
  void fitFromSource(const RowSource& source);

  GbrtConfig config_;
  Binner binner_;
  double baseline_ = 0.0;
  std::vector<RegressionTree> trees_;
  std::size_t numFeatures_ = 0;
  double trainLoss_ = 0.0;
};

}  // namespace hcp::ml
