// Model persistence: a trained predictor is the whole point of the method —
// train once on implemented designs, then reuse across projects without
// another place-and-route. Models serialize to a line-oriented text format
// (architecture-independent, diff-friendly); loading restores bit-identical
// predictions.
#pragma once

#include <istream>
#include <memory>
#include <ostream>
#include <string>

#include "ml/model.hpp"

namespace hcp::ml {

class LassoRegression;
class MlpRegressor;
class Gbrt;

/// Writes any supported regressor with a type tag.
void saveModel(const Regressor& model, std::ostream& os);

/// Reads a regressor previously written by saveModel. Throws hcp::Error on
/// malformed input or unknown type tags.
std::unique_ptr<Regressor> loadModel(std::istream& is);

/// File-path conveniences.
void saveModelToFile(const Regressor& model, const std::string& path);
std::unique_ptr<Regressor> loadModelFromFile(const std::string& path);

}  // namespace hcp::ml
