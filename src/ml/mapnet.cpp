#include "ml/mapnet.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

#include "support/error.hpp"
#include "support/parallel.hpp"
#include "support/telemetry.hpp"
#include "support/textio.hpp"

namespace hcp::ml {

namespace txt = support::txt;

namespace {

using Plane = std::vector<double>;
using Planes = std::vector<Plane>;

/// 3x3 cross-correlation with zero padding. Weight layout is
/// w[(oc*cin + ic)*9 + ky*3 + kx]. Each output channel is computed by one
/// task that sums taps in a fixed pixel order, so the result is
/// bit-identical at any thread count.
void conv3x3Forward(const Planes& in, const std::vector<double>& w,
                    const std::vector<double>& b, std::size_t cout,
                    std::uint32_t width, std::uint32_t height, Planes& out) {
  const std::size_t cin = in.size();
  const std::size_t n = static_cast<std::size_t>(width) * height;
  out.resize(cout);
  support::parallelFor(0, cout, 1, [&](std::size_t oc) {
    Plane& o = out[oc];
    o.assign(n, b[oc]);
    for (std::size_t ic = 0; ic < cin; ++ic) {
      const Plane& x = in[ic];
      const double* tap = &w[(oc * cin + ic) * 9];
      for (std::uint32_t y = 0; y < height; ++y) {
        for (std::uint32_t xx = 0; xx < width; ++xx) {
          double s = 0.0;
          for (int ky = 0; ky < 3; ++ky) {
            const int sy = static_cast<int>(y) + ky - 1;
            if (sy < 0 || sy >= static_cast<int>(height)) continue;
            for (int kx = 0; kx < 3; ++kx) {
              const int sx = static_cast<int>(xx) + kx - 1;
              if (sx < 0 || sx >= static_cast<int>(width)) continue;
              s += tap[ky * 3 + kx] *
                   x[static_cast<std::size_t>(sy) * width + sx];
            }
          }
          o[static_cast<std::size_t>(y) * width + xx] += s;
        }
      }
    }
  });
}

/// dW for the 3x3 correlation: gw[(oc*cin+ic)*9+k] = sum_p dZ[oc][p] *
/// X[ic][p shifted by k]. One task per output channel, fixed inner order.
void conv3x3GradW(const Planes& in, const Planes& dz, std::size_t cout,
                  std::uint32_t width, std::uint32_t height,
                  std::vector<double>& gw, std::vector<double>& gb) {
  const std::size_t cin = in.size();
  gw.assign(cout * cin * 9, 0.0);
  gb.assign(cout, 0.0);
  support::parallelFor(0, cout, 1, [&](std::size_t oc) {
    const Plane& d = dz[oc];
    double bs = 0.0;
    for (double v : d) bs += v;
    gb[oc] = bs;
    for (std::size_t ic = 0; ic < cin; ++ic) {
      const Plane& x = in[ic];
      double* g = &gw[(oc * cin + ic) * 9];
      for (std::uint32_t y = 0; y < height; ++y) {
        for (std::uint32_t xx = 0; xx < width; ++xx) {
          const double dv = d[static_cast<std::size_t>(y) * width + xx];
          if (dv == 0.0) continue;
          for (int ky = 0; ky < 3; ++ky) {
            const int sy = static_cast<int>(y) + ky - 1;
            if (sy < 0 || sy >= static_cast<int>(height)) continue;
            for (int kx = 0; kx < 3; ++kx) {
              const int sx = static_cast<int>(xx) + kx - 1;
              if (sx < 0 || sx >= static_cast<int>(width)) continue;
              g[ky * 3 + kx] +=
                  dv * x[static_cast<std::size_t>(sy) * width + sx];
            }
          }
        }
      }
    }
  });
}

/// dX for the 3x3 correlation. One task per *input* channel.
void conv3x3GradIn(const Planes& dz, const std::vector<double>& w,
                   std::size_t cin, std::uint32_t width, std::uint32_t height,
                   Planes& dx) {
  const std::size_t cout = dz.size();
  const std::size_t n = static_cast<std::size_t>(width) * height;
  dx.resize(cin);
  support::parallelFor(0, cin, 1, [&](std::size_t ic) {
    Plane& g = dx[ic];
    g.assign(n, 0.0);
    for (std::size_t oc = 0; oc < cout; ++oc) {
      const Plane& d = dz[oc];
      const double* tap = &w[(oc * cin + ic) * 9];
      for (std::uint32_t y = 0; y < height; ++y) {
        for (std::uint32_t xx = 0; xx < width; ++xx) {
          double s = 0.0;
          for (int ky = 0; ky < 3; ++ky) {
            const int sy = static_cast<int>(y) - (ky - 1);
            if (sy < 0 || sy >= static_cast<int>(height)) continue;
            for (int kx = 0; kx < 3; ++kx) {
              const int sx = static_cast<int>(xx) - (kx - 1);
              if (sx < 0 || sx >= static_cast<int>(width)) continue;
              s += tap[ky * 3 + kx] *
                   d[static_cast<std::size_t>(sy) * width + sx];
            }
          }
          g[static_cast<std::size_t>(y) * width + xx] += s;
        }
      }
    }
  });
}

/// 1x1 "conv": out[o][p] = b[o] + sum_c w[o*cin+c] * in[c][p].
void pointwiseForward(const Planes& in, const std::vector<double>& w,
                      const std::vector<double>& b, std::size_t cout,
                      Planes& out) {
  const std::size_t cin = in.size();
  const std::size_t n = in.empty() ? 0 : in[0].size();
  out.resize(cout);
  support::parallelFor(0, cout, 1, [&](std::size_t oc) {
    Plane& o = out[oc];
    o.assign(n, b[oc]);
    for (std::size_t ic = 0; ic < cin; ++ic) {
      const double wv = w[oc * cin + ic];
      const Plane& x = in[ic];
      for (std::size_t p = 0; p < n; ++p) o[p] += wv * x[p];
    }
  });
}

void pointwiseGradW(const Planes& in, const Planes& dz,
                    std::vector<double>& gw, std::vector<double>& gb) {
  const std::size_t cin = in.size();
  const std::size_t cout = dz.size();
  gw.assign(cout * cin, 0.0);
  gb.assign(cout, 0.0);
  support::parallelFor(0, cout, 1, [&](std::size_t oc) {
    const Plane& d = dz[oc];
    double bs = 0.0;
    for (double v : d) bs += v;
    gb[oc] = bs;
    for (std::size_t ic = 0; ic < cin; ++ic) {
      const Plane& x = in[ic];
      double s = 0.0;
      for (std::size_t p = 0; p < d.size(); ++p) s += d[p] * x[p];
      gw[oc * cin + ic] = s;
    }
  });
}

/// dX of the 1x1: dx[c][p] = sum_o w[o*cin+c] * dz[o][p].
void pointwiseGradIn(const Planes& dz, const std::vector<double>& w,
                     std::size_t cin, Planes& dx) {
  const std::size_t cout = dz.size();
  const std::size_t n = dz.empty() ? 0 : dz[0].size();
  dx.resize(cin);
  support::parallelFor(0, cin, 1, [&](std::size_t ic) {
    Plane& g = dx[ic];
    g.assign(n, 0.0);
    for (std::size_t oc = 0; oc < cout; ++oc) {
      const double wv = w[oc * cin + ic];
      const Plane& d = dz[oc];
      for (std::size_t p = 0; p < n; ++p) g[p] += wv * d[p];
    }
  });
}

/// Reciprocal von-Neumann neighbour counts per pixel; 0 when a pixel has no
/// in-grid neighbours (a 1x1 grid — messages are defined as zero there).
std::vector<double> neighbourInvCounts(std::uint32_t width,
                                       std::uint32_t height) {
  const std::size_t n = static_cast<std::size_t>(width) * height;
  std::vector<double> inv(n, 0.0);
  for (std::uint32_t y = 0; y < height; ++y) {
    for (std::uint32_t x = 0; x < width; ++x) {
      int k = 0;
      if (x > 0) ++k;
      if (x + 1 < width) ++k;
      if (y > 0) ++k;
      if (y + 1 < height) ++k;
      if (k > 0) inv[static_cast<std::size_t>(y) * width + x] = 1.0 / k;
    }
  }
  return inv;
}

/// msg[c][p] = mean of in-grid von-Neumann neighbours of in[c][.].
void neighbourMean(const Planes& in, const std::vector<double>& inv,
                   std::uint32_t width, std::uint32_t height, Planes& out) {
  const std::size_t n = static_cast<std::size_t>(width) * height;
  out.resize(in.size());
  support::parallelFor(0, in.size(), 1, [&](std::size_t c) {
    const Plane& x = in[c];
    Plane& o = out[c];
    o.assign(n, 0.0);
    for (std::uint32_t y = 0; y < height; ++y) {
      for (std::uint32_t xx = 0; xx < width; ++xx) {
        const std::size_t p = static_cast<std::size_t>(y) * width + xx;
        if (inv[p] == 0.0) continue;
        double s = 0.0;
        if (xx > 0) s += x[p - 1];
        if (xx + 1 < width) s += x[p + 1];
        if (y > 0) s += x[p - width];
        if (y + 1 < height) s += x[p + width];
        o[p] = s * inv[p];
      }
    }
  });
}

/// Adjoint of neighbourMean: da[c][q] += sum over neighbours p of q of
/// dm[c][p] * inv[p]. The neighbour relation is symmetric, so each output
/// pixel reads its neighbours — no write races.
void neighbourMeanAdjoint(const Planes& dm, const std::vector<double>& inv,
                          std::uint32_t width, std::uint32_t height,
                          Planes& da) {
  support::parallelFor(0, dm.size(), 1, [&](std::size_t c) {
    const Plane& d = dm[c];
    Plane& o = da[c];
    for (std::uint32_t y = 0; y < height; ++y) {
      for (std::uint32_t xx = 0; xx < width; ++xx) {
        const std::size_t p = static_cast<std::size_t>(y) * width + xx;
        double s = 0.0;
        if (xx > 0) s += d[p - 1] * inv[p - 1];
        if (xx + 1 < width) s += d[p + 1] * inv[p + 1];
        if (y > 0) s += d[p - width] * inv[p - width];
        if (y + 1 < height) s += d[p + width] * inv[p + width];
        o[p] += s;
      }
    }
  });
}

void reluInPlace(Planes& a) {
  for (Plane& p : a)
    for (double& v : p) v = v > 0.0 ? v : 0.0;
}

/// dz = da masked by pre-activation sign.
void reluBackward(const Planes& pre, Planes& da) {
  for (std::size_t c = 0; c < da.size(); ++c)
    for (std::size_t p = 0; p < da[c].size(); ++p)
      if (pre[c][p] <= 0.0) da[c][p] = 0.0;
}

void sgdStep(std::vector<double>& w, const std::vector<double>& g, double lr,
             double l2) {
  for (std::size_t i = 0; i < w.size(); ++i) w[i] -= lr * (g[i] + l2 * w[i]);
}

void checkFinite(const std::vector<double>& v, const char* what) {
  for (double x : v)
    HCP_CHECK_MSG(std::isfinite(x), "mapnet: non-finite value in " << what);
}

}  // namespace

// --- MapPrediction ---------------------------------------------------------

double MapPrediction::maxVUtil() const {
  double m = 0.0;
  for (double v : vUtil) m = std::max(m, v);
  return m;
}

double MapPrediction::maxHUtil() const {
  double m = 0.0;
  for (double v : hUtil) m = std::max(m, v);
  return m;
}

std::size_t MapPrediction::tilesOver(double thresholdPercent) const {
  std::size_t n = 0;
  for (std::size_t i = 0; i < vUtil.size(); ++i)
    if (vUtil[i] > thresholdPercent || hUtil[i] > thresholdPercent) ++n;
  return n;
}

std::string MapPrediction::toAscii(bool vertical) const {
  std::ostringstream os;
  const std::vector<double>& u = vertical ? vUtil : hUtil;
  for (std::uint32_t row = 0; row < height; ++row) {
    const std::uint32_t y = height - 1 - row;  // row 0 on top
    for (std::uint32_t x = 0; x < width; ++x) {
      const double v = u[static_cast<std::size_t>(y) * width + x];
      char c = '.';
      if (v >= 100.0) c = '@';
      else if (v >= 75.0) c = '#';
      else if (v >= 50.0) c = '+';
      else if (v >= 25.0) c = ':';
      os << c;
    }
    os << "\n";
  }
  return os.str();
}

std::string MapPrediction::toCsv() const {
  std::ostringstream os;
  os << "x,y,v_util,h_util\n";
  for (std::uint32_t y = 0; y < height; ++y)
    for (std::uint32_t x = 0; x < width; ++x) {
      const std::size_t i = static_cast<std::size_t>(y) * width + x;
      os << x << "," << y << "," << vUtil[i] << "," << hUtil[i] << "\n";
    }
  return os.str();
}

void MapPrediction::write(std::ostream& os) const {
  txt::preparePrecision(os);
  os << "hcp-map 1\n" << width << ' ' << height << '\n';
  os << "vutil ";
  txt::writeVec(os, vUtil);
  os << "\nhutil ";
  txt::writeVec(os, hUtil);
  os << '\n';
}

MapPrediction MapPrediction::read(std::istream& is) {
  txt::expect(is, "hcp-map");
  const int version = txt::read<int>(is, "map version");
  HCP_CHECK_MSG(version == 1, "unsupported map version " << version);
  MapPrediction map;
  map.width = txt::read<std::uint32_t>(is, "map width");
  map.height = txt::read<std::uint32_t>(is, "map height");
  txt::expect(is, "vutil");
  map.vUtil = txt::readVec<double>(is, "vutil");
  txt::expect(is, "hutil");
  map.hUtil = txt::readVec<double>(is, "hutil");
  HCP_CHECK_MSG(
      map.vUtil.size() == map.numTiles() && map.hUtil.size() == map.numTiles(),
      "map grid shape mismatch: " << map.width << "x" << map.height
                                  << " grid with " << map.vUtil.size() << "/"
                                  << map.hUtil.size() << " tile values");
  checkFinite(map.vUtil, "vutil");
  checkFinite(map.hUtil, "hutil");
  return map;
}

void saveMapPrediction(const MapPrediction& map, std::ostream& os) {
  map.write(os);
  HCP_CHECK_MSG(os.good(), "map write failed");
}

MapPrediction loadMapPrediction(std::istream& is) {
  MapPrediction map = MapPrediction::read(is);
  txt::expectEnd(is, "congestion map");
  return map;
}

void saveMapPredictionToFile(const MapPrediction& map,
                             const std::string& path) {
  support::txt::CheckedFileWriter writer(path, "mapout");
  saveMapPrediction(map, writer.stream());
  writer.commit();
}

MapPrediction loadMapPredictionFromFile(const std::string& path) {
  std::ifstream is(path);
  HCP_CHECK_MSG(is.good(), "cannot open " << path);
  try {
    return loadMapPrediction(is);
  } catch (const Error& e) {
    throw Error(std::string(e.what()) + " [map file: " + path + "]");
  }
}

// --- MapNet ----------------------------------------------------------------

std::string_view topologyName(MapNetConfig::Topology t) {
  switch (t) {
    case MapNetConfig::Topology::kTileLinear: return "tilelinear";
    case MapNetConfig::Topology::kConv: return "conv";
    case MapNetConfig::Topology::kLattice: return "lattice";
  }
  return "?";
}

MapNetConfig::Topology topologyFromName(const std::string& name) {
  if (name == "tilelinear") return MapNetConfig::Topology::kTileLinear;
  if (name == "conv") return MapNetConfig::Topology::kConv;
  if (name == "lattice") return MapNetConfig::Topology::kLattice;
  HCP_CHECK_MSG(false, "unknown map-model topology '"
                           << name
                           << "' (valid: tilelinear, conv, lattice)");
  return MapNetConfig::Topology::kConv;
}

struct MapNet::Workspace {
  std::uint32_t width = 0, height = 0;
  std::vector<double> inv;  ///< neighbour reciprocal counts (lattice)
  Planes z1, a1;            ///< first-stage pre/post activation
  Planes yhat;              ///< [2][N] standardized heads
  // Lattice round storage: act[0] is the embed activation.
  std::vector<Planes> pre, act, msg;
  // Gradient scratch, reused across samples.
  Planes dY, dA, dB, dM;
  std::vector<double> gw1, gb1, gw2, gb2, gSelf, gMsg, gbRound;
};

void MapNet::initWeights(Rng& rng) {
  const std::size_t c = inChannels_;
  const std::size_t h = config_.hiddenChannels;
  const std::size_t r = config_.rounds;
  auto fill = [&](std::vector<double>& w, std::size_t n, std::size_t fanIn) {
    w.resize(n);
    const double scale = 1.0 / std::sqrt(static_cast<double>(fanIn));
    for (double& v : w) v = rng.normal(0.0, scale);
  };
  w1_.clear(); b1_.clear(); w2_.clear(); b2_.clear();
  wSelf_.clear(); wMsg_.clear(); bRound_.clear();
  switch (config_.topology) {
    case MapNetConfig::Topology::kTileLinear:
      fill(w1_, 2 * c, c);
      b1_.assign(2, 0.0);
      break;
    case MapNetConfig::Topology::kConv:
      fill(w1_, h * c * 9, c * 9);
      b1_.assign(h, 0.0);
      fill(w2_, 2 * h * 9, h * 9);
      b2_.assign(2, 0.0);
      break;
    case MapNetConfig::Topology::kLattice:
      fill(w1_, h * c, c);
      b1_.assign(h, 0.0);
      fill(wSelf_, r * h * h, 2 * h);
      fill(wMsg_, r * h * h, 2 * h);
      bRound_.assign(r * h, 0.0);
      fill(w2_, 2 * h, h);
      b2_.assign(2, 0.0);
      break;
  }
}

void MapNet::forward(const Planes& x, std::uint32_t w, std::uint32_t h,
                     Workspace& ws) const {
  const std::size_t hid = config_.hiddenChannels;
  if (ws.width != w || ws.height != h) {
    ws.width = w;
    ws.height = h;
    ws.inv = config_.topology == MapNetConfig::Topology::kLattice
                 ? neighbourInvCounts(w, h)
                 : std::vector<double>{};
  }
  switch (config_.topology) {
    case MapNetConfig::Topology::kTileLinear:
      pointwiseForward(x, w1_, b1_, 2, ws.yhat);
      break;
    case MapNetConfig::Topology::kConv:
      conv3x3Forward(x, w1_, b1_, hid, w, h, ws.z1);
      ws.a1 = ws.z1;
      reluInPlace(ws.a1);
      conv3x3Forward(ws.a1, w2_, b2_, 2, w, h, ws.yhat);
      break;
    case MapNetConfig::Topology::kLattice: {
      const std::size_t rounds = config_.rounds;
      pointwiseForward(x, w1_, b1_, hid, ws.z1);
      ws.act.assign(rounds + 1, Planes{});
      ws.pre.assign(rounds + 1, Planes{});
      ws.msg.assign(rounds, Planes{});
      ws.act[0] = ws.z1;
      reluInPlace(ws.act[0]);
      for (std::size_t r = 0; r < rounds; ++r) {
        neighbourMean(ws.act[r], ws.inv, w, h, ws.msg[r]);
        Planes self, msg;
        pointwiseForward(
            ws.act[r],
            {wSelf_.begin() + static_cast<std::ptrdiff_t>(r * hid * hid),
             wSelf_.begin() + static_cast<std::ptrdiff_t>((r + 1) * hid * hid)},
            {bRound_.begin() + static_cast<std::ptrdiff_t>(r * hid),
             bRound_.begin() + static_cast<std::ptrdiff_t>((r + 1) * hid)},
            hid, self);
        pointwiseForward(
            ws.msg[r],
            {wMsg_.begin() + static_cast<std::ptrdiff_t>(r * hid * hid),
             wMsg_.begin() + static_cast<std::ptrdiff_t>((r + 1) * hid * hid)},
            std::vector<double>(hid, 0.0), hid, msg);
        Planes& pre = ws.pre[r + 1];
        pre = std::move(self);
        for (std::size_t c = 0; c < hid; ++c)
          for (std::size_t p = 0; p < pre[c].size(); ++p)
            pre[c][p] += msg[c][p];
        ws.act[r + 1] = pre;
        reluInPlace(ws.act[r + 1]);
      }
      pointwiseForward(ws.act[rounds], w2_, b2_, 2, ws.yhat);
      break;
    }
  }
}

double MapNet::backwardAndStep(const MapSample&, const Planes& x,
                               const std::vector<double>& tv,
                               const std::vector<double>& th, Workspace& ws) {
  const std::size_t n = tv.size();
  const double invN = n == 0 ? 0.0 : 1.0 / static_cast<double>(n);
  const std::size_t hid = config_.hiddenChannels;
  const double lr = config_.learningRate;
  const double l2 = config_.l2;

  // Loss and output gradient in standardized space: L = 1/(2N) sum of
  // squared errors over both heads.
  double loss = 0.0;
  ws.dY.assign(2, Plane(n, 0.0));
  for (std::size_t p = 0; p < n; ++p) {
    const double dv = ws.yhat[0][p] - tv[p];
    const double dh = ws.yhat[1][p] - th[p];
    loss += dv * dv + dh * dh;
    ws.dY[0][p] = dv * invN;
    ws.dY[1][p] = dh * invN;
  }
  loss *= 0.5 * invN;

  switch (config_.topology) {
    case MapNetConfig::Topology::kTileLinear:
      pointwiseGradW(x, ws.dY, ws.gw1, ws.gb1);
      sgdStep(w1_, ws.gw1, lr, l2);
      sgdStep(b1_, ws.gb1, lr, 0.0);
      break;
    case MapNetConfig::Topology::kConv: {
      conv3x3GradW(ws.a1, ws.dY, 2, ws.width, ws.height, ws.gw2, ws.gb2);
      conv3x3GradIn(ws.dY, w2_, hid, ws.width, ws.height, ws.dA);
      reluBackward(ws.z1, ws.dA);
      conv3x3GradW(x, ws.dA, hid, ws.width, ws.height, ws.gw1, ws.gb1);
      sgdStep(w1_, ws.gw1, lr, l2);
      sgdStep(b1_, ws.gb1, lr, 0.0);
      sgdStep(w2_, ws.gw2, lr, l2);
      sgdStep(b2_, ws.gb2, lr, 0.0);
      break;
    }
    case MapNetConfig::Topology::kLattice: {
      const std::size_t rounds = config_.rounds;
      pointwiseGradW(ws.act[rounds], ws.dY, ws.gw2, ws.gb2);
      pointwiseGradIn(ws.dY, w2_, hid, ws.dA);
      ws.gSelf.assign(wSelf_.size(), 0.0);
      ws.gMsg.assign(wMsg_.size(), 0.0);
      ws.gbRound.assign(bRound_.size(), 0.0);
      for (std::size_t r = rounds; r > 0; --r) {
        reluBackward(ws.pre[r], ws.dA);  // dA is now dZ of round r
        const std::vector<double> wSelfR(
            wSelf_.begin() + static_cast<std::ptrdiff_t>((r - 1) * hid * hid),
            wSelf_.begin() + static_cast<std::ptrdiff_t>(r * hid * hid));
        const std::vector<double> wMsgR(
            wMsg_.begin() + static_cast<std::ptrdiff_t>((r - 1) * hid * hid),
            wMsg_.begin() + static_cast<std::ptrdiff_t>(r * hid * hid));
        std::vector<double> gs, gbs, gm, gmb;
        pointwiseGradW(ws.act[r - 1], ws.dA, gs, gbs);
        pointwiseGradW(ws.msg[r - 1], ws.dA, gm, gmb);
        for (std::size_t i = 0; i < gs.size(); ++i) {
          ws.gSelf[(r - 1) * hid * hid + i] = gs[i];
          ws.gMsg[(r - 1) * hid * hid + i] = gm[i];
        }
        for (std::size_t i = 0; i < gbs.size(); ++i)
          ws.gbRound[(r - 1) * hid + i] = gbs[i];
        pointwiseGradIn(ws.dA, wSelfR, hid, ws.dB);
        pointwiseGradIn(ws.dA, wMsgR, hid, ws.dM);
        neighbourMeanAdjoint(ws.dM, ws.inv, ws.width, ws.height, ws.dB);
        ws.dA = std::move(ws.dB);
      }
      reluBackward(ws.z1, ws.dA);
      pointwiseGradW(x, ws.dA, ws.gw1, ws.gb1);
      sgdStep(w1_, ws.gw1, lr, l2);
      sgdStep(b1_, ws.gb1, lr, 0.0);
      sgdStep(wSelf_, ws.gSelf, lr, l2);
      sgdStep(wMsg_, ws.gMsg, lr, l2);
      sgdStep(bRound_, ws.gbRound, lr, 0.0);
      sgdStep(w2_, ws.gw2, lr, l2);
      sgdStep(b2_, ws.gb2, lr, 0.0);
      break;
    }
  }
  return loss;
}

void MapNet::fit(const std::vector<MapSample>& data) {
  HCP_SPAN("mapnet_fit");
  HCP_CHECK_MSG(!data.empty(), "mapnet: empty training set");
  inChannels_ = data[0].grid.channels.size();
  HCP_CHECK_MSG(inChannels_ > 0, "mapnet: samples have no feature channels");
  for (const MapSample& s : data) {
    HCP_CHECK_MSG(s.grid.channels.size() == inChannels_,
                  "mapnet: inconsistent channel counts ("
                      << s.grid.channels.size() << " vs " << inChannels_
                      << ")");
    const std::size_t n = s.grid.numTiles();
    for (const auto& c : s.grid.channels)
      HCP_CHECK_MSG(c.size() == n, "mapnet: channel size " << c.size()
                                       << " != " << n << " tiles");
    HCP_CHECK_MSG(s.vTarget.size() == n && s.hTarget.size() == n,
                  "mapnet: target size mismatch");
  }

  // Per-channel input standardization and per-head target standardization,
  // accumulated in one fixed order.
  featMean_.assign(inChannels_, 0.0);
  featStd_.assign(inChannels_, 1.0);
  std::size_t total = 0;
  for (const MapSample& s : data) total += s.grid.numTiles();
  HCP_CHECK_MSG(total > 0, "mapnet: training set has no tiles");
  const double invTotal = 1.0 / static_cast<double>(total);
  for (std::size_t c = 0; c < inChannels_; ++c) {
    double sum = 0.0;
    for (const MapSample& s : data)
      for (double v : s.grid.channels[c]) sum += v;
    const double mean = sum * invTotal;
    double var = 0.0;
    for (const MapSample& s : data)
      for (double v : s.grid.channels[c]) var += (v - mean) * (v - mean);
    var *= invTotal;
    featMean_[c] = mean;
    featStd_[c] = var > 1e-24 ? std::sqrt(var) : 1.0;
  }
  auto targetStats = [&](auto pick, double& mean, double& std) {
    double sum = 0.0;
    for (const MapSample& s : data)
      for (double v : pick(s)) sum += v;
    mean = sum * invTotal;
    double var = 0.0;
    for (const MapSample& s : data)
      for (double v : pick(s)) var += (v - mean) * (v - mean);
    var *= invTotal;
    std = var > 1e-24 ? std::sqrt(var) : 1.0;
  };
  targetStats([](const MapSample& s) -> const std::vector<double>& {
    return s.vTarget;
  }, vMean_, vStd_);
  targetStats([](const MapSample& s) -> const std::vector<double>& {
    return s.hTarget;
  }, hMean_, hStd_);

  // Standardized copies, built once.
  std::vector<Planes> xs(data.size());
  std::vector<std::vector<double>> tvs(data.size()), ths(data.size());
  for (std::size_t s = 0; s < data.size(); ++s) {
    const std::size_t n = data[s].grid.numTiles();
    xs[s].resize(inChannels_);
    for (std::size_t c = 0; c < inChannels_; ++c) {
      xs[s][c].resize(n);
      for (std::size_t p = 0; p < n; ++p)
        xs[s][c][p] =
            (data[s].grid.channels[c][p] - featMean_[c]) / featStd_[c];
    }
    tvs[s].resize(n);
    ths[s].resize(n);
    for (std::size_t p = 0; p < n; ++p) {
      tvs[s][p] = (data[s].vTarget[p] - vMean_) / vStd_;
      ths[s][p] = (data[s].hTarget[p] - hMean_) / hStd_;
    }
  }

  Rng rng(config_.seed);
  initWeights(rng);

  // Plain SGD: one update per sample, epoch order shuffled by the model's
  // own Rng on the serving thread — the parallel work inside forward /
  // backward never touches the RNG, so the weight trajectory is a pure
  // function of (data, seed).
  Workspace ws;
  finalLoss_ = 0.0;
  for (std::size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    const std::vector<std::size_t> order = rng.permutation(data.size());
    double epochLoss = 0.0;
    for (const std::size_t s : order) {
      forward(xs[s], data[s].grid.width, data[s].grid.height, ws);
      epochLoss += backwardAndStep(data[s], xs[s], tvs[s], ths[s], ws);
    }
    finalLoss_ = epochLoss / static_cast<double>(data.size());
  }
  epochsRun_ = config_.epochs;
}

MapPrediction MapNet::predict(const GridSample& grid) const {
  HCP_CHECK_MSG(inChannels_ > 0, "mapnet: model is not trained");
  HCP_CHECK_MSG(grid.channels.size() == inChannels_,
                "mapnet: sample has " << grid.channels.size()
                                      << " channels, model expects "
                                      << inChannels_);
  const std::size_t n = grid.numTiles();
  for (const auto& c : grid.channels)
    HCP_CHECK_MSG(c.size() == n, "mapnet: channel size " << c.size()
                                     << " != " << n << " tiles");
  MapPrediction out;
  out.width = grid.width;
  out.height = grid.height;
  out.vUtil.assign(n, 0.0);
  out.hUtil.assign(n, 0.0);
  if (n == 0) return out;

  Planes x(inChannels_);
  for (std::size_t c = 0; c < inChannels_; ++c) {
    x[c].resize(n);
    for (std::size_t p = 0; p < n; ++p)
      x[c][p] = (grid.channels[c][p] - featMean_[c]) / featStd_[c];
  }
  Workspace ws;
  forward(x, grid.width, grid.height, ws);
  // Utilization is a percentage: negative predictions clamp to zero.
  for (std::size_t p = 0; p < n; ++p) {
    out.vUtil[p] = std::max(0.0, ws.yhat[0][p] * vStd_ + vMean_);
    out.hUtil[p] = std::max(0.0, ws.yhat[1][p] * hStd_ + hMean_);
  }
  return out;
}

// --- serialization ---------------------------------------------------------

void MapNet::checkShapes() const {
  const std::size_t c = inChannels_;
  const std::size_t h = config_.hiddenChannels;
  const std::size_t r = config_.rounds;
  auto shape = [](const std::vector<double>& v, std::size_t want,
                  const char* what) {
    HCP_CHECK_MSG(v.size() == want, "mapnet tensor shape mismatch: " << what
                                        << " has " << v.size()
                                        << " values, expected " << want);
  };
  switch (config_.topology) {
    case MapNetConfig::Topology::kTileLinear:
      shape(w1_, 2 * c, "w1");
      shape(b1_, 2, "b1");
      shape(w2_, 0, "w2");
      shape(b2_, 0, "b2");
      shape(wSelf_, 0, "wself");
      shape(wMsg_, 0, "wmsg");
      shape(bRound_, 0, "bround");
      break;
    case MapNetConfig::Topology::kConv:
      shape(w1_, h * c * 9, "w1");
      shape(b1_, h, "b1");
      shape(w2_, 2 * h * 9, "w2");
      shape(b2_, 2, "b2");
      shape(wSelf_, 0, "wself");
      shape(wMsg_, 0, "wmsg");
      shape(bRound_, 0, "bround");
      break;
    case MapNetConfig::Topology::kLattice:
      shape(w1_, h * c, "w1");
      shape(b1_, h, "b1");
      shape(w2_, 2 * h, "w2");
      shape(b2_, 2, "b2");
      shape(wSelf_, r * h * h, "wself");
      shape(wMsg_, r * h * h, "wmsg");
      shape(bRound_, r * h, "bround");
      break;
  }
}

void MapNet::write(std::ostream& os) const {
  os << "shape " << inChannels_ << ' ' << config_.hiddenChannels << ' '
     << config_.rounds << '\n';
  os << "train " << config_.epochs << ' ' << config_.learningRate << ' '
     << config_.l2 << ' ' << config_.seed << '\n';
  os << "scaler ";
  txt::writeVec(os, featMean_);
  os << ' ';
  txt::writeVec(os, featStd_);
  os << '\n';
  os << "targets " << vMean_ << ' ' << vStd_ << ' ' << hMean_ << ' ' << hStd_
     << '\n';
  for (const auto& [name, tensor] :
       std::initializer_list<std::pair<const char*, const std::vector<double>*>>{
           {"w1", &w1_}, {"b1", &b1_}, {"w2", &w2_}, {"b2", &b2_},
           {"wself", &wSelf_}, {"wmsg", &wMsg_}, {"bround", &bRound_}}) {
    os << name << ' ';
    txt::writeVec(os, *tensor);
    os << '\n';
  }
  os << "state " << epochsRun_ << ' ' << finalLoss_ << '\n';
}

void MapNet::read(std::istream& is) {
  txt::expect(is, "shape");
  inChannels_ = txt::read<std::size_t>(is, "channel count");
  config_.hiddenChannels = txt::read<std::size_t>(is, "hidden channels");
  config_.rounds = txt::read<std::size_t>(is, "rounds");
  HCP_CHECK_MSG(inChannels_ > 0, "mapnet: channel count must be positive");
  txt::expect(is, "train");
  config_.epochs = txt::read<std::size_t>(is, "epochs");
  config_.learningRate = txt::read<double>(is, "learning rate");
  config_.l2 = txt::read<double>(is, "l2");
  config_.seed = txt::read<std::uint64_t>(is, "seed");
  txt::expect(is, "scaler");
  featMean_ = txt::readVec<double>(is, "feature means");
  featStd_ = txt::readVec<double>(is, "feature stds");
  HCP_CHECK_MSG(
      featMean_.size() == inChannels_ && featStd_.size() == inChannels_,
      "mapnet: scaler covers " << featMean_.size() << " channels, expected "
                               << inChannels_);
  txt::expect(is, "targets");
  vMean_ = txt::read<double>(is, "v mean");
  vStd_ = txt::read<double>(is, "v std");
  hMean_ = txt::read<double>(is, "h mean");
  hStd_ = txt::read<double>(is, "h std");
  for (auto [name, tensor] :
       std::initializer_list<std::pair<const char*, std::vector<double>*>>{
           {"w1", &w1_}, {"b1", &b1_}, {"w2", &w2_}, {"b2", &b2_},
           {"wself", &wSelf_}, {"wmsg", &wMsg_}, {"bround", &bRound_}}) {
    txt::expect(is, name);
    *tensor = txt::readVec<double>(is, name);
    // A model with a poisoned weight predicts NaN maps everywhere; reject
    // at load time, where the file can still be named.
    checkFinite(*tensor, name);
  }
  txt::expect(is, "state");
  epochsRun_ = txt::read<std::size_t>(is, "epochs run");
  finalLoss_ = txt::read<double>(is, "final loss");
  checkFinite(featMean_, "feature means");
  checkFinite(featStd_, "feature stds");
  checkShapes();
}

void saveMapModel(const MapNet& model, std::ostream& os) {
  txt::preparePrecision(os);
  os << "hcp-mapmodel " << topologyName(model.config().topology) << " 1\n";
  model.write(os);
  HCP_CHECK_MSG(os.good(), "map-model write failed");
}

MapNet loadMapModel(std::istream& is) {
  txt::expect(is, "hcp-mapmodel");
  const std::string kind = txt::read<std::string>(is, "model kind");
  const int version = txt::read<int>(is, "model version");
  HCP_CHECK_MSG(version == 1, "unsupported map-model version " << version);
  MapNetConfig config;
  config.topology = topologyFromName(kind);
  MapNet model(config);
  model.read(is);
  return model;
}

void saveMapModelToFile(const MapNet& model, const std::string& path) {
  support::txt::CheckedFileWriter writer(path, "mapmodel");
  saveMapModel(model, writer.stream());
  writer.commit();
}

MapNet loadMapModelFromFile(const std::string& path) {
  std::ifstream is(path);
  HCP_CHECK_MSG(is.good(), "cannot open " << path);
  try {
    MapNet model = loadMapModel(is);
    txt::expectEnd(is, "map model");
    return model;
  } catch (const Error& e) {
    throw Error(std::string(e.what()) + " [map-model file: " + path + "]");
  }
}

}  // namespace hcp::ml
