// Content-addressed on-disk dataset shards (ROADMAP item 5; DESIGN.md §19).
//
// A shard is one design+device+seed's worth of labeled training samples —
// the feature vector plus all three congestion labels (vertical,
// horizontal, average) per sample, stored once instead of as the three
// duplicated in-memory Datasets. Shards make the corpus scale past RAM:
// training streams one shard at a time through ml::RowSource
// (sample_source.hpp), and the streamed models are byte-identical to the
// in-memory ones.
//
// File format (`<dir>/<key>.shard`), text like every other serializer in
// this repo (support/textio.hpp: 17-digit doubles, length-prefixed strings,
// loud failures):
//
//   hcp-shard <schema> <key> <numFeatures> <numSamples> <payload-bytes>
//       <payload-fnv1a>\n
//   design <len> <bytes>\n
//   device <len> <bytes>\n
//   seed <seed>\n
//   sample <id> <v> <h> <avg> <f0> ... <f(numFeatures-1)>\n   (x numSamples)
//
// The envelope mirrors the flow cache's: byte count + FNV-1a digest of the
// payload, checked before any payload parsing, so truncation, bit flips,
// version skew, a renamed file (key/stem mismatch) and trailing garbage are
// all detected and rejected with hcp::Error — a corrupt shard can never
// leak half-parsed samples into a training run.
//
// Content addressing: the key digests the schema version, design, device,
// seed, feature count and a caller-provided salt (core::buildShard passes
// the flow cache key plus the dataset-filter options, so the key pins every
// input the samples depend on). Sample ids are derived from (key, ordinal),
// which makes them stable across processes and machines — out-of-core
// k-fold CV assigns fold membership by hashing these ids, never by
// in-memory indices.
//
// Writes go through CheckedFileWriter under failpoint site "shard"
// (shard.open / shard.write / shard.rename), atomic temp + rename; reads
// consult "shard.read". Failure policy is the artifact contract: IoError
// propagates (exit 5 in the tools), corrupt content is hcp::Error (exit 1).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "ml/sample_source.hpp"

namespace hcp::ml::shards {

/// Bump when the shard envelope or payload layout changes incompatibly.
/// Participates in both the header and the content key, so a bump orphans
/// (and loudly rejects) every old shard.
inline constexpr std::uint32_t kSchemaVersion = 1;

/// Which of the three labels a ShardRowSource serves as the target.
enum class Label { Vertical, Horizontal, Average };

std::string_view labelName(Label label);

/// One labeled sample: the shared feature row plus all three targets.
struct ShardSample {
  std::uint64_t id = 0;  ///< stable id; writeShard assigns, readShard checks
  double vertical = 0.0;
  double horizontal = 0.0;
  double average = 0.0;
  std::vector<double> features;
};

/// Shard provenance, stored in the payload.
struct ShardMeta {
  std::string design;
  std::string device;
  std::uint64_t seed = 0;
};

/// Header-level identity, known without reading the payload.
struct ShardInfo {
  std::string key;  ///< 16-char hex content key (also the file stem)
  std::size_t numFeatures = 0;
  std::size_t numSamples = 0;
  std::string path;
};

/// A fully loaded and validated shard.
struct ShardData {
  ShardInfo info;
  ShardMeta meta;
  std::vector<ShardSample> samples;
};

/// Content key of a shard (16-char lower-case hex). `salt` carries every
/// upstream input not named explicitly (core passes the flow cache key and
/// the filter configuration digest).
std::string shardKey(const std::string& design, const std::string& device,
                     std::uint64_t seed, std::size_t numFeatures,
                     const std::string& salt);

/// Stable id of sample `ordinal` within the shard `key`.
std::uint64_t sampleId(const std::string& key, std::uint64_t ordinal);

/// Writes `<dir>/<key>.shard` atomically (creating `dir` if needed) and
/// returns its path. Sample ids are assigned canonically from (key,
/// ordinal); every row must have `numFeatures(samples)` features. Throws
/// hcp::IoError on write failure (failpoint sites shard.open, shard.write,
/// shard.rename).
std::string writeShard(const std::string& dir, const std::string& key,
                       const ShardMeta& meta,
                       const std::vector<ShardSample>& samples);

/// Reads and fully validates one shard file. Throws hcp::Error on any
/// malformed shape (see file comment) and hcp::IoError when the file
/// cannot be opened (failpoint site shard.read).
ShardData readShard(const std::string& path);

/// A directory of shards, scanned once (headers only) in deterministic
/// filename order. The scan validates header shape and feature-count
/// consistency across shards; payloads are validated per load().
class ShardSet {
 public:
  explicit ShardSet(std::string dir);

  const std::string& dir() const { return dir_; }
  std::size_t numShards() const { return infos_.size(); }
  std::size_t totalSamples() const { return totalSamples_; }
  /// Common feature width (0 when the set is empty).
  std::size_t numFeatures() const { return numFeatures_; }
  const ShardInfo& info(std::size_t i) const { return infos_.at(i); }

  /// Loads shard `i` with full payload validation.
  ShardData load(std::size_t i) const;

 private:
  std::string dir_;
  std::vector<ShardInfo> infos_;
  std::size_t totalSamples_ = 0;
  std::size_t numFeatures_ = 0;
};

/// Bounded-memory RowSource over a shard set: one shard resident at a
/// time, visited in set order, serving `label` as the target. An optional
/// `keep` predicate over the stable sample id filters the stream (k-fold
/// CV membership) without changing the relative order of surviving
/// samples; indices are re-numbered densely. The filtered size is computed
/// from headers alone — ids are a pure function of (key, ordinal) — so
/// construction reads no payloads.
class ShardRowSource final : public RowSource {
 public:
  using KeepFn = std::function<bool(std::uint64_t)>;

  explicit ShardRowSource(const ShardSet& set, Label label = Label::Average,
                          KeepFn keep = {});

  std::size_t size() const override { return size_; }
  std::size_t numFeatures() const override { return set_->numFeatures(); }
  void forEach(const RowFn& fn) const override;
  void visitParallel(const RowFn& fn) const override;

 private:
  const ShardSet* set_;
  Label label_;
  KeepFn keep_;
  std::size_t size_ = 0;
};

}  // namespace hcp::ml::shards
