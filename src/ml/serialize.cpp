#include "ml/serialize.hpp"

#include <fstream>
#include <iomanip>

#include "ml/gbrt.hpp"
#include "ml/linear.hpp"
#include "ml/mlp.hpp"
#include "support/error.hpp"
#include "support/textio.hpp"

namespace hcp::ml {

namespace detail {

void writeVec(std::ostream& os, const std::vector<double>& v) {
  os << v.size();
  for (double x : v) os << ' ' << x;
  os << '\n';
}

std::vector<double> readVec(std::istream& is) {
  std::size_t n = 0;
  HCP_CHECK_MSG(static_cast<bool>(is >> n), "truncated model file");
  std::vector<double> v(n);
  for (double& x : v)
    HCP_CHECK_MSG(static_cast<bool>(is >> x), "truncated model file");
  return v;
}

void expect(std::istream& is, const char* token) {
  std::string got;
  HCP_CHECK_MSG(static_cast<bool>(is >> got) && got == token,
                "model file: expected '" << token << "', got '" << got
                                         << "'");
}

}  // namespace detail

void saveModel(const Regressor& model, std::ostream& os) {
  os << std::setprecision(17);
  if (const auto* lasso = dynamic_cast<const LassoRegression*>(&model)) {
    os << "hcp-model lasso 1\n";
    lasso->write(os);
  } else if (const auto* mlp = dynamic_cast<const MlpRegressor*>(&model)) {
    os << "hcp-model mlp 1\n";
    mlp->write(os);
  } else if (const auto* gbrt = dynamic_cast<const Gbrt*>(&model)) {
    os << "hcp-model gbrt 1\n";
    gbrt->write(os);
  } else {
    HCP_CHECK_MSG(false, "unsupported model type " << model.name());
  }
  HCP_CHECK_MSG(os.good(), "model write failed");
}

std::unique_ptr<Regressor> loadModel(std::istream& is) {
  detail::expect(is, "hcp-model");
  std::string kind;
  int version = 0;
  HCP_CHECK_MSG(static_cast<bool>(is >> kind >> version),
                "truncated model header");
  HCP_CHECK_MSG(version == 1, "unsupported model version " << version);
  if (kind == "lasso") {
    auto model = std::make_unique<LassoRegression>();
    model->read(is);
    return model;
  }
  if (kind == "mlp") {
    auto model = std::make_unique<MlpRegressor>();
    model->read(is);
    return model;
  }
  if (kind == "gbrt") {
    auto model = std::make_unique<Gbrt>();
    model->read(is);
    return model;
  }
  HCP_CHECK_MSG(false, "unknown model kind '" << kind << "'");
  return nullptr;
}

void saveModelToFile(const Regressor& model, const std::string& path) {
  // The trained model is the product (ROADMAP north star): its save is
  // verified end to end. saveModel's own os.good() check only observes
  // buffered-write failures; the post-write commit() below flushes and
  // closes under verification, so an ENOSPC short write raises hcp::IoError
  // here — with the path named and no partial file left behind (atomic
  // temp + rename) — instead of producing a truncated model that only
  // fails at load time.
  support::txt::CheckedFileWriter writer(path, "model");
  saveModel(model, writer.stream());
  writer.commit();
}

std::unique_ptr<Regressor> loadModelFromFile(const std::string& path) {
  std::ifstream is(path);
  HCP_CHECK_MSG(is.good(), "cannot open " << path);
  std::unique_ptr<Regressor> model;
  try {
    model = loadModel(is);
  } catch (const Error& e) {
    // Re-throw with the offending file named: the stream-level readers have
    // no idea where their bytes come from, but "which file is broken" is the
    // question the user actually has.
    throw Error(std::string(e.what()) + " [model file: " + path + "]");
  }
  // A model file holds exactly one model: trailing bytes mean the file was
  // concatenated, double-written or otherwise mangled — reject rather than
  // silently ignore.
  std::string extra;
  HCP_CHECK_MSG(!(is >> extra),
                "trailing garbage after model (first token '"
                    << extra << "') in model file: " << path);
  return model;
}

}  // namespace hcp::ml

// --- member serialization definitions --------------------------------------
// Kept in this TU so the line format lives in one place.

namespace hcp::ml {

using detail::expect;
using detail::readVec;
using detail::writeVec;

void StandardScaler::write(std::ostream& os) const {
  os << "scaler\n";
  writeVec(os, mean_);
  writeVec(os, std_);
}

void StandardScaler::read(std::istream& is) {
  expect(is, "scaler");
  mean_ = readVec(is);
  std_ = readVec(is);
}

void LassoRegression::write(std::ostream& os) const {
  os << "config " << config_.alpha << ' ' << config_.maxIterations << ' '
     << config_.tolerance << '\n';
  scaler_.write(os);
  writeVec(os, weights_);
  os << "intercept " << intercept_ << '\n';
}

void LassoRegression::read(std::istream& is) {
  expect(is, "config");
  HCP_CHECK(static_cast<bool>(is >> config_.alpha >> config_.maxIterations >>
                              config_.tolerance));
  scaler_.read(is);
  weights_ = readVec(is);
  expect(is, "intercept");
  HCP_CHECK(static_cast<bool>(is >> intercept_));
}

void MlpRegressor::write(std::ostream& os) const {
  os << "layers " << layers_.size() << '\n';
  for (const Layer& l : layers_) {
    os << l.in << ' ' << l.out << '\n';
    writeVec(os, l.w);
    writeVec(os, l.b);
  }
  scaler_.write(os);
  os << "target " << yMean_ << ' ' << yStd_ << '\n';
}

void MlpRegressor::read(std::istream& is) {
  expect(is, "layers");
  std::size_t n = 0;
  HCP_CHECK(static_cast<bool>(is >> n));
  layers_.assign(n, Layer{});
  for (Layer& l : layers_) {
    HCP_CHECK(static_cast<bool>(is >> l.in >> l.out));
    l.w = readVec(is);
    l.b = readVec(is);
    HCP_CHECK_MSG(l.w.size() == l.in * l.out && l.b.size() == l.out,
                  "mlp layer shape mismatch");
  }
  scaler_.read(is);
  expect(is, "target");
  HCP_CHECK(static_cast<bool>(is >> yMean_ >> yStd_));
}

void RegressionTree::write(std::ostream& os) const {
  os << "tree " << nodes_.size() << '\n';
  for (const Node& n : nodes_) {
    os << n.feature << ' ' << static_cast<int>(n.bin) << ' ' << n.threshold
       << ' ' << n.left << ' ' << n.right << ' ' << n.value << '\n';
  }
  os << "splits " << splitCounts_.size();
  for (std::uint32_t c : splitCounts_) os << ' ' << c;
  os << '\n';
  writeVec(os, splitGains_);
}

void RegressionTree::read(std::istream& is) {
  expect(is, "tree");
  std::size_t n = 0;
  HCP_CHECK(static_cast<bool>(is >> n));
  nodes_.assign(n, Node{});
  for (Node& node : nodes_) {
    int bin = 0;
    HCP_CHECK(static_cast<bool>(is >> node.feature >> bin >>
                                node.threshold >> node.left >> node.right >>
                                node.value));
    node.bin = static_cast<std::uint8_t>(bin);
  }
  expect(is, "splits");
  std::size_t m = 0;
  HCP_CHECK(static_cast<bool>(is >> m));
  splitCounts_.assign(m, 0);
  for (std::uint32_t& c : splitCounts_) HCP_CHECK(static_cast<bool>(is >> c));
  splitGains_ = readVec(is);
}

void Gbrt::write(std::ostream& os) const {
  os << "config " << config_.numEstimators << ' ' << config_.learningRate
     << ' ' << config_.maxDepth << ' ' << config_.minSamplesLeaf << ' '
     << config_.subsample << ' ' << config_.featureFraction << ' '
     << config_.numBins << ' ' << config_.seed << '\n';
  os << "state " << baseline_ << ' ' << numFeatures_ << ' ' << trainLoss_
     << '\n';
  os << "forest " << trees_.size() << '\n';
  for (const RegressionTree& t : trees_) t.write(os);
}

void Gbrt::read(std::istream& is) {
  expect(is, "config");
  HCP_CHECK(static_cast<bool>(
      is >> config_.numEstimators >> config_.learningRate >>
      config_.maxDepth >> config_.minSamplesLeaf >> config_.subsample >>
      config_.featureFraction >> config_.numBins >> config_.seed));
  expect(is, "state");
  HCP_CHECK(static_cast<bool>(is >> baseline_ >> numFeatures_ >> trainLoss_));
  expect(is, "forest");
  std::size_t n = 0;
  HCP_CHECK(static_cast<bool>(is >> n));
  trees_.assign(n, RegressionTree{});
  for (RegressionTree& t : trees_) t.read(is);
}

}  // namespace hcp::ml
