// Streaming sample access for out-of-core training.
//
// A RowSource is a multi-pass, read-only view of (features, target) samples
// in one fixed canonical order. The streaming fit paths (Lasso's Gram
// accumulation, GBRT's feature-block binning) consume *only* this interface,
// and the in-memory Dataset is adapted through DatasetSource — so the
// in-memory and the sharded on-disk paths run the exact same arithmetic in
// the exact same order, and the trained models are byte-identical by
// construction (see DESIGN.md §19, "streaming determinism contract").
//
// Contract a RowSource must honor:
//   - size() and numFeatures() are stable across passes;
//   - forEach visits every sample exactly once, in index order 0..size()-1,
//     serially, and may be called any number of times;
//   - visitParallel visits the same samples with the same indices but may
//     run concurrently; callers pass bodies that only write state owned by
//     the visited index, so results are identical at any thread count.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "ml/dataset.hpp"

namespace hcp::ml {

class RowSource {
 public:
  /// fn(index, features, target); `features` is only valid for the duration
  /// of the call (streamed sources reuse buffers between samples).
  using RowFn = std::function<void(std::size_t, const std::vector<double>&,
                                   double)>;

  virtual ~RowSource() = default;

  virtual std::size_t size() const = 0;
  virtual std::size_t numFeatures() const = 0;

  /// Serial in-order visitation. Order-sensitive accumulations (scaler
  /// moments, Gram matrix, target means) use this pass.
  virtual void forEach(const RowFn& fn) const = 0;

  /// Possibly-concurrent visitation; `fn` must be thread-safe and only
  /// touch state owned by the visited index. Pure per-row transforms
  /// (binning, prediction) use this pass. Default: the serial pass.
  virtual void visitParallel(const RowFn& fn) const { forEach(fn); }
};

/// Adapts an in-memory Dataset (owning or subset view) to RowSource.
class DatasetSource final : public RowSource {
 public:
  explicit DatasetSource(const Dataset& data) : data_(&data) {}

  std::size_t size() const override { return data_->size(); }
  std::size_t numFeatures() const override { return data_->numFeatures(); }
  void forEach(const RowFn& fn) const override;
  void visitParallel(const RowFn& fn) const override;

 private:
  const Dataset* data_;
};

/// Copies a source into an owning Dataset (the fallback for models without
/// a native streaming fit, e.g. the MLP).
Dataset materialize(const RowSource& source);

}  // namespace hcp::ml
