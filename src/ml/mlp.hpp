// Artificial neural network regressor (paper §III-C2): fully-connected
// hidden layers with ReLU activations, trained with mini-batch Adam on
// standardized inputs/targets. Early stopping on a held-out validation
// fraction mirrors how the paper tunes its "number of hyperparameters".
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ml/model.hpp"

namespace hcp::ml {

struct MlpConfig {
  std::vector<std::size_t> hiddenLayers = {64, 32};
  double learningRate = 1e-3;
  double l2 = 1e-4;
  std::size_t batchSize = 64;
  std::size_t maxEpochs = 60;
  /// Stop when validation loss fails to improve for this many epochs.
  std::size_t patience = 8;
  double validationFraction = 0.1;
  std::uint64_t seed = 7;
};

class MlpRegressor : public Regressor {
 public:
  explicit MlpRegressor(MlpConfig config = {}) : config_(std::move(config)) {}

  void fit(const Dataset& data) override;
  double predict(const std::vector<double>& row) const override;
  std::string name() const override { return "ANN"; }

  std::size_t epochsRun() const { return epochsRun_; }
  double bestValidationLoss() const { return bestValLoss_; }

  /// Text serialization (used by ml/serialize).
  void write(std::ostream& os) const;
  void read(std::istream& is);

 private:
  struct Layer {
    std::size_t in = 0, out = 0;
    std::vector<double> w;  ///< row-major [out][in]
    std::vector<double> b;
  };

  std::vector<double> forward(const std::vector<double>& z,
                              std::vector<std::vector<double>>* acts) const;

  MlpConfig config_;
  StandardScaler scaler_;
  double yMean_ = 0.0, yStd_ = 1.0;
  std::vector<Layer> layers_;
  std::size_t epochsRun_ = 0;
  double bestValLoss_ = 0.0;
};

}  // namespace hcp::ml
