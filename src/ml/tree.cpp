#include "ml/tree.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "support/parallel.hpp"

namespace hcp::ml {

namespace {

/// Quantile edges of one feature column (mutates the buffer). Per quantile
/// edge an incremental nth_element over the not-yet-partitioned suffix
/// replaces a full sort: the value at sorted position idx is unique as a
/// value, so the edges are bit-identical to the sorted version — and,
/// because they depend only on the column's value multiset, identical no
/// matter how the callers chunk rows or features.
std::vector<double> quantileEdges(std::vector<double>& column,
                                  std::uint32_t numBins) {
  const std::size_t n = column.size();
  std::vector<double> edges;
  auto partitioned = column.begin();  // [begin, partitioned) is ordered
  for (std::uint32_t b = 1; b < numBins; ++b) {
    const std::size_t idx = std::min(n - 1, b * n / numBins);
    const auto nth = column.begin() + static_cast<std::ptrdiff_t>(idx);
    if (nth >= partitioned) {
      std::nth_element(partitioned, nth, column.end());
      partitioned = nth;
    }
    const double edge = *nth;
    if (edges.empty() || edge > edges.back()) edges.push_back(edge);
  }
  // Last bin is open-ended; ensure at least one edge so binOf works.
  if (edges.empty())
    edges.push_back(*std::max_element(column.begin(), column.end()));
  return edges;
}

}  // namespace

void Binner::fit(const std::vector<std::vector<double>>& rows,
                 std::uint32_t numBins) {
  HCP_CHECK(!rows.empty());
  fitImpl(rows.size(), rows.front().size(),
          [&rows](std::size_t i, std::size_t f) { return rows[i][f]; },
          numBins);
}

void Binner::fit(const Dataset& data, std::uint32_t numBins) {
  HCP_CHECK(data.size() > 0);
  fitImpl(data.size(), data.numFeatures(),
          [&data](std::size_t i, std::size_t f) { return data.row(i)[f]; },
          numBins);
}

void Binner::fitImpl(
    std::size_t n, std::size_t d,
    const std::function<double(std::size_t, std::size_t)>& at,
    std::uint32_t numBins) {
  HCP_CHECK(n > 0 && d > 0);
  HCP_CHECK(numBins >= 2 && numBins <= 256);
  numBins_ = numBins;
  edges_.assign(d, {});

  // Features are independent, so they fit in parallel; each chunk reuses
  // one column buffer across its features (see quantileEdges for why the
  // result is bit-identical at any thread count).
  const std::size_t numChunks =
      std::min(d, std::max<std::size_t>(1, 4 * support::threadLimit()));
  const std::size_t grain = (d + numChunks - 1) / numChunks;
  support::parallelFor(0, numChunks, 1, [&](std::size_t chunk) {
    std::vector<double> column(n);
    const std::size_t fLo = chunk * grain;
    const std::size_t fHi = std::min(d, fLo + grain);
    for (std::size_t f = fLo; f < fHi; ++f) {
      for (std::size_t i = 0; i < n; ++i) column[i] = at(i, f);
      edges_[f] = quantileEdges(column, numBins);
    }
  });
}

void Binner::fitStreamed(const RowSource& source, std::uint32_t numBins,
                         std::size_t columnBudgetBytes) {
  const std::size_t n = source.size();
  const std::size_t d = source.numFeatures();
  HCP_CHECK(n > 0 && d > 0);
  HCP_CHECK(numBins >= 2 && numBins <= 256);
  numBins_ = numBins;
  edges_.assign(d, {});

  // Feature-block transposition under a fixed memory budget: only
  // `block` columns of doubles are resident at a time, so binning a corpus
  // far larger than RAM costs ceil(d / block) sequential source passes.
  const std::size_t block = std::clamp<std::size_t>(
      columnBudgetBytes / (n * sizeof(double)), 1, d);
  std::vector<std::vector<double>> cols(block);
  for (std::size_t fLo = 0; fLo < d; fLo += block) {
    const std::size_t fHi = std::min(d, fLo + block);
    for (std::size_t j = 0; j < fHi - fLo; ++j) cols[j].assign(n, 0.0);
    source.visitParallel(
        [&](std::size_t i, const std::vector<double>& row, double) {
          for (std::size_t f = fLo; f < fHi; ++f) cols[f - fLo][i] = row[f];
        });
    support::parallelFor(0, fHi - fLo, 1, [&](std::size_t j) {
      edges_[fLo + j] = quantileEdges(cols[j], numBins);
    });
  }
}

std::uint8_t Binner::binOf(std::size_t feature, double value) const {
  HCP_CHECK(feature < edges_.size());
  const auto& edges = edges_[feature];
  const auto it = std::lower_bound(edges.begin(), edges.end(), value);
  return static_cast<std::uint8_t>(it - edges.begin());
}

std::vector<std::uint8_t> Binner::binRow(
    const std::vector<double>& row) const {
  std::vector<std::uint8_t> out(row.size());
  for (std::size_t f = 0; f < row.size(); ++f) out[f] = binOf(f, row[f]);
  return out;
}

double Binner::threshold(std::size_t feature, std::uint8_t bin) const {
  HCP_CHECK(feature < edges_.size());
  const auto& edges = edges_[feature];
  return edges[std::min<std::size_t>(bin, edges.size() - 1)];
}

void RegressionTree::fitBinned(
    const std::vector<std::vector<std::uint8_t>>& binned,
    const std::vector<double>& targets, std::vector<std::size_t> rows,
    const std::vector<std::size_t>& features, const Binner& binner,
    const TreeConfig& config) {
  HCP_CHECK(!rows.empty() && !features.empty());
  nodes_.clear();
  const std::size_t d = binned.front().size();
  splitCounts_.assign(d, 0);
  splitGains_.assign(d, 0.0);
  build(binned, targets, rows, features, binner, config, 0);
}

std::int32_t RegressionTree::build(
    const std::vector<std::vector<std::uint8_t>>& binned,
    const std::vector<double>& targets, std::vector<std::size_t>& rows,
    const std::vector<std::size_t>& features, const Binner& binner,
    const TreeConfig& config, int depth) {
  const auto nodeIdx = static_cast<std::int32_t>(nodes_.size());
  nodes_.emplace_back();

  double sum = 0.0;
  for (std::size_t i : rows) sum += targets[i];
  const double n = static_cast<double>(rows.size());
  nodes_[nodeIdx].value = sum / n;

  if (depth >= config.maxDepth ||
      rows.size() < 2 * config.minSamplesLeaf) {
    return nodeIdx;
  }

  // Best split by variance-reduction gain over binned histograms. The scan
  // over candidate features shards across threads; each shard computes its
  // local argmax and the merge tie-breaks on the lowest position in
  // `features` — exactly the feature the serial left-to-right scan (with its
  // strictly-greater update) would have kept, so the chosen split is
  // bit-identical at any thread count.
  const double parentScore = sum * sum / n;
  const std::uint32_t numBins = binner.numBins();

  struct SplitCandidate {
    double gain = 1e-12;
    std::size_t position = std::numeric_limits<std::size_t>::max();
    std::size_t feature = 0;
    std::uint32_t bin = 0;
  };

  // Scans feature positions [p0, p1), reusing one histogram pair.
  const auto scanRange = [&](std::size_t p0, std::size_t p1) {
    SplitCandidate best;
    std::vector<double> histSum(numBins);
    std::vector<std::uint32_t> histCount(numBins);
    for (std::size_t p = p0; p < p1; ++p) {
      const std::size_t f = features[p];
      std::fill(histSum.begin(), histSum.end(), 0.0);
      std::fill(histCount.begin(), histCount.end(), 0u);
      for (std::size_t i : rows) {
        const std::uint8_t b = binned[i][f];
        histSum[b] += targets[i];
        ++histCount[b];
      }
      double leftSum = 0.0;
      std::uint32_t leftCount = 0;
      for (std::uint32_t b = 0; b + 1 < numBins; ++b) {
        leftSum += histSum[b];
        leftCount += histCount[b];
        const std::uint32_t rightCount =
            static_cast<std::uint32_t>(rows.size()) - leftCount;
        if (leftCount < config.minSamplesLeaf ||
            rightCount < config.minSamplesLeaf)
          continue;
        const double rightSum = sum - leftSum;
        const double gain = leftSum * leftSum / leftCount +
                            rightSum * rightSum / rightCount - parentScore;
        if (gain > best.gain) {
          best.gain = gain;
          best.position = p;
          best.feature = f;
          best.bin = b;
        }
      }
    }
    return best;
  };

  SplitCandidate best;
  // Parallelize only when the node is worth it; deeper (smaller) nodes take
  // the single-scan path. Either way the merged winner is identical.
  const std::size_t work = rows.size() * features.size();
  const std::size_t concurrency =
      support::detail::effectiveConcurrency(features.size());
  if (work >= 16384 && concurrency > 1) {
    const std::size_t numShards = std::min(features.size(), concurrency);
    const std::size_t shardSize =
        (features.size() + numShards - 1) / numShards;
    const auto candidates =
        support::parallelMapIndex(numShards, [&](std::size_t s) {
          const std::size_t p0 = s * shardSize;
          const std::size_t p1 = std::min(features.size(), p0 + shardSize);
          return scanRange(p0, p1);
        });
    for (const SplitCandidate& c : candidates) {
      if (c.gain > best.gain ||
          (c.gain == best.gain && c.position < best.position))
        best = c;
    }
  } else {
    best = scanRange(0, features.size());
  }
  if (best.gain <= 1e-12) return nodeIdx;
  const std::size_t bestFeature = best.feature;
  const std::uint32_t bestBin = best.bin;
  const double bestGain = best.gain;

  // Partition rows in place.
  std::vector<std::size_t> leftRows, rightRows;
  leftRows.reserve(rows.size());
  rightRows.reserve(rows.size());
  for (std::size_t i : rows) {
    (binned[i][bestFeature] <= bestBin ? leftRows : rightRows).push_back(i);
  }
  rows.clear();
  rows.shrink_to_fit();

  ++splitCounts_[bestFeature];
  splitGains_[bestFeature] += bestGain;

  nodes_[nodeIdx].feature = static_cast<std::int32_t>(bestFeature);
  nodes_[nodeIdx].bin = static_cast<std::uint8_t>(bestBin);
  nodes_[nodeIdx].threshold = binner.threshold(bestFeature,
                                               static_cast<std::uint8_t>(
                                                   bestBin));
  const std::int32_t left =
      build(binned, targets, leftRows, features, binner, config, depth + 1);
  const std::int32_t right =
      build(binned, targets, rightRows, features, binner, config, depth + 1);
  nodes_[nodeIdx].left = left;
  nodes_[nodeIdx].right = right;
  return nodeIdx;
}

double RegressionTree::predict(const std::vector<double>& row) const {
  HCP_CHECK(!nodes_.empty());
  std::int32_t cur = 0;
  while (nodes_[cur].feature >= 0) {
    const Node& n = nodes_[cur];
    cur = row[static_cast<std::size_t>(n.feature)] <= n.threshold ? n.left
                                                                  : n.right;
  }
  return nodes_[cur].value;
}

double RegressionTree::predictBinned(
    const std::vector<std::uint8_t>& row) const {
  HCP_CHECK(!nodes_.empty());
  std::int32_t cur = 0;
  while (nodes_[cur].feature >= 0) {
    const Node& n = nodes_[cur];
    cur = row[static_cast<std::size_t>(n.feature)] <= n.bin ? n.left
                                                            : n.right;
  }
  return nodes_[cur].value;
}

void RegressionTree::fit(const Dataset& data, const TreeConfig& config,
                         std::uint32_t numBins) {
  ownBinner_.fit(data, numBins);
  std::vector<std::vector<std::uint8_t>> binned(data.size());
  support::parallelFor(0, data.size(), 64, [&](std::size_t i) {
    binned[i] = ownBinner_.binRow(data.row(i));
  });
  std::vector<std::size_t> rows(data.size());
  for (std::size_t i = 0; i < rows.size(); ++i) rows[i] = i;
  std::vector<std::size_t> features(data.numFeatures());
  for (std::size_t f = 0; f < features.size(); ++f) features[f] = f;
  fitBinned(binned, data.targets(), std::move(rows), features, ownBinner_,
            config);
}

int RegressionTree::depth() const {
  // Iterative depth computation over the node array.
  if (nodes_.empty()) return 0;
  std::vector<std::pair<std::int32_t, int>> stack{{0, 1}};
  int best = 0;
  while (!stack.empty()) {
    auto [idx, d] = stack.back();
    stack.pop_back();
    best = std::max(best, d);
    if (nodes_[static_cast<std::size_t>(idx)].feature >= 0) {
      stack.push_back({nodes_[static_cast<std::size_t>(idx)].left, d + 1});
      stack.push_back({nodes_[static_cast<std::size_t>(idx)].right, d + 1});
    }
  }
  return best;
}

}  // namespace hcp::ml
