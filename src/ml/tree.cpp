#include "ml/tree.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace hcp::ml {

void Binner::fit(const std::vector<std::vector<double>>& rows,
                 std::uint32_t numBins) {
  HCP_CHECK(!rows.empty());
  HCP_CHECK(numBins >= 2 && numBins <= 256);
  numBins_ = numBins;
  const std::size_t d = rows.front().size();
  edges_.assign(d, {});

  std::vector<double> column(rows.size());
  for (std::size_t f = 0; f < d; ++f) {
    for (std::size_t i = 0; i < rows.size(); ++i) column[i] = rows[i][f];
    std::sort(column.begin(), column.end());
    auto& edges = edges_[f];
    for (std::uint32_t b = 1; b < numBins; ++b) {
      const std::size_t idx =
          std::min(rows.size() - 1, b * rows.size() / numBins);
      const double edge = column[idx];
      if (edges.empty() || edge > edges.back()) edges.push_back(edge);
    }
    // Last bin is open-ended; ensure at least one edge so binOf works.
    if (edges.empty()) edges.push_back(column.back());
  }
}

std::uint8_t Binner::binOf(std::size_t feature, double value) const {
  HCP_CHECK(feature < edges_.size());
  const auto& edges = edges_[feature];
  const auto it = std::lower_bound(edges.begin(), edges.end(), value);
  return static_cast<std::uint8_t>(it - edges.begin());
}

std::vector<std::uint8_t> Binner::binRow(
    const std::vector<double>& row) const {
  std::vector<std::uint8_t> out(row.size());
  for (std::size_t f = 0; f < row.size(); ++f) out[f] = binOf(f, row[f]);
  return out;
}

double Binner::threshold(std::size_t feature, std::uint8_t bin) const {
  HCP_CHECK(feature < edges_.size());
  const auto& edges = edges_[feature];
  return edges[std::min<std::size_t>(bin, edges.size() - 1)];
}

void RegressionTree::fitBinned(
    const std::vector<std::vector<std::uint8_t>>& binned,
    const std::vector<double>& targets, std::vector<std::size_t> rows,
    const std::vector<std::size_t>& features, const Binner& binner,
    const TreeConfig& config) {
  HCP_CHECK(!rows.empty() && !features.empty());
  nodes_.clear();
  const std::size_t d = binned.front().size();
  splitCounts_.assign(d, 0);
  splitGains_.assign(d, 0.0);
  build(binned, targets, rows, features, binner, config, 0);
}

std::int32_t RegressionTree::build(
    const std::vector<std::vector<std::uint8_t>>& binned,
    const std::vector<double>& targets, std::vector<std::size_t>& rows,
    const std::vector<std::size_t>& features, const Binner& binner,
    const TreeConfig& config, int depth) {
  const auto nodeIdx = static_cast<std::int32_t>(nodes_.size());
  nodes_.emplace_back();

  double sum = 0.0;
  for (std::size_t i : rows) sum += targets[i];
  const double n = static_cast<double>(rows.size());
  nodes_[nodeIdx].value = sum / n;

  if (depth >= config.maxDepth ||
      rows.size() < 2 * config.minSamplesLeaf) {
    return nodeIdx;
  }

  // Best split by variance-reduction gain over binned histograms.
  const double parentScore = sum * sum / n;
  double bestGain = 1e-12;
  std::size_t bestFeature = 0;
  std::uint32_t bestBin = 0;

  const std::uint32_t numBins = binner.numBins();
  std::vector<double> histSum(numBins);
  std::vector<std::uint32_t> histCount(numBins);

  for (std::size_t f : features) {
    std::fill(histSum.begin(), histSum.end(), 0.0);
    std::fill(histCount.begin(), histCount.end(), 0u);
    for (std::size_t i : rows) {
      const std::uint8_t b = binned[i][f];
      histSum[b] += targets[i];
      ++histCount[b];
    }
    double leftSum = 0.0;
    std::uint32_t leftCount = 0;
    for (std::uint32_t b = 0; b + 1 < numBins; ++b) {
      leftSum += histSum[b];
      leftCount += histCount[b];
      const std::uint32_t rightCount =
          static_cast<std::uint32_t>(rows.size()) - leftCount;
      if (leftCount < config.minSamplesLeaf ||
          rightCount < config.minSamplesLeaf)
        continue;
      const double rightSum = sum - leftSum;
      const double gain = leftSum * leftSum / leftCount +
                          rightSum * rightSum / rightCount - parentScore;
      if (gain > bestGain) {
        bestGain = gain;
        bestFeature = f;
        bestBin = b;
      }
    }
  }
  if (bestGain <= 1e-12) return nodeIdx;

  // Partition rows in place.
  std::vector<std::size_t> leftRows, rightRows;
  leftRows.reserve(rows.size());
  rightRows.reserve(rows.size());
  for (std::size_t i : rows) {
    (binned[i][bestFeature] <= bestBin ? leftRows : rightRows).push_back(i);
  }
  rows.clear();
  rows.shrink_to_fit();

  ++splitCounts_[bestFeature];
  splitGains_[bestFeature] += bestGain;

  nodes_[nodeIdx].feature = static_cast<std::int32_t>(bestFeature);
  nodes_[nodeIdx].bin = static_cast<std::uint8_t>(bestBin);
  nodes_[nodeIdx].threshold = binner.threshold(bestFeature,
                                               static_cast<std::uint8_t>(
                                                   bestBin));
  const std::int32_t left =
      build(binned, targets, leftRows, features, binner, config, depth + 1);
  const std::int32_t right =
      build(binned, targets, rightRows, features, binner, config, depth + 1);
  nodes_[nodeIdx].left = left;
  nodes_[nodeIdx].right = right;
  return nodeIdx;
}

double RegressionTree::predict(const std::vector<double>& row) const {
  HCP_CHECK(!nodes_.empty());
  std::int32_t cur = 0;
  while (nodes_[cur].feature >= 0) {
    const Node& n = nodes_[cur];
    cur = row[static_cast<std::size_t>(n.feature)] <= n.threshold ? n.left
                                                                  : n.right;
  }
  return nodes_[cur].value;
}

double RegressionTree::predictBinned(
    const std::vector<std::uint8_t>& row) const {
  HCP_CHECK(!nodes_.empty());
  std::int32_t cur = 0;
  while (nodes_[cur].feature >= 0) {
    const Node& n = nodes_[cur];
    cur = row[static_cast<std::size_t>(n.feature)] <= n.bin ? n.left
                                                            : n.right;
  }
  return nodes_[cur].value;
}

void RegressionTree::fit(const Dataset& data, const TreeConfig& config,
                         std::uint32_t numBins) {
  ownBinner_.fit(data.rows(), numBins);
  std::vector<std::vector<std::uint8_t>> binned(data.size());
  for (std::size_t i = 0; i < data.size(); ++i)
    binned[i] = ownBinner_.binRow(data.row(i));
  std::vector<std::size_t> rows(data.size());
  for (std::size_t i = 0; i < rows.size(); ++i) rows[i] = i;
  std::vector<std::size_t> features(data.numFeatures());
  for (std::size_t f = 0; f < features.size(); ++f) features[f] = f;
  fitBinned(binned, data.targets(), std::move(rows), features, ownBinner_,
            config);
}

int RegressionTree::depth() const {
  // Iterative depth computation over the node array.
  if (nodes_.empty()) return 0;
  std::vector<std::pair<std::int32_t, int>> stack{{0, 1}};
  int best = 0;
  while (!stack.empty()) {
    auto [idx, d] = stack.back();
    stack.pop_back();
    best = std::max(best, d);
    if (nodes_[static_cast<std::size_t>(idx)].feature >= 0) {
      stack.push_back({nodes_[static_cast<std::size_t>(idx)].left, d + 1});
      stack.push_back({nodes_[static_cast<std::size_t>(idx)].right, d + 1});
    }
  }
  return best;
}

}  // namespace hcp::ml
