#include "ml/mlp.hpp"

#include <algorithm>
#include <cmath>

namespace hcp::ml {

namespace {
struct AdamState {
  std::vector<double> m, v;
  explicit AdamState(std::size_t n) : m(n, 0.0), v(n, 0.0) {}
};

void adamStep(std::vector<double>& params, const std::vector<double>& grad,
              AdamState& state, double lr, std::size_t t) {
  constexpr double b1 = 0.9, b2 = 0.999, eps = 1e-8;
  const double bc1 = 1.0 - std::pow(b1, static_cast<double>(t));
  const double bc2 = 1.0 - std::pow(b2, static_cast<double>(t));
  for (std::size_t i = 0; i < params.size(); ++i) {
    state.m[i] = b1 * state.m[i] + (1 - b1) * grad[i];
    state.v[i] = b2 * state.v[i] + (1 - b2) * grad[i] * grad[i];
    params[i] -= lr * (state.m[i] / bc1) / (std::sqrt(state.v[i] / bc2) + eps);
  }
}
}  // namespace

std::vector<double> MlpRegressor::forward(
    const std::vector<double>& z,
    std::vector<std::vector<double>>* acts) const {
  std::vector<double> cur = z;
  if (acts) acts->push_back(cur);
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    const Layer& layer = layers_[l];
    std::vector<double> next(layer.out, 0.0);
    for (std::size_t o = 0; o < layer.out; ++o) {
      double s = layer.b[o];
      const double* wrow = &layer.w[o * layer.in];
      for (std::size_t i = 0; i < layer.in; ++i) s += wrow[i] * cur[i];
      // ReLU on hidden layers, identity on the output layer.
      next[o] = (l + 1 < layers_.size()) ? std::max(0.0, s) : s;
    }
    cur = std::move(next);
    if (acts) acts->push_back(cur);
  }
  return cur;
}

void MlpRegressor::fit(const Dataset& data) {
  HCP_CHECK(data.size() >= 8);
  const std::size_t d = data.numFeatures();
  scaler_.fit(data);

  // Standardize the target too; gradients stay well-scaled.
  {
    double m = 0.0;
    for (double y : data.targets()) m += y;
    m /= static_cast<double>(data.size());
    double v = 0.0;
    for (double y : data.targets()) v += (y - m) * (y - m);
    yMean_ = m;
    yStd_ = std::max(1e-9, std::sqrt(v / static_cast<double>(data.size())));
  }

  std::vector<std::vector<double>> X(data.size());
  std::vector<double> Y(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    X[i] = scaler_.transform(data.row(i));
    Y[i] = (data.target(i) - yMean_) / yStd_;
  }

  // Layer shapes: d -> hidden... -> 1, He initialization.
  Rng rng(config_.seed);
  layers_.clear();
  std::vector<std::size_t> shape = {d};
  for (std::size_t h : config_.hiddenLayers) shape.push_back(h);
  shape.push_back(1);
  for (std::size_t l = 0; l + 1 < shape.size(); ++l) {
    Layer layer;
    layer.in = shape[l];
    layer.out = shape[l + 1];
    layer.w.resize(layer.in * layer.out);
    layer.b.assign(layer.out, 0.0);
    const double scale = std::sqrt(2.0 / static_cast<double>(layer.in));
    for (double& w : layer.w) w = rng.normal(0.0, scale);
    layers_.push_back(std::move(layer));
  }

  // Validation split for early stopping.
  auto perm = rng.permutation(data.size());
  const auto valSize = std::max<std::size_t>(
      1, static_cast<std::size_t>(config_.validationFraction *
                                  static_cast<double>(data.size())));
  std::vector<std::size_t> valIdx(perm.begin(),
                                  perm.begin() +
                                      static_cast<std::ptrdiff_t>(valSize));
  std::vector<std::size_t> trainIdx(
      perm.begin() + static_cast<std::ptrdiff_t>(valSize), perm.end());

  std::vector<AdamState> wState, bState;
  for (const Layer& l : layers_) {
    wState.emplace_back(l.w.size());
    bState.emplace_back(l.b.size());
  }

  auto valLoss = [&] {
    double loss = 0.0;
    for (std::size_t i : valIdx) {
      const double p = forward(X[i], nullptr)[0];
      loss += (p - Y[i]) * (p - Y[i]);
    }
    return loss / static_cast<double>(valIdx.size());
  };

  bestValLoss_ = std::numeric_limits<double>::infinity();
  std::vector<Layer> bestLayers = layers_;
  std::size_t sinceBest = 0;
  std::size_t adamT = 0;
  epochsRun_ = 0;

  for (std::size_t epoch = 0; epoch < config_.maxEpochs; ++epoch) {
    rng.shuffle(trainIdx);
    for (std::size_t start = 0; start < trainIdx.size();
         start += config_.batchSize) {
      const std::size_t end =
          std::min(trainIdx.size(), start + config_.batchSize);
      const double invBatch = 1.0 / static_cast<double>(end - start);

      // Accumulate gradients over the batch.
      std::vector<std::vector<double>> gw(layers_.size()), gb(layers_.size());
      for (std::size_t l = 0; l < layers_.size(); ++l) {
        gw[l].assign(layers_[l].w.size(), 0.0);
        gb[l].assign(layers_[l].b.size(), 0.0);
      }
      for (std::size_t bi = start; bi < end; ++bi) {
        const std::size_t i = trainIdx[bi];
        std::vector<std::vector<double>> acts;
        const double pred = forward(X[i], &acts)[0];
        // Backprop MSE: dL/dpred = 2 (pred - y).
        std::vector<double> delta = {2.0 * (pred - Y[i])};
        for (std::size_t l = layers_.size(); l-- > 0;) {
          const Layer& layer = layers_[l];
          const auto& in = acts[l];
          std::vector<double> prevDelta(layer.in, 0.0);
          for (std::size_t o = 0; o < layer.out; ++o) {
            const double dOut = delta[o];
            if (dOut == 0.0) continue;
            double* gRow = &gw[l][o * layer.in];
            const double* wRow = &layer.w[o * layer.in];
            for (std::size_t j = 0; j < layer.in; ++j) {
              gRow[j] += dOut * in[j];
              prevDelta[j] += dOut * wRow[j];
            }
            gb[l][o] += dOut;
          }
          if (l > 0) {
            // ReLU derivative gates the propagated delta.
            const auto& act = acts[l];
            for (std::size_t j = 0; j < layer.in; ++j)
              if (act[j] <= 0.0) prevDelta[j] = 0.0;
          }
          delta = std::move(prevDelta);
        }
      }
      // L2 + average, then Adam.
      ++adamT;
      for (std::size_t l = 0; l < layers_.size(); ++l) {
        for (std::size_t k = 0; k < gw[l].size(); ++k)
          gw[l][k] = gw[l][k] * invBatch + config_.l2 * layers_[l].w[k];
        for (double& g : gb[l]) g *= invBatch;
        adamStep(layers_[l].w, gw[l], wState[l], config_.learningRate, adamT);
        adamStep(layers_[l].b, gb[l], bState[l], config_.learningRate, adamT);
      }
    }
    ++epochsRun_;

    const double loss = valLoss();
    if (loss < bestValLoss_ - 1e-6) {
      bestValLoss_ = loss;
      bestLayers = layers_;
      sinceBest = 0;
    } else if (++sinceBest >= config_.patience) {
      break;
    }
  }
  layers_ = std::move(bestLayers);
}

double MlpRegressor::predict(const std::vector<double>& row) const {
  HCP_CHECK(scaler_.fitted());
  const double z = forward(scaler_.transform(row), nullptr)[0];
  return z * yStd_ + yMean_;
}

}  // namespace hcp::ml
