#include "ml/dataset.hpp"

#include <cmath>

#include "ml/sample_source.hpp"

namespace hcp::ml {

Dataset Dataset::subset(const std::vector<std::size_t>& indices) const {
  Dataset out(numFeatures_);
  for (std::size_t i : indices) out.add(row(i), target(i));
  return out;
}

Dataset Dataset::subsetView(const std::vector<std::size_t>& indices) const {
  if (!liveToken_) liveToken_ = std::make_shared<const char>('\0');
  Dataset out(numFeatures_);
  out.base_ = this;
  out.baseLive_ = liveToken_;
  out.index_ = indices;
  out.targets_.reserve(indices.size());
  for (std::size_t i : indices) out.targets_.push_back(target(i));
  return out;
}

Split trainTestSplit(std::size_t n, double testFraction,
                     std::uint64_t seed) {
  HCP_CHECK(testFraction > 0.0 && testFraction < 1.0);
  Rng rng(seed);
  auto perm = rng.permutation(n);
  const auto testSize = static_cast<std::size_t>(
      std::max(1.0, std::round(testFraction * static_cast<double>(n))));
  Split split;
  split.test.assign(perm.begin(),
                    perm.begin() + static_cast<std::ptrdiff_t>(testSize));
  split.train.assign(perm.begin() + static_cast<std::ptrdiff_t>(testSize),
                     perm.end());
  return split;
}

std::vector<Split> kFoldSplits(std::size_t n, std::size_t k,
                               std::uint64_t seed) {
  HCP_CHECK(k >= 2 && k <= n);
  Rng rng(seed);
  const auto perm = rng.permutation(n);
  std::vector<Split> folds(k);
  for (std::size_t f = 0; f < k; ++f) {
    const std::size_t lo = f * n / k;
    const std::size_t hi = (f + 1) * n / k;
    for (std::size_t i = 0; i < n; ++i) {
      if (i >= lo && i < hi) folds[f].test.push_back(perm[i]);
      else folds[f].train.push_back(perm[i]);
    }
  }
  return folds;
}

void StandardScaler::fit(const Dataset& data) {
  HCP_CHECK(data.size() > 0);
  const std::size_t n = data.size();
  const std::size_t d = data.numFeatures();
  mean_.assign(d, 0.0);
  std_.assign(d, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const auto& r = data.row(i);
    for (std::size_t j = 0; j < d; ++j) mean_[j] += r[j];
  }
  for (double& m : mean_) m /= static_cast<double>(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto& r = data.row(i);
    for (std::size_t j = 0; j < d; ++j)
      std_[j] += (r[j] - mean_[j]) * (r[j] - mean_[j]);
  }
  for (double& s : std_) {
    s = std::sqrt(s / static_cast<double>(n));
    if (s < 1e-12) s = 1.0;  // constant column
  }
}

void StandardScaler::fit(const std::vector<std::vector<double>>& rows) {
  HCP_CHECK(!rows.empty());
  const std::size_t d = rows.front().size();
  mean_.assign(d, 0.0);
  std_.assign(d, 0.0);
  for (const auto& r : rows)
    for (std::size_t j = 0; j < d; ++j) mean_[j] += r[j];
  for (double& m : mean_) m /= static_cast<double>(rows.size());
  for (const auto& r : rows)
    for (std::size_t j = 0; j < d; ++j)
      std_[j] += (r[j] - mean_[j]) * (r[j] - mean_[j]);
  for (double& s : std_) {
    s = std::sqrt(s / static_cast<double>(rows.size()));
    if (s < 1e-12) s = 1.0;  // constant column
  }
}

void StandardScaler::fit(const RowSource& source) {
  const std::size_t n = source.size();
  HCP_CHECK(n > 0);
  const std::size_t d = source.numFeatures();
  mean_.assign(d, 0.0);
  std_.assign(d, 0.0);
  source.forEach(
      [&](std::size_t, const std::vector<double>& r, double) {
        for (std::size_t j = 0; j < d; ++j) mean_[j] += r[j];
      });
  for (double& m : mean_) m /= static_cast<double>(n);
  source.forEach(
      [&](std::size_t, const std::vector<double>& r, double) {
        for (std::size_t j = 0; j < d; ++j)
          std_[j] += (r[j] - mean_[j]) * (r[j] - mean_[j]);
      });
  for (double& s : std_) {
    s = std::sqrt(s / static_cast<double>(n));
    if (s < 1e-12) s = 1.0;  // constant column
  }
}

std::vector<double> StandardScaler::transform(
    const std::vector<double>& row) const {
  HCP_CHECK(fitted() && row.size() == mean_.size());
  std::vector<double> out(row.size());
  for (std::size_t j = 0; j < row.size(); ++j)
    out[j] = (row[j] - mean_[j]) / std_[j];
  return out;
}

}  // namespace hcp::ml
