#include "ml/sample_source.hpp"

#include "support/parallel.hpp"

namespace hcp::ml {

void DatasetSource::forEach(const RowFn& fn) const {
  const std::size_t n = data_->size();
  for (std::size_t i = 0; i < n; ++i) fn(i, data_->row(i), data_->target(i));
}

void DatasetSource::visitParallel(const RowFn& fn) const {
  support::parallelFor(0, data_->size(), 64, [&](std::size_t i) {
    fn(i, data_->row(i), data_->target(i));
  });
}

Dataset materialize(const RowSource& source) {
  Dataset out(source.numFeatures());
  source.forEach([&](std::size_t, const std::vector<double>& row,
                     double target) { out.add(row, target); });
  return out;
}

}  // namespace hcp::ml
