// Tabular dataset + split utilities for the regression stage.
//
// Rows are feature vectors (one per IR-operation sample), targets are the
// congestion percentages. Index-based splits (80/20 hold-out and k-fold)
// are seeded and deterministic, matching the paper's protocol (§IV-A).
#pragma once

#include <cstddef>
#include <istream>
#include <ostream>
#include <vector>

#include "support/error.hpp"
#include "support/rng.hpp"

namespace hcp::ml {

class Dataset {
 public:
  Dataset() = default;
  explicit Dataset(std::size_t numFeatures) : numFeatures_(numFeatures) {}

  void add(std::vector<double> row, double target) {
    HCP_CHECK_MSG(!isView(), "cannot add rows to a subset view");
    if (numFeatures_ == 0) numFeatures_ = row.size();
    HCP_CHECK_MSG(row.size() == numFeatures_,
                  "row has " << row.size() << " features, expected "
                             << numFeatures_);
    rows_.push_back(std::move(row));
    targets_.push_back(target);
  }

  void merge(const Dataset& other) {
    for (std::size_t i = 0; i < other.size(); ++i)
      add(other.row(i), other.target(i));
  }

  std::size_t size() const { return targets_.size(); }
  std::size_t numFeatures() const { return numFeatures_; }
  const std::vector<double>& row(std::size_t i) const {
    if (base_ != nullptr) {
      HCP_CHECK(i < index_.size());
      return base_->row(index_[i]);
    }
    HCP_CHECK(i < rows_.size());
    return rows_[i];
  }
  double target(std::size_t i) const {
    HCP_CHECK(i < targets_.size());
    return targets_[i];
  }
  /// Full row storage; only valid on owning datasets (views share their
  /// base's storage — iterate via row(i) instead).
  const std::vector<std::vector<double>>& rows() const {
    HCP_CHECK_MSG(!isView(), "rows() is not available on a subset view");
    return rows_;
  }
  const std::vector<double>& targets() const { return targets_; }

  /// Deep-copying subset by row indices.
  Dataset subset(const std::vector<std::size_t>& indices) const;

  /// Non-owning subset view: shares the base dataset's feature rows instead
  /// of copying them (targets are materialized — they are cheap and keep
  /// targets() usable). The view is valid only while the base dataset (and,
  /// transitively, its base) outlives it; k-fold CV is the intended use.
  Dataset subsetView(const std::vector<std::size_t>& indices) const;

  bool isView() const { return base_ != nullptr; }

 private:
  std::size_t numFeatures_ = 0;
  std::vector<std::vector<double>> rows_;
  std::vector<double> targets_;
  // View state: when base_ is set, rows_ stays empty and row i resolves to
  // base_->row(index_[i]).
  const Dataset* base_ = nullptr;
  std::vector<std::size_t> index_;
};

struct Split {
  std::vector<std::size_t> train;
  std::vector<std::size_t> test;
};

/// Shuffled hold-out split (e.g. testFraction = 0.2 for the paper's 80/20).
Split trainTestSplit(std::size_t n, double testFraction, std::uint64_t seed);

/// Shuffled k-fold splits; every index appears in exactly one test fold.
std::vector<Split> kFoldSplits(std::size_t n, std::size_t k,
                               std::uint64_t seed);

/// Column-wise standardization fitted on training data.
class StandardScaler {
 public:
  void fit(const Dataset& data);
  void fit(const std::vector<std::vector<double>>& rows);
  std::vector<double> transform(const std::vector<double>& row) const;
  bool fitted() const { return !mean_.empty(); }
  const std::vector<double>& mean() const { return mean_; }
  const std::vector<double>& std() const { return std_; }

  /// Text serialization (used by ml/serialize).
  void write(std::ostream& os) const;
  void read(std::istream& is);

 private:
  std::vector<double> mean_;
  std::vector<double> std_;
};

}  // namespace hcp::ml
