// Tabular dataset + split utilities for the regression stage.
//
// Rows are feature vectors (one per IR-operation sample), targets are the
// congestion percentages. Index-based splits (80/20 hold-out and k-fold)
// are seeded and deterministic, matching the paper's protocol (§IV-A).
#pragma once

#include <cstddef>
#include <istream>
#include <memory>
#include <ostream>
#include <utility>
#include <vector>

#include "support/error.hpp"
#include "support/rng.hpp"

namespace hcp::ml {

class RowSource;

class Dataset {
 public:
  Dataset() = default;
  explicit Dataset(std::size_t numFeatures) : numFeatures_(numFeatures) {}

  // Moving a dataset relocates (or, for assignment, destroys) its row
  // storage, so any subset view holding a pointer to it would dangle.
  // Both operations expire the liveness token views watch: a stale view
  // then fails loudly on first row access instead of reading freed memory.
  Dataset(const Dataset& other)
      : numFeatures_(other.numFeatures_),
        rows_(other.rows_),
        targets_(other.targets_),
        base_(other.base_),
        index_(other.index_),
        baseLive_(other.baseLive_) {}
  Dataset& operator=(const Dataset& other) {
    if (this == &other) return *this;
    liveToken_.reset();  // this object's old rows go away
    numFeatures_ = other.numFeatures_;
    rows_ = other.rows_;
    targets_ = other.targets_;
    base_ = other.base_;
    index_ = other.index_;
    baseLive_ = other.baseLive_;
    return *this;
  }
  Dataset(Dataset&& other) noexcept
      : numFeatures_(other.numFeatures_),
        rows_(std::move(other.rows_)),
        targets_(std::move(other.targets_)),
        base_(other.base_),
        index_(std::move(other.index_)),
        baseLive_(std::move(other.baseLive_)) {
    other.liveToken_.reset();  // views of `other` must not follow the move
  }
  Dataset& operator=(Dataset&& other) noexcept {
    if (this == &other) return *this;
    liveToken_.reset();
    other.liveToken_.reset();
    numFeatures_ = other.numFeatures_;
    rows_ = std::move(other.rows_);
    targets_ = std::move(other.targets_);
    base_ = other.base_;
    index_ = std::move(other.index_);
    baseLive_ = std::move(other.baseLive_);
    return *this;
  }
  ~Dataset() = default;

  void add(std::vector<double> row, double target) {
    HCP_CHECK_MSG(!isView(), "cannot add rows to a subset view");
    if (numFeatures_ == 0) numFeatures_ = row.size();
    HCP_CHECK_MSG(row.size() == numFeatures_,
                  "row has " << row.size() << " features, expected "
                             << numFeatures_);
    rows_.push_back(std::move(row));
    targets_.push_back(target);
  }

  void merge(const Dataset& other) {
    HCP_CHECK_MSG(!isView(), "cannot merge into a subset view");
    HCP_CHECK_MSG(numFeatures_ == 0 || other.size() == 0 ||
                      other.numFeatures() == numFeatures_,
                  "merge feature-count mismatch: dataset has "
                      << numFeatures_ << " features, other has "
                      << other.numFeatures());
    for (std::size_t i = 0; i < other.size(); ++i)
      add(other.row(i), other.target(i));
  }

  std::size_t size() const { return targets_.size(); }
  std::size_t numFeatures() const { return numFeatures_; }
  const std::vector<double>& row(std::size_t i) const {
    if (base_ != nullptr) {
      HCP_CHECK_MSG(!baseLive_.expired(),
                    "subset view used after its base dataset was destroyed, "
                    "moved or reassigned");
      HCP_CHECK(i < index_.size());
      return base_->row(index_[i]);
    }
    HCP_CHECK(i < rows_.size());
    return rows_[i];
  }
  double target(std::size_t i) const {
    HCP_CHECK(i < targets_.size());
    return targets_[i];
  }
  /// Full row storage; only valid on owning datasets (views share their
  /// base's storage — iterate via row(i) instead).
  const std::vector<std::vector<double>>& rows() const {
    HCP_CHECK_MSG(!isView(), "rows() is not available on a subset view");
    return rows_;
  }
  const std::vector<double>& targets() const { return targets_; }

  /// Deep-copying subset by row indices.
  Dataset subset(const std::vector<std::size_t>& indices) const;

  /// Non-owning subset view: shares the base dataset's feature rows instead
  /// of copying them (targets are materialized — they are cheap and keep
  /// targets() usable). The view is valid only while the base dataset (and,
  /// transitively, its base) outlives it; k-fold CV is the intended use.
  /// Row access through a view whose base was destroyed, moved from or
  /// reassigned fails loudly (hcp::Error) instead of dereferencing freed
  /// storage.
  Dataset subsetView(const std::vector<std::size_t>& indices) const;

  bool isView() const { return base_ != nullptr; }

 private:
  std::size_t numFeatures_ = 0;
  std::vector<std::vector<double>> rows_;
  std::vector<double> targets_;
  // View state: when base_ is set, rows_ stays empty and row i resolves to
  // base_->row(index_[i]).
  const Dataset* base_ = nullptr;
  std::vector<std::size_t> index_;
  // Liveness handshake between a base and its views. The base lazily
  // creates liveToken_ on first subsetView(); each view holds a weak_ptr
  // copy in baseLive_. Destruction, move or reassignment of the base drops
  // the token, so every stale view's row() check trips.
  mutable std::shared_ptr<const char> liveToken_;
  std::weak_ptr<const char> baseLive_;
};

struct Split {
  std::vector<std::size_t> train;
  std::vector<std::size_t> test;
};

/// Shuffled hold-out split (e.g. testFraction = 0.2 for the paper's 80/20).
Split trainTestSplit(std::size_t n, double testFraction, std::uint64_t seed);

/// Shuffled k-fold splits; every index appears in exactly one test fold.
std::vector<Split> kFoldSplits(std::size_t n, std::size_t k,
                               std::uint64_t seed);

/// Column-wise standardization fitted on training data.
class StandardScaler {
 public:
  void fit(const Dataset& data);
  void fit(const std::vector<std::vector<double>>& rows);
  /// Streaming fit: two ordered passes over the source, summing in the same
  /// order as the in-memory overloads — identical moments to fit(Dataset)
  /// on the materialized equivalent.
  void fit(const RowSource& source);
  std::vector<double> transform(const std::vector<double>& row) const;
  bool fitted() const { return !mean_.empty(); }
  const std::vector<double>& mean() const { return mean_; }
  const std::vector<double>& std() const { return std_; }

  /// Text serialization (used by ml/serialize).
  void write(std::ostream& os) const;
  void read(std::istream& is);

 private:
  std::vector<double> mean_;
  std::vector<double> std_;
};

}  // namespace hcp::ml
