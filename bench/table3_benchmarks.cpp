// Table III — property summary of the benchmark suite (paper §IV): WNS,
// frequency and routing-congestion statistics across the three top-level
// combinations, plus the Max/Min/Avg summary row structure of the paper.
#include "bench_common.hpp"
#include "support/stats.hpp"

using namespace hcp;

namespace {

/// The bench body; session plumbing lives in runBenchMain.
void runBench(hcp::bench::BenchSession&) {
  const auto device = fpga::Device::xc7z020like();
  const auto flows = bench::runBenchmarkSuite(device);

  Table perDesign("Per-design implementation results");
  perDesign.setHeader({"Design", "WNS(ns)", "Freq.(MHz)", "Vert Cong(%)",
                       "Horiz Cong(%)", "Avg (V,H)(%)", "Samples"});
  std::vector<double> wns, freq, v, h, avg;
  for (const auto& flow : flows) {
    const double a = 0.5 * (flow.maxVCongestion + flow.maxHCongestion);
    perDesign.addRow({flow.name, fmt(flow.wnsNs, 3),
                      fmt(flow.maxFrequencyMhz, 1),
                      fmt(flow.maxVCongestion, 2),
                      fmt(flow.maxHCongestion, 2), fmt(a, 2),
                      std::to_string(flow.traced.samples.size())});
    wns.push_back(flow.wnsNs);
    freq.push_back(flow.maxFrequencyMhz);
    v.push_back(flow.maxVCongestion);
    h.push_back(flow.maxHCongestion);
    avg.push_back(a);
  }
  bench::emit(perDesign, "table3_per_design.csv");

  Table summary(
      "Table III: property summary (paper: WNS -3.25/-13.64/-8.39, "
      "Freq 75.5/42.3/54.4, V 133.33/5.06/60.58, H 178.96/8.90/72.47)");
  summary.setHeader({"Metrics", "WNS(ns)", "Freq.(MHz)", "Vertical Cong(%)",
                     "Horizontal Cong(%)", "Avg. (V,H)(%)"});
  auto row = [&](const char* tag, auto pick) {
    summary.addRow({tag, fmt(pick(wns), 3), fmt(pick(freq), 1),
                    fmt(pick(v), 2), fmt(pick(h), 2), fmt(pick(avg), 2)});
  };
  row("Max", [](const std::vector<double>& x) { return maxOf(x); });
  row("Min", [](const std::vector<double>& x) { return minOf(x); });
  row("Avg.", [](const std::vector<double>& x) { return mean(x); });
  bench::emit(summary, "table3_benchmarks.csv");

  // Per-tile distribution pooled over the suite (the paper's congestion
  // metrics are per-CLB; this mirrors its Min/Avg rows at tile granularity).
  std::vector<double> tileV, tileH;
  for (const auto& flow : flows) {
    const auto& map = flow.impl.routing.map;
    for (std::uint32_t y = 0; y < map.height(); ++y)
      for (std::uint32_t x = 0; x < map.width(); ++x) {
        tileV.push_back(map.vUtil(x, y));
        tileH.push_back(map.hUtil(x, y));
      }
  }
  Table tiles("Pooled per-tile congestion distribution");
  tiles.setHeader({"Metric", "Max", "P95", "Mean", "Median"});
  tiles.addRow({"Vertical(%)", fmt(maxOf(tileV), 2),
                fmt(percentile(tileV, 95), 2), fmt(mean(tileV), 2),
                fmt(median(tileV), 2)});
  tiles.addRow({"Horizontal(%)", fmt(maxOf(tileH), 2),
                fmt(percentile(tileH, 95), 2), fmt(mean(tileH), 2),
                fmt(median(tileH), 2)});
  bench::emit(tiles, "table3_tile_distribution.csv");
}

}  // namespace

int main(int argc, char** argv) {
  return hcp::bench::runBenchMain("table3_benchmarks", argc, argv, runBench);
}
