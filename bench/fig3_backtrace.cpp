// Fig 3 — the back-tracing flow (paper §III-A1): walks congestion-per-CLB
// back to cells, nets, module instances, IR operations and source lines,
// printing sample chains and consistency counts.
#include <algorithm>

#include "bench_common.hpp"
#include "trace/backtrace.hpp"

using namespace hcp;

namespace {

/// The bench body; session plumbing lives in runBenchMain.
void runBench(hcp::bench::BenchSession&) {
  const auto device = fpga::Device::xc7z020like();
  core::FlowConfig cfg;
  cfg.seed = bench::kSeed;
  std::fprintf(stderr, "[fig3] face_detection...\n");
  const auto flow = core::runFlow(apps::faceDetection({}), device, cfg);

  // Chains for the cells on the three most congested tiles.
  struct Hot {
    double util;
    rtl::CellId cell;
  };
  std::vector<Hot> hot;
  for (rtl::CellId c = 0; c < flow.rtl.netlist.numCells(); ++c) {
    if (flow.rtl.netlist.cell(c).ops.empty()) continue;
    const auto tile = flow.impl.tileOfCell(c);
    hot.push_back(
        {std::max(flow.impl.routing.map.vUtil(tile.x, tile.y),
                  flow.impl.routing.map.hUtil(tile.x, tile.y)),
         c});
  }
  std::sort(hot.begin(), hot.end(),
            [](const Hot& a, const Hot& b) { return a.util > b.util; });

  std::printf("=== Fig 3: back-tracing chains (hottest cells) ===\n");
  for (std::size_t i = 0; i < std::min<std::size_t>(8, hot.size()); ++i)
    std::printf("%s\n",
                trace::describeCell(flow.rtl, flow.impl,
                                    *flow.design.module, hot[i].cell)
                    .c_str());

  // Consistency: every sample's chain resolves.
  Table stats("Back-trace consistency");
  stats.setHeader({"Metric", "Value"});
  stats.addRow({"cells traced", std::to_string(flow.traced.cellsTraced)});
  stats.addRow({"(instance, op) samples",
                std::to_string(flow.traced.samples.size())});
  std::size_t withLine = 0;
  for (const auto& s : flow.traced.samples)
    if (s.sourceLine > 0) ++withLine;
  stats.addRow({"samples with source line", std::to_string(withLine)});
  stats.addRow({"netlist cells",
                std::to_string(flow.rtl.netlist.numCells())});
  bench::emit(stats, "fig3_backtrace.csv");
}

}  // namespace

int main(int argc, char** argv) {
  return hcp::bench::runBenchMain("fig3_backtrace", argc, argv, runBench);
}
