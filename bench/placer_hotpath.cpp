// Placer/router hot-path benchmark — the BENCH_placer.json trajectory.
//
// Measures the incremental cost kernels against the retained pre-PR
// reference paths, on the paper's table-3 benchmark suite (face detection,
// digit+spam, vision combined):
//
//   - placer: CostUpdate::kReference (per-move O(fanout) box recompute, the
//     pre-incremental algorithm) vs CostUpdate::kIncremental (O(1)
//     edge-count updates) — moves/sec, ns/move and the speedup. Both runs
//     must produce bit-identical placements (checked here, hard failure).
//   - router: default dirty-tile overflow sweep vs the full-grid reference
//     scan — iterations/sec and the sweep speedup, again with identical
//     results demanded.
//   - suite: wall clock of the whole pack+place+route suite pinned to one
//     thread vs the configured --threads N limit (designs run concurrently
//     on the deterministic pool).
//
// Every number lands in BENCH_placer.json (written fail-safe through
// CheckedFileWriter, like every other artifact sink). CI runs this binary
// at 1 and N threads, gates the two telemetry reports on counter equality
// through `hcp_cli compare-reports`, and asserts the placer speedup floor.
#include <ctime>

#include <chrono>
#include <cmath>
#include <functional>
#include <limits>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "fpga/placer.hpp"
#include "fpga/router.hpp"
#include "rtl/generator.hpp"
#include "support/textio.hpp"

namespace {

using namespace hcp;

/// Wall clock, for the whole-suite timings where elapsed time is the
/// quantity of interest.
double wallMs(const std::function<void()>& body) {
  const auto t0 = std::chrono::steady_clock::now();
  body();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

/// Process CPU time, for the single-threaded kernel timings: virtualized
/// hosts steal wall time in unpredictable bursts (this shows up as tens of
/// percent run-to-run swing), while CPU time counts only cycles the process
/// actually executed.
double timeMs(const std::function<void()>& body) {
  timespec a{}, b{};
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &a);
  body();
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &b);
  return (static_cast<double>(b.tv_sec - a.tv_sec)) * 1e3 +
         (static_cast<double>(b.tv_nsec - a.tv_nsec)) * 1e-6;
}

/// Best-of-N for a pair of bodies, interleaved A,B,A,B,... so slow drift in
/// the host hits both sides equally instead of biasing whichever ran
/// second.
std::pair<double, double> bestMsInterleaved(
    int reps, const std::function<void()>& a,
    const std::function<void()>& b) {
  double bestA = std::numeric_limits<double>::infinity();
  double bestB = bestA;
  for (int i = 0; i < reps; ++i) {
    bestA = std::min(bestA, timeMs(a));
    bestB = std::min(bestB, timeMs(b));
  }
  return {bestA, bestB};
}

struct DesignRow {
  std::string name;
  std::size_t clusters = 0;
  std::size_t nets = 0;
  std::uint64_t movesTried = 0;
  double placerRefMs = 0.0;
  double placerIncMs = 0.0;
  double routerMs = 0.0;
  double routerFullScanMs = 0.0;
  int routerIters = 0;

  double refMovesPerSec() const { return movesTried / (placerRefMs / 1e3); }
  double incMovesPerSec() const { return movesTried / (placerIncMs / 1e3); }
  double incNsPerMove() const {
    return placerIncMs * 1e6 / static_cast<double>(movesTried);
  }
  double placerSpeedup() const { return placerRefMs / placerIncMs; }
  double routerItersPerSec() const {
    return routerIters / (routerMs / 1e3);
  }
  double routerScanSpeedup() const { return routerFullScanMs / routerMs; }
};

void checkIdentical(const std::string& name, const fpga::Placement& a,
                    const fpga::Placement& b) {
  HCP_CHECK_MSG(a.movesTried == b.movesTried &&
                    a.movesAccepted == b.movesAccepted,
                name << ": reference and incremental placer diverged in "
                        "move counts — the kernels are not equivalent");
  HCP_CHECK_MSG(a.cost == b.cost,
                name << ": placer cost differs between kernels ("
                     << a.cost << " vs " << b.cost << ")");
  for (std::size_t c = 0; c < a.tileOfCluster.size(); ++c)
    HCP_CHECK_MSG(a.tileOfCluster[c].x == b.tileOfCluster[c].x &&
                      a.tileOfCluster[c].y == b.tileOfCluster[c].y,
                  name << ": cluster " << c
                       << " placed differently by the two kernels");
}

void checkIdentical(const std::string& name, const fpga::RoutingResult& a,
                    const fpga::RoutingResult& b) {
  HCP_CHECK_MSG(a.totalWirelength == b.totalWirelength &&
                    a.overflowTiles == b.overflowTiles &&
                    a.iterationsRun == b.iterationsRun,
                name << ": dirty-tile and full-grid router sweeps diverged");
}

int runBody(hcp::bench::BenchSession& session) {
  const auto device = fpga::Device::xc7z020like();
  const std::size_t threads = session.threads();
  constexpr int kReps = 3;

  // The table-3 suite, packed once (synthesis/RTL/packing are untimed
  // fixtures here; placer_hotpath times only the kernels under test).
  struct Fixture {
    std::string name;
    fpga::Packing packing;
  };
  std::vector<Fixture> fixtures;
  {
    std::vector<apps::AppDesign> designs;
    designs.push_back(apps::faceDetection({}));
    designs.push_back(apps::digitSpamCombined());
    designs.push_back(apps::visionCombined());
    for (auto& app : designs) {
      Fixture f;
      f.name = app.name;
      const auto design =
          hls::synthesize(std::move(app.module), app.directives, {});
      const auto rtl = rtl::generateRtl(design);
      f.packing = fpga::pack(rtl.netlist, device);
      fixtures.push_back(std::move(f));
    }
  }

  std::vector<DesignRow> rows;
  std::vector<fpga::Placement> placements;  // incremental, reused for router
  for (const Fixture& f : fixtures) {
    DesignRow row;
    row.name = f.name;
    row.clusters = f.packing.clusters.size();
    row.nets = f.packing.nets.size();

    fpga::PlacerConfig ref;
    ref.seed = hcp::bench::kSeed;
    ref.costUpdate = fpga::PlacerConfig::CostUpdate::kReference;
    fpga::PlacerConfig inc = ref;
    inc.costUpdate = fpga::PlacerConfig::CostUpdate::kIncremental;

    fpga::Placement refPlacement, incPlacement;
    std::tie(row.placerRefMs, row.placerIncMs) = bestMsInterleaved(
        kReps, [&] { refPlacement = fpga::place(f.packing, device, ref); },
        [&] { incPlacement = fpga::place(f.packing, device, inc); });
    checkIdentical(f.name, refPlacement, incPlacement);
    row.movesTried = incPlacement.movesTried;

    fpga::RouterConfig dirty;
    fpga::RouterConfig fullScan;
    fullScan.dirtyTileScan = false;
    fpga::RoutingResult dirtyResult, fullResult;
    std::tie(row.routerFullScanMs, row.routerMs) = bestMsInterleaved(
        kReps,
        [&] {
          fullResult = fpga::route(f.packing, incPlacement, device, fullScan);
        },
        [&] {
          dirtyResult = fpga::route(f.packing, incPlacement, device, dirty);
        });
    checkIdentical(f.name, dirtyResult, fullResult);
    row.routerIters = dirtyResult.iterationsRun;

    std::fprintf(stderr,
                 "[placer] %-16s %7llu moves  ref %8.1f ms  inc %8.1f ms  "
                 "(%5.2fx, %.0f ns/move)  router %6.1f ms (%d iters, "
                 "sweep %4.2fx)\n",
                 f.name.c_str(),
                 static_cast<unsigned long long>(row.movesTried),
                 row.placerRefMs, row.placerIncMs, row.placerSpeedup(),
                 row.incNsPerMove(), row.routerMs, row.routerIters,
                 row.routerScanSpeedup());
    rows.push_back(row);
    placements.push_back(std::move(incPlacement));
  }

  // Whole-suite place+route wall clock, serial vs the configured limit:
  // designs run concurrently on the deterministic pool, so this is the
  // flow-level view of the same hot path.
  const auto suite = [&] {
    const auto results = support::parallelMapIndex(
        fixtures.size(), [&](std::size_t i) {
          fpga::PlacerConfig cfg;
          cfg.seed = hcp::bench::kSeed;
          const auto placement =
              fpga::place(fixtures[i].packing, device, cfg);
          const auto routing =
              fpga::route(fixtures[i].packing, placement, device, {});
          return routing.totalWirelength;
        });
    double sum = 0.0;
    for (double r : results) sum += r;
    return sum;
  };
  double suiteSerialMs, suiteParallelMs;
  {
    support::ScopedThreadLimit serial(1);
    suiteSerialMs = wallMs([&] { suite(); });
  }
  suiteParallelMs = wallMs([&] { suite(); });

  double totalRefMs = 0.0, totalIncMs = 0.0;
  for (const DesignRow& r : rows) {
    totalRefMs += r.placerRefMs;
    totalIncMs += r.placerIncMs;
  }
  const double overallSpeedup = totalRefMs / totalIncMs;
  std::fprintf(stderr,
               "[placer] suite placer speedup %.2fx   suite place+route "
               "serial %.1f ms  %zu threads %.1f ms\n",
               overallSpeedup, suiteSerialMs, threads, suiteParallelMs);

  support::txt::CheckedFileWriter writer("BENCH_placer.json", "benchout");
  auto& json = writer.stream();
  json << "{\n  \"threads\": " << threads
       << ",\n  \"placer_speedup_overall\": " << overallSpeedup
       << ",\n  \"suite_serial_ms\": " << suiteSerialMs
       << ",\n  \"suite_parallel_ms\": " << suiteParallelMs
       << ",\n  \"suite_parallel_speedup\": "
       << (suiteParallelMs > 0 ? suiteSerialMs / suiteParallelMs : 0.0)
       << ",\n  \"designs\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const DesignRow& r = rows[i];
    json << "    {\"design\": \"" << r.name << "\""
         << ", \"clusters\": " << r.clusters << ", \"nets\": " << r.nets
         << ", \"moves_tried\": " << r.movesTried
         << ", \"placer_ref_ms\": " << r.placerRefMs
         << ", \"placer_inc_ms\": " << r.placerIncMs
         << ", \"placer_ref_moves_per_sec\": " << r.refMovesPerSec()
         << ", \"placer_inc_moves_per_sec\": " << r.incMovesPerSec()
         << ", \"placer_inc_ns_per_move\": " << r.incNsPerMove()
         << ", \"placer_speedup\": " << r.placerSpeedup()
         << ", \"router_ms\": " << r.routerMs
         << ", \"router_iters\": " << r.routerIters
         << ", \"router_iters_per_sec\": " << r.routerItersPerSec()
         << ", \"router_fullscan_ms\": " << r.routerFullScanMs
         << ", \"router_sweep_speedup\": " << r.routerScanSpeedup() << "}"
         << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  writer.commit();
  std::fprintf(stderr, "[placer] report written to BENCH_placer.json\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return hcp::bench::runBenchMain(
      "placer_hotpath", argc, argv,
      [&](hcp::bench::BenchSession& session) { runBody(session); });
}
