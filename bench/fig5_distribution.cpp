// Fig 5 — spatial distribution of the vertical congestion metric for Face
// Detection (paper §III-C1): congestion concentrates in the device centre
// and falls off toward the margins, which is why unroll replicas placed at
// the margin become label outliers (the motivation for the filter).
#include "bench_common.hpp"
#include "support/stats.hpp"
#include "trace/backtrace.hpp"

using namespace hcp;

namespace {

/// The bench body; session plumbing lives in runBenchMain.
void runBench(hcp::bench::BenchSession&) {
  const auto device = fpga::Device::xc7z020like();
  core::FlowConfig cfg;
  cfg.seed = bench::kSeed;
  std::fprintf(stderr, "[fig5] face_detection...\n");
  const auto flow = core::runFlow(apps::faceDetection({}), device, cfg);

  std::printf("=== Fig 5: vertical congestion map (smoothed) ===\n%s\n",
              flow.impl.routing.map.smoothed(2).toAscii(true).c_str());

  // Radial profile: mean vertical utilization by distance from the centre.
  const auto& map = flow.impl.routing.map;
  constexpr int kRings = 8;
  std::array<double, kRings> sum{};
  std::array<std::size_t, kRings> count{};
  for (std::uint32_t y = 0; y < map.height(); ++y) {
    for (std::uint32_t x = 0; x < map.width(); ++x) {
      const int ring = std::min(
          kRings - 1,
          static_cast<int>(device.centreRadius(x, y) * kRings));
      sum[ring] += map.vUtil(x, y);
      ++count[ring];
    }
  }
  Table radial("Radial profile of vertical congestion (centre -> margin)");
  radial.setHeader({"Ring (0=centre)", "Tiles", "Mean V util(%)"});
  for (int r = 0; r < kRings; ++r)
    radial.addRow({std::to_string(r), std::to_string(count[r]),
                   fmt(count[r] ? sum[r] / count[r] : 0.0, 2)});
  bench::emit(radial, "fig5_radial.csv");

  // Replica-label divergence: the basis of the marginal filter.
  auto samples = flow.traced.samples;
  const auto stats = trace::filterMarginal(samples);
  std::vector<double> central, marginal;
  for (const auto& s : samples)
    (s.centreRadius < 0.55 ? central : marginal).push_back(s.vCongestion);
  Table divergence("Sample labels by placement region");
  divergence.setHeader({"Region", "Samples", "Mean V label(%)",
                        "Median V label(%)"});
  divergence.addRow({"centre (r<0.55)", std::to_string(central.size()),
                     fmt(mean(central), 2), fmt(median(central), 2)});
  divergence.addRow({"margin (r>=0.55)", std::to_string(marginal.size()),
                     fmt(mean(marginal), 2), fmt(median(marginal), 2)});
  bench::emit(divergence, "fig5_divergence.csv");
  std::printf("marginal ops filtered: %zu of %zu (%.1f%%; paper: ~3.4%%)\n",
              stats.marginal, stats.total, 100.0 * stats.fraction());
}

}  // namespace

int main(int argc, char** argv) {
  return hcp::bench::runBenchMain("fig5_distribution", argc, argv, runBench);
}
