// Closed-loop hcp_serve throughput/latency bench — the BENCH_serve.json
// trajectory.
//
// Drives serve::Server in-process through scripted request windows (one
// flush per timed window) and measures:
//
//   - cold:    6 unique flow requests against an empty flow cache — every
//              one pays the full synthesize -> place -> route -> trace cost
//   - warm:    the same 6 requests x5 rounds, now replayed from the cache
//   - predict: hotspot predictions from the preloaded model (no PAR at all)
//   - batched: all 6 warm requests in a single window at 1/2/4 threads —
//              the response bytes must be identical at every thread count
//
// Two gates hard-fail the binary (exit 1) instead of merely reporting:
// warm QPS must be at least 5x cold QPS (the daemon's whole point is that
// the cache-backed steady state is much cheaper than first contact), and
// the thread sweep must be byte-identical. CI runs this and diffs the
// numbers via `hcp_cli compare-reports --bench-out`.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <filesystem>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "apps/registry.hpp"
#include "bench_common.hpp"
#include "core/predictor.hpp"
#include "serve/server.hpp"
#include "support/textio.hpp"

namespace {

using namespace hcp;

double wallMs(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

double percentile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const auto idx = static_cast<std::size_t>(std::max(
      0.0, std::ceil(q * static_cast<double>(values.size())) - 1.0));
  return values[std::min(idx, values.size() - 1)];
}

struct PhaseStats {
  std::size_t requests = 0;
  double totalMs = 0.0;
  std::vector<double> latenciesMs;

  double qps() const {
    return totalMs > 0 ? 1000.0 * static_cast<double>(requests) / totalMs
                       : 0.0;
  }
  void write(std::ostream& os) const {
    os << "{\"requests\": " << requests << ", \"total_ms\": " << totalMs
       << ", \"qps\": " << qps()
       << ", \"p50_ms\": " << percentile(latenciesMs, 0.50)
       << ", \"p99_ms\": " << percentile(latenciesMs, 0.99) << "}";
  }
};

/// Feeds one request window (the lines plus a flush) through the server and
/// returns the response bytes. Any ok:false response is a bench bug.
std::string runWindow(serve::Server& server,
                      const std::vector<std::string>& lines) {
  std::string in;
  for (const auto& l : lines) {
    in += l;
    in += '\n';
  }
  std::istringstream is(in);
  std::ostringstream os;
  HCP_CHECK_MSG(server.serve(is, os), "serve window failed");
  const std::string out = os.str();
  HCP_CHECK_MSG(out.find("\"ok\":false") == std::string::npos,
                "unexpected error response: " << out);
  return out;
}

/// One timed window per request: per-request latency and phase totals.
PhaseStats timedPhase(serve::Server& server,
                      const std::vector<std::string>& lines) {
  PhaseStats stats;
  stats.requests = lines.size();
  for (const auto& line : lines) {
    stats.latenciesMs.push_back(wallMs([&] { runWindow(server, {line}); }));
    stats.totalMs += stats.latenciesMs.back();
  }
  return stats;
}

int runBody(bench::BenchSession& session) {
  namespace fs = std::filesystem;

  // A scratch cache of our own: the cold phase is only cold if nothing —
  // including a previous bench run — pre-populated it.
  const std::string cacheDir = "serve_qps_cache";
  fs::remove_all(cacheDir);
  support::flowcache::ScopedCacheDir cache(cacheDir);

  // Train the smallest model once (linear, one design, seed 42 — a key no
  // bench request uses, so the training flow cannot warm the cold phase).
  const std::string modelPath = "serve_qps_model.hcp";
  const auto device = fpga::Device::xc7z020like();
  {
    std::fprintf(stderr, "[serve_qps] training linear model...\n");
    core::FlowConfig cfg;
    cfg.seed = bench::kSeed;
    std::vector<apps::AppDesign> designs;
    designs.push_back(apps::makeDesign("digit_recognition"));
    const auto flows = core::runFlows(designs, device, cfg);
    const auto dataset = core::buildDataset(flows, {});
    core::PredictorOptions opts;
    opts.kind = core::ModelKind::Linear;
    core::CongestionPredictor predictor(opts);
    predictor.train(dataset);
    predictor.save(modelPath);
  }

  serve::ServerConfig config;
  config.modelPath = modelPath;
  serve::Server server(config);

  const std::vector<std::string> kFlowRequests = {
      R"({"id":"f1","op":"flow","design":"digit_recognition","seed":7})",
      R"({"id":"f2","op":"flow","design":"digit_recognition","seed":8})",
      R"({"id":"f3","op":"flow","design":"digit_recognition","seed":9})",
      R"({"id":"f4","op":"flow","design":"spam_filter","seed":7})",
      R"({"id":"f5","op":"flow","design":"spam_filter","seed":8})",
      R"({"id":"f6","op":"flow","design":"spam_filter","seed":9})",
  };
  const std::vector<std::string> kPredictRequests = {
      R"({"id":"p1","op":"predict","design":"digit_recognition","top_k":5})",
      R"({"id":"p2","op":"predict","design":"digit_recognition","top_k":10})",
      R"({"id":"p3","op":"predict","design":"spam_filter","top_k":5})",
      R"({"id":"p4","op":"predict","design":"spam_filter","top_k":10})",
  };

  std::fprintf(stderr, "[serve_qps] cold phase (%zu full flows)...\n",
               kFlowRequests.size());
  const PhaseStats cold = timedPhase(server, kFlowRequests);

  std::fprintf(stderr, "[serve_qps] warm phase (5 rounds from cache)...\n");
  PhaseStats warm;
  for (int round = 0; round < 5; ++round) {
    const PhaseStats r = timedPhase(server, kFlowRequests);
    warm.requests += r.requests;
    warm.totalMs += r.totalMs;
    warm.latenciesMs.insert(warm.latenciesMs.end(), r.latenciesMs.begin(),
                            r.latenciesMs.end());
  }

  std::fprintf(stderr, "[serve_qps] predict phase...\n");
  const PhaseStats predict = timedPhase(server, kPredictRequests);

  // Thread sweep: one batched window (flows + predicts) per thread count.
  // The response bytes are the determinism contract — byte-identical at
  // every thread count, or the bench fails.
  std::vector<std::string> batchedLines = kFlowRequests;
  batchedLines.insert(batchedLines.end(), kPredictRequests.begin(),
                      kPredictRequests.end());
  struct BatchRow {
    std::size_t threads = 0;
    double totalMs = 0.0;
  };
  std::vector<BatchRow> batched;
  std::string referenceBytes;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{4}}) {
    support::setThreadLimit(threads);
    std::string bytes;
    const double ms =
        wallMs([&] { bytes = runWindow(server, batchedLines); });
    if (referenceBytes.empty()) referenceBytes = bytes;
    HCP_CHECK_MSG(bytes == referenceBytes,
                  "responses at " << threads
                                  << " threads differ from 1 thread");
    batched.push_back({threads, ms});
  }
  support::setThreadLimit(session.threads());

  const double warmOverCold = cold.qps() > 0 ? warm.qps() / cold.qps() : 0.0;
  std::fprintf(stderr,
               "[serve_qps] cold %.2f qps  warm %.2f qps  (%.1fx)  predict "
               "%.2f qps\n",
               cold.qps(), warm.qps(), warmOverCold, predict.qps());
  HCP_CHECK_MSG(warmOverCold >= 5.0,
                "warm QPS is only " << warmOverCold
                                    << "x cold (gate: >= 5x)");

  support::txt::CheckedFileWriter writer("BENCH_serve.json", "benchout");
  auto& json = writer.stream();
  json << "{\n  \"threads_default\": " << session.threads()
       << ",\n  \"warm_over_cold_qps\": " << warmOverCold << ",\n  \"cold\": ";
  cold.write(json);
  json << ",\n  \"warm\": ";
  warm.write(json);
  json << ",\n  \"predict\": ";
  predict.write(json);
  json << ",\n  \"batched\": [\n";
  for (std::size_t i = 0; i < batched.size(); ++i) {
    const BatchRow& b = batched[i];
    json << "    {\"threads\": " << b.threads
         << ", \"total_ms\": " << b.totalMs << ", \"qps\": "
         << (b.totalMs > 0
                 ? 1000.0 * static_cast<double>(batchedLines.size()) /
                       b.totalMs
                 : 0.0)
         << ", \"identical\": true}" << (i + 1 < batched.size() ? "," : "")
         << "\n";
  }
  json << "  ],\n  \"served\": " << server.stats().served
       << ",\n  \"cache_hits\": " << server.stats().cacheHits
       << ",\n  \"errors\": " << server.stats().errors << "\n}\n";
  writer.commit();
  std::fprintf(stderr, "[serve_qps] report written to BENCH_serve.json\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return hcp::bench::runBenchMain(
      "serve_qps", argc, argv,
      [&](hcp::bench::BenchSession& session) { runBody(session); });
}
