// Performance and ablation benchmarks (google-benchmark):
//  - throughput of each pipeline stage (synthesis, RTL gen, pack, place,
//    route, STA, feature extraction, model training)
//  - design-choice ablations called out in DESIGN.md: negotiated router vs
//    RUDY estimate, placer density spreading on/off, GBRT depth/forest size
//  - a serial-vs-parallel speedup report per parallelized stage (grid
//    search, GBRT fit, multi-design flow, dataset build), written to
//    BENCH_parallel.json so the perf trajectory is machine-readable.
//
// Flags: --threads N caps the thread pool; --parallel-only skips the
// google-benchmark suite and emits just the parallel report.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>

#include "apps/digit_spam.hpp"
#include "apps/face_detection.hpp"
#include "bench_common.hpp"
#include "core/dataset_builder.hpp"
#include "core/flow.hpp"
#include "features/extractor.hpp"
#include "ml/gbrt.hpp"
#include "ml/linear.hpp"
#include "ml/validation.hpp"
#include "rtl/generator.hpp"
#include "support/parallel.hpp"

namespace {

using namespace hcp;

apps::FaceDetectionConfig benchConfig() {
  apps::FaceDetectionConfig cfg;
  cfg.stages = 6;  // mid-size: keeps iterations fast but representative
  return cfg;
}

const fpga::Device& device() {
  static const fpga::Device dev = fpga::Device::xc7z020like();
  return dev;
}

// --- pipeline stage throughput --------------------------------------------

void BM_HlsSynthesis(benchmark::State& state) {
  for (auto _ : state) {
    auto app = apps::faceDetection(benchConfig());
    auto design = hls::synthesize(std::move(app.module), app.directives, {});
    benchmark::DoNotOptimize(design.top().report.latency);
  }
}
BENCHMARK(BM_HlsSynthesis)->Unit(benchmark::kMillisecond);

void BM_RtlGeneration(benchmark::State& state) {
  auto app = apps::faceDetection(benchConfig());
  const auto design =
      hls::synthesize(std::move(app.module), app.directives, {});
  for (auto _ : state) {
    auto rtl = rtl::generateRtl(design);
    benchmark::DoNotOptimize(rtl.netlist.numCells());
  }
}
BENCHMARK(BM_RtlGeneration)->Unit(benchmark::kMillisecond);

struct PhysicalFixture {
  hls::SynthesizedDesign design;
  rtl::GeneratedRtl rtl;
  fpga::Packing packing;
  fpga::Placement placement;

  PhysicalFixture() {
    auto app = apps::faceDetection(benchConfig());
    design = hls::synthesize(std::move(app.module), app.directives, {});
    rtl = rtl::generateRtl(design);
    packing = fpga::pack(rtl.netlist, device());
    placement = fpga::place(packing, device(), {});
  }
  static const PhysicalFixture& get() {
    static const PhysicalFixture f;
    return f;
  }
};

void BM_Packing(benchmark::State& state) {
  const auto& f = PhysicalFixture::get();
  for (auto _ : state) {
    auto packing = fpga::pack(f.rtl.netlist, device());
    benchmark::DoNotOptimize(packing.clusters.size());
  }
}
BENCHMARK(BM_Packing)->Unit(benchmark::kMillisecond);

void BM_Placement(benchmark::State& state) {
  const auto& f = PhysicalFixture::get();
  fpga::PlacerConfig cfg;
  cfg.effort = static_cast<double>(state.range(0));
  for (auto _ : state) {
    auto placement = fpga::place(f.packing, device(), cfg);
    benchmark::DoNotOptimize(placement.cost);
  }
  state.counters["hpwl"] =
      fpga::totalWirelength(f.packing, fpga::place(f.packing, device(), cfg));
}
BENCHMARK(BM_Placement)->Arg(5)->Arg(20)->Unit(benchmark::kMillisecond);

void BM_RoutingNegotiated(benchmark::State& state) {
  const auto& f = PhysicalFixture::get();
  fpga::RouterConfig cfg;
  cfg.maxIterations = static_cast<int>(state.range(0));
  std::size_t overflow = 0;
  for (auto _ : state) {
    auto result = fpga::route(f.packing, f.placement, device(), cfg);
    overflow = result.overflowTiles;
    benchmark::DoNotOptimize(result.totalWirelength);
  }
  state.counters["overflow_tiles"] = static_cast<double>(overflow);
}
BENCHMARK(BM_RoutingNegotiated)->Arg(1)->Arg(6)->Unit(benchmark::kMillisecond);

void BM_RoutingRudyEstimate(benchmark::State& state) {
  const auto& f = PhysicalFixture::get();
  for (auto _ : state) {
    auto map = fpga::estimateRudy(f.packing, f.placement, device());
    benchmark::DoNotOptimize(map.maxHUtil());
  }
}
BENCHMARK(BM_RoutingRudyEstimate)->Unit(benchmark::kMillisecond);

void BM_FeatureExtraction(benchmark::State& state) {
  const auto& f = PhysicalFixture::get();
  const auto top = f.design.module->topIndex();
  const auto& fn = f.design.module->function(top);
  for (auto _ : state) {
    features::FeatureExtractor ex(f.design, {});
    double sum = 0;
    for (ir::OpId op = 0; op < fn.numOps(); ++op)
      sum += ex.extract(top, op)[0];
    benchmark::DoNotOptimize(sum);
  }
  state.counters["ops"] = static_cast<double>(fn.numOps());
}
BENCHMARK(BM_FeatureExtraction)->Unit(benchmark::kMillisecond);

// --- ML training ablations -------------------------------------------------

const core::LabeledDataset& dataset() {
  static const core::LabeledDataset data = [] {
    core::FlowConfig cfg;
    auto flow = core::runFlow(apps::faceDetection(benchConfig()), device(),
                              cfg);
    return core::buildDataset(flow, {});
  }();
  return data;
}

void BM_TrainLasso(benchmark::State& state) {
  const auto& data = dataset();
  for (auto _ : state) {
    ml::LassoRegression model;
    model.fit(data.vertical);
    benchmark::DoNotOptimize(model.nonZeroWeights());
  }
}
BENCHMARK(BM_TrainLasso)->Unit(benchmark::kMillisecond);

void BM_TrainGbrt(benchmark::State& state) {
  const auto& data = dataset();
  ml::GbrtConfig cfg;
  cfg.numEstimators = static_cast<std::size_t>(state.range(0));
  cfg.maxDepth = static_cast<int>(state.range(1));
  for (auto _ : state) {
    ml::Gbrt model(cfg);
    model.fit(data.vertical);
    benchmark::DoNotOptimize(model.trainLoss());
  }
}
BENCHMARK(BM_TrainGbrt)
    ->Args({100, 4})
    ->Args({300, 4})
    ->Args({300, 6})
    ->Unit(benchmark::kMillisecond);

// --- end-to-end -----------------------------------------------------------

void BM_FullFlowDigitSpam(benchmark::State& state) {
  for (auto _ : state) {
    auto flow =
        core::runFlow(apps::digitSpamCombined(), device(), {});
    benchmark::DoNotOptimize(flow.maxHCongestion);
  }
}
BENCHMARK(BM_FullFlowDigitSpam)->Unit(benchmark::kMillisecond);

// --- serial vs parallel speedup report --------------------------------------

double timeMs(const std::function<void()>& body) {
  const auto t0 = std::chrono::steady_clock::now();
  body();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

struct StageTiming {
  std::string stage;
  double serialMs = 0.0;
  double parallelMs = 0.0;
  double speedup() const {
    return parallelMs > 0.0 ? serialMs / parallelMs : 0.0;
  }
};

/// Runs each parallelized stage twice — once pinned to one thread, once at
/// the configured limit — and writes BENCH_parallel.json. The parallel
/// layer guarantees both runs produce bit-identical results; this report
/// only measures the wall-clock difference (and spot-checks the guarantee
/// on the trained GBRT).
void runParallelReport(std::size_t threads) {
  std::vector<StageTiming> rows;
  const auto measure = [&](const char* stage,
                           const std::function<void()>& body) {
    StageTiming t;
    t.stage = stage;
    {
      support::ScopedThreadLimit serial(1);
      t.serialMs = timeMs(body);
    }
    t.parallelMs = timeMs(body);
    std::fprintf(stderr,
                 "[parallel] %-18s serial %9.1f ms   %zu threads %9.1f ms   "
                 "speedup %.2fx\n",
                 stage, t.serialMs, threads, t.parallelMs, t.speedup());
    rows.push_back(t);
  };

  measure("multi_design_flow", [&] {
    std::vector<apps::AppDesign> designs;
    designs.push_back(apps::digitSpamCombined());
    designs.push_back(apps::faceDetection(benchConfig()));
    const auto flows = core::runFlows(designs, device(), {});
    benchmark::DoNotOptimize(flows.front().maxHCongestion);
  });

  const auto flow =
      core::runFlow(apps::faceDetection(benchConfig()), device(), {});
  measure("dataset_build", [&] {
    const auto data = core::buildDataset(flow, {});
    benchmark::DoNotOptimize(data.vertical.size());
  });

  const auto data = core::buildDataset(flow, {});
  measure("gbrt_fit", [&] {
    ml::GbrtConfig cfg;
    cfg.numEstimators = 150;
    ml::Gbrt model(cfg);
    model.fit(data.vertical);
    benchmark::DoNotOptimize(model.trainLoss());
  });

  measure("grid_search", [&] {
    std::vector<ml::GbrtConfig> grid;
    ml::GbrtConfig a;
    a.numEstimators = 60;
    grid.push_back(a);
    ml::GbrtConfig b;
    b.numEstimators = 60;
    b.maxDepth = 5;
    grid.push_back(b);
    const auto search = ml::gridSearch<ml::GbrtConfig>(
        grid,
        [](const ml::GbrtConfig& c) { return std::make_unique<ml::Gbrt>(c); },
        data.vertical, 4, hcp::bench::kSeed);
    benchmark::DoNotOptimize(search.bestCv.meanMae);
  });

  // Determinism spot-check: the 1-thread and N-thread GBRT must serialize
  // to the same bytes.
  const auto fitAndSerialize = [&] {
    ml::Gbrt model;
    model.fit(data.vertical);
    std::ostringstream os;
    model.write(os);
    return os.str();
  };
  std::string serialModel;
  {
    support::ScopedThreadLimit serial(1);
    serialModel = fitAndSerialize();
  }
  const bool bitIdentical = serialModel == fitAndSerialize();
  std::fprintf(stderr, "[parallel] 1-thread vs %zu-thread GBRT: %s\n",
               threads, bitIdentical ? "bit-identical" : "MISMATCH");

  std::ofstream json("BENCH_parallel.json");
  json << "{\n  \"threads\": " << threads
       << ",\n  \"bit_identical\": " << (bitIdentical ? "true" : "false")
       << ",\n  \"stages\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const StageTiming& t = rows[i];
    json << "    {\"stage\": \"" << t.stage << "\", \"threads\": " << threads
         << ", \"serial_ms\": " << t.serialMs
         << ", \"parallel_ms\": " << t.parallelMs
         << ", \"speedup\": " << t.speedup() << "}"
         << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::fprintf(stderr, "[parallel] report written to BENCH_parallel.json\n");
}

}  // namespace

int main(int argc, char** argv) {
  return hcp::bench::runBenchMain(
      "perf_ablation", argc, argv, [&](hcp::bench::BenchSession& session) {
        const std::size_t threads = session.threads();
        bool runGoogleBench = true;
        for (int i = 1; i < argc; ++i)
          if (std::strcmp(argv[i], "--parallel-only") == 0)
            runGoogleBench = false;
        benchmark::Initialize(&argc, argv);
        if (runGoogleBench) benchmark::RunSpecifiedBenchmarks();
        runParallelReport(threads);
      });
}
