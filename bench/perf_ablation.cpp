// Performance and ablation benchmarks (google-benchmark):
//  - throughput of each pipeline stage (synthesis, RTL gen, pack, place,
//    route, STA, feature extraction, model training)
//  - design-choice ablations called out in DESIGN.md: negotiated router vs
//    RUDY estimate, placer density spreading on/off, GBRT depth/forest size.
#include <benchmark/benchmark.h>

#include "apps/digit_spam.hpp"
#include "apps/face_detection.hpp"
#include "core/dataset_builder.hpp"
#include "core/flow.hpp"
#include "features/extractor.hpp"
#include "ml/gbrt.hpp"
#include "ml/linear.hpp"
#include "rtl/generator.hpp"

namespace {

using namespace hcp;

apps::FaceDetectionConfig benchConfig() {
  apps::FaceDetectionConfig cfg;
  cfg.stages = 6;  // mid-size: keeps iterations fast but representative
  return cfg;
}

const fpga::Device& device() {
  static const fpga::Device dev = fpga::Device::xc7z020like();
  return dev;
}

// --- pipeline stage throughput --------------------------------------------

void BM_HlsSynthesis(benchmark::State& state) {
  for (auto _ : state) {
    auto app = apps::faceDetection(benchConfig());
    auto design = hls::synthesize(std::move(app.module), app.directives, {});
    benchmark::DoNotOptimize(design.top().report.latency);
  }
}
BENCHMARK(BM_HlsSynthesis)->Unit(benchmark::kMillisecond);

void BM_RtlGeneration(benchmark::State& state) {
  auto app = apps::faceDetection(benchConfig());
  const auto design =
      hls::synthesize(std::move(app.module), app.directives, {});
  for (auto _ : state) {
    auto rtl = rtl::generateRtl(design);
    benchmark::DoNotOptimize(rtl.netlist.numCells());
  }
}
BENCHMARK(BM_RtlGeneration)->Unit(benchmark::kMillisecond);

struct PhysicalFixture {
  hls::SynthesizedDesign design;
  rtl::GeneratedRtl rtl;
  fpga::Packing packing;
  fpga::Placement placement;

  PhysicalFixture() {
    auto app = apps::faceDetection(benchConfig());
    design = hls::synthesize(std::move(app.module), app.directives, {});
    rtl = rtl::generateRtl(design);
    packing = fpga::pack(rtl.netlist, device());
    placement = fpga::place(packing, device(), {});
  }
  static const PhysicalFixture& get() {
    static const PhysicalFixture f;
    return f;
  }
};

void BM_Packing(benchmark::State& state) {
  const auto& f = PhysicalFixture::get();
  for (auto _ : state) {
    auto packing = fpga::pack(f.rtl.netlist, device());
    benchmark::DoNotOptimize(packing.clusters.size());
  }
}
BENCHMARK(BM_Packing)->Unit(benchmark::kMillisecond);

void BM_Placement(benchmark::State& state) {
  const auto& f = PhysicalFixture::get();
  fpga::PlacerConfig cfg;
  cfg.effort = static_cast<double>(state.range(0));
  for (auto _ : state) {
    auto placement = fpga::place(f.packing, device(), cfg);
    benchmark::DoNotOptimize(placement.cost);
  }
  state.counters["hpwl"] =
      fpga::totalWirelength(f.packing, fpga::place(f.packing, device(), cfg));
}
BENCHMARK(BM_Placement)->Arg(5)->Arg(20)->Unit(benchmark::kMillisecond);

void BM_RoutingNegotiated(benchmark::State& state) {
  const auto& f = PhysicalFixture::get();
  fpga::RouterConfig cfg;
  cfg.maxIterations = static_cast<int>(state.range(0));
  std::size_t overflow = 0;
  for (auto _ : state) {
    auto result = fpga::route(f.packing, f.placement, device(), cfg);
    overflow = result.overflowTiles;
    benchmark::DoNotOptimize(result.totalWirelength);
  }
  state.counters["overflow_tiles"] = static_cast<double>(overflow);
}
BENCHMARK(BM_RoutingNegotiated)->Arg(1)->Arg(6)->Unit(benchmark::kMillisecond);

void BM_RoutingRudyEstimate(benchmark::State& state) {
  const auto& f = PhysicalFixture::get();
  for (auto _ : state) {
    auto map = fpga::estimateRudy(f.packing, f.placement, device());
    benchmark::DoNotOptimize(map.maxHUtil());
  }
}
BENCHMARK(BM_RoutingRudyEstimate)->Unit(benchmark::kMillisecond);

void BM_FeatureExtraction(benchmark::State& state) {
  const auto& f = PhysicalFixture::get();
  const auto top = f.design.module->topIndex();
  const auto& fn = f.design.module->function(top);
  for (auto _ : state) {
    features::FeatureExtractor ex(f.design, {});
    double sum = 0;
    for (ir::OpId op = 0; op < fn.numOps(); ++op)
      sum += ex.extract(top, op)[0];
    benchmark::DoNotOptimize(sum);
  }
  state.counters["ops"] = static_cast<double>(fn.numOps());
}
BENCHMARK(BM_FeatureExtraction)->Unit(benchmark::kMillisecond);

// --- ML training ablations -------------------------------------------------

const core::LabeledDataset& dataset() {
  static const core::LabeledDataset data = [] {
    core::FlowConfig cfg;
    auto flow = core::runFlow(apps::faceDetection(benchConfig()), device(),
                              cfg);
    return core::buildDataset(flow, {});
  }();
  return data;
}

void BM_TrainLasso(benchmark::State& state) {
  const auto& data = dataset();
  for (auto _ : state) {
    ml::LassoRegression model;
    model.fit(data.vertical);
    benchmark::DoNotOptimize(model.nonZeroWeights());
  }
}
BENCHMARK(BM_TrainLasso)->Unit(benchmark::kMillisecond);

void BM_TrainGbrt(benchmark::State& state) {
  const auto& data = dataset();
  ml::GbrtConfig cfg;
  cfg.numEstimators = static_cast<std::size_t>(state.range(0));
  cfg.maxDepth = static_cast<int>(state.range(1));
  for (auto _ : state) {
    ml::Gbrt model(cfg);
    model.fit(data.vertical);
    benchmark::DoNotOptimize(model.trainLoss());
  }
}
BENCHMARK(BM_TrainGbrt)
    ->Args({100, 4})
    ->Args({300, 4})
    ->Args({300, 6})
    ->Unit(benchmark::kMillisecond);

// --- end-to-end -----------------------------------------------------------

void BM_FullFlowDigitSpam(benchmark::State& state) {
  for (auto _ : state) {
    auto flow =
        core::runFlow(apps::digitSpamCombined(), device(), {});
    benchmark::DoNotOptimize(flow.maxHCongestion);
  }
}
BENCHMARK(BM_FullFlowDigitSpam)->Unit(benchmark::kMillisecond);

}  // namespace
