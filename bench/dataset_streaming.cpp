// Out-of-core dataset benchmark — the BENCH_dataset.json memory gate.
//
// Proves the two contracts the shard layer (DESIGN.md §19) makes:
//
//   1. Bounded memory. The table-3 corpus (face detection, digit+spam,
//      vision combined) is sharded once, then replicated to 10x under
//      salted content keys. A forked child process trains a Lasso model
//      per (corpus size x training path) cell and the parent reads its
//      peak RSS from wait4(); the in-memory path must grow roughly
//      linearly from 1x to 10x while the streamed path must stay bounded
//      (sub-linear). Child processes make the numbers honest: each cell
//      starts from the same cold baseline, measured by a no-op child.
//   2. Byte identity. For Lasso and GBRT, the streamed fit at --threads
//      1/2/4 must produce exactly the bytes of the in-memory fit on the
//      materialized corpus. Any mismatch is a hard bench failure.
//
// Every number lands in BENCH_dataset.json (fail-safe CheckedFileWriter,
// like every artifact sink). CI runs this binary and asserts the gates.
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/shard_builder.hpp"
#include "ml/gbrt.hpp"
#include "ml/linear.hpp"
#include "ml/serialize.hpp"
#include "ml/shards.hpp"
#include "support/textio.hpp"

namespace {

using namespace hcp;

constexpr const char* kBaseDir = "bench_dataset_shards/x1";
constexpr const char* kBigDir = "bench_dataset_shards/x10";
constexpr std::size_t kReplicas = 10;

// --- child phases --------------------------------------------------------
//
// The parent re-execs /proc/self/exe with --phase=... so each measurement
// runs in a fresh address space. A phase does its work and exits; the
// parent owns all reporting.

void runPhase(const std::string& phase, const std::string& dir) {
  if (phase == "noop") return;  // process baseline: startup + libraries
  const ml::shards::ShardSet set(dir);
  const ml::shards::ShardRowSource source(set,
                                          ml::shards::Label::Vertical);
  ml::LassoRegression model;
  if (phase == "stream-lasso") {
    model.fitStreaming(source);
  } else if (phase == "mem-lasso") {
    model.fit(ml::materialize(source));
  } else {
    throw Error("unknown bench phase: " + phase);
  }
  // Keep the model observable so the fit cannot be optimized away.
  std::fprintf(stderr, "[dataset] phase %s done (%zu samples)\n",
               phase.c_str(), source.size());
}

struct PhaseCost {
  double peakRssMb = 0.0;
  double wallMs = 0.0;
};

/// Forks + execs this binary in `--phase=...` mode and returns the child's
/// peak RSS (wait4 rusage) and wall clock.
PhaseCost measurePhase(const std::string& phase, const std::string& dir) {
  const auto t0 = std::chrono::steady_clock::now();
  const pid_t pid = fork();
  HCP_CHECK_MSG(pid >= 0, "fork failed: " << std::strerror(errno));
  if (pid == 0) {
    const std::string phaseArg = "--phase=" + phase;
    const std::string dirArg = "--phase-dir=" + dir;
    const char* argv[] = {"dataset_streaming", phaseArg.c_str(),
                          dirArg.c_str(), nullptr};
    execv("/proc/self/exe", const_cast<char* const*>(argv));
    std::fprintf(stderr, "execv failed: %s\n", std::strerror(errno));
    _exit(127);
  }
  int status = 0;
  rusage ru{};
  HCP_CHECK_MSG(wait4(pid, &status, 0, &ru) == pid,
                "wait4 failed: " << std::strerror(errno));
  HCP_CHECK_MSG(WIFEXITED(status) && WEXITSTATUS(status) == 0,
                "phase '" << phase << "' child failed (status " << status
                          << ")");
  const auto t1 = std::chrono::steady_clock::now();
  PhaseCost cost;
  cost.peakRssMb = static_cast<double>(ru.ru_maxrss) / 1024.0;  // KB -> MB
  cost.wallMs = std::chrono::duration<double, std::milli>(t1 - t0).count();
  return cost;
}

// --- corpus construction -------------------------------------------------

/// Shards the three table-3 designs one at a time (the buildShard memory
/// contract) into kBaseDir, then replicates every shard kReplicas times
/// into kBigDir under salted keys — same samples, distinct content
/// addresses, so the 10x set is a faithful "more designs" stand-in.
std::size_t buildCorpora(const fpga::Device& device) {
  std::filesystem::remove_all("bench_dataset_shards");
  core::FlowConfig cfg;
  cfg.seed = bench::kSeed;
  std::vector<std::function<apps::AppDesign()>> designs = {
      [] { return apps::faceDetection({}); },
      [] { return apps::digitSpamCombined(); },
      [] { return apps::visionCombined(); }};
  std::size_t baseSamples = 0;
  for (auto& make : designs) {
    const ml::shards::ShardInfo info =
        core::buildShard(make(), device, cfg, {}, kBaseDir);
    std::fprintf(stderr, "[dataset] shard %s: %zu samples\n",
                 info.key.c_str(), info.numSamples);
    baseSamples += info.numSamples;
  }

  const ml::shards::ShardSet base(kBaseDir);
  for (std::size_t i = 0; i < base.numShards(); ++i) {
    const ml::shards::ShardData shard = base.load(i);
    for (std::size_t r = 0; r < kReplicas; ++r) {
      const std::string key = ml::shards::shardKey(
          shard.meta.design, shard.meta.device, shard.meta.seed,
          shard.info.numFeatures,
          shard.info.key + "/replica-" + std::to_string(r));
      ml::shards::writeShard(kBigDir, key, shard.meta, shard.samples);
    }
  }
  return baseSamples;
}

// --- byte-identity sweep -------------------------------------------------

std::string modelBytes(const ml::Regressor& model) {
  std::ostringstream os;
  ml::saveModel(model, os);
  return os.str();
}

struct CmpRow {
  std::string model;
  std::size_t threads = 0;
  bool identical = false;
};

std::vector<CmpRow> byteIdentitySweep(const ml::shards::ShardSet& set) {
  std::vector<CmpRow> rows;
  const ml::shards::ShardRowSource source(set, ml::shards::Label::Average);
  const auto sweep = [&](const std::string& name,
                         const std::function<std::unique_ptr<ml::Regressor>()>&
                             factory) {
    auto reference = factory();
    reference->fit(ml::materialize(source));
    const std::string want = modelBytes(*reference);
    for (const std::size_t threads : {1u, 2u, 4u}) {
      support::ScopedThreadLimit limit(threads);
      auto streamed = factory();
      streamed->fitStreaming(source);
      rows.push_back({name, threads, modelBytes(*streamed) == want});
    }
  };
  sweep("lasso", [] { return std::make_unique<ml::LassoRegression>(); });
  sweep("gbrt", [] {
    return std::make_unique<ml::Gbrt>(
        ml::GbrtConfig{.numEstimators = 16, .maxDepth = 3});
  });
  return rows;
}

int runBench(int argc, char** argv) {
  return bench::runBenchMain("dataset_streaming", argc, argv, [&](auto&) {
    const auto device = fpga::Device::xc7z020like();

    std::fprintf(stderr, "[dataset] building 1x and %zux shard corpora...\n",
                 kReplicas);
    const std::size_t baseSamples = buildCorpora(device);
    const ml::shards::ShardSet small(kBaseDir);
    const ml::shards::ShardSet big(kBigDir);
    std::fprintf(stderr, "[dataset] corpus: 1x = %zu samples, %zux = %zu\n",
                 small.totalSamples(), kReplicas, big.totalSamples());
    HCP_CHECK(small.totalSamples() == baseSamples);
    HCP_CHECK(big.totalSamples() == kReplicas * baseSamples);

    // Byte identity first: a memory win over a *different* model would be
    // meaningless.
    const std::vector<CmpRow> cmp = byteIdentitySweep(small);
    bool allIdentical = true;
    for (const CmpRow& row : cmp) {
      allIdentical = allIdentical && row.identical;
      if (!row.identical)
        std::fprintf(stderr,
                     "[dataset] FAIL %s streamed != in-memory at %zu "
                     "threads\n",
                     row.model.c_str(), row.threads);
    }
    HCP_CHECK_MSG(allIdentical,
                  "streamed training is not byte-identical to in-memory");
    std::fprintf(stderr,
                 "[dataset] streamed == in-memory for lasso+gbrt at "
                 "threads {1,2,4}\n");

    // Peak-RSS cells, each in a fresh child process.
    const PhaseCost noop = measurePhase("noop", kBaseDir);
    const PhaseCost stream1 = measurePhase("stream-lasso", kBaseDir);
    const PhaseCost stream10 = measurePhase("stream-lasso", kBigDir);
    const PhaseCost mem1 = measurePhase("mem-lasso", kBaseDir);
    const PhaseCost mem10 = measurePhase("mem-lasso", kBigDir);

    // Deltas over the no-op baseline isolate the training working set from
    // process fixed costs; the 1 MB floor keeps ratios meaningful when a
    // delta lands in measurement noise.
    const auto delta = [&](const PhaseCost& c) {
      return std::max(c.peakRssMb - noop.peakRssMb, 1.0);
    };
    const double streamGrowth = delta(stream10) / delta(stream1);
    const double memGrowth = delta(mem10) / delta(mem1);
    std::fprintf(stderr,
                 "[dataset] peak RSS MB: noop %.1f | stream 1x %.1f -> "
                 "10x %.1f (%.2fx) | mem 1x %.1f -> 10x %.1f (%.2fx)\n",
                 noop.peakRssMb, stream1.peakRssMb, stream10.peakRssMb,
                 streamGrowth, mem1.peakRssMb, mem10.peakRssMb, memGrowth);

    // The gates: the in-memory working set must scale with the corpus
    // (anything clearly super-constant; 10x data, require >= 4x memory to
    // stay robust against allocator slack), while the streamed set must
    // stay bounded — strictly sub-linear, under half the in-memory growth
    // and under half the in-memory 10x working set.
    const bool memGrows = memGrowth >= 4.0;
    const bool streamBounded =
        streamGrowth <= 2.5 && streamGrowth <= memGrowth / 2.0 &&
        delta(stream10) <= delta(mem10) / 2.0;
    HCP_CHECK_MSG(memGrows, "in-memory RSS did not grow with the corpus ("
                                << memGrowth
                                << "x) — the measurement is broken");
    HCP_CHECK_MSG(streamBounded,
                  "streamed RSS is not bounded: " << streamGrowth
                                                  << "x growth at 10x data");
    std::fprintf(stderr, "[dataset] gates passed: mem %.2fx, stream %.2fx\n",
                 memGrowth, streamGrowth);

    support::txt::CheckedFileWriter writer("BENCH_dataset.json", "benchout");
    auto& json = writer.stream();
    support::txt::preparePrecision(json);
    json << "{\n  \"replicas\": " << kReplicas
         << ",\n  \"base_samples\": " << small.totalSamples()
         << ",\n  \"big_samples\": " << big.totalSamples()
         << ",\n  \"num_features\": " << small.numFeatures()
         << ",\n  \"noop_rss_mb\": " << noop.peakRssMb
         << ",\n  \"stream_1x_rss_mb\": " << stream1.peakRssMb
         << ",\n  \"stream_10x_rss_mb\": " << stream10.peakRssMb
         << ",\n  \"mem_1x_rss_mb\": " << mem1.peakRssMb
         << ",\n  \"mem_10x_rss_mb\": " << mem10.peakRssMb
         << ",\n  \"stream_growth\": " << streamGrowth
         << ",\n  \"mem_growth\": " << memGrowth
         << ",\n  \"stream_1x_wall_ms\": " << stream1.wallMs
         << ",\n  \"stream_10x_wall_ms\": " << stream10.wallMs
         << ",\n  \"mem_1x_wall_ms\": " << mem1.wallMs
         << ",\n  \"mem_10x_wall_ms\": " << mem10.wallMs
         << ",\n  \"byte_identity\": [\n";
    for (std::size_t i = 0; i < cmp.size(); ++i)
      json << "    {\"model\": \"" << cmp[i].model
           << "\", \"threads\": " << cmp[i].threads
           << ", \"identical\": " << (cmp[i].identical ? "true" : "false")
           << "}" << (i + 1 < cmp.size() ? "," : "") << "\n";
    json << "  ],\n  \"gates\": {\"mem_grows\": "
         << (memGrows ? "true" : "false")
         << ", \"stream_bounded\": " << (streamBounded ? "true" : "false")
         << ", \"byte_identical\": " << (allIdentical ? "true" : "false")
         << "}\n}\n";
    writer.commit();
    std::fprintf(stderr, "[dataset] report written to BENCH_dataset.json\n");
  });
}

}  // namespace

int main(int argc, char** argv) {
  // Child phase mode: do the work, exit. No session, no artifacts — the
  // parent owns all reporting and the exit-code mapping below mirrors it.
  std::string phase, phaseDir;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--phase=", 8) == 0) phase = argv[i] + 8;
    if (std::strncmp(argv[i], "--phase-dir=", 12) == 0)
      phaseDir = argv[i] + 12;
  }
  if (!phase.empty()) {
    try {
      runPhase(phase, phaseDir);
      return 0;
    } catch (const hcp::Error& e) {
      std::fprintf(stderr, "dataset_streaming phase: %s\n", e.what());
      return 1;
    }
  }
  return runBench(argc, argv);
}
