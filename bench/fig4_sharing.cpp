// Fig 4 — merging dependency-graph nodes that share one RTL module (paper
// §III-A2): shows a share-heavy design's graph before and after the binder's
// merges, with the wire-accounting the feature extractor sees.
#include "bench_common.hpp"
#include "hls/design.hpp"
#include "ir/builder.hpp"

using namespace hcp;

namespace {

/// The bench body; session plumbing lives in runBenchMain.
void runBench(hcp::bench::BenchSession&) {
  // A chain of sequential multipliers: left-edge binding folds them onto a
  // few shared units.
  auto mod = std::make_unique<ir::Module>("fig4");
  auto fn = std::make_unique<ir::Function>("top");
  {
    ir::Builder b(*fn);
    const auto in = b.inPort("x", 16);
    const auto out = b.outPort("y", 16);
    ir::OpId v = b.readPort(in);
    for (int i = 0; i < 6; ++i) v = b.trunc(b.mul(v, v), 16);
    b.writePort(out, v);
    b.ret();
  }
  mod->addFunction(std::move(fn));
  mod->setTop("top");
  const auto design = hls::synthesize(std::move(mod), {}, {});

  const auto& fnRef = design.topFunction();
  auto unmerged = ir::DependencyGraph::build(fnRef);

  Table table("Fig 4: node merging under resource sharing");
  table.setHeader({"Metric", "Before merge", "After merge"});
  const auto& merged = design.top().graph;
  table.addRow({"alive graph nodes",
                std::to_string(unmerged.numAliveNodes()),
                std::to_string(merged.numAliveNodes())});
  table.addRow({"functional units", "-",
                std::to_string(design.top().binding.fus.size())});
  table.addRow({"shared units", "-",
                std::to_string(design.top().binding.sharedUnits)});
  table.addRow({"ops on shared units", "-",
                std::to_string(design.top().binding.sharedOps)});
  table.addRow({"binding muxes", "-",
                std::to_string(design.top().binding.totalMuxCount)});
  bench::emit(table, "fig4_sharing.csv");

  // Show one merged node's combined connectivity.
  for (ir::NodeId n = 0; n < merged.numNodes(); ++n) {
    if (!merged.node(n).alive ||
        merged.node(n).kind != ir::DependencyGraph::NodeKind::Merged)
      continue;
    std::printf("merged node %u: %zu member ops, fan-in %.0f wires, "
                "fan-out %.0f wires\n",
                n, merged.node(n).members.size(), merged.fanIn(n),
                merged.fanOut(n));
  }
}

}  // namespace

int main(int argc, char** argv) {
  return hcp::bench::runBenchMain("fig4_sharing", argc, argv, runBench);
}
