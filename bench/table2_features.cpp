// Table II — the feature list (paper §III-B): dumps the registry's seven
// categories with their counts (302 total) and a few example features each.
#include "bench_common.hpp"
#include "features/feature_registry.hpp"
#include "support/strings.hpp"

using namespace hcp;
using features::Category;
using features::FeatureRegistry;

namespace {

/// The bench body; session plumbing lives in runBenchMain.
void runBench(hcp::bench::BenchSession&) {
  const auto& reg = FeatureRegistry::instance();
  const auto counts = reg.categoryCounts();

  Table table("Table II: feature categories (paper: 302 features total)");
  table.setHeader({"Category", "#Features", "Examples"});
  for (std::size_t c = 0; c < features::kNumCategories; ++c) {
    std::vector<std::string> examples;
    for (const auto& f : reg.all()) {
      if (static_cast<std::size_t>(f.category) == c &&
          examples.size() < 3)
        examples.push_back(f.name);
    }
    table.addRow({std::string(categoryName(static_cast<Category>(c))),
                  std::to_string(counts[c]), hcp::join(examples, ", ")});
  }
  table.addRow({"TOTAL", std::to_string(reg.size()), ""});
  bench::emit(table, "table2_features.csv");

  // Full registry CSV for reference.
  Table full("Full feature registry");
  full.setHeader({"index", "name", "category"});
  for (std::size_t i = 0; i < reg.size(); ++i)
    full.addRow({std::to_string(i), reg.info(i).name,
                 std::string(categoryName(reg.info(i).category))});
  full.writeCsv("table2_feature_registry.csv");
  std::printf("(full registry in table2_feature_registry.csv)\n");
}

}  // namespace

int main(int argc, char** argv) {
  return hcp::bench::runBenchMain("table2_features", argc, argv, runBench);
}
