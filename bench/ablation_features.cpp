// Ablation: which feature groups earn their keep?
//
//  1. Two-hop neighbourhood features on/off — the paper (§IV-B) observes
//     that the two-hop resource/FF/LUT variants "exert greater influence";
//     dropping them should cost accuracy.
//  2. Marginal-filter threshold sweep around the paper's 3.4% outlier share
//     (DESIGN.md §5): how the filtered fraction and test error move with the
//     label-fraction cutoff.
#include "bench_common.hpp"
#include "features/feature_registry.hpp"
#include "ml/gbrt.hpp"
#include "ml/metrics.hpp"

using namespace hcp;

namespace {

/// Test MAE of a GBRT trained on `data` with an optional feature mask.
double gbrtMae(const ml::Dataset& data,
               const std::vector<bool>* keepFeature) {
  ml::Dataset masked(0);
  const ml::Dataset* used = &data;
  if (keepFeature) {
    for (std::size_t i = 0; i < data.size(); ++i) {
      std::vector<double> row;
      row.reserve(data.numFeatures());
      for (std::size_t f = 0; f < data.numFeatures(); ++f)
        if ((*keepFeature)[f]) row.push_back(data.row(i)[f]);
      masked.add(std::move(row), data.target(i));
    }
    used = &masked;
  }
  const auto split = ml::trainTestSplit(used->size(), 0.2, bench::kSeed);
  const auto train = used->subset(split.train);
  const auto test = used->subset(split.test);
  ml::Gbrt model{ml::GbrtConfig{}};
  model.fit(train);
  return ml::meanAbsoluteError(test.targets(), model.predictAll(test));
}

}  // namespace

namespace {

/// The bench body; session plumbing lives in runBenchMain.
void runBench(hcp::bench::BenchSession&) {
  const auto device = fpga::Device::xc7z020like();
  const auto flows = bench::runBenchmarkSuite(device);
  const auto data = core::buildDataset(flows, {});
  const auto& reg = features::FeatureRegistry::instance();

  // --- 1. two-hop ablation -------------------------------------------------
  std::vector<bool> noTwoHop(reg.size(), true);
  std::size_t dropped = 0;
  for (std::size_t f = 0; f < reg.size(); ++f) {
    if (reg.info(f).name.find("2hop") != std::string::npos) {
      noTwoHop[f] = false;
      ++dropped;
    }
  }
  std::fprintf(stderr, "[ablation] training with/without %zu 2-hop "
                       "features...\n", dropped);
  Table twoHop("Ablation: two-hop neighbourhood features "
               "(paper §IV-B: two-hop variants are the strongest)");
  twoHop.setHeader({"Feature set", "#Features", "V MAE", "H MAE"});
  twoHop.addRow({"all 302", std::to_string(reg.size()),
                 fmt(gbrtMae(data.vertical, nullptr)),
                 fmt(gbrtMae(data.horizontal, nullptr))});
  twoHop.addRow({"without 2-hop", std::to_string(reg.size() - dropped),
                 fmt(gbrtMae(data.vertical, &noTwoHop)),
                 fmt(gbrtMae(data.horizontal, &noTwoHop))});
  bench::emit(twoHop, "ablation_twohop.csv");

  // --- 2. marginal-filter threshold sweep -----------------------------------
  Table filter("Ablation: marginal-filter threshold sweep "
               "(paper filters ~3.4% of ops)");
  filter.setHeader({"labelFraction", "minRadius", "Filtered(%)", "Samples",
                    "V MAE"});
  struct Point {
    double fraction, radius;
  };
  for (const Point p : {Point{0.0, 1.1}, Point{0.45, 0.65},
                        Point{0.65, 0.55}, Point{0.85, 0.45}}) {
    core::DatasetOptions opts;
    opts.applyMarginalFilter = p.fraction > 0.0;
    opts.filter.labelFraction = p.fraction;
    opts.filter.minRadius = p.radius;
    const auto filtered = core::buildDataset(flows, opts);
    std::fprintf(stderr, "[ablation] filter f=%.2f r=%.2f -> %zu samples\n",
                 p.fraction, p.radius, filtered.vertical.size());
    filter.addRow({fmt(p.fraction), fmt(p.radius),
                   fmt(100.0 * filtered.filterStats.fraction(), 1),
                   std::to_string(filtered.vertical.size()),
                   fmt(gbrtMae(filtered.vertical, nullptr))});
  }
  bench::emit(filter, "ablation_filter.csv");

  // --- 3. label source: negotiated router vs RUDY estimate ------------------
  // Rebuild one design's labels from the probabilistic estimator and compare
  // congestion statistics (the router is the label source of record).
  {
    const auto& flow = flows.front();
    const auto rudy = fpga::estimateRudy(flow.impl.packing,
                                         flow.impl.placement, device);
    Table router("Ablation: negotiated router vs RUDY estimate "
                 "(label source)");
    router.setHeader({"Label source", "max V(%)", "max H(%)", "mean H(%)",
                      "tiles>100%"});
    const auto& real = flow.impl.routing.map;
    router.addRow({"PathFinder router", fmt(real.maxVUtil()),
                   fmt(real.maxHUtil()), fmt(real.meanHUtil()),
                   std::to_string(real.tilesOver(100.0))});
    router.addRow({"RUDY estimate", fmt(rudy.maxVUtil()),
                   fmt(rudy.maxHUtil()), fmt(rudy.meanHUtil()),
                   std::to_string(rudy.tilesOver(100.0))});
    bench::emit(router, "ablation_router.csv");
  }
}

}  // namespace

int main(int argc, char** argv) {
  return hcp::bench::runBenchMain("ablation_features", argc, argv, runBench);
}
