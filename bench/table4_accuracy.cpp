// Table IV — congestion estimation accuracy (paper §IV-A): MAE and MedAE of
// Linear (Lasso), ANN and GBRT on vertical / horizontal / average congestion,
// with and without the marginal-sample filter.
//
// Protocol mirrors the paper: 80/20 train/test split, k-fold cross-validation
// with grid search on the training set (paper: 10-fold; default here 5 for
// runtime — set HCP_CV_FOLDS=10 to match exactly), the untouched test set
// scored once with the best configuration.
#include <cstdlib>

#include "bench_common.hpp"
#include "ml/gbrt.hpp"
#include "ml/linear.hpp"
#include "ml/metrics.hpp"
#include "ml/mlp.hpp"
#include "ml/validation.hpp"

using namespace hcp;

namespace {

struct Scores {
  double mae = 0.0;
  double medae = 0.0;
};

std::size_t cvFolds() {
  // Strict parse: HCP_CV_FOLDS=10x used to atoi-truncate to 10 folds and
  // HCP_CV_FOLDS=ten silently clamped to 2 — both exit 2 now.
  return static_cast<std::size_t>(
      hcp::support::env::u64OrDie("HCP_CV_FOLDS", 2, 1000, 5));
}

/// Grid-search + final evaluation for one model family on one target.
template <typename Config>
Scores evaluate(const ml::Dataset& data, const std::vector<Config>& grid,
                const std::function<std::unique_ptr<ml::Regressor>(
                    const Config&)>& factory) {
  const auto split = ml::trainTestSplit(data.size(), 0.2, bench::kSeed);
  const auto train = data.subset(split.train);
  const auto test = data.subset(split.test);
  const auto search =
      ml::gridSearch<Config>(grid, factory, train, cvFolds(), bench::kSeed);
  auto model = factory(search.bestConfig);
  model->fit(train);
  const auto pred = model->predictAll(test);
  return {ml::meanAbsoluteError(test.targets(), pred),
          ml::medianAbsoluteError(test.targets(), pred)};
}

Scores evalLinear(const ml::Dataset& data) {
  const std::vector<ml::LassoConfig> grid{
      {.alpha = 0.01}, {.alpha = 0.1}, {.alpha = 1.0}};
  return evaluate<ml::LassoConfig>(data, grid, [](const auto& c) {
    return std::make_unique<ml::LassoRegression>(c);
  });
}

Scores evalAnn(const ml::Dataset& data) {
  std::vector<ml::MlpConfig> grid;
  {
    ml::MlpConfig a;
    a.hiddenLayers = {64, 32};
    a.maxEpochs = 60;
    grid.push_back(a);
    ml::MlpConfig b;
    b.hiddenLayers = {32};
    b.learningRate = 3e-3;
    b.maxEpochs = 60;
    grid.push_back(b);
  }
  return evaluate<ml::MlpConfig>(data, grid, [](const auto& c) {
    return std::make_unique<ml::MlpRegressor>(c);
  });
}

Scores evalGbrt(const ml::Dataset& data) {
  std::vector<ml::GbrtConfig> grid;
  {
    ml::GbrtConfig a;  // defaults: 300 trees, depth 4
    grid.push_back(a);
    ml::GbrtConfig b;
    b.numEstimators = 500;
    b.maxDepth = 5;
    b.learningRate = 0.06;
    grid.push_back(b);
  }
  return evaluate<ml::GbrtConfig>(data, grid, [](const auto& c) {
    return std::make_unique<ml::Gbrt>(c);
  });
}

}  // namespace

namespace {

/// The bench body; session plumbing lives in runBenchMain.
void runBench(hcp::bench::BenchSession&) {
  const auto device = fpga::Device::xc7z020like();
  const auto flows = bench::runBenchmarkSuite(device);

  Table table(
      "Table IV: congestion estimation results (MAE / MedAE, %)\n"
      "paper filtered GBRT: V 9.59/6.71, H 14.54/10.05, avg 9.70/6.81; "
      "ordering GBRT < ANN < Linear; filtering improves every model");
  table.setHeader({"Filtering", "Model", "V MAE", "V MedAE", "H MAE",
                   "H MedAE", "Avg MAE", "Avg MedAE"});

  for (const bool filtered : {false, true}) {
    core::DatasetOptions opts;
    opts.applyMarginalFilter = filtered;
    const auto data = core::buildDataset(flows, opts);
    std::fprintf(stderr,
                 "[table4] %s: %zu samples (%zu marginal, %.1f%%)\n",
                 filtered ? "filtered" : "unfiltered", data.vertical.size(),
                 data.filterStats.marginal,
                 100.0 * data.filterStats.fraction());

    struct ModelRow {
      const char* name;
      Scores (*eval)(const ml::Dataset&);
    };
    const ModelRow models[] = {
        {"Linear", evalLinear}, {"ANN", evalAnn}, {"GBRT", evalGbrt}};
    for (const auto& m : models) {
      std::fprintf(stderr, "[table4]   %s...\n", m.name);
      const Scores v = m.eval(data.vertical);
      const Scores h = m.eval(data.horizontal);
      const Scores a = m.eval(data.average);
      table.addRow({filtered ? "Filtering" : "Not Filtering", m.name,
                    fmt(v.mae), fmt(v.medae), fmt(h.mae), fmt(h.medae),
                    fmt(a.mae), fmt(a.medae)});
    }
  }
  bench::emit(table, "table4_accuracy.csv");
}

}  // namespace

int main(int argc, char** argv) {
  return hcp::bench::runBenchMain("table4_accuracy", argc, argv, runBench);
}
