// Shared helpers for the table/figure reproduction binaries: the benchmark
// suite (the paper's three top-level combinations), dataset assembly and a
// couple of formatting shorthands. All benches run with fixed seeds so their
// output is reproducible bit-for-bit — at any thread count: the parallel
// layer (support/parallel.hpp) merges results deterministically.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "apps/digit_spam.hpp"
#include "apps/face_detection.hpp"
#include "apps/vision_suite.hpp"
#include "core/dataset_builder.hpp"
#include "core/flow.hpp"
#include "support/parallel.hpp"
#include "support/table.hpp"

namespace hcp::bench {

inline constexpr std::uint64_t kSeed = 42;

/// Applies a `--threads N` (or `--threads=N`) command-line flag to the
/// global thread limit. Call first thing in main(); unrelated arguments are
/// ignored. Returns the applied limit (or the default when no flag given).
inline std::size_t parseThreads(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    long n = 0;
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc)
      n = std::strtol(argv[i + 1], nullptr, 10);
    else if (std::strncmp(argv[i], "--threads=", 10) == 0)
      n = std::strtol(argv[i] + 10, nullptr, 10);
    if (n >= 1) support::setThreadLimit(static_cast<std::size_t>(n));
  }
  return support::threadLimit();
}

/// The paper's three evaluated combinations (§IV): Face Detection alone,
/// Digit Recognition + Spam Filtering, and BNN + 3D Rendering + Optical
/// Flow under one top function. The three independent C-to-FPGA flows run
/// concurrently on the thread pool; results come back in suite order and
/// are bit-identical to serial execution.
inline std::vector<core::FlowResult> runBenchmarkSuite(
    const fpga::Device& device, std::uint64_t seed = kSeed) {
  core::FlowConfig cfg;
  cfg.seed = seed;
  std::vector<apps::AppDesign> designs;
  designs.push_back(apps::faceDetection({}));
  designs.push_back(apps::digitSpamCombined());
  designs.push_back(apps::visionCombined());
  std::fprintf(stderr,
               "[flow] face_detection + digit_spam + vision_combined "
               "(%zu thread%s)...\n",
               support::threadLimit(),
               support::threadLimit() == 1 ? "" : "s");
  return core::runFlows(designs, device, cfg);
}

/// Prints a table and writes its CSV next to the binary.
inline void emit(const Table& table, const std::string& csvName) {
  std::printf("%s\n", table.toAscii().c_str());
  table.writeCsv(csvName);
  std::printf("(csv written to %s)\n\n", csvName.c_str());
}

}  // namespace hcp::bench
