// Shared helpers for the table/figure reproduction binaries: the benchmark
// suite (the paper's three top-level combinations), dataset assembly and a
// couple of formatting shorthands. All benches run with fixed seeds so their
// output is reproducible bit-for-bit.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "apps/digit_spam.hpp"
#include "apps/face_detection.hpp"
#include "apps/vision_suite.hpp"
#include "core/dataset_builder.hpp"
#include "core/flow.hpp"
#include "support/table.hpp"

namespace hcp::bench {

inline constexpr std::uint64_t kSeed = 42;

/// The paper's three evaluated combinations (§IV): Face Detection alone,
/// Digit Recognition + Spam Filtering, and BNN + 3D Rendering + Optical
/// Flow under one top function.
inline std::vector<core::FlowResult> runBenchmarkSuite(
    const fpga::Device& device, std::uint64_t seed = kSeed) {
  core::FlowConfig cfg;
  cfg.seed = seed;
  std::vector<core::FlowResult> flows;
  std::fprintf(stderr, "[flow] face_detection...\n");
  flows.push_back(core::runFlow(apps::faceDetection({}), device, cfg));
  std::fprintf(stderr, "[flow] digit_spam...\n");
  flows.push_back(core::runFlow(apps::digitSpamCombined(), device, cfg));
  std::fprintf(stderr, "[flow] vision_combined...\n");
  flows.push_back(core::runFlow(apps::visionCombined(), device, cfg));
  return flows;
}

/// Prints a table and writes its CSV next to the binary.
inline void emit(const Table& table, const std::string& csvName) {
  std::printf("%s\n", table.toAscii().c_str());
  table.writeCsv(csvName);
  std::printf("(csv written to %s)\n\n", csvName.c_str());
}

}  // namespace hcp::bench
