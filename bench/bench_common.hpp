// Shared helpers for the table/figure reproduction binaries: the benchmark
// suite (the paper's three top-level combinations), dataset assembly and a
// couple of formatting shorthands. All benches run with fixed seeds so their
// output is reproducible bit-for-bit — at any thread count: the parallel
// layer (support/parallel.hpp) merges results deterministically.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "apps/digit_spam.hpp"
#include "apps/face_detection.hpp"
#include "apps/vision_suite.hpp"
#include "core/dataset_builder.hpp"
#include "core/flow.hpp"
#include "support/env.hpp"
#include "support/error.hpp"
#include "support/failpoint.hpp"
#include "support/flowcache.hpp"
#include "support/parallel.hpp"
#include "support/signals.hpp"
#include "support/table.hpp"
#include "support/telemetry.hpp"
#include "support/tracing.hpp"

namespace hcp::bench {

inline constexpr std::uint64_t kSeed = 42;

/// Applies a `--threads N` (or `--threads=N`) command-line flag to the
/// global thread limit. Call first thing in main(); unrelated arguments are
/// ignored. Returns the applied limit (or the default when no flag given).
/// The value must be a whole positive integer: `--threads 4abc` used to
/// strtol-truncate to 4 threads and `--threads garbage` to silently keep the
/// default — both are usage errors (exit 2) now.
inline std::size_t parseThreads(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const char* value = nullptr;
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc)
      value = argv[i + 1];
    else if (std::strncmp(argv[i], "--threads=", 10) == 0)
      value = argv[i] + 10;
    if (value == nullptr) continue;
    const auto n = support::env::parseU64(value);
    if (!n || *n == 0) {
      std::fprintf(stderr,
                   "--threads expects a positive integer, got '%s'\n", value);
      std::exit(2);
    }
    support::setThreadLimit(static_cast<std::size_t>(*n));
  }
  return support::threadLimit();
}

/// Per-binary session bookkeeping: applies `--threads N`, arms telemetry
/// when `--report FILE` (or HCP_REPORT) is present, the trace sink when
/// `--trace FILE` (or HCP_TRACE) is, the flow cache when `--cache DIR`
/// (or HCP_CACHE) is, and fault injection when `--failpoints SPEC` (or
/// HCP_FAILPOINTS) is. finish() — called by runBenchMain after the body
/// returns normally — writes the JSON run report and Chrome trace timeline.
/// The writes live in finish() rather than the destructor on purpose: the
/// writers now raise hcp::IoError on failure, and an exception escaping a
/// destructor during unwinding would std::terminate instead of reaching
/// the exit-code mapping. Instantiated by runBenchMain — bench binaries
/// never touch the flags themselves.
class BenchSession {
 public:
  BenchSession(const char* tool, int argc, char** argv)
      : tool_(tool),
        threads_(parseThreads(argc, argv)),
        failpoints_(support::failpoint::initFromArgs(argc, argv)),
        reportPath_(support::telemetry::initReportFromArgs(argc, argv)),
        tracePath_(support::tracing::initTraceFromArgs(argc, argv)),
        cacheDir_(support::flowcache::initCacheFromArgs(argc, argv)) {}

  BenchSession(const BenchSession&) = delete;
  BenchSession& operator=(const BenchSession&) = delete;

  /// Writes the requested artifacts (report, trace). Throws hcp::IoError
  /// when one cannot be written — mapped to exit 5 by runBenchMain.
  void finish() {
    if (!reportPath_.empty()) {
      support::telemetry::RunReport meta;
      meta.tool = tool_;
      meta.command = "bench";
      meta.seed = kSeed;
      meta.threads = support::threadLimit();
      support::telemetry::writeReportToFile(reportPath_, meta);
      std::fprintf(stderr, "[hcp] run report written to %s\n",
                   reportPath_.c_str());
    }
    if (!tracePath_.empty()) {
      support::tracing::TraceMeta meta;
      meta.tool = tool_;
      meta.command = "bench";
      support::tracing::writeChromeTraceToFile(tracePath_, meta);
      std::fprintf(stderr, "[hcp] trace timeline written to %s\n",
                   tracePath_.c_str());
    }
  }

  std::size_t threads() const { return threads_; }
  const std::string& cacheDir() const { return cacheDir_; }

 private:
  std::string tool_;
  std::size_t threads_;
  std::string failpoints_;
  std::string reportPath_;
  std::string tracePath_;
  std::string cacheDir_;
};

/// The shared main() shell of every bench binary: session setup (threads,
/// report, trace, cache, failpoints — new flags land here, once), the body,
/// artifact writes, and the same exception-to-exit-code mapping hcp_cli
/// uses (1 = hcp::Error, 3 = unexpected std::exception, 5 = a requested
/// artifact could not be written). `body` receives the live session.
template <typename Body>
int runBenchMain(const char* tool, int argc, char** argv, Body&& body) {
  // `bench | head` must fail through the exit-code mapping below, not die on
  // SIGPIPE before any error path runs.
  support::ignoreSigpipe();
  try {
    BenchSession session(tool, argc, argv);
    body(session);
    session.finish();
    return 0;
  } catch (const hcp::IoError& e) {
    std::fprintf(stderr, "%s: artifact write error: %s\n", tool, e.what());
    return 5;
  } catch (const hcp::Error& e) {
    std::fprintf(stderr, "%s: error: %s\n", tool, e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: internal error: %s\n", tool, e.what());
    return 3;
  }
}

/// The paper's three evaluated combinations (§IV): Face Detection alone,
/// Digit Recognition + Spam Filtering, and BNN + 3D Rendering + Optical
/// Flow under one top function. The three independent C-to-FPGA flows run
/// concurrently on the thread pool; results come back in suite order and
/// are bit-identical to serial execution.
inline std::vector<core::FlowResult> runBenchmarkSuite(
    const fpga::Device& device, std::uint64_t seed = kSeed) {
  core::FlowConfig cfg;
  cfg.seed = seed;
  std::vector<apps::AppDesign> designs;
  designs.push_back(apps::faceDetection({}));
  designs.push_back(apps::digitSpamCombined());
  designs.push_back(apps::visionCombined());
  std::fprintf(stderr,
               "[flow] face_detection + digit_spam + vision_combined "
               "(%zu thread%s)...\n",
               support::threadLimit(),
               support::threadLimit() == 1 ? "" : "s");
  return core::runFlows(designs, device, cfg);
}

/// Prints a table and writes its CSV next to the binary.
inline void emit(const Table& table, const std::string& csvName) {
  std::printf("%s\n", table.toAscii().c_str());
  table.writeCsv(csvName);
  std::printf("(csv written to %s)\n\n", csvName.c_str());
}

}  // namespace hcp::bench
