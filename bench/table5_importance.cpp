// Table V — important feature categories per congestion metric (paper
// §IV-B): GBRT split-count importance aggregated over the registry's
// categories, ranked per target. The paper finds #Resource/dTcs and
// Resource on top, Interconnection next, then Global (mux/memory).
#include <algorithm>

#include "bench_common.hpp"
#include "features/feature_registry.hpp"
#include "ml/gbrt.hpp"

using namespace hcp;
using features::Category;
using features::FeatureRegistry;

namespace {

/// Importance per category for one trained GBRT. `perFeatureAverage`
/// divides each category's split share by its feature count (the paper
/// describes "averaging the number of times a feature is used as a split
/// point"); false sums shares, which favours large categories.
std::vector<std::pair<double, Category>> categoryImportance(
    const ml::Dataset& data, bool perFeatureAverage) {
  ml::GbrtConfig cfg;
  cfg.numEstimators = 400;
  cfg.featureFraction = 0.6;
  ml::Gbrt model(cfg);
  model.fit(data);
  const auto perFeature = model.featureImportance();
  const auto& reg = FeatureRegistry::instance();
  const auto counts = reg.categoryCounts();
  std::array<double, features::kNumCategories> byCat{};
  for (std::size_t f = 0; f < perFeature.size(); ++f)
    byCat[static_cast<std::size_t>(reg.info(f).category)] += perFeature[f];
  std::vector<std::pair<double, Category>> ranked;
  for (std::size_t c = 0; c < features::kNumCategories; ++c) {
    const double v = perFeatureAverage
                         ? byCat[c] / static_cast<double>(counts[c])
                         : byCat[c];
    ranked.emplace_back(v, static_cast<Category>(c));
  }
  std::sort(ranked.rbegin(), ranked.rend());
  return ranked;
}

}  // namespace

namespace {

/// The bench body; session plumbing lives in runBenchMain.
void runBench(hcp::bench::BenchSession&) {
  const auto device = fpga::Device::xc7z020like();
  const auto flows = bench::runBenchmarkSuite(device);
  const auto data = core::buildDataset(flows, {});

  std::fprintf(stderr, "[table5] training GBRT per target...\n");
  for (const bool perFeature : {false, true}) {
    const auto v = categoryImportance(data.vertical, perFeature);
    const auto h = categoryImportance(data.horizontal, perFeature);
    const auto a = categoryImportance(data.average, perFeature);

    Table table(
        std::string("Table V: important feature categories (") +
        (perFeature ? "split share per feature — the paper's 'averaging'"
                    : "total split share") +
        ")\npaper top-4: V = dTcs, Resource, Interconnection, Global(Mux); "
        "H = dTcs, Resource, Interconnection, Global(Memory)");
    table.setHeader({"Rank", "Vertical Congestion", "Horizontal Congestion",
                     "Avg (V,H) Congestion"});
    for (std::size_t rank = 0; rank < features::kNumCategories; ++rank) {
      auto cell = [&](const std::vector<std::pair<double, Category>>& r) {
        return std::string(categoryName(r[rank].second)) + " (" +
               fmt(100.0 * r[rank].first, perFeature ? 2 : 1) + "%)";
      };
      table.addRow({std::to_string(rank + 1), cell(v), cell(h), cell(a)});
    }
    bench::emit(table, perFeature ? "table5_importance_per_feature.csv"
                                  : "table5_importance.csv");
  }

  // Top individual features for the vertical model (diagnostic detail).
  {
    ml::Gbrt model{ml::GbrtConfig{}};
    model.fit(data.vertical);
    const auto imp = model.featureImportance();
    std::vector<std::pair<double, std::size_t>> ranked;
    for (std::size_t f = 0; f < imp.size(); ++f) ranked.emplace_back(imp[f], f);
    std::sort(ranked.rbegin(), ranked.rend());
    Table top("Top-10 individual features (vertical model)");
    top.setHeader({"Feature", "Share(%)"});
    for (int i = 0; i < 10; ++i)
      top.addRow({FeatureRegistry::instance().info(ranked[i].second).name,
                  fmt(100.0 * ranked[i].first, 2)});
    bench::emit(top, "table5_top_features.csv");
  }
}

}  // namespace

int main(int argc, char** argv) {
  return hcp::bench::runBenchMain("table5_importance", argc, argv, runBench);
}
