// Table VI + Fig 6 — the Face Detection case study (paper §IV-C):
//   Baseline      : optimized directives, everything inlined -> congested
//   Not Inline    : classifiers kept as modules -> congestion drops
//   Replication   : input window replicated per classifier group -> drops more
// The predictor locates the congested source region before each step, and the
// resolution advisor proposes exactly the rewrite the paper applies.
#include "bench_common.hpp"
#include "core/predictor.hpp"
#include "core/resolver.hpp"

using namespace hcp;

namespace {

/// The bench body; session plumbing lives in runBenchMain.
void runBench(hcp::bench::BenchSession&) {
  const auto device = fpga::Device::xc7z020like();
  core::FlowConfig cfg;
  cfg.seed = bench::kSeed;

  struct Step {
    const char* name;
    apps::FaceDetectionConfig config;
  };
  std::vector<Step> steps;
  steps.push_back({"Baseline", {}});
  {
    apps::FaceDetectionConfig notInline;
    notInline.inlineClassifiers = false;
    steps.push_back({"Not Inline", notInline});
    apps::FaceDetectionConfig replication = notInline;
    replication.replicateWindowArray = true;
    steps.push_back({"Replication", replication});
  }

  Table table(
      "Table VI: case study (paper: Fmax 42.3->74.1->92.9 MHz, congested "
      "CLBs 1272->193->17, latency ~flat)");
  table.setHeader({"Implementation", "WNS(ns)", "Max Freq.(MHz)",
                   "dLatency(cycles)", "Max Cong Vert,Hori(%)",
                   "#Congested tiles(>100%)"});

  std::uint64_t baselineLatency = 0;
  std::vector<core::FlowResult> flows;
  for (const auto& step : steps) {
    std::fprintf(stderr, "[table6] %s...\n", step.name);
    auto flow = core::runFlow(apps::faceDetection(step.config), device, cfg);
    if (flows.empty()) baselineLatency = flow.latencyCycles;
    const std::int64_t dLatency =
        static_cast<std::int64_t>(flow.latencyCycles) -
        static_cast<std::int64_t>(baselineLatency);
    table.addRow(
        {step.name, fmt(flow.wnsNs, 3), fmt(flow.maxFrequencyMhz, 1),
         (flows.empty() ? fmtSci(static_cast<double>(flow.latencyCycles))
                        : (dLatency >= 0 ? "+" : "") +
                              std::to_string(dLatency)),
         fmt(flow.maxVCongestion, 2) + ", " + fmt(flow.maxHCongestion, 2),
         std::to_string(flow.congestedTiles)});
    flows.push_back(std::move(flow));
  }
  bench::emit(table, "table6_casestudy.csv");

  // Fig 6: the three congestion maps (horizontal, as the paper's hottest).
  for (std::size_t s = 0; s < steps.size(); ++s) {
    std::printf("--- Fig 6 (%s): horizontal congestion map ---\n",
                steps[s].name);
    std::printf("%s\n",
                flows[s].impl.routing.map.smoothed(1).toAscii(false).c_str());
  }

  // Prediction phase: train on the baseline, locate the hotspot, and show
  // that the advisor proposes the paper's fixes.
  std::fprintf(stderr, "[table6] training predictor on baseline...\n");
  const auto data = core::buildDataset(flows[0], {});
  core::CongestionPredictor predictor{core::PredictorOptions{}};
  predictor.train(data);
  const auto hotspots = predictor.findHotspots(flows[0].design, {}, 5);
  Table spots("Predicted congested source regions (baseline)");
  spots.setHeader({"Function", "Line", "#Ops", "Mean pred(%)", "Max pred(%)"});
  for (const auto& h : hotspots)
    spots.addRow({h.functionName, std::to_string(h.sourceLine),
                  std::to_string(h.numOps), fmt(h.meanPredicted, 1),
                  fmt(h.maxPredicted, 1)});
  bench::emit(spots, "table6_hotspots.csv");

  const auto hints = core::adviseResolution(flows[0].design, hotspots, {});
  std::printf("Resolution advice:\n");
  for (const auto& hint : hints)
    std::printf("  [%s] %s\n",
                std::string(core::resolutionKindName(hint.kind)).c_str(),
                hint.message.c_str());
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  return hcp::bench::runBenchMain("table6_casestudy", argc, argv, runBench);
}
