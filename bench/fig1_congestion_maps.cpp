// Fig 1 — congestion maps of Face Detection with vs without directives
// (paper §II). ASCII heat maps to stdout plus per-tile CSVs.
#include <fstream>

#include "bench_common.hpp"

using namespace hcp;

namespace {

/// The bench body; session plumbing lives in runBenchMain.
void runBench(hcp::bench::BenchSession&) {
  const auto device = fpga::Device::xc7z020like();
  core::FlowConfig cfg;
  cfg.seed = bench::kSeed;

  for (const bool withDirectives : {true, false}) {
    apps::FaceDetectionConfig app;
    app.withDirectives = withDirectives;
    std::fprintf(stderr, "[fig1] face_detection %s directives...\n",
                 withDirectives ? "with" : "without");
    const auto flow = core::runFlow(apps::faceDetection(app), device, cfg);
    const auto smooth = flow.impl.routing.map.smoothed(1);
    const char* tag = withDirectives ? "with" : "without";
    std::printf("=== Fig 1 (%s directives) — vertical ===\n%s\n", tag,
                smooth.toAscii(true).c_str());
    std::printf("=== Fig 1 (%s directives) — horizontal ===\n%s\n", tag,
                smooth.toAscii(false).c_str());
    std::printf("maxV=%.1f%% maxH=%.1f%% tiles>100%%=%zu\n\n",
                flow.maxVCongestion, flow.maxHCongestion,
                flow.congestedTiles);
    std::ofstream csv(std::string("fig1_map_") + tag + ".csv");
    csv << flow.impl.routing.map.toCsv();
  }
  std::printf("(per-tile CSVs: fig1_map_with.csv / fig1_map_without.csv)\n");
}

}  // namespace

int main(int argc, char** argv) {
  return hcp::bench::runBenchMain("fig1_congestion_maps", argc, argv, runBench);
}
