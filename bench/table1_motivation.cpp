// Table I — performance comparison of Face Detection with and without HLS
// directives (paper §II). Reproduces the motivating trade-off: directives
// slash latency but congest the fabric and depress the maximum frequency.
#include "bench_common.hpp"

using namespace hcp;

namespace {

/// The bench body; session plumbing lives in runBenchMain.
void runBench(hcp::bench::BenchSession&) {
  const auto device = fpga::Device::xc7z020like();
  core::FlowConfig cfg;
  cfg.seed = bench::kSeed;

  Table table("Table I: Face Detection with vs without directives "
              "(paper: -13.643ns/42.3MHz/1.08e6cyc/178.96% vs "
              "-0.066ns/99.3MHz/1.73e7cyc/58.51%)");
  table.setHeader({"Implementation", "WNS(ns)", "Max Freq.(MHz)",
                   "Latency(cycles)", "Max Congestion(%)",
                   "#Congested tiles(>100%)"});

  for (const bool withDirectives : {true, false}) {
    apps::FaceDetectionConfig app;
    app.withDirectives = withDirectives;
    std::fprintf(stderr, "[flow] face_detection %s directives...\n",
                 withDirectives ? "with" : "without");
    const auto flow =
        core::runFlow(apps::faceDetection(app), device, cfg);
    const double maxCong =
        std::max(flow.maxVCongestion, flow.maxHCongestion);
    table.addRow({withDirectives ? "With Directives" : "Without Directives",
                  fmt(flow.wnsNs, 3), fmt(flow.maxFrequencyMhz, 1),
                  fmtSci(static_cast<double>(flow.latencyCycles)),
                  fmt(maxCong, 2), std::to_string(flow.congestedTiles)});
  }
  bench::emit(table, "table1_motivation.csv");
}

}  // namespace

int main(int argc, char** argv) {
  return hcp::bench::runBenchMain("table1_motivation", argc, argv, runBench);
}
