// Congestion-map model accuracy — the BENCH_mapnet.json trajectory.
//
// Trains each map topology (tilelinear baseline, 3x3 conv, lattice
// message-passing) on the table-3 suite's placed grid features, scores the
// predicted V/H maps against the routed ground truth per design (per-tile
// MAE in utilization percent, top-decile hotspot IoU), and gates the learned
// models: the conv net must beat the tile-wise linear baseline on mean
// hotspot IoU, or the bench exits 1. Everything runs at fixed seeds through
// the deterministic pool, so the JSON is bit-identical at any --threads.
#include <span>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/map_predictor.hpp"
#include "ml/mapnet.hpp"
#include "ml/metrics.hpp"
#include "support/textio.hpp"

using namespace hcp;

namespace {

struct DesignScore {
  std::string design;
  double maeV = 0.0, maeH = 0.0;
  double iouV = 0.0, iouH = 0.0;
  double meanIoU() const { return 0.5 * (iouV + iouH); }
};

struct TopologyResult {
  std::string name;
  double finalLoss = 0.0;
  std::vector<DesignScore> scores;
  double meanIoU() const {
    double sum = 0.0;
    for (const DesignScore& s : scores) sum += s.meanIoU();
    return scores.empty() ? 0.0 : sum / static_cast<double>(scores.size());
  }
  double meanMae() const {
    double sum = 0.0;
    for (const DesignScore& s : scores) sum += 0.5 * (s.maeV + s.maeH);
    return scores.empty() ? 0.0 : sum / static_cast<double>(scores.size());
  }
};

void runBench(hcp::bench::BenchSession& session) {
  const auto device = fpga::Device::xc7z020like();
  const std::vector<core::FlowResult> flows =
      hcp::bench::runBenchmarkSuite(device);
  const auto samples = core::buildMapSamples(
      flows, device, core::gridConfigFor(fpga::PlacerConfig{}));

  std::vector<TopologyResult> results;
  for (const auto topology : {ml::MapNetConfig::Topology::kTileLinear,
                              ml::MapNetConfig::Topology::kConv,
                              ml::MapNetConfig::Topology::kLattice}) {
    ml::MapNetConfig config;
    config.topology = topology;
    config.seed = hcp::bench::kSeed;
    std::fprintf(stderr, "[mapnet] training %s (%zu epochs)...\n",
                 std::string(ml::topologyName(topology)).c_str(),
                 config.epochs);
    ml::MapNet model(config);
    model.fit(samples);

    TopologyResult result;
    result.name = ml::topologyName(topology);
    result.finalLoss = model.finalLoss();
    for (std::size_t i = 0; i < samples.size(); ++i) {
      const ml::MapPrediction predicted = model.predict(samples[i].grid);
      DesignScore score;
      score.design = flows[i].name;
      score.maeV = ml::meanAbsoluteError(samples[i].vTarget, predicted.vUtil);
      score.maeH = ml::meanAbsoluteError(samples[i].hTarget, predicted.hUtil);
      score.iouV = ml::hotspotIoU(samples[i].vTarget, predicted.vUtil);
      score.iouH = ml::hotspotIoU(samples[i].hTarget, predicted.hUtil);
      result.scores.push_back(score);
    }
    results.push_back(std::move(result));
  }

  Table table("Congestion-map model accuracy (per-tile, vs routed truth)");
  table.setHeader({"Model", "Design", "V MAE", "H MAE", "V IoU", "H IoU"});
  for (const TopologyResult& r : results)
    for (const DesignScore& s : r.scores)
      table.addRow({r.name, s.design, fmt(s.maeV), fmt(s.maeH),
                    fmt(s.iouV, 3), fmt(s.iouH, 3)});
  hcp::bench::emit(table, "mapnet_accuracy.csv");
  for (const TopologyResult& r : results)
    std::printf("%-10s mean MAE %6.2f%%  mean hotspot IoU %.3f\n",
                r.name.c_str(), r.meanMae(), r.meanIoU());

  support::txt::CheckedFileWriter writer("BENCH_mapnet.json", "benchout");
  auto& json = writer.stream();
  support::txt::preparePrecision(json);
  json << "{\n  \"threads\": " << session.threads()
       << ",\n  \"seed\": " << hcp::bench::kSeed << ",\n  \"models\": [\n";
  for (std::size_t m = 0; m < results.size(); ++m) {
    const TopologyResult& r = results[m];
    json << "    {\"topology\": \"" << r.name << "\""
         << ", \"final_loss\": " << r.finalLoss
         << ", \"mean_mae\": " << r.meanMae()
         << ", \"mean_hotspot_iou\": " << r.meanIoU()
         << ", \"designs\": [\n";
    for (std::size_t i = 0; i < r.scores.size(); ++i) {
      const DesignScore& s = r.scores[i];
      json << "      {\"design\": \"" << s.design << "\""
           << ", \"mae_v\": " << s.maeV << ", \"mae_h\": " << s.maeH
           << ", \"hotspot_iou_v\": " << s.iouV
           << ", \"hotspot_iou_h\": " << s.iouH << "}"
           << (i + 1 < r.scores.size() ? "," : "") << "\n";
    }
    json << "    ]}" << (m + 1 < results.size() ? "," : "") << "\n";
  }
  const double linearIoU = results[0].meanIoU();
  const double convIoU = results[1].meanIoU();
  json << "  ],\n  \"conv_minus_tilelinear_iou\": " << (convIoU - linearIoU)
       << "\n}\n";
  writer.commit();
  std::fprintf(stderr, "[mapnet] report written to BENCH_mapnet.json\n");

  // The accuracy gate: a conv net that cannot beat a per-tile linear map on
  // hotspot overlap has stopped learning spatial structure.
  HCP_CHECK_MSG(convIoU > linearIoU,
                "conv mean hotspot IoU " << convIoU
                                         << " does not beat the tilelinear "
                                            "baseline "
                                         << linearIoU);
}

}  // namespace

int main(int argc, char** argv) {
  return hcp::bench::runBenchMain("mapnet_accuracy", argc, argv, runBench);
}
