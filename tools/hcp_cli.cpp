// hcp_cli — command-line driver for the library.
//
//   hcp_cli flow <design> [options]
//       run the full C-to-FPGA flow and print the implementation summary
//   hcp_cli train <model.hcp> <design> [<design> ...] [--model gbrt|ann|linear]
//       run flows (concurrently), build the dataset and save a predictor
//   hcp_cli shard <design> [<design> ...] --shard-dir DIR
//       run flows one design at a time and write each design's labeled
//       samples as a content-addressed dataset shard (see README "Dataset
//       sharding"); peak memory is one design's flow
//   hcp_cli train --from-shards <model.hcp> --shard-dir DIR [--in-memory]
//       train a predictor by streaming the shards (bounded memory,
//       byte-identical model to the in-memory path); --in-memory
//       materializes the shards first (cross-check/debugging)
//   hcp_cli predict <model.hcp> <design>
//       HLS-synthesize the design (no PAR) and print predicted hotspots
//   hcp_cli advise <model.hcp> <design>
//       predict + print congestion-resolution hints
//   hcp_cli train-map <map.hcp> <design> [<design> ...]
//           [--topology tilelinear|conv|lattice] [--epochs N]
//       run flows, extract per-tile grid features and train a congestion-
//       *map* model (full V/H heat map, not per-op scalars)
//   hcp_cli predict-map <map.hcp> <design> [--map-out FILE]
//       synthesize + pack + place (no routing), predict the V/H congestion
//       maps and print them; --map-out writes the map artifact
//   hcp_cli dump-ir <design>
//       print the post-directive IR of the design's top module
//   hcp_cli dump-verilog <design>
//       print the generated structural netlist as Verilog
//   hcp_cli list
//       list the bundled benchmark designs
//   hcp_cli compare-reports BASE.json NEW.json [--max-wall-regress PCT]
//           [--require-counters-equal] [--bench-out FILE]
//       diff two run reports (spans, counters, histograms) and exit
//       nonzero on regression — the CI gate. With --max-wall-regress,
//       total_wall_ms may grow by at most PCT percent; with
//       --require-counters-equal, every counter total and histogram
//       observation count must match exactly. --bench-out writes a
//       machine-readable summary (CI uploads BENCH_observability.json).
//
// Common options:
//   --seed N          master seed for the stochastic stages (default 42)
//   --threads N       cap the thread pool (default: HCP_THREADS or all cores)
//   --report FILE     write a JSON run report (spans, counters, histograms,
//                     metadata); HCP_REPORT is the fallback
//   --trace FILE      write a Chrome trace-event timeline (open in
//                     chrome://tracing or https://ui.perfetto.dev);
//                     HCP_TRACE is the fallback
//   --cache DIR       memoize flow results on disk (content-addressed; see
//                     README "Flow cache"); HCP_CACHE is the fallback
//   --failpoints SPEC arm named fault-injection sites, e.g.
//                     flowcache.store:1 or model.rename (see README "Fault
//                     injection"); HCP_FAILPOINTS is the fallback
//   --no-directives   synthesize without the paper's pragma set
//   --model KIND      predictor kind for `train`: gbrt (default), ann, linear
//   --shard-dir DIR   dataset shard directory for `shard` and
//                     `train --from-shards`; HCP_SHARDS is the fallback
//   --topology KIND   map-model topology for `train-map`: conv (default),
//                     tilelinear, lattice
//   --epochs N        SGD epochs for `train-map` (default 40)
//   --map-out FILE    where `predict-map` writes the map artifact
//
// Exit codes: 0 success, 1 flow/model error (hcp::Error) or compare-reports
// regression, 2 usage error, 3 unexpected internal error (any other
// std::exception), 4 compare-reports malformed input / schema mismatch,
// 5 a requested artifact (model save, --report, --trace, CSV, --bench-out)
// could not be written (hcp::IoError; the message names the path — no
// partial file is left behind).
//
// <design> is one of: face_detection, face_detection_noinline,
// face_detection_replicated, digit_recognition, spam_filter, digit_spam,
// bnn, rendering_3d, optical_flow, vision_combined.
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "apps/registry.hpp"
#include "core/dataset_builder.hpp"
#include "core/flow.hpp"
#include "core/shard_builder.hpp"
#include "core/map_predictor.hpp"
#include "core/predictor.hpp"
#include "core/resolver.hpp"
#include "ir/printer.hpp"
#include "rtl/verilog.hpp"
#include "support/env.hpp"
#include "support/failpoint.hpp"
#include "support/flowcache.hpp"
#include "support/parallel.hpp"
#include "support/report_diff.hpp"
#include "support/signals.hpp"
#include "support/telemetry.hpp"
#include "support/tracing.hpp"

using namespace hcp;

namespace {

/// The shared registry builds the design; hcp_cli keeps its historical
/// usage-error contract (exit 2, not exit 1) for a mistyped design name.
apps::AppDesign makeDesign(const std::string& name, bool withDirectives) {
  if (!apps::isKnownDesign(name)) {
    std::fprintf(stderr, "unknown design '%s' (try: hcp_cli list)\n",
                 name.c_str());
    std::exit(2);
  }
  return apps::makeDesign(name, withDirectives);
}

int usage() {
  std::fprintf(stderr,
               "usage: hcp_cli <flow|train|shard|predict|advise|train-map|"
               "predict-map|dump-ir|dump-verilog|list|compare-reports> ..."
               "\n(see the header of tools/hcp_cli.cpp for details)\n");
  return 2;
}

[[noreturn]] void usageError(const std::string& message) {
  std::fprintf(stderr, "hcp_cli: %s\n", message.c_str());
  std::exit(2);
}

/// Flushes stdout and surfaces any accumulated write error (EPIPE from a
/// closed pipe, ENOSPC on a redirect, ...) as hcp::IoError — exit 5, like
/// any other artifact the user asked for and did not get. SIGPIPE is
/// ignored at startup so the failed write reaches this check instead of
/// killing the process. Returns 0 for `return checkStdout();` call sites.
int checkStdout() {
  if (std::fflush(stdout) != 0 || std::ferror(stdout))
    throw IoError(
        "stdout write failed: " + std::string(std::strerror(errno)),
        "<stdout>");
  return 0;
}

/// Strict unsigned parse for flag values: the whole token must be digits.
/// `--seed abc` or `--threads 4x` is a usage error, not silently zero.
std::uint64_t parseUint(const char* flag, const char* text) {
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0' || errno == ERANGE)
    usageError(std::string(flag) + " expects a non-negative integer, got '" +
               text + "'");
  return static_cast<std::uint64_t>(v);
}

struct Args {
  std::vector<std::string> positional;
  std::uint64_t seed = 42;
  bool directives = true;
  std::string model = "gbrt";
  std::string topology = "conv";
  std::uint64_t epochs = 40;
  std::string mapOut;       ///< empty = predict-map prints only
  std::size_t threads = 0;  ///< 0 = leave the default limit in place
  std::string report;       ///< empty = no run report
  std::string trace;        ///< empty = no trace timeline
  std::string cache;        ///< empty = flow caching off
  std::string shardDir;     ///< dataset shard directory (HCP_SHARDS fallback)
  bool fromShards = false;  ///< `train --from-shards`
  bool inMemory = false;    ///< materialize shards instead of streaming
};

Args parse(int argc, char** argv, int first) {
  Args args;
  auto value = [&](int& i, const char* flag) -> const char* {
    if (i + 1 >= argc) usageError(std::string(flag) + " expects a value");
    return argv[++i];
  };
  auto nonEmpty = [&](int& i, const char* flag) -> const char* {
    const char* v = value(i, flag);
    if (*v == '\0') usageError(std::string(flag) + " expects a non-empty value");
    return v;
  };
  for (int i = first; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--seed") {
      args.seed = parseUint("--seed", value(i, "--seed"));
    } else if (a == "--threads") {
      args.threads =
          static_cast<std::size_t>(parseUint("--threads", value(i, "--threads")));
      if (args.threads == 0) usageError("--threads expects N >= 1");
    } else if (a == "--report") {
      args.report = nonEmpty(i, "--report");
    } else if (a.rfind("--report=", 0) == 0) {
      args.report = a.substr(9);
      if (args.report.empty())
        usageError("--report expects a non-empty value");
    } else if (a == "--trace") {
      args.trace = nonEmpty(i, "--trace");
    } else if (a.rfind("--trace=", 0) == 0) {
      args.trace = a.substr(8);
      if (args.trace.empty()) usageError("--trace expects a non-empty value");
    } else if (a == "--cache") {
      args.cache = nonEmpty(i, "--cache");
    } else if (a.rfind("--cache=", 0) == 0) {
      args.cache = a.substr(8);
      if (args.cache.empty()) usageError("--cache expects a non-empty value");
    } else if (a == "--shard-dir") {
      args.shardDir = nonEmpty(i, "--shard-dir");
    } else if (a.rfind("--shard-dir=", 0) == 0) {
      args.shardDir = a.substr(12);
      if (args.shardDir.empty())
        usageError("--shard-dir expects a non-empty value");
    } else if (a == "--from-shards") {
      args.fromShards = true;
    } else if (a == "--in-memory") {
      args.inMemory = true;
    } else if (a == "--failpoints") {
      // Already applied by failpoint::initFromArgs at the top of run();
      // consume the value so it is not mistaken for a positional.
      (void)nonEmpty(i, "--failpoints");
    } else if (a.rfind("--failpoints=", 0) == 0) {
      // Already applied by failpoint::initFromArgs.
    } else if (a == "--no-directives") {
      args.directives = false;
    } else if (a == "--model") {
      args.model = value(i, "--model");
    } else if (a == "--topology") {
      args.topology = value(i, "--topology");
    } else if (a == "--epochs") {
      args.epochs = parseUint("--epochs", value(i, "--epochs"));
      if (args.epochs == 0) usageError("--epochs expects N >= 1");
    } else if (a == "--map-out") {
      args.mapOut = nonEmpty(i, "--map-out");
    } else if (a.rfind("--", 0) == 0) {
      usageError("unknown option '" + a + "' (see hcp_cli usage)");
    } else {
      args.positional.push_back(a);
    }
  }
  if (args.report.empty()) {
    if (const char* env = std::getenv("HCP_REPORT")) args.report = env;
  }
  if (args.trace.empty()) {
    if (const char* env = std::getenv("HCP_TRACE")) args.trace = env;
  }
  if (args.cache.empty()) {
    if (const char* env = std::getenv("HCP_CACHE")) args.cache = env;
  }
  if (args.shardDir.empty()) {
    if (const char* env = std::getenv("HCP_SHARDS")) args.shardDir = env;
  }
  return args;
}

/// `compare-reports BASE.json NEW.json [flags]` — flag parsing is local
/// because the common Args flags (seed/threads/model) make no sense here.
int runCompareReports(int argc, char** argv) {
  std::string base, fresh;
  support::report_diff::Options opts;
  auto value = [&](int& i, const char* flag) -> const char* {
    if (i + 1 >= argc) usageError(std::string(flag) + " expects a value");
    return argv[++i];
  };
  for (int i = 2; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--max-wall-regress") {
      // Strict parse: the old raw strtod accepted "nan" (which made the
      // regression gate vacuously pass — NaN compares false), "inf", hex
      // floats and trailing garbage like "400%".
      const char* text = value(i, "--max-wall-regress");
      const std::optional<double> pct = support::env::parseF64(text);
      if (!pct || *pct < 0.0)
        usageError(
            "--max-wall-regress expects a non-negative percentage, got '" +
            std::string(text) + "'");
      opts.maxWallRegressPct = *pct;
    } else if (a == "--require-counters-equal") {
      opts.requireCountersEqual = true;
    } else if (a == "--bench-out") {
      opts.benchOutPath = value(i, "--bench-out");
      if (opts.benchOutPath.empty())
        usageError("--bench-out expects a non-empty value");
    } else if (a == "--failpoints") {
      (void)value(i, "--failpoints");  // applied by failpoint::initFromArgs
    } else if (a.rfind("--failpoints=", 0) == 0) {
      // Applied by failpoint::initFromArgs.
    } else if (a.rfind("--", 0) == 0) {
      usageError("unknown option '" + a + "' (see hcp_cli usage)");
    } else if (base.empty()) {
      base = a;
    } else if (fresh.empty()) {
      fresh = a;
    } else {
      usageError("compare-reports takes exactly two report files");
    }
  }
  if (base.empty() || fresh.empty())
    usageError("compare-reports needs BASE.json and NEW.json");
  return support::report_diff::compareReportFiles(base, fresh, opts,
                                                 std::cout);
}

core::FlowResult runNamedFlow(const std::string& design, const Args& args,
                              const fpga::Device& device) {
  core::FlowConfig cfg;
  cfg.seed = args.seed;
  std::fprintf(stderr, "[hcp] running flow for %s...\n", design.c_str());
  return core::runFlow(makeDesign(design, args.directives), device, cfg);
}

void printSummary(const core::FlowResult& flow) {
  std::printf("design          : %s\n", flow.name.c_str());
  std::printf("cells / nets    : %zu / %zu\n", flow.rtl.netlist.numCells(),
              flow.rtl.netlist.numNets());
  std::printf("latency         : %llu cycles\n",
              static_cast<unsigned long long>(flow.latencyCycles));
  std::printf("WNS / Fmax      : %.3f ns / %.1f MHz\n", flow.wnsNs,
              flow.maxFrequencyMhz);
  std::printf("max congestion  : V %.1f%%  H %.1f%%\n", flow.maxVCongestion,
              flow.maxHCongestion);
  std::printf("tiles over 100%% : %zu\n", flow.congestedTiles);
  std::printf("samples traced  : %zu\n", flow.traced.samples.size());
}

int run(int argc, char** argv) {
  const std::string cmd = argv[1];
  // Arm fault injection first: every later stage (including compare-reports'
  // --bench-out) consults its failpoints through this one configuration.
  support::failpoint::initFromArgs(argc, argv);

  if (cmd == "list") {
    for (const auto& d : apps::designNames()) std::printf("%s\n", d.c_str());
    return checkStdout();
  }
  if (cmd == "compare-reports") return runCompareReports(argc, argv);

  const auto device = fpga::Device::xc7z020like();
  const Args args = parse(argc, argv, 2);
  if (args.fromShards && cmd != "train")
    usageError("--from-shards only applies to train");
  if (args.threads > 0) support::setThreadLimit(args.threads);
  if (!args.report.empty()) support::telemetry::setEnabled(true);
  if (!args.trace.empty()) support::tracing::arm();
  if (!args.cache.empty()) support::flowcache::setGlobalDir(args.cache);
  const auto start = support::telemetry::detail::nowNs();

  std::vector<std::string> reportDesigns;
  int code = -1;  // -1 = unknown command

  if (cmd == "flow") {
    if (args.positional.size() != 1) return usage();
    reportDesigns = {args.positional[0]};
    printSummary(runNamedFlow(args.positional[0], args, device));
    code = 0;
  } else if (cmd == "shard") {
    if (args.positional.empty()) return usage();
    if (args.shardDir.empty())
      usageError("shard needs --shard-dir DIR (or HCP_SHARDS)");
    core::FlowConfig cfg;
    cfg.seed = args.seed;
    // Designs run serially on purpose: sharding exists so that peak memory
    // is one design's flow, never the corpus.
    std::size_t total = 0;
    for (const auto& name : args.positional) {
      reportDesigns.push_back(name);
      std::fprintf(stderr, "[hcp] sharding %s...\n", name.c_str());
      const ml::shards::ShardInfo info = core::buildShard(
          makeDesign(name, args.directives), device, cfg, {}, args.shardDir);
      std::printf("%s  %-28s %6zu samples x %zu features\n", info.key.c_str(),
                  name.c_str(), info.numSamples, info.numFeatures);
      total += info.numSamples;
    }
    std::printf("wrote %zu shard%s (%zu samples) to %s\n",
                args.positional.size(),
                args.positional.size() == 1 ? "" : "s", total,
                args.shardDir.c_str());
    code = 0;
  } else if (cmd == "train") {
    core::PredictorOptions opts;
    if (args.model == "linear") opts.kind = core::ModelKind::Linear;
    else if (args.model == "ann") opts.kind = core::ModelKind::Ann;
    else if (args.model == "gbrt") opts.kind = core::ModelKind::Gbrt;
    else return usage();

    if (args.fromShards) {
      if (args.positional.size() != 1)
        usageError(
            "train --from-shards takes exactly one positional argument "
            "(the model path) — designs come from the shard directory");
      if (args.shardDir.empty())
        usageError("train --from-shards needs --shard-dir DIR (or HCP_SHARDS)");
      const std::string modelPath = args.positional[0];
      const ml::shards::ShardSet set(args.shardDir);
      if (set.totalSamples() == 0)
        usageError("training dataset is empty: " + args.shardDir + " holds " +
                   std::to_string(set.numShards()) +
                   " shard(s) with 0 samples total (run `hcp_cli shard "
                   "<design>... --shard-dir " +
                   args.shardDir + "` first)");
      std::fprintf(stderr,
                   "[hcp] training %s on %zu samples streamed from %zu "
                   "shard%s%s...\n",
                   args.model.c_str(), set.totalSamples(), set.numShards(),
                   set.numShards() == 1 ? "" : "s",
                   args.inMemory ? " (materialized in memory)" : "");
      core::CongestionPredictor predictor(opts);
      predictor.trainFromShards(set, /*streaming=*/!args.inMemory);
      predictor.save(modelPath);
      std::printf("saved %s predictor to %s (%zu samples from %zu shards)\n",
                  args.model.c_str(), modelPath.c_str(), set.totalSamples(),
                  set.numShards());
      code = 0;
    } else {
      if (args.positional.size() < 2) return usage();
      if (args.inMemory)
        usageError("--in-memory only applies to train --from-shards");
      const std::string modelPath = args.positional[0];
      std::vector<apps::AppDesign> designs;
      for (std::size_t i = 1; i < args.positional.size(); ++i) {
        reportDesigns.push_back(args.positional[i]);
        designs.push_back(makeDesign(args.positional[i], args.directives));
      }
      core::FlowConfig cfg;
      cfg.seed = args.seed;
      std::fprintf(stderr, "[hcp] running %zu flow%s (%zu thread%s)...\n",
                   designs.size(), designs.size() == 1 ? "" : "s",
                   support::threadLimit(),
                   support::threadLimit() == 1 ? "" : "s");
      const auto flows = core::runFlows(designs, device, cfg);
      const auto dataset = core::buildDataset(flows, {});
      if (dataset.vertical.size() == 0)
        usageError("training dataset is empty: 0 samples survived the "
                   "back-trace filter across " +
                   std::to_string(flows.size()) +
                   " design(s) — train() would have nothing to fit");
      core::CongestionPredictor predictor(opts);
      std::fprintf(stderr, "[hcp] training %s on %zu samples...\n",
                   args.model.c_str(), dataset.vertical.size());
      predictor.train(dataset);
      predictor.save(modelPath);
      std::printf("saved %s predictor to %s (%zu samples)\n",
                  args.model.c_str(), modelPath.c_str(),
                  dataset.vertical.size());
      code = 0;
    }
  } else if (cmd == "predict" || cmd == "advise") {
    if (args.positional.size() != 2) return usage();
    reportDesigns = {args.positional[1]};
    auto predictor = core::CongestionPredictor::load(args.positional[0]);
    auto app = makeDesign(args.positional[1], args.directives);
    const auto design =
        hls::synthesize(std::move(app.module), app.directives, {});
    const auto hotspots = predictor.findHotspots(design, {}, 10);
    std::printf("predicted hotspots (no place-and-route was run):\n");
    for (const auto& h : hotspots)
      std::printf("  %-28s line %-5d %4zu ops  mean %.1f%%  max %.1f%%\n",
                  h.functionName.c_str(), h.sourceLine, h.numOps,
                  h.meanPredicted, h.maxPredicted);
    if (cmd == "advise") {
      std::printf("\nresolution hints:\n");
      for (const auto& hint : core::adviseResolution(design, hotspots, {}))
        std::printf("  [%s] %s\n",
                    std::string(core::resolutionKindName(hint.kind)).c_str(),
                    hint.message.c_str());
    }
    code = 0;
  } else if (cmd == "train-map") {
    if (args.positional.size() < 2) return usage();
    const std::string modelPath = args.positional[0];
    ml::MapNetConfig mapCfg;
    mapCfg.topology = ml::topologyFromName(args.topology);
    mapCfg.epochs = args.epochs;
    mapCfg.seed = args.seed;

    std::vector<apps::AppDesign> designs;
    for (std::size_t i = 1; i < args.positional.size(); ++i) {
      reportDesigns.push_back(args.positional[i]);
      designs.push_back(makeDesign(args.positional[i], args.directives));
    }
    core::FlowConfig cfg;
    cfg.seed = args.seed;
    std::fprintf(stderr, "[hcp] running %zu flow%s (%zu thread%s)...\n",
                 designs.size(), designs.size() == 1 ? "" : "s",
                 support::threadLimit(),
                 support::threadLimit() == 1 ? "" : "s");
    const auto flows = core::runFlows(designs, device, cfg);
    const auto samples = core::buildMapSamples(
        flows, device, core::gridConfigFor(cfg.par.placer));
    if (samples.empty())
      usageError("training dataset is empty: " + std::to_string(flows.size()) +
                 " flow(s) produced no congestion maps — the map model "
                 "would have nothing to fit");
    std::fprintf(stderr, "[hcp] training %s map model on %zu map%s...\n",
                 args.topology.c_str(), samples.size(),
                 samples.size() == 1 ? "" : "s");
    ml::MapNet model(mapCfg);
    model.fit(samples);
    ml::saveMapModelToFile(model, modelPath);
    std::printf("saved %s map model to %s (%zu maps, final loss %.6f)\n",
                args.topology.c_str(), modelPath.c_str(), samples.size(),
                model.finalLoss());
    code = 0;
  } else if (cmd == "predict-map") {
    if (args.positional.size() != 2) return usage();
    reportDesigns = {args.positional[1]};
    const ml::MapNet model = ml::loadMapModelFromFile(args.positional[0]);
    core::FlowConfig cfg;
    cfg.seed = args.seed;
    const ml::GridSample grid = core::placeAndExtract(
        makeDesign(args.positional[1], args.directives), device, cfg);
    const ml::MapPrediction map = model.predict(grid);
    std::printf("predicted congestion map for %s (no routing was run):\n",
                args.positional[1].c_str());
    std::printf("grid            : %ux%u\n", map.width, map.height);
    std::printf("max congestion  : V %.1f%%  H %.1f%%\n", map.maxVUtil(),
                map.maxHUtil());
    std::printf("tiles over 100%% : %zu\n", map.tilesOver(100.0));
    std::printf("\nvertical:\n%s", map.toAscii(true).c_str());
    std::printf("\nhorizontal:\n%s", map.toAscii(false).c_str());
    if (!args.mapOut.empty()) {
      ml::saveMapPredictionToFile(map, args.mapOut);
      std::fprintf(stderr, "[hcp] map artifact written to %s\n",
                   args.mapOut.c_str());
    }
    code = 0;
  } else if (cmd == "dump-ir") {
    if (args.positional.size() != 1) return usage();
    reportDesigns = {args.positional[0]};
    auto app = makeDesign(args.positional[0], args.directives);
    const auto design =
        hls::synthesize(std::move(app.module), app.directives, {});
    std::printf("%s", ir::print(*design.module).c_str());
    code = 0;
  } else if (cmd == "dump-verilog") {
    if (args.positional.size() != 1) return usage();
    reportDesigns = {args.positional[0]};
    auto app = makeDesign(args.positional[0], args.directives);
    const auto design =
        hls::synthesize(std::move(app.module), app.directives, {});
    const auto rtl = rtl::generateRtl(design);
    std::printf("%s", rtl::toVerilog(rtl.netlist).c_str());
    code = 0;
  }

  if (code == 0 && !args.report.empty()) {
    support::telemetry::RunReport meta;
    meta.tool = "hcp_cli";
    meta.command = cmd;
    meta.designs = reportDesigns;
    meta.seed = args.seed;
    meta.threads = support::threadLimit();
    meta.totalWallMs =
        static_cast<double>(support::telemetry::detail::nowNs() - start) / 1e6;
    support::telemetry::writeReportToFile(args.report, meta);
    std::fprintf(stderr, "[hcp] run report written to %s\n",
                 args.report.c_str());
  }
  if (code == 0 && !args.trace.empty()) {
    support::tracing::TraceMeta meta;
    meta.tool = "hcp_cli";
    meta.command = cmd;
    support::tracing::writeChromeTraceToFile(args.trace, meta);
    std::fprintf(stderr, "[hcp] trace timeline written to %s\n",
                 args.trace.c_str());
  }
  if (code == 0) checkStdout();
  return code == -1 ? usage() : code;
}

}  // namespace

int main(int argc, char** argv) {
  support::ignoreSigpipe();
  // Touch the thread limit before doing anything: a malformed HCP_THREADS
  // must exit 2 up front, not whenever the first parallel region runs.
  support::threadLimit();
  if (argc < 2) return usage();
  try {
    return run(argc, argv);
  } catch (const hcp::IoError& e) {
    // A user-requested artifact (model, --report, --trace, CSV, --bench-out)
    // could not be written. The flow itself may have succeeded; the distinct
    // exit code lets scripts tell "your file is missing" from "the flow
    // broke". No partial file exists — CheckedFileWriter is atomic.
    std::fprintf(stderr, "artifact write error: %s\n", e.what());
    return 5;
  } catch (const hcp::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    // Anything outside the library's own error type (bad_alloc, stream
    // failures, ...) is an internal error: report it instead of aborting,
    // with a distinct exit code so scripts can tell the cases apart.
    std::fprintf(stderr, "internal error: %s\n", e.what());
    return 3;
  }
}
