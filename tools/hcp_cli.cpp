// hcp_cli — command-line driver for the library.
//
//   hcp_cli flow <design> [--seed N] [--no-directives]
//       run the full C-to-FPGA flow and print the implementation summary
//   hcp_cli train <model.hcp> <design> [<design> ...] [--model gbrt|ann|linear]
//       run flows, build the dataset and save a trained predictor
//   hcp_cli predict <model.hcp> <design>
//       HLS-synthesize the design (no PAR) and print predicted hotspots
//   hcp_cli advise <model.hcp> <design>
//       predict + print congestion-resolution hints
//   hcp_cli dump-ir <design>
//       print the post-directive IR of the design's top module
//   hcp_cli dump-verilog <design>
//       print the generated structural netlist as Verilog
//   hcp_cli list
//       list the bundled benchmark designs
//
// <design> is one of: face_detection, face_detection_noinline,
// face_detection_replicated, digit_recognition, spam_filter, digit_spam,
// bnn, rendering_3d, optical_flow, vision_combined.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "apps/digit_spam.hpp"
#include "apps/face_detection.hpp"
#include "apps/vision_suite.hpp"
#include "core/dataset_builder.hpp"
#include "core/flow.hpp"
#include "core/predictor.hpp"
#include "core/resolver.hpp"
#include "ir/printer.hpp"
#include "rtl/verilog.hpp"

using namespace hcp;

namespace {

const std::vector<std::string> kDesigns = {
    "face_detection",  "face_detection_noinline", "face_detection_replicated",
    "digit_recognition", "spam_filter", "digit_spam",
    "bnn", "rendering_3d", "optical_flow", "vision_combined"};

apps::AppDesign makeDesign(const std::string& name, bool withDirectives) {
  auto withDir = [&](auto cfg) {
    cfg.withDirectives = withDirectives;
    return cfg;
  };
  if (name == "face_detection")
    return apps::faceDetection(withDir(apps::FaceDetectionConfig{}));
  if (name == "face_detection_noinline") {
    apps::FaceDetectionConfig cfg;
    cfg.inlineClassifiers = false;
    cfg.withDirectives = withDirectives;
    return apps::faceDetection(cfg);
  }
  if (name == "face_detection_replicated") {
    apps::FaceDetectionConfig cfg;
    cfg.inlineClassifiers = false;
    cfg.replicateWindowArray = true;
    cfg.withDirectives = withDirectives;
    return apps::faceDetection(cfg);
  }
  if (name == "digit_recognition")
    return apps::digitRecognition(withDir(apps::DigitRecognitionConfig{}));
  if (name == "spam_filter")
    return apps::spamFilter(withDir(apps::SpamFilterConfig{}));
  if (name == "digit_spam") return apps::digitSpamCombined();
  if (name == "bnn") return apps::bnn(withDir(apps::BnnConfig{}));
  if (name == "rendering_3d")
    return apps::rendering3d(withDir(apps::RenderingConfig{}));
  if (name == "optical_flow")
    return apps::opticalFlow(withDir(apps::OpticalFlowConfig{}));
  if (name == "vision_combined") return apps::visionCombined();
  std::fprintf(stderr, "unknown design '%s' (try: hcp_cli list)\n",
               name.c_str());
  std::exit(2);
}

int usage() {
  std::fprintf(stderr,
               "usage: hcp_cli <flow|train|predict|advise|dump-ir|"
               "dump-verilog|list> ...\n(see the header of tools/hcp_cli.cpp "
               "for details)\n");
  return 2;
}

struct Args {
  std::vector<std::string> positional;
  std::uint64_t seed = 42;
  bool directives = true;
  std::string model = "gbrt";
};

Args parse(int argc, char** argv, int first) {
  Args args;
  for (int i = first; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--seed" && i + 1 < argc) {
      args.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (a == "--no-directives") {
      args.directives = false;
    } else if (a == "--model" && i + 1 < argc) {
      args.model = argv[++i];
    } else {
      args.positional.push_back(a);
    }
  }
  return args;
}

core::FlowResult runNamedFlow(const std::string& design, const Args& args,
                              const fpga::Device& device) {
  core::FlowConfig cfg;
  cfg.seed = args.seed;
  std::fprintf(stderr, "[hcp] running flow for %s...\n", design.c_str());
  return core::runFlow(makeDesign(design, args.directives), device, cfg);
}

void printSummary(const core::FlowResult& flow) {
  std::printf("design          : %s\n", flow.name.c_str());
  std::printf("cells / nets    : %zu / %zu\n", flow.rtl.netlist.numCells(),
              flow.rtl.netlist.numNets());
  std::printf("latency         : %llu cycles\n",
              static_cast<unsigned long long>(flow.latencyCycles));
  std::printf("WNS / Fmax      : %.3f ns / %.1f MHz\n", flow.wnsNs,
              flow.maxFrequencyMhz);
  std::printf("max congestion  : V %.1f%%  H %.1f%%\n", flow.maxVCongestion,
              flow.maxHCongestion);
  std::printf("tiles over 100%% : %zu\n", flow.congestedTiles);
  std::printf("samples traced  : %zu\n", flow.traced.samples.size());
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  const auto device = fpga::Device::xc7z020like();

  try {
    if (cmd == "list") {
      for (const auto& d : kDesigns) std::printf("%s\n", d.c_str());
      return 0;
    }
    if (cmd == "flow") {
      const Args args = parse(argc, argv, 2);
      if (args.positional.size() != 1) return usage();
      printSummary(runNamedFlow(args.positional[0], args, device));
      return 0;
    }
    if (cmd == "train") {
      const Args args = parse(argc, argv, 2);
      if (args.positional.size() < 2) return usage();
      const std::string modelPath = args.positional[0];
      std::vector<core::FlowResult> flows;
      for (std::size_t i = 1; i < args.positional.size(); ++i)
        flows.push_back(runNamedFlow(args.positional[i], args, device));
      const auto dataset = core::buildDataset(flows, {});
      core::PredictorOptions opts;
      if (args.model == "linear") opts.kind = core::ModelKind::Linear;
      else if (args.model == "ann") opts.kind = core::ModelKind::Ann;
      else if (args.model == "gbrt") opts.kind = core::ModelKind::Gbrt;
      else return usage();
      core::CongestionPredictor predictor(opts);
      std::fprintf(stderr, "[hcp] training %s on %zu samples...\n",
                   args.model.c_str(), dataset.vertical.size());
      predictor.train(dataset);
      predictor.save(modelPath);
      std::printf("saved %s predictor to %s (%zu samples)\n",
                  args.model.c_str(), modelPath.c_str(),
                  dataset.vertical.size());
      return 0;
    }
    if (cmd == "predict" || cmd == "advise") {
      const Args args = parse(argc, argv, 2);
      if (args.positional.size() != 2) return usage();
      auto predictor = core::CongestionPredictor::load(args.positional[0]);
      auto app = makeDesign(args.positional[1], args.directives);
      const auto design =
          hls::synthesize(std::move(app.module), app.directives, {});
      const auto hotspots = predictor.findHotspots(design, {}, 10);
      std::printf("predicted hotspots (no place-and-route was run):\n");
      for (const auto& h : hotspots)
        std::printf("  %-28s line %-5d %4zu ops  mean %.1f%%  max %.1f%%\n",
                    h.functionName.c_str(), h.sourceLine, h.numOps,
                    h.meanPredicted, h.maxPredicted);
      if (cmd == "advise") {
        std::printf("\nresolution hints:\n");
        for (const auto& hint : core::adviseResolution(design, hotspots, {}))
          std::printf("  [%s] %s\n",
                      std::string(core::resolutionKindName(hint.kind)).c_str(),
                      hint.message.c_str());
      }
      return 0;
    }
    if (cmd == "dump-ir") {
      const Args args = parse(argc, argv, 2);
      if (args.positional.size() != 1) return usage();
      auto app = makeDesign(args.positional[0], args.directives);
      const auto design =
          hls::synthesize(std::move(app.module), app.directives, {});
      std::printf("%s", ir::print(*design.module).c_str());
      return 0;
    }
    if (cmd == "dump-verilog") {
      const Args args = parse(argc, argv, 2);
      if (args.positional.size() != 1) return usage();
      auto app = makeDesign(args.positional[0], args.directives);
      const auto design =
          hls::synthesize(std::move(app.module), app.directives, {});
      const auto rtl = rtl::generateRtl(design);
      std::printf("%s", rtl::toVerilog(rtl.netlist).c_str());
      return 0;
    }
  } catch (const hcp::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
