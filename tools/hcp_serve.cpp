// hcp_serve: long-running prediction daemon.
//
//   hcp_serve [--model FILE] [options]
//
// Loads the trained predictor once, then answers line-delimited JSON
// requests (see src/serve/protocol.hpp for the wire format) on stdin/stdout
// or, with --socket, on a Unix domain socket — one connection at a time,
// until EOF or a {"op":"shutdown"} request. Feature extraction and flow
// execution are batched across the deterministic thread pool; the flow
// cache (--cache / HCP_CACHE) is the warm backing store.
//
// Options:
//   --model FILE      predictor saved by `hcp_cli train` (optional: without
//                     it, predict requests get per-request errors but flow /
//                     status requests still work)
//   --map-model FILE  congestion-map model saved by `hcp_cli train-map`
//                     (optional: without it, predict_map requests get
//                     per-request errors)
//   --socket PATH     listen on a Unix socket instead of stdin/stdout
//   --max-batch N     work items per thread-pool dispatch (default 8)
//   --queue-depth N   pending requests admitted between flushes (default 64;
//                     beyond it requests get a per-request queue-full error)
//   --max-line-bytes N  reject request lines longer than this (default 1 MiB)
//   --status-every N  print a status line to stderr every N batches
//   --threads N       thread-pool size (default: HCP_THREADS or hardware)
//   --tick-ns N       logical clock: each serving-thread clock read advances
//                     a counter by N ns instead of reading the real clock,
//                     making latency histograms / metrics byte-identical at
//                     any thread count (default 0 = real steady clock)
//   --metrics-out FILE      write a metrics snapshot (FILE as JSON plus a
//                           .prom Prometheus sibling) atomically after flush
//                           windows and at exit
//   --metrics-interval N    snapshot every N flush windows (default 1)
//   --report FILE     write a JSON run report on exit (HCP_REPORT fallback)
//   --trace FILE      write a Chrome trace timeline (HCP_TRACE fallback);
//                     also re-written incrementally at metrics cadence so a
//                     killed daemon leaves a stale-but-usable trace
//   --cache DIR       flow-result cache directory (HCP_CACHE fallback)
//   --failpoints SPEC arm fault injection, e.g. serve.request:1
//                     (HCP_FAILPOINTS fallback)
//
// SIGTERM/SIGINT are routed through a flag (no SA_RESTART): the blocked
// read/accept returns, the loop drains, and the normal at-exit artifact
// writes (report, trace, metrics snapshot) all run.
//
// Per-request failures (malformed JSON, unknown design, injected serve.*
// fault) are answered with {"ok":false,...} and never stop the daemon.
// Exit codes: 0 clean shutdown/EOF, 1 startup error (hcp::Error, e.g. the
// model cannot be loaded), 2 usage error, 3 unexpected internal error,
// 5 the response stream or a requested artifact could not be written.
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "serve/fdio.hpp"
#include "serve/server.hpp"
#include "support/env.hpp"
#include "support/error.hpp"
#include "support/failpoint.hpp"
#include "support/flowcache.hpp"
#include "support/parallel.hpp"
#include "support/signals.hpp"
#include "support/telemetry.hpp"
#include "support/tracing.hpp"

using namespace hcp;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: hcp_serve [--model FILE] [--map-model FILE] [--socket PATH]\n"
      "                 [--max-batch N]\n"
      "                 [--queue-depth N] [--max-line-bytes N]\n"
      "                 [--status-every N] [--threads N] [--tick-ns N]\n"
      "                 [--metrics-out FILE] [--metrics-interval N]\n"
      "                 [--report FILE] [--trace FILE] [--cache DIR]\n"
      "                 [--failpoints SPEC]\n");
  return 2;
}

[[noreturn]] void usageError(const std::string& message) {
  std::fprintf(stderr, "hcp_serve: %s\n", message.c_str());
  std::exit(usage());
}

struct Args {
  serve::ServerConfig config;
  std::string socketPath;
  std::uint64_t threads = 0;  ///< 0 = HCP_THREADS / hardware default
};

std::uint64_t parseCount(const std::string& flag, const std::string& value,
                         std::uint64_t minValue) {
  const auto parsed = support::env::parseU64(value);
  if (!parsed || *parsed < minValue)
    usageError(flag + " expects an integer >= " + std::to_string(minValue) +
               ", got '" + value + "'");
  return *parsed;
}

Args parse(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    std::string value;
    bool hasValue = false;
    if (const auto eq = arg.find('='); eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
      hasValue = true;
    }
    // --report/--trace/--cache/--failpoints were consumed by the init*
    // helpers before parse() ran; skip them (and their value tokens) here.
    if (arg == "--report" || arg == "--trace" || arg == "--cache" ||
        arg == "--failpoints") {
      if (!hasValue) ++i;
      continue;
    }
    auto need = [&]() -> const std::string& {
      if (!hasValue) {
        if (i + 1 >= argc) usageError(arg + " needs a value");
        value = argv[++i];
      }
      return value;
    };
    if (arg == "--model") {
      args.config.modelPath = need();
    } else if (arg == "--map-model") {
      args.config.mapModelPath = need();
    } else if (arg == "--socket") {
      args.socketPath = need();
    } else if (arg == "--max-batch") {
      args.config.maxBatch = static_cast<std::size_t>(parseCount(arg, need(), 1));
    } else if (arg == "--queue-depth") {
      args.config.queueDepth =
          static_cast<std::size_t>(parseCount(arg, need(), 1));
    } else if (arg == "--max-line-bytes") {
      args.config.maxLineBytes =
          static_cast<std::size_t>(parseCount(arg, need(), 1));
    } else if (arg == "--status-every") {
      args.config.statusEveryBatches = parseCount(arg, need(), 1);
    } else if (arg == "--threads") {
      args.threads = parseCount(arg, need(), 1);
    } else if (arg == "--tick-ns") {
      args.config.tickNs = parseCount(arg, need(), 1);
    } else if (arg == "--metrics-out") {
      args.config.metricsOutPath = need();
    } else if (arg == "--metrics-interval") {
      args.config.metricsInterval = parseCount(arg, need(), 1);
    } else {
      usageError("unknown argument '" + arg + "'");
    }
  }
  return args;
}

/// Serves Unix-socket connections one at a time until a shutdown request.
/// Returns false when a response stream failed mid-connection.
bool serveSocket(serve::Server& server, const std::string& path) {
  const int listenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listenFd < 0)
    throw Error("socket() failed: " + std::string(std::strerror(errno)));
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path) {
    ::close(listenFd);
    throw Error("socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  ::unlink(path.c_str());
  if (::bind(listenFd, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0 ||
      ::listen(listenFd, 8) != 0) {
    const int err = errno;
    ::close(listenFd);
    throw Error("cannot listen on " + path + ": " + std::strerror(err));
  }
  std::fprintf(stderr, "[hcp_serve] listening on %s\n", path.c_str());

  bool clean = true;
  while (!server.shutdownRequested() && !support::terminationRequested()) {
    int fd;
    do {
      fd = ::accept(listenFd, nullptr, nullptr);
    } while (fd < 0 && errno == EINTR && !support::terminationRequested());
    if (fd < 0) {
      // SIGTERM/SIGINT interrupting accept() is the clean daemon-stop path;
      // any other accept failure is not.
      clean = support::terminationRequested();
      break;
    }
    serve::FdStream stream(fd);
    // A connection whose response stream died only loses that client; the
    // daemon accepts the next one.
    server.serve(stream.in, stream.out);
    ::close(fd);
  }
  ::close(listenFd);
  ::unlink(path.c_str());
  return clean;
}

int run(int argc, char** argv) {
  // SIGPIPE would otherwise kill the daemon the instant a client hangs up
  // mid-response; ignored, the write fails visibly instead. SIGTERM/SIGINT
  // become a drain-and-flush request instead of an instant kill.
  support::ignoreSigpipe();
  support::installTerminationHandler();
  // Validate HCP_THREADS up front (exit 2 on garbage) — a daemon must not
  // defer its misconfiguration to the first batch.
  support::threadLimit();
  support::failpoint::initFromArgs(argc, argv);
  const std::string reportPath =
      support::telemetry::initReportFromArgs(argc, argv);
  const std::string tracePath =
      support::tracing::initTraceFromArgs(argc, argv);
  support::flowcache::initCacheFromArgs(argc, argv);

  const Args args = parse(argc, argv);
  if (args.threads > 0)
    support::setThreadLimit(static_cast<std::size_t>(args.threads));
  if (!tracePath.empty()) {
    // Incremental flushing: the trace file is rewritten at quiescent points
    // while serving, so a killed daemon leaves a stale file, not none.
    support::tracing::TraceMeta meta;
    meta.tool = "hcp_serve";
    meta.command = "serve";
    support::tracing::configureAutoFlush(tracePath, meta);
  }

  serve::Server server(args.config);  // models load here, once
  std::fprintf(stderr,
               "[hcp_serve] ready (model: %s, map model: %s, %zu thread%s)\n",
               server.hasModel() ? args.config.modelPath.c_str() : "none",
               server.hasMapModel() ? args.config.mapModelPath.c_str()
                                    : "none",
               support::threadLimit(),
               support::threadLimit() == 1 ? "" : "s");

  bool clean;
  if (!args.socketPath.empty()) {
    clean = serveSocket(server, args.socketPath);
  } else {
    clean = server.serve(std::cin, std::cout);
  }

  const auto& stats = server.stats();
  std::fprintf(stderr,
               "[hcp_serve] exiting: served=%llu errors=%llu rejected=%llu "
               "cache_hits=%llu batches=%llu\n",
               static_cast<unsigned long long>(stats.served),
               static_cast<unsigned long long>(stats.errors),
               static_cast<unsigned long long>(stats.rejected),
               static_cast<unsigned long long>(stats.cacheHits),
               static_cast<unsigned long long>(stats.batches));

  if (!reportPath.empty()) {
    support::telemetry::RunReport meta;
    meta.tool = "hcp_serve";
    meta.command = "serve";
    meta.threads = support::threadLimit();
    support::telemetry::writeReportToFile(reportPath, meta);
    std::fprintf(stderr, "[hcp_serve] run report written to %s\n",
                 reportPath.c_str());
  }
  if (!tracePath.empty()) {
    support::tracing::TraceMeta meta;
    meta.tool = "hcp_serve";
    meta.command = "serve";
    support::tracing::writeChromeTraceToFile(tracePath, meta);
    std::fprintf(stderr, "[hcp_serve] trace timeline written to %s\n",
                 tracePath.c_str());
  }
  // Final snapshot: unlike the periodic ones this reflects the drained
  // daemon (and is the only one a trafficless run ever writes).
  server.writeMetricsNow();

  if (!clean)
    throw IoError("response stream failed mid-serve", "<stdout/socket>");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const hcp::IoError& e) {
    std::fprintf(stderr, "artifact write error: %s\n", e.what());
    return 5;
  } catch (const hcp::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "internal error: %s\n", e.what());
    return 3;
  }
}
