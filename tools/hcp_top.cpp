// hcp_top: terminal dashboard for a running hcp_serve daemon.
//
//   hcp_top --socket PATH [--watch SECONDS [--count N]] [--raw]
//
// Connects to the daemon's Unix socket, issues one `metrics` request, and
// renders the scrape — QPS, queue depth, cache hit rate, and the
// p50/p90/p99/max latency percentiles of every live histogram. One-shot by
// default; --watch re-scrapes every SECONDS seconds (--count bounds the
// number of scrapes, 0 = until SIGINT/SIGTERM). --raw prints the daemon's
// JSON response line verbatim instead of the table, which is what scripts
// and the CI smoke job want.
//
// Exit codes: 0 success, 1 the daemon is unreachable or answered garbage,
// 2 usage error.
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>

#include "serve/top.hpp"
#include "support/env.hpp"
#include "support/error.hpp"
#include "support/signals.hpp"

using namespace hcp;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: hcp_top --socket PATH [--watch SECONDS [--count N]] "
               "[--raw]\n");
  return 2;
}

[[noreturn]] void usageError(const std::string& message) {
  std::fprintf(stderr, "hcp_top: %s\n", message.c_str());
  std::exit(usage());
}

struct Args {
  std::string socketPath;
  std::uint64_t watchSeconds = 0;  ///< 0 = one-shot
  std::uint64_t count = 0;         ///< watch-mode scrape limit (0 = no limit)
  bool raw = false;
};

Args parse(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    std::string value;
    bool hasValue = false;
    if (const auto eq = arg.find('='); eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
      hasValue = true;
    }
    auto need = [&]() -> const std::string& {
      if (!hasValue) {
        if (i + 1 >= argc) usageError(arg + " needs a value");
        value = argv[++i];
      }
      return value;
    };
    auto needCount = [&](std::uint64_t minValue) {
      const auto parsed = support::env::parseU64(need());
      if (!parsed || *parsed < minValue)
        usageError(arg + " expects an integer >= " +
                   std::to_string(minValue) + ", got '" + value + "'");
      return *parsed;
    };
    if (arg == "--socket") {
      args.socketPath = need();
    } else if (arg == "--watch") {
      args.watchSeconds = needCount(1);
    } else if (arg == "--count") {
      args.count = needCount(1);
    } else if (arg == "--raw") {
      if (hasValue) usageError("--raw takes no value");
      args.raw = true;
    } else {
      usageError("unknown argument '" + arg + "'");
    }
  }
  if (args.socketPath.empty()) usageError("--socket PATH is required");
  if (args.count != 0 && args.watchSeconds == 0)
    usageError("--count only makes sense with --watch");
  return args;
}

int run(int argc, char** argv) {
  support::ignoreSigpipe();
  support::installTerminationHandler();
  const Args args = parse(argc, argv);

  std::uint64_t scrapes = 0;
  for (;;) {
    const std::string line = serve::top::scrapeOnce(args.socketPath);
    if (args.raw) {
      std::printf("%s\n", line.c_str());
    } else {
      const serve::top::Scrape s = serve::top::parseMetricsResponse(line);
      if (args.watchSeconds != 0 && scrapes != 0) std::printf("\n");
      std::fputs(serve::top::renderDashboard(s).c_str(), stdout);
    }
    std::fflush(stdout);
    ++scrapes;
    if (args.watchSeconds == 0) break;
    if (args.count != 0 && scrapes >= args.count) break;
    // Sleep in short slices so SIGTERM/SIGINT ends the watch promptly.
    for (std::uint64_t waited = 0;
         waited < args.watchSeconds * 10 && !support::terminationRequested();
         ++waited)
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    if (support::terminationRequested()) break;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const hcp::Error& e) {
    std::fprintf(stderr, "hcp_top: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "hcp_top: internal error: %s\n", e.what());
    return 3;
  }
}
