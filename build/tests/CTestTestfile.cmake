# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_support[1]_include.cmake")
include("/root/repo/build/tests/test_ir[1]_include.cmake")
include("/root/repo/build/tests/test_ir_passes[1]_include.cmake")
include("/root/repo/build/tests/test_ir_graph[1]_include.cmake")
include("/root/repo/build/tests/test_hls_charlib[1]_include.cmake")
include("/root/repo/build/tests/test_hls_transforms[1]_include.cmake")
include("/root/repo/build/tests/test_hls_scheduler[1]_include.cmake")
include("/root/repo/build/tests/test_hls_binder[1]_include.cmake")
include("/root/repo/build/tests/test_hls_design[1]_include.cmake")
include("/root/repo/build/tests/test_rtl[1]_include.cmake")
include("/root/repo/build/tests/test_fpga_device[1]_include.cmake")
include("/root/repo/build/tests/test_fpga_packer[1]_include.cmake")
include("/root/repo/build/tests/test_fpga_placer[1]_include.cmake")
include("/root/repo/build/tests/test_fpga_router[1]_include.cmake")
include("/root/repo/build/tests/test_fpga_sta[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_features[1]_include.cmake")
include("/root/repo/build/tests/test_ml_dataset[1]_include.cmake")
include("/root/repo/build/tests/test_ml_models[1]_include.cmake")
include("/root/repo/build/tests/test_ml_validation[1]_include.cmake")
include("/root/repo/build/tests/test_apps[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_ml_serialize[1]_include.cmake")
include("/root/repo/build/tests/test_ir_printer[1]_include.cmake")
include("/root/repo/build/tests/test_rtl_verilog[1]_include.cmake")
include("/root/repo/build/tests/test_core_serialize[1]_include.cmake")
include("/root/repo/build/tests/test_fuzz_pipeline[1]_include.cmake")
