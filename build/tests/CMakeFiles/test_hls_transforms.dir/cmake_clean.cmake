file(REMOVE_RECURSE
  "CMakeFiles/test_hls_transforms.dir/hls_transforms_test.cpp.o"
  "CMakeFiles/test_hls_transforms.dir/hls_transforms_test.cpp.o.d"
  "test_hls_transforms"
  "test_hls_transforms.pdb"
  "test_hls_transforms[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hls_transforms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
