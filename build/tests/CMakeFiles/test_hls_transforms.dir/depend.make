# Empty dependencies file for test_hls_transforms.
# This may be replaced when dependencies are built.
