file(REMOVE_RECURSE
  "CMakeFiles/test_hls_binder.dir/hls_binder_test.cpp.o"
  "CMakeFiles/test_hls_binder.dir/hls_binder_test.cpp.o.d"
  "test_hls_binder"
  "test_hls_binder.pdb"
  "test_hls_binder[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hls_binder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
