# Empty dependencies file for test_hls_binder.
# This may be replaced when dependencies are built.
