# Empty compiler generated dependencies file for test_fpga_packer.
# This may be replaced when dependencies are built.
