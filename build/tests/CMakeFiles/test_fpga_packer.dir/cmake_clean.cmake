file(REMOVE_RECURSE
  "CMakeFiles/test_fpga_packer.dir/fpga_packer_test.cpp.o"
  "CMakeFiles/test_fpga_packer.dir/fpga_packer_test.cpp.o.d"
  "test_fpga_packer"
  "test_fpga_packer.pdb"
  "test_fpga_packer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fpga_packer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
