file(REMOVE_RECURSE
  "CMakeFiles/test_fpga_device.dir/fpga_device_test.cpp.o"
  "CMakeFiles/test_fpga_device.dir/fpga_device_test.cpp.o.d"
  "test_fpga_device"
  "test_fpga_device.pdb"
  "test_fpga_device[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fpga_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
