file(REMOVE_RECURSE
  "CMakeFiles/test_fpga_router.dir/fpga_router_test.cpp.o"
  "CMakeFiles/test_fpga_router.dir/fpga_router_test.cpp.o.d"
  "test_fpga_router"
  "test_fpga_router.pdb"
  "test_fpga_router[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fpga_router.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
