# Empty dependencies file for test_ir_graph.
# This may be replaced when dependencies are built.
