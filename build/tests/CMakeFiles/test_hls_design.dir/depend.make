# Empty dependencies file for test_hls_design.
# This may be replaced when dependencies are built.
