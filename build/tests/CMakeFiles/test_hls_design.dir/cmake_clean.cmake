file(REMOVE_RECURSE
  "CMakeFiles/test_hls_design.dir/hls_design_test.cpp.o"
  "CMakeFiles/test_hls_design.dir/hls_design_test.cpp.o.d"
  "test_hls_design"
  "test_hls_design.pdb"
  "test_hls_design[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hls_design.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
