file(REMOVE_RECURSE
  "CMakeFiles/test_fpga_placer.dir/fpga_placer_test.cpp.o"
  "CMakeFiles/test_fpga_placer.dir/fpga_placer_test.cpp.o.d"
  "test_fpga_placer"
  "test_fpga_placer.pdb"
  "test_fpga_placer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fpga_placer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
