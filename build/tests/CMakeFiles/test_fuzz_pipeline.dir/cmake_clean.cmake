file(REMOVE_RECURSE
  "CMakeFiles/test_fuzz_pipeline.dir/fuzz_pipeline_test.cpp.o"
  "CMakeFiles/test_fuzz_pipeline.dir/fuzz_pipeline_test.cpp.o.d"
  "test_fuzz_pipeline"
  "test_fuzz_pipeline.pdb"
  "test_fuzz_pipeline[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fuzz_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
