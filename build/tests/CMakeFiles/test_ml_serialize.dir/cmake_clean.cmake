file(REMOVE_RECURSE
  "CMakeFiles/test_ml_serialize.dir/ml_serialize_test.cpp.o"
  "CMakeFiles/test_ml_serialize.dir/ml_serialize_test.cpp.o.d"
  "test_ml_serialize"
  "test_ml_serialize.pdb"
  "test_ml_serialize[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ml_serialize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
