file(REMOVE_RECURSE
  "CMakeFiles/test_hls_charlib.dir/hls_charlib_test.cpp.o"
  "CMakeFiles/test_hls_charlib.dir/hls_charlib_test.cpp.o.d"
  "test_hls_charlib"
  "test_hls_charlib.pdb"
  "test_hls_charlib[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hls_charlib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
