# Empty dependencies file for test_hls_charlib.
# This may be replaced when dependencies are built.
