# Empty dependencies file for test_rtl_verilog.
# This may be replaced when dependencies are built.
