# Empty compiler generated dependencies file for test_fpga_sta.
# This may be replaced when dependencies are built.
