file(REMOVE_RECURSE
  "CMakeFiles/test_fpga_sta.dir/fpga_sta_test.cpp.o"
  "CMakeFiles/test_fpga_sta.dir/fpga_sta_test.cpp.o.d"
  "test_fpga_sta"
  "test_fpga_sta.pdb"
  "test_fpga_sta[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fpga_sta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
