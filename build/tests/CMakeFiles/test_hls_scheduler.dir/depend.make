# Empty dependencies file for test_hls_scheduler.
# This may be replaced when dependencies are built.
