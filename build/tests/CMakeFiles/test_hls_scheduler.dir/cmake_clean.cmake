file(REMOVE_RECURSE
  "CMakeFiles/test_hls_scheduler.dir/hls_scheduler_test.cpp.o"
  "CMakeFiles/test_hls_scheduler.dir/hls_scheduler_test.cpp.o.d"
  "test_hls_scheduler"
  "test_hls_scheduler.pdb"
  "test_hls_scheduler[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hls_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
