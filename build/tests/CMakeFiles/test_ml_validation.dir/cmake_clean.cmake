file(REMOVE_RECURSE
  "CMakeFiles/test_ml_validation.dir/ml_validation_test.cpp.o"
  "CMakeFiles/test_ml_validation.dir/ml_validation_test.cpp.o.d"
  "test_ml_validation"
  "test_ml_validation.pdb"
  "test_ml_validation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ml_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
