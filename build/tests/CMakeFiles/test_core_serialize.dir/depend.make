# Empty dependencies file for test_core_serialize.
# This may be replaced when dependencies are built.
