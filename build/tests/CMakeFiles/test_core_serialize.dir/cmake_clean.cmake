file(REMOVE_RECURSE
  "CMakeFiles/test_core_serialize.dir/core_serialize_test.cpp.o"
  "CMakeFiles/test_core_serialize.dir/core_serialize_test.cpp.o.d"
  "test_core_serialize"
  "test_core_serialize.pdb"
  "test_core_serialize[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_serialize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
