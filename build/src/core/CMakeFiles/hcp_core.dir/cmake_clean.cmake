file(REMOVE_RECURSE
  "CMakeFiles/hcp_core.dir/dataset_builder.cpp.o"
  "CMakeFiles/hcp_core.dir/dataset_builder.cpp.o.d"
  "CMakeFiles/hcp_core.dir/flow.cpp.o"
  "CMakeFiles/hcp_core.dir/flow.cpp.o.d"
  "CMakeFiles/hcp_core.dir/predictor.cpp.o"
  "CMakeFiles/hcp_core.dir/predictor.cpp.o.d"
  "CMakeFiles/hcp_core.dir/resolver.cpp.o"
  "CMakeFiles/hcp_core.dir/resolver.cpp.o.d"
  "libhcp_core.a"
  "libhcp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hcp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
