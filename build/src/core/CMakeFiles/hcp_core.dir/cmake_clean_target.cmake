file(REMOVE_RECURSE
  "libhcp_core.a"
)
