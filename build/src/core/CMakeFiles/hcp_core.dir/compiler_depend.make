# Empty compiler generated dependencies file for hcp_core.
# This may be replaced when dependencies are built.
