# Empty dependencies file for hcp_fpga.
# This may be replaced when dependencies are built.
