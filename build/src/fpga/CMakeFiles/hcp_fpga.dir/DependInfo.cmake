
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fpga/congestion.cpp" "src/fpga/CMakeFiles/hcp_fpga.dir/congestion.cpp.o" "gcc" "src/fpga/CMakeFiles/hcp_fpga.dir/congestion.cpp.o.d"
  "/root/repo/src/fpga/device.cpp" "src/fpga/CMakeFiles/hcp_fpga.dir/device.cpp.o" "gcc" "src/fpga/CMakeFiles/hcp_fpga.dir/device.cpp.o.d"
  "/root/repo/src/fpga/packer.cpp" "src/fpga/CMakeFiles/hcp_fpga.dir/packer.cpp.o" "gcc" "src/fpga/CMakeFiles/hcp_fpga.dir/packer.cpp.o.d"
  "/root/repo/src/fpga/par.cpp" "src/fpga/CMakeFiles/hcp_fpga.dir/par.cpp.o" "gcc" "src/fpga/CMakeFiles/hcp_fpga.dir/par.cpp.o.d"
  "/root/repo/src/fpga/placer.cpp" "src/fpga/CMakeFiles/hcp_fpga.dir/placer.cpp.o" "gcc" "src/fpga/CMakeFiles/hcp_fpga.dir/placer.cpp.o.d"
  "/root/repo/src/fpga/router.cpp" "src/fpga/CMakeFiles/hcp_fpga.dir/router.cpp.o" "gcc" "src/fpga/CMakeFiles/hcp_fpga.dir/router.cpp.o.d"
  "/root/repo/src/fpga/sta.cpp" "src/fpga/CMakeFiles/hcp_fpga.dir/sta.cpp.o" "gcc" "src/fpga/CMakeFiles/hcp_fpga.dir/sta.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rtl/CMakeFiles/hcp_rtl.dir/DependInfo.cmake"
  "/root/repo/build/src/hls/CMakeFiles/hcp_hls.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/hcp_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/hcp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
