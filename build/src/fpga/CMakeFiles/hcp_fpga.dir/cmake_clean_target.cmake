file(REMOVE_RECURSE
  "libhcp_fpga.a"
)
