file(REMOVE_RECURSE
  "CMakeFiles/hcp_fpga.dir/congestion.cpp.o"
  "CMakeFiles/hcp_fpga.dir/congestion.cpp.o.d"
  "CMakeFiles/hcp_fpga.dir/device.cpp.o"
  "CMakeFiles/hcp_fpga.dir/device.cpp.o.d"
  "CMakeFiles/hcp_fpga.dir/packer.cpp.o"
  "CMakeFiles/hcp_fpga.dir/packer.cpp.o.d"
  "CMakeFiles/hcp_fpga.dir/par.cpp.o"
  "CMakeFiles/hcp_fpga.dir/par.cpp.o.d"
  "CMakeFiles/hcp_fpga.dir/placer.cpp.o"
  "CMakeFiles/hcp_fpga.dir/placer.cpp.o.d"
  "CMakeFiles/hcp_fpga.dir/router.cpp.o"
  "CMakeFiles/hcp_fpga.dir/router.cpp.o.d"
  "CMakeFiles/hcp_fpga.dir/sta.cpp.o"
  "CMakeFiles/hcp_fpga.dir/sta.cpp.o.d"
  "libhcp_fpga.a"
  "libhcp_fpga.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hcp_fpga.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
