file(REMOVE_RECURSE
  "CMakeFiles/hcp_rtl.dir/generator.cpp.o"
  "CMakeFiles/hcp_rtl.dir/generator.cpp.o.d"
  "CMakeFiles/hcp_rtl.dir/netlist.cpp.o"
  "CMakeFiles/hcp_rtl.dir/netlist.cpp.o.d"
  "CMakeFiles/hcp_rtl.dir/verilog.cpp.o"
  "CMakeFiles/hcp_rtl.dir/verilog.cpp.o.d"
  "libhcp_rtl.a"
  "libhcp_rtl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hcp_rtl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
