
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rtl/generator.cpp" "src/rtl/CMakeFiles/hcp_rtl.dir/generator.cpp.o" "gcc" "src/rtl/CMakeFiles/hcp_rtl.dir/generator.cpp.o.d"
  "/root/repo/src/rtl/netlist.cpp" "src/rtl/CMakeFiles/hcp_rtl.dir/netlist.cpp.o" "gcc" "src/rtl/CMakeFiles/hcp_rtl.dir/netlist.cpp.o.d"
  "/root/repo/src/rtl/verilog.cpp" "src/rtl/CMakeFiles/hcp_rtl.dir/verilog.cpp.o" "gcc" "src/rtl/CMakeFiles/hcp_rtl.dir/verilog.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hls/CMakeFiles/hcp_hls.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/hcp_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/hcp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
