# Empty compiler generated dependencies file for hcp_rtl.
# This may be replaced when dependencies are built.
