# Empty dependencies file for hcp_rtl.
# This may be replaced when dependencies are built.
