file(REMOVE_RECURSE
  "libhcp_rtl.a"
)
