
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hls/binder.cpp" "src/hls/CMakeFiles/hcp_hls.dir/binder.cpp.o" "gcc" "src/hls/CMakeFiles/hcp_hls.dir/binder.cpp.o.d"
  "/root/repo/src/hls/charlib.cpp" "src/hls/CMakeFiles/hcp_hls.dir/charlib.cpp.o" "gcc" "src/hls/CMakeFiles/hcp_hls.dir/charlib.cpp.o.d"
  "/root/repo/src/hls/design.cpp" "src/hls/CMakeFiles/hcp_hls.dir/design.cpp.o" "gcc" "src/hls/CMakeFiles/hcp_hls.dir/design.cpp.o.d"
  "/root/repo/src/hls/directives.cpp" "src/hls/CMakeFiles/hcp_hls.dir/directives.cpp.o" "gcc" "src/hls/CMakeFiles/hcp_hls.dir/directives.cpp.o.d"
  "/root/repo/src/hls/scheduler.cpp" "src/hls/CMakeFiles/hcp_hls.dir/scheduler.cpp.o" "gcc" "src/hls/CMakeFiles/hcp_hls.dir/scheduler.cpp.o.d"
  "/root/repo/src/hls/transforms.cpp" "src/hls/CMakeFiles/hcp_hls.dir/transforms.cpp.o" "gcc" "src/hls/CMakeFiles/hcp_hls.dir/transforms.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/hcp_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/hcp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
