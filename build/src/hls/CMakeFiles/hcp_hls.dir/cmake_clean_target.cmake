file(REMOVE_RECURSE
  "libhcp_hls.a"
)
