file(REMOVE_RECURSE
  "CMakeFiles/hcp_hls.dir/binder.cpp.o"
  "CMakeFiles/hcp_hls.dir/binder.cpp.o.d"
  "CMakeFiles/hcp_hls.dir/charlib.cpp.o"
  "CMakeFiles/hcp_hls.dir/charlib.cpp.o.d"
  "CMakeFiles/hcp_hls.dir/design.cpp.o"
  "CMakeFiles/hcp_hls.dir/design.cpp.o.d"
  "CMakeFiles/hcp_hls.dir/directives.cpp.o"
  "CMakeFiles/hcp_hls.dir/directives.cpp.o.d"
  "CMakeFiles/hcp_hls.dir/scheduler.cpp.o"
  "CMakeFiles/hcp_hls.dir/scheduler.cpp.o.d"
  "CMakeFiles/hcp_hls.dir/transforms.cpp.o"
  "CMakeFiles/hcp_hls.dir/transforms.cpp.o.d"
  "libhcp_hls.a"
  "libhcp_hls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hcp_hls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
