# Empty dependencies file for hcp_hls.
# This may be replaced when dependencies are built.
