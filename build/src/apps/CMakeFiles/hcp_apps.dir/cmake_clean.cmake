file(REMOVE_RECURSE
  "CMakeFiles/hcp_apps.dir/digit_spam.cpp.o"
  "CMakeFiles/hcp_apps.dir/digit_spam.cpp.o.d"
  "CMakeFiles/hcp_apps.dir/face_detection.cpp.o"
  "CMakeFiles/hcp_apps.dir/face_detection.cpp.o.d"
  "CMakeFiles/hcp_apps.dir/vision_suite.cpp.o"
  "CMakeFiles/hcp_apps.dir/vision_suite.cpp.o.d"
  "libhcp_apps.a"
  "libhcp_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hcp_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
