# Empty dependencies file for hcp_apps.
# This may be replaced when dependencies are built.
