file(REMOVE_RECURSE
  "libhcp_apps.a"
)
