# Empty compiler generated dependencies file for hcp_support.
# This may be replaced when dependencies are built.
