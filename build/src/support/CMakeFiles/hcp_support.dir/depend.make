# Empty dependencies file for hcp_support.
# This may be replaced when dependencies are built.
