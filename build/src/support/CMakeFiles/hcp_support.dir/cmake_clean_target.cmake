file(REMOVE_RECURSE
  "libhcp_support.a"
)
