file(REMOVE_RECURSE
  "CMakeFiles/hcp_support.dir/rng.cpp.o"
  "CMakeFiles/hcp_support.dir/rng.cpp.o.d"
  "CMakeFiles/hcp_support.dir/stats.cpp.o"
  "CMakeFiles/hcp_support.dir/stats.cpp.o.d"
  "CMakeFiles/hcp_support.dir/strings.cpp.o"
  "CMakeFiles/hcp_support.dir/strings.cpp.o.d"
  "CMakeFiles/hcp_support.dir/table.cpp.o"
  "CMakeFiles/hcp_support.dir/table.cpp.o.d"
  "libhcp_support.a"
  "libhcp_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hcp_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
