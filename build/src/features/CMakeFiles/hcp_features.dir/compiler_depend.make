# Empty compiler generated dependencies file for hcp_features.
# This may be replaced when dependencies are built.
