
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/features/extractor.cpp" "src/features/CMakeFiles/hcp_features.dir/extractor.cpp.o" "gcc" "src/features/CMakeFiles/hcp_features.dir/extractor.cpp.o.d"
  "/root/repo/src/features/feature_registry.cpp" "src/features/CMakeFiles/hcp_features.dir/feature_registry.cpp.o" "gcc" "src/features/CMakeFiles/hcp_features.dir/feature_registry.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hls/CMakeFiles/hcp_hls.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/hcp_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/hcp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
