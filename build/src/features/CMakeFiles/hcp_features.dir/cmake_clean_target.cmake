file(REMOVE_RECURSE
  "libhcp_features.a"
)
