file(REMOVE_RECURSE
  "CMakeFiles/hcp_features.dir/extractor.cpp.o"
  "CMakeFiles/hcp_features.dir/extractor.cpp.o.d"
  "CMakeFiles/hcp_features.dir/feature_registry.cpp.o"
  "CMakeFiles/hcp_features.dir/feature_registry.cpp.o.d"
  "libhcp_features.a"
  "libhcp_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hcp_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
