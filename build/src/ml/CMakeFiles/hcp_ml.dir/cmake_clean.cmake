file(REMOVE_RECURSE
  "CMakeFiles/hcp_ml.dir/dataset.cpp.o"
  "CMakeFiles/hcp_ml.dir/dataset.cpp.o.d"
  "CMakeFiles/hcp_ml.dir/gbrt.cpp.o"
  "CMakeFiles/hcp_ml.dir/gbrt.cpp.o.d"
  "CMakeFiles/hcp_ml.dir/linear.cpp.o"
  "CMakeFiles/hcp_ml.dir/linear.cpp.o.d"
  "CMakeFiles/hcp_ml.dir/metrics.cpp.o"
  "CMakeFiles/hcp_ml.dir/metrics.cpp.o.d"
  "CMakeFiles/hcp_ml.dir/mlp.cpp.o"
  "CMakeFiles/hcp_ml.dir/mlp.cpp.o.d"
  "CMakeFiles/hcp_ml.dir/serialize.cpp.o"
  "CMakeFiles/hcp_ml.dir/serialize.cpp.o.d"
  "CMakeFiles/hcp_ml.dir/tree.cpp.o"
  "CMakeFiles/hcp_ml.dir/tree.cpp.o.d"
  "CMakeFiles/hcp_ml.dir/validation.cpp.o"
  "CMakeFiles/hcp_ml.dir/validation.cpp.o.d"
  "libhcp_ml.a"
  "libhcp_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hcp_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
