file(REMOVE_RECURSE
  "libhcp_ml.a"
)
