# Empty dependencies file for hcp_ml.
# This may be replaced when dependencies are built.
