file(REMOVE_RECURSE
  "CMakeFiles/hcp_ir.dir/builder.cpp.o"
  "CMakeFiles/hcp_ir.dir/builder.cpp.o.d"
  "CMakeFiles/hcp_ir.dir/function.cpp.o"
  "CMakeFiles/hcp_ir.dir/function.cpp.o.d"
  "CMakeFiles/hcp_ir.dir/graph.cpp.o"
  "CMakeFiles/hcp_ir.dir/graph.cpp.o.d"
  "CMakeFiles/hcp_ir.dir/module.cpp.o"
  "CMakeFiles/hcp_ir.dir/module.cpp.o.d"
  "CMakeFiles/hcp_ir.dir/opcode.cpp.o"
  "CMakeFiles/hcp_ir.dir/opcode.cpp.o.d"
  "CMakeFiles/hcp_ir.dir/passes.cpp.o"
  "CMakeFiles/hcp_ir.dir/passes.cpp.o.d"
  "CMakeFiles/hcp_ir.dir/printer.cpp.o"
  "CMakeFiles/hcp_ir.dir/printer.cpp.o.d"
  "CMakeFiles/hcp_ir.dir/verifier.cpp.o"
  "CMakeFiles/hcp_ir.dir/verifier.cpp.o.d"
  "libhcp_ir.a"
  "libhcp_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hcp_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
