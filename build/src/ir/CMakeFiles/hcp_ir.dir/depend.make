# Empty dependencies file for hcp_ir.
# This may be replaced when dependencies are built.
