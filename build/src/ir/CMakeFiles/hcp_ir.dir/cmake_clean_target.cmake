file(REMOVE_RECURSE
  "libhcp_ir.a"
)
