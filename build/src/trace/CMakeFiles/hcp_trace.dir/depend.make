# Empty dependencies file for hcp_trace.
# This may be replaced when dependencies are built.
