# Empty compiler generated dependencies file for hcp_trace.
# This may be replaced when dependencies are built.
