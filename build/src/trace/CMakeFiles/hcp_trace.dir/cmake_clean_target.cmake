file(REMOVE_RECURSE
  "libhcp_trace.a"
)
