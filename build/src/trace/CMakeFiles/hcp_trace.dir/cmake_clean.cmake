file(REMOVE_RECURSE
  "CMakeFiles/hcp_trace.dir/backtrace.cpp.o"
  "CMakeFiles/hcp_trace.dir/backtrace.cpp.o.d"
  "libhcp_trace.a"
  "libhcp_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hcp_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
