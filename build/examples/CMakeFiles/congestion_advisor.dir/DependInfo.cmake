
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/congestion_advisor.cpp" "examples/CMakeFiles/congestion_advisor.dir/congestion_advisor.cpp.o" "gcc" "examples/CMakeFiles/congestion_advisor.dir/congestion_advisor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/hcp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/hcp_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/hcp_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/features/CMakeFiles/hcp_features.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/hcp_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/fpga/CMakeFiles/hcp_fpga.dir/DependInfo.cmake"
  "/root/repo/build/src/rtl/CMakeFiles/hcp_rtl.dir/DependInfo.cmake"
  "/root/repo/build/src/hls/CMakeFiles/hcp_hls.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/hcp_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/hcp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
