# Empty compiler generated dependencies file for congestion_advisor.
# This may be replaced when dependencies are built.
