file(REMOVE_RECURSE
  "CMakeFiles/congestion_advisor.dir/congestion_advisor.cpp.o"
  "CMakeFiles/congestion_advisor.dir/congestion_advisor.cpp.o.d"
  "congestion_advisor"
  "congestion_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/congestion_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
