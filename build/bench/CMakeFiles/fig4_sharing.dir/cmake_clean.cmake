file(REMOVE_RECURSE
  "CMakeFiles/fig4_sharing.dir/fig4_sharing.cpp.o"
  "CMakeFiles/fig4_sharing.dir/fig4_sharing.cpp.o.d"
  "fig4_sharing"
  "fig4_sharing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_sharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
