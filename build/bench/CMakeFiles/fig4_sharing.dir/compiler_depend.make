# Empty compiler generated dependencies file for fig4_sharing.
# This may be replaced when dependencies are built.
