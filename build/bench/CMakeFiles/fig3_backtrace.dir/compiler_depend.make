# Empty compiler generated dependencies file for fig3_backtrace.
# This may be replaced when dependencies are built.
