file(REMOVE_RECURSE
  "CMakeFiles/fig3_backtrace.dir/fig3_backtrace.cpp.o"
  "CMakeFiles/fig3_backtrace.dir/fig3_backtrace.cpp.o.d"
  "fig3_backtrace"
  "fig3_backtrace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_backtrace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
