# Empty compiler generated dependencies file for table1_motivation.
# This may be replaced when dependencies are built.
