file(REMOVE_RECURSE
  "CMakeFiles/perf_ablation.dir/perf_ablation.cpp.o"
  "CMakeFiles/perf_ablation.dir/perf_ablation.cpp.o.d"
  "perf_ablation"
  "perf_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
