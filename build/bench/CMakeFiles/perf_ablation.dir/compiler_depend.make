# Empty compiler generated dependencies file for perf_ablation.
# This may be replaced when dependencies are built.
