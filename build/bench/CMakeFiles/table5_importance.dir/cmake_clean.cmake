file(REMOVE_RECURSE
  "CMakeFiles/table5_importance.dir/table5_importance.cpp.o"
  "CMakeFiles/table5_importance.dir/table5_importance.cpp.o.d"
  "table5_importance"
  "table5_importance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_importance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
