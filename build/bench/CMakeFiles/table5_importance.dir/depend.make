# Empty dependencies file for table5_importance.
# This may be replaced when dependencies are built.
