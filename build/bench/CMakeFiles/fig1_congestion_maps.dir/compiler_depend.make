# Empty compiler generated dependencies file for fig1_congestion_maps.
# This may be replaced when dependencies are built.
