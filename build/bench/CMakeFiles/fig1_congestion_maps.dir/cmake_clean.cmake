file(REMOVE_RECURSE
  "CMakeFiles/fig1_congestion_maps.dir/fig1_congestion_maps.cpp.o"
  "CMakeFiles/fig1_congestion_maps.dir/fig1_congestion_maps.cpp.o.d"
  "fig1_congestion_maps"
  "fig1_congestion_maps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_congestion_maps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
