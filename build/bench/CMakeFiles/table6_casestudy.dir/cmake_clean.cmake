file(REMOVE_RECURSE
  "CMakeFiles/table6_casestudy.dir/table6_casestudy.cpp.o"
  "CMakeFiles/table6_casestudy.dir/table6_casestudy.cpp.o.d"
  "table6_casestudy"
  "table6_casestudy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_casestudy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
